// unshared-files demonstrates §3.4: trusted external data (the passwd
// database) is diversified per variant via the kernel's unshared-file
// mechanism, so variants never compute reexpression themselves — they
// simply read their own /etc/passwd-<i>.
//
//	go run ./examples/unshared-files
package main

import (
	"fmt"
	"os"

	"nvariant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "unshared-files:", err)
		os.Exit(1)
	}
}

func run() error {
	pair := nvariant.UIDVariation().Pair
	world, err := nvariant.NewWorld()
	if err != nil {
		return err
	}
	if err := nvariant.SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
		return err
	}

	// Each variant reads "/etc/passwd" — and transparently receives
	// its own diversified copy. The first line of each variant's view
	// is written to a per-variant scratch file so we can show them.
	reader := nvariant.ProgramFunc{ProgName: "reader", Fn: func(ctx *nvariant.Context) error {
		fd, err := ctx.Open("/etc/passwd", 0x1 /* read-only */, 0)
		if err != nil {
			return err
		}
		data, err := ctx.ReadAll(fd)
		if err != nil {
			return err
		}
		if err := ctx.Close(fd); err != nil {
			return err
		}
		firstLine := string(data)
		for i := 0; i < len(firstLine); i++ {
			if firstLine[i] == '\n' {
				firstLine = firstLine[:i]
				break
			}
		}
		out, err := ctx.Open("/tmp/view", 0x2|0x4 /* write|create */, 0644)
		if err != nil {
			return err
		}
		if err := ctx.WriteString(out, firstLine); err != nil {
			return err
		}
		if err := ctx.Close(out); err != nil {
			return err
		}
		return ctx.Exit(0)
	}}

	res, err := nvariant.Run(world, nvariant.NewNetwork(0),
		[]nvariant.Program{reader, reader},
		nvariant.WithUIDVariation(pair),
		nvariant.WithUnsharedFiles("/etc/passwd", "/etc/group", "/tmp/view"),
	)
	if err != nil {
		return err
	}
	if !res.Clean {
		return fmt.Errorf("unexpected alarm: %v", res.Alarm)
	}

	// Show what each variant saw (the kernel mapped /tmp/view to
	// /tmp/view-0 and /tmp/view-1; we pre-created neither, so Create
	// made per-variant files).
	for i := 0; i < 2; i++ {
		path := fmt.Sprintf("/tmp/view-%d", i)
		content, err := world.FS.ReadFile(path, nvariant.RootCred())
		if err != nil {
			return fmt.Errorf("read %s: %w", path, err)
		}
		fmt.Printf("variant %d saw: %s\n", i, content)
	}
	fmt.Println("same program, same path, different trusted data — and the monitor saw no divergence")
	return nil
}
