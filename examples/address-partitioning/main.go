// address-partitioning demonstrates the Figure 1 semantics: two
// variants in disjoint simulated address spaces, and an injected
// absolute address that is valid in at most one of them.
//
//	go run ./examples/address-partitioning
package main

import (
	"fmt"
	"os"

	"nvariant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "address-partitioning:", err)
		os.Exit(1)
	}
}

func run() error {
	// The victim maps a page and then dereferences an
	// attacker-controlled absolute address — the shape of a format
	// string or pointer-corrupting attack.
	deref := func(addr nvariant.Word) nvariant.Program {
		return nvariant.ProgramFunc{ProgName: "victim", Fn: func(ctx *nvariant.Context) error {
			if _, err := ctx.Mem.Alloc(4096); err != nil {
				return err
			}
			if _, err := ctx.Mem.LoadByte(addr); err != nil {
				return err // segmentation fault in this variant
			}
			if _, err := ctx.Getuid(); err != nil {
				return err
			}
			return ctx.Exit(0)
		}}
	}

	injected := nvariant.Word(0x00001000) // valid only in variant 0's partition

	// Against a single variant the exploit works.
	world, err := nvariant.NewWorld()
	if err != nil {
		return err
	}
	single, err := nvariant.Run(world, nvariant.NewNetwork(0),
		[]nvariant.Program{deref(injected)}, nvariant.WithAddressPartition())
	if err != nil {
		return err
	}
	fmt.Printf("single variant, injected %s: exploit success = %v\n", injected, single.Clean)

	// Against the 2-variant deployment, the same input cannot be a
	// valid address in both partitions: variant 1 faults, the monitor
	// raises an alarm.
	world2, err := nvariant.NewWorld()
	if err != nil {
		return err
	}
	double, err := nvariant.Run(world2, nvariant.NewNetwork(0),
		[]nvariant.Program{deref(injected), deref(injected)}, nvariant.WithAddressPartition())
	if err != nil {
		return err
	}
	fmt.Printf("two variants,  injected %s: detected = %v — %v\n", injected, double.Detected(), double.Alarm)
	fmt.Println("an address cannot start with a 0 bit and a 1 bit at the same time")
	return nil
}
