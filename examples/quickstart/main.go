// Quickstart: a two-variant system with the UID data variation in
// about sixty lines.
//
// Both variants run the same logic, but variant 1's UID data is
// reexpressed with R₁(u) = u ⊕ 0x7FFFFFFF. Trusted data (from the
// diversified /etc/passwd files) crosses the monitor cleanly; an
// attacker-injected identical value is detected at its first use.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"nvariant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	pair := nvariant.UIDVariation().Pair

	// The variant program: look wwwrun up in (this variant's copy of)
	// /etc/passwd, expose the UID to the monitor, then drop privileges.
	variant := nvariant.ProgramFunc{ProgName: "quickstart", Fn: func(ctx *nvariant.Context) error {
		fd, err := ctx.Open("/etc/passwd", 0x1 /* read-only */, 0)
		if err != nil {
			return err
		}
		data, err := ctx.ReadAll(fd)
		if err != nil {
			return err
		}
		if err := ctx.Close(fd); err != nil {
			return err
		}
		uid, err := findUID(data, "wwwrun")
		if err != nil {
			return err
		}
		if _, err := ctx.UIDValue(uid); err != nil {
			return err
		}
		if err := ctx.Setuid(uid); err != nil {
			return err
		}
		return ctx.Exit(0)
	}}

	world, err := nvariant.NewWorld()
	if err != nil {
		return err
	}
	if err := nvariant.SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
		return err
	}
	res, err := nvariant.Run(world, nvariant.NewNetwork(0),
		[]nvariant.Program{variant, variant},
		nvariant.WithUIDVariation(pair),
		nvariant.WithUnsharedFiles("/etc/passwd", "/etc/group"),
	)
	if err != nil {
		return err
	}
	fmt.Printf("normal run: clean=%v (each variant used a different concrete UID for wwwrun)\n", res.Clean)

	// The attack: both variants receive the same concrete value 0 —
	// exactly what a memory-corrupting input achieves — and the
	// monitor sees divergent canonical UIDs.
	forged := nvariant.ProgramFunc{ProgName: "forged", Fn: func(ctx *nvariant.Context) error {
		if err := ctx.Setuid(0); err != nil {
			return err
		}
		return ctx.Exit(0)
	}}
	world2, err := nvariant.NewWorld()
	if err != nil {
		return err
	}
	res2, err := nvariant.Run(world2, nvariant.NewNetwork(0),
		[]nvariant.Program{forged, forged},
		nvariant.WithUIDVariation(pair),
	)
	if err != nil {
		return err
	}
	fmt.Printf("forged setuid(0): detected=%v — %v\n", res2.Detected(), res2.Alarm)
	return nil
}

// findUID parses passwd content for a user's UID (in this variant's
// representation, because the file itself is diversified).
func findUID(passwd []byte, user string) (nvariant.UID, error) {
	lines := string(passwd)
	for len(lines) > 0 {
		line := lines
		if i := indexByte(lines, '\n'); i >= 0 {
			line, lines = lines[:i], lines[i+1:]
		} else {
			lines = ""
		}
		fields := splitColon(line)
		if len(fields) >= 3 && fields[0] == user {
			var uid uint64
			if _, err := fmt.Sscanf(fields[2], "%d", &uid); err != nil {
				return 0, err
			}
			return nvariant.UID(uint32(uid)), nil
		}
	}
	return 0, fmt.Errorf("user %q not found", user)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func splitColon(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ':' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
