// transformer demonstrates the automated UID variation (§3.3) end to
// end: transform a mini-C server module for both variants, run the
// transformed pair under the monitor on benign input (normal
// equivalence), then re-run with an attacker corrupting the stored
// worker UID (detection).
//
//	go run ./examples/transformer
package main

import (
	"fmt"
	"os"

	"nvariant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "transformer:", err)
		os.Exit(1)
	}
}

func run() error {
	pair := nvariant.UIDVariation().Pair

	// Show the transformation product for variant 1.
	res, err := nvariant.TransformMinic(nvariant.SampleServerSource, pair.R1)
	if err != nil {
		return err
	}
	c := res.Counts
	fmt.Printf("automated transformation of the case-study UID module:\n")
	fmt.Printf("  %d constants reexpressed, %d uid_value, %d cc_*, %d cond_chk, %d log scrubs (total %d; paper: 73 manual changes)\n\n",
		c.Constants, c.UIDValues, c.Comparisons, c.CondChks, c.LogScrubs, c.Total())

	// Run the transformed pair on benign input.
	clean, err := runPair(pair, nil)
	if err != nil {
		return err
	}
	fmt.Printf("benign run: clean=%v status=%d (normal equivalence holds)\n", clean.Clean, clean.Status)

	// Corrupt the stored worker UID with the same concrete word in
	// both variants — what any input-driven overflow achieves.
	corrupted, err := runPair(pair, map[string]nvariant.Word{"worker_uid": 0})
	if err != nil {
		return err
	}
	fmt.Printf("corrupted run: detected=%v — %v\n", corrupted.Detected(), corrupted.Alarm)
	return nil
}

func runPair(pair nvariant.Pair, corrupt map[string]nvariant.Word) (*nvariant.Result, error) {
	world, err := nvariant.NewWorld()
	if err != nil {
		return nil, err
	}
	if err := nvariant.SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
		return nil, err
	}
	progs, err := nvariant.BuildMinicVariants("unixd", nvariant.SampleServerSource, pair.Funcs(),
		nvariant.MinicInterpOptions{CorruptOnAssign: corrupt})
	if err != nil {
		return nil, err
	}
	return nvariant.Run(world, nvariant.NewNetwork(0), progs,
		nvariant.WithUIDVariation(pair),
		nvariant.WithUnsharedFiles("/etc/passwd", "/etc/group"),
	)
}
