// fleet demonstrates surviving detection: a pool of N-variant UID
// groups serves traffic through a dispatcher while an attacker mounts
// the paper's UID-forging attack through the same front port. Each
// probe is detected at the first use of the forged UID; the fleet
// quarantines the struck group, appends the alarm to its audit log,
// and brings up a replacement running a freshly generated
// DiversitySpec — watch the audit lines stream as it happens.
//
//	go run ./examples/fleet
//	go run ./examples/fleet -variants 3            # 3-variant groups
//	go run ./examples/fleet -stack uid,files       # custom variation stack
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nvariant"
	"nvariant/internal/attack"
	"nvariant/internal/vos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
}

func run() error {
	variants := flag.Int("variants", 2, "variant count N per group")
	stackCSV := flag.String("stack", "", "variation stack per group spec (e.g. uid,addr,files; default: the full paper stack)")
	flag.Parse()

	var stack []nvariant.DiversityLayerKind
	if *stackCSV != "" {
		var err error
		if stack, err = nvariant.ParseStack(*stackCSV); err != nil {
			return err
		}
	}

	fmt.Printf("starting a fleet of 3 %d-variant UID groups...\n", *variants)
	f, err := nvariant.NewFleet(nvariant.FleetOptions{
		Groups:   3,
		Variants: *variants,
		Stack:    stack,
		AuditTo:  os.Stdout, // stream audit entries as they are appended
	})
	if err != nil {
		return err
	}
	fmt.Println(f.Stats())

	client := f.Client()
	if code, _, err := client.Get("/index.html"); err != nil || code != 200 {
		return fmt.Errorf("benign request = %d, %v", code, err)
	}
	fmt.Println("\nbenign GET /index.html -> 200 (dispatched to some healthy group)")

	for probe := 1; probe <= 2; probe++ {
		fmt.Printf("\n--- attack probe %d: overflow forges the worker UID to 0 ---\n", probe)
		if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
			return fmt.Errorf("overflow: %w", err)
		}

		// Drive traffic until the struck group uses the forged UID and
		// its monitor kills it. The connection that triggers detection
		// drops; every other request keeps being served by the pool.
		deadline := time.Now().Add(10 * time.Second)
		for f.Stats().Detections < probe {
			if time.Now().After(deadline) {
				return fmt.Errorf("probe %d not detected", probe)
			}
			code, body, err := client.Get("/private/secret.html")
			switch {
			case err != nil:
				fmt.Printf("request dropped mid-flight (%v) — the monitor killed the struck group\n", err)
			case code == 200:
				return fmt.Errorf("SECRET LEAKED (%d bytes)", len(body))
			}
		}

		// Wait for the replacement to come up.
		if err := f.AwaitReplenished(probe, 3, 10*time.Second); err != nil {
			return fmt.Errorf("replacement for probe %d: %w", probe, err)
		}
		fmt.Println("pool replenished with a freshly generated DiversitySpec:")
		fmt.Println(f.Stats())
	}

	// The fleet still serves normally after the campaign.
	if code, _, err := client.Get("/index.html"); err != nil || code != 200 {
		return fmt.Errorf("post-campaign request = %d, %v", code, err)
	}
	fmt.Println("\npost-campaign GET /index.html -> 200 (service survived the attack)")

	stats, err := f.Stop()
	if err != nil {
		return err
	}
	fmt.Println("\nfinal state:")
	fmt.Println(stats)
	fmt.Printf("\naudit log (%d entries):\n", f.Audit().Len())
	for _, e := range f.Audit().Entries() {
		fmt.Println(" ", e)
	}
	return nil
}
