// uid-attack reproduces the paper's case study end to end: the
// Chen-et-al non-control-data attack against the vulnerable web
// server, mounted against an unprotected deployment (configuration 1,
// secret leaks) and against the 2-variant UID variation
// (configuration 4, monitor kills the group at the first use of the
// corrupted UID).
//
//	go run ./examples/uid-attack
package main

import (
	"fmt"
	"os"

	"nvariant"
	"nvariant/internal/attack"
	"nvariant/internal/vos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uid-attack:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, cfg := range []nvariant.Configuration{
		nvariant.Config1Unmodified,
		nvariant.Config4UIDVariation,
	} {
		fmt.Printf("=== %s ===\n", cfg)
		if err := mount(cfg); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func mount(cfg nvariant.Configuration) error {
	h, err := nvariant.StartConfiguration(cfg, nvariant.HTTPServerOptions{}, 0)
	if err != nil {
		return err
	}
	client := h.Client()

	// Benign request first: both deployments serve normally.
	code, _, err := client.Get("/index.html")
	if err != nil {
		return err
	}
	fmt.Printf("benign GET /index.html        -> %d\n", code)

	// The root-only page is refused while the worker UID is intact.
	code, _, err = client.Get("/private/secret.html")
	if err != nil {
		return err
	}
	fmt.Printf("benign GET /private/secret    -> %d (worker is unprivileged)\n", code)

	// Step 1: overflow. 256 filler bytes spill 4 more into the
	// adjacent worker-UID word, setting it to 0 (root) in every
	// variant — the same bytes reach all variants by construction.
	if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
		return fmt.Errorf("overflow request: %w", err)
	}
	fmt.Println("attack step 1: overflow corrupted the stored worker UID to 0")

	// Step 2: trigger. The next request uses the corrupted UID.
	code, body, err := client.Get("/private/secret.html")
	switch {
	case err != nil:
		fmt.Printf("attack step 2: connection dropped (%v)\n", err)
	case code == 200:
		fmt.Printf("attack step 2: 200 — SECRET LEAKED (%d bytes)\n", len(body))
	default:
		fmt.Printf("attack step 2: %d\n", code)
	}

	res, err := h.Stop()
	if err != nil {
		return err
	}
	if res.Alarm != nil {
		fmt.Printf("monitor: ALARM %s at %s — %s\n", res.Alarm.Reason, res.Alarm.Syscall, res.Alarm.Detail)
	} else {
		fmt.Println("monitor: no alarm (the attack went unnoticed)")
	}
	return nil
}
