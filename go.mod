module nvariant

go 1.24
