// Package nvariant is the public API of the reproduction of "Security
// through Redundant Data Diversity" (Nguyen-Tuong, Evans, Knight, Cox,
// Davidson — DSN 2008).
//
// An N-variant system runs N variants of a program whose *data
// representations* differ under per-variant reexpression functions
// R_i, behind a monitor that replicates inputs to all variants,
// synchronizes them at system-call boundaries, and raises an alarm on
// any divergence. Because the inverse reexpression functions are
// disjoint (∀x: R⁻¹₀(x) ≠ R⁻¹₁(x)), an attacker — who can only send
// the same input bytes to every variant — cannot corrupt the
// diversified data in all variants consistently: the corruption is
// detected at its first use, without any secrets.
//
// Quick start — a DiversitySpec describes the whole deployment: N ≥ 2
// variants, each with a stack of typed variation layers, validated for
// the inverse and N-wide pairwise-disjointness properties at
// construction:
//
//	world, _ := nvariant.NewWorld()
//	spec := nvariant.GenerateSpec(42, 3) // 3 variants, UID layer
//	nvariant.SetupUnsharedPasswd(world, spec.UIDFuncs())
//	res, _ := nvariant.Run(world, nvariant.NewNetwork(0),
//	    []nvariant.Program{variant0, variant1, variant2},
//	    nvariant.WithSpec(spec),
//	    nvariant.WithUnsharedFiles("/etc/passwd", "/etc/group"))
//	if res.Detected() {
//	    fmt.Println("attack detected:", res.Alarm)
//	}
//
// The pre-DiversitySpec two-variant surface (Pair, WithUIDVariation)
// keeps compiling through thin adapters that build specs internally.
//
// The package re-exports the building blocks: the reexpression-
// function framework (Table 1), the monitor kernel with its detection
// system calls (Table 2), the simulated OS/network substrates, the
// case-study web server with its planted non-control-data
// vulnerability (§4), the automated source-to-source UID transformer
// for the bundled mini-C language (§3.3), and the experiment drivers
// that regenerate the paper's tables and figures.
package nvariant

import (
	"time"

	"nvariant/internal/fleet"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/minic"
	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/transform"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// Core value types.
type (
	// Word is the 32-bit machine word diversified data is stored in.
	Word = word.Word
	// UID is a user identifier (also used for GIDs, as in the paper).
	UID = vos.UID

	// ReexpressionFunc is a data reexpression function R with inverse.
	ReexpressionFunc = reexpress.Func
	// Pair is a two-variant reexpression configuration (R₀, R₁).
	//
	// Deprecated in favour of DiversitySpec: Pair-taking call sites
	// keep working through adapters.
	Pair = reexpress.Pair
	// Variation is a named Table 1 row.
	Variation = reexpress.Variation

	// DiversitySpec describes a diversified deployment: N ≥ 2 variants,
	// each with an ordered stack of typed variation layers, validated
	// for the inverse and N-wide pairwise-disjointness properties.
	DiversitySpec = reexpress.Spec
	// DiversityLayer is one variation in a spec's stack.
	DiversityLayer = reexpress.Layer
	// DiversityLayerKind classifies a variation layer.
	DiversityLayerKind = reexpress.LayerKind

	// Program is the code run (with per-variant data) by each variant.
	Program = sys.Program
	// WorkerProgram is a Program supporting prefork worker lanes: after
	// Context.Prefork(w) the kernel runs RunWorker in w-1 concurrent
	// lanes, each an independent N-variant rendezvous sharing the
	// group's descriptor table — and any lane's alarm kills the whole
	// group.
	WorkerProgram = sys.WorkerProgram
	// Context is the per-variant syscall environment.
	Context = sys.Context

	// World is the simulated machine (filesystem, users).
	World = vos.World
	// Network is the simulated network clients dial.
	Network = simnet.Network

	// Option configures the monitor kernel.
	Option = nvkernel.Option
	// Result is the outcome of an N-variant run.
	Result = nvkernel.Result
	// Alarm is the monitor's divergence report.
	Alarm = nvkernel.Alarm
	// Reason classifies an alarm.
	Reason = nvkernel.Reason
)

// Alarm reasons, re-exported.
const (
	ReasonSyscallMismatch = nvkernel.ReasonSyscallMismatch
	ReasonArgDivergence   = nvkernel.ReasonArgDivergence
	ReasonUIDDivergence   = nvkernel.ReasonUIDDivergence
	ReasonCondDivergence  = nvkernel.ReasonCondDivergence
	ReasonDataDivergence  = nvkernel.ReasonDataDivergence
	ReasonVariantFault    = nvkernel.ReasonVariantFault
	ReasonTimeout         = nvkernel.ReasonTimeout
)

// Variation-layer kinds, re-exported.
const (
	LayerUID              = reexpress.LayerUID
	LayerAddressPartition = reexpress.LayerAddressPartition
	LayerUnsharedFiles    = reexpress.LayerUnsharedFiles
	LayerInstructionTags  = reexpress.LayerInstructionTags
)

// DiversitySpec constructors and layer builders.
var (
	// NewDiversitySpec builds and validates an explicit spec: n
	// variants with the given layer stack, checked for the §2.2/§2.3
	// properties generalized N-wide.
	NewDiversitySpec = reexpress.NewSpec
	// SpecFromVariation builds a validated two-variant spec from a
	// Table 1 row.
	SpecFromVariation = reexpress.FromVariation
	// GenerateSpec draws a randomized, validated spec for n variants
	// from a seed (it subsumes the fleet's old two-variant pair
	// selection). Stack kinds default to a single UID layer.
	GenerateSpec = reexpress.Generate
	// ParseStack parses a comma-separated stack description
	// ("uid,addr,files") into layer kinds.
	ParseStack = reexpress.ParseStack

	// UIDLayer builds a UID variation layer from per-variant functions.
	UIDLayer = reexpress.UIDLayer
	// AddressPartitionLayer builds an N-way address partitioning layer.
	AddressPartitionLayer = reexpress.AddressPartitionLayer
	// UnsharedFilesLayer builds an unshared-files layer (§3.4).
	UnsharedFilesLayer = reexpress.UnsharedFilesLayer
	// InstructionTagLayer builds an N-way instruction tagging layer.
	InstructionTagLayer = reexpress.InstructionTagLayer
)

// Cred is a simulated process credential set.
type Cred = vos.Cred

// RootCred returns superuser credentials (for world setup and
// inspection from the host side).
func RootCred() Cred { return vos.CredFor(vos.Root, 0) }

// NewWorld builds the standard simulated machine: base users, passwd
// and group files, a document root, and the root-only secret the
// attack experiments target.
func NewWorld() (*World, error) { return vos.NewWorld() }

// NewNetwork builds a simulated network with the given one-way wire
// latency.
func NewNetwork(latency time.Duration) *Network { return simnet.New(latency) }

// Run executes the given variant programs as one N-variant process
// group under the monitor kernel.
func Run(world *World, net *Network, progs []Program, opts ...Option) (*Result, error) {
	return nvkernel.Run(world, net, progs, opts...)
}

// Kernel options, re-exported.
var (
	// WithSpec configures a run from a DiversitySpec, materializing
	// every layer of its variation stack.
	WithSpec = nvkernel.WithSpec
	// WithUIDVariation installs a UID data variation (adapter: it
	// builds a two-variant spec internally).
	WithUIDVariation = nvkernel.WithUIDVariation
	// WithUIDFuncs installs explicit per-variant UID functions
	// (adapter: it builds an unchecked spec internally).
	WithUIDFuncs = nvkernel.WithUIDFuncs
	// WithAddressPartition places variants in disjoint address spaces.
	WithAddressPartition = nvkernel.WithAddressPartition
	// WithUnsharedFiles marks per-variant diversified files (§3.4).
	WithUnsharedFiles = nvkernel.WithUnsharedFiles
	// WithTimeout bounds the rendezvous wait.
	WithTimeout = nvkernel.WithTimeout
	// WithCred sets the group's initial credentials.
	WithCred = nvkernel.WithCred
)

// SetupUnsharedPasswd writes the diversified /etc/passwd-<i> and
// /etc/group-<i> files for each variant function (§3.4).
func SetupUnsharedPasswd(world *World, funcs []ReexpressionFunc) error {
	return nvkernel.SetupUnsharedPasswd(world, funcs)
}

// Table 1 variations.
var (
	// UIDVariation is the paper's contribution: R₁(u) = u ⊕ 0x7FFFFFFF.
	UIDVariation = reexpress.UIDVariation
	// AddressPartitioning is Table 1 row 1.
	AddressPartitioning = reexpress.AddressPartitioning
	// ExtendedPartitioning is Table 1 row 2.
	ExtendedPartitioning = reexpress.ExtendedPartitioning
	// InstructionTagging is Table 1 row 3.
	InstructionTagging = reexpress.InstructionTagging
	// Table1 returns all four rows in paper order.
	Table1 = reexpress.Table1
)

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc = sys.ProgramFunc

// --- Case-study web server (§4) --------------------------------------

// HTTPServerOptions configures the case-study server.
type HTTPServerOptions = httpd.Options

// HTTPServerConsts holds the server's (build-time reexpressed) UID
// constants.
type HTTPServerConsts = httpd.Consts

// NewHTTPServer builds one server variant.
func NewHTTPServer(opts HTTPServerOptions, consts HTTPServerConsts) Program {
	return httpd.New(opts, consts)
}

// BuildHTTPVariants builds one transformed server per reexpression
// function (applying R_i to the program's UID constants).
func BuildHTTPVariants(opts HTTPServerOptions, funcs []ReexpressionFunc) ([]Program, error) {
	return httpd.BuildVariants(opts, funcs)
}

// SetupHTTPWorld installs the server's configuration file.
func SetupHTTPWorld(world *World) error { return httpd.SetupWorld(world) }

// HTTPClient is the remote-user (and attacker) interface.
type HTTPClient = httpd.Client

// NewHTTPClient builds a client for a network and port.
func NewHTTPClient(net *Network, port uint16) *HTTPClient {
	return httpd.NewClient(net, port)
}

// Configuration selects one of the paper's Table 3 deployments.
type Configuration = harness.Configuration

// The four Table 3 configurations.
const (
	Config1Unmodified   = harness.Config1Unmodified
	Config2Transformed  = harness.Config2Transformed
	Config3AddressSpace = harness.Config3AddressSpace
	Config4UIDVariation = harness.Config4UIDVariation
)

// ServerHandle controls a running configuration.
type ServerHandle = harness.Handle

// StartConfiguration launches a Table 3 configuration on a fresh
// world and returns a handle for clients and shutdown.
func StartConfiguration(c Configuration, opts HTTPServerOptions, latency time.Duration) (*ServerHandle, error) {
	return harness.Start(c, opts, latency)
}

// --- Fleet deployment (surviving detection at scale) ------------------

// Fleet is a dispatcher-fronted pool of independent N-variant server
// groups with quarantine-on-alarm recovery: when any group's monitor
// raises an alarm, the group is quarantined, the alarm is recorded in
// an append-only audit log, and a fresh group with newly selected
// reexpression functions takes its place.
type Fleet = fleet.Fleet

// FleetOptions configures a fleet (pool size, configuration, policy,
// per-group variant count and variation stack).
type FleetOptions = fleet.Options

// FleetStats is a snapshot of fleet health and dispatch counters.
type FleetStats = fleet.Stats

// FleetGroupStat describes one pool member in a stats snapshot.
type FleetGroupStat = fleet.GroupStat

// FleetPolicy selects the dispatcher's balancing policy.
type FleetPolicy = fleet.Policy

// FleetAuditLog is the fleet's append-only recovery record.
type FleetAuditLog = fleet.AuditLog

// FleetAuditEntry is one quarantine/replacement record.
type FleetAuditEntry = fleet.AuditEntry

// Balancing policies.
const (
	FleetRoundRobin  = fleet.RoundRobin
	FleetLeastLoaded = fleet.LeastLoaded
)

// NewFleet builds the pool, starts every group, and begins dispatching
// on the front port.
func NewFleet(opts FleetOptions) (*Fleet, error) { return fleet.New(opts) }

// --- Automated UID transformation (§3.3) -----------------------------

// TransformCounts is the change accounting of a transformation run.
type TransformCounts = transform.Counts

// TransformResult is a transformed variant with its accounting.
type TransformResult = transform.Result

// TransformMinic applies the automated UID variation to mini-C source.
func TransformMinic(src string, f ReexpressionFunc) (*TransformResult, error) {
	return transform.Apply(src, f)
}

// MinicInterpOptions configures mini-C execution (including the
// memory-corruption attacker primitive used in experiments).
type MinicInterpOptions = minic.InterpOptions

// CompileMinic parses, checks and wraps mini-C source as a variant
// program.
func CompileMinic(name, src string, opts MinicInterpOptions) (Program, error) {
	return minic.Compile(name, src, opts)
}

// BuildMinicVariants transforms src per variant function and compiles
// each result.
func BuildMinicVariants(name, src string, funcs []ReexpressionFunc, opts MinicInterpOptions) ([]Program, error) {
	compiled, err := transform.BuildVariants(name, src, funcs, opts)
	if err != nil {
		return nil, err
	}
	progs := make([]Program, len(compiled))
	for i, c := range compiled {
		progs[i] = c.Program
	}
	return progs, nil
}

// SampleServerSource is the bundled mini-C port of the case-study
// server's UID module (the change-count experiment's subject).
const SampleServerSource = transform.SampleServerSource
