package nvariant

import (
	"sync"
	"testing"

	"nvariant/internal/fleet"
	"nvariant/internal/httpd"
	"nvariant/internal/mesh"
	"nvariant/internal/nvkernel"
	"nvariant/internal/obs"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
)

// TestInstrumentedRendezvousZeroAlloc proves the ISSUE's headline
// constraint directly: a monitor rendezvous with the obs metrics
// attached — latency histogram observed, syscall counter bumped —
// performs zero heap allocations. The channel-driven group below keeps
// variants parked between measured rounds so AllocsPerRun sees only
// steady-state rendezvous work.
func TestInstrumentedRendezvousZeroAlloc(t *testing.T) {
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	trigger := make(chan struct{}, n)
	roundDone := make(chan struct{}, n)
	stop := make(chan struct{})
	progs := make([]sys.Program, n)
	for i := range progs {
		progs[i] = sys.ProgramFunc{ProgName: "paced", Fn: func(ctx *sys.Context) error {
			for {
				select {
				case <-trigger:
				case <-stop:
					return ctx.Exit(0)
				}
				if _, err := ctx.Time(); err != nil {
					return err
				}
				roundDone <- struct{}{}
			}
		}}
	}
	funcs := make([]reexpress.Func, n)
	for i := range funcs {
		funcs[i] = reexpress.Identity{}
	}

	reg := obs.NewRegistry()
	m := nvkernel.NewMetrics(reg)
	var (
		res    *nvkernel.Result
		runErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, runErr = nvkernel.Run(world, simnet.New(0), progs,
			nvkernel.WithUIDFuncs(funcs...), nvkernel.WithMetrics(m))
	}()

	round := func() {
		for i := 0; i < n; i++ {
			trigger <- struct{}{}
		}
		for i := 0; i < n; i++ {
			<-roundDone
		}
	}
	// Warm up past group startup and lazy runtime growth.
	for i := 0; i < 50; i++ {
		round()
	}
	avg := testing.AllocsPerRun(300, round)

	// Wind the group down: exits rendezvous like any other syscall.
	for i := 0; i < n; i++ {
		stop <- struct{}{}
	}
	wg.Wait()
	if runErr != nil || !res.Clean {
		t.Fatalf("run: %v %v", runErr, res.Alarm)
	}
	if avg != 0 {
		t.Errorf("instrumented rendezvous allocates %v/op, want 0", avg)
	}
	if got := m.RendezvousCount(); got == 0 {
		t.Error("histogram saw no rendezvous — instrumentation not attached")
	}
}

// TestInstrumentedDispatchAddsNoAllocs is the differential proof for
// the fleet front door: a request through an instrumented fleet must
// allocate exactly what an uninstrumented one does.
func TestInstrumentedDispatchAddsNoAllocs(t *testing.T) {
	perRequest := func(reg *obs.Registry) float64 {
		t.Helper()
		f, err := fleet.New(fleet.Options{Groups: 1, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _, _ = f.Stop() }()
		client := f.Client()
		get := func() {
			code, _, err := client.Get("/index.html")
			if err != nil || code != 200 {
				t.Fatalf("request: %d %v", code, err)
			}
		}
		for i := 0; i < 50; i++ {
			get()
		}
		return testing.AllocsPerRun(200, get)
	}

	plain := perRequest(nil)
	instrumented := perRequest(obs.NewRegistry())
	if instrumented > plain {
		t.Errorf("instrumented dispatch allocates %v/op vs %v/op plain — instrumentation must add 0",
			instrumented, plain)
	}
}

// TestMeshSessionAddsNoAllocs is the differential proof for the mesh
// router: the session hot path (admission + routing bookkeeping + mesh
// clock) must allocate exactly what a bare fleet dispatch does, with
// or without instrumentation — and with a retry budget armed, since
// the no-retry path must not pay for the retry machinery.
func TestMeshSessionAddsNoAllocs(t *testing.T) {
	req := httpd.AppendRequest(nil, "/index.html")

	fleetBaseline := func() float64 {
		f, err := fleet.New(fleet.Options{Groups: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _, _ = f.Stop() }()
		client := f.Client()
		fetch := func() {
			code, _, err := client.Fetch(req)
			if err != nil || code != 200 {
				t.Fatalf("fleet fetch: %d %v", code, err)
			}
		}
		for i := 0; i < 50; i++ {
			fetch()
		}
		return testing.AllocsPerRun(200, fetch)
	}

	meshSession := func(reg *obs.Registry) float64 {
		m, err := mesh.New(mesh.Options{Pools: 2, MaxInflight: 64, RetryBudget: 4, Obs: reg, Fleet: fleet.Options{Groups: 1}})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _, _ = m.Stop() }()
		s := m.Session("alloc-probe")
		fetch := func() {
			code, _, err := s.Fetch(req)
			if err != nil || code != 200 {
				t.Fatalf("mesh fetch: %d %v", code, err)
			}
		}
		for i := 0; i < 50; i++ {
			fetch()
		}
		return testing.AllocsPerRun(200, fetch)
	}

	plainFleet := fleetBaseline()
	plainMesh := meshSession(nil)
	instrMesh := meshSession(obs.NewRegistry())
	if plainMesh > plainFleet {
		t.Errorf("mesh session allocates %v/op vs %v/op bare fleet — the router must add 0", plainMesh, plainFleet)
	}
	if instrMesh > plainMesh {
		t.Errorf("instrumented mesh session allocates %v/op vs %v/op plain — instrumentation must add 0", instrMesh, plainMesh)
	}
}
