package nvariant

import (
	"strings"
	"testing"
)

func TestFacadeUIDVariationDetection(t *testing.T) {
	pair := UIDVariation().Pair
	world, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	if err := SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
		t.Fatal(err)
	}

	forged := ProgramFunc{ProgName: "forged", Fn: func(ctx *Context) error {
		if err := ctx.Setuid(0); err != nil {
			return err
		}
		return ctx.Exit(0)
	}}
	res, err := Run(world, NewNetwork(0), []Program{forged, forged},
		WithUIDVariation(pair),
		WithUnsharedFiles("/etc/passwd", "/etc/group"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("forged setuid not detected through the facade")
	}
	if res.Alarm.Reason != ReasonUIDDivergence {
		t.Errorf("reason = %v, want uid-divergence", res.Alarm.Reason)
	}
}

func TestFacadeConfigurationLifecycle(t *testing.T) {
	h, err := StartConfiguration(Config4UIDVariation, HTTPServerOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	client := h.Client()
	code, body, err := client.Get("/index.html")
	if err != nil || code != 200 {
		t.Fatalf("GET = %d, %v", code, err)
	}
	if !strings.Contains(string(body), "It works!") {
		t.Errorf("body = %q", body)
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("alarm: %v", res.Alarm)
	}
}

func TestFacadeTransformAndRun(t *testing.T) {
	pair := UIDVariation().Pair
	res, err := TransformMinic(SampleServerSource, pair.R1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Total() == 0 {
		t.Error("no changes reported")
	}

	world, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	if err := SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
		t.Fatal(err)
	}
	progs, err := BuildMinicVariants("unixd", SampleServerSource, pair.Funcs(), MinicInterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(world, NewNetwork(0), progs,
		WithUIDVariation(pair),
		WithUnsharedFiles("/etc/passwd", "/etc/group"))
	if err != nil {
		t.Fatal(err)
	}
	if !run.Clean || run.Status != 0 {
		t.Fatalf("transformed variants: clean=%v status=%d alarm=%v", run.Clean, run.Status, run.Alarm)
	}
}

func TestFacadeCompileMinic(t *testing.T) {
	prog, err := CompileMinic("hello", `int main() { log("hi"); return 0; }`, MinicInterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	world, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(world, NewNetwork(0), []Program{prog})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || !strings.Contains(string(res.Stderr), "hi") {
		t.Errorf("clean=%v stderr=%q", res.Clean, res.Stderr)
	}
}

func TestFacadeTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	if rows[3].Name != "UID Variation" {
		t.Errorf("row 4 = %q", rows[3].Name)
	}
	// The facade exposes the Pair math directly.
	r1 := UIDVariation().Pair.R1
	rep, err := r1.Apply(0)
	if err != nil || rep != 0x7FFFFFFF {
		t.Errorf("R1(0) = %v, %v", rep, err)
	}
}

func TestFacadeHTTPVariants(t *testing.T) {
	pair := UIDVariation().Pair
	progs, err := BuildHTTPVariants(HTTPServerOptions{}, pair.Funcs())
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("variants = %d", len(progs))
	}
}

func TestFacadeRootCred(t *testing.T) {
	cred := RootCred()
	if cred.EUID != 0 || cred.RUID != 0 {
		t.Errorf("RootCred = %+v", cred)
	}
	world, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := world.FS.ReadFile("/var/www/private/secret.html", cred); err != nil {
		t.Errorf("root cannot read the secret: %v", err)
	}
}

func TestFacadeDiversitySpecQuickstart(t *testing.T) {
	// The package-doc quick start: an N=3 generated spec, a forged-UID
	// injection, detection through the facade.
	spec := GenerateSpec(42, 3)
	if spec.N() != 3 {
		t.Fatalf("spec N = %d", spec.N())
	}
	world, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	if err := SetupUnsharedPasswd(world, spec.UIDFuncs()); err != nil {
		t.Fatal(err)
	}
	forged := ProgramFunc{ProgName: "forged", Fn: func(ctx *Context) error {
		if err := ctx.Setuid(0); err != nil {
			return err
		}
		return ctx.Exit(0)
	}}
	res, err := Run(world, NewNetwork(0), []Program{forged, forged, forged},
		WithSpec(spec),
		WithUnsharedFiles("/etc/passwd", "/etc/group"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() || res.Alarm.Reason != ReasonUIDDivergence {
		t.Fatalf("3-variant forged setuid not detected: %+v", res.Alarm)
	}
}

func TestFacadeExplicitSpecConstruction(t *testing.T) {
	spec, err := NewDiversitySpec(2,
		UIDLayer(UIDVariation().Pair.R0, UIDVariation().Pair.R1),
		AddressPartitionLayer(2),
		UnsharedFilesLayer("/etc/passwd", "/etc/group"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.StackString(); got != "uid+address-partition+unshared-files" {
		t.Errorf("stack = %q", got)
	}
	if _, err := NewDiversitySpec(2, UIDLayer(UIDVariation().Pair.R0, UIDVariation().Pair.R0)); err == nil {
		t.Error("disjointness-violating spec accepted")
	}
	fromRow, err := SpecFromVariation(UIDVariation())
	if err != nil || fromRow.N() != 2 {
		t.Fatalf("SpecFromVariation: %v", err)
	}
	kinds, err := ParseStack("uid,addr")
	if err != nil || len(kinds) != 2 || kinds[0] != LayerUID || kinds[1] != LayerAddressPartition {
		t.Fatalf("ParseStack: %v %v", kinds, err)
	}
}

func TestFacadeFleetWithVariants(t *testing.T) {
	f, err := NewFleet(FleetOptions{Groups: 2, Variants: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _, _ = f.Stop() }()
	if code, _, err := f.Client().Get("/index.html"); err != nil || code != 200 {
		t.Fatalf("GET = %d, %v", code, err)
	}
	for _, g := range f.Stats().Healthy {
		if g.Variants != 3 {
			t.Errorf("group %d variants = %d", g.ID, g.Variants)
		}
	}
}
