// Benchmarks regenerating the paper's evaluation artifacts. One bench
// (or bench family) per table and figure — see DESIGN.md's
// per-experiment index — plus ablation benches for the design choices
// discussed in §5.
package nvariant

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/experiments"
	"nvariant/internal/fleet"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/isa"
	"nvariant/internal/mesh"
	"nvariant/internal/nvkernel"
	"nvariant/internal/obs"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/transform"
	"nvariant/internal/vos"
	"nvariant/internal/webbench"
	"nvariant/internal/word"
)

// --- Table 1: reexpression function cost ------------------------------

func BenchmarkTable1Reexpression(b *testing.B) {
	for _, v := range reexpress.Table1() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			f := v.Pair.R1
			x := word.Word(30)
			if !f.Domain(x) {
				x = 0x00001000
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				y, err := f.Apply(x)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.Invert(y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 2: detection system call cost ------------------------------

// benchDetectionCalls measures the per-call cost of a Table 2 syscall
// under a live 2-variant monitor. Group startup (world, goroutines,
// address spaces) happens off the clock: every variant makes one warmup
// rendezvous, parks on a gate, and only the gated steady-state calls
// run inside the timed window.
func benchDetectionCalls(b *testing.B, num sys.Num) {
	b.Helper()
	pair := reexpress.UIDVariation().Pair
	world, err := vos.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	start := make(chan struct{})
	var warm sync.WaitGroup
	warm.Add(2)
	progs := make([]sys.Program, 2)
	for i := 0; i < 2; i++ {
		f := pair.Funcs()[i]
		progs[i] = sys.ProgramFunc{ProgName: "bench", Fn: func(ctx *sys.Context) error {
			u, err := f.Apply(30)
			if err != nil {
				return err
			}
			// Warmup rendezvous: proves the whole group is up before
			// the clock starts.
			if _, err := ctx.Time(); err != nil {
				return err
			}
			warm.Done()
			<-start
			for k := 0; k < n; k++ {
				var callErr error
				switch num {
				case sys.UIDValue:
					_, callErr = ctx.UIDValue(u)
				case sys.CondChk:
					_, callErr = ctx.CondChk(true)
				default:
					_, callErr = ctx.CCEq(u, u)
				}
				if callErr != nil {
					return callErr
				}
			}
			return ctx.Exit(0)
		}}
	}
	b.ReportAllocs()
	var res *nvkernel.Result
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, runErr = nvkernel.Run(world, simnet.New(0), progs, nvkernel.WithUIDVariation(pair))
	}()
	warm.Wait()
	b.ResetTimer()
	close(start)
	<-done
	b.StopTimer()
	if runErr != nil {
		b.Fatal(runErr)
	}
	if !res.Clean {
		b.Fatalf("alarm during benchmark: %v", res.Alarm)
	}
}

func BenchmarkTable2UIDValue(b *testing.B) { benchDetectionCalls(b, sys.UIDValue) }
func BenchmarkTable2CondChk(b *testing.B)  { benchDetectionCalls(b, sys.CondChk) }
func BenchmarkTable2CCEq(b *testing.B)     { benchDetectionCalls(b, sys.CCEq) }

// --- Table 3: the performance matrix ----------------------------------

// benchTable3 measures one configuration at one operating point,
// reporting Table 3's metrics (KB/s and ms).
func benchTable3(b *testing.B, cfg harness.Configuration, engines, requests int) {
	b.Helper()
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	serverOpts := httpd.Options{WorkFactor: 400}

	var totalKBps, totalMs float64
	for i := 0; i < b.N; i++ {
		h, err := harness.Start(cfg, serverOpts, time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		m, err := webbench.Run(h.Net, h.Port, webbench.Options{
			Engines:           engines,
			RequestsPerEngine: requests,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Stop()
		if err != nil {
			b.Fatal(err)
		}
		if res.Alarm != nil {
			b.Fatalf("false alarm under benign load: %v", res.Alarm)
		}
		if m.Errors > 0 {
			b.Fatalf("%d request errors", m.Errors)
		}
		totalKBps += m.ThroughputKBps()
		totalMs += float64(m.MeanLatency().Microseconds()) / 1000
	}
	b.ReportMetric(totalKBps/float64(b.N), "KB/s")
	b.ReportMetric(totalMs/float64(b.N), "ms/req")
}

func BenchmarkTable3Config1Unsaturated(b *testing.B) {
	benchTable3(b, harness.Config1Unmodified, 1, 60)
}
func BenchmarkTable3Config2Unsaturated(b *testing.B) {
	benchTable3(b, harness.Config2Transformed, 1, 60)
}
func BenchmarkTable3Config3Unsaturated(b *testing.B) {
	benchTable3(b, harness.Config3AddressSpace, 1, 60)
}
func BenchmarkTable3Config4Unsaturated(b *testing.B) {
	benchTable3(b, harness.Config4UIDVariation, 1, 60)
}
func BenchmarkTable3Config1Saturated(b *testing.B) {
	benchTable3(b, harness.Config1Unmodified, 15, 12)
}
func BenchmarkTable3Config2Saturated(b *testing.B) {
	benchTable3(b, harness.Config2Transformed, 15, 12)
}
func BenchmarkTable3Config3Saturated(b *testing.B) {
	benchTable3(b, harness.Config3AddressSpace, 15, 12)
}
func BenchmarkTable3Config4Saturated(b *testing.B) {
	benchTable3(b, harness.Config4UIDVariation, 15, 12)
}

// --- Worker lanes: intra-group concurrency (prefork sweep) ------------

// benchTable3Workers measures the full configuration-4 stack under the
// paper's saturated load with W prefork worker lanes over the shared
// listener. Unlike benchTable3 it does not pin GOMAXPROCS — prefork
// exists to use the hardware. The per-request cost mixes a blocking
// service component (ServiceTime, which lanes overlap even on one
// CPU — the reason Apache preforks) with a CPU component (WorkFactor,
// which scales only up to GOMAXPROCS), so the sweep shows near-linear
// KB/s scaling in W until one of the two saturates.
func benchTable3Workers(b *testing.B, workers int) {
	b.Helper()
	serverOpts := httpd.Options{
		WorkFactor:  50,
		ServiceTime: 500 * time.Microsecond,
		Workers:     workers,
	}
	var totalKBps, totalMs float64
	for i := 0; i < b.N; i++ {
		h, err := harness.Start(harness.Config4UIDVariation, serverOpts, time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		m, err := webbench.Run(h.Net, h.Port, webbench.Options{
			Engines:           15,
			RequestsPerEngine: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Stop()
		if err != nil {
			b.Fatal(err)
		}
		if res.Alarm != nil {
			b.Fatalf("false alarm under benign load: %v", res.Alarm)
		}
		if res.Workers != workers {
			b.Fatalf("group ran %d lanes, want %d", res.Workers, workers)
		}
		if m.Errors > 0 {
			b.Fatalf("%d request errors", m.Errors)
		}
		totalKBps += m.ThroughputKBps()
		totalMs += float64(m.MeanLatency().Microseconds()) / 1000
	}
	b.ReportMetric(totalKBps/float64(b.N), "KB/s")
	b.ReportMetric(totalMs/float64(b.N), "ms/req")
}

func BenchmarkTable3Config4Workers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			benchTable3Workers(b, w)
		})
	}
}

// --- Figure 1: address-partitioning detection -------------------------

func BenchmarkFigure1Detection(b *testing.B) {
	injected := word.Word(0x00001000)
	deref := sys.ProgramFunc{ProgName: "victim", Fn: func(ctx *sys.Context) error {
		if _, err := ctx.Mem.Alloc(4096); err != nil {
			return err
		}
		if _, err := ctx.Mem.LoadByte(injected); err != nil {
			return err
		}
		return ctx.Exit(0)
	}}
	for i := 0; i < b.N; i++ {
		world, err := vos.NewWorld()
		if err != nil {
			b.Fatal(err)
		}
		res, err := nvkernel.Run(world, simnet.New(0),
			[]sys.Program{deref, deref}, nvkernel.WithAddressPartition())
		if err != nil {
			b.Fatal(err)
		}
		if res.Alarm == nil {
			b.Fatal("injection not detected")
		}
	}
}

// --- Figure 2: UID data-diversity detection ---------------------------

func BenchmarkFigure2Detection(b *testing.B) {
	pair := reexpress.UIDVariation().Pair
	forged := sys.ProgramFunc{ProgName: "forged", Fn: func(ctx *sys.Context) error {
		if _, err := ctx.UIDValue(0); err != nil {
			return err
		}
		return ctx.Exit(0)
	}}
	for i := 0; i < b.N; i++ {
		world, err := vos.NewWorld()
		if err != nil {
			b.Fatal(err)
		}
		res, err := nvkernel.Run(world, simnet.New(0),
			[]sys.Program{forged, forged}, nvkernel.WithUIDVariation(pair))
		if err != nil {
			b.Fatal(err)
		}
		if res.Alarm == nil {
			b.Fatal("forged UID not detected")
		}
	}
}

// --- §3.2: overwrite campaign -----------------------------------------

func BenchmarkOverwriteCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOverwriteCampaign(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverwriteEvaluate(b *testing.B) {
	pair := reexpress.UIDVariation().Pair
	ow := attack.FullWord(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := attack.Evaluate(pair, 30, ow); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4: transformation ------------------------------------------------

func BenchmarkTransformCaseStudy(b *testing.B) {
	f := reexpress.XORMask{Mask: reexpress.UIDMask}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := transform.Apply(transform.SampleServerSource, f); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (§5 / DESIGN.md) ----------------------------------------

// benchRequestCost measures the per-request cost of configuration 4
// with and without the dedicated per-request detection call: the §5
// trade of detection precision against syscall count.
func benchRequestCost(b *testing.B, noDetectionCalls bool) {
	b.Helper()
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	serverOpts := httpd.Options{NoDetectionCalls: noDetectionCalls}
	h, err := harness.Start(harness.Config4UIDVariation, serverOpts, 0)
	if err != nil {
		b.Fatal(err)
	}
	client := h.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, _, err := client.Get("/index.html")
		if err != nil || code != 200 {
			b.Fatalf("request %d: %d %v", i, code, err)
		}
	}
	b.StopTimer()
	if _, err := h.Stop(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAblationDetectionCalls(b *testing.B)  { benchRequestCost(b, false) }
func BenchmarkAblationSyscallBoundary(b *testing.B) { benchRequestCost(b, true) }

// BenchmarkAblationRendezvous measures raw monitor rendezvous cost per
// syscall as group size grows. Like benchDetectionCalls, group startup
// runs off the clock behind a warmup gate so only steady-state
// rendezvous are timed. The kernel runs fully instrumented (obs
// metrics attached) so the 0 allocs/op gate proves the ops surface
// adds no allocation to the hot path.
func BenchmarkAblationRendezvous(b *testing.B) {
	reg := obs.NewRegistry()
	for _, n := range []int{1, 2, 3, 4, 5} {
		n := n
		b.Run(fmt.Sprintf("variants-%d", n), func(b *testing.B) {
			world, err := vos.NewWorld()
			if err != nil {
				b.Fatal(err)
			}
			iters := b.N
			start := make(chan struct{})
			var warm sync.WaitGroup
			warm.Add(n)
			progs := make([]sys.Program, n)
			for i := range progs {
				progs[i] = sys.ProgramFunc{ProgName: "spin", Fn: func(ctx *sys.Context) error {
					if _, err := ctx.Time(); err != nil {
						return err
					}
					warm.Done()
					<-start
					for k := 0; k < iters; k++ {
						if _, err := ctx.Time(); err != nil {
							return err
						}
					}
					return ctx.Exit(0)
				}}
			}
			funcs := make([]reexpress.Func, n)
			for i := range funcs {
				funcs[i] = reexpress.Identity{}
			}
			b.ReportAllocs()
			var res *nvkernel.Result
			var runErr error
			done := make(chan struct{})
			go func() {
				defer close(done)
				res, runErr = nvkernel.Run(world, simnet.New(0), progs,
					nvkernel.WithUIDFuncs(funcs...),
					nvkernel.WithMetrics(nvkernel.NewMetrics(reg)))
			}()
			warm.Wait()
			b.ResetTimer()
			close(start)
			<-done
			b.StopTimer()
			if runErr != nil || !res.Clean {
				b.Fatalf("run: %v %v", runErr, res.Alarm)
			}
		})
	}
}

// BenchmarkAblationUnsharedFiles measures the open+read cost of shared
// vs unshared files (§3.4's mechanism cost).
func BenchmarkAblationUnsharedFiles(b *testing.B) {
	for _, unshared := range []bool{false, true} {
		unshared := unshared
		name := "shared"
		if unshared {
			name = "unshared"
		}
		b.Run(name, func(b *testing.B) {
			pair := reexpress.UIDVariation().Pair
			world, err := vos.NewWorld()
			if err != nil {
				b.Fatal(err)
			}
			if err := nvkernel.SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
				b.Fatal(err)
			}
			iters := b.N
			prog := sys.ProgramFunc{ProgName: "reader", Fn: func(ctx *sys.Context) error {
				for k := 0; k < iters; k++ {
					fd, err := ctx.Open("/etc/passwd", vos.ReadOnly, 0)
					if err != nil {
						return err
					}
					if _, err := ctx.ReadAll(fd); err != nil {
						return err
					}
					if err := ctx.Close(fd); err != nil {
						return err
					}
				}
				return ctx.Exit(0)
			}}
			opts := []nvkernel.Option{}
			if unshared {
				opts = append(opts, nvkernel.WithUnsharedFiles("/etc/passwd"))
			}
			b.ResetTimer()
			res, err := nvkernel.Run(world, simnet.New(0), []sys.Program{prog, prog}, opts...)
			b.StopTimer()
			if err != nil || !res.Clean {
				b.Fatalf("run: %v %v", err, res.Alarm)
			}
		})
	}
}

// --- Fleet: horizontal scaling and availability under attack -----------

// benchFleetSaturated measures saturated fleet throughput at one pool
// size. Unlike the Table 3 benches this deliberately runs on all
// cores: horizontal scaling across groups is the point.
func benchFleetSaturated(b *testing.B, groups, engines int) {
	b.Helper()
	serverOpts := httpd.DefaultOptions()
	serverOpts.WorkFactor = 400
	reg := obs.NewRegistry()
	var totalKBps, totalMs float64
	for i := 0; i < b.N; i++ {
		f, err := fleet.New(fleet.Options{Groups: groups, Server: serverOpts, Obs: reg})
		if err != nil {
			b.Fatal(err)
		}
		m, err := webbench.Run(f.Net(), f.Port(), webbench.Options{
			Engines:           engines,
			RequestsPerEngine: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		stats, err := f.Stop()
		if err != nil {
			b.Fatal(err)
		}
		if m.Errors > 0 {
			b.Fatalf("%d request errors", m.Errors)
		}
		if stats.Detections != 0 {
			b.Fatalf("false detection under benign load: %+v", stats)
		}
		totalKBps += m.ThroughputKBps()
		totalMs += float64(m.MeanLatency().Microseconds()) / 1000
	}
	b.ReportMetric(totalKBps/float64(b.N), "KB/s")
	b.ReportMetric(totalMs/float64(b.N), "ms/req")
}

func BenchmarkFleetSaturatedPool1(b *testing.B) { benchFleetSaturated(b, 1, 15) }
func BenchmarkFleetSaturatedPool2(b *testing.B) { benchFleetSaturated(b, 2, 15) }
func BenchmarkFleetSaturatedPool4(b *testing.B) { benchFleetSaturated(b, 4, 15) }
func BenchmarkFleetSaturatedPool8(b *testing.B) { benchFleetSaturated(b, 8, 15) }

// BenchmarkFleetUnderAttack runs the fleet-under-attack scenario and
// reports the availability headline: throughput retained relative to
// the attack-free baseline while every probe is detected and every
// struck group is quarantined and replaced.
func BenchmarkFleetUnderAttack(b *testing.B) {
	var retained, errRate float64
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFleetAttackOptions()
		opts.RequestsPerEngine = 12
		opts.Probes = 3
		r, err := experiments.RunFleetAttack(opts)
		if err != nil {
			b.Fatal(err)
		}
		if r.Detections != opts.Probes {
			b.Fatalf("detections = %d, want %d", r.Detections, opts.Probes)
		}
		retained += r.ThroughputRetained()
		errRate += r.ErrorRate()
	}
	b.ReportMetric(retained/float64(b.N), "retained")
	b.ReportMetric(errRate/float64(b.N), "err-rate")
}

// BenchmarkFleetDispatchOverhead measures the per-request cost the
// dispatcher adds over a directly-dialed group (pool of one, so the
// difference is pure proxy overhead). The fleet runs instrumented so
// the allocs/op gate proves counting dispatches stays allocation-free.
func BenchmarkFleetDispatchOverhead(b *testing.B) {
	f, err := fleet.New(fleet.Options{Groups: 1, Obs: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	client := f.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, _, err := client.Get("/index.html")
		if err != nil || code != 200 {
			b.Fatalf("request %d: %d %v", i, code, err)
		}
	}
	b.StopTimer()
	if _, err := f.Stop(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMeshDispatchOverhead measures the per-request cost the mesh
// router adds on top of fleet dispatch (one pool, one group, so the
// difference against BenchmarkFleetDispatchOverhead is pure routing:
// admission CAS, inflight accounting, and the mesh tick). The mesh runs
// instrumented and with a retry budget armed, so the allocs/op gate
// proves the no-retry hot path stays allocation-free even with the
// retry machinery compiled in.
func BenchmarkMeshDispatchOverhead(b *testing.B) {
	m, err := mesh.New(mesh.Options{
		Pools:       1,
		RetryBudget: 4,
		Obs:         obs.NewRegistry(),
		Fleet:       fleet.Options{Groups: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	sess := m.Session("bench")
	req := httpd.AppendRequest(nil, "/index.html")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, _, err := sess.Fetch(req)
		if err != nil || code != 200 {
			b.Fatalf("request %d: %d %v", i, code, err)
		}
	}
	b.StopTimer()
	if _, err := m.Stop(); err != nil {
		b.Fatal(err)
	}
}

// --- DiversitySpec: generation and N-wide detection --------------------

// BenchmarkGenerateSpec measures the cost of drawing one validated
// full-stack spec — the fleet pays this on every replacement, so it
// bounds recovery latency.
func BenchmarkGenerateSpec(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		n := n
		b.Run(fmt.Sprintf("variants-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spec := reexpress.Generate(int64(i+1), n,
					reexpress.LayerUID, reexpress.LayerAddressPartition, reexpress.LayerUnsharedFiles)
				if spec.N() != n {
					b.Fatalf("spec N = %d", spec.N())
				}
			}
		})
	}
}

// BenchmarkSpecDetection measures end-to-end forged-UID detection time
// as the group size grows (the N-wide Figure 2).
func BenchmarkSpecDetection(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		n := n
		b.Run(fmt.Sprintf("variants-%d", n), func(b *testing.B) {
			spec := reexpress.Generate(int64(n), n)
			forged := sys.ProgramFunc{ProgName: "forged", Fn: func(ctx *sys.Context) error {
				if _, err := ctx.UIDValue(0); err != nil {
					return err
				}
				return ctx.Exit(0)
			}}
			progs := make([]sys.Program, n)
			for i := range progs {
				progs[i] = forged
			}
			for i := 0; i < b.N; i++ {
				world, err := vos.NewWorld()
				if err != nil {
					b.Fatal(err)
				}
				res, err := nvkernel.Run(world, simnet.New(0), progs, nvkernel.WithSpec(spec))
				if err != nil {
					b.Fatal(err)
				}
				if res.Alarm == nil {
					b.Fatal("forged UID not detected")
				}
			}
		})
	}
}

// --- Instruction-set tagging substrate ---------------------------------

func BenchmarkISATaggedExecution(b *testing.B) {
	code, err := isa.Assemble(`
    movi r1, 0
    movi r2, 100
    movi r3, 1
    jz   r2, 7
    add  r1, r2
    sub  r2, r3
    jmp  3
    out  r1
    halt
`)
	if err != nil {
		b.Fatal(err)
	}
	img, err := isa.TagImage(code, reexpress.TagBit{Tag: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vm := isa.NewVM(img, reexpress.TagBit{Tag: true})
		if err := vm.Run(10000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end attack detection ---------------------------------------

// BenchmarkAttackDetectionLatency measures the wall time from mounting
// the two-step UID-forging attack to the monitor's kill, on the full
// configuration-4 stack.
func BenchmarkAttackDetectionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := harness.Start(harness.Config4UIDVariation, httpd.Options{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		client := h.Client()
		if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
			b.Fatal(err)
		}
		_, _, _ = client.Get("/private/secret.html")
		res, err := h.Stop()
		if err != nil {
			b.Fatal(err)
		}
		if res.Alarm == nil {
			b.Fatal("attack not detected")
		}
	}
}
