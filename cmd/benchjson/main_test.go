package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrajectory writes a one-report trajectory file for gating.
func writeTrajectory(t *testing.T, benches []Bench) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "traj.json")
	data, err := json.Marshal([]Report{{Kind: "bench-core", Label: "base", Benches: benches}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateMetricRegressions(t *testing.T) {
	base := []Bench{{
		Name:        "BenchmarkSaturated",
		Iters:       3,
		AllocsPerOp: 1000,
		Metrics:     map[string]float64{"KB/s": 1000, "ms/req": 20},
	}}
	cases := []struct {
		name    string
		cur     Bench
		wantErr string
	}{
		{
			name: "within-tolerance",
			cur: Bench{Name: "BenchmarkSaturated", AllocsPerOp: 1050,
				Metrics: map[string]float64{"KB/s": 900, "ms/req": 22}},
		},
		{
			name: "throughput-drop",
			cur: Bench{Name: "BenchmarkSaturated", AllocsPerOp: 1000,
				Metrics: map[string]float64{"KB/s": 500, "ms/req": 20}},
			wantErr: "KB/s",
		},
		{
			name: "latency-growth",
			cur: Bench{Name: "BenchmarkSaturated", AllocsPerOp: 1000,
				Metrics: map[string]float64{"KB/s": 1000, "ms/req": 40}},
			wantErr: "ms/req",
		},
		{
			name: "allocs-growth",
			cur: Bench{Name: "BenchmarkSaturated", AllocsPerOp: 2000,
				Metrics: map[string]float64{"KB/s": 1000, "ms/req": 20}},
			wantErr: "BenchmarkSaturated",
		},
		{
			// A higher-is-better metric improving sharply must not trip
			// the gate, nor must a latency improvement.
			name: "improvements",
			cur: Bench{Name: "BenchmarkSaturated", AllocsPerOp: 10,
				Metrics: map[string]float64{"KB/s": 4000, "ms/req": 5}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := writeTrajectory(t, base)
			err := gateAgainst(path, Report{Benches: []Bench{tc.cur}}, 0.10, 0.25)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("gate failed: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("gate error = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestGateMissingBaselineBench(t *testing.T) {
	path := writeTrajectory(t, []Bench{
		{Name: "BenchmarkA", AllocsPerOp: 1},
		{Name: "BenchmarkB", AllocsPerOp: 1},
	})
	err := gateAgainst(path, Report{Benches: []Bench{{Name: "BenchmarkA", AllocsPerOp: 1}}}, 0.10, 0.25)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkB") {
		t.Fatalf("gate error = %v, want missing-bench failure naming BenchmarkB", err)
	}
}

func TestGateIgnoresUnsharedMetrics(t *testing.T) {
	// A bench whose baseline has no custom metrics is gated on allocs
	// alone — a metric newly reported by the input has no baseline yet.
	path := writeTrajectory(t, []Bench{{Name: "BenchmarkX", AllocsPerOp: 5}})
	cur := Report{Benches: []Bench{{Name: "BenchmarkX", AllocsPerOp: 5,
		Metrics: map[string]float64{"KB/s": 1}}}}
	if err := gateAgainst(path, cur, 0.10, 0.25); err != nil {
		t.Fatalf("gate failed on unshared metric: %v", err)
	}
}

func TestGateFailsOnVanishedMetric(t *testing.T) {
	// A gated metric present in the baseline but missing from the input
	// (e.g. a dropped ReportMetric call) must fail loudly, not silently
	// disable throughput gating.
	path := writeTrajectory(t, []Bench{{Name: "BenchmarkX", AllocsPerOp: 5,
		Metrics: map[string]float64{"KB/s": 1000}}})
	cur := Report{Benches: []Bench{{Name: "BenchmarkX", AllocsPerOp: 5}}}
	err := gateAgainst(path, cur, 0.10, 0.25)
	if err == nil || !strings.Contains(err.Error(), "KB/s missing") {
		t.Fatalf("gate error = %v, want vanished-metric failure", err)
	}
}
