// Command benchjson converts `go test -bench` output into the JSON
// trajectory format of BENCH_core.json, so the core hot-path numbers
// (rendezvous, Table 2/3, fleet dispatch) are machine-readable the way
// cmd/fleetbench's -json sweep (BENCH_fleet.json) already is.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem | benchjson -label PR7        # one report
//	... | benchjson -label PR7 -append BENCH_core.json                   # extend a trajectory
//	... | benchjson -gate BENCH_core.json                                # fail on regressions
//
// A trajectory file is a JSON array of reports, ordered oldest first.
// -gate compares the parsed input against the newest report in the
// given trajectory and exits non-zero when any shared benchmark
// regressed beyond tolerance — the CI tripwire that makes performance
// regressions fail loudly. Two regression classes are gated: allocs/op
// growth (-tolerance), and the custom throughput/latency metrics KB/s
// (which must not drop) and ms/req (which must not grow) within
// -metric-tolerance — so a change that keeps allocations flat but
// halves saturated throughput still fails the build.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one benchmark result.
type Bench struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is one measurement run — the unit a trajectory appends.
type Report struct {
	Kind    string  `json:"kind"`
	Label   string  `json:"label,omitempty"`
	Goos    string  `json:"goos,omitempty"`
	Goarch  string  `json:"goarch,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Benches []Bench `json:"benches"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// gomaxprocsSuffix matches the -N cpu suffix go test appends to bench
// names when GOMAXPROCS > 1.
var gomaxprocsSuffix = regexp.MustCompile(`-(\d+)$`)

// normalizeNames strips the GOMAXPROCS suffix so reports from machines
// with different core counts compare. The suffix is uniform across a
// run, which distinguishes it from meaningful trailing numbers in
// sub-bench names (variants-2 … variants-5): names are rewritten only
// when every bench in the report carries the same trailing -N.
func normalizeNames(rep *Report) {
	if len(rep.Benches) == 0 {
		return
	}
	suffix := ""
	for i, b := range rep.Benches {
		m := gomaxprocsSuffix.FindStringSubmatch(b.Name)
		if m == nil {
			return
		}
		if i == 0 {
			suffix = m[1]
		} else if m[1] != suffix {
			return
		}
	}
	for i := range rep.Benches {
		rep.Benches[i].Name = strings.TrimSuffix(rep.Benches[i].Name, "-"+suffix)
	}
}

func main() {
	label := flag.String("label", "", "label recorded on the emitted report")
	appendTo := flag.String("append", "", "existing trajectory file to extend (output is the whole array)")
	gate := flag.String("gate", "", "trajectory file to regression-gate against (no JSON output)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op growth before -gate fails")
	metricTolerance := flag.Float64("metric-tolerance", 0.25, "allowed fractional KB/s drop or ms/req growth before -gate fails (throughput benches are noisier than allocation counts)")
	flag.Parse()

	rep, err := parse(os.Stdin, *label)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *gate != "" {
		if err := gateAgainst(*gate, rep, *tolerance, *metricTolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	var out any = rep
	if *appendTo != "" {
		traj, err := readTrajectory(*appendTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		out = append(traj, rep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads go test -bench output.
func parse(f *os.File, label string) (Report, error) {
	rep := Report{Kind: "bench-core", Label: label}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Bench{Name: m[1]}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return rep, fmt.Errorf("line %q: %w", line, err)
		}
		b.Iters = iters
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("line %q: value %q: %w", line, fields[i], err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		rep.Benches = append(rep.Benches, b)
	}
	normalizeNames(&rep)
	return rep, sc.Err()
}

// readTrajectory loads a trajectory array (or a single report, which
// becomes a one-entry trajectory). A missing file is an empty one.
func readTrajectory(path string) ([]Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var traj []Report
	if err := json.Unmarshal(data, &traj); err == nil {
		return traj, nil
	}
	var one Report
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("%s: not a report or trajectory: %w", path, err)
	}
	return []Report{one}, nil
}

// gatedMetrics lists the custom metrics the gate watches, with their
// improvement direction: higherBetter metrics fail on a drop beyond
// tolerance, the rest fail on growth.
var gatedMetrics = []struct {
	unit         string
	higherBetter bool
}{
	{"KB/s", true},
	{"ms/req", false},
}

// metricRegression reports whether cur regressed against base beyond
// tolerance, for the given direction.
func metricRegression(base, cur float64, higherBetter bool, tolerance float64) bool {
	if higherBetter {
		return cur < base*(1-tolerance)
	}
	return cur > base*(1+tolerance)
}

// gateAgainst compares cur's allocs/op and gated custom metrics
// against the newest report in the trajectory at path.
func gateAgainst(path string, cur Report, tolerance, metricTolerance float64) error {
	traj, err := readTrajectory(path)
	if err != nil {
		return err
	}
	if len(traj) == 0 {
		return fmt.Errorf("%s: empty trajectory, nothing to gate against", path)
	}
	base := traj[len(traj)-1]
	baseBy := make(map[string]Bench, len(base.Benches))
	for _, b := range base.Benches {
		baseBy[b.Name] = b
	}
	var regressed []string
	seen := make(map[string]bool, len(cur.Benches))
	for _, b := range cur.Benches {
		seen[b.Name] = true
		bb, ok := baseBy[b.Name]
		if !ok {
			continue
		}
		limit := bb.AllocsPerOp * (1 + tolerance)
		status := "ok"
		if b.AllocsPerOp > limit {
			status = "REGRESSED"
			regressed = append(regressed, b.Name)
		}
		fmt.Printf("%-48s allocs/op %10.0f -> %10.0f  %s\n", b.Name, bb.AllocsPerOp, b.AllocsPerOp, status)
		for _, gm := range gatedMetrics {
			bv, inBase := bb.Metrics[gm.unit]
			if !inBase {
				continue // metric newly added by this run: nothing to gate yet
			}
			cv, inCur := b.Metrics[gm.unit]
			if !inCur {
				// A gated metric the baseline reports has vanished from
				// the input (a dropped ReportMetric call, a parse
				// change): failing loudly beats silently un-gating the
				// regression class this tripwire exists for — the same
				// reasoning as the missing-bench guard below.
				regressed = append(regressed, b.Name+" ["+gm.unit+" missing from input]")
				fmt.Printf("%-48s %-9s %10.2f -> %10s  MISSING\n", b.Name, gm.unit, bv, "(none)")
				continue
			}
			status := "ok"
			if metricRegression(bv, cv, gm.higherBetter, metricTolerance) {
				status = "REGRESSED"
				regressed = append(regressed, b.Name+" ["+gm.unit+"]")
			}
			fmt.Printf("%-48s %-9s %10.2f -> %10.2f  %s\n", b.Name, gm.unit, bv, cv, status)
		}
	}
	// A baseline bench missing from the input would otherwise escape
	// the gate entirely (a typo'd CI bench regex silently passing is
	// exactly the failure mode this tripwire exists for).
	var missing []string
	for _, b := range base.Benches {
		if !seen[b.Name] {
			missing = append(missing, b.Name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("baseline benches missing from input (gate would be blind to them): %s",
			strings.Join(missing, ", "))
	}
	if len(regressed) > 0 {
		return fmt.Errorf("regressed beyond tolerance (allocs/op %.0f%%, metrics %.0f%%) vs %q: %s",
			tolerance*100, metricTolerance*100, base.Label, strings.Join(regressed, ", "))
	}
	return nil
}
