// Command campaign runs the chaos campaign: the expanded attack corpus
// swept against seeded fault plans across group size, worker-lane
// count and variation stack, emitting a deterministic JSON matrix of
// detection / false-alarm / throughput-retained results on stdout.
// The same -seed reproduces byte-identical output, so any finding is a
// replayable regression test:
//
//	go run ./cmd/campaign -seed 1 -check
//	go run ./cmd/campaign -seed 1 -fault-only -check   # transparency matrix
//	go run ./cmd/campaign -seed 1 -quorum -check       # K-of-N survival matrix
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nvariant/internal/attack"
	"nvariant/internal/chaos"
	"nvariant/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed      = flag.Int64("seed", 1, "campaign seed; the same seed reproduces byte-identical output")
		requests  = flag.Int("requests", 0, "benign requests per cell (0 = config default)")
		ns        = flag.String("n", "", "comma-separated group sizes to sweep (empty = config default)")
		workers   = flag.String("workers", "", "comma-separated worker-lane counts (empty = config default)")
		stacks    = flag.String("stacks", "", "comma-separated variation stacks: uid+addr+files, addr+files")
		attacks   = flag.String("attacks", "", "comma-separated scenario names; 'none' is the benign cell (empty = none + full corpus)")
		faults    = flag.String("faults", "", "comma-separated fault plans; 'all' = every standard plan (empty = config default)")
		faultOnly = flag.Bool("fault-only", false, "transparency campaign: transparent faults only, no attacks, N in {2,3,5}, W in {1,4}")
		quorum    = flag.Bool("quorum", false, "quorum campaign: crash/stall survival and quorum-lost cells at K=2 plus fleet eviction/respawn cells")
		noFleet   = flag.Bool("no-fleet", false, "skip the fleet restart/recovery section")
		noSweep   = flag.Bool("no-bytesweep", false, "skip the word-level mask-byte brute force")
		check     = flag.Bool("check", false, "exit non-zero if the matrix violates the detection / false-alarm contract")
		human     = flag.Bool("v", false, "also print the human-readable summary to stderr")
		opsAddr   = flag.String("ops", "", "serve /metrics and pprof on this host address while the campaign runs (never alters the JSON)")
	)
	flag.Parse()

	cfg := chaos.DefaultConfig(*seed)
	if *faultOnly {
		cfg = chaos.FaultOnlyConfig(*seed)
	}
	if *quorum {
		cfg = chaos.QuorumConfig(*seed)
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	var err error
	if cfg.Ns, err = overrideInts(cfg.Ns, *ns); err != nil {
		return fmt.Errorf("-n: %w", err)
	}
	if cfg.Workers, err = overrideInts(cfg.Workers, *workers); err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	if *stacks != "" {
		cfg.Stacks = splitList(*stacks)
	}
	if *attacks != "" {
		cfg.Attacks = cfg.Attacks[:0]
		for _, name := range splitList(*attacks) {
			if name == "none" {
				cfg.Attacks = append(cfg.Attacks, chaos.NoAttack())
				continue
			}
			sc, err := attack.ScenarioByName(name)
			if err != nil {
				return err
			}
			cfg.Attacks = append(cfg.Attacks, sc)
		}
	}
	if *faults == "all" {
		cfg.Faults = chaos.Plans()
	} else if *faults != "" {
		cfg.Faults = cfg.Faults[:0]
		for _, name := range splitList(*faults) {
			p, err := chaos.PlanByName(name)
			if err != nil {
				return err
			}
			cfg.Faults = append(cfg.Faults, p)
		}
	}
	if *noFleet {
		cfg.Fleet = false
	}
	if *noSweep {
		cfg.ByteSweep = false
	}

	if *opsAddr != "" {
		reg := obs.NewRegistry()
		srv, err := obs.StartServer(*opsAddr, reg, nil)
		if err != nil {
			return fmt.Errorf("-ops: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "campaign: ops server on http://%s (/metrics, /debug/pprof)\n", srv.Addr)
		cfg.Obs = reg
	}

	res, err := chaos.Run(cfg)
	if err != nil {
		return err
	}
	out, err := res.JSON()
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(out); err != nil {
		return err
	}
	if *human {
		res.Fprint(os.Stderr)
	}
	if *check {
		if violations := res.Check(); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "violation:", v)
			}
			return fmt.Errorf("%d contract violations", len(violations))
		}
	}
	return nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// overrideInts parses a comma-separated int list, keeping def when the
// flag is empty.
func overrideInts(def []int, s string) ([]int, error) {
	if s == "" {
		return def, nil
	}
	var out []int
	for _, tok := range splitList(s) {
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}
