// Command uidtransform applies the automated UID variation (§3.3) to
// mini-C source and prints the transformed program plus the change
// accounting the paper reports for its manual Apache transformation.
//
// Usage:
//
//	uidtransform                 # transform the bundled case-study module
//	uidtransform -mask ffffffff  # use the full-flip mask
//	uidtransform file.mc         # transform a source file
//	uidtransform -counts-only file.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"nvariant/internal/reexpress"
	"nvariant/internal/transform"
	"nvariant/internal/word"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uidtransform:", err)
		os.Exit(1)
	}
}

func run() error {
	maskHex := flag.String("mask", "7fffffff", "XOR reexpression mask (hex); 0 = identity")
	countsOnly := flag.Bool("counts-only", false, "print only the change counts")
	flag.Parse()

	mask, err := strconv.ParseUint(*maskHex, 16, 32)
	if err != nil {
		return fmt.Errorf("bad mask %q: %w", *maskHex, err)
	}
	var f reexpress.Func = reexpress.XORMask{Mask: word.Word(mask)}
	if mask == 0 {
		f = reexpress.Identity{}
	}

	src := transform.SampleServerSource
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	}

	res, err := transform.Apply(src, f)
	if err != nil {
		return err
	}

	if !*countsOnly {
		fmt.Println("// --- transformed variant source ---")
		fmt.Print(res.Program.Emit())
		fmt.Println()
	}
	c := res.Counts
	paper := transform.PaperCounts()
	fmt.Printf("changes (vs the paper's manual Apache transformation):\n")
	fmt.Printf("  constants reexpressed:   %3d   (paper: %d)\n", c.Constants, paper.Constants)
	fmt.Printf("    of which implicit:     %3d\n", c.ImplicitConstants)
	fmt.Printf("  uid_value insertions:    %3d   (paper: %d)\n", c.UIDValues, paper.UIDValues)
	fmt.Printf("  comparisons -> cc_*:     %3d   (paper: %d)\n", c.Comparisons, paper.Comparisons)
	fmt.Printf("  cond_chk insertions:     %3d   (paper: %d)\n", c.CondChks, paper.CondChks)
	fmt.Printf("  UID log scrubs:          %3d   (paper: 1, described in §4)\n", c.LogScrubs)
	fmt.Printf("  total:                   %3d   (paper: %d)\n", c.Total(), paper.Total())
	if len(res.InferredUIDVars) > 0 {
		fmt.Printf("  inferred uid_t variables: %v\n", res.InferredUIDVars)
	}
	return nil
}
