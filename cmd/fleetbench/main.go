// Command fleetbench measures how a fleet of N-variant server groups
// scales: it sweeps pool size × webbench engine count and prints a
// scaling table (throughput, mean and tail latency, errors), and can
// run the fleet-under-attack scenario to show availability during an
// attack campaign. Groups are deployed from generated DiversitySpecs:
// -variants sets the per-group N and -stack the variation stack.
//
// Usage:
//
//	fleetbench                      # sweep pools 1,2,4,8 × engines 1,15
//	fleetbench -pools 2,4 -engines 15 -requests 30
//	fleetbench -policy least-loaded # balancing policy
//	fleetbench -variants 3          # pools of 3-variant groups
//	fleetbench -variants 2-4        # each group draws N from [2,4]
//	fleetbench -stack uid,files     # variation stack per group spec
//	fleetbench -json                # machine-readable sweep (BENCH_fleet.json)
//	fleetbench -attack              # fleet-under-attack scenario
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"nvariant/internal/experiments"
	"nvariant/internal/fleet"
	"nvariant/internal/httpd"
	"nvariant/internal/obs"
	"nvariant/internal/reexpress"
	"nvariant/internal/webbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetbench:", err)
		os.Exit(1)
	}
}

// cell is one sweep measurement in the -json output.
type cell struct {
	Pool     int     `json:"pool"`
	Engines  int     `json:"engines"`
	Requests int     `json:"requests"`
	KBps     float64 `json:"kbps"`
	MeanMs   float64 `json:"mean_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Errors   int     `json:"errors"`
}

// report is the -json document (the CI perf-trajectory artifact).
type report struct {
	Kind     string `json:"kind"`
	Policy   string `json:"policy"`
	Variants string `json:"variants"`
	Stack    string `json:"stack"`
	Work     int    `json:"work"`
	Workers  int    `json:"workers,omitempty"`
	Cells    []cell `json:"cells"`
}

func run() error {
	pools := flag.String("pools", "1,2,4,8", "comma-separated pool sizes to sweep")
	engines := flag.String("engines", "1,15", "comma-separated engine counts to sweep")
	requests := flag.Int("requests", 25, "requests per engine")
	workFactor := flag.Int("work", 400, "per-request CPU work factor")
	latency := flag.Duration("latency", 0, "one-way wire latency")
	policyName := flag.String("policy", "round-robin", "balancing policy: round-robin or least-loaded")
	variantsFlag := flag.String("variants", "2", "per-group variant count N, or a range like 2-4")
	workers := flag.Int("workers", 0, "per-group prefork worker-lane count (0 = serial groups)")
	stackFlag := flag.String("stack", "", "variation stack per group spec (e.g. uid,addr,files; default: the full §4 stack)")
	jsonOut := flag.Bool("json", false, "emit the sweep as JSON on stdout")
	attackMode := flag.Bool("attack", false, "run the fleet-under-attack scenario instead of the sweep")
	probes := flag.Int("probes", 5, "attack probes in -attack mode")
	opsAddr := flag.String("ops", "", "serve /metrics, /audit and pprof on this host address (e.g. 127.0.0.1:9090)")
	linger := flag.Duration("linger", 0, "after the sweep, keep an instrumented fleet under trickle load for this long (requires -ops)")
	flag.Parse()

	policy, err := parsePolicy(*policyName)
	if err != nil {
		return err
	}
	minVariants, maxVariants, err := parseVariants(*variantsFlag)
	if err != nil {
		return fmt.Errorf("-variants: %w", err)
	}
	var stack []reexpress.LayerKind
	if *stackFlag != "" {
		if stack, err = reexpress.ParseStack(*stackFlag); err != nil {
			return err
		}
	}

	var (
		reg *obs.Registry
		// audit merges every cell fleet's recovery log into one
		// vtime-ordered /audit tail, so an operator watching the sweep
		// sees the whole history, not just the newest fleet's.
		audit *fleet.MultiAudit
	)
	if *opsAddr != "" {
		reg = obs.NewRegistry()
		audit = fleet.NewMultiAudit()
		srv, err := obs.StartServer(*opsAddr, reg, audit)
		if err != nil {
			return fmt.Errorf("-ops: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fleetbench: ops server on http://%s (/metrics, /audit, /debug/pprof)\n", srv.Addr)
	} else if *linger > 0 {
		return fmt.Errorf("-linger requires -ops")
	}

	if *attackMode {
		if *jsonOut {
			return fmt.Errorf("-json applies to the scaling sweep, not -attack")
		}
		if *opsAddr != "" {
			return fmt.Errorf("-ops applies to the scaling sweep, not -attack")
		}
		opts := experiments.DefaultFleetAttackOptions()
		// -pools/-engines are sweep lists; the attack scenario runs one
		// fleet, so honor them only as single values (and only when
		// explicitly set — the sweep defaults are multi-valued).
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if explicit["pools"] {
			if opts.Groups, err = parseSingle("pools", *pools); err != nil {
				return err
			}
		}
		if explicit["engines"] {
			if opts.Engines, err = parseSingle("engines", *engines); err != nil {
				return err
			}
		}
		opts.RequestsPerEngine = *requests
		opts.WorkFactor = *workFactor
		opts.Latency = *latency
		opts.Policy = policy
		opts.Probes = *probes
		opts.Variants = minVariants
		opts.MaxVariants = maxVariants
		opts.Stack = stack
		opts.Workers = *workers
		r, err := experiments.RunFleetAttack(opts)
		if err != nil {
			return err
		}
		r.Fprint(os.Stdout)
		return nil
	}

	poolSizes, err := parseInts(*pools)
	if err != nil {
		return fmt.Errorf("-pools: %w", err)
	}
	engineCounts, err := parseInts(*engines)
	if err != nil {
		return fmt.Errorf("-engines: %w", err)
	}

	serverOpts := httpd.DefaultOptions()
	serverOpts.WorkFactor = *workFactor

	fleetOpts := fleet.Options{
		Policy:      policy,
		Latency:     *latency,
		Server:      serverOpts,
		Variants:    minVariants,
		MaxVariants: maxVariants,
		Stack:       stack,
		Workers:     *workers,
		Obs:         reg,
	}

	rep := report{
		Kind:     "fleetbench",
		Policy:   policy.String(),
		Variants: *variantsFlag,
		Stack:    *stackFlag,
		Work:     *workFactor,
		Workers:  *workers,
	}
	if !*jsonOut {
		fmt.Printf("Fleet scaling sweep (policy %s, N=%s, W=%d, %d requests/engine, work factor %d, latency %v)\n",
			policy, *variantsFlag, *workers, *requests, *workFactor, *latency)
		fmt.Printf("%-8s %-9s %12s %10s %10s %10s %8s\n",
			"pool", "engines", "KB/s", "mean ms", "p95 ms", "p99 ms", "errors")
	}
	for _, groups := range poolSizes {
		for _, eng := range engineCounts {
			m, err := measure(groups, eng, *requests, fleetOpts, audit, fmt.Sprintf("pool%dx%d", groups, eng))
			if err != nil {
				return fmt.Errorf("pool %d engines %d: %w", groups, eng, err)
			}
			if *jsonOut {
				rep.Cells = append(rep.Cells, cell{
					Pool: groups, Engines: eng, Requests: m.Requests,
					KBps:   m.ThroughputKBps(),
					MeanMs: ms(m.MeanLatency()), P95Ms: ms(m.P95Latency), P99Ms: ms(m.P99Latency),
					Errors: m.Errors,
				})
				continue
			}
			fmt.Printf("%-8d %-9d %12.1f %10.3f %10.3f %10.3f %8d\n",
				groups, eng, m.ThroughputKBps(),
				ms(m.MeanLatency()), ms(m.P95Latency), ms(m.P99Latency), m.Errors)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	if *linger > 0 {
		return lingerFleet(poolSizes[len(poolSizes)-1], *linger, fleetOpts, audit)
	}
	return nil
}

// lingerFleet keeps one instrumented fleet alive under a trickle of
// benign load so the ops endpoints can be scraped live (the CI
// ops-smoke job polls /metrics against this window).
func lingerFleet(groups int, d time.Duration, opts fleet.Options, audit *fleet.MultiAudit) error {
	opts.Groups = groups
	f, err := fleet.New(opts)
	if err != nil {
		return err
	}
	if audit != nil {
		audit.Attach("linger", f.Audit())
	}
	fmt.Fprintf(os.Stderr, "fleetbench: lingering %v with a %d-group fleet under trickle load\n", d, groups)
	client := f.Client()
	req := httpd.AppendRequest(nil, "/index.html")
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if _, _, err := client.Fetch(req); err != nil {
			_, _ = f.Stop()
			return fmt.Errorf("linger load: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, err = f.Stop()
	return err
}

// measure runs one cell of the sweep on a fresh fleet.
func measure(groups, engines, requests int, opts fleet.Options, audit *fleet.MultiAudit, name string) (webbench.Metrics, error) {
	opts.Groups = groups
	f, err := fleet.New(opts)
	if err != nil {
		return webbench.Metrics{}, err
	}
	if audit != nil {
		audit.Attach(name, f.Audit())
	}
	m, err := webbench.Run(f.Net(), f.Port(), webbench.Options{
		Engines:           engines,
		RequestsPerEngine: requests,
	})
	if err != nil {
		_, _ = f.Stop()
		return m, err
	}
	stats, err := f.Stop()
	if err != nil {
		return m, err
	}
	if stats.Detections != 0 {
		return m, fmt.Errorf("false detection under benign load: %+v", stats)
	}
	return m, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func parsePolicy(name string) (fleet.Policy, error) {
	switch name {
	case "round-robin", "rr":
		return fleet.RoundRobin, nil
	case "least-loaded", "ll":
		return fleet.LeastLoaded, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want round-robin or least-loaded)", name)
	}
}

// parseVariants parses "3" or a range like "2-4" into (min, max); max
// is 0 for a fixed N.
func parseVariants(s string) (int, int, error) {
	lo, hi, ok := strings.Cut(s, "-")
	n, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil || n < 2 {
		return 0, 0, fmt.Errorf("bad variant count %q (want an integer >= 2)", lo)
	}
	if !ok {
		return n, 0, nil
	}
	m, err := strconv.Atoi(strings.TrimSpace(hi))
	if err != nil || m < n {
		return 0, 0, fmt.Errorf("bad variant range %q", s)
	}
	return n, m, nil
}

// parseSingle parses a flag that must carry exactly one count in
// -attack mode.
func parseSingle(name, csv string) (int, error) {
	vals, err := parseInts(csv)
	if err != nil {
		return 0, fmt.Errorf("-%s: %w", name, err)
	}
	if len(vals) != 1 {
		return 0, fmt.Errorf("-%s: -attack runs one fleet, want a single value (got %q)", name, csv)
	}
	return vals[0], nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
