// Command fleetbench measures how a fleet of N-variant server groups
// scales: it sweeps pool size × webbench engine count and prints a
// scaling table (throughput, mean and tail latency, errors), and can
// run the fleet-under-attack scenario to show availability during an
// attack campaign.
//
// Usage:
//
//	fleetbench                      # sweep pools 1,2,4,8 × engines 1,15
//	fleetbench -pools 2,4 -engines 15 -requests 30
//	fleetbench -policy least-loaded # balancing policy
//	fleetbench -attack              # fleet-under-attack scenario
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"nvariant/internal/experiments"
	"nvariant/internal/fleet"
	"nvariant/internal/httpd"
	"nvariant/internal/webbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetbench:", err)
		os.Exit(1)
	}
}

func run() error {
	pools := flag.String("pools", "1,2,4,8", "comma-separated pool sizes to sweep")
	engines := flag.String("engines", "1,15", "comma-separated engine counts to sweep")
	requests := flag.Int("requests", 25, "requests per engine")
	workFactor := flag.Int("work", 400, "per-request CPU work factor")
	latency := flag.Duration("latency", 0, "one-way wire latency")
	policyName := flag.String("policy", "round-robin", "balancing policy: round-robin or least-loaded")
	attackMode := flag.Bool("attack", false, "run the fleet-under-attack scenario instead of the sweep")
	probes := flag.Int("probes", 5, "attack probes in -attack mode")
	flag.Parse()

	policy, err := parsePolicy(*policyName)
	if err != nil {
		return err
	}

	if *attackMode {
		opts := experiments.DefaultFleetAttackOptions()
		opts.RequestsPerEngine = *requests
		opts.WorkFactor = *workFactor
		opts.Latency = *latency
		opts.Policy = policy
		opts.Probes = *probes
		r, err := experiments.RunFleetAttack(opts)
		if err != nil {
			return err
		}
		r.Fprint(os.Stdout)
		return nil
	}

	poolSizes, err := parseInts(*pools)
	if err != nil {
		return fmt.Errorf("-pools: %w", err)
	}
	engineCounts, err := parseInts(*engines)
	if err != nil {
		return fmt.Errorf("-engines: %w", err)
	}

	serverOpts := httpd.DefaultOptions()
	serverOpts.WorkFactor = *workFactor

	fmt.Printf("Fleet scaling sweep (policy %s, %d requests/engine, work factor %d, latency %v)\n",
		policy, *requests, *workFactor, *latency)
	fmt.Printf("%-8s %-9s %12s %10s %10s %10s %8s\n",
		"pool", "engines", "KB/s", "mean ms", "p95 ms", "p99 ms", "errors")
	for _, groups := range poolSizes {
		for _, eng := range engineCounts {
			m, err := measure(groups, eng, *requests, *latency, policy, serverOpts)
			if err != nil {
				return fmt.Errorf("pool %d engines %d: %w", groups, eng, err)
			}
			fmt.Printf("%-8d %-9d %12.1f %10.3f %10.3f %10.3f %8d\n",
				groups, eng, m.ThroughputKBps(),
				ms(m.MeanLatency()), ms(m.P95Latency), ms(m.P99Latency), m.Errors)
		}
	}
	return nil
}

// measure runs one cell of the sweep on a fresh fleet.
func measure(groups, engines, requests int, latency time.Duration, policy fleet.Policy, serverOpts httpd.Options) (webbench.Metrics, error) {
	f, err := fleet.New(fleet.Options{
		Groups:  groups,
		Server:  serverOpts,
		Policy:  policy,
		Latency: latency,
	})
	if err != nil {
		return webbench.Metrics{}, err
	}
	m, err := webbench.Run(f.Net(), f.Port(), webbench.Options{
		Engines:           engines,
		RequestsPerEngine: requests,
	})
	if err != nil {
		_, _ = f.Stop()
		return m, err
	}
	stats, err := f.Stop()
	if err != nil {
		return m, err
	}
	if stats.Detections != 0 {
		return m, fmt.Errorf("false detection under benign load: %+v", stats)
	}
	return m, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func parsePolicy(name string) (fleet.Policy, error) {
	switch name {
	case "round-robin", "rr":
		return fleet.RoundRobin, nil
	case "least-loaded", "ll":
		return fleet.LeastLoaded, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want round-robin or least-loaded)", name)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
