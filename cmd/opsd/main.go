// Command opsd demonstrates the ops surface end to end: it deploys an
// instrumented N-variant fleet — or, with -pools > 1 or -rotate > 0, a
// sharded mesh with moving-target rotation — keeps it under light
// benign load, and serves /metrics (Prometheus text), /audit
// (recovery-log NDJSON, merged across pools in mesh mode) and
// /debug/pprof on a loopback address until -duration elapses or the
// process is interrupted.
//
// It doubles as the exposition-format linter the CI ops-smoke job
// uses: -lint checks a scraped /metrics payload for well-formedness,
// and -require asserts the metric families that must be present.
//
// Usage:
//
//	opsd                                  # fleet + ops server on 127.0.0.1:9090
//	opsd -pools 2 -rotate 64              # mesh mode with rotation
//	opsd -addr 127.0.0.1:0 -duration 30s  # ephemeral port, bounded run
//	curl -s localhost:9090/metrics | opsd -lint
//	opsd -lint metrics.txt -require nvk_syscalls_total,mesh_rotations_total
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"nvariant/internal/fleet"
	"nvariant/internal/httpd"
	"nvariant/internal/mesh"
	"nvariant/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "opsd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9090", "host address for the ops server")
	groups := flag.Int("groups", 2, "pool size (per pool in mesh mode)")
	variants := flag.Int("variants", 2, "variants per group")
	workers := flag.Int("workers", 0, "per-group prefork worker lanes (0 = serial)")
	pools := flag.Int("pools", 1, "pool count: > 1 serves a sharded mesh instead of one fleet")
	rotate := flag.Uint64("rotate", 0, "mesh: rotate a healthy group every N dispatches (0 = off; > 0 implies mesh mode)")
	floor := flag.Int("floor", 0, "mesh: availability floor in healthy groups per pool (0 = groups-1)")
	duration := flag.Duration("duration", 0, "exit after this long (0 = run until interrupted)")
	lintMode := flag.Bool("lint", false, "lint a Prometheus exposition payload (from the file argument or stdin) instead of serving")
	require := flag.String("require", "", "with -lint: comma-separated metric families that must be present")
	flag.Parse()

	if *lintMode {
		return lint(flag.Arg(0), *require)
	}
	if *pools > 1 || *rotate > 0 {
		return serveMesh(*addr, *pools, *groups, *variants, *workers, *rotate, *floor, *duration)
	}
	return serveFleet(*addr, *groups, *variants, *workers, *duration)
}

// serveFleet is the single-pool mode: one instrumented fleet under
// trickle load.
func serveFleet(addr string, groups, variants, workers int, duration time.Duration) error {
	reg := obs.NewRegistry()
	f, err := fleet.New(fleet.Options{
		Groups:   groups,
		Variants: variants,
		Workers:  workers,
		Server:   httpd.DefaultOptions(),
		Obs:      reg,
	})
	if err != nil {
		return err
	}
	defer func() { _, _ = f.Stop() }()

	srv, err := obs.StartServer(addr, reg, f.Audit())
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "opsd: %d-group fleet (N=%d, W=%d) up; ops on http://%s\n",
		groups, variants, workers, srv.Addr)
	fmt.Fprintf(os.Stderr, "opsd: try  curl -s http://%s/metrics  and  curl -s http://%s/audit\n",
		srv.Addr, srv.Addr)

	client := f.Client()
	req := httpd.AppendRequest(nil, "/index.html")
	return trickle(duration, func() error {
		_, _, err := client.Fetch(req)
		return err
	})
}

// serveMesh is the sharded mode: a mesh of pools with optional
// moving-target rotation, trickle load spread across sticky sessions,
// and the merged cross-pool audit tail on /audit.
func serveMesh(addr string, pools, groups, variants, workers int, rotate uint64, floor int, duration time.Duration) error {
	reg := obs.NewRegistry()
	m, err := mesh.New(mesh.Options{
		Pools:             pools,
		RotateEvery:       rotate,
		AvailabilityFloor: floor,
		Obs:               reg,
		Fleet: fleet.Options{
			Groups:   groups,
			Variants: variants,
			Workers:  workers,
			Server:   httpd.DefaultOptions(),
		},
	})
	if err != nil {
		return err
	}
	defer func() { _, _ = m.Stop() }()

	srv, err := obs.StartServer(addr, reg, m.Audit())
	if err != nil {
		return err
	}
	defer srv.Close()
	rotating := "rotation off"
	if rotate > 0 {
		rotating = fmt.Sprintf("rotating every %d dispatches", rotate)
	}
	fmt.Fprintf(os.Stderr, "opsd: %d-pool mesh (%d groups/pool, N=%d, W=%d, %s) up; ops on http://%s\n",
		pools, groups, variants, workers, rotating, srv.Addr)
	fmt.Fprintf(os.Stderr, "opsd: try  curl -s http://%s/metrics  and  curl -s http://%s/audit\n",
		srv.Addr, srv.Addr)

	// Trickle load round-robins over sticky sessions so every pool's
	// metrics move and rotation triggers keep firing.
	sessions := make([]*mesh.Session, 4*pools)
	for i := range sessions {
		sessions[i] = m.Session(fmt.Sprintf("trickle-%d", i))
	}
	req := httpd.AppendRequest(nil, "/index.html")
	i := 0
	return trickle(duration, func() error {
		s := sessions[i%len(sessions)]
		i++
		_, _, err := s.Fetch(req)
		return err
	})
}

// trickle fires step every 10ms until the duration elapses or the
// process is interrupted.
func trickle(duration time.Duration, step func() error) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	var deadline <-chan time.Time
	if duration > 0 {
		deadline = time.After(duration)
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			fmt.Fprintln(os.Stderr, "opsd: interrupted, shutting down")
			return nil
		case <-deadline:
			return nil
		case <-tick.C:
			if err := step(); err != nil {
				return fmt.Errorf("trickle load: %w", err)
			}
		}
	}
}

// lint validates a Prometheus text payload read from path (or stdin
// when path is empty or "-") and optionally asserts required families.
func lint(path, require string) error {
	var (
		data []byte
		err  error
	)
	if path == "" || path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	problems := obs.LintPrometheus(data)
	if require != "" {
		var names []string
		for _, n := range strings.Split(require, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		problems = append(problems, obs.RequireFamilies(data, names)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "lint:", p)
		}
		return fmt.Errorf("%d problems", len(problems))
	}
	fmt.Printf("ok: %d bytes, no problems\n", len(data))
	return nil
}
