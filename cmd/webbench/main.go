// Command webbench runs the Table 3 performance experiment: the
// WebBench-style load harness against the four configurations, in
// unsaturated (1 engine) and saturated (15 engine) modes, printing the
// measured table next to the paper's published values.
//
// Usage:
//
//	webbench                  # the full Table 3 matrix
//	webbench -config 4        # one configuration, both operating points
//	webbench -quick           # smaller run for a fast sanity check
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nvariant/internal/experiments"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/webbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webbench:", err)
		os.Exit(1)
	}
}

func run() error {
	configNum := flag.Int("config", 0, "run only this configuration (1..4); 0 = all")
	quick := flag.Bool("quick", false, "smaller run sizes")
	engines := flag.Int("engines", 15, "saturated engine count")
	workFactor := flag.Int("work", 400, "per-request CPU work factor")
	latency := flag.Duration("latency", time.Millisecond, "one-way wire latency")
	flag.Parse()

	opts := experiments.DefaultTable3Options()
	opts.SatEngines = *engines
	opts.WorkFactor = *workFactor
	opts.Latency = *latency
	if *quick {
		opts.UnsatRequests = 80
		opts.SatRequestsPerEngine = 15
	}

	if *configNum == 0 {
		res, err := experiments.RunTable3(opts)
		if err != nil {
			return err
		}
		res.Fprint(os.Stdout)
		if err := res.ShapeHolds(); err != nil {
			fmt.Printf("\nWARNING: shape check: %v\n", err)
		} else {
			fmt.Printf("\nshape checks passed: the paper's qualitative claims hold on this substrate\n")
		}
		return nil
	}

	if *configNum < 1 || *configNum > 4 {
		return fmt.Errorf("config must be 0..4, got %d", *configNum)
	}
	cfg := harness.Configuration(*configNum)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	serverOpts := httpd.Options{WorkFactor: opts.WorkFactor}
	for _, load := range []struct {
		name string
		opts webbench.Options
	}{
		{"unsaturated", webbench.Options{Engines: 1, RequestsPerEngine: opts.UnsatRequests}},
		{"saturated", webbench.Options{Engines: opts.SatEngines, RequestsPerEngine: opts.SatRequestsPerEngine}},
	} {
		h, err := harness.Start(cfg, serverOpts, opts.Latency)
		if err != nil {
			return err
		}
		m, err := webbench.Run(h.Net, h.Port, load.opts)
		if err != nil {
			return err
		}
		res, err := h.Stop()
		if err != nil {
			return err
		}
		if res.Alarm != nil {
			return fmt.Errorf("false alarm under load: %s", res.Alarm)
		}
		fmt.Printf("%s %-12s %s\n", cfg, load.name, m)
	}
	return nil
}
