// Command webbench runs the Table 3 performance experiment: the
// WebBench-style load harness against the four configurations, in
// unsaturated (1 engine) and saturated (15 engine) modes, printing the
// measured table next to the paper's published values.
//
// Usage:
//
//	webbench                  # the full Table 3 matrix
//	webbench -config 4        # one configuration, both operating points
//	webbench -quick           # smaller run for a fast sanity check
//	webbench -json            # machine-readable per-cell results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nvariant/internal/experiments"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/webbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webbench:", err)
		os.Exit(1)
	}
}

// jsonCell is one configuration × operating-point measurement in the
// -json output, scrapeable alongside /metrics.
type jsonCell struct {
	Config   string  `json:"config"`
	Mode     string  `json:"mode"`
	Engines  int     `json:"engines"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	KBps     float64 `json:"kb_per_s"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

func toMs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func run() error {
	configNum := flag.Int("config", 0, "run only this configuration (1..4); 0 = all")
	quick := flag.Bool("quick", false, "smaller run sizes")
	engines := flag.Int("engines", 15, "saturated engine count")
	workFactor := flag.Int("work", 400, "per-request CPU work factor")
	latency := flag.Duration("latency", time.Millisecond, "one-way wire latency")
	jsonOut := flag.Bool("json", false, "emit per-cell JSON (throughput, percentiles, errors) instead of the table")
	flag.Parse()

	opts := experiments.DefaultTable3Options()
	opts.SatEngines = *engines
	opts.WorkFactor = *workFactor
	opts.Latency = *latency
	if *quick {
		opts.UnsatRequests = 80
		opts.SatRequestsPerEngine = 15
	}

	if *configNum == 0 && !*jsonOut {
		res, err := experiments.RunTable3(opts)
		if err != nil {
			return err
		}
		res.Fprint(os.Stdout)
		if err := res.ShapeHolds(); err != nil {
			fmt.Printf("\nWARNING: shape check: %v\n", err)
		} else {
			fmt.Printf("\nshape checks passed: the paper's qualitative claims hold on this substrate\n")
		}
		return nil
	}

	if *configNum < 0 || *configNum > 4 {
		return fmt.Errorf("config must be 0..4, got %d", *configNum)
	}
	configs := []harness.Configuration{harness.Configuration(*configNum)}
	if *configNum == 0 {
		configs = []harness.Configuration{1, 2, 3, 4}
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	serverOpts := httpd.Options{WorkFactor: opts.WorkFactor}
	var cells []jsonCell
	for _, cfg := range configs {
		for _, load := range []struct {
			name string
			opts webbench.Options
		}{
			{"unsaturated", webbench.Options{Engines: 1, RequestsPerEngine: opts.UnsatRequests}},
			{"saturated", webbench.Options{Engines: opts.SatEngines, RequestsPerEngine: opts.SatRequestsPerEngine}},
		} {
			h, err := harness.Start(cfg, serverOpts, opts.Latency)
			if err != nil {
				return err
			}
			m, err := webbench.Run(h.Net, h.Port, load.opts)
			if err != nil {
				return err
			}
			res, err := h.Stop()
			if err != nil {
				return err
			}
			if res.Alarm != nil {
				return fmt.Errorf("false alarm under load: %s", res.Alarm)
			}
			if *jsonOut {
				cells = append(cells, jsonCell{
					Config:   cfg.String(),
					Mode:     load.name,
					Engines:  load.opts.Engines,
					Requests: m.Requests,
					Errors:   m.Errors,
					KBps:     m.ThroughputKBps(),
					MeanMs:   toMs(m.MeanLatency()),
					P50Ms:    toMs(m.P50Latency),
					P95Ms:    toMs(m.P95Latency),
					P99Ms:    toMs(m.P99Latency),
				})
			} else {
				fmt.Printf("%s %-12s %s\n", cfg, load.name, m)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cells)
	}
	return nil
}
