// Command meshbench exercises the sharded mesh: a router-throughput
// sweep across pool counts with and without moving-target rotation,
// the seeded rotation campaign, and the unified mesh×chaos campaign —
// routing, retry-with-backoff, health scoring, rotation, and fault
// injection measured in one deterministic JSON matrix.
//
//	go run ./cmd/meshbench                      # throughput sweep
//	go run ./cmd/meshbench -rotate-every 8      # sweep under rotation
//	go run ./cmd/meshbench -campaign -check     # rotation campaign, gated
//	go run ./cmd/meshbench -chaos -check        # unified mesh×chaos campaign, gated
//	go run ./cmd/meshbench -chaos -fault net-mixed -attack forge-uid \
//	    -pools 2 -rotations on                  # replay one cell of the matrix
//
// Campaign output is byte-identical per -seed (the CI mesh-smoke and
// mesh-chaos-smoke jobs replay it and compare), so any finding is a
// replayable regression test. Narrowing flags (-fault, -attack,
// -pools, -rotations) filter the sweep without changing the surviving
// cells' bytes: cell seeds derive from cell labels, not sweep
// position.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nvariant/internal/chaos"
	"nvariant/internal/fleet"
	"nvariant/internal/httpd"
	"nvariant/internal/mesh"
	"nvariant/internal/obs"
	"nvariant/internal/webbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "meshbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		campaign    = flag.Bool("campaign", false, "run the seeded rotation campaign and emit its JSON matrix on stdout")
		chaosMode   = flag.Bool("chaos", false, "run the unified mesh×chaos campaign and emit its JSON matrix on stdout")
		faultFlag   = flag.String("fault", "", "chaos: narrow the sweep to these comma-separated fault plans (default: campaign's standard set)")
		attackFlag  = flag.String("attack", "", "chaos: narrow the sweep to these comma-separated attack modes (none, forge-uid)")
		rotFlag     = flag.String("rotations", "", "chaos: narrow the sweep to rotation settings: on, off, or on,off")
		retryBudget = flag.Int("retry-budget", 0, "chaos: per-session retry budget (0 = default)")
		seed        = flag.Int64("seed", 1, "seed; the same seed reproduces byte-identical campaign output")
		requests    = flag.Int("requests", 0, "campaign: benign requests per cell (0 = default); sweep: requests per session (0 = 40)")
		poolsFlag   = flag.String("pools", "1,2,4", "comma-separated pool counts to sweep")
		groups      = flag.Int("groups", 2, "groups per pool")
		rotateEvery = flag.Uint64("rotate-every", 0, "sweep: rotate every N dispatches (0 = off); campaign cadence uses -campaign-rotate")
		campRotate  = flag.Uint64("campaign-rotate", 0, "campaign: rotation cadence in mesh ticks (0 = default)")
		probes      = flag.Int("probes", 0, "campaign: forged-UID probes per attack cell (0 = default)")
		policyFlag  = flag.String("policy", "hash", "routing policy: hash or affinity")
		sessions    = flag.Int("sessions", 8, "sweep: concurrent sticky sessions per run")
		check       = flag.Bool("check", false, "campaign: exit non-zero on contract violations")
		human       = flag.Bool("v", false, "campaign: also print the human-readable summary to stderr")
		opsAddr     = flag.String("ops", "", "serve /metrics and the merged /audit tail on this host address while running")
	)
	flag.Parse()

	policy, err := parsePolicy(*policyFlag)
	if err != nil {
		return err
	}
	pools, err := parseInts(*poolsFlag)
	if err != nil {
		return fmt.Errorf("-pools: %w", err)
	}

	if *chaosMode {
		cfg := mesh.ChaosCampaignConfig{
			Seed:        *seed,
			Requests:    *requests,
			Groups:      *groups,
			RotateEvery: *campRotate,
			Probes:      *probes,
			RetryBudget: *retryBudget,
			Policy:      policy,
		}
		// -pools doubles as a narrowing flag here: only an explicit value
		// overrides the campaign's own default sweep.
		if flagWasSet("pools") {
			cfg.Pools = pools
		}
		if *rotFlag != "" {
			rot, err := parseRotations(*rotFlag)
			if err != nil {
				return fmt.Errorf("-rotations: %w", err)
			}
			cfg.Rotations = rot
		}
		if *faultFlag != "" {
			plans, err := parsePlans(*faultFlag)
			if err != nil {
				return fmt.Errorf("-fault: %w", err)
			}
			cfg.Faults = plans
		}
		if *attackFlag != "" {
			cfg.Attacks = splitList(*attackFlag)
		}
		if *opsAddr != "" {
			reg := obs.NewRegistry()
			srv, err := obs.StartServer(*opsAddr, reg, nil)
			if err != nil {
				return fmt.Errorf("-ops: %w", err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "meshbench: ops server on http://%s\n", srv.Addr)
			cfg.Obs = reg
		}
		res, err := mesh.RunChaosCampaign(cfg)
		if err != nil {
			return err
		}
		out, err := res.JSON()
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
		if *human {
			res.Fprint(os.Stderr)
		}
		if *check {
			if v := res.Check(); len(v) > 0 {
				for _, violation := range v {
					fmt.Fprintln(os.Stderr, "violation:", violation)
				}
				return fmt.Errorf("%d contract violations", len(v))
			}
		}
		return nil
	}

	if *campaign {
		cfg := mesh.CampaignConfig{
			Seed:        *seed,
			Requests:    *requests,
			Pools:       pools,
			Groups:      *groups,
			RotateEvery: *campRotate,
			Probes:      *probes,
			Policy:      policy,
		}
		if *opsAddr != "" {
			reg := obs.NewRegistry()
			srv, err := obs.StartServer(*opsAddr, reg, nil)
			if err != nil {
				return fmt.Errorf("-ops: %w", err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "meshbench: ops server on http://%s\n", srv.Addr)
			cfg.Obs = reg
		}
		res, err := mesh.RunCampaign(cfg)
		if err != nil {
			return err
		}
		out, err := res.JSON()
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
		if *human {
			res.Fprint(os.Stderr)
		}
		if *check {
			if v := res.Check(); len(v) > 0 {
				for _, violation := range v {
					fmt.Fprintln(os.Stderr, "violation:", violation)
				}
				return fmt.Errorf("%d contract violations", len(v))
			}
		}
		return nil
	}

	return sweep(pools, policy, *groups, *sessions, *requests, *rotateEvery, *seed, *opsAddr)
}

// sweep measures router dispatch throughput and latency per pool
// count, with optional rotation churning underneath the load.
func sweep(pools []int, policy mesh.RouterPolicy, groups, sessions, perSession int, rotateEvery uint64, seed int64, opsAddr string) error {
	if perSession <= 0 {
		perSession = 40
	}
	var reg *obs.Registry
	if opsAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.StartServer(opsAddr, reg, nil)
		if err != nil {
			return fmt.Errorf("-ops: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "meshbench: ops server on http://%s\n", srv.Addr)
	}
	rotating := "off"
	if rotateEvery > 0 {
		rotating = fmt.Sprintf("every %d dispatches", rotateEvery)
	}
	fmt.Printf("mesh sweep: policy=%s groups/pool=%d sessions=%d requests/session=%d rotation=%s\n",
		policy, groups, sessions, perSession, rotating)
	fmt.Printf("%-6s %10s %10s %12s %12s %10s %10s\n",
		"pools", "req/s", "errors", "p50", "p99", "rotations", "shed")

	for _, p := range pools {
		m, err := mesh.New(mesh.Options{
			Pools:       p,
			Policy:      policy,
			RotateEvery: rotateEvery,
			Seed:        seed,
			Obs:         reg,
			Fleet:       fleet.Options{Groups: groups},
		})
		if err != nil {
			return fmt.Errorf("pools=%d: %w", p, err)
		}
		req := httpd.AppendRequest(nil, "/index.html")
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			lats    []time.Duration
			errorsN int
		)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := m.Session(fmt.Sprintf("bench-%d", s))
				local := make([]time.Duration, 0, perSession)
				fails := 0
				for i := 0; i < perSession; i++ {
					t0 := time.Now()
					code, _, err := sess.Fetch(req)
					if err != nil || code != 200 {
						fails++
						continue
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lats = append(lats, local...)
				errorsN += fails
				mu.Unlock()
			}(s)
		}
		wg.Wait()
		elapsed := time.Since(start)
		stats, err := m.Stop()
		if err != nil {
			return fmt.Errorf("pools=%d stop: %w", p, err)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rate := float64(len(lats)) / elapsed.Seconds()
		fmt.Printf("%-6d %10.0f %10d %12v %12v %10d %10d\n",
			p, rate, errorsN,
			webbench.Percentile(lats, 0.50).Round(time.Microsecond),
			webbench.Percentile(lats, 0.99).Round(time.Microsecond),
			stats.Rotations, stats.Shed)
	}
	return nil
}

// flagWasSet reports whether the named flag appeared on the command
// line (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

func parsePlans(s string) ([]chaos.Plan, error) {
	var out []chaos.Plan
	for _, name := range splitList(s) {
		p, err := chaos.PlanByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty plan list")
	}
	return out, nil
}

func parseRotations(s string) ([]bool, error) {
	var out []bool
	for _, tok := range splitList(s) {
		switch tok {
		case "on", "true":
			out = append(out, true)
		case "off", "false":
			out = append(out, false)
		default:
			return nil, fmt.Errorf("bad rotation setting %q (on, off)", tok)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty rotation list")
	}
	return out, nil
}

func parsePolicy(s string) (mesh.RouterPolicy, error) {
	switch s {
	case "hash":
		return mesh.HashRouting, nil
	case "affinity":
		return mesh.AffinityRouting, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (hash, affinity)", s)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
