// Command experiments regenerates the paper's tables and figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"nvariant/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	workers := flag.Int("workers", 0, "prefork worker-lane count for the nsweep servers (0 = serial)")
	seed := flag.Int64("seed", 0, "chaos campaign seed (0 = fixed default)")
	flag.Parse()
	which := flag.Args()
	if len(which) == 0 {
		which = []string{"table1", "table2", "table3", "figure1", "figure2", "overwrite", "changes", "nsweep", "chaos"}
	}
	for _, name := range which {
		switch name {
		case "table1":
			res, err := experiments.RunTable1()
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		case "table2":
			res, err := experiments.RunTable2()
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		case "table3":
			res, err := experiments.RunTable3(experiments.DefaultTable3Options())
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		case "figure1":
			res, err := experiments.RunFigure1()
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		case "figure2":
			res, err := experiments.RunFigure2()
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		case "overwrite":
			res, err := experiments.RunOverwriteCampaign()
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		case "changes":
			res, err := experiments.RunChanges()
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		case "nsweep":
			opts := experiments.DefaultNSweepOptions()
			opts.Workers = *workers
			res, err := experiments.RunNSweep(opts)
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		case "chaos":
			res, err := experiments.RunChaosCampaign(*seed)
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		case "faultonly":
			res, err := experiments.RunFaultOnlyCampaign(*seed)
			if err != nil {
				return err
			}
			res.Fprint(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
	}
	return nil
}
