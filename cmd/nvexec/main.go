// Command nvexec launches the case-study web server as an N-variant
// system in one of the paper's four Table 3 configurations and
// exercises it: benign requests, then (optionally) the Chen-et-al
// UID-forging attack. It is the reproduction's analogue of the paper's
// `nvexec prog1 prog2` launcher script (§3.1).
//
// Usage:
//
//	nvexec -config 4 -attack
//	nvexec -config 1 -requests 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"nvariant"
	"nvariant/internal/attack"
	"nvariant/internal/vos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nvexec:", err)
		os.Exit(1)
	}
}

func run() error {
	configNum := flag.Int("config", 4, "Table 3 configuration (1=unmodified, 2=transformed, 3=2-variant address space, 4=2-variant UID)")
	requests := flag.Int("requests", 5, "benign requests to issue before finishing")
	doAttack := flag.Bool("attack", false, "mount the UID-forging attack after the benign requests")
	flag.Parse()

	if *configNum < 1 || *configNum > 4 {
		return fmt.Errorf("config must be 1..4, got %d", *configNum)
	}
	cfg := nvariant.Configuration(*configNum)
	fmt.Printf("launching %s (%d variant(s))\n", cfg, cfg.Variants())

	h, err := nvariant.StartConfiguration(cfg, nvariant.HTTPServerOptions{}, 0)
	if err != nil {
		return err
	}
	client := h.Client()

	for i := 0; i < *requests; i++ {
		uri := []string{"/index.html", "/page1.html", "/about.html"}[i%3]
		code, body, err := client.Get(uri)
		if err != nil {
			return fmt.Errorf("benign request %d: %w", i, err)
		}
		fmt.Printf("GET %-14s -> %d (%d bytes)\n", uri, code, len(body))
	}

	if *doAttack {
		fmt.Println("\nmounting attack: overflow request corrupts the worker UID to root (0)...")
		resp, err := client.Raw(attack.ForgeUIDPayload(vos.Root))
		if err != nil {
			return fmt.Errorf("overflow request: %w", err)
		}
		fmt.Printf("overflow request answered (%d bytes) — corruption planted\n", len(resp))

		fmt.Println("trigger request: GET /private/secret.html (root-only document)...")
		code, body, err := client.Get("/private/secret.html")
		switch {
		case err != nil:
			fmt.Printf("attacker sees: connection dropped (%v)\n", err)
		case code == 200:
			fmt.Printf("attacker sees: 200 — SECRET LEAKED: %q\n", firstLine(body))
		default:
			fmt.Printf("attacker sees: %d\n", code)
		}
	}

	res, err := h.Stop()
	if err != nil {
		return err
	}
	fmt.Println()
	switch {
	case res.Alarm != nil:
		fmt.Printf("MONITOR ALARM: %s\n", res.Alarm.Error())
	case res.Clean:
		fmt.Printf("clean exit (status %d, %d syscall rendezvous)\n", res.Status, res.Rendezvous)
	default:
		return errors.New("server terminated abnormally without an alarm")
	}
	return nil
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}
