// Package testutil holds the shared test helpers that were previously
// duplicated across the nvkernel, fleet and harness test suites: the
// goroutine-leak watcher around kernel drain paths and the
// deadline-polling loops that wait for asynchronous recovery
// (quarantine, replacement, detection counters) to settle.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitGoroutines polls until the process goroutine count drops to at
// most limit, returning the last observed count. It yields and sleeps
// between probes so exiting goroutines get scheduled; the bound makes
// a genuine leak fail fast instead of hanging the test.
func WaitGoroutines(limit int) int {
	var n int
	for i := 0; i < 400; i++ {
		runtime.Gosched()
		n = runtime.NumGoroutine()
		if n <= limit {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n
}

// CheckNoGoroutineLeak fails t when the goroutine count does not
// settle back to before+slack — the leak check every kernel-drain and
// group-teardown regression test runs. slack absorbs runtime
// background goroutines; 2 is the conventional allowance.
func CheckNoGoroutineLeak(t testing.TB, before, slack int) {
	t.Helper()
	if got := WaitGoroutines(before + slack); got > before+slack {
		t.Errorf("goroutine leak: %d goroutines, want <= %d", got, before+slack)
	}
}

// Poll waits for cond to hold, checking every 200µs, and reports
// whether it held before timeout. It never fails the test, so it is
// safe to call off the test goroutine (attacker/observer goroutines in
// race tests).
func Poll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Eventually is Poll that fails the test on timeout. cond may drive
// work (e.g. issue trigger requests) and return whether the awaited
// state has been reached. Must be called from the test goroutine.
// args are evaluated eagerly, before the wait — for a failure message
// that must snapshot state at timeout, use Poll and format in the
// caller's Fatalf instead.
func Eventually(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if !Poll(timeout, cond) {
		t.Fatalf("condition not met within "+timeout.String()+": "+format, args...)
	}
}
