// Package transform implements the automated source-to-source UID
// variation of §3.3/§4: given a minic program and a reexpression
// function R_i, it produces variant i's source by
//
//  1. making implicit UID constants explicit (if(!getuid()) becomes
//     if(getuid() == 0)),
//  2. applying R_i to every UID-typed constant literal,
//  3. rewriting UID comparisons to the cc_* detection syscalls of
//     Table 2 (so the variants' instruction streams stay identical and
//     ordered comparisons need no operator reversal, §3.5),
//  4. wrapping exposed single-UID-value uses in uid_value,
//  5. wrapping UID-influenced conditionals in cond_chk, and
//  6. scrubbing UID values from log output (the paper's §4 fix).
//
// The paper performed this transformation on Apache by hand — 73
// changes — noting it "could be readily automated" with uid_t type
// information plus Splint-style inference; this package is that
// automation, and it reports the same change-count breakdown.
package transform

import (
	"fmt"

	"nvariant/internal/minic"
	"nvariant/internal/reexpress"
	"nvariant/internal/sys"
	"nvariant/internal/word"
)

// Counts is the change accounting, matching the paper's §4 breakdown.
type Counts struct {
	// Constants counts reexpressed UID constant literals (paper: 15).
	Constants int
	// ImplicitConstants counts implicit-comparison rewrites that
	// created those constants (a subset of the constant work; the
	// paper folds these into its 15).
	ImplicitConstants int
	// UIDValues counts uid_value insertions (paper: 16).
	UIDValues int
	// Comparisons counts cc_* rewrites of UID comparisons (paper: 22).
	Comparisons int
	// CondChks counts cond_chk insertions (paper: 20).
	CondChks int
	// LogScrubs counts UID values removed from log output (paper
	// describes one such workaround).
	LogScrubs int
}

// Total is the overall number of source changes (implicit-constant
// rewrites are counted within Constants, as in the paper).
func (c Counts) Total() int {
	return c.Constants + c.UIDValues + c.Comparisons + c.CondChks + c.LogScrubs
}

// PaperCounts returns the paper's Apache change breakdown (§4).
func PaperCounts() Counts {
	return Counts{Constants: 15, UIDValues: 16, Comparisons: 22, CondChks: 20}
}

// Result is a transformed variant.
type Result struct {
	// Program is the transformed AST (independently parsed; safe to
	// run alongside other variants).
	Program *minic.Program
	// Counts is the change accounting.
	Counts Counts
	// InferredUIDVars lists int variables promoted to uid_t by the
	// Splint-style analysis.
	InferredUIDVars []string
}

// Apply parses src and produces variant source transformed with f.
func Apply(src string, f reexpress.Func) (*Result, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	check, err := minic.Check(prog)
	if err != nil {
		return nil, err
	}
	t := &transformer{prog: prog, check: check, f: f}
	if err := t.run(); err != nil {
		return nil, err
	}
	return &Result{
		Program:         prog,
		Counts:          t.counts,
		InferredUIDVars: append([]string(nil), check.InferredUIDVars...),
	}, nil
}

// ccFor maps comparison operators to Table 2 calls.
var ccFor = map[string]string{
	"==": "cc_eq", "!=": "cc_neq", "<": "cc_lt", "<=": "cc_leq", ">": "cc_gt", ">=": "cc_geq",
}

type transformer struct {
	prog   *minic.Program
	check  *minic.CheckResult
	f      reexpress.Func
	counts Counts
	fn     string // current function name
	err    error
}

func (t *transformer) run() error {
	builtins := minic.Builtins()
	for _, g := range t.prog.Globals {
		t.fn = ""
		if g.Init != nil {
			g.Init = t.rewriteExpr(g.Init, builtins)
		}
	}
	for _, fn := range t.prog.Funcs {
		t.fn = fn.Name
		t.rewriteBlock(fn.Body, builtins)
	}
	return t.err
}

func (t *transformer) typeOf(e minic.Expr) minic.Type {
	return t.check.TypeOfExpr(t.prog, t.fn, e)
}

func (t *transformer) tainted(e minic.Expr) bool {
	return t.check.Tainted(t.prog, t.fn, e)
}

func (t *transformer) rewriteBlock(b *minic.BlockStmt, builtins map[string]minic.Builtin) {
	for _, st := range b.Stmts {
		t.rewriteStmt(st, builtins)
	}
}

func (t *transformer) rewriteStmt(s minic.Stmt, builtins map[string]minic.Builtin) {
	switch st := s.(type) {
	case *minic.VarDecl:
		if st.Init != nil {
			st.Init = t.rewriteExpr(st.Init, builtins)
			st.Init = t.maybeUIDValue(st.Init, builtins)
		}
	case *minic.AssignStmt:
		st.X = t.rewriteExpr(st.X, builtins)
		st.X = t.maybeUIDValue(st.X, builtins)
	case *minic.ExprStmt:
		st.X = t.rewriteExpr(st.X, builtins)
	case *minic.IfStmt:
		st.Cond = t.rewriteCond(st.Cond, builtins)
		t.rewriteBlock(st.Then, builtins)
		if st.Else != nil {
			t.rewriteBlock(st.Else, builtins)
		}
	case *minic.WhileStmt:
		st.Cond = t.rewriteCond(st.Cond, builtins)
		t.rewriteBlock(st.Body, builtins)
	case *minic.ReturnStmt:
		if st.X != nil {
			st.X = t.rewriteExpr(st.X, builtins)
		}
	case *minic.BlockStmt:
		t.rewriteBlock(st, builtins)
	}
}

// rewriteCond handles conditions: implicit UID comparisons become
// explicit, UID comparisons become cc_* calls, and UID-influenced
// conditions gain cond_chk.
func (t *transformer) rewriteCond(e minic.Expr, builtins map[string]minic.Builtin) minic.Expr {
	taintedBefore := t.tainted(e)
	e = t.explicitUIDTruthiness(e)
	e = t.rewriteExpr(e, builtins)

	// cond_chk wrapping (§3.5): UID-influenced conditions that are not
	// already a detection call get exposed to the monitor.
	if call, ok := e.(*minic.CallExpr); ok {
		if isDetectionCall(call.Name) {
			return e
		}
	}
	if taintedBefore {
		e = t.asBool(e)
		t.counts.CondChks++
		return &minic.CallExpr{Name: "cond_chk", Args: []minic.Expr{e}, Line: minicLine(e)}
	}
	return e
}

// asBool coerces a non-bool condition to an explicit boolean.
func (t *transformer) asBool(e minic.Expr) minic.Expr {
	if t.typeOf(e) == minic.TypeBool {
		return e
	}
	return &minic.BinaryExpr{
		Op:   "!=",
		X:    e,
		Y:    &minic.IntLit{Value: 0, Line: minicLine(e)},
		Line: minicLine(e),
	}
}

// explicitUIDTruthiness rewrites implicit UID comparisons: !uidExpr
// becomes uidExpr == 0 and a bare uidExpr condition becomes
// uidExpr != 0 (§3.3's if(!getuid()) example).
func (t *transformer) explicitUIDTruthiness(e minic.Expr) minic.Expr {
	if u, ok := e.(*minic.UnaryExpr); ok && u.Op == "!" {
		if t.typeOf(u.X).IsUIDLike() {
			t.counts.ImplicitConstants++
			lit := &minic.IntLit{Value: 0, Line: u.Line, InferredType: t.typeOf(u.X)}
			return &minic.BinaryExpr{Op: "==", X: u.X, Y: lit, Line: u.Line}
		}
	}
	if t.typeOf(e).IsUIDLike() {
		t.counts.ImplicitConstants++
		lit := &minic.IntLit{Value: 0, Line: minicLine(e), InferredType: t.typeOf(e)}
		return &minic.BinaryExpr{Op: "!=", X: e, Y: lit, Line: minicLine(e)}
	}
	return e
}

// rewriteExpr applies constant reexpression, cc_* rewriting, uid_value
// argument wrapping, and log scrubbing, bottom-up.
func (t *transformer) rewriteExpr(e minic.Expr, builtins map[string]minic.Builtin) minic.Expr {
	switch x := e.(type) {
	case *minic.IntLit:
		if x.InferredType.IsUIDLike() {
			t.reexpressLit(x)
		}
		return x

	case *minic.UnaryExpr:
		// Inside expressions, !uidExpr must also become explicit.
		if x.Op == "!" && t.typeOf(x.X).IsUIDLike() {
			rewritten := t.explicitUIDTruthiness(x)
			return t.rewriteExpr(rewritten, builtins)
		}
		x.X = t.rewriteExpr(x.X, builtins)
		return x

	case *minic.BinaryExpr:
		isUIDCompare := isComparisonOp(x.Op) &&
			(t.typeOf(x.X).IsUIDLike() || t.typeOf(x.Y).IsUIDLike())
		x.X = t.rewriteExpr(x.X, builtins)
		x.Y = t.rewriteExpr(x.Y, builtins)
		if isUIDCompare {
			t.counts.Comparisons++
			return &minic.CallExpr{
				Name: ccFor[x.Op],
				Args: []minic.Expr{x.X, x.Y},
				Line: x.Line,
			}
		}
		return x

	case *minic.CallExpr:
		// §4 log scrub: drop the UID value from log output rather than
		// converting it (which would reopen an attack path, §4).
		if x.Name == "log_uid" {
			t.counts.LogScrubs++
			msg := t.rewriteExpr(x.Args[0], builtins)
			return &minic.CallExpr{Name: "log", Args: []minic.Expr{msg}, Line: x.Line}
		}
		params := t.paramTypes(x.Name, builtins)
		kernel := isKernelCall(x.Name, builtins)
		for i := range x.Args {
			x.Args[i] = t.rewriteExpr(x.Args[i], builtins)
			// uid_value wrapping: UID arguments to non-kernel
			// functions are exposed to the monitor at the point of
			// use (the paper's getpwname(uid_value(uid)) example).
			if !kernel && i < len(params) && params[i].IsUIDLike() {
				x.Args[i] = t.wrapUIDValue(x.Args[i])
			}
		}
		return x

	default:
		return e
	}
}

// maybeUIDValue wraps stored UID values produced by non-kernel calls:
// worker = pw_uid() becomes worker = uid_value(pw_uid()), exposing the
// externally sourced UID to the monitor before it is stored.
func (t *transformer) maybeUIDValue(e minic.Expr, builtins map[string]minic.Builtin) minic.Expr {
	call, ok := e.(*minic.CallExpr)
	if !ok {
		return e
	}
	if isDetectionCall(call.Name) || isKernelCall(call.Name, builtins) {
		return e
	}
	if !t.typeOf(call).IsUIDLike() {
		return e
	}
	return t.wrapUIDValue(e)
}

func (t *transformer) wrapUIDValue(e minic.Expr) minic.Expr {
	if call, ok := e.(*minic.CallExpr); ok && call.Name == "uid_value" {
		return e
	}
	t.counts.UIDValues++
	return &minic.CallExpr{Name: "uid_value", Args: []minic.Expr{e}, Line: minicLine(e)}
}

// reexpressLit rewrites one UID constant with R_i.
func (t *transformer) reexpressLit(lit *minic.IntLit) {
	out, err := t.f.Apply(word.Word(lit.Value))
	if err != nil && t.err == nil {
		t.err = fmt.Errorf("transform: reexpress constant %d: %w", lit.Value, err)
		return
	}
	lit.Value = uint32(out)
	t.counts.Constants++
}

func (t *transformer) paramTypes(name string, builtins map[string]minic.Builtin) []minic.Type {
	if b, ok := builtins[name]; ok {
		return b.Params
	}
	if f, ok := t.prog.Func(name); ok {
		types := make([]minic.Type, len(f.Params))
		for i, p := range f.Params {
			types[i] = p.Type
		}
		return types
	}
	return nil
}

func isComparisonOp(op string) bool {
	_, ok := ccFor[op]
	return ok
}

func isDetectionCall(name string) bool {
	switch name {
	case "uid_value", "cond_chk", "cc_eq", "cc_neq", "cc_lt", "cc_leq", "cc_gt", "cc_geq":
		return true
	default:
		return false
	}
}

func isKernelCall(name string, builtins map[string]minic.Builtin) bool {
	b, ok := builtins[name]
	return ok && b.Kernel
}

func minicLine(e minic.Expr) int {
	switch x := e.(type) {
	case *minic.IntLit:
		return x.Line
	case *minic.BoolLit:
		return x.Line
	case *minic.StrLit:
		return x.Line
	case *minic.VarRef:
		return x.Line
	case *minic.CallExpr:
		return x.Line
	case *minic.UnaryExpr:
		return x.Line
	case *minic.BinaryExpr:
		return x.Line
	default:
		return 0
	}
}

// BuildVariants transforms src once per reexpression function and
// compiles each result into a runnable variant program.
func BuildVariants(name, src string, funcs []reexpress.Func, opts minic.InterpOptions) ([]Compiled, error) {
	out := make([]Compiled, 0, len(funcs))
	for i, f := range funcs {
		res, err := Apply(src, f)
		if err != nil {
			return nil, fmt.Errorf("variant %d: %w", i, err)
		}
		prog, err := minic.CompileAST(fmt.Sprintf("%s-v%d", name, i), res.Program, opts)
		if err != nil {
			return nil, fmt.Errorf("variant %d: compile transformed source: %w", i, err)
		}
		out = append(out, Compiled{Program: prog, Result: res})
	}
	return out, nil
}

// Compiled pairs a runnable variant with its transformation record.
type Compiled struct {
	// Program is the runnable variant.
	Program sys.Program
	// Result is the transformation record.
	Result *Result
}
