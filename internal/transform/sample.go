package transform

// SampleServerSource is the minic port of the case-study server's UID
// handling (§4): the unixd-style identity management, the suexec-style
// target-user validation, and the per-request privilege dance of an
// Apache-like server. It is the subject program for the change-count
// experiment — the paper reports 73 manual changes on Apache (15
// constant reexpressions, 16 uid_value insertions, 22 comparison
// rewrites, 20 cond_chk insertions); running the automated transformer
// over this program reproduces the same categories at a similar scale.
const SampleServerSource = `// unixd.c (minic port): identity management for the case-study server.

uid_t server_uid;
gid_t server_gid;
uid_t worker_uid;
gid_t worker_gid;
uid_t suexec_min_uid = 500;
gid_t suexec_min_gid = 100;
int request_count = 0;

// set_user_identity resolves the User directive to a UID.
int set_user_identity(string name) {
    bool found;
    found = getpwnam(name);
    if (!found) {
        log("unixd: configured user not found in /etc/passwd");
        return 1;
    }
    server_uid = pw_uid();
    server_gid = pw_gid();
    if (server_uid == 0) {
        log("unixd: refusing to serve as the superuser");
        return 1;
    }
    return 0;
}

// set_group_identity resolves the Group directive to a GID.
int set_group_identity(string name) {
    bool found;
    found = getgrnam(name);
    if (!found) {
        log("unixd: configured group not found in /etc/group");
        return 1;
    }
    server_gid = gr_gid();
    if (server_gid == 0) {
        log("unixd: refusing to serve with the superuser group");
        return 1;
    }
    return 0;
}

// drop_privileges switches the effective identity to the server user.
int drop_privileges() {
    int rc;
    rc = setegid(server_gid);
    if (rc != 0) {
        log("unixd: setegid failed");
        return 1;
    }
    rc = seteuid(server_uid);
    if (rc != 0) {
        log("unixd: seteuid failed");
        return 1;
    }
    if (geteuid() != server_uid) {
        log("unixd: privilege drop did not take effect");
        return 1;
    }
    return 0;
}

// restore_privileges returns to the superuser between requests.
int restore_privileges() {
    int rc;
    rc = seteuid(0);
    if (rc != 0) {
        log("unixd: could not restore privileges");
        return 1;
    }
    if (geteuid() != 0) {
        log("unixd: restore did not take effect");
        return 1;
    }
    return 0;
}

// is_superuser reports whether a UID is root.
bool is_superuser(uid_t u) {
    return u == 0;
}

// is_system_account reports whether a UID belongs to the static
// system range that suexec refuses to execute as.
bool is_system_account(uid_t u) {
    if (u == 0) {
        return true;
    }
    if (u < 100) {
        return true;
    }
    if (u == 65534) {
        return true;
    }
    return false;
}

// suexec_check_target validates a CGI target identity against the
// suexec policy: no superuser, no system accounts, above the floor,
// and present in the account database.
int suexec_check_target(uid_t target, gid_t target_group) {
    bool known;
    if (is_superuser(target)) {
        log("suexec: target is the superuser");
        return 1;
    }
    if (is_system_account(target)) {
        log("suexec: target is a system account");
        return 1;
    }
    if (target < suexec_min_uid) {
        log("suexec: target below minimum uid");
        return 1;
    }
    if (target_group < suexec_min_gid) {
        log("suexec: target group below minimum gid");
        return 1;
    }
    known = getpwuid_has(target);
    if (!known) {
        log("suexec: target uid has no account");
        return 1;
    }
    return 0;
}

// become_worker switches the effective identity for one request.
int become_worker(uid_t u, gid_t g) {
    int rc;
    if (u == server_uid) {
        rc = seteuid(u);
        if (rc != 0) {
            log("unixd: worker seteuid failed");
            return 1;
        }
        return 0;
    }
    rc = suexec_check_target(u, g);
    if (rc != 0) {
        log_uid("unixd: rejected worker identity", u);
        return 1;
    }
    rc = setegid(g);
    if (rc != 0) {
        return 1;
    }
    rc = seteuid(u);
    if (rc != 0) {
        return 1;
    }
    return 0;
}

// handle_request performs the per-request privilege dance.
int handle_request() {
    int rc;
    request_count = request_count + 1;
    rc = become_worker(worker_uid, worker_gid);
    if (rc != 0) {
        return 1;
    }
    if (geteuid() == 0) {
        log("unixd: serving as superuser, aborting request");
        restore_privileges();
        return 1;
    }
    rc = restore_privileges();
    if (rc != 0) {
        return 1;
    }
    return 0;
}

int main() {
    int rc;
    int served;
    uid_t boot_uid;
    boot_uid = getuid();
    if (!boot_uid) {
        log("unixd: started with superuser privileges");
    } else {
        log("unixd: must be started as the superuser");
        return 1;
    }
    rc = set_user_identity("wwwrun");
    if (rc != 0) {
        return 1;
    }
    rc = set_group_identity("www");
    if (rc != 0) {
        return 1;
    }
    worker_uid = server_uid;
    worker_gid = server_gid;
    if (worker_uid == 65534) {
        log("unixd: warning: serving as nobody");
    }
    rc = drop_privileges();
    if (rc != 0) {
        return 1;
    }
    rc = restore_privileges();
    if (rc != 0) {
        return 1;
    }
    served = 0;
    while (served < 8) {
        rc = handle_request();
        if (rc != 0) {
            log("unixd: request handling failed");
            return 1;
        }
        served = served + 1;
    }
    if (worker_uid != server_uid) {
        log("unixd: identity drift detected");
        return 1;
    }
    return 0;
}
`
