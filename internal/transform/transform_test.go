package transform

import (
	"strings"
	"testing"

	"nvariant/internal/minic"
	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

func TestApplyImplicitConstant(t *testing.T) {
	// The paper's own example: if(!getuid()) becomes if(getuid()==0),
	// then the constant is reexpressed and the comparison becomes
	// cc_eq (§3.3, §3.5).
	src := `int main() {
    if (!getuid()) {
        log("root");
    }
    return 0;
}
`
	res, err := Apply(src, reexpress.XORMask{Mask: reexpress.UIDMask})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Program.Emit()
	if !strings.Contains(out, "cc_eq(getuid(), 0x7FFFFFFF)") {
		t.Errorf("transformed source missing cc_eq with reexpressed constant:\n%s", out)
	}
	if res.Counts.ImplicitConstants != 1 || res.Counts.Constants != 1 || res.Counts.Comparisons != 1 {
		t.Errorf("counts = %+v", res.Counts)
	}
}

func TestApplyConstantReexpression(t *testing.T) {
	src := `uid_t admin = 1000;
int main() {
    uid_t u;
    u = getuid();
    if (u == admin) { return 1; }
    seteuid(0);
    return 0;
}
`
	res, err := Apply(src, reexpress.XORMask{Mask: reexpress.UIDMask})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Program.Emit()
	// 1000 ^ 0x7FFFFFFF = 0x7FFFFC17.
	if !strings.Contains(out, "0x7FFFFC17") {
		t.Errorf("global constant not reexpressed:\n%s", out)
	}
	// seteuid(0) keeps its reexpressed constant but no uid_value (it
	// is a kernel call, already checked by the wrapper).
	if !strings.Contains(out, "seteuid(0x7FFFFFFF)") {
		t.Errorf("seteuid constant not reexpressed:\n%s", out)
	}
	if strings.Contains(out, "uid_value(seteuid") || strings.Contains(out, "seteuid(uid_value") {
		t.Errorf("kernel call wrongly wrapped:\n%s", out)
	}
}

func TestApplyUIDValueInsertion(t *testing.T) {
	src := `bool allowed(uid_t u) {
    return u != 0;
}
int main() {
    uid_t w;
    bool found;
    found = getpwnam("wwwrun");
    if (!found) { return 1; }
    w = pw_uid();
    if (allowed(w)) { return 0; }
    return 1;
}
`
	res, err := Apply(src, reexpress.XORMask{Mask: reexpress.UIDMask})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Program.Emit()
	// pw_uid() is a library (non-kernel) source of UID data: wrapped.
	if !strings.Contains(out, "w = uid_value(pw_uid())") {
		t.Errorf("stored library UID not exposed:\n%s", out)
	}
	// UID argument to a user function: wrapped.
	if !strings.Contains(out, "allowed(uid_value(w))") {
		t.Errorf("uid argument not exposed:\n%s", out)
	}
	if res.Counts.UIDValues != 2 {
		t.Errorf("UIDValues = %d, want 2", res.Counts.UIDValues)
	}
}

func TestApplyCondChk(t *testing.T) {
	src := `int main() {
    bool found;
    int rc;
    found = getpwnam("wwwrun");
    if (!found) { return 1; }
    rc = seteuid(pw_uid());
    if (rc != 0) { return 2; }
    return 0;
}
`
	res, err := Apply(src, reexpress.XORMask{Mask: reexpress.UIDMask})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Program.Emit()
	if !strings.Contains(out, "cond_chk((!found))") && !strings.Contains(out, "cond_chk(!found)") {
		t.Errorf("tainted bool condition not wrapped:\n%s", out)
	}
	if !strings.Contains(out, "cond_chk((rc != 0))") {
		t.Errorf("tainted int condition not wrapped:\n%s", out)
	}
	if res.Counts.CondChks != 2 {
		t.Errorf("CondChks = %d, want 2", res.Counts.CondChks)
	}
}

func TestApplyLogScrub(t *testing.T) {
	src := `int main() {
    uid_t u;
    u = getuid();
    log_uid("denied", u);
    return 0;
}
`
	res, err := Apply(src, reexpress.XORMask{Mask: reexpress.UIDMask})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Program.Emit()
	if strings.Contains(out, "log_uid") {
		t.Errorf("log_uid not scrubbed:\n%s", out)
	}
	if !strings.Contains(out, `log("denied")`) {
		t.Errorf("scrubbed log call missing:\n%s", out)
	}
	if res.Counts.LogScrubs != 1 {
		t.Errorf("LogScrubs = %d, want 1", res.Counts.LogScrubs)
	}
}

func TestApplyOrderedComparisonBecomesCCLt(t *testing.T) {
	// §3.5 advantage (2): rewriting to cc_lt keeps the instruction
	// streams identical; a local comparison would need reversal under
	// the XOR mask.
	src := `int main() {
    uid_t u;
    u = getuid();
    if (u < 100) { return 1; }
    return 0;
}
`
	res, err := Apply(src, reexpress.XORMask{Mask: reexpress.UIDMask})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Program.Emit()
	if !strings.Contains(out, "cc_lt(u, 0x7FFFFF9B)") {
		t.Errorf("ordered comparison not rewritten:\n%s", out)
	}
}

func TestIdentityTransformKeepsValues(t *testing.T) {
	// Variant 0 uses R₀ = identity: same change structure, unchanged
	// constants — "the original program can be used unchanged" modulo
	// the detection-call insertion the paper also applies to P0.
	res0, err := Apply(SampleServerSource, reexpress.Identity{})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Apply(SampleServerSource, reexpress.XORMask{Mask: reexpress.UIDMask})
	if err != nil {
		t.Fatal(err)
	}
	if res0.Counts != res1.Counts {
		t.Errorf("counts differ between variants: %+v vs %+v", res0.Counts, res1.Counts)
	}
	if strings.Contains(res0.Program.Emit(), "0x7FFF") {
		t.Error("identity variant has reexpressed constants")
	}
}

func TestSampleCountsInPaperBallpark(t *testing.T) {
	res, err := Apply(SampleServerSource, reexpress.XORMask{Mask: reexpress.UIDMask})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts
	paper := PaperCounts()
	t.Logf("measured counts: %+v (total %d); paper: %+v (total 73)", c, c.Total(), paper)
	check := func(name string, got, paperN int) {
		if got < paperN/3 || got > paperN*3 {
			t.Errorf("%s = %d; out of ballpark vs paper's %d", name, got, paperN)
		}
	}
	check("Constants", c.Constants, paper.Constants)
	check("UIDValues", c.UIDValues, paper.UIDValues)
	check("Comparisons", c.Comparisons, paper.Comparisons)
	check("CondChks", c.CondChks, paper.CondChks)
	if c.LogScrubs != 1 {
		t.Errorf("LogScrubs = %d, want 1 (the paper's log workaround)", c.LogScrubs)
	}
}

// runVariants builds 2 transformed variants of src and runs them under
// the UID variation with diversified passwd files.
func runVariants(t *testing.T, src string, opts minic.InterpOptions) *nvkernel.Result {
	t.Helper()
	pair := reexpress.UIDVariation().Pair
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	if err := nvkernel.SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
		t.Fatal(err)
	}
	compiled, err := BuildVariants("unixd", src, pair.Funcs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	progs := []sys.Program{compiled[0].Program, compiled[1].Program}
	res, err := nvkernel.Run(world, simnet.New(0), progs,
		nvkernel.WithUIDVariation(pair),
		nvkernel.WithUnsharedFiles("/etc/passwd", "/etc/group"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTransformedSampleNormalEquivalence(t *testing.T) {
	// The §2.2 property end to end: the automatically transformed
	// server runs as a 2-variant group on benign input with NO
	// divergence, even though every UID it handles has different
	// concrete representations in the two variants.
	res := runVariants(t, SampleServerSource, minic.InterpOptions{})
	if !res.Clean {
		t.Fatalf("normal equivalence violated: %+v (stderr %q)", res.Alarm, res.Stderr)
	}
	if res.Status != 0 {
		t.Fatalf("status = %d, want 0 (stderr %q)", res.Status, res.Stderr)
	}
}

func TestTransformedSampleDetectsCorruption(t *testing.T) {
	// The §2.3 property end to end: corrupt worker_uid with the same
	// concrete word in both variants (as any input-driven overflow
	// must) — the monitor kills the group at the first detection call.
	res := runVariants(t, SampleServerSource, minic.InterpOptions{
		CorruptOnAssign: map[string]word.Word{"worker_uid": 0},
	})
	if res.Alarm == nil {
		t.Fatalf("corruption not detected (status %d)", res.Status)
	}
	if res.Alarm.Reason != nvkernel.ReasonUIDDivergence {
		t.Errorf("alarm = %+v, want uid-divergence", res.Alarm)
	}
}

func TestUntransformedSampleEscalatesOnPlainKernel(t *testing.T) {
	// Baseline: the same corruption against the untransformed program
	// on a plain kernel silently succeeds (this is the Chen-et-al
	// attack the variation exists to stop). The corrupted worker_uid
	// of 0 makes become_worker run the suexec path; is_superuser sees
	// uid 0 and rejects — so instead corrupt to a "legitimate-looking"
	// non-server uid that passes suexec: alice (1000), stealing her
	// identity.
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minic.Compile("unixd", SampleServerSource, minic.InterpOptions{
		CorruptOnAssign: map[string]word.Word{"worker_uid": 1000, "worker_gid": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nvkernel.Run(world, simnet.New(0), []sys.Program{prog})
	if err != nil {
		t.Fatal(err)
	}
	stderr := string(res.Stderr)
	// All eight requests must have been served under the stolen
	// identity: no per-request rejection appears in the log. The
	// server's own shutdown-time integrity check notices the drift
	// afterwards — detection after the damage, not prevention, which
	// is precisely the gap the N-variant UID variation closes.
	if strings.Contains(stderr, "rejected worker identity") ||
		strings.Contains(stderr, "request handling failed") {
		t.Fatalf("masquerade was blocked per-request: %q", stderr)
	}
	if !strings.Contains(stderr, "identity drift detected") {
		t.Fatalf("expected the late drift check to fire: %q", stderr)
	}
	if res.Alarm != nil {
		t.Fatalf("plain kernel should raise no alarm: %+v", res.Alarm)
	}
}

func TestTransformedVariantSourcesDiffer(t *testing.T) {
	pair := reexpress.UIDVariation().Pair
	r0, err := Apply(SampleServerSource, pair.R0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Apply(SampleServerSource, pair.R1)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Program.Emit() == r1.Program.Emit() {
		t.Error("variant sources identical; constants not diversified")
	}
}

func TestBuildVariantsCompileError(t *testing.T) {
	if _, err := BuildVariants("x", "int main() {", []reexpress.Func{reexpress.Identity{}}, minic.InterpOptions{}); err == nil {
		t.Error("bad source accepted")
	}
}

func TestCountsTotal(t *testing.T) {
	c := Counts{Constants: 1, UIDValues: 2, Comparisons: 3, CondChks: 4, LogScrubs: 5}
	if c.Total() != 15 {
		t.Errorf("Total = %d, want 15", c.Total())
	}
	if PaperCounts().Total() != 73 {
		t.Errorf("paper total = %d, want 73", PaperCounts().Total())
	}
}

func TestTransformedSourceReparses(t *testing.T) {
	// The transformed program must be valid minic source: emit it,
	// re-parse it, re-check it, and get the same emission back (the
	// transformer's output is a real program, not just an AST trick).
	for _, f := range []reexpress.Func{
		reexpress.Identity{},
		reexpress.XORMask{Mask: reexpress.UIDMask},
		reexpress.XORMask{Mask: reexpress.FullFlipMask},
	} {
		res, err := Apply(SampleServerSource, f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		emitted := res.Program.Emit()
		reparsed, err := minic.Parse(emitted)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", f.Name(), err, emitted)
		}
		if _, err := minic.Check(reparsed); err != nil {
			t.Fatalf("%s: recheck: %v", f.Name(), err)
		}
		if reparsed.Emit() != emitted {
			t.Errorf("%s: emit not a fixed point", f.Name())
		}
	}
}

func TestTransformIdempotentCounts(t *testing.T) {
	// Applying the transformer twice must not double-wrap: detection
	// calls are recognized and skipped, so a second pass changes only
	// constants (which re-reexpress, since the source carries no type
	// provenance) and nothing structural.
	r1, err := Apply(SampleServerSource, reexpress.Identity{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Apply(r1.Program.Emit(), reexpress.Identity{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Counts.Comparisons != 0 {
		t.Errorf("second pass rewrote %d comparisons; cc_* not recognized", r2.Counts.Comparisons)
	}
	if r2.Counts.LogScrubs != 0 {
		t.Errorf("second pass scrubbed %d logs", r2.Counts.LogScrubs)
	}
}
