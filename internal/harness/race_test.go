package harness

// Race regression test for concurrent Handle lifecycle use: the fleet
// supervises handles from watcher goroutines while benchmarks and
// tests call Stop/Wait/Result from others. Run with -race (CI does).

import (
	"runtime"
	"sync"
	"testing"

	"nvariant/internal/httpd"
	"nvariant/internal/testutil"
)

func TestConcurrentStopWaitRace(t *testing.T) {
	before := runtime.NumGoroutine()
	h := startConfig(t, Config4UIDVariation, httpd.DefaultOptions())

	// A few clients in flight while the handle is torn down from many
	// goroutines at once.
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := h.Client()
			for i := 0; i < 5; i++ {
				_, _, _ = cl.Get("/index.html")
			}
		}()
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := h.Stop(); err != nil {
				t.Errorf("concurrent Stop: %v", err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := h.Wait(); err != nil {
				t.Errorf("concurrent Wait: %v", err)
			}
			<-h.Done()
			_, _ = h.Result()
		}()
	}
	wg.Wait()

	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Alarm != nil {
		t.Errorf("alarm under concurrent teardown: %+v", res.Alarm)
	}

	// The handle's kernel goroutines and both variants must be gone
	// once Wait has returned from every caller.
	testutil.CheckNoGoroutineLeak(t, before, 2)
}

func TestResultBeforeDone(t *testing.T) {
	h := startConfig(t, Config1Unmodified, httpd.DefaultOptions())
	if res, err := h.Result(); res != nil || err != nil {
		t.Errorf("Result before termination = %v, %v; want nil, nil", res, err)
	}
	if _, err := h.Stop(); err != nil {
		t.Fatal(err)
	}
	if res, _ := h.Result(); res == nil {
		t.Error("Result after Stop is nil")
	}
}
