package harness

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/httpd"
	"nvariant/internal/nvkernel"
	"nvariant/internal/simnet"
	"nvariant/internal/testutil"
	"nvariant/internal/vos"
	"nvariant/internal/webbench"
)

func TestWorkersServeBenignLoad(t *testing.T) {
	// Every configuration preforks cleanly and serves concurrent load
	// with no false alarm; the kernel reports the lane count.
	for _, c := range []Configuration{
		Config1Unmodified, Config2Transformed, Config3AddressSpace, Config4UIDVariation,
	} {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			opts := httpd.DefaultOptions()
			opts.Workers = 4
			h := startConfig(t, c, opts)
			m, err := webbench.Run(h.Net, h.Port, webbench.Options{Engines: 8, RequestsPerEngine: 6})
			if err != nil {
				t.Fatal(err)
			}
			if m.Errors > 0 {
				t.Fatalf("%d request errors under benign load", m.Errors)
			}
			res, err := h.Stop()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Clean {
				t.Fatalf("not clean: %+v", res.Alarm)
			}
			if res.Workers != 4 {
				t.Errorf("workers = %d, want 4", res.Workers)
			}
		})
	}
}

func TestAttackDetectedAtWorkers(t *testing.T) {
	// The detection contract at W > 1: the overflow corrupts one lane's
	// UID word; the trigger must be detected as soon as it reaches that
	// lane (sibling lanes serve it as a benign 403), the whole group
	// dies, and the secret never leaks.
	spec := GroupSpec{Config: Config4UIDVariation, Workers: 4}
	h, err := StartSpec(simnet.New(0), spec)
	if err != nil {
		t.Fatal(err)
	}
	cl := h.Client()

	if _, err := cl.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
		t.Fatalf("overflow request: %v", err)
	}
	testutil.Eventually(t, 10*time.Second, func() bool {
		code, body, err := cl.Get("/private/secret.html")
		if err == nil && code == 200 && httpd.ContainsSecret(body) {
			t.Error("secret leaked from a worker lane")
			return true
		}
		if err != nil {
			// The monitor killed the group: the connection dropped with
			// no response, exactly what a direct attacker observes.
			if !errors.Is(err, httpd.ErrConnClosed) {
				t.Logf("note: attacker observed %v", err)
			}
			return true
		}
		return false
	}, "trigger never reached the corrupted lane")

	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Alarm == nil || res.Alarm.Reason != nvkernel.ReasonUIDDivergence {
		t.Fatalf("alarm = %+v, want uid-divergence", res.Alarm)
	}
	if res.Alarm.Syscall != "uid_value" {
		t.Errorf("alarm at %q, want uid_value", res.Alarm.Syscall)
	}
	if res.Alarm.Worker < 0 || res.Alarm.Worker >= 4 {
		t.Errorf("alarm worker = %d, want a lane in [0,4)", res.Alarm.Worker)
	}
}

func TestNoCrossLaneCredentialLeak(t *testing.T) {
	// Regression for the group-wide credential race: with W > 1 and one
	// shared cred, a lane re-escalating to root between requests let a
	// concurrently-serving sibling lane open the root-only document —
	// a healthy group leaking with no attack at all. Credentials are
	// now per lane (fork semantics); hammer the old window with
	// concurrent secret probes under benign load.
	opts := httpd.DefaultOptions()
	opts.Workers = 4
	h := startConfig(t, Config4UIDVariation, opts)

	var wg sync.WaitGroup
	leaked := make(chan struct{}, 1)
	for c := 0; c < 6; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := h.Client()
			for i := 0; i < 60; i++ {
				uri := "/index.html"
				secret := (c+i)%2 == 0
				if secret {
					uri = "/private/secret.html"
				}
				code, body, err := cl.Get(uri)
				if err != nil {
					continue
				}
				if secret && code == 200 && httpd.ContainsSecret(body) {
					select {
					case leaked <- struct{}{}:
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-leaked:
		t.Fatal("root-only document leaked from a healthy group: lane credentials bled across worker lanes")
	default:
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Alarm != nil {
		t.Errorf("false alarm under concurrent probes: %+v", res.Alarm)
	}
}

func TestMaxConnsWithWorkers(t *testing.T) {
	// The scoreboard-backed budget: with concurrent lanes the group
	// still shuts down deterministically once MaxConns connections are
	// served, with no false alarm from divergent per-lane stop
	// decisions.
	opts := httpd.DefaultOptions()
	opts.MaxConns = 4
	opts.Workers = 3
	h := startConfig(t, Config4UIDVariation, opts)
	cl := h.Client()
	for i := 0; i < opts.MaxConns; i++ {
		if code, _, err := cl.Get("/index.html"); err != nil || code != 200 {
			t.Fatalf("request %d = %d, %v", i, code, err)
		}
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("server not clean after MaxConns with workers: %+v", res.Alarm)
	}
}
