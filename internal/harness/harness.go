// Package harness launches the httpd case study in the four
// configurations of Table 3 and manages server lifecycle for tests,
// experiments and benchmarks:
//
//	Configuration 1 — unmodified httpd on the (monitoring-capable)
//	                  kernel, single process
//	Configuration 2 — UID-transformed httpd, single process
//	Configuration 3 — 2-variant system with address-space partitioning
//	                  and unshared-file support (the 2-variant baseline)
//	Configuration 4 — 2-variant system running the UID data variation
//	                  (on top of the configuration 3 baseline)
package harness

import (
	"fmt"
	"time"

	"nvariant/internal/httpd"
	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
)

// Configuration selects one of the paper's four Table 3 setups.
type Configuration int

// The four configurations of Table 3.
const (
	Config1Unmodified Configuration = iota + 1
	Config2Transformed
	Config3AddressSpace
	Config4UIDVariation
)

// String names the configuration as in Table 3.
func (c Configuration) String() string {
	switch c {
	case Config1Unmodified:
		return "Unmodified Apache"
	case Config2Transformed:
		return "Transformed Apache"
	case Config3AddressSpace:
		return "2-Variant Address Space"
	case Config4UIDVariation:
		return "2-Variant UID"
	default:
		return "unknown"
	}
}

// Variants returns the default process-group size of the
// configuration (a GroupSpec's DiversitySpec can widen the N-variant
// configurations).
func (c Configuration) Variants() int {
	if c == Config3AddressSpace || c == Config4UIDVariation {
		return 2
	}
	return 1
}

// GroupSpec fully describes one server group so it can be rebuilt from
// scratch — the unit a fleet restarts after quarantining a compromised
// group.
type GroupSpec struct {
	// Config selects the Table 3 configuration.
	Config Configuration
	// Server configures the httpd program (identical across variants).
	Server httpd.Options
	// Port is the listening port (0 means httpd.DefaultPort). Distinct
	// groups on a shared network need distinct ports.
	Port uint16
	// Diversity is the group's DiversitySpec: N variants with a stack
	// of variation layers. Nil selects the configuration's default
	// stack (the paper's two-variant deployment). Fleet replacements
	// use this to come back with freshly generated specs — possibly
	// differing in N and stack, not just masks.
	Diversity *reexpress.Spec
	// Pair is the deprecated two-variant override for
	// Config4UIDVariation, kept so pre-DiversitySpec call sites
	// continue to compile; it is ignored when Diversity is set.
	Pair *reexpress.Pair
	// Workers is the per-group prefork worker-lane count; when > 0 it
	// overrides Server.Workers, so fleets can widen every spawned
	// group without touching the server options. The group then serves
	// Workers connections concurrently (any alarm in any lane still
	// kills the whole group).
	Workers int
	// Kernel holds extra kernel options applied to every (re)build of
	// the group — the chaos campaign threads its fault hooks through
	// here, so a fleet's replacement groups inherit the same fault
	// plan as the group they replace.
	Kernel []nvkernel.Option
	// Quorum, when K ≥ 1, runs the group's rendezvous in K-of-N mode:
	// variant faults with ≥ K live survivors evict the faulted variant
	// instead of killing the group (see nvkernel.WithQuorum). 0 keeps
	// the unanimous contract.
	Quorum int
}

// port returns the effective listening port.
func (s GroupSpec) port() uint16 {
	if s.Port == 0 {
		return httpd.DefaultPort
	}
	return s.Port
}

// diversity returns the effective DiversitySpec: the explicit one, or
// the configuration's default stack. Single-variant configurations
// have none.
func (s GroupSpec) diversity() *reexpress.Spec {
	if s.Diversity != nil {
		return s.Diversity
	}
	switch s.Config {
	case Config3AddressSpace:
		// The 2-variant baseline: disjoint address spaces and unshared
		// (identity-content) system databases, no data reexpression.
		return reexpress.UncheckedSpec(2,
			reexpress.AddressPartitionLayer(2),
			reexpress.UnsharedFilesLayer(reexpress.DefaultUnsharedPaths...),
		)
	case Config4UIDVariation:
		pair := reexpress.UIDVariation().Pair
		if s.Pair != nil {
			pair = *s.Pair
		}
		return reexpress.FullStack(pair.Funcs())
	}
	return nil
}

// Variants returns the group's process-group size.
func (s GroupSpec) Variants() int {
	if d := s.diversity(); d != nil {
		return d.N()
	}
	return s.Config.Variants()
}

// Build prepares the world and returns the variant programs plus
// kernel options for the configuration.
func Build(c Configuration, world *vos.World, serverOpts httpd.Options) ([]sys.Program, []nvkernel.Option, error) {
	return BuildSpec(world, GroupSpec{Config: c, Server: serverOpts})
}

// BuildSpec prepares the world for a group spec and returns the variant
// programs plus kernel options (the configuration's own options
// followed by the spec's extra Kernel options).
func BuildSpec(world *vos.World, spec GroupSpec) ([]sys.Program, []nvkernel.Option, error) {
	progs, kopts, err := buildSpec(world, spec)
	if err != nil {
		return nil, nil, err
	}
	if spec.Quorum > 0 {
		kopts = append(kopts, nvkernel.WithQuorum(spec.Quorum))
	}
	return progs, append(kopts, spec.Kernel...), nil
}

func buildSpec(world *vos.World, spec GroupSpec) ([]sys.Program, []nvkernel.Option, error) {
	if err := httpd.SetupWorldAt(world, spec.port()); err != nil {
		return nil, nil, err
	}
	serverOpts := spec.Server
	if spec.Workers > 0 {
		serverOpts.Workers = spec.Workers
	}
	switch spec.Config {
	case Config1Unmodified:
		return []sys.Program{httpd.New(serverOpts, httpd.Consts{Root: vos.Root})}, nil, nil

	case Config2Transformed:
		o := serverOpts
		o.Transformed = true
		return []sys.Program{httpd.New(o, httpd.Consts{Root: vos.Root})}, nil, nil

	case Config3AddressSpace:
		// Untransformed program, N variants in disjoint address slots,
		// kernel configured for unshared files (identity contents) —
		// the paper's baseline for added-variation cost. The programs
		// carry untransformed constants, so a UID layer would violate
		// normal equivalence here.
		d := spec.diversity()
		if d.HasLayer(reexpress.LayerUID) {
			return nil, nil, fmt.Errorf("harness: configuration 3 runs untransformed variants; a UID layer needs configuration 4")
		}
		n := d.N()
		if d.HasLayer(reexpress.LayerUnsharedFiles) {
			idFuncs := make([]reexpress.Func, n)
			for i := range idFuncs {
				idFuncs[i] = reexpress.Identity{}
			}
			if err := nvkernel.SetupUnsharedPasswd(world, idFuncs); err != nil {
				return nil, nil, err
			}
		}
		progs := make([]sys.Program, n)
		for i := range progs {
			progs[i] = httpd.New(serverOpts, httpd.Consts{Root: vos.Root})
		}
		return progs, []nvkernel.Option{nvkernel.WithSpec(d)}, nil

	case Config4UIDVariation:
		// The full system: every layer of the group's DiversitySpec is
		// materialized — variant programs are built with the spec's
		// (composed) UID functions, the diversified passwd/group files
		// are written for every variant, and the kernel is configured
		// from the same spec.
		d := spec.diversity()
		if d.HasLayer(reexpress.LayerUID) && !d.HasLayer(reexpress.LayerUnsharedFiles) {
			// Reexpressed UID constants with shared system databases
			// would alarm on the first benign passwd lookup.
			return nil, nil, fmt.Errorf("harness: a UID layer requires the unshared-files layer (normal equivalence, §3.4)")
		}
		funcs := d.UIDFuncs()
		if d.HasLayer(reexpress.LayerUnsharedFiles) {
			if err := nvkernel.SetupUnsharedPasswd(world, funcs); err != nil {
				return nil, nil, err
			}
		}
		progs, err := httpd.BuildFromSpec(serverOpts, d)
		if err != nil {
			return nil, nil, err
		}
		return progs, []nvkernel.Option{nvkernel.WithSpec(d)}, nil

	default:
		return nil, nil, fmt.Errorf("harness: unknown configuration %d", spec.Config)
	}
}

// Handle controls a running server group.
type Handle struct {
	// World is the machine the server runs on.
	World *vos.World
	// Net is the network clients dial.
	Net *simnet.Network
	// Port is the server's listening port.
	Port uint16

	done chan struct{}
	res  *nvkernel.Result
	err  error
}

// Start launches the given configuration on a fresh world. The server
// runs until Stop (or until an alarm kills it).
func Start(c Configuration, serverOpts httpd.Options, latency time.Duration, kopts ...nvkernel.Option) (*Handle, error) {
	world, err := vos.NewWorld()
	if err != nil {
		return nil, err
	}
	return StartOn(world, simnet.New(latency), c, serverOpts, kopts...)
}

// StartOn launches the configuration on an existing world and network.
func StartOn(world *vos.World, net *simnet.Network, c Configuration, serverOpts httpd.Options, extra ...nvkernel.Option) (*Handle, error) {
	return StartSpecOn(world, net, GroupSpec{Config: c, Server: serverOpts}, extra...)
}

// StartSpec launches a group spec on a fresh world over an existing
// network — the fleet's way of (re)building a group.
func StartSpec(net *simnet.Network, spec GroupSpec, extra ...nvkernel.Option) (*Handle, error) {
	world, err := vos.NewWorld()
	if err != nil {
		return nil, err
	}
	return StartSpecOn(world, net, spec, extra...)
}

// StartSpecOn launches a group spec on an existing world and network.
func StartSpecOn(world *vos.World, net *simnet.Network, spec GroupSpec, extra ...nvkernel.Option) (*Handle, error) {
	progs, kopts, err := BuildSpec(world, spec)
	if err != nil {
		return nil, err
	}
	kopts = append(kopts, extra...)
	h := &Handle{World: world, Net: net, Port: spec.port(), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.res, h.err = nvkernel.Run(world, net, progs, kopts...)
	}()

	// Wait for the listener so callers can dial immediately.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial(h.Port)
		if err == nil {
			_ = conn.Close()
			return h, nil
		}
		select {
		case <-h.done:
			if h.err != nil {
				return nil, fmt.Errorf("server exited during startup: %w", h.err)
			}
			return nil, fmt.Errorf("server exited during startup: %+v", h.res.Alarm)
		default:
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server did not start listening")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Client returns an HTTP client for the server.
func (h *Handle) Client() *httpd.Client { return httpd.NewClient(h.Net, h.Port) }

// Stop shuts the server down (closing its port) and returns the run
// result.
func (h *Handle) Stop() (*nvkernel.Result, error) {
	select {
	case <-h.done:
		// Already finished (e.g. killed by an alarm).
	default:
		_ = h.Net.ShutdownPort(h.Port)
	}
	return h.Wait()
}

// Wait blocks until the group terminates and returns the result.
func (h *Handle) Wait() (*nvkernel.Result, error) {
	select {
	case <-h.done:
	case <-time.After(60 * time.Second):
		return nil, fmt.Errorf("harness: server did not terminate")
	}
	return h.res, h.err
}

// Done returns a channel that is closed when the group terminates —
// for supervisors (the fleet) that must react to an alarm kill without
// blocking in Wait.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Result returns the terminal run result. It is valid only after Done
// is closed; before that it returns nil, nil.
func (h *Handle) Result() (*nvkernel.Result, error) {
	select {
	case <-h.done:
		return h.res, h.err
	default:
		return nil, nil
	}
}
