package harness

import (
	"errors"
	"testing"

	"nvariant/internal/attack"
	"nvariant/internal/httpd"
	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/vos"
)

// startConfig launches a configuration with test-friendly options.
func startConfig(t *testing.T, c Configuration, opts httpd.Options) *Handle {
	t.Helper()
	h, err := Start(c, opts, 0)
	if err != nil {
		t.Fatalf("start %v: %v", c, err)
	}
	return h
}

func TestAllConfigurationsServeNormally(t *testing.T) {
	for _, c := range []Configuration{
		Config1Unmodified, Config2Transformed, Config3AddressSpace, Config4UIDVariation,
	} {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			h := startConfig(t, c, httpd.DefaultOptions())
			cl := h.Client()

			code, body, err := cl.Get("/index.html")
			if err != nil {
				t.Fatalf("GET /index.html: %v", err)
			}
			if code != 200 || !containsStr(body, "It works!") {
				t.Errorf("GET /index.html = %d %q", code, body)
			}

			code, _, err = cl.Get("/no-such-page.html")
			if err != nil {
				t.Fatalf("GET missing: %v", err)
			}
			if code != 404 {
				t.Errorf("missing page = %d, want 404", code)
			}

			// The root-only document must be refused: the server has
			// dropped to wwwrun for filesystem access.
			code, body, err = cl.Get("/private/secret.html")
			if err != nil {
				t.Fatalf("GET secret: %v", err)
			}
			if code != 403 || httpd.ContainsSecret(body) {
				t.Errorf("GET secret = %d (leak=%v), want 403", code, httpd.ContainsSecret(body))
			}

			// Directory index.
			code, body, err = cl.Get("/")
			if err != nil {
				t.Fatalf("GET /: %v", err)
			}
			if code != 200 || !containsStr(body, "It works!") {
				t.Errorf("GET / = %d %q", code, body)
			}

			res, err := h.Stop()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Clean {
				t.Errorf("server did not exit cleanly: %+v", res.Alarm)
			}
		})
	}
}

func TestAttackMatrix(t *testing.T) {
	// The headline security result: the full-word UID-forging attack
	// (Chen et al. style) against every configuration. Address-space
	// partitioning (configuration 3) does NOT protect against this
	// non-control-data attack; only the UID variation detects it.
	tests := []struct {
		config       Configuration
		wantLeak     bool
		wantDetected bool
	}{
		{Config1Unmodified, true, false},
		{Config2Transformed, true, false},
		{Config3AddressSpace, true, false},
		{Config4UIDVariation, false, true},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.config.String(), func(t *testing.T) {
			h := startConfig(t, tc.config, httpd.DefaultOptions())
			cl := h.Client()

			// Step 1: the overflow request corrupts the worker UID to
			// root. The server answers 400 and keeps running.
			resp, err := cl.Raw(attack.ForgeUIDPayload(vos.Root))
			if err != nil {
				t.Fatalf("overflow request: %v", err)
			}
			if code, err := httpd.ParseStatus(resp); err != nil || code != 400 {
				t.Fatalf("overflow response = %d, %v; want 400", code, err)
			}

			// Step 2: the trigger request uses the corrupted UID.
			code, body, err := cl.Get("/private/secret.html")
			leaked := err == nil && code == 200 && httpd.ContainsSecret(body)

			if leaked != tc.wantLeak {
				t.Errorf("secret leaked = %v, want %v (code=%d err=%v)", leaked, tc.wantLeak, code, err)
			}
			if tc.wantDetected && err == nil {
				t.Errorf("expected the monitor to kill the connection, got %d %q", code, body)
			}
			if tc.wantDetected && !errors.Is(err, httpd.ErrConnClosed) {
				t.Logf("note: attacker observed %v", err)
			}

			res, err := h.Stop()
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantDetected {
				if res.Alarm == nil {
					t.Fatal("no alarm raised")
				}
				if res.Alarm.Reason != nvkernel.ReasonUIDDivergence {
					t.Errorf("alarm reason = %v, want uid-divergence", res.Alarm.Reason)
				}
				if res.Alarm.Syscall != "uid_value" {
					t.Errorf("alarm at %q, want uid_value (detection at first use)", res.Alarm.Syscall)
				}
			} else if res.Alarm != nil {
				t.Errorf("unexpected alarm: %+v", res.Alarm)
			}
		})
	}
}

func TestPartialOverwriteAttack(t *testing.T) {
	// §3.2: a single-byte partial overwrite (low byte := 0 turns
	// wwwrun's UID 30 into 0) escalates on the unmodified server and
	// is detected by the UID variation because R₁ flips the low byte's
	// bits too.
	t.Run("undefended", func(t *testing.T) {
		h := startConfig(t, Config1Unmodified, httpd.DefaultOptions())
		cl := h.Client()
		if _, err := cl.Raw(attack.ForgeLowBytesPayload(vos.Root, 1)); err != nil {
			t.Fatal(err)
		}
		code, body, err := cl.Get("/private/secret.html")
		if err != nil || code != 200 || !httpd.ContainsSecret(body) {
			t.Errorf("1-byte attack failed: %d %v", code, err)
		}
		if _, err := h.Stop(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("uid-variation", func(t *testing.T) {
		h := startConfig(t, Config4UIDVariation, httpd.DefaultOptions())
		cl := h.Client()
		if _, err := cl.Raw(attack.ForgeLowBytesPayload(vos.Root, 1)); err != nil {
			t.Fatal(err)
		}
		_, _, err := cl.Get("/private/secret.html")
		if err == nil {
			t.Error("1-byte attack not stopped")
		}
		res, err := h.Stop()
		if err != nil {
			t.Fatal(err)
		}
		if res.Alarm == nil || res.Alarm.Reason != nvkernel.ReasonUIDDivergence {
			t.Errorf("alarm = %+v, want uid-divergence", res.Alarm)
		}
	})
}

func TestLogUIDsPitfall(t *testing.T) {
	// §4: leaving UID values in shared log output makes the UID
	// variation diverge on benign traffic (a false alarm). The
	// paper's fix — removing the UID from the log line — is the
	// default; this test re-introduces the bug.
	opts := httpd.DefaultOptions()
	opts.LogUIDs = true
	h := startConfig(t, Config4UIDVariation, opts)
	cl := h.Client()

	// A benign 403 (private page) triggers the log line with the UID.
	_, _, _ = cl.Get("/private/secret.html")

	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Alarm == nil {
		t.Fatal("expected divergence from UID-bearing log line")
	}
	if res.Alarm.Reason != nvkernel.ReasonArgDivergence && res.Alarm.Reason != nvkernel.ReasonDataDivergence {
		t.Errorf("alarm reason = %v", res.Alarm.Reason)
	}
}

func TestShutdownURI(t *testing.T) {
	h := startConfig(t, Config1Unmodified, httpd.DefaultOptions())
	cl := h.Client()
	code, _, err := cl.Get(httpd.ShutdownURI)
	if err != nil || code != 200 {
		t.Fatalf("shutdown request = %d, %v", code, err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("not clean after shutdown URI: %+v", res.Alarm)
	}
}

func TestMaxConns(t *testing.T) {
	opts := httpd.DefaultOptions()
	opts.MaxConns = 2
	h := startConfig(t, Config2Transformed, opts)
	cl := h.Client()
	for i := 0; i < 2; i++ {
		if code, _, err := cl.Get("/index.html"); err != nil || code != 200 {
			t.Fatalf("request %d = %d, %v", i, code, err)
		}
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("server not clean after MaxConns: %+v", res.Alarm)
	}
}

func TestErrorLogWritten(t *testing.T) {
	h := startConfig(t, Config4UIDVariation, httpd.DefaultOptions())
	cl := h.Client()
	_, _, _ = cl.Get("/private/secret.html") // benign 403 → log line
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("alarm: %+v", res.Alarm)
	}
	log, err := h.World.FS.ReadFile("/var/log/httpd-error_log", vos.CredFor(vos.Root, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(log, "httpd started") || !containsStr(log, "access denied") {
		t.Errorf("log = %q", log)
	}
	// The paper's fix: no numeric UID in the shared log.
	if containsStr(log, "uid=") {
		t.Errorf("log leaks UID values: %q", log)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := startConfig(t, Config1Unmodified, httpd.DefaultOptions())
	cl := h.Client()
	resp, err := cl.Raw([]byte("POST /index.html HTTP/1.0\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := httpd.ParseStatus(resp); code != 405 {
		t.Errorf("POST = %d, want 405", code)
	}
	if _, err := h.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestDotDotRejected(t *testing.T) {
	h := startConfig(t, Config1Unmodified, httpd.DefaultOptions())
	cl := h.Client()
	code, _, err := cl.Get("/../etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if code != 403 {
		t.Errorf("traversal = %d, want 403", code)
	}
	if _, err := h.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigurationStrings(t *testing.T) {
	if Config1Unmodified.String() != "Unmodified Apache" || Config4UIDVariation.String() != "2-Variant UID" {
		t.Error("configuration names drifted from Table 3")
	}
	if Configuration(99).String() != "unknown" {
		t.Error("unknown configuration name")
	}
	if Config1Unmodified.Variants() != 1 || Config3AddressSpace.Variants() != 2 {
		t.Error("variant counts wrong")
	}
}

func containsStr(b []byte, s string) bool {
	return len(b) > 0 && len(s) > 0 && string(b) != "" && indexOf(string(b), s) >= 0
}

func indexOf(hay, needle string) int {
	for i := 0; i+len(needle) <= len(hay); i++ {
		if hay[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

func TestAblationDetectionWithoutDedicatedCalls(t *testing.T) {
	// §5: instead of the dedicated per-request uid_value call, rely on
	// the existing syscall-boundary monitoring. The attack is still
	// detected — but at the next natural UID syscall (seteuid) rather
	// than at the point of use, trading detection precision for one
	// syscall per request.
	opts := httpd.DefaultOptions()
	opts.NoDetectionCalls = true
	h := startConfig(t, Config4UIDVariation, opts)
	cl := h.Client()

	if code, _, err := cl.Get("/index.html"); err != nil || code != 200 {
		t.Fatalf("benign request = %d, %v", code, err)
	}
	if _, err := cl.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Get("/private/secret.html"); err == nil {
		t.Error("trigger request answered despite corruption")
	}

	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Alarm == nil || res.Alarm.Reason != nvkernel.ReasonUIDDivergence {
		t.Fatalf("alarm = %+v, want uid-divergence", res.Alarm)
	}
	if res.Alarm.Syscall != "seteuid" {
		t.Errorf("detected at %q, want seteuid (the next natural UID syscall)", res.Alarm.Syscall)
	}
}

func TestCompositionDetectsBothAttackClasses(t *testing.T) {
	// Configuration 4 composes address partitioning with the UID
	// variation (§4: "the practical possibility of combining
	// variations"). The UID attack is covered by TestAttackMatrix;
	// here the composed system also faces an overlong payload that
	// would run past mapped memory — a crash-divergence case — and
	// must flag it rather than serve on.
	h := startConfig(t, Config4UIDVariation, httpd.DefaultOptions())
	cl := h.Client()

	// RecvCap bounds the kernel copy, so a giant payload is truncated
	// at 1280 bytes: still inside the guard region, overwriting the
	// UID word with filler bytes ('AAAA' = 0x41414141).
	huge := make([]byte, 4096)
	for i := range huge {
		huge[i] = 'A'
	}
	if _, err := cl.Raw(huge); err != nil {
		t.Fatal(err)
	}
	_, _, err := cl.Get("/index.html")
	if err == nil {
		t.Error("request served with garbage UID")
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Alarm == nil || res.Alarm.Reason != nvkernel.ReasonUIDDivergence {
		t.Fatalf("alarm = %+v, want uid-divergence (garbage UID decodes differently)", res.Alarm)
	}
}

// --- DiversitySpec-driven groups ---------------------------------------

func TestSpecDrivenGroupServesAndDetectsAtEveryN(t *testing.T) {
	// The full configuration-4 stack at N ∈ {2,3,4,5}: benign requests
	// must be served with no false alarm, and the planted UID-forging
	// attack must be detected at every N.
	for n := 2; n <= 5; n++ {
		spec := reexpress.Generate(int64(40+n), n,
			reexpress.LayerUID, reexpress.LayerAddressPartition, reexpress.LayerUnsharedFiles)
		h, err := StartSpec(simnet.New(0), GroupSpec{
			Config:    Config4UIDVariation,
			Diversity: spec,
		})
		if err != nil {
			t.Fatalf("n=%d: start: %v", n, err)
		}
		cl := h.Client()
		if code, _, err := cl.Get("/index.html"); err != nil || code != 200 {
			t.Fatalf("n=%d: benign request = %d, %v", n, code, err)
		}
		if _, err := cl.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
			t.Fatalf("n=%d: overflow: %v", n, err)
		}
		_, _, _ = cl.Get("/private/secret.html") // trigger first use of the forged UID
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("n=%d: wait: %v", n, err)
		}
		if res.Alarm == nil || res.Alarm.Reason != nvkernel.ReasonUIDDivergence {
			t.Fatalf("n=%d: alarm = %v, want uid-divergence", n, res.Alarm)
		}
	}
}

func TestGroupSpecVariants(t *testing.T) {
	if got := (GroupSpec{Config: Config4UIDVariation}).Variants(); got != 2 {
		t.Errorf("default config4 variants = %d, want 2", got)
	}
	spec := reexpress.Generate(7, 4, reexpress.LayerUID, reexpress.LayerUnsharedFiles)
	if got := (GroupSpec{Config: Config4UIDVariation, Diversity: spec}).Variants(); got != 4 {
		t.Errorf("spec-driven variants = %d, want 4", got)
	}
	if got := (GroupSpec{Config: Config1Unmodified}).Variants(); got != 1 {
		t.Errorf("config1 variants = %d, want 1", got)
	}
}

func TestConfig4RejectsUIDLayerWithoutUnsharedFiles(t *testing.T) {
	spec := reexpress.Generate(11, 2) // UID layer only
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := BuildSpec(world, GroupSpec{Config: Config4UIDVariation, Diversity: spec}); err == nil {
		t.Fatal("UID layer without unshared files accepted (would false-alarm on passwd lookup)")
	}
}

func TestConfig3RejectsUIDLayer(t *testing.T) {
	spec := reexpress.Generate(11, 2, reexpress.LayerUID, reexpress.LayerUnsharedFiles)
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := BuildSpec(world, GroupSpec{Config: Config3AddressSpace, Diversity: spec}); err == nil {
		t.Fatal("config 3 accepted a UID layer over untransformed programs")
	}
}

func TestDeprecatedPairFieldStillWorks(t *testing.T) {
	// Pre-DiversitySpec call sites pass a raw Pair; it must still
	// select the group's representations.
	pair := reexpress.UIDVariation().Pair
	h, err := StartSpec(simnet.New(0), GroupSpec{Config: Config4UIDVariation, Pair: &pair})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _, _ = h.Stop() }()
	if code, _, err := h.Client().Get("/index.html"); err != nil || code != 200 {
		t.Fatalf("request = %d, %v", code, err)
	}
}
