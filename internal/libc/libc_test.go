package libc

import (
	"testing"

	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
)

// run executes fn as a single-variant program on a fresh world.
func run(t *testing.T, fn func(ctx *sys.Context) error, opts ...nvkernel.Option) *nvkernel.Result {
	t.Helper()
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	res, err := nvkernel.Run(world, simnet.New(0),
		[]sys.Program{sys.ProgramFunc{ProgName: "libc-test", Fn: fn}}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGetpwnam(t *testing.T) {
	res := run(t, func(ctx *sys.Context) error {
		u, ok, err := Getpwnam(ctx, "wwwrun")
		if err != nil {
			return err
		}
		if !ok || u.UID != 30 || u.GID != 8 {
			return ctx.Exit(1)
		}
		_, ok, err = Getpwnam(ctx, "mallory")
		if err != nil {
			return err
		}
		if ok {
			return ctx.Exit(2)
		}
		return ctx.Exit(0)
	})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}

func TestGetpwuid(t *testing.T) {
	res := run(t, func(ctx *sys.Context) error {
		u, ok, err := Getpwuid(ctx, 1000)
		if err != nil {
			return err
		}
		if !ok || u.Name != "alice" {
			return ctx.Exit(1)
		}
		_, ok, err = Getpwuid(ctx, 424242)
		if err != nil {
			return err
		}
		if ok {
			return ctx.Exit(2)
		}
		return ctx.Exit(0)
	})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}

func TestGetgrnam(t *testing.T) {
	res := run(t, func(ctx *sys.Context) error {
		g, ok, err := Getgrnam(ctx, "www")
		if err != nil {
			return err
		}
		if !ok || g.GID != 8 {
			return ctx.Exit(1)
		}
		return ctx.Exit(0)
	})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}

func TestGetpwnamThroughUnsharedFiles(t *testing.T) {
	// Under the UID variation, getpwnam reads the variant's own
	// diversified passwd and returns the variant's representation —
	// feeding it to uid_value must cross-check cleanly.
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	pair := reexpress.UIDVariation().Pair
	if err := nvkernel.SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
		t.Fatal(err)
	}
	fn := func(ctx *sys.Context) error {
		u, ok, err := Getpwnam(ctx, "alice")
		if err != nil {
			return err
		}
		if !ok {
			return ctx.Exit(1)
		}
		if _, err := ctx.UIDValue(u.UID); err != nil {
			return err
		}
		return ctx.Exit(0)
	}
	progs := []sys.Program{
		sys.ProgramFunc{ProgName: "v", Fn: fn},
		sys.ProgramFunc{ProgName: "v", Fn: fn},
	}
	res, err := nvkernel.Run(world, simnet.New(0), progs,
		nvkernel.WithUIDVariation(pair),
		nvkernel.WithUnsharedFiles("/etc/passwd", "/etc/group"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}

func TestGetpwnamMissingPasswd(t *testing.T) {
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	root := vos.CredFor(vos.Root, 0)
	if err := world.FS.Remove("/etc/passwd", root); err != nil {
		t.Fatal(err)
	}
	res, err := nvkernel.Run(world, simnet.New(0), []sys.Program{
		sys.ProgramFunc{ProgName: "v", Fn: func(ctx *sys.Context) error {
			if _, _, err := Getpwnam(ctx, "root"); err == nil {
				return ctx.Exit(1)
			}
			return ctx.Exit(0)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}
