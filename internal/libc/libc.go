// Package libc provides the small C-library layer variant programs
// use above raw syscalls: user/group database lookups implemented by
// reading /etc/passwd and /etc/group through the syscall interface.
//
// This path matters for the paper's §3.4: when the kernel marks
// /etc/passwd unshared, getpwnam transparently reads the variant's
// diversified copy, so the UID it returns is already in the variant's
// representation — no reexpression function ever runs inside the
// program (which would hand the attacker a reusable oracle, §5).
package libc

import (
	"fmt"

	"nvariant/internal/sys"
	"nvariant/internal/vos"
)

// Getpwnam looks up a user by name via /etc/passwd.
func Getpwnam(ctx *sys.Context, name string) (vos.User, bool, error) {
	users, err := readPasswd(ctx)
	if err != nil {
		return vos.User{}, false, err
	}
	u, ok := vos.LookupUser(users, name)
	return u, ok, nil
}

// Getpwuid looks up a user by UID (in this variant's representation,
// since the passwd file itself is diversified) via /etc/passwd.
func Getpwuid(ctx *sys.Context, uid vos.UID) (vos.User, bool, error) {
	users, err := readPasswd(ctx)
	if err != nil {
		return vos.User{}, false, err
	}
	u, ok := vos.LookupUID(users, uid)
	return u, ok, nil
}

// Getgrnam looks up a group by name via /etc/group.
func Getgrnam(ctx *sys.Context, name string) (vos.Group, bool, error) {
	fd, err := ctx.Open("/etc/group", vos.ReadOnly, 0)
	if err != nil {
		return vos.Group{}, false, fmt.Errorf("getgrnam %q: %w", name, err)
	}
	defer func() { _ = ctx.Close(fd) }()
	data, err := ctx.ReadAll(fd)
	if err != nil {
		return vos.Group{}, false, fmt.Errorf("getgrnam %q: %w", name, err)
	}
	groups, err := vos.ParseGroup(data)
	if err != nil {
		return vos.Group{}, false, fmt.Errorf("getgrnam %q: %w", name, err)
	}
	g, ok := vos.LookupGroup(groups, name)
	return g, ok, nil
}

func readPasswd(ctx *sys.Context) ([]vos.User, error) {
	fd, err := ctx.Open("/etc/passwd", vos.ReadOnly, 0)
	if err != nil {
		return nil, fmt.Errorf("read passwd: %w", err)
	}
	defer func() { _ = ctx.Close(fd) }()
	data, err := ctx.ReadAll(fd)
	if err != nil {
		return nil, fmt.Errorf("read passwd: %w", err)
	}
	users, err := vos.ParsePasswd(data)
	if err != nil {
		return nil, fmt.Errorf("parse passwd: %w", err)
	}
	return users, nil
}
