// Package vmem simulates 32-bit process address spaces.
//
// Address-space partitioning (Table 1 of the paper) constructs
// variants whose memory regions are disjoint: variant 0's addresses
// have a 0 partition (high) bit and variant 1's have a 1 partition
// bit. An attack that injects an absolute address can be valid in at
// most one variant; dereferencing it in the other produces a
// segmentation fault that the monitor observes as divergence
// (Figure 1). Go programs cannot diversify their own runtime address
// space (repro note: "low-level memory diversity clashes with
// runtime"), so variants in this reproduction run on these simulated
// spaces instead, preserving exactly the fault semantics the detection
// argument needs.
package vmem

import (
	"fmt"
	"sort"

	"nvariant/internal/word"
)

// Addr is an address in a simulated 32-bit address space.
type Addr = word.Word

// PageSize is the granularity of backing storage.
const PageSize = 4096

// Partition constrains which slice of the address space a Space may
// map, mirroring the address-space partitioning reexpression. The
// paper's two-variant construction (variant 0 in the low half, variant
// 1 in the high half) generalizes to 2^bits equal slots with the
// variant index carried in the top bits of every address — an
// N-variant deployment gives variant i slot i via PartitionSlot.
type Partition struct {
	// index is the slot number, in [0, 2^bits).
	index int
	// bits is the slot-index width; 0 means the full unpartitioned
	// space.
	bits int
}

// Partition values of the two-variant construction.
var (
	// PartitionNone allows the full 32-bit space (used when address
	// diversity is disabled).
	PartitionNone = Partition{}
	// PartitionLow restricts the space to addresses with a 0 high bit.
	PartitionLow = Partition{index: 0, bits: 1}
	// PartitionHigh restricts the space to addresses with a 1 high bit.
	PartitionHigh = Partition{index: 1, bits: 1}
)

// PartitionBits returns the slot-index width needed for n disjoint
// slots (minimum 1, the paper's two-halves split). It delegates to
// word.SlotBits, the shared source of truth reexpress's Slot functions
// are built from — the monitor's canonicalization width therefore
// cannot drift from the slot layout a spec was validated against.
func PartitionBits(n int) int { return word.SlotBits(n) }

// PartitionSlot returns slot index of the 2^PartitionBits(count)-way
// partitioning of the address space — variant index's confinement in
// a count-variant deployment.
func PartitionSlot(index, count int) (Partition, error) {
	bits := PartitionBits(count)
	if bits >= word.Bits {
		return Partition{}, fmt.Errorf("vmem: %d-way partitioning needs %d index bits", count, bits)
	}
	if index < 0 || index >= 1<<bits {
		return Partition{}, fmt.Errorf("vmem: slot %d out of range for %d-way partitioning", index, 1<<bits)
	}
	return Partition{index: index, bits: bits}, nil
}

// Bits returns the slot-index width (0 for the unpartitioned space).
func (p Partition) Bits() int { return p.bits }

// Index returns the slot number.
func (p Partition) Index() int { return p.index }

// String names the partition.
func (p Partition) String() string {
	switch p {
	case PartitionNone:
		return "none"
	case PartitionLow:
		return "low"
	case PartitionHigh:
		return "high"
	}
	return fmt.Sprintf("slot %d/%d", p.index, 1<<p.bits)
}

// Contains reports whether addr falls inside the partition.
func (p Partition) Contains(addr Addr) bool {
	if p.bits == 0 {
		return true
	}
	return int(addr>>(word.Bits-p.bits)) == p.index
}

// Base returns the lowest address of the partition.
func (p Partition) Base() Addr {
	if p.bits == 0 {
		return 0
	}
	return Addr(p.index) << (word.Bits - p.bits)
}

// SegfaultError reports an access to an unmapped (or out-of-partition)
// address — the alarm state of the address-partitioning variation.
type SegfaultError struct {
	// Addr is the faulting address.
	Addr Addr
	// Op is the attempted operation ("read", "write", "map").
	Op string
}

// Error implements the error interface.
func (e *SegfaultError) Error() string {
	return fmt.Sprintf("vmem: segmentation fault: %s at %s", e.Op, e.Addr)
}

// segment is a mapped region [base, base+size).
type segment struct {
	base Addr
	size uint32
}

func (s segment) end() uint64 { return uint64(s.base) + uint64(s.size) }

// Space is a sparse, segment-mapped simulated address space. The zero
// value is not usable; construct with New.
type Space struct {
	partition Partition
	segments  []segment // sorted by base, non-overlapping
	pages     map[Addr][]byte
	brk       Addr // next allocation address for Alloc
}

// New returns an empty address space confined to the given partition.
// Allocations made with Alloc start at the partition base plus a
// small guard offset so address 0 (NULL) is never mapped.
func New(partition Partition) *Space {
	return &Space{
		partition: partition,
		pages:     make(map[Addr][]byte),
		brk:       partition.Base() + PageSize,
	}
}

// Partition returns the space's partition.
func (s *Space) Partition() Partition { return s.partition }

// Canonical maps an address into the canonical (variant-0) address
// space by clearing the partition bit. This is the canonicalization
// function the monitor uses to compare address arguments across
// variants (§2, normal equivalence) in the two-variant construction.
func Canonical(addr Addr) Addr { return addr &^ word.HighBit }

// CanonicalIn is Canonical generalized to a 2^bits-way partitioned
// deployment: it clears the top bits index bits, mapping any variant's
// address back to the variant-0 (slot 0) space.
func CanonicalIn(addr Addr, bits int) Addr {
	if bits <= 0 {
		return addr
	}
	return addr & (Addr(1)<<(word.Bits-bits) - 1)
}

// Map makes [base, base+size) accessible. It fails if the region
// leaves the partition, wraps the address space, has zero size, or
// overlaps an existing segment.
func (s *Space) Map(base Addr, size uint32) error {
	if size == 0 {
		return fmt.Errorf("vmem: map %s: zero size", base)
	}
	if uint64(base)+uint64(size) > 1<<32 {
		return fmt.Errorf("vmem: map %s+%d: wraps address space", base, size)
	}
	last := base + Addr(size-1)
	if !s.partition.Contains(base) || !s.partition.Contains(last) {
		return &SegfaultError{Addr: base, Op: "map"}
	}
	for _, seg := range s.segments {
		if uint64(base) < seg.end() && uint64(seg.base) < uint64(base)+uint64(size) {
			return fmt.Errorf("vmem: map %s+%d: overlaps segment %s+%d", base, size, seg.base, seg.size)
		}
	}
	s.segments = append(s.segments, segment{base: base, size: size})
	sort.Slice(s.segments, func(i, j int) bool { return s.segments[i].base < s.segments[j].base })
	return nil
}

// Alloc maps a fresh region of the given size at the next free
// address and returns its base. Consecutive Alloc calls return
// adjacent regions — which is what makes buffer overflows into a
// neighbouring allocation possible, as in the planted httpd
// vulnerability.
func (s *Space) Alloc(size uint32) (Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("vmem: alloc: zero size")
	}
	base := s.brk
	if err := s.Map(base, size); err != nil {
		return 0, fmt.Errorf("alloc %d bytes: %w", size, err)
	}
	s.brk = base + Addr(size)
	return base, nil
}

// AllocAligned is Alloc with the base rounded up to the given power of
// two.
func (s *Space) AllocAligned(size, align uint32) (Addr, error) {
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("vmem: alloc: alignment %d is not a power of two", align)
	}
	mask := Addr(align - 1)
	s.brk = (s.brk + mask) &^ mask
	return s.Alloc(size)
}

// mapped reports whether the full range [addr, addr+n) is mapped.
func (s *Space) mapped(addr Addr, n uint32) bool {
	if n == 0 {
		return true
	}
	if uint64(addr)+uint64(n) > 1<<32 {
		return false
	}
	// Because segments are sorted and non-overlapping, a range is
	// mapped iff it is covered by consecutive adjacent segments.
	need := uint64(addr)
	stop := uint64(addr) + uint64(n)
	for _, seg := range s.segments {
		if seg.end() <= need {
			continue
		}
		if uint64(seg.base) > need {
			return false
		}
		need = seg.end()
		if need >= stop {
			return true
		}
	}
	return false
}

// page returns the backing page for addr, creating it on demand.
func (s *Space) page(addr Addr) []byte {
	base := addr &^ Addr(PageSize-1)
	p, ok := s.pages[base]
	if !ok {
		p = make([]byte, PageSize)
		s.pages[base] = p
	}
	return p
}

// LoadByte loads one byte.
func (s *Space) LoadByte(addr Addr) (byte, error) {
	if !s.mapped(addr, 1) {
		return 0, &SegfaultError{Addr: addr, Op: "read"}
	}
	return s.page(addr)[addr%PageSize], nil
}

// StoreByte stores one byte.
func (s *Space) StoreByte(addr Addr, b byte) error {
	if !s.mapped(addr, 1) {
		return &SegfaultError{Addr: addr, Op: "write"}
	}
	s.page(addr)[addr%PageSize] = b
	return nil
}

// ReadBytes loads n bytes starting at addr.
func (s *Space) ReadBytes(addr Addr, n uint32) ([]byte, error) {
	if !s.mapped(addr, n) {
		return nil, &SegfaultError{Addr: addr, Op: "read"}
	}
	out := make([]byte, n)
	if err := s.readInto(addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBytesInto loads len(buf) bytes starting at addr into buf — the
// allocation-free form of ReadBytes for callers that reuse a scratch
// buffer (the monitor's payload gathering, httpd's request parsing).
func (s *Space) ReadBytesInto(addr Addr, buf []byte) error {
	if !s.mapped(addr, uint32(len(buf))) {
		return &SegfaultError{Addr: addr, Op: "read"}
	}
	return s.readInto(addr, buf)
}

// readInto copies the (already validated) range into buf page by page.
func (s *Space) readInto(addr Addr, buf []byte) error {
	for i := 0; i < len(buf); {
		a := addr + Addr(i)
		off := a % PageSize
		n := copy(buf[i:], s.page(a)[off:])
		i += n
	}
	return nil
}

// writeInto copies src into the (already validated) range page by
// page. Generic over string and []byte so WriteBytes and WriteString
// share one copy loop.
func writeInto[T ~string | ~[]byte](s *Space, addr Addr, src T) {
	for i := 0; i < len(src); {
		a := addr + Addr(i)
		off := a % PageSize
		n := copy(s.page(a)[off:], src[i:])
		i += n
	}
}

// WriteBytes stores b starting at addr, copying page by page.
func (s *Space) WriteBytes(addr Addr, b []byte) error {
	if !s.mapped(addr, uint32(len(b))) {
		return &SegfaultError{Addr: addr, Op: "write"}
	}
	writeInto(s, addr, b)
	return nil
}

// WriteString stores str starting at addr, page by page, without the
// []byte conversion (and its allocation) WriteBytes would need.
func (s *Space) WriteString(addr Addr, str string) error {
	if !s.mapped(addr, uint32(len(str))) {
		return &SegfaultError{Addr: addr, Op: "write"}
	}
	writeInto(s, addr, str)
	return nil
}

// ReadWord loads a little-endian 32-bit word.
func (s *Space) ReadWord(addr Addr) (word.Word, error) {
	b, err := s.ReadBytes(addr, word.Size)
	if err != nil {
		return 0, err
	}
	return word.FromBytes([word.Size]byte{b[0], b[1], b[2], b[3]}), nil
}

// WriteWord stores a little-endian 32-bit word.
func (s *Space) WriteWord(addr Addr, w word.Word) error {
	b := w.Bytes()
	return s.WriteBytes(addr, b[:])
}

// Segments returns the mapped regions as (base, size) pairs in
// address order. The result is a copy.
func (s *Space) Segments() [][2]uint64 {
	out := make([][2]uint64, len(s.segments))
	for i, seg := range s.segments {
		out[i] = [2]uint64{uint64(seg.base), uint64(seg.size)}
	}
	return out
}
