package vmem

import (
	"errors"
	"testing"
	"testing/quick"

	"nvariant/internal/word"
)

func TestPartitionContains(t *testing.T) {
	tests := []struct {
		p    Partition
		addr Addr
		want bool
	}{
		{PartitionLow, 0x00001000, true},
		{PartitionLow, 0x80001000, false},
		{PartitionHigh, 0x80001000, true},
		{PartitionHigh, 0x00001000, false},
		{PartitionNone, 0x00001000, true},
		{PartitionNone, 0x80001000, true},
	}
	for _, tt := range tests {
		if got := tt.p.Contains(tt.addr); got != tt.want {
			t.Errorf("%v.Contains(%s) = %v, want %v", tt.p, tt.addr, got, tt.want)
		}
	}
}

func TestPartitionString(t *testing.T) {
	slot2of4, err := PartitionSlot(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for p, want := range map[Partition]string{
		PartitionNone: "none", PartitionLow: "low", PartitionHigh: "high", slot2of4: "slot 2/4",
	} {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestPartitionSlots(t *testing.T) {
	// The paper's two-variant split is the count=2 special case.
	low, err := PartitionSlot(0, 2)
	if err != nil || low != PartitionLow {
		t.Fatalf("PartitionSlot(0,2) = %v, %v", low, err)
	}
	high, err := PartitionSlot(1, 2)
	if err != nil || high != PartitionHigh {
		t.Fatalf("PartitionSlot(1,2) = %v, %v", high, err)
	}

	// N=3 rounds up to a 4-way split; every slot is disjoint from
	// every other and together they tile the space.
	for count := 3; count <= 5; count++ {
		bits := PartitionBits(count)
		slots := make([]Partition, count)
		for i := range slots {
			p, err := PartitionSlot(i, count)
			if err != nil {
				t.Fatalf("PartitionSlot(%d,%d): %v", i, count, err)
			}
			slots[i] = p
			if p.Bits() != bits || p.Index() != i {
				t.Errorf("slot %d/%d = bits %d index %d", i, count, p.Bits(), p.Index())
			}
		}
		for i, p := range slots {
			if !p.Contains(p.Base()) {
				t.Errorf("slot %d does not contain its base %s", i, p.Base())
			}
			for j, q := range slots {
				if i != j && q.Contains(p.Base()) {
					t.Errorf("slot %d base %s also inside slot %d", i, p.Base(), j)
				}
			}
		}
	}

	if _, err := PartitionSlot(4, 4); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := PartitionSlot(-1, 2); err == nil {
		t.Error("negative slot accepted")
	}
}

func TestCanonicalIn(t *testing.T) {
	// Two-way: CanonicalIn(·, 1) must agree with the legacy Canonical.
	for _, a := range []Addr{0, 0x1000, 0x7FFFFFFF, 0x80001000, 0xFFFFFFFF} {
		if got, want := CanonicalIn(a, 1), Canonical(a); got != want {
			t.Errorf("CanonicalIn(%s,1) = %s, want %s", a, got, want)
		}
	}
	// Four-way: any slot's address maps back to the slot-0 offset.
	for i := 0; i < 4; i++ {
		p, err := PartitionSlot(i, 4)
		if err != nil {
			t.Fatal(err)
		}
		addr := p.Base() + 0x1234
		if got := CanonicalIn(addr, p.Bits()); got != 0x1234 {
			t.Errorf("slot %d: CanonicalIn(%s) = %s, want 0x1234", i, addr, got)
		}
	}
	if got := CanonicalIn(0x80001234, 0); got != 0x80001234 {
		t.Errorf("bits=0 must be identity, got %s", got)
	}
}

func TestSlotSpaceAllocStaysInSlot(t *testing.T) {
	for i := 0; i < 4; i++ {
		p, err := PartitionSlot(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			// Slot 3 exists in the rounded-up 4-way split; a 3-variant
			// deployment just leaves it empty.
			continue
		}
		s := New(p)
		addr, err := s.Alloc(4096)
		if err != nil {
			t.Fatalf("slot %d: Alloc: %v", i, err)
		}
		if !p.Contains(addr) {
			t.Errorf("slot %d: Alloc returned %s outside the slot", i, addr)
		}
		// Mapping outside the slot must fault.
		other := CanonicalIn(addr, p.Bits()) // slot-0 image
		if i != 0 {
			if err := s.Map(other, 16); err == nil {
				t.Errorf("slot %d: mapping slot-0 address %s did not fault", i, other)
			}
		}
	}
}

func TestAllocAndRoundTrip(t *testing.T) {
	s := New(PartitionLow)
	addr, err := s.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if !PartitionLow.Contains(addr) {
		t.Fatalf("Alloc returned %s outside low partition", addr)
	}
	if err := s.WriteBytes(addr, []byte("hello")); err != nil {
		t.Fatalf("WriteBytes: %v", err)
	}
	got, err := s.ReadBytes(addr, 5)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	if string(got) != "hello" {
		t.Errorf("ReadBytes = %q, want hello", got)
	}
}

func TestAllocAdjacency(t *testing.T) {
	// Consecutive allocations must be adjacent: the planted overflow
	// relies on the request buffer sitting directly below the uid.
	s := New(PartitionHigh)
	a, err := s.Alloc(256)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	b, err := s.Alloc(4)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if b != a+256 {
		t.Errorf("second Alloc at %s, want %s", b, a+256)
	}
	// Writing 260 bytes starting at a overflows into b.
	payload := make([]byte, 260)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := s.WriteBytes(a, payload); err != nil {
		t.Fatalf("overflowing write: %v", err)
	}
	w, err := s.ReadWord(b)
	if err != nil {
		t.Fatalf("ReadWord: %v", err)
	}
	want := word.FromBytes([4]byte{0, 1, 2, 3})
	if w != want {
		t.Errorf("overflowed word = %s, want %s", w, want)
	}
}

func TestUnmappedAccessSegfaults(t *testing.T) {
	s := New(PartitionLow)
	var segv *SegfaultError
	if _, err := s.LoadByte(0x00400000); !errors.As(err, &segv) {
		t.Errorf("LoadByte unmapped = %v, want SegfaultError", err)
	}
	if err := s.StoreByte(0x00400000, 1); !errors.As(err, &segv) {
		t.Errorf("StoreByte unmapped = %v, want SegfaultError", err)
	}
	if _, err := s.ReadBytes(0x00400000, 8); !errors.As(err, &segv) {
		t.Errorf("ReadBytes unmapped = %v, want SegfaultError", err)
	}
}

func TestNullIsNeverMapped(t *testing.T) {
	s := New(PartitionLow)
	if _, err := s.Alloc(16); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadByte(0); err == nil {
		t.Error("address 0 readable; NULL must fault")
	}
}

func TestCrossPartitionAccessSegfaults(t *testing.T) {
	// This is the Figure 1 detection semantics: variant 1's space
	// faults on any variant-0 absolute address.
	s := New(PartitionHigh)
	addr, err := s.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	lowAlias := Canonical(addr)
	var segv *SegfaultError
	if _, err := s.LoadByte(lowAlias); !errors.As(err, &segv) {
		t.Errorf("read of low alias %s = %v, want SegfaultError", lowAlias, err)
	}
}

func TestMapRejectsOutOfPartition(t *testing.T) {
	s := New(PartitionLow)
	var segv *SegfaultError
	if err := s.Map(0x80000000, 64); !errors.As(err, &segv) {
		t.Errorf("Map(high) = %v, want SegfaultError", err)
	}
	// A region straddling the partition boundary must also fail.
	if err := s.Map(0x7FFFFFF0, 64); !errors.As(err, &segv) {
		t.Errorf("Map(straddle) = %v, want SegfaultError", err)
	}
}

func TestMapRejectsOverlap(t *testing.T) {
	s := New(PartitionNone)
	if err := s.Map(0x1000, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x1800, 16); err == nil {
		t.Error("overlapping Map succeeded")
	}
	if err := s.Map(0x0FFF, 2); err == nil {
		t.Error("overlapping Map (front edge) succeeded")
	}
}

func TestMapRejectsZeroAndWrap(t *testing.T) {
	s := New(PartitionNone)
	if err := s.Map(0x1000, 0); err == nil {
		t.Error("zero-size Map succeeded")
	}
	if err := s.Map(0xFFFFFFF0, 32); err == nil {
		t.Error("wrapping Map succeeded")
	}
}

func TestReadSpansSegments(t *testing.T) {
	// Two adjacent Map calls form a contiguous readable range.
	s := New(PartitionNone)
	if err := s.Map(0x2000, 16); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x2010, 16); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBytes(0x2008, make([]byte, 16)); err != nil {
		t.Errorf("write spanning adjacent segments: %v", err)
	}
	// But a gap faults.
	if err := s.Map(0x3000, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBytes(0x2018, make([]byte, 0x1000)); err == nil {
		t.Error("write across unmapped gap succeeded")
	}
}

func TestWordRoundTrip(t *testing.T) {
	s := New(PartitionLow)
	addr, err := s.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteWord(addr, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	w, err := s.ReadWord(addr)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0xDEADBEEF {
		t.Errorf("ReadWord = %s, want 0xDEADBEEF", w)
	}
}

func TestAllocAligned(t *testing.T) {
	s := New(PartitionLow)
	if _, err := s.Alloc(10); err != nil {
		t.Fatal(err)
	}
	addr, err := s.AllocAligned(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if addr%64 != 0 {
		t.Errorf("AllocAligned returned %s, not 64-aligned", addr)
	}
	if _, err := s.AllocAligned(16, 3); err == nil {
		t.Error("AllocAligned accepted non-power-of-two alignment")
	}
	if _, err := s.Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded")
	}
}

func TestCanonical(t *testing.T) {
	if Canonical(0x80001234) != 0x00001234 {
		t.Error("Canonical should clear the partition bit")
	}
	if Canonical(0x00001234) != 0x00001234 {
		t.Error("Canonical must not change low addresses")
	}
}

func TestSegmentsSnapshot(t *testing.T) {
	s := New(PartitionLow)
	a, _ := s.Alloc(10)
	segs := s.Segments()
	if len(segs) != 1 || segs[0][0] != uint64(a) || segs[0][1] != 10 {
		t.Errorf("Segments = %v, want [[%d 10]]", segs, a)
	}
}

func TestQuickByteRoundTrip(t *testing.T) {
	s := New(PartitionHigh)
	base, err := s.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, b byte) bool {
		a := base + Addr(off%4096)
		if err := s.StoreByte(a, b); err != nil {
			return false
		}
		got, err := s.LoadByte(a)
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWriteReadBytes(t *testing.T) {
	s := New(PartitionLow)
	base, err := s.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		a := base + Addr(off%4096)
		if err := s.WriteBytes(a, data); err != nil {
			return false
		}
		got, err := s.ReadBytes(a, uint32(len(data)))
		if err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
