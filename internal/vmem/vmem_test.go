package vmem

import (
	"errors"
	"testing"
	"testing/quick"

	"nvariant/internal/word"
)

func TestPartitionContains(t *testing.T) {
	tests := []struct {
		p    Partition
		addr Addr
		want bool
	}{
		{PartitionLow, 0x00001000, true},
		{PartitionLow, 0x80001000, false},
		{PartitionHigh, 0x80001000, true},
		{PartitionHigh, 0x00001000, false},
		{PartitionNone, 0x00001000, true},
		{PartitionNone, 0x80001000, true},
	}
	for _, tt := range tests {
		if got := tt.p.Contains(tt.addr); got != tt.want {
			t.Errorf("%v.Contains(%s) = %v, want %v", tt.p, tt.addr, got, tt.want)
		}
	}
}

func TestPartitionString(t *testing.T) {
	for p, want := range map[Partition]string{
		PartitionNone: "none", PartitionLow: "low", PartitionHigh: "high", Partition(9): "unknown",
	} {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestAllocAndRoundTrip(t *testing.T) {
	s := New(PartitionLow)
	addr, err := s.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if !PartitionLow.Contains(addr) {
		t.Fatalf("Alloc returned %s outside low partition", addr)
	}
	if err := s.WriteBytes(addr, []byte("hello")); err != nil {
		t.Fatalf("WriteBytes: %v", err)
	}
	got, err := s.ReadBytes(addr, 5)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	if string(got) != "hello" {
		t.Errorf("ReadBytes = %q, want hello", got)
	}
}

func TestAllocAdjacency(t *testing.T) {
	// Consecutive allocations must be adjacent: the planted overflow
	// relies on the request buffer sitting directly below the uid.
	s := New(PartitionHigh)
	a, err := s.Alloc(256)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	b, err := s.Alloc(4)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if b != a+256 {
		t.Errorf("second Alloc at %s, want %s", b, a+256)
	}
	// Writing 260 bytes starting at a overflows into b.
	payload := make([]byte, 260)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := s.WriteBytes(a, payload); err != nil {
		t.Fatalf("overflowing write: %v", err)
	}
	w, err := s.ReadWord(b)
	if err != nil {
		t.Fatalf("ReadWord: %v", err)
	}
	want := word.FromBytes([4]byte{0, 1, 2, 3})
	if w != want {
		t.Errorf("overflowed word = %s, want %s", w, want)
	}
}

func TestUnmappedAccessSegfaults(t *testing.T) {
	s := New(PartitionLow)
	var segv *SegfaultError
	if _, err := s.LoadByte(0x00400000); !errors.As(err, &segv) {
		t.Errorf("LoadByte unmapped = %v, want SegfaultError", err)
	}
	if err := s.StoreByte(0x00400000, 1); !errors.As(err, &segv) {
		t.Errorf("StoreByte unmapped = %v, want SegfaultError", err)
	}
	if _, err := s.ReadBytes(0x00400000, 8); !errors.As(err, &segv) {
		t.Errorf("ReadBytes unmapped = %v, want SegfaultError", err)
	}
}

func TestNullIsNeverMapped(t *testing.T) {
	s := New(PartitionLow)
	if _, err := s.Alloc(16); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadByte(0); err == nil {
		t.Error("address 0 readable; NULL must fault")
	}
}

func TestCrossPartitionAccessSegfaults(t *testing.T) {
	// This is the Figure 1 detection semantics: variant 1's space
	// faults on any variant-0 absolute address.
	s := New(PartitionHigh)
	addr, err := s.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	lowAlias := Canonical(addr)
	var segv *SegfaultError
	if _, err := s.LoadByte(lowAlias); !errors.As(err, &segv) {
		t.Errorf("read of low alias %s = %v, want SegfaultError", lowAlias, err)
	}
}

func TestMapRejectsOutOfPartition(t *testing.T) {
	s := New(PartitionLow)
	var segv *SegfaultError
	if err := s.Map(0x80000000, 64); !errors.As(err, &segv) {
		t.Errorf("Map(high) = %v, want SegfaultError", err)
	}
	// A region straddling the partition boundary must also fail.
	if err := s.Map(0x7FFFFFF0, 64); !errors.As(err, &segv) {
		t.Errorf("Map(straddle) = %v, want SegfaultError", err)
	}
}

func TestMapRejectsOverlap(t *testing.T) {
	s := New(PartitionNone)
	if err := s.Map(0x1000, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x1800, 16); err == nil {
		t.Error("overlapping Map succeeded")
	}
	if err := s.Map(0x0FFF, 2); err == nil {
		t.Error("overlapping Map (front edge) succeeded")
	}
}

func TestMapRejectsZeroAndWrap(t *testing.T) {
	s := New(PartitionNone)
	if err := s.Map(0x1000, 0); err == nil {
		t.Error("zero-size Map succeeded")
	}
	if err := s.Map(0xFFFFFFF0, 32); err == nil {
		t.Error("wrapping Map succeeded")
	}
}

func TestReadSpansSegments(t *testing.T) {
	// Two adjacent Map calls form a contiguous readable range.
	s := New(PartitionNone)
	if err := s.Map(0x2000, 16); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x2010, 16); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBytes(0x2008, make([]byte, 16)); err != nil {
		t.Errorf("write spanning adjacent segments: %v", err)
	}
	// But a gap faults.
	if err := s.Map(0x3000, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBytes(0x2018, make([]byte, 0x1000)); err == nil {
		t.Error("write across unmapped gap succeeded")
	}
}

func TestWordRoundTrip(t *testing.T) {
	s := New(PartitionLow)
	addr, err := s.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteWord(addr, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	w, err := s.ReadWord(addr)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0xDEADBEEF {
		t.Errorf("ReadWord = %s, want 0xDEADBEEF", w)
	}
}

func TestAllocAligned(t *testing.T) {
	s := New(PartitionLow)
	if _, err := s.Alloc(10); err != nil {
		t.Fatal(err)
	}
	addr, err := s.AllocAligned(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if addr%64 != 0 {
		t.Errorf("AllocAligned returned %s, not 64-aligned", addr)
	}
	if _, err := s.AllocAligned(16, 3); err == nil {
		t.Error("AllocAligned accepted non-power-of-two alignment")
	}
	if _, err := s.Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded")
	}
}

func TestCanonical(t *testing.T) {
	if Canonical(0x80001234) != 0x00001234 {
		t.Error("Canonical should clear the partition bit")
	}
	if Canonical(0x00001234) != 0x00001234 {
		t.Error("Canonical must not change low addresses")
	}
}

func TestSegmentsSnapshot(t *testing.T) {
	s := New(PartitionLow)
	a, _ := s.Alloc(10)
	segs := s.Segments()
	if len(segs) != 1 || segs[0][0] != uint64(a) || segs[0][1] != 10 {
		t.Errorf("Segments = %v, want [[%d 10]]", segs, a)
	}
}

func TestQuickByteRoundTrip(t *testing.T) {
	s := New(PartitionHigh)
	base, err := s.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, b byte) bool {
		a := base + Addr(off%4096)
		if err := s.StoreByte(a, b); err != nil {
			return false
		}
		got, err := s.LoadByte(a)
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWriteReadBytes(t *testing.T) {
	s := New(PartitionLow)
	base, err := s.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		a := base + Addr(off%4096)
		if err := s.WriteBytes(a, data); err != nil {
			return false
		}
		got, err := s.ReadBytes(a, uint32(len(data)))
		if err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
