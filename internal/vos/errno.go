// Package vos simulates the operating-system substrate the paper's
// case study runs on: Unix credentials (UID/GID), a permission-checked
// in-memory filesystem, and the /etc/passwd and /etc/group databases
// that map user names to UIDs.
//
// The UID data type is the paper's diversification target (§3): the
// kernel-side semantics implemented here (privilege checks on setuid,
// file-permission checks against the effective UID, the special
// treatment of UID −1 in setreuid) are exactly the behaviours a UID
// corruption attack abuses and the N-variant monitor must preserve.
package vos

import "errors"

// Errno is a simulated Unix error number. Errnos cross the syscall
// boundary unchanged, so they are defined as sentinel errors that both
// kernel and programs can match on.
type Errno struct {
	// Name is the symbolic errno name (e.g. "EACCES").
	Name string
	// Msg is the human-readable description.
	Msg string
}

// Error implements the error interface.
func (e *Errno) Error() string { return e.Name + ": " + e.Msg }

// Simulated errno values.
var (
	ErrNoEnt       = &Errno{Name: "ENOENT", Msg: "no such file or directory"}
	ErrAccess      = &Errno{Name: "EACCES", Msg: "permission denied"}
	ErrPerm        = &Errno{Name: "EPERM", Msg: "operation not permitted"}
	ErrIsDir       = &Errno{Name: "EISDIR", Msg: "is a directory"}
	ErrNotDir      = &Errno{Name: "ENOTDIR", Msg: "not a directory"}
	ErrExist       = &Errno{Name: "EEXIST", Msg: "file exists"}
	ErrBadFD       = &Errno{Name: "EBADF", Msg: "bad file descriptor"}
	ErrInval       = &Errno{Name: "EINVAL", Msg: "invalid argument"}
	ErrNameTooLong = &Errno{Name: "ENAMETOOLONG", Msg: "file name too long"}
	ErrNotEmpty    = &Errno{Name: "ENOTEMPTY", Msg: "directory not empty"}
)

// AsErrno extracts an *Errno from an error chain, if present.
func AsErrno(err error) (*Errno, bool) {
	var e *Errno
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}
