package vos

import (
	"fmt"
	"strconv"
	"strings"
)

// User is one /etc/passwd entry.
type User struct {
	// Name is the login name.
	Name string
	// UID is the user ID.
	UID UID
	// GID is the primary group ID.
	GID GID
	// Gecos is the comment field.
	Gecos string
	// Home is the home directory.
	Home string
	// Shell is the login shell.
	Shell string
}

// Group is one /etc/group entry.
type Group struct {
	// Name is the group name.
	Name string
	// GID is the group ID.
	GID GID
	// Members lists supplementary member login names.
	Members []string
}

// FormatPasswd renders users in /etc/passwd format
// (name:x:uid:gid:gecos:home:shell).
func FormatPasswd(users []User) []byte {
	var b strings.Builder
	for _, u := range users {
		fmt.Fprintf(&b, "%s:x:%s:%s:%s:%s:%s\n",
			u.Name, u.UID.Decimal(), u.GID.Decimal(), u.Gecos, u.Home, u.Shell)
	}
	return []byte(b.String())
}

// ParsePasswd parses /etc/passwd format content. Blank lines and lines
// starting with '#' are skipped.
func ParsePasswd(data []byte) ([]User, error) {
	var users []User
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ":")
		if len(fields) != 7 {
			return nil, fmt.Errorf("passwd line %d: %d fields, want 7", i+1, len(fields))
		}
		uid, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("passwd line %d: uid %q: %w", i+1, fields[2], err)
		}
		gid, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("passwd line %d: gid %q: %w", i+1, fields[3], err)
		}
		users = append(users, User{
			Name:  fields[0],
			UID:   UID(uid),
			GID:   GID(gid),
			Gecos: fields[4],
			Home:  fields[5],
			Shell: fields[6],
		})
	}
	return users, nil
}

// FormatGroup renders groups in /etc/group format
// (name:x:gid:member1,member2).
func FormatGroup(groups []Group) []byte {
	var b strings.Builder
	for _, g := range groups {
		fmt.Fprintf(&b, "%s:x:%s:%s\n", g.Name, g.GID.Decimal(), strings.Join(g.Members, ","))
	}
	return []byte(b.String())
}

// ParseGroup parses /etc/group format content.
func ParseGroup(data []byte) ([]Group, error) {
	var groups []Group
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("group line %d: %d fields, want 4", i+1, len(fields))
		}
		gid, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("group line %d: gid %q: %w", i+1, fields[2], err)
		}
		var members []string
		if fields[3] != "" {
			members = strings.Split(fields[3], ",")
		}
		groups = append(groups, Group{Name: fields[0], GID: GID(gid), Members: members})
	}
	return groups, nil
}

// LookupUser finds a user by login name.
func LookupUser(users []User, name string) (User, bool) {
	for _, u := range users {
		if u.Name == name {
			return u, true
		}
	}
	return User{}, false
}

// LookupUID finds a user by UID.
func LookupUID(users []User, uid UID) (User, bool) {
	for _, u := range users {
		if u.UID == uid {
			return u, true
		}
	}
	return User{}, false
}

// LookupGroup finds a group by name.
func LookupGroup(groups []Group, name string) (Group, bool) {
	for _, g := range groups {
		if g.Name == name {
			return g, true
		}
	}
	return Group{}, false
}
