package vos

import (
	"fmt"
	"sort"
	"strings"
)

// Mode holds Unix permission bits plus a directory flag.
type Mode uint16

// Mode bits.
const (
	ModeDir Mode = 1 << 15

	permUserRead   Mode = 0400
	permUserWrite  Mode = 0200
	permGroupRead  Mode = 0040
	permGroupWrite Mode = 0020
	permOtherRead  Mode = 0004
	permOtherWrite Mode = 0002
)

// Perm returns the permission bits of the mode.
func (m Mode) Perm() Mode { return m & 0777 }

// IsDir reports whether the mode describes a directory.
func (m Mode) IsDir() bool { return m&ModeDir != 0 }

// String renders the mode as e.g. "d0755" or "-0644".
func (m Mode) String() string {
	kind := "-"
	if m.IsDir() {
		kind = "d"
	}
	return fmt.Sprintf("%s%04o", kind, uint16(m.Perm()))
}

// OpenFlag selects the access mode for Open.
type OpenFlag int

// Open flags (combinable with bitwise or, as in open(2)).
const (
	ReadOnly  OpenFlag = 0x1
	WriteOnly OpenFlag = 0x2
	ReadWrite OpenFlag = ReadOnly | WriteOnly
	Create    OpenFlag = 0x4
	Truncate  OpenFlag = 0x8
	Append    OpenFlag = 0x10
)

// FileInfo describes a file, as returned by Stat.
type FileInfo struct {
	// Name is the final path element.
	Name string
	// Size is the file length in bytes (0 for directories).
	Size int64
	// Mode holds type and permission bits.
	Mode Mode
	// Owner is the owning UID.
	Owner UID
	// Group is the owning GID.
	Group GID
}

type inode struct {
	name     string
	mode     Mode
	owner    UID
	group    GID
	data     []byte
	children map[string]*inode
}

// FS is an in-memory Unix-like filesystem with ownership and
// permission checks. It is not safe for concurrent use; the kernel
// serializes access (the monitor executes one syscall rendezvous at a
// time, exactly as the paper's wrapped kernel does).
type FS struct {
	root *inode
}

// NewFS returns a filesystem containing only a root directory owned by
// root with mode 0755.
func NewFS() *FS {
	return &FS{root: &inode{
		name:     "/",
		mode:     ModeDir | 0755,
		owner:    Root,
		children: make(map[string]*inode),
	}}
}

// splitPath normalizes an absolute path into elements.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("path %q: %w (must be absolute)", path, ErrInval)
	}
	if len(path) > 4096 {
		return nil, fmt.Errorf("path: %w", ErrNameTooLong)
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
			continue
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			}
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// canRead reports whether cred may read a file with the given
// ownership and mode. The superuser bypasses permission checks —
// which is precisely why forging EUID 0 is worth an attacker's while.
func canRead(cred Cred, owner UID, group GID, mode Mode) bool {
	switch {
	case cred.EUID == Root:
		return true
	case cred.EUID == owner:
		return mode&permUserRead != 0
	case cred.EGID == group:
		return mode&permGroupRead != 0
	default:
		return mode&permOtherRead != 0
	}
}

func canWrite(cred Cred, owner UID, group GID, mode Mode) bool {
	switch {
	case cred.EUID == Root:
		return true
	case cred.EUID == owner:
		return mode&permUserWrite != 0
	case cred.EGID == group:
		return mode&permGroupWrite != 0
	default:
		return mode&permOtherWrite != 0
	}
}

// lookup walks to the inode for path. Directory execute (search)
// permission is approximated by read permission to keep the model
// small.
func (fs *FS) lookup(path string, cred Cred) (*inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	node := fs.root
	for _, p := range parts {
		if !node.mode.IsDir() {
			return nil, fmt.Errorf("%s: %w", path, ErrNotDir)
		}
		if !canRead(cred, node.owner, node.group, node.mode) {
			return nil, fmt.Errorf("%s: %w", path, ErrAccess)
		}
		child, ok := node.children[p]
		if !ok {
			return nil, fmt.Errorf("%s: %w", path, ErrNoEnt)
		}
		node = child
	}
	return node, nil
}

// lookupParent returns the parent directory inode and final element.
func (fs *FS) lookupParent(path string, cred Cred) (*inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("%s: %w", path, ErrInval)
	}
	dirParts := parts[:len(parts)-1]
	node := fs.root
	for _, p := range dirParts {
		if !node.mode.IsDir() {
			return nil, "", fmt.Errorf("%s: %w", path, ErrNotDir)
		}
		if !canRead(cred, node.owner, node.group, node.mode) {
			return nil, "", fmt.Errorf("%s: %w", path, ErrAccess)
		}
		child, ok := node.children[p]
		if !ok {
			return nil, "", fmt.Errorf("%s: %w", path, ErrNoEnt)
		}
		node = child
	}
	if !node.mode.IsDir() {
		return nil, "", fmt.Errorf("%s: %w", path, ErrNotDir)
	}
	return node, parts[len(parts)-1], nil
}

// Mkdir creates a directory owned by the caller.
func (fs *FS) Mkdir(path string, perm Mode, cred Cred) error {
	parent, name, err := fs.lookupParent(path, cred)
	if err != nil {
		return err
	}
	if !canWrite(cred, parent.owner, parent.group, parent.mode) {
		return fmt.Errorf("mkdir %s: %w", path, ErrAccess)
	}
	if _, exists := parent.children[name]; exists {
		return fmt.Errorf("mkdir %s: %w", path, ErrExist)
	}
	parent.children[name] = &inode{
		name:     name,
		mode:     ModeDir | perm.Perm(),
		owner:    cred.EUID,
		group:    cred.EGID,
		children: make(map[string]*inode),
	}
	return nil
}

// MkdirAll creates path and any missing parents.
func (fs *FS) MkdirAll(path string, perm Mode, cred Cred) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if err := fs.Mkdir(cur, perm, cred); err != nil {
			if e, ok := AsErrno(err); ok && e == ErrExist {
				continue
			}
			return err
		}
	}
	return nil
}

// WriteFile creates (or truncates) a file with the given contents.
func (fs *FS) WriteFile(path string, data []byte, perm Mode, cred Cred) error {
	f, err := fs.Open(path, WriteOnly|Create|Truncate, perm, cred)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads the whole file at path.
func (fs *FS) ReadFile(path string, cred Cred) ([]byte, error) {
	f, err := fs.Open(path, ReadOnly, 0, cred)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	out := make([]byte, len(f.node.data))
	n, err := f.Read(out)
	if err != nil {
		return nil, err
	}
	return out[:n], nil
}

// Open opens path. perm is used only when Create makes a new file.
func (fs *FS) Open(path string, flags OpenFlag, perm Mode, cred Cred) (*OpenFile, error) {
	node, err := fs.lookup(path, cred)
	if err != nil {
		if e, ok := AsErrno(err); ok && e == ErrNoEnt && flags&Create != 0 {
			return fs.create(path, flags, perm, cred)
		}
		return nil, err
	}
	if node.mode.IsDir() {
		if flags&WriteOnly != 0 {
			return nil, fmt.Errorf("open %s: %w", path, ErrIsDir)
		}
		return nil, fmt.Errorf("open %s: %w", path, ErrIsDir)
	}
	if flags&ReadOnly != 0 && !canRead(cred, node.owner, node.group, node.mode) {
		return nil, fmt.Errorf("open %s: %w", path, ErrAccess)
	}
	if flags&WriteOnly != 0 && !canWrite(cred, node.owner, node.group, node.mode) {
		return nil, fmt.Errorf("open %s: %w", path, ErrAccess)
	}
	if flags&Truncate != 0 {
		node.data = nil
	}
	f := &OpenFile{node: node, path: path, flags: flags}
	if flags&Append != 0 {
		f.offset = int64(len(node.data))
	}
	return f, nil
}

func (fs *FS) create(path string, flags OpenFlag, perm Mode, cred Cred) (*OpenFile, error) {
	parent, name, err := fs.lookupParent(path, cred)
	if err != nil {
		return nil, err
	}
	if !canWrite(cred, parent.owner, parent.group, parent.mode) {
		return nil, fmt.Errorf("create %s: %w", path, ErrAccess)
	}
	node := &inode{name: name, mode: perm.Perm(), owner: cred.EUID, group: cred.EGID}
	parent.children[name] = node
	return &OpenFile{node: node, path: path, flags: flags}, nil
}

// Stat returns file metadata.
func (fs *FS) Stat(path string, cred Cred) (FileInfo, error) {
	node, err := fs.lookup(path, cred)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{
		Name:  node.name,
		Size:  int64(len(node.data)),
		Mode:  node.mode,
		Owner: node.owner,
		Group: node.group,
	}, nil
}

// Chown changes ownership; only root may do so.
func (fs *FS) Chown(path string, owner UID, group GID, cred Cred) error {
	node, err := fs.lookup(path, cred)
	if err != nil {
		return err
	}
	if cred.EUID != Root {
		return fmt.Errorf("chown %s: %w", path, ErrPerm)
	}
	node.owner, node.group = owner, group
	return nil
}

// Chmod changes permission bits; only root or the owner may do so.
func (fs *FS) Chmod(path string, perm Mode, cred Cred) error {
	node, err := fs.lookup(path, cred)
	if err != nil {
		return err
	}
	if cred.EUID != Root && cred.EUID != node.owner {
		return fmt.Errorf("chmod %s: %w", path, ErrPerm)
	}
	node.mode = (node.mode & ModeDir) | perm.Perm()
	return nil
}

// Remove deletes a file or empty directory.
func (fs *FS) Remove(path string, cred Cred) error {
	parent, name, err := fs.lookupParent(path, cred)
	if err != nil {
		return err
	}
	node, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("remove %s: %w", path, ErrNoEnt)
	}
	if !canWrite(cred, parent.owner, parent.group, parent.mode) {
		return fmt.Errorf("remove %s: %w", path, ErrAccess)
	}
	if node.mode.IsDir() && len(node.children) > 0 {
		return fmt.Errorf("remove %s: %w", path, ErrNotEmpty)
	}
	delete(parent.children, name)
	return nil
}

// ReadDir lists directory entries in name order.
func (fs *FS) ReadDir(path string, cred Cred) ([]FileInfo, error) {
	node, err := fs.lookup(path, cred)
	if err != nil {
		return nil, err
	}
	if !node.mode.IsDir() {
		return nil, fmt.Errorf("readdir %s: %w", path, ErrNotDir)
	}
	if !canRead(cred, node.owner, node.group, node.mode) {
		return nil, fmt.Errorf("readdir %s: %w", path, ErrAccess)
	}
	names := make([]string, 0, len(node.children))
	for name := range node.children {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]FileInfo, 0, len(names))
	for _, name := range names {
		c := node.children[name]
		infos = append(infos, FileInfo{
			Name:  c.name,
			Size:  int64(len(c.data)),
			Mode:  c.mode,
			Owner: c.owner,
			Group: c.group,
		})
	}
	return infos, nil
}

// Exists reports whether path resolves (using root credentials, for
// test and setup convenience).
func (fs *FS) Exists(path string) bool {
	_, err := fs.lookup(path, CredFor(Root, 0))
	return err == nil
}

// OpenFile is an open file description: an inode reference plus an
// offset. Multiple descriptors (across variants, for shared files) may
// reference the same OpenFile, sharing the offset — matching the
// paper's shared-file semantics where one variant performs the I/O.
type OpenFile struct {
	node   *inode
	path   string
	flags  OpenFlag
	offset int64
	closed bool
}

// Path returns the path the file was opened with.
func (f *OpenFile) Path() string { return f.path }

// Size returns the current file size.
func (f *OpenFile) Size() int64 { return int64(len(f.node.data)) }

// Read reads up to len(p) bytes at the current offset. At end of file
// it returns 0, nil (Unix read semantics rather than io.EOF, since
// programs observe the syscall return value).
func (f *OpenFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("read %s: %w", f.path, ErrBadFD)
	}
	if f.flags&ReadOnly == 0 {
		return 0, fmt.Errorf("read %s: %w", f.path, ErrBadFD)
	}
	if f.offset >= int64(len(f.node.data)) {
		return 0, nil
	}
	n := copy(p, f.node.data[f.offset:])
	f.offset += int64(n)
	return n, nil
}

// Write writes p at the current offset, extending the file as needed.
func (f *OpenFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("write %s: %w", f.path, ErrBadFD)
	}
	if f.flags&WriteOnly == 0 {
		return 0, fmt.Errorf("write %s: %w", f.path, ErrBadFD)
	}
	end := f.offset + int64(len(p))
	if end > int64(len(f.node.data)) {
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	copy(f.node.data[f.offset:], p)
	f.offset = end
	return len(p), nil
}

// Close marks the description closed.
func (f *OpenFile) Close() error {
	if f.closed {
		return fmt.Errorf("close %s: %w", f.path, ErrBadFD)
	}
	f.closed = true
	return nil
}
