package vos

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func root() Cred { return CredFor(Root, 0) }

func TestCredForInitialState(t *testing.T) {
	c := CredFor(1000, 100)
	if c.RUID != 1000 || c.EUID != 1000 || c.SUID != 1000 {
		t.Errorf("uids = %v", c)
	}
	if c.RGID != 100 || c.EGID != 100 || c.SGID != 100 {
		t.Errorf("gids = %v", c)
	}
}

func TestSetuidAsRootDropsAll(t *testing.T) {
	c := root()
	if err := c.Setuid(30); err != nil {
		t.Fatalf("Setuid: %v", err)
	}
	if c.RUID != 30 || c.EUID != 30 || c.SUID != 30 {
		t.Errorf("after setuid(30): %v", c)
	}
	// Having dropped all three UIDs, the process cannot regain root.
	if err := c.Setuid(0); err == nil {
		t.Error("setuid(0) after full drop succeeded; want EPERM")
	}
}

func TestSeteuidTemporaryDrop(t *testing.T) {
	// The Apache pattern: keep SUID 0, drop EUID, re-escalate later.
	c := root()
	if err := c.Setreuid(NoChange, 30); err != nil {
		t.Fatalf("Setreuid: %v", err)
	}
	if c.EUID != 30 || c.RUID != 0 {
		t.Errorf("after temporary drop: %v", c)
	}
	if err := c.Seteuid(0); err != nil {
		t.Errorf("re-escalation via ruid failed: %v", err)
	}
	if c.EUID != 0 {
		t.Errorf("after re-escalation: %v", c)
	}
}

func TestSetuidUnprivileged(t *testing.T) {
	c := CredFor(1000, 100)
	if err := c.Setuid(1001); err == nil {
		t.Error("unprivileged setuid to foreign uid succeeded")
	}
	if err := c.Setuid(1000); err != nil {
		t.Errorf("setuid to own ruid failed: %v", err)
	}
}

func TestSetreuidNoChange(t *testing.T) {
	c := CredFor(1000, 100)
	if err := c.Setreuid(NoChange, NoChange); err != nil {
		t.Fatalf("Setreuid(-1,-1): %v", err)
	}
	if c.RUID != 1000 || c.EUID != 1000 {
		t.Errorf("Setreuid(-1,-1) changed creds: %v", c)
	}
}

func TestSetreuidSwapsSaved(t *testing.T) {
	c := root()
	if err := c.Setreuid(30, 30); err != nil {
		t.Fatalf("Setreuid: %v", err)
	}
	if c.SUID != 30 {
		t.Errorf("SUID = %s, want 30", c.SUID.Decimal())
	}
}

func TestSetreuidUnprivilegedRejected(t *testing.T) {
	c := CredFor(1000, 100)
	if err := c.Setreuid(0, 0); err == nil {
		t.Error("unprivileged setreuid(0,0) succeeded")
	}
}

func TestSetgidSemantics(t *testing.T) {
	c := root()
	if err := c.Setgid(8); err != nil {
		t.Fatalf("Setgid: %v", err)
	}
	if c.RGID != 8 || c.EGID != 8 || c.SGID != 8 {
		t.Errorf("after setgid(8): %v", c)
	}
	u := CredFor(1000, 100)
	if err := u.Setgid(8); err == nil {
		t.Error("unprivileged setgid to foreign gid succeeded")
	}
	if err := u.Setegid(100); err != nil {
		t.Errorf("setegid to own gid failed: %v", err)
	}
}

func TestCredString(t *testing.T) {
	c := CredFor(30, 8)
	s := c.String()
	if !strings.Contains(s, "uid=30") || !strings.Contains(s, "egid=8") {
		t.Errorf("String() = %q", s)
	}
}

func TestPasswdRoundTrip(t *testing.T) {
	users := BaseUsers()
	parsed, err := ParsePasswd(FormatPasswd(users))
	if err != nil {
		t.Fatalf("ParsePasswd: %v", err)
	}
	if len(parsed) != len(users) {
		t.Fatalf("parsed %d users, want %d", len(parsed), len(users))
	}
	for i := range users {
		if parsed[i] != users[i] {
			t.Errorf("user %d = %+v, want %+v", i, parsed[i], users[i])
		}
	}
}

func TestParsePasswdSkipsCommentsAndBlank(t *testing.T) {
	data := []byte("# comment\n\nroot:x:0:0:root:/root:/bin/sh\n")
	users, err := ParsePasswd(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 1 || users[0].Name != "root" {
		t.Errorf("users = %+v", users)
	}
}

func TestParsePasswdErrors(t *testing.T) {
	cases := []string{
		"root:x:0:0:root:/root\n",         // 6 fields
		"root:x:zero:0:root:/root:/bin\n", // bad uid
		"root:x:0:zero:root:/root:/bin\n", // bad gid
	}
	for _, c := range cases {
		if _, err := ParsePasswd([]byte(c)); err == nil {
			t.Errorf("ParsePasswd(%q) succeeded, want error", c)
		}
	}
}

func TestGroupRoundTrip(t *testing.T) {
	groups := BaseGroups()
	parsed, err := ParseGroup(FormatGroup(groups))
	if err != nil {
		t.Fatalf("ParseGroup: %v", err)
	}
	if len(parsed) != len(groups) {
		t.Fatalf("parsed %d groups, want %d", len(parsed), len(groups))
	}
	for i := range groups {
		if parsed[i].Name != groups[i].Name || parsed[i].GID != groups[i].GID {
			t.Errorf("group %d = %+v, want %+v", i, parsed[i], groups[i])
		}
		if strings.Join(parsed[i].Members, ",") != strings.Join(groups[i].Members, ",") {
			t.Errorf("group %d members = %v, want %v", i, parsed[i].Members, groups[i].Members)
		}
	}
}

func TestParseGroupErrors(t *testing.T) {
	if _, err := ParseGroup([]byte("www:x:8\n")); err == nil {
		t.Error("short group line accepted")
	}
	if _, err := ParseGroup([]byte("www:x:eight:\n")); err == nil {
		t.Error("bad gid accepted")
	}
}

func TestLookups(t *testing.T) {
	users, groups := BaseUsers(), BaseGroups()
	if u, ok := LookupUser(users, "wwwrun"); !ok || u.UID != 30 {
		t.Errorf("LookupUser(wwwrun) = %+v, %v", u, ok)
	}
	if _, ok := LookupUser(users, "mallory"); ok {
		t.Error("LookupUser(mallory) found")
	}
	if u, ok := LookupUID(users, 1000); !ok || u.Name != "alice" {
		t.Errorf("LookupUID(1000) = %+v, %v", u, ok)
	}
	if _, ok := LookupUID(users, 9999); ok {
		t.Error("LookupUID(9999) found")
	}
	if g, ok := LookupGroup(groups, "www"); !ok || g.GID != 8 {
		t.Errorf("LookupGroup(www) = %+v, %v", g, ok)
	}
	if _, ok := LookupGroup(groups, "nogroup"); ok {
		t.Error("LookupGroup(nogroup) found")
	}
}

func TestFSWriteReadFile(t *testing.T) {
	fs := NewFS()
	if err := fs.MkdirAll("/a/b/c", 0755, root()); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/c/f.txt", []byte("data"), 0644, root()); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a/b/c/f.txt", root())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Errorf("ReadFile = %q", got)
	}
}

func TestFSPermissionDenied(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteFile("/secret", []byte("s"), 0600, root()); err != nil {
		t.Fatal(err)
	}
	user := CredFor(1000, 100)
	_, err := fs.ReadFile("/secret", user)
	if e, ok := AsErrno(err); !ok || e != ErrAccess {
		t.Errorf("ReadFile as user = %v, want EACCES", err)
	}
	// Root bypasses.
	if _, err := fs.ReadFile("/secret", root()); err != nil {
		t.Errorf("ReadFile as root: %v", err)
	}
}

func TestFSGroupPermissions(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteFile("/shared", []byte("s"), 0640, root()); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown("/shared", 0, 8, root()); err != nil {
		t.Fatal(err)
	}
	member := CredFor(30, 8)
	if _, err := fs.ReadFile("/shared", member); err != nil {
		t.Errorf("group member read: %v", err)
	}
	outsider := CredFor(1000, 100)
	if _, err := fs.ReadFile("/shared", outsider); err == nil {
		t.Error("outsider read succeeded")
	}
}

func TestFSDirectorySearchPermission(t *testing.T) {
	fs := NewFS()
	if err := fs.MkdirAll("/locked", 0700, root()); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/locked/f", []byte("x"), 0644, root()); err != nil {
		t.Fatal(err)
	}
	user := CredFor(1000, 100)
	if _, err := fs.ReadFile("/locked/f", user); err == nil {
		t.Error("read through 0700 root dir succeeded for user")
	}
}

func TestFSErrnos(t *testing.T) {
	fs := NewFS()
	if _, err := fs.ReadFile("/nope", root()); !errnoIs(err, ErrNoEnt) {
		t.Errorf("missing file: %v, want ENOENT", err)
	}
	if err := fs.Mkdir("/d", 0755, root()); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d", 0755, root()); !errnoIs(err, ErrExist) {
		t.Errorf("duplicate mkdir: %v, want EEXIST", err)
	}
	if _, err := fs.Open("/d", ReadOnly, 0, root()); !errnoIs(err, ErrIsDir) {
		t.Errorf("open dir: %v, want EISDIR", err)
	}
	if err := fs.WriteFile("/d/f", []byte("x"), 0644, root()); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/d/f/sub", root()); !errnoIs(err, ErrNotDir) {
		t.Errorf("file as dir: %v, want ENOTDIR", err)
	}
	if _, err := fs.ReadFile("relative", root()); !errnoIs(err, ErrInval) {
		t.Errorf("relative path: %v, want EINVAL", err)
	}
}

func errnoIs(err error, want *Errno) bool {
	e, ok := AsErrno(err)
	return ok && e == want
}

func TestFSRemove(t *testing.T) {
	fs := NewFS()
	if err := fs.MkdirAll("/d/sub", 0755, root()); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d", root()); !errnoIs(err, ErrNotEmpty) {
		t.Errorf("remove non-empty: %v, want ENOTEMPTY", err)
	}
	if err := fs.Remove("/d/sub", root()); err != nil {
		t.Errorf("remove empty dir: %v", err)
	}
	if err := fs.Remove("/d", root()); err != nil {
		t.Errorf("remove now-empty dir: %v", err)
	}
	if err := fs.Remove("/gone", root()); !errnoIs(err, ErrNoEnt) {
		t.Errorf("remove missing: %v, want ENOENT", err)
	}
}

func TestFSReadDirSorted(t *testing.T) {
	fs := NewFS()
	for _, f := range []string{"/z", "/a", "/m"} {
		if err := fs.WriteFile(f, []byte("x"), 0644, root()); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := fs.ReadDir("/", root())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, fi := range infos {
		names = append(names, fi.Name)
	}
	if strings.Join(names, ",") != "a,m,z" {
		t.Errorf("ReadDir order = %v", names)
	}
}

func TestFSAppendAndOffsets(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteFile("/log", []byte("one\n"), 0644, root()); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/log", WriteOnly|Append, 0, root())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("two\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/log", root())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "one\ntwo\n" {
		t.Errorf("log = %q", got)
	}
}

func TestOpenFileModes(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteFile("/f", []byte("abc"), 0644, root()); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/f", ReadOnly, 0, root())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write([]byte("x")); !errnoIs(err, ErrBadFD) {
		t.Errorf("write on read-only fd: %v, want EBADF", err)
	}
	w, err := fs.Open("/f", WriteOnly, 0, root())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Read(make([]byte, 1)); !errnoIs(err, ErrBadFD) {
		t.Errorf("read on write-only fd: %v, want EBADF", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); !errnoIs(err, ErrBadFD) {
		t.Errorf("double close: %v, want EBADF", err)
	}
	if _, err := r.Read(make([]byte, 1)); !errnoIs(err, ErrBadFD) {
		t.Errorf("read after close: %v, want EBADF", err)
	}
}

func TestOpenFileReadAtEOF(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteFile("/f", []byte("ab"), 0644, root()); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/f", ReadOnly, 0, root())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := f.Read(buf)
	if err != nil || n != 2 {
		t.Fatalf("Read = (%d, %v)", n, err)
	}
	n, err = f.Read(buf)
	if err != nil || n != 0 {
		t.Errorf("Read at EOF = (%d, %v), want (0, nil)", n, err)
	}
}

func TestChownChmodPermissions(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteFile("/f", []byte("x"), 0644, root()); err != nil {
		t.Fatal(err)
	}
	user := CredFor(1000, 100)
	if err := fs.Chown("/f", 1000, 100, user); !errnoIs(err, ErrPerm) {
		t.Errorf("user chown: %v, want EPERM", err)
	}
	if err := fs.Chown("/f", 1000, 100, root()); err != nil {
		t.Fatal(err)
	}
	// Now alice owns it; she may chmod, bob may not.
	if err := fs.Chmod("/f", 0600, user); err != nil {
		t.Errorf("owner chmod: %v", err)
	}
	bob := CredFor(1001, 100)
	if err := fs.Chmod("/f", 0777, bob); !errnoIs(err, ErrPerm) {
		t.Errorf("non-owner chmod: %v, want EPERM", err)
	}
}

func TestModeString(t *testing.T) {
	if got := (ModeDir | 0755).String(); got != "d0755" {
		t.Errorf("mode = %q, want d0755", got)
	}
	if got := Mode(0644).String(); got != "-0644" {
		t.Errorf("mode = %q, want -0644", got)
	}
}

func TestNewWorld(t *testing.T) {
	w, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	if !w.FS.Exists("/etc/passwd") || !w.FS.Exists("/var/www/index.html") {
		t.Error("world missing base files")
	}
	// The secret must be unreadable by the web server user.
	www := CredFor(30, 8)
	if _, err := w.FS.ReadFile("/var/www/private/secret.html", www); err == nil {
		t.Error("wwwrun can read the secret; world misconfigured")
	}
	if _, err := w.FS.ReadFile("/var/www/private/secret.html", root()); err != nil {
		t.Errorf("root cannot read the secret: %v", err)
	}
	if u, ok := w.User("wwwrun"); !ok || u.UID != 30 {
		t.Errorf("User(wwwrun) = %+v, %v", u, ok)
	}
	if g, ok := w.Group("www"); !ok || g.GID != 8 {
		t.Errorf("Group(www) = %+v, %v", g, ok)
	}
}

func TestQuickPasswdRoundTrip(t *testing.T) {
	f := func(uid, gid uint32, nameSeed uint8) bool {
		name := "u" + string(rune('a'+nameSeed%26))
		users := []User{{Name: name, UID: UID(uid), GID: GID(gid), Home: "/h", Shell: "/s"}}
		parsed, err := ParsePasswd(FormatPasswd(users))
		return err == nil && len(parsed) == 1 && parsed[0].UID == UID(uid) && parsed[0].GID == GID(gid)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFileContentRoundTrip(t *testing.T) {
	fs := NewFS()
	f := func(data []byte) bool {
		if err := fs.WriteFile("/q", data, 0644, root()); err != nil {
			return false
		}
		got, err := fs.ReadFile("/q", root())
		if err != nil || len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErrnoHelpers(t *testing.T) {
	if _, ok := AsErrno(errors.New("plain")); ok {
		t.Error("AsErrno matched a plain error")
	}
	if ErrAccess.Error() != "EACCES: permission denied" {
		t.Errorf("Error() = %q", ErrAccess.Error())
	}
}
