package vos

import (
	"fmt"

	"nvariant/internal/word"
)

// UID is a user identifier. As in the paper, "UID" is used for both
// user and group identification data; GID is a distinct Go type for
// clarity but shares the representation. UIDs are 32-bit words so the
// reexpression functions apply to them directly.
type UID = word.Word

// GID is a group identifier.
type GID = word.Word

// Root is the superuser UID: the value a UID-corruption attack tries
// to forge.
const Root UID = 0

// NoChange is the Unix "-1" UID/GID: setreuid/setregid interpret it as
// "leave unchanged". This kernel special case for negative UID values
// is the reason the paper's UID mask preserves the sign bit (§3.2).
const NoChange UID = 0xFFFFFFFF

// Cred is a process's credential set (the subset of Linux task
// credentials the case study exercises).
type Cred struct {
	// RUID, EUID and SUID are the real, effective and saved user IDs.
	RUID, EUID, SUID UID
	// RGID, EGID and SGID are the real, effective and saved group IDs.
	RGID, EGID, SGID GID
}

// CredFor returns the credential set of a process freshly launched by
// the given user.
func CredFor(uid UID, gid GID) Cred {
	return Cred{RUID: uid, EUID: uid, SUID: uid, RGID: gid, EGID: gid, SGID: gid}
}

// String renders the credential set compactly.
func (c Cred) String() string {
	return fmt.Sprintf("uid=%s euid=%s suid=%s gid=%s egid=%s sgid=%s",
		c.RUID.Decimal(), c.EUID.Decimal(), c.SUID.Decimal(),
		c.RGID.Decimal(), c.EGID.Decimal(), c.SGID.Decimal())
}

// Setuid applies Linux setuid(2) semantics: a privileged process
// (euid 0) sets all three UIDs; an unprivileged process may only set
// its effective UID to its real or saved UID.
func (c *Cred) Setuid(uid UID) error {
	if c.EUID == Root {
		c.RUID, c.EUID, c.SUID = uid, uid, uid
		return nil
	}
	if uid == c.RUID || uid == c.SUID {
		c.EUID = uid
		return nil
	}
	return fmt.Errorf("setuid %s: %w", uid.Decimal(), ErrPerm)
}

// Seteuid applies seteuid(2) semantics: the effective UID may be set
// to the real, effective, or saved UID; a privileged process may set
// it to anything.
func (c *Cred) Seteuid(uid UID) error {
	if c.EUID == Root || uid == c.RUID || uid == c.EUID || uid == c.SUID {
		c.EUID = uid
		return nil
	}
	return fmt.Errorf("seteuid %s: %w", uid.Decimal(), ErrPerm)
}

// Setreuid applies setreuid(2) semantics, including the NoChange (−1)
// special case. When the real UID is changed or the effective UID is
// set to a value other than the previous real UID, the saved UID is
// set to the new effective UID.
func (c *Cred) Setreuid(ruid, euid UID) error {
	newR, newE := c.RUID, c.EUID
	if ruid != NoChange {
		newR = ruid
	}
	if euid != NoChange {
		newE = euid
	}
	if c.EUID != Root {
		okR := ruid == NoChange || ruid == c.RUID || ruid == c.EUID
		okE := euid == NoChange || euid == c.RUID || euid == c.EUID || euid == c.SUID
		if !okR || !okE {
			return fmt.Errorf("setreuid %s,%s: %w", ruid.Decimal(), euid.Decimal(), ErrPerm)
		}
	}
	if ruid != NoChange || (euid != NoChange && newE != c.RUID) {
		c.SUID = newE
	}
	c.RUID, c.EUID = newR, newE
	return nil
}

// Setgid applies setgid(2) semantics (privilege judged by euid).
func (c *Cred) Setgid(gid GID) error {
	if c.EUID == Root {
		c.RGID, c.EGID, c.SGID = gid, gid, gid
		return nil
	}
	if gid == c.RGID || gid == c.SGID {
		c.EGID = gid
		return nil
	}
	return fmt.Errorf("setgid %s: %w", gid.Decimal(), ErrPerm)
}

// Setegid applies setegid(2) semantics.
func (c *Cred) Setegid(gid GID) error {
	if c.EUID == Root || gid == c.RGID || gid == c.EGID || gid == c.SGID {
		c.EGID = gid
		return nil
	}
	return fmt.Errorf("setegid %s: %w", gid.Decimal(), ErrPerm)
}
