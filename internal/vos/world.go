package vos

import "fmt"

// World is the machine state shared by (and trusted above) all
// variants: the real filesystem and the canonical user/group database.
// Variants never see World directly — only the monitor kernel touches
// it, applying inverse reexpression at the boundary.
type World struct {
	// FS is the real filesystem.
	FS *FS
	// Users is the canonical (untransformed) user database. The files
	// /etc/passwd-<i> served to variant i contain these entries with
	// UIDs transformed by R_i (§3.4).
	Users []User
	// Groups is the canonical group database.
	Groups []Group
}

// BaseUsers returns the user set used throughout the experiments: the
// standard server cast of root, the unprivileged web server user, and
// two ordinary accounts.
func BaseUsers() []User {
	return []User{
		{Name: "root", UID: 0, GID: 0, Gecos: "root", Home: "/root", Shell: "/bin/sh"},
		{Name: "wwwrun", UID: 30, GID: 8, Gecos: "WWW daemon", Home: "/var/lib/wwwrun", Shell: "/bin/false"},
		{Name: "alice", UID: 1000, GID: 100, Gecos: "Alice", Home: "/home/alice", Shell: "/bin/sh"},
		{Name: "bob", UID: 1001, GID: 100, Gecos: "Bob", Home: "/home/bob", Shell: "/bin/sh"},
	}
}

// BaseGroups returns the group set matching BaseUsers.
func BaseGroups() []Group {
	return []Group{
		{Name: "root", GID: 0},
		{Name: "www", GID: 8, Members: []string{"wwwrun"}},
		{Name: "users", GID: 100, Members: []string{"alice", "bob"}},
	}
}

// NewWorld builds a world with the base user database and a populated
// filesystem: /etc/passwd and /etc/group, a document root with public
// pages, and a root-only /private/secret.html — the asset the UID
// corruption attack tries to steal.
func NewWorld() (*World, error) {
	w := &World{FS: NewFS(), Users: BaseUsers(), Groups: BaseGroups()}
	root := CredFor(Root, 0)

	for _, dir := range []string{"/etc", "/var/log", "/var/www", "/var/www/private", "/tmp"} {
		if err := w.FS.MkdirAll(dir, 0755, root); err != nil {
			return nil, fmt.Errorf("setup %s: %w", dir, err)
		}
	}
	if err := w.FS.WriteFile("/etc/passwd", FormatPasswd(w.Users), 0644, root); err != nil {
		return nil, fmt.Errorf("setup passwd: %w", err)
	}
	if err := w.FS.WriteFile("/etc/group", FormatGroup(w.Groups), 0644, root); err != nil {
		return nil, fmt.Errorf("setup group: %w", err)
	}

	pages := map[string]string{
		"/var/www/index.html": "<html><body><h1>It works!</h1></body></html>\n",
		"/var/www/about.html": "<html><body>About this N-variant server.</body></html>\n",
		"/var/www/logo.gif":   "GIF89a....................................\n",
		"/var/www/styles.css": "body { font-family: sans-serif; }\n",
		"/var/www/page1.html": "<html><body>page 1 " + filler(512) + "</body></html>\n",
		"/var/www/page2.html": "<html><body>page 2 " + filler(2048) + "</body></html>\n",
		"/var/www/page3.html": "<html><body>page 3 " + filler(8192) + "</body></html>\n",
	}
	for path, content := range pages {
		if err := w.FS.WriteFile(path, []byte(content), 0644, root); err != nil {
			return nil, fmt.Errorf("setup %s: %w", path, err)
		}
	}

	// The crown jewels: readable only by root. A correct server, having
	// dropped privileges, gets EACCES here; a server whose UID data has
	// been corrupted to root serves it.
	secret := "<html><body>TOP-SECRET: the root-only document.</body></html>\n"
	if err := w.FS.WriteFile("/var/www/private/secret.html", []byte(secret), 0600, root); err != nil {
		return nil, fmt.Errorf("setup secret: %w", err)
	}
	if err := w.FS.Chmod("/var/www/private", 0700, root); err != nil {
		return nil, fmt.Errorf("chmod private: %w", err)
	}
	return w, nil
}

// filler produces deterministic page padding of n bytes.
func filler(n int) string {
	b := make([]byte, n)
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 "
	for i := range b {
		b[i] = alphabet[i%len(alphabet)]
	}
	return string(b)
}

// User looks up a user by name in the canonical database.
func (w *World) User(name string) (User, bool) { return LookupUser(w.Users, name) }

// Group looks up a group by name in the canonical database.
func (w *World) Group(name string) (Group, bool) { return LookupGroup(w.Groups, name) }
