package reexpress

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"nvariant/internal/word"
)

func TestIdentity(t *testing.T) {
	f := Identity{}
	for _, x := range []word.Word{0, 1, word.HighBit, word.Max} {
		got, err := f.Apply(x)
		if err != nil || got != x {
			t.Errorf("Apply(%s) = (%s, %v), want (%s, nil)", x, got, err, x)
		}
		inv, err := f.Invert(x)
		if err != nil || inv != x {
			t.Errorf("Invert(%s) = (%s, %v), want (%s, nil)", x, inv, err, x)
		}
	}
}

func TestUIDMaskRootRepresentation(t *testing.T) {
	// Under R₁, root (UID 0) is represented as 0x7FFFFFFF (§3.2).
	f := XORMask{Mask: UIDMask}
	got, err := f.Apply(0)
	if err != nil {
		t.Fatalf("Apply(0): %v", err)
	}
	if got != 0x7FFFFFFF {
		t.Errorf("R₁(0) = %s, want 0x7FFFFFFF", got)
	}
}

func TestXORMaskInvolution(t *testing.T) {
	f := XORMask{Mask: UIDMask}
	check := func(x uint32) bool {
		w := word.Word(x)
		y, err := f.Apply(w)
		if err != nil {
			return false
		}
		back, err := f.Invert(y)
		return err == nil && back == w
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestAddOffsetPartitionFaults(t *testing.T) {
	// Variant 1's inverse must fault on addresses in variant 0's
	// partition — this models the segmentation fault of Figure 1.
	r1 := AddOffset{Offset: word.HighBit, Partition: true}
	if _, err := r1.Invert(0x00001000); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("Invert(low address) error = %v, want ErrOutOfDomain", err)
	}
	got, err := r1.Invert(0x80001000)
	if err != nil {
		t.Fatalf("Invert(high address): %v", err)
	}
	if got != 0x00001000 {
		t.Errorf("Invert(0x80001000) = %s, want 0x00001000", got)
	}
}

func TestAddOffsetApplyOutOfDomain(t *testing.T) {
	r0 := AddOffset{Offset: 0, Partition: true}
	if _, err := r0.Apply(word.HighBit | 4); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("Apply(high address) error = %v, want ErrOutOfDomain", err)
	}
}

func TestTagBitRoundTrip(t *testing.T) {
	r0 := TagBit{Tag: false}
	r1 := TagBit{Tag: true}
	inst := word.Word(0x00ABCDEF)

	y0, err := r0.Apply(inst)
	if err != nil {
		t.Fatalf("r0.Apply: %v", err)
	}
	if y0 != inst {
		t.Errorf("r0.Apply = %s, want %s", y0, inst)
	}
	y1, err := r1.Apply(inst)
	if err != nil {
		t.Fatalf("r1.Apply: %v", err)
	}
	if y1 != inst|word.HighBit {
		t.Errorf("r1.Apply = %s, want %s", y1, inst|word.HighBit)
	}
}

func TestTagBitWrongTagFaults(t *testing.T) {
	r0 := TagBit{Tag: false}
	r1 := TagBit{Tag: true}
	// An instruction tagged for variant 1 must fault on variant 0 and
	// vice versa — injected code cannot carry both tags at once.
	if _, err := r0.Invert(word.HighBit | 5); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("r0.Invert(tagged-1) error = %v, want ErrOutOfDomain", err)
	}
	if _, err := r1.Invert(5); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("r1.Invert(tagged-0) error = %v, want ErrOutOfDomain", err)
	}
}

func TestTagBitApplyOutOfDomain(t *testing.T) {
	r1 := TagBit{Tag: true}
	if _, err := r1.Apply(word.HighBit); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("Apply(32-bit inst) error = %v, want ErrOutOfDomain", err)
	}
}

func TestTable1Properties(t *testing.T) {
	// Every row of Table 1 must satisfy the inverse property and the
	// disjointness property on the adversarial sample set.
	samples := BoundarySamples()
	for _, v := range Table1() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			if err := CheckPair(v.Pair, samples); err != nil {
				t.Errorf("property check: %v", err)
			}
		})
	}
}

func TestFullFlipVariationProperties(t *testing.T) {
	if err := CheckPair(UIDFullFlipVariation().Pair, BoundarySamples()); err != nil {
		t.Errorf("property check: %v", err)
	}
}

func TestQuickUIDDisjointness(t *testing.T) {
	// ∀x: R⁻¹₀(x) ≠ R⁻¹₁(x) for the UID variation. XOR with a nonzero
	// mask always changes the value, so this is exact, not sampled.
	p := UIDVariation().Pair
	f := func(x uint32) bool {
		w := word.Word(x)
		v0, err0 := p.R0.Invert(w)
		v1, err1 := p.R1.Invert(w)
		if err0 != nil || err1 != nil {
			return false // both inverses are total for the UID variation
		}
		return v0 != v1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddressDisjointness(t *testing.T) {
	// For partitioned address spaces, identical concrete addresses
	// never invert successfully in both variants.
	p := AddressPartitioning().Pair
	f := func(x uint32) bool {
		w := word.Word(x)
		_, err0 := p.R0.Invert(w)
		_, err1 := p.R1.Invert(w)
		return (err0 == nil) != (err1 == nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckDisjointDetectsViolation(t *testing.T) {
	// Identity vs identity trivially violates disjointness.
	err := CheckDisjoint(Identity{}, Identity{}, []word.Word{42})
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("CheckDisjoint(identity, identity) = %v, want DivergenceError", err)
	}
	if div.Value != 42 {
		t.Errorf("DivergenceError.Value = %s, want 42", div.Value)
	}
}

func TestCheckInverseDetectsViolation(t *testing.T) {
	f := brokenFunc{}
	err := CheckInverse(f, []word.Word{7})
	if err == nil {
		t.Fatal("CheckInverse(broken) = nil, want error")
	}
}

// brokenFunc deliberately violates the inverse property.
type brokenFunc struct{}

func (brokenFunc) Name() string                          { return "broken" }
func (brokenFunc) Apply(x word.Word) (word.Word, error)  { return x + 1, nil }
func (brokenFunc) Invert(y word.Word) (word.Word, error) { return y + 1, nil }
func (brokenFunc) Domain(word.Word) bool                 { return true }

func TestHighBitOverwriteResidualWeakness(t *testing.T) {
	// §3.2: the UID mask preserves the high bit, so an attack that
	// flips ONLY the high bit in both variants yields values that
	// still invert to the same UID — the acknowledged residual gap.
	p := UIDVariation().Pair
	uid := word.Word(1000)
	rep0, err := p.R0.Apply(uid)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := p.R1.Apply(uid)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker flips the high bit in each variant's memory (a partial
	// overwrite that does not need to inject a full identical word).
	inv0, err := p.R0.Invert(rep0 | word.HighBit)
	if err != nil {
		t.Fatal(err)
	}
	inv1, err := p.R1.Invert(rep1 | word.HighBit)
	if err != nil {
		t.Fatal(err)
	}
	if inv0 != inv1 {
		t.Fatalf("high-bit overwrite diverged (%s vs %s); expected the residual gap", inv0, inv1)
	}

	// The full-flip mask closes the gap: applying the SAME high-bit-set
	// operation to both variants' representations now yields different
	// post-inverse UIDs, so the monitor detects the corruption.
	pf := UIDFullFlipVariation().Pair
	rep0f, _ := pf.R0.Apply(uid)
	rep1f, _ := pf.R1.Apply(uid)
	inv0f, _ := pf.R0.Invert(rep0f | word.HighBit)
	inv1f, _ := pf.R1.Invert(rep1f | word.HighBit)
	if inv0f == inv1f {
		t.Error("full-flip mask should break equality under high-bit-set overwrite")
	}
}

func TestVariationNames(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 has %d rows, want 4", len(rows))
	}
	wantNames := []string{
		"Address Space Partitioning",
		"Extended Address Space Partitioning",
		"Instruction Set Tagging",
		"UID Variation",
	}
	for i, v := range rows {
		if v.Name != wantNames[i] {
			t.Errorf("row %d name = %q, want %q", i, v.Name, wantNames[i])
		}
	}
}

func TestTargetTypeString(t *testing.T) {
	tests := []struct {
		tt   TargetType
		want string
	}{
		{TargetAddress, "Address"},
		{TargetInstruction, "Instruction"},
		{TargetUID, "UID"},
		{TargetType(99), "Unknown"},
	}
	for _, tc := range tests {
		if got := tc.tt.String(); got != tc.want {
			t.Errorf("TargetType(%d).String() = %q, want %q", tc.tt, got, tc.want)
		}
	}
}

func TestFuncNames(t *testing.T) {
	for _, tc := range []struct {
		f    Func
		want string
	}{
		{Identity{}, "identity"},
		{XORMask{Mask: UIDMask}, "xor(0x7FFFFFFF)"},
		{AddOffset{Offset: word.HighBit, Partition: true}, "addoffset(0x80000000,partitioned)"},
		{AddOffset{Offset: 16}, "addoffset(0x00000010)"},
		{TagBit{Tag: true}, "tag(1||inst)"},
		{TagBit{Tag: false}, "tag(0||inst)"},
	} {
		if got := tc.f.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestDivergenceErrorMessage(t *testing.T) {
	err := &DivergenceError{Value: 3, Detail: "boom"}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "0x00000003") {
		t.Errorf("unexpected message %q", err.Error())
	}
}

func TestBoundarySamplesCoverage(t *testing.T) {
	samples := BoundarySamples()
	if len(samples) < 1<<16 {
		t.Fatalf("BoundarySamples too small: %d", len(samples))
	}
	seen := make(map[word.Word]bool, len(samples))
	for _, s := range samples {
		seen[s] = true
	}
	for _, must := range []word.Word{0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF} {
		if !seen[must] {
			t.Errorf("BoundarySamples missing %s", must)
		}
	}
}
