// Package reexpress implements the data reexpression framework of
// Section 2 of the paper.
//
// A reexpression function R_i maps trusted data of a target type into
// the representation used by variant i; the inverse function R⁻¹_i is
// applied immediately before the target interpreter. Two properties
// drive the security argument:
//
//   - inverse property (§2.2):  ∀x in the domain, R⁻¹_i(R_i(x)) ≡ x
//   - disjointness property (§2.3):  ∀x, R⁻¹₀(x) ≠ R⁻¹₁(x)
//
// Disjointness is what turns redundancy into detection: the attacker
// is constrained to send the *same* concrete value to every variant,
// and disjoint inverses guarantee those identical values cannot decode
// to the same meaning in two variants. Inversion may also *fail* — a
// concrete value can simply be invalid for a variant (an address
// outside the variant's partition, an instruction with the wrong tag);
// a failed inversion is itself a detectable alarm state, so the
// disjointness property is satisfied if identical inputs never invert
// successfully to identical values in two variants.
package reexpress

import (
	"errors"
	"fmt"

	"nvariant/internal/word"
)

// ErrOutOfDomain is returned by Apply when a value is outside the
// function's domain, and by Invert when a concrete value is not a
// valid reexpressed value for this variant. An Invert failure is an
// alarm state: under the N-variant monitor it is treated exactly like
// a segmentation fault in the address-partitioning variation.
var ErrOutOfDomain = errors.New("reexpress: value out of domain")

// Func is a data reexpression function R together with its inverse.
//
// Implementations must guarantee the inverse property over Domain:
// if Domain(x) then Invert(Apply(x)) == x with no error.
type Func interface {
	// Name identifies the function in tables and alarm reports.
	Name() string
	// Apply computes R(x), the representation of trusted value x in
	// this variant. It fails with ErrOutOfDomain if x is not in the
	// function's domain.
	Apply(x word.Word) (word.Word, error)
	// Invert computes R⁻¹(y). It fails with ErrOutOfDomain if y is not
	// a valid reexpressed value for this variant; such a failure is an
	// alarm state, not a silent fallback.
	Invert(y word.Word) (word.Word, error)
	// Domain reports whether x is a legal input to Apply.
	Domain(x word.Word) bool
}

// Pair is the two-variant configuration used throughout the paper: one
// reexpression function per variant.
type Pair struct {
	// R0 is variant 0's reexpression function (identity in every
	// variation the paper builds).
	R0 Func
	// R1 is variant 1's reexpression function.
	R1 Func
}

// Funcs returns the pair as a slice indexed by variant number.
func (p Pair) Funcs() []Func {
	return []Func{p.R0, p.R1}
}

// DivergenceError reports a detected violation of the disjointness
// property: the same concrete value decoded to the same meaning (or
// the monitor observed differing canonical values where equal ones
// were required).
type DivergenceError struct {
	// Value is the concrete value that was observed.
	Value word.Word
	// Detail describes the check that failed.
	Detail string
}

// Error implements the error interface.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("reexpress: divergence on %s: %s", e.Value, e.Detail)
}
