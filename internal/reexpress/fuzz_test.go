package reexpress

import (
	"math/rand"
	"testing"

	"nvariant/internal/word"
)

// FuzzGenerate checks the Generate contract for arbitrary seeds: the
// drawn UID functions are identity plus XOR masks that are pairwise
// byte-distinct in every position (so any single-byte overwrite
// diverges between every pair of variants), and the generated spec
// holds the §2.2 inverse and §2.3 N-wide disjointness properties over
// boundary values plus a seed-derived random sample. Seed corpus under
// testdata/fuzz; CI runs this briefly in the chaos-smoke job.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), byte(0))
	f.Add(int64(42), byte(3))
	f.Add(int64(-7), byte(1))
	f.Add(int64(1<<62), byte(2))
	f.Fuzz(func(t *testing.T, seed int64, nRaw byte) {
		n := 2 + int(nRaw%4) // group sizes 2..5
		spec := Generate(seed, n, LayerUID, LayerAddressPartition)
		funcs := spec.UIDFuncs()
		if len(funcs) != n {
			t.Fatalf("got %d UID funcs for n=%d", len(funcs), n)
		}

		masks := make([]word.Word, n)
		for i, fn := range funcs {
			switch m := fn.(type) {
			case Identity:
				if i != 0 {
					t.Fatalf("variant %d drew identity", i)
				}
			case XORMask:
				if i == 0 {
					t.Fatal("variant 0 is not identity")
				}
				masks[i] = m.Mask
				if m.Mask&word.HighBit != 0 {
					t.Fatalf("mask %s has the sign bit set", m.Mask)
				}
			default:
				t.Fatalf("unexpected func type %T", fn)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !byteDistinct(masks[i], []word.Word{masks[j]}) {
					t.Fatalf("masks %s and %s share a byte position", masks[i], masks[j])
				}
			}
		}

		samples := []word.Word{0, 1, 0x7FFFFFFF, 0x80000000, 0x80000001, 0xFFFFFFFF}
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < 64; k++ {
			samples = append(samples, word.Word(rng.Uint32()))
		}
		if err := CheckSpec(spec, samples); err != nil {
			t.Fatalf("generated spec violates properties: %v", err)
		}
	})
}
