package reexpress

import "nvariant/internal/word"

// TargetType names the data type a variation diversifies (Table 1,
// "Target Type" column).
type TargetType int

// Target types from Table 1.
const (
	TargetAddress TargetType = iota + 1
	TargetInstruction
	TargetUID
)

// String renders the target type as in Table 1.
func (t TargetType) String() string {
	switch t {
	case TargetAddress:
		return "Address"
	case TargetInstruction:
		return "Instruction"
	case TargetUID:
		return "UID"
	default:
		return "Unknown"
	}
}

// Variation is one row of Table 1: a named diversity technique with
// its per-variant reexpression functions.
type Variation struct {
	// Name is the variation's name as given in Table 1.
	Name string
	// Source cites where the variation was introduced.
	Source string
	// Target is the diversified data type.
	Target TargetType
	// Pair holds R₀ and R₁.
	Pair Pair
}

// Catalogue option values for ExtendedPartitioning.
const (
	// DefaultExtendedOffset is the extra offset used by the extended
	// address-space partitioning row of Table 1 in this reproduction.
	// Bruschi et al. leave the offset as a deployment parameter; any
	// nonzero value below 2³¹ preserves the detection argument.
	DefaultExtendedOffset = word.Word(0x00010000)
)

// AddressPartitioning returns the two-variant address-space
// partitioning variation of Table 1 row 1: R₀(a) = a,
// R₁(a) = a + 0x80000000.
func AddressPartitioning() Variation {
	return Variation{
		Name:   "Address Space Partitioning",
		Source: "[16]",
		Target: TargetAddress,
		Pair: Pair{
			R0: AddOffset{Offset: 0, Partition: true},
			R1: AddOffset{Offset: word.HighBit, Partition: true},
		},
	}
}

// ExtendedPartitioning returns Table 1 row 2 (Bruschi et al. [9]):
// R₁(a) = a + 0x80000000 + offset, which additionally misaligns the
// partitions so byte-level partial overwrites of addresses also
// diverge (probabilistically).
func ExtendedPartitioning(offset word.Word) Variation {
	return Variation{
		Name:   "Extended Address Space Partitioning",
		Source: "[9]",
		Target: TargetAddress,
		Pair: Pair{
			R0: AddOffset{Offset: 0, Partition: true},
			R1: AddOffset{Offset: word.HighBit + offset, Partition: true},
		},
	}
}

// InstructionTagging returns Table 1 row 3: R₀(inst) = 0 || inst,
// R₁(inst) = 1 || inst.
func InstructionTagging() Variation {
	return Variation{
		Name:   "Instruction Set Tagging",
		Source: "[16]",
		Target: TargetInstruction,
		Pair: Pair{
			R0: TagBit{Tag: false},
			R1: TagBit{Tag: true},
		},
	}
}

// UIDVariation returns Table 1 row 4, the paper's contribution:
// R₀(u) = u, R₁(u) = u ⊕ 0x7FFFFFFF. Under R₁, root (UID 0) is
// represented as 0x7FFFFFFF.
func UIDVariation() Variation {
	return Variation{
		Name:   "UID Variation",
		Source: "this paper",
		Target: TargetUID,
		Pair: Pair{
			R0: Identity{},
			R1: XORMask{Mask: UIDMask},
		},
	}
}

// UIDFullFlipVariation is the "ideal" UID variation the paper could
// not deploy (§3.2): R₁(u) = u ⊕ 0xFFFFFFFF flips every bit including
// the sign bit, closing the high-bit-overwrite gap at the cost of
// breaking the kernel's negative-UID special cases. It is included for
// the overwrite-campaign ablation.
func UIDFullFlipVariation() Variation {
	return Variation{
		Name:   "UID Variation (full flip)",
		Source: "§3.2 ablation",
		Target: TargetUID,
		Pair: Pair{
			R0: Identity{},
			R1: XORMask{Mask: FullFlipMask},
		},
	}
}

// Table1 returns the four variations of Table 1 in paper order.
func Table1() []Variation {
	return []Variation{
		AddressPartitioning(),
		ExtendedPartitioning(DefaultExtendedOffset),
		InstructionTagging(),
		UIDVariation(),
	}
}
