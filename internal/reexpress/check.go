package reexpress

import (
	"fmt"

	"nvariant/internal/word"
)

// CheckInverse verifies the inverse property (§2.2 property 3) for f
// over the given sample values: for every x in f's domain,
// R⁻¹(R(x)) must equal x. Samples outside the domain are skipped.
func CheckInverse(f Func, samples []word.Word) error {
	for _, x := range samples {
		if !f.Domain(x) {
			continue
		}
		y, err := f.Apply(x)
		if err != nil {
			return fmt.Errorf("inverse property: %s.Apply(%s): %w", f.Name(), x, err)
		}
		back, err := f.Invert(y)
		if err != nil {
			return fmt.Errorf("inverse property: %s.Invert(%s): %w", f.Name(), y, err)
		}
		if back != x {
			return &DivergenceError{
				Value:  x,
				Detail: fmt.Sprintf("%s: R⁻¹(R(%s)) = %s ≠ %s", f.Name(), x, back, x),
			}
		}
	}
	return nil
}

// CheckDisjoint verifies the disjointness property (§2.3) for a pair
// of inverse functions over the given concrete values: for every y,
// R⁻¹₀(y) and R⁻¹₁(y) must not both succeed with equal results. (A
// failed inversion is an alarm state and therefore counts as
// divergence, i.e. detection.)
func CheckDisjoint(f0, f1 Func, samples []word.Word) error {
	for _, y := range samples {
		v0, err0 := f0.Invert(y)
		v1, err1 := f1.Invert(y)
		if err0 == nil && err1 == nil && v0 == v1 {
			return &DivergenceError{
				Value: y,
				Detail: fmt.Sprintf("disjointness violated: %s and %s both invert to %s",
					f0.Name(), f1.Name(), v0),
			}
		}
	}
	return nil
}

// CheckDisjointN verifies the N-wide pairwise disjointness property
// (§2.3 generalized to N variants): for every concrete value y and
// every pair i ≠ j, R⁻¹ᵢ(y) and R⁻¹ⱼ(y) must not both succeed with
// equal results. A failed inversion is an alarm state and therefore
// counts as divergence, i.e. detection.
func CheckDisjointN(funcs []Func, samples []word.Word) error {
	n := len(funcs)
	vals := make([]word.Word, n)
	ok := make([]bool, n)
	for _, y := range samples {
		for i, f := range funcs {
			v, err := f.Invert(y)
			vals[i], ok[i] = v, err == nil
		}
		for i := 0; i < n; i++ {
			if !ok[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if ok[j] && vals[i] == vals[j] {
					return &DivergenceError{
						Value: y,
						Detail: fmt.Sprintf("disjointness violated: %s (variant %d) and %s (variant %d) both invert to %s",
							funcs[i].Name(), i, funcs[j].Name(), j, vals[i]),
					}
				}
			}
		}
	}
	return nil
}

// CheckSpec runs the construction-time property checks of a spec: for
// every diversified layer kind in the stack, the effective (composed)
// per-variant functions must satisfy the inverse property and N-wide
// pairwise disjointness over the given samples.
func CheckSpec(s *Spec, samples []word.Word) error {
	for _, kind := range []LayerKind{LayerUID, LayerAddressPartition, LayerInstructionTags} {
		funcs := s.FuncsFor(kind)
		if funcs == nil {
			continue
		}
		for i, f := range funcs {
			if err := CheckInverse(f, samples); err != nil {
				return fmt.Errorf("%s layer, variant %d: %w", kind, i, err)
			}
		}
		if err := CheckDisjointN(funcs, samples); err != nil {
			return fmt.Errorf("%s layer: %w", kind, err)
		}
	}
	return nil
}

// CheckPair runs both property checks on a variant pair.
func CheckPair(p Pair, samples []word.Word) error {
	if err := CheckInverse(p.R0, samples); err != nil {
		return err
	}
	if err := CheckInverse(p.R1, samples); err != nil {
		return err
	}
	return CheckDisjoint(p.R0, p.R1, samples)
}

// BoundarySamples returns a deterministic set of adversarial sample
// values: all 16-bit values, plus every single-bit word, plus byte
// boundary patterns in every byte position. The set is designed so a
// property that fails anywhere on the word lattice fails here.
func BoundarySamples() []word.Word {
	samples := make([]word.Word, 0, 1<<16+word.Bits+4*6+8)
	for x := 0; x < 1<<16; x++ {
		samples = append(samples, word.Word(x))
	}
	for i := 0; i < word.Bits; i++ {
		samples = append(samples, word.Word(1)<<uint(i))
	}
	patterns := []byte{0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF}
	for pos := 0; pos < word.Size; pos++ {
		for _, p := range patterns {
			samples = append(samples, word.Word(p)<<(8*uint(pos)))
		}
	}
	samples = append(samples,
		0x7FFFFFFF, 0x80000000, 0x80000001, 0xFFFFFFFE, 0xFFFFFFFF,
		0x12345678, 0xDEADBEEF, 0xCAFEBABE,
	)
	return samples
}
