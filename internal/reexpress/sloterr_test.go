package reexpress

import (
	"errors"
	"strings"
	"testing"

	"nvariant/internal/word"
)

// The PR 4 allocation fix replaced Slot.Invert's descriptive error
// with a shared sentinel, losing the offending slot index. The static
// error table restores the diagnostic; these are the regression tests
// for both halves of the contract.

func TestSlotInvertFaultNamesOffendingSlot(t *testing.T) {
	f := Slot{Index: 1, Bits: 2}
	_, err := f.Invert(word.Word(3) << 30) // a value claiming slot 3
	if err == nil {
		t.Fatal("out-of-slot value inverted cleanly")
	}
	if !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("errors.Is(err, ErrOutOfDomain) = false for %v", err)
	}
	if !strings.Contains(err.Error(), "slot 3") {
		t.Errorf("error does not name the offending slot: %v", err)
	}

	// A different observed slot names itself too, through the same
	// static table.
	_, err = f.Invert(0) // slot 0
	if err == nil || !strings.Contains(err.Error(), "slot 0") {
		t.Errorf("slot-0 fault = %v, want it to name slot 0", err)
	}

	// Indices beyond the table still match ErrOutOfDomain via the
	// fallback sentinel.
	wide := Slot{Index: 0, Bits: 30}
	_, err = wide.Invert(word.Max)
	if !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("wide-slot fault does not wrap ErrOutOfDomain: %v", err)
	}
}

func TestSlotInvertFaultPathAllocationFree(t *testing.T) {
	// The whole point of the PR 4 change: spec validation drives this
	// path tens of thousands of times per fleet replacement.
	f := Slot{Index: 1, Bits: 2}
	bad := word.Word(3) << 30
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := f.Invert(bad); err == nil {
			t.Fatal("expected fault")
		}
	}); allocs != 0 {
		t.Errorf("Slot.Invert fault path allocates %.1f/op, want 0", allocs)
	}
}
