package reexpress

import (
	"fmt"

	"nvariant/internal/word"
)

// Identity is the identity reexpression function, used as R₀ in every
// variation in the paper (Table 1): variant 0 always runs on the
// original data representation.
type Identity struct{}

var _ Func = Identity{}

// Name implements Func.
func (Identity) Name() string { return "identity" }

// Apply implements Func: R₀(x) = x.
func (Identity) Apply(x word.Word) (word.Word, error) { return x, nil }

// Invert implements Func: R⁻¹₀(y) = y.
func (Identity) Invert(y word.Word) (word.Word, error) { return y, nil }

// Domain implements Func; the identity function is total.
func (Identity) Domain(word.Word) bool { return true }

// XORMask reexpresses a value by XORing it with a fixed mask. The UID
// variation (§3.2) uses mask 0x7FFFFFFF, chosen over 0xFFFFFFFF
// because the kernel treats negative UIDs as special cases, so the
// sign bit must survive. XOR is an involution, so Apply and Invert
// coincide and the inverse property is immediate.
type XORMask struct {
	// Mask is XORed into the value by both Apply and Invert.
	Mask word.Word
}

var _ Func = XORMask{}

// Name implements Func.
func (f XORMask) Name() string { return fmt.Sprintf("xor(%s)", f.Mask) }

// Apply implements Func: R(x) = x ⊕ Mask.
func (f XORMask) Apply(x word.Word) (word.Word, error) { return x ^ f.Mask, nil }

// Invert implements Func: R⁻¹(y) = y ⊕ Mask.
func (f XORMask) Invert(y word.Word) (word.Word, error) { return y ^ f.Mask, nil }

// Domain implements Func; XOR masking is total.
func (f XORMask) Domain(word.Word) bool { return true }

// UIDMask is the mask used by the paper's UID variation: all bits
// except the high (sign) bit are flipped, so the representation
// survives the kernel's special-casing of negative UID values. The
// cost of preserving the sign bit is the paper's acknowledged residual
// weakness: a *high-bit-only* overwrite changes both variants' UIDs
// identically and is not detected (§3.2).
const UIDMask = word.Word(0x7FFFFFFF)

// FullFlipMask flips every bit (the "ideal" mask the paper could not
// deploy, §3.2). It closes the high-bit gap; the overwrite-campaign
// experiment contrasts it with UIDMask.
const FullFlipMask = word.Max

// AddOffset reexpresses an address by adding a fixed offset, wrapping
// modulo 2³². Address-space partitioning (Table 1, [16]) uses offset
// 0x80000000: variant 0's addresses live in [0, 2³¹), variant 1's in
// [2³¹, 2³²). Partition enforces domain/invert validity: a concrete
// address whose partition bit does not match the variant is *invalid*
// and inverting it faults, modelling the segmentation fault that the
// monitor observes in the real system.
type AddOffset struct {
	// Offset is added by Apply and subtracted by Invert.
	Offset word.Word
	// Partition, when true, restricts the domain to the low half of
	// the address space and makes Invert fault on addresses outside
	// [Offset, Offset+2³¹).
	Partition bool
}

var _ Func = AddOffset{}

// Name implements Func.
func (f AddOffset) Name() string {
	if f.Partition {
		return fmt.Sprintf("addoffset(%s,partitioned)", f.Offset)
	}
	return fmt.Sprintf("addoffset(%s)", f.Offset)
}

// Apply implements Func: R(a) = a + Offset (mod 2³²).
func (f AddOffset) Apply(x word.Word) (word.Word, error) {
	if !f.Domain(x) {
		return 0, fmt.Errorf("apply %s to %s: %w", f.Name(), x, ErrOutOfDomain)
	}
	return x + f.Offset, nil
}

// Invert implements Func: R⁻¹(a) = a − Offset, faulting when the
// address is outside this variant's partition.
func (f AddOffset) Invert(y word.Word) (word.Word, error) {
	if f.Partition {
		inv := y - f.Offset
		if inv&word.HighBit != 0 {
			return 0, fmt.Errorf("invert %s on %s: segmentation fault: %w", f.Name(), y, ErrOutOfDomain)
		}
		return inv, nil
	}
	return y - f.Offset, nil
}

// Domain implements Func: with partitioning, canonical addresses
// occupy the low half of the address space.
func (f AddOffset) Domain(x word.Word) bool {
	if f.Partition {
		return x&word.HighBit == 0
	}
	return true
}

// TagBit reexpresses an instruction word by placing a one-bit tag in
// the high bit (instruction-set tagging, Table 1, [16]): R₀ tags with
// 0, R₁ tags with 1, and the execution monitor checks and strips the
// tag before execution. Canonical instruction words must therefore fit
// in 31 bits. An instruction with the wrong tag is invalid — Invert
// faults, which is exactly how injected untagged code is detected.
type TagBit struct {
	// Tag is the bit value (false = 0, true = 1) this variant expects
	// in the high bit of every instruction word.
	Tag bool
}

var _ Func = TagBit{}

// Name implements Func.
func (f TagBit) Name() string {
	if f.Tag {
		return "tag(1||inst)"
	}
	return "tag(0||inst)"
}

// Apply implements Func: R(inst) = tag || inst.
func (f TagBit) Apply(x word.Word) (word.Word, error) {
	if !f.Domain(x) {
		return 0, fmt.Errorf("apply %s to %s: %w", f.Name(), x, ErrOutOfDomain)
	}
	if f.Tag {
		return x | word.HighBit, nil
	}
	return x, nil
}

// Invert implements Func: checks the tag, faults on mismatch, and
// strips the tag bit.
func (f TagBit) Invert(y word.Word) (word.Word, error) {
	tagged := y&word.HighBit != 0
	if tagged != f.Tag {
		return 0, fmt.Errorf("invert %s on %s: illegal instruction tag: %w", f.Name(), y, ErrOutOfDomain)
	}
	return y &^ word.HighBit, nil
}

// Domain implements Func: canonical instructions occupy 31 bits.
func (f TagBit) Domain(x word.Word) bool { return x&word.HighBit == 0 }
