package reexpress

import (
	"math/rand"
	"strings"
	"testing"

	"nvariant/internal/word"
)

// assertSpecProperties is the N-wide property assertion of the
// security argument: for every diversified layer kind, every sample x,
// and every variant pair i ≠ j, the inverses R⁻¹ᵢ(x) and R⁻¹ⱼ(x) must
// not both succeed with equal values — and each variant's function
// must round-trip its whole domain.
func assertSpecProperties(t *testing.T, s *Spec, samples []word.Word) {
	t.Helper()
	for _, kind := range []LayerKind{LayerUID, LayerAddressPartition, LayerInstructionTags} {
		funcs := s.FuncsFor(kind)
		if funcs == nil {
			continue
		}
		if len(funcs) != s.N() {
			t.Fatalf("%s layer: %d funcs for %d variants", kind, len(funcs), s.N())
		}
		for i, f := range funcs {
			if err := CheckInverse(f, samples); err != nil {
				t.Errorf("%s layer, variant %d: inverse property: %v", kind, i, err)
			}
		}
		// The explicit pairwise loop (rather than CheckDisjointN) keeps
		// this test independent of the checker it is meant to cover.
		for _, x := range samples {
			for i := 0; i < len(funcs); i++ {
				vi, erri := funcs[i].Invert(x)
				if erri != nil {
					continue
				}
				for j := i + 1; j < len(funcs); j++ {
					vj, errj := funcs[j].Invert(x)
					if errj == nil && vi == vj {
						t.Fatalf("%s layer: R⁻¹_%d(%s) == R⁻¹_%d(%s) == %s (disjointness violated)",
							kind, i, x, j, x, vi)
					}
				}
			}
		}
	}
}

func TestGeneratedSpecsSatisfyNWideDisjointness(t *testing.T) {
	samples := BoundarySamples()
	for n := 2; n <= 5; n++ {
		for seed := int64(1); seed <= 6; seed++ {
			s := Generate(seed*31+int64(n), n)
			if s.N() != n {
				t.Fatalf("n=%d seed=%d: spec has %d variants", n, seed, s.N())
			}
			assertSpecProperties(t, s, samples)
		}
	}
}

func TestGeneratedFullStackSpecs(t *testing.T) {
	samples := BoundarySamples()
	for n := 2; n <= 5; n++ {
		s := Generate(int64(100+n), n, LayerUID, LayerAddressPartition, LayerUnsharedFiles)
		if !s.HasLayer(LayerUID) || !s.HasLayer(LayerAddressPartition) || !s.HasLayer(LayerUnsharedFiles) {
			t.Fatalf("n=%d: stack incomplete: %s", n, s)
		}
		if got := s.UnsharedPaths(); len(got) != 2 {
			t.Fatalf("n=%d: unshared paths = %v", n, got)
		}
		assertSpecProperties(t, s, samples)
	}
}

func TestGeneratedMasksPairwiseByteDistinct(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := Generate(int64(7+n), n)
		funcs := s.UIDFuncs()
		masks := make([]word.Word, len(funcs))
		for i, f := range funcs {
			switch v := f.(type) {
			case Identity:
				masks[i] = 0
			case XORMask:
				masks[i] = v.Mask
			default:
				t.Fatalf("variant %d: unexpected func %T", i, f)
			}
			if masks[i]&word.HighBit != 0 {
				t.Errorf("variant %d mask %s has the sign bit set", i, masks[i])
			}
		}
		for i := 0; i < len(masks); i++ {
			for j := i + 1; j < len(masks); j++ {
				for b := 0; b < word.Size; b++ {
					bi, _ := masks[i].Byte(b)
					bj, _ := masks[j].Byte(b)
					if bi == bj {
						t.Errorf("n=%d: masks %s and %s share byte %d — a single-byte overwrite there would not diverge between variants %d and %d",
							n, masks[i], masks[j], b, i, j)
					}
				}
			}
		}
	}
}

func TestComposedStackSatisfiesProperties(t *testing.T) {
	// Stacking two UID layers composes per-variant: the effective
	// function is xor(a)∘xor(b) = xor(a^b), and the composed spec must
	// still satisfy the N-wide properties.
	n := 3
	inner := UIDLayer(Identity{}, XORMask{Mask: 0x7FFFFFFF}, XORMask{Mask: 0x3C5A7E99})
	outer := UIDLayer(Identity{}, XORMask{Mask: 0x00FF00FF}, XORMask{Mask: 0x013579BD})
	s, err := NewSpec(n, inner, outer)
	if err != nil {
		t.Fatalf("NewSpec: %v", err)
	}
	assertSpecProperties(t, s, BoundarySamples())

	funcs := s.FuncsFor(LayerUID)
	u := word.Word(30)
	got, err := funcs[1].Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	if want := u ^ 0x7FFFFFFF ^ 0x00FF00FF; got != want {
		t.Errorf("composed apply = %s, want %s", got, want)
	}
}

func TestNewSpecRejectsViolations(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		layers []Layer
	}{
		{"too few variants", 1, []Layer{UIDLayer(Identity{})}},
		{"no layers", 2, nil},
		{"func count mismatch", 3, []Layer{UIDLayer(Identity{}, XORMask{Mask: UIDMask})}},
		{"identity collision", 2, []Layer{UIDLayer(Identity{}, Identity{})}},
		{"duplicate masks", 3, []Layer{UIDLayer(Identity{}, XORMask{Mask: UIDMask}, XORMask{Mask: UIDMask})}},
		{"empty unshared", 2, []Layer{UIDLayer(Identity{}, XORMask{Mask: UIDMask}), {Kind: LayerUnsharedFiles}}},
	}
	for _, tc := range cases {
		if _, err := NewSpec(tc.n, tc.layers...); err == nil {
			t.Errorf("%s: NewSpec accepted an invalid spec", tc.name)
		}
	}
}

func TestFromVariationAllTable1Rows(t *testing.T) {
	for _, v := range Table1() {
		s, err := FromVariation(v)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if s.N() != 2 {
			t.Errorf("%s: n = %d", v.Name, s.N())
		}
		assertSpecProperties(t, s, BoundarySamples())
	}
}

func TestSlotFuncsAreNWayDisjoint(t *testing.T) {
	for n := 2; n <= 5; n++ {
		l := AddressPartitionLayer(n)
		if err := CheckDisjointN(l.Funcs, BoundarySamples()); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		for i, f := range l.Funcs {
			if err := CheckInverse(f, BoundarySamples()); err != nil {
				t.Errorf("n=%d variant %d: %v", n, i, err)
			}
		}
	}
}

func TestSlotRoundTripAndFault(t *testing.T) {
	f := Slot{Index: 2, Bits: 2}
	y, err := f.Apply(0x00001234)
	if err != nil {
		t.Fatal(err)
	}
	if y != 0x80001234 {
		t.Fatalf("apply = %s", y)
	}
	back, err := f.Invert(y)
	if err != nil || back != 0x00001234 {
		t.Fatalf("invert = %s, %v", back, err)
	}
	if _, err := f.Invert(0x40001234); err == nil {
		t.Fatal("inverting a value from another slot did not fault")
	}
	if _, err := f.Apply(0x40000000); err == nil {
		t.Fatal("applying an out-of-domain value did not fault")
	}
}

func TestGenerateFromStreamIsDiverse(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	seen := map[string]bool{}
	for i := 0; i < 30; i++ {
		s := GenerateFrom(rng, 3)
		key := s.VariantName(1) + "/" + s.VariantName(2)
		if seen[key] {
			t.Errorf("draw %d repeated representation %s", i, key)
		}
		seen[key] = true
	}
}

func TestCheckDisjointNCatchesCollision(t *testing.T) {
	funcs := []Func{Identity{}, XORMask{Mask: UIDMask}, Identity{}}
	err := CheckDisjointN(funcs, BoundarySamples())
	if err == nil {
		t.Fatal("two identity variants accepted")
	}
	if !strings.Contains(err.Error(), "disjointness violated") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestParseStack(t *testing.T) {
	got, err := ParseStack("uid, addr,files")
	if err != nil {
		t.Fatal(err)
	}
	want := []LayerKind{LayerUID, LayerAddressPartition, LayerUnsharedFiles}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := ParseStack("uid,bogus"); err == nil {
		t.Error("unknown token accepted")
	}
	if _, err := ParseStack(""); err == nil {
		t.Error("empty stack accepted")
	}
}

func TestGenerateFromPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown layer kind did not panic")
		}
	}()
	Generate(1, 2, LayerKind(99))
}

func TestGenerateStackedUIDLayersCompose(t *testing.T) {
	// "uid,uid" is reachable through ParseStack: the two random layers
	// must compose into a still-valid spec (retried on the ~2⁻³⁰
	// collision), never be silently replaced by a different stack.
	kinds, err := ParseStack("uid,uid")
	if err != nil {
		t.Fatal(err)
	}
	s := Generate(17, 3, kinds...)
	if got := s.StackString(); got != "uid+uid" {
		t.Fatalf("stack = %q, want the requested uid+uid", got)
	}
	assertSpecProperties(t, s, BoundarySamples())
}
