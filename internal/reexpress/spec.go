package reexpress

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
	"sync"

	"nvariant/internal/word"
)

// Spec — the DiversitySpec of the public API — is the single way to
// describe a diversified deployment: N ≥ 2 variants, each carrying the
// same ordered stack of typed variation layers. The paper states its
// security argument for arbitrary N (§2) and discusses stacking
// variations (§5); a Spec makes both first-class. Construct with
// NewSpec (explicit, validated), FromVariation (a Table 1 row), or
// Generate (randomized, the fleet's per-replacement source).
//
// A validated Spec guarantees, per diversified layer kind, the two
// properties the detection argument needs, generalized N-wide:
//
//   - inverse (§2.2):      ∀i, ∀x in domain: R⁻¹ᵢ(Rᵢ(x)) ≡ x
//   - disjointness (§2.3): ∀x, ∀i≠j: R⁻¹ᵢ(x) ≠ R⁻¹ⱼ(x), or at least
//     one of the inversions fails (an alarm state)
type Spec struct {
	n      int
	layers []Layer
}

// LayerKind classifies one variation layer of a Spec.
type LayerKind int

// Layer kinds: the variation techniques a spec can stack.
const (
	// LayerUID diversifies UID-typed data (Table 1 row 4, the paper's
	// contribution).
	LayerUID LayerKind = iota + 1
	// LayerAddressPartition places each variant's address space in a
	// disjoint slot (Table 1 rows 1–2, generalized from two halves to
	// 2^k slots for N variants).
	LayerAddressPartition
	// LayerUnsharedFiles gives each variant its own diversified copy of
	// the listed files (§3.4).
	LayerUnsharedFiles
	// LayerInstructionTags tags instruction words with the variant
	// index (Table 1 row 3, generalized to multi-bit tags).
	LayerInstructionTags
)

// String names the layer kind.
func (k LayerKind) String() string {
	switch k {
	case LayerUID:
		return "uid"
	case LayerAddressPartition:
		return "address-partition"
	case LayerUnsharedFiles:
		return "unshared-files"
	case LayerInstructionTags:
		return "instruction-tags"
	default:
		return "unknown"
	}
}

// ParseStack parses a comma-separated variation-stack description into
// layer kinds. Accepted tokens (with aliases): "uid", "addr"
// ("address"), "files" ("unshared"), "tags" ("instr").
func ParseStack(csv string) ([]LayerKind, error) {
	var out []LayerKind
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.ToLower(strings.TrimSpace(tok))
		if tok == "" {
			continue
		}
		switch tok {
		case "uid":
			out = append(out, LayerUID)
		case "addr", "address", "address-partition":
			out = append(out, LayerAddressPartition)
		case "files", "unshared", "unshared-files":
			out = append(out, LayerUnsharedFiles)
		case "tags", "instr", "instruction-tags":
			out = append(out, LayerInstructionTags)
		default:
			return nil, fmt.Errorf("reexpress: unknown stack layer %q (want uid, addr, files, or tags)", tok)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("reexpress: empty variation stack")
	}
	return out, nil
}

// Layer is one variation in a spec's stack. Reexpression layers (UID,
// address partition, instruction tags) carry one function per variant;
// the unshared-files layer carries the diversified paths.
type Layer struct {
	// Kind classifies the variation.
	Kind LayerKind
	// Funcs holds R₀..R_{N-1} for reexpression layers (len == spec N).
	Funcs []Func
	// Paths lists the diversified files for LayerUnsharedFiles.
	Paths []string
}

// UIDLayer builds a UID variation layer from per-variant functions.
func UIDLayer(funcs ...Func) Layer {
	return Layer{Kind: LayerUID, Funcs: append([]Func(nil), funcs...)}
}

// AddressPartitionLayer builds an N-way address partitioning layer:
// variant i's addresses live in slot i of the 2^SlotBits(n)-way split
// of the address space.
func AddressPartitionLayer(n int) Layer {
	b := SlotBits(n)
	funcs := make([]Func, n)
	for i := range funcs {
		funcs[i] = Slot{Index: i, Bits: b}
	}
	return Layer{Kind: LayerAddressPartition, Funcs: funcs}
}

// UnsharedFilesLayer builds an unshared-files layer over the given
// paths (§3.4).
func UnsharedFilesLayer(paths ...string) Layer {
	return Layer{Kind: LayerUnsharedFiles, Paths: append([]string(nil), paths...)}
}

// InstructionTagLayer builds an N-way instruction tagging layer:
// variant i's instruction words carry tag i in their top SlotBits(n)
// bits.
func InstructionTagLayer(n int) Layer {
	b := SlotBits(n)
	funcs := make([]Func, n)
	for i := range funcs {
		funcs[i] = Slot{Index: i, Bits: b}
	}
	return Layer{Kind: LayerInstructionTags, Funcs: funcs}
}

// DefaultUnsharedPaths are the diversified system databases of the
// paper's §4 deployment.
var DefaultUnsharedPaths = []string{"/etc/passwd", "/etc/group"}

// SlotBits returns the number of index bits needed to give n variants
// disjoint slots of the word space (minimum 1, i.e. the paper's
// two-halves split). It delegates to word.SlotBits, the shared source
// of truth vmem's address partitions are built from.
func SlotBits(n int) int { return word.SlotBits(n) }

// Slot reexpresses a value by placing a variant index in its top Bits
// bits — the N-wide generalization of both address-space partitioning
// (slot = address partition) and instruction tagging (slot = tag).
// Canonical values must fit in the remaining low bits; a concrete
// value whose top bits name a different slot is invalid for this
// variant and inverting it faults, which is the alarm state the
// monitor observes. At most one variant can invert any given value, so
// pairwise disjointness holds by construction.
type Slot struct {
	// Index is this variant's slot number, in [0, 2^Bits).
	Index int
	// Bits is the slot-index width in bits, in [1, word.Bits).
	Bits int
}

var _ Func = Slot{}

// Name implements Func.
func (f Slot) Name() string { return fmt.Sprintf("slot(%d/%d)", f.Index, 1<<f.Bits) }

// shift returns the bit position of the slot index.
func (f Slot) shift() uint { return uint(word.Bits - f.Bits) }

// Apply implements Func: R(x) = index || x.
func (f Slot) Apply(x word.Word) (word.Word, error) {
	if !f.Domain(x) {
		return 0, fmt.Errorf("apply %s to %s: %w", f.Name(), x, ErrOutOfDomain)
	}
	return x | word.Word(f.Index)<<f.shift(), nil
}

// Invert implements Func: checks the slot index, faults on mismatch,
// and strips it.
func (f Slot) Invert(y word.Word) (word.Word, error) {
	if got := int(y >> f.shift()); got != f.Index {
		return 0, slotFaultFor(got)
	}
	return y &^ (word.Max << f.shift()), nil
}

// slotFaults precomputes one static error per observed slot index.
// The fault path must stay allocation-free — spec validation inverts
// tens of thousands of out-of-slot samples on the fleet's replacement
// path, where a per-call fmt.Errorf was the profiled dominant
// allocator — but the PR 4 shared sentinel also erased *which* slot
// the offending value claimed, the diagnostic the monitor's alarm
// detail and the property-check failures report. A static table keeps
// both: every entry is built once and wraps ErrOutOfDomain.
var slotFaults = func() [64]error {
	var t [64]error
	for i := range t {
		t[i] = fmt.Errorf("invert slot: value claims slot %d, not this variant's: %w", i, ErrOutOfDomain)
	}
	return t
}()

// errSlotFault is the fallback for slot indices beyond the static
// table (wider Bits than any deployed partition uses).
var errSlotFault = fmt.Errorf("invert slot: value outside this variant's slot: %w", ErrOutOfDomain)

// slotFaultFor returns the static fault error naming the observed
// slot.
func slotFaultFor(got int) error {
	if got >= 0 && got < len(slotFaults) {
		return slotFaults[got]
	}
	return errSlotFault
}

// Domain implements Func: canonical values occupy the low bits.
func (f Slot) Domain(x word.Word) bool { return x>>f.shift() == 0 }

// Compose returns the composition of the given functions as a single
// Func: Apply runs them in argument order, Invert in reverse. An empty
// composition is the identity. This is how a stacked spec (§5) derives
// the effective per-variant function of a layer kind.
func Compose(fs ...Func) Func {
	switch len(fs) {
	case 0:
		return Identity{}
	case 1:
		return fs[0]
	}
	return composed(append([]Func(nil), fs...))
}

// composed chains reexpression functions.
type composed []Func

var _ Func = composed{}

// Name implements Func.
func (c composed) Name() string {
	names := make([]string, len(c))
	for i, f := range c {
		names[i] = f.Name()
	}
	return strings.Join(names, "∘")
}

// Apply implements Func, applying each function in order.
func (c composed) Apply(x word.Word) (word.Word, error) {
	v := x
	for _, f := range c {
		var err error
		if v, err = f.Apply(v); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// Invert implements Func, inverting in reverse order.
func (c composed) Invert(y word.Word) (word.Word, error) {
	v := y
	for i := len(c) - 1; i >= 0; i-- {
		var err error
		if v, err = c[i].Invert(v); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// Domain implements Func: x is in the composition's domain when the
// whole Apply chain is.
func (c composed) Domain(x word.Word) bool {
	v := x
	for _, f := range c {
		if !f.Domain(v) {
			return false
		}
		var err error
		if v, err = f.Apply(v); err != nil {
			return false
		}
	}
	return true
}

// UncheckedSpec builds a Spec without running the §2.2/§2.3 property
// checks. It is the constructor behind the deprecated Pair-based
// adapters and the ablation experiments, which deliberately deploy
// undiversified or property-violating stacks; new code should use
// NewSpec.
func UncheckedSpec(n int, layers ...Layer) *Spec {
	copied := make([]Layer, len(layers))
	for i, l := range layers {
		copied[i] = Layer{
			Kind:  l.Kind,
			Funcs: append([]Func(nil), l.Funcs...),
			Paths: append([]string(nil), l.Paths...),
		}
	}
	return &Spec{n: n, layers: copied}
}

// NewSpec builds and validates a Spec for n variants: the shape is
// checked (n ≥ 2, every reexpression layer carries exactly n
// functions), then every diversified layer kind is verified against
// the inverse and N-wide pairwise-disjointness properties over the
// adversarial BoundarySamples corpus.
func NewSpec(n int, layers ...Layer) (*Spec, error) {
	s := UncheckedSpec(n, layers...)
	if err := s.checkShape(); err != nil {
		return nil, err
	}
	if err := CheckSpec(s, boundarySamples()); err != nil {
		return nil, err
	}
	return s, nil
}

// checkShape validates the structural invariants of a spec.
func (s *Spec) checkShape() error {
	if s.n < 2 {
		return fmt.Errorf("reexpress: spec needs at least 2 variants, got %d", s.n)
	}
	if len(s.layers) == 0 {
		return fmt.Errorf("reexpress: spec has no variation layers")
	}
	for li, l := range s.layers {
		switch l.Kind {
		case LayerUID, LayerAddressPartition, LayerInstructionTags:
			if len(l.Funcs) != s.n {
				return fmt.Errorf("reexpress: layer %d (%s): %d funcs for %d variants", li, l.Kind, len(l.Funcs), s.n)
			}
			for i, f := range l.Funcs {
				if f == nil {
					return fmt.Errorf("reexpress: layer %d (%s): nil func for variant %d", li, l.Kind, i)
				}
			}
		case LayerUnsharedFiles:
			if len(l.Paths) == 0 {
				return fmt.Errorf("reexpress: layer %d (unshared-files): no paths", li)
			}
		default:
			return fmt.Errorf("reexpress: layer %d: unknown kind %d", li, l.Kind)
		}
	}
	return nil
}

// N returns the variant count.
func (s *Spec) N() int { return s.n }

// Layers returns the variation stack in order (a copy).
func (s *Spec) Layers() []Layer {
	out := make([]Layer, len(s.layers))
	copy(out, s.layers)
	return out
}

// HasLayer reports whether the stack contains a layer of the given
// kind.
func (s *Spec) HasLayer(k LayerKind) bool {
	for _, l := range s.layers {
		if l.Kind == k {
			return true
		}
	}
	return false
}

// FuncsFor returns the effective per-variant functions of the given
// layer kind: the stack-ordered composition when several layers share
// the kind, nil when the kind is absent.
func (s *Spec) FuncsFor(k LayerKind) []Func {
	var stacked [][]Func
	for _, l := range s.layers {
		if l.Kind == k && len(l.Funcs) > 0 {
			stacked = append(stacked, l.Funcs)
		}
	}
	switch len(stacked) {
	case 0:
		return nil
	case 1:
		return append([]Func(nil), stacked[0]...)
	}
	out := make([]Func, s.n)
	for i := range out {
		chain := make([]Func, len(stacked))
		for j := range stacked {
			chain[j] = stacked[j][i]
		}
		out[i] = Compose(chain...)
	}
	return out
}

// UIDFuncs returns the effective per-variant UID functions, defaulting
// to identity for every variant when the stack has no UID layer.
func (s *Spec) UIDFuncs() []Func {
	if fs := s.FuncsFor(LayerUID); fs != nil {
		return fs
	}
	out := make([]Func, s.n)
	for i := range out {
		out[i] = Identity{}
	}
	return out
}

// UnsharedPaths returns the union of the stack's unshared-file paths
// in first-appearance order.
func (s *Spec) UnsharedPaths() []string {
	var out []string
	seen := map[string]bool{}
	for _, l := range s.layers {
		if l.Kind != LayerUnsharedFiles {
			continue
		}
		for _, p := range l.Paths {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// VariantName names variant i's effective UID function — what fleet
// stats and audit logs record about a deployment.
func (s *Spec) VariantName(i int) string {
	fs := s.UIDFuncs()
	if i < 0 || i >= len(fs) {
		return "(none)"
	}
	return fs[i].Name()
}

// StackString renders the stack kinds compactly ("uid+address-
// partition+unshared-files").
func (s *Spec) StackString() string {
	names := make([]string, len(s.layers))
	for i, l := range s.layers {
		names[i] = l.Kind.String()
	}
	return strings.Join(names, "+")
}

// String renders the spec for logs and reports.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec[n=%d", s.n)
	for _, l := range s.layers {
		fmt.Fprintf(&b, "; %s", l.Kind)
		switch l.Kind {
		case LayerUnsharedFiles:
			fmt.Fprintf(&b, ": %s", strings.Join(l.Paths, ","))
		case LayerUID:
			names := make([]string, len(l.Funcs))
			for i, f := range l.Funcs {
				names[i] = f.Name()
			}
			fmt.Fprintf(&b, ": %s", strings.Join(names, "|"))
		}
	}
	b.WriteString("]")
	return b.String()
}

// FromVariation builds a validated two-variant Spec from a Table 1
// row.
func FromVariation(v Variation) (*Spec, error) {
	var kind LayerKind
	switch v.Target {
	case TargetUID:
		kind = LayerUID
	case TargetAddress:
		kind = LayerAddressPartition
	case TargetInstruction:
		kind = LayerInstructionTags
	default:
		return nil, fmt.Errorf("reexpress: variation %q has unknown target %v", v.Name, v.Target)
	}
	return NewSpec(2, Layer{Kind: kind, Funcs: v.Pair.Funcs()})
}

// FullStack builds the paper's full §4 deployment stack over the given
// per-variant UID functions: the UID layer plus N-way address
// partitioning and the unshared passwd/group files. The spec is
// deliberately unchecked — ablation call sites pass undiversified or
// property-violating pairs on purpose.
func FullStack(uidFuncs []Func) *Spec {
	n := len(uidFuncs)
	return UncheckedSpec(n,
		UIDLayer(uidFuncs...),
		AddressPartitionLayer(n),
		UnsharedFilesLayer(DefaultUnsharedPaths...),
	)
}

// MinMaskBits is the smallest acceptable popcount for a generated UID
// mask. The paper's mask flips 31 bits; demanding at least half the
// word keeps the expected detection probability for random partial
// overwrites high.
const MinMaskBits = 16

// Generate draws a randomized, validated Spec for n variants from the
// given seed — the fleet's per-replacement source of fresh
// representations (it subsumes the old two-variant SelectPair). The
// stack defaults to a single UID layer; pass explicit kinds to stack
// further variations (address partitioning, unshared files,
// instruction tags).
func Generate(seed int64, n int, stack ...LayerKind) *Spec {
	return GenerateFrom(rand.New(rand.NewSource(seed)), n, stack...)
}

// GenerateFrom is Generate over a caller-owned random source, letting
// a fleet draw a stream of independent specs from one seeded rng.
//
// Generated UID masks keep the paper's sign-bit exclusion (so the
// kernel's negative-UID special cases stay outside the diversified
// range) and are pairwise byte-distinct in every byte position — a
// single-byte overwrite therefore diverges between *every* pair of
// variants, not just against variant 0 — with at least MinMaskBits
// bits flipped each. The result is verified against the full §2.2/§2.3
// property checks before use.
func GenerateFrom(rng *rand.Rand, n int, stack ...LayerKind) *Spec {
	if n < 2 {
		n = 2
	}
	if len(stack) == 0 {
		stack = []LayerKind{LayerUID}
	}
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		layers := make([]Layer, 0, len(stack))
		for _, k := range stack {
			switch k {
			case LayerUID:
				layers = append(layers, UIDLayer(generateUIDFuncs(rng, n)...))
			case LayerAddressPartition:
				layers = append(layers, AddressPartitionLayer(n))
			case LayerUnsharedFiles:
				layers = append(layers, UnsharedFilesLayer(DefaultUnsharedPaths...))
			case LayerInstructionTags:
				layers = append(layers, InstructionTagLayer(n))
			default:
				// Silently skipping would generate a spec the caller
				// did not ask for; layer kinds are programmer-supplied
				// constants (user input goes through ParseStack), so
				// an unknown kind is a bug at the call site.
				panic(fmt.Sprintf("reexpress: GenerateFrom: unknown layer kind %d", k))
			}
		}
		s, err := NewSpec(n, layers...)
		if err == nil {
			return s
		}
		// A validation failure is astronomically unlikely (the
		// construction rules guarantee the properties per layer; only
		// stacked random layers of the same kind can collide under
		// composition, at ~2⁻³⁰ per pair) — redraw rather than ever
		// deploying a spec that differs from the requested stack.
		lastErr = err
	}
	// Eight consecutive failed draws cannot happen by chance; the
	// construction rules are broken. Substituting a different stack
	// here would silently change a security deployment, so fail loudly
	// instead.
	panic(fmt.Sprintf("reexpress: GenerateFrom: cannot generate a valid %d-variant spec: %v", n, lastErr))
}

// generateUIDFuncs draws identity plus n-1 XOR masks satisfying the
// Generate contract.
func generateUIDFuncs(rng *rand.Rand, n int) []Func {
	funcs := make([]Func, n)
	funcs[0] = Identity{}
	masks := make([]word.Word, 1, n) // identity occupies mask 0
	for i := 1; i < n; i++ {
		m := drawMask(rng, masks)
		masks = append(masks, m)
		funcs[i] = XORMask{Mask: m}
	}
	return funcs
}

// drawMask draws one fresh mask: sign bit clear, every byte nonzero,
// popcount ≥ MinMaskBits, and byte-distinct in every position from all
// previously drawn masks (including 0, the identity).
func drawMask(rng *rand.Rand, prev []word.Word) word.Word {
	for attempt := 0; attempt < 1024; attempt++ {
		var b [word.Size]byte
		for i := range b {
			b[i] = byte(1 + rng.Intn(255))
		}
		b[word.Size-1] &= 0x7F
		if b[word.Size-1] == 0 {
			continue
		}
		m := word.FromBytes(b)
		if bits.OnesCount32(uint32(m)) < MinMaskBits {
			continue
		}
		if !byteDistinct(m, prev) {
			continue
		}
		return m
	}
	// Essentially unreachable (the rejection probability per draw is
	// tiny); scan deterministic candidates so the function always
	// terminates with a usable, pairwise-distinct mask.
	for k := word.Word(1); ; k++ {
		m := (UIDMask - k*0x01010101) & ^word.HighBit
		if bits.OnesCount32(uint32(m)) < MinMaskBits {
			continue
		}
		distinct := true
		for _, p := range prev {
			if m == p {
				distinct = false
				break
			}
		}
		if distinct {
			return m
		}
	}
}

// byteDistinct reports whether m differs from every mask in prev at
// every byte position.
func byteDistinct(m word.Word, prev []word.Word) bool {
	mb := m.Bytes()
	for _, p := range prev {
		pb := p.Bytes()
		for i := 0; i < word.Size; i++ {
			if mb[i] == pb[i] {
				return false
			}
		}
	}
	return true
}

// boundaryOnce caches the ~65k-word adversarial sample corpus: it is
// read-only and rebuilding it per spec validation (one per fleet
// replacement) would be pure allocation churn.
var boundaryOnce = sync.OnceValue(BoundarySamples)

// boundarySamples returns the shared, cached property-check corpus.
func boundarySamples() []word.Word { return boundaryOnce() }
