package fleet

import (
	"strings"
	"testing"
	"time"
)

// Tests for the mesh-facing fleet hooks: LiveGroups, Grow, Rotate,
// Shrink, the PortSpan budget, and the MultiAudit merged tail.

func mustFleet(t *testing.T, opts Options) *Fleet {
	t.Helper()
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _, _ = f.Stop() })
	return f
}

func TestLiveGroupsRoster(t *testing.T) {
	f := mustFleet(t, Options{Groups: 3})
	groups := f.LiveGroups()
	if len(groups) != 3 {
		t.Fatalf("roster has %d groups, want 3", len(groups))
	}
	for i, g := range groups {
		if g.ID != i {
			t.Errorf("roster[%d].ID = %d, want spawn order", i, g.ID)
		}
		if g.Draining {
			t.Errorf("fresh group %d marked draining", g.ID)
		}
		if g.Port == 0 || g.Born.IsZero() {
			t.Errorf("group %d missing port/born: %+v", g.ID, g)
		}
	}
}

func TestRotateDrainsAndReplaces(t *testing.T) {
	f := mustFleet(t, Options{Groups: 2})
	victim := f.OldestGroupID()
	if err := f.Rotate(victim, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f.Await(func(s Stats) bool {
		return s.Rotated == 1 && s.Replaced == 1 && len(s.Healthy) == 2
	}, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	// The victim's slot is refilled by a *new* group: ids never come
	// back, and rotation does not count as a quarantine.
	st := f.Stats()
	if st.Quarantined != 0 || st.Detections != 0 {
		t.Errorf("rotation counted as quarantine/detection: %+v", st)
	}
	for _, g := range st.Healthy {
		if g.ID == victim {
			t.Errorf("rotated group %d still in the pool", victim)
		}
	}
	// The audit trail records the fresh-spec replacement.
	var entry *AuditEntry
	for _, e := range f.Audit().Entries() {
		if e.GroupID == victim {
			entry = &e
			break
		}
	}
	if entry == nil {
		t.Fatal("no audit entry for the rotated group")
	}
	if entry.Action != "rotate+replace" || entry.ReplacementID < 0 || entry.ReplacementR1 == "" {
		t.Errorf("audit entry = %+v, want rotate+replace with a replacement spec", entry)
	}
}

func TestShrinkRetiresWithoutReplacement(t *testing.T) {
	f := mustFleet(t, Options{Groups: 2})
	groups := f.LiveGroups()
	newest := groups[len(groups)-1].ID
	if err := f.Shrink(newest, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f.Await(func(s Stats) bool {
		return s.Shrunk == 1 && len(s.Healthy) == 1
	}, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Replaced != 0 || st.Spawned != 2 {
		t.Errorf("shrink spawned a replacement: %+v", st)
	}
	entries := f.Audit().Entries()
	if len(entries) != 1 || entries[0].Action != "shrink" || entries[0].ReplacementID != -1 {
		t.Errorf("audit entries = %+v, want one bare shrink record", entries)
	}
}

func TestGrowAddsGroup(t *testing.T) {
	f := mustFleet(t, Options{Groups: 1})
	id, err := f.Grow()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("grown group id = %d, want 1", id)
	}
	st := f.Stats()
	if len(st.Healthy) != 2 || st.Grown != 1 {
		t.Errorf("after grow: %d healthy, %d grown, want 2/1", len(st.Healthy), st.Grown)
	}
}

func TestRetireRejectsMissingOrDraining(t *testing.T) {
	f := mustFleet(t, Options{Groups: 2})
	if err := f.Rotate(99, time.Second); err == nil {
		t.Error("rotating an unknown id succeeded")
	}
	victim := f.OldestGroupID()
	if err := f.Rotate(victim, time.Second); err != nil {
		t.Fatal(err)
	}
	// The group is gone or draining now; a second retirement of the
	// same id must fail rather than double-drain.
	if err := f.Shrink(victim, time.Second); err == nil {
		t.Error("second retirement of the same group succeeded")
	}
}

// TestPortSpanBudget: a fleet sharing a port space respects its span —
// growth past the budget fails cleanly, and a retired group's port is
// recycled so the budget is about concurrent size, not history.
func TestPortSpanBudget(t *testing.T) {
	f := mustFleet(t, Options{Groups: 2, PortSpan: 2})
	if _, err := f.Grow(); err == nil || !strings.Contains(err.Error(), "port budget") {
		t.Fatalf("grow past the span: err = %v, want port budget exhaustion", err)
	}
	// Retire one group; its port must come back to the budget.
	groups := f.LiveGroups()
	if err := f.Shrink(groups[len(groups)-1].ID, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f.Await(func(s Stats) bool { return s.Shrunk == 1 }, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	id, err := f.Grow()
	if err != nil {
		t.Fatalf("grow after shrink should recycle the port: %v", err)
	}
	for _, g := range f.LiveGroups() {
		if g.ID == id && int(g.Port)-int(DefaultBasePort) >= 2 {
			t.Errorf("recycled group on port %d, outside span [%d,%d)", g.Port, DefaultBasePort, DefaultBasePort+2)
		}
	}
}

// TestMultiAuditMergesByVTime: the merged tail orders entries by
// virtual time across pools, tags each line with its pool, and pages
// with the since/n cursor.
func TestMultiAuditMergesByVTime(t *testing.T) {
	a, b := newAuditLog(nil), newAuditLog(nil)
	a.append(AuditEntry{GroupID: 1, VTime: 50, Action: "quarantine+replace", ReplacementID: -1})
	b.append(AuditEntry{GroupID: 2, VTime: 10, Action: "rotate+replace", ReplacementID: -1})
	b.append(AuditEntry{GroupID: 3, VTime: 60, Action: "shrink", ReplacementID: -1})

	m := NewMultiAudit()
	if _, _, err := m.TailNDJSON(0, 0); err == nil {
		t.Error("empty MultiAudit tail succeeded, want error")
	}
	m.Attach("poolA", a)
	m.Attach("poolB", b)

	buf, last, err := m.TailNDJSON(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last != 3 {
		t.Errorf("cursor = %d, want 3", last)
	}
	lines := strings.Split(strings.TrimSpace(string(buf)), "\n")
	if len(lines) != 3 {
		t.Fatalf("merged tail has %d lines, want 3:\n%s", len(lines), buf)
	}
	wantOrder := []string{`"vtime":10`, `"vtime":50`, `"vtime":60`}
	wantPool := []string{`"pool":"poolB"`, `"pool":"poolA"`, `"pool":"poolB"`}
	for i, line := range lines {
		if !strings.Contains(line, wantOrder[i]) || !strings.Contains(line, wantPool[i]) {
			t.Errorf("line %d = %s, want %s from %s", i, line, wantOrder[i], wantPool[i])
		}
	}

	// Cursor paging: two entries, then resume.
	buf, last, err = m.TailNDJSON(0, 2)
	if err != nil || last != 2 {
		t.Fatalf("page 1: last=%d err=%v, want 2", last, err)
	}
	if n := len(strings.Split(strings.TrimSpace(string(buf)), "\n")); n != 2 {
		t.Errorf("page 1 has %d lines, want 2", n)
	}
	buf, last, err = m.TailNDJSON(2, 2)
	if err != nil || last != 3 {
		t.Fatalf("page 2: last=%d err=%v, want 3", last, err)
	}
	if !strings.Contains(string(buf), `"vtime":60`) {
		t.Errorf("page 2 = %s, want the vtime-60 entry", buf)
	}
}
