package fleet

import (
	"time"

	"nvariant/internal/simnet"
)

// Policy selects how the dispatcher balances client connections across
// healthy groups.
type Policy int

// Balancing policies.
const (
	// RoundRobin cycles through the healthy pool in group order.
	RoundRobin Policy = iota
	// LeastLoaded picks the group with the fewest in-flight
	// connections.
	LeastLoaded
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	default:
		return "unknown"
	}
}

// Dial retry tuning: a quarantined group's port refuses dials for the
// moment between its kill and its watcher pruning it from the pool, and
// a pool of one has nothing to serve from until the replacement is up.
// The dispatcher retries across the pool within this budget before
// failing the client connection.
const (
	dialRetryInterval = 200 * time.Microsecond
	dialRetryBudget   = 5 * time.Second
)

// acceptLoop accepts client connections on the front port and hands
// each to a proxy goroutine. It exits when the front listener closes.
func (f *Fleet) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.front.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go f.serve(conn)
	}
}

// pick chooses a healthy group under the active policy, or nil when
// the pool is momentarily empty. It reads the lock-free published
// snapshot — no mutex on the per-connection hot path, so dispatch
// never stalls behind spawn/quarantine bookkeeping (which holds f.mu
// while rebuilding groups).
func (f *Fleet) pick() *group {
	pool := *f.pool.Load()
	if len(pool) == 0 {
		return nil
	}
	switch f.opts.Policy {
	case LeastLoaded:
		// Scan from a rotating start so ties round-robin instead of
		// hot-spotting the lowest-indexed group (sequential clients
		// would otherwise all land on group 0). Load is in-flight
		// connections normalized by worker-lane capacity (compared
		// cross-multiplied to stay in integers): a W-lane group absorbs
		// W connections before looking as loaded as a serial one.
		n := len(pool)
		start := int(f.rr.Add(1)-1) % n
		best := pool[start]
		for i := 1; i < n; i++ {
			g := pool[(start+i)%n]
			if g.inflight.Load()*int64(best.workers) < best.inflight.Load()*int64(g.workers) {
				best = g
			}
		}
		return best
	default:
		return pool[int(f.rr.Add(1)-1)%len(pool)]
	}
}

// pickAndDial selects a group and opens a backend connection to it,
// retrying across the pool while groups are being replaced.
func (f *Fleet) pickAndDial() (*group, *simnet.Conn) {
	deadline := time.Now().Add(dialRetryBudget)
	for {
		if g := f.pick(); g != nil {
			conn, err := f.net.Dial(g.port)
			if err == nil {
				return g, conn
			}
			// The group's port refused: it is dying or just died; its
			// watcher will prune it. Fall through to retry.
		}
		if f.isClosed() || time.Now().After(deadline) {
			return nil, nil
		}
		time.Sleep(dialRetryInterval)
	}
}

// serve proxies one client connection to one backend group. The client
// is oblivious to pool membership (the paper's monitor already hides
// the variant count; the dispatcher additionally hides the group). If
// the monitor kills the group mid-exchange, both sides are torn down,
// so the client observes exactly what a direct attacker observes: the
// connection drops with no response.
func (f *Fleet) serve(client *simnet.Conn) {
	defer f.wg.Done()
	defer func() { _ = client.Close() }()

	g, backend := f.pickAndDial()
	if backend == nil {
		f.dispatchErrors.Add(1)
		if f.obs != nil {
			f.obs.dispatchErrors.Inc()
		}
		return
	}
	f.dispatched.Add(1)
	g.inflight.Add(1)
	g.served.Add(1)
	if f.obs != nil {
		// Mirrors of the internal counters as registered series; plain
		// atomic adds, so the instrumented dispatch path allocates
		// nothing extra.
		f.obs.dispatched.Inc()
		f.obs.inflight.Add(1)
		defer f.obs.inflight.Add(-1)
	}
	defer g.inflight.Add(-1)
	defer func() { _ = backend.Close() }()

	// No watchdog is needed for group death: the monitor's teardown
	// closes every accepted connection, and Listener.Close drops
	// backlog-queued ones, so both pumps unblock on a kill.

	// Request pump: client → backend. Closing the backend on client EOF
	// propagates end-of-stream to the server (simnet has no half-close,
	// but the response — if any — has already crossed by the time a
	// well-behaved client closes). Both pumps hand each message's
	// pooled buffer straight through with SendOwned — the proxy never
	// copies a payload; ownership passes from one wire to the other.
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer func() { _ = backend.Close() }()
		for {
			msg, err := client.Recv()
			if err != nil || msg == nil {
				return
			}
			if backend.SendOwned(msg) != nil {
				simnet.PutBuffer(msg)
				return
			}
		}
	}()

	// Response pump: backend → client, inline.
	for {
		msg, err := backend.Recv()
		if err != nil || msg == nil {
			return
		}
		if client.SendOwned(msg) != nil {
			simnet.PutBuffer(msg)
			return
		}
	}
}
