package fleet_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/fleet"
	"nvariant/internal/obs"
	"nvariant/internal/vos"
)

// attackOnce drives one forge-UID probe through the fleet until the
// struck group is detected, quarantined and replaced.
func attackOnce(t *testing.T, f *fleet.Fleet) {
	t.Helper()
	client := f.Client()
	if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
		t.Fatalf("overflow: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for f.Stats().Detections == 0 {
		if time.Now().After(deadline) {
			t.Fatal("attack not detected")
		}
		_, _, _ = client.Get("/private/secret.html")
	}
	if err := f.AwaitReplenished(1, 2, 15*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestAuditTailNDJSONAndTimestamps covers the recovery log's ops
// surface: entries stream as one JSON object per line, carry the
// kernel's virtual-time stamp alongside the wall-clock alarm time, and
// the since/max cursor pages without gaps.
func TestAuditTailNDJSONAndTimestamps(t *testing.T) {
	reg := obs.NewRegistry()
	f := startFleet(t, fleet.Options{Groups: 2, Obs: reg})
	attackOnce(t, f)
	defer func() {
		if _, err := f.Stop(); err != nil {
			t.Fatal(err)
		}
	}()

	buf, last, err := f.Audit().TailNDJSON(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf), []byte("\n"))
	if len(lines) != 1 || last != 1 {
		t.Fatalf("tail = %d lines, last=%d, want 1 entry: %s", len(lines), last, buf)
	}
	var e struct {
		Seq    int    `json:"seq"`
		Time   string `json:"time"`
		VTime  uint32 `json:"vtime"`
		Action string `json:"action"`
		Alarm  *struct {
			Reason string `json:"reason"`
			At     string `json:"at"`
			VTime  uint32 `json:"vtime"`
		} `json:"alarm"`
	}
	if err := json.Unmarshal(lines[0], &e); err != nil {
		t.Fatalf("entry not valid JSON: %v\n%s", err, lines[0])
	}
	if e.Seq != 1 || e.Action != "quarantine+replace" {
		t.Errorf("entry = %+v", e)
	}
	if e.VTime == 0 {
		t.Error("entry missing kernel virtual-time stamp")
	}
	if ts, err := time.Parse(time.RFC3339Nano, e.Time); err != nil || ts.IsZero() {
		t.Errorf("entry wall time %q: %v", e.Time, err)
	}
	if e.Alarm == nil {
		t.Fatal("entry missing alarm")
	}
	if e.Alarm.Reason != "uid-divergence" {
		t.Errorf("alarm reason = %q", e.Alarm.Reason)
	}
	if ts, err := time.Parse(time.RFC3339Nano, e.Alarm.At); err != nil || ts.IsZero() {
		t.Errorf("alarm raise time %q: %v", e.Alarm.At, err)
	}
	if e.Alarm.VTime == 0 {
		t.Error("alarm missing virtual-time stamp")
	}

	// Paging: a cursor past the last entry yields an empty tail.
	empty, last2, err := f.Audit().TailNDJSON(last, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 || last2 != last {
		t.Errorf("tail past end = %q last=%d, want empty, %d", empty, last2, last)
	}

	// The detection must also be visible on the metrics side.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fleet_detections_total 1",
		"fleet_quarantines_total 1",
		"fleet_replacements_total 1",
		`nvk_alarms_total{reason="uid-divergence"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
