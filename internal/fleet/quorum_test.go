package fleet_test

// Fleet-level quorum tests: a group that evicts a faulted variant must
// keep serving on its K-of-N quorum, surface the eviction in the audit
// log and stats, and be drained + respawned at full width in the
// background. Run with -race (CI does).

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nvariant/internal/fleet"
	"nvariant/internal/nvkernel"
	"nvariant/internal/sys"
)

// crashOnce is an nvkernel.FaultHook crashing one variant at its nth
// occurrence of num, counted across the whole fleet (the hook is shared
// by every group's kernel).
type crashOnce struct {
	mu      sync.Mutex
	variant int
	num     sys.Num
	nth     int
	calls   int
}

func (h *crashOnce) PreSyscall(_, variant int, num sys.Num) (time.Duration, bool) {
	if variant != h.variant || num != h.num {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.calls++
	return 0, h.calls == h.nth
}

func TestFleetQuorumEvictionRespawns(t *testing.T) {
	hook := &crashOnce{variant: 1, num: sys.Recv, nth: 3}
	f := startFleet(t, fleet.Options{
		Groups:   2,
		Variants: 3,
		Quorum:   2,
		Kernel:   []nvkernel.Option{nvkernel.WithFaultHook(hook)},
	})
	client := f.Client()

	// Drive requests until one group hits the injected crash and evicts
	// the variant. No alarm: a fault is not an attack.
	deadline := time.Now().Add(15 * time.Second)
	for f.Stats().Evictions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("eviction never happened")
		}
		if code, _, err := client.Get("/index.html"); err != nil || code != 200 {
			t.Fatalf("request during degraded window = %d, %v", code, err)
		}
	}

	// The degraded group keeps serving on its 2-of-3 quorum while the
	// background respawn drains it; the fleet must not drop below the
	// configured width once the replacement registers.
	if err := f.Await(func(s fleet.Stats) bool {
		return s.Respawned == 1 && s.DegradedGroups == 0 && len(s.Healthy) == 2
	}, 20*time.Second); err != nil {
		t.Fatalf("respawn never settled: %v (stats %+v)", err, f.Stats())
	}
	for i := 0; i < 8; i++ {
		if code, _, err := client.Get("/index.html"); err != nil || code != 200 {
			t.Fatalf("post-respawn request %d = %d, %v", i, code, err)
		}
	}

	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evictions != 1 || stats.Respawned != 1 {
		t.Errorf("evictions = %d respawned = %d, want 1/1", stats.Evictions, stats.Respawned)
	}
	if stats.Detections != 0 || stats.Quarantined != 0 {
		t.Errorf("fault counted as detection/quarantine: %+v", stats)
	}

	// Audit trail: an "evict" entry carrying the kernel's eviction
	// detail and virtual time, then the "respawn+replace" for the same
	// group with a fresh spec.
	entries := f.Audit().Entries()
	var evict, respawn *fleet.AuditEntry
	for i := range entries {
		switch entries[i].Action {
		case "evict":
			evict = &entries[i]
		case "respawn+replace":
			respawn = &entries[i]
		}
	}
	if evict == nil {
		t.Fatalf("no evict audit entry: %+v", entries)
	}
	if evict.VTime == 0 {
		t.Errorf("evict entry has no virtual time: %+v", evict)
	}
	if !strings.Contains(evict.Detail, "variant 1 evicted (crash") {
		t.Errorf("evict detail = %q", evict.Detail)
	}
	if evict.Alarm != nil {
		t.Errorf("evict entry carries an alarm: %+v", evict.Alarm)
	}
	if respawn == nil {
		t.Fatalf("no respawn+replace audit entry: %+v", entries)
	}
	if respawn.GroupID != evict.GroupID {
		t.Errorf("respawned group %d != evicted group %d", respawn.GroupID, evict.GroupID)
	}
	if respawn.ReplacementID < 0 || respawn.ReplacementR1 == "" {
		t.Errorf("respawn entry missing replacement spec: %+v", respawn)
	}
}

// TestFleetQuorumRespawnUnderLoadRace hammers the dispatcher's pooled
// proxy buffers across the eviction → drain → respawn window: held
// response bodies must never be scribbled on by a recycled buffer even
// while the degraded group's slot is torn down and re-registered
// concurrently with dispatch. Payload aliasing fails the body checks —
// and trips -race.
func TestFleetQuorumRespawnUnderLoadRace(t *testing.T) {
	hook := &crashOnce{variant: 2, num: sys.Recv, nth: 5}
	f := startFleet(t, fleet.Options{
		Groups:   2,
		Variants: 3,
		Quorum:   2,
		Workers:  2,
		Kernel:   []nvkernel.Option{nvkernel.WithFaultHook(hook)},
	})
	const want = "<html><body><h1>It works!</h1></body></html>\n"

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := f.Client()
			held := make([][]byte, 0, 5)
			for i := 0; i < 40; i++ {
				code, body, err := client.Get("/index.html")
				if err != nil || code != 200 {
					// A request caught mid-drain may be refused; the
					// availability assertions below are the gate.
					continue
				}
				held = append(held, body)
				if len(held) == cap(held) {
					for _, h := range held {
						if string(h) != want {
							errs <- fmt.Errorf("held body mutated across respawn: %q", h)
							return
						}
					}
					held = held[:0]
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := f.Await(func(s fleet.Stats) bool {
		return s.Evictions == 1 && s.Respawned == 1 && len(s.Healthy) == 2
	}, 20*time.Second); err != nil {
		t.Fatalf("respawn never settled: %v (stats %+v)", err, f.Stats())
	}
	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detections != 0 {
		t.Errorf("fault counted as detection: %+v", stats)
	}
}
