package fleet_test

import (
	"testing"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/fleet"
	"nvariant/internal/httpd"
	"nvariant/internal/testutil"
	"nvariant/internal/vos"
	"nvariant/internal/webbench"
)

func TestFleetWorkersServeAndRecover(t *testing.T) {
	// A pool of prefork groups: benign load is served with no false
	// alarm, every group reports its lane count, and a probe striking
	// one lane of one group still quarantines exactly that group while
	// its siblings keep serving.
	f := startFleet(t, fleet.Options{Groups: 2, Workers: 3, Policy: fleet.LeastLoaded})

	m, err := webbench.Run(f.Net(), f.Port(), webbench.Options{Engines: 6, RequestsPerEngine: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d under benign load", m.Errors)
	}
	for _, g := range f.Stats().Healthy {
		if g.Workers != 3 {
			t.Errorf("group %d workers = %d, want 3", g.ID, g.Workers)
		}
	}

	// Probe, then drive triggers until the struck group's corrupted
	// lane sees one and its monitor kills the whole group.
	client := f.Client()
	if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if !testutil.Poll(15*time.Second, func() bool {
		if f.Stats().Detections >= 1 {
			return true
		}
		code, body, err := client.Get("/private/secret.html")
		if err == nil && code == 200 && httpd.ContainsSecret(body) {
			t.Error("secret leaked from a worker lane")
			return true
		}
		return false
	}) {
		t.Fatalf("probe not detected: %+v", f.Stats())
	}
	if err := f.AwaitReplenished(1, 2, 15*time.Second); err != nil {
		t.Fatal(err)
	}

	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detections != 1 || stats.Quarantined != 1 || stats.Replaced != 1 {
		t.Errorf("recovery counters = %+v, want 1/1/1", stats)
	}
	for _, g := range stats.Healthy {
		if g.Workers != 3 {
			t.Errorf("replacement group %d workers = %d, want 3", g.ID, g.Workers)
		}
	}
}
