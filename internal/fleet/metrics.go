package fleet

import (
	"time"

	"nvariant/internal/obs"
)

// metrics is the fleet's registered metric set, created when
// Options.Obs is set. Dispatch-path updates are atomic adds — the
// instrumented dispatcher adds no allocations (see the bench gate and
// TestInstrumentedDispatchAddsNoAllocs). Series owned by this layer:
//
//	fleet_dispatched_total           connections proxied to a group
//	fleet_dispatch_errors_total      connections that found no healthy group
//	fleet_inflight                   connections currently proxied
//	fleet_detections_total           groups that exited with an alarm
//	fleet_quarantines_total          groups pruned from the pool
//	fleet_replacements_total         replacement groups spawned
//	fleet_rotations_total            healthy groups drained + replaced proactively
//	fleet_respawns_total             degraded groups drained + respawned after an eviction
//	fleet_exposure_window_seconds    alarm raise → replacement registered
//	fleet_group_lifetime_seconds     group spawn → exit (one mask set's exposure)
//	fleet_healthy_groups             current pool size (sampled)
//	fleet_degraded_groups            groups serving on a K-of-N quorum (sampled)
//	fleet_oldest_group_age_seconds   age of the longest-lived pool member (sampled)
type metrics struct {
	dispatched     *obs.Counter
	dispatchErrors *obs.Counter
	inflight       *obs.Gauge
	detections     *obs.Counter
	quarantines    *obs.Counter
	replacements   *obs.Counter
	rotations      *obs.Counter
	respawns       *obs.Counter
	exposure       *obs.Histogram
	lifetime       *obs.Histogram
}

// newMetrics registers the fleet metric set on reg. The sampled
// gauges capture f; when several fleets share a registry the latest
// fleet wins those series (obs *Func re-registration semantics),
// while the counters aggregate across all of them.
func newMetrics(reg *obs.Registry, f *Fleet) *metrics {
	m := &metrics{
		dispatched:     reg.Counter("fleet_dispatched_total", "Connections proxied to a group."),
		dispatchErrors: reg.Counter("fleet_dispatch_errors_total", "Connections that found no healthy group."),
		inflight:       reg.Gauge("fleet_inflight", "Connections currently proxied."),
		detections:     reg.Counter("fleet_detections_total", "Groups that exited with an alarm."),
		quarantines:    reg.Counter("fleet_quarantines_total", "Groups pruned from the pool."),
		replacements:   reg.Counter("fleet_replacements_total", "Replacement groups spawned."),
		rotations:      reg.Counter("fleet_rotations_total", "Healthy groups drained and replaced proactively."),
		respawns:       reg.Counter("fleet_respawns_total", "Degraded groups drained and respawned after a quorum eviction."),
		exposure: reg.Histogram("fleet_exposure_window_seconds",
			"Alarm raise to replacement group registered.", nil),
		lifetime: reg.Histogram("fleet_group_lifetime_seconds",
			"Group spawn to exit: how long one mask set stayed exposed.", nil),
	}
	reg.GaugeFunc("fleet_healthy_groups", "Groups currently in the dispatch pool.",
		func() float64 { return float64(len(*f.pool.Load())) })
	reg.GaugeFunc("fleet_degraded_groups", "Groups serving on a K-of-N quorum (evicted variant, respawn pending).",
		func() float64 { return float64(f.DegradedCount()) })
	reg.GaugeFunc("fleet_oldest_group_age_seconds", "Age of the longest-lived pool member.",
		func() float64 {
			var oldest time.Time
			for _, g := range *f.pool.Load() {
				if oldest.IsZero() || g.born.Before(oldest) {
					oldest = g.born
				}
			}
			if oldest.IsZero() {
				return 0
			}
			return time.Since(oldest).Seconds()
		})
	return m
}
