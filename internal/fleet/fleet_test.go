package fleet_test

import (
	"math/bits"
	"math/rand"
	"testing"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/experiments"
	"nvariant/internal/fleet"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/vos"
	"nvariant/internal/webbench"
	"nvariant/internal/word"
)

func startFleet(t *testing.T, opts fleet.Options) *fleet.Fleet {
	t.Helper()
	f, err := fleet.New(opts)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return f
}

func TestFleetServesBenignLoad(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 3})
	m, err := webbench.Run(f.Net(), f.Port(), webbench.Options{Engines: 6, RequestsPerEngine: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d under benign load", m.Errors)
	}
	if m.Requests != 60 {
		t.Errorf("requests = %d, want 60", m.Requests)
	}
	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detections != 0 || stats.Quarantined != 0 || stats.Replaced != 0 {
		t.Errorf("benign load caused recovery actions: %+v", stats)
	}
	if stats.Spawned != 3 {
		t.Errorf("spawned = %d, want 3", stats.Spawned)
	}
	// Round-robin must have spread connections across the whole pool.
	for _, g := range stats.Healthy {
		if g.Served == 0 {
			t.Errorf("group %d served no connections under round-robin", g.ID)
		}
	}
	if f.Audit().Len() != 0 {
		t.Errorf("audit entries under benign load: %v", f.Audit().Entries())
	}
}

func TestFleetLeastLoadedPolicy(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 2, Policy: fleet.LeastLoaded})
	m, err := webbench.Run(f.Net(), f.Port(), webbench.Options{Engines: 4, RequestsPerEngine: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d", m.Errors)
	}
	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, g := range stats.Healthy {
		total += g.Served
		// Ties must rotate: with equal load no group may be starved.
		if g.Served == 0 {
			t.Errorf("group %d served no connections under least-loaded", g.ID)
		}
	}
	if total < 32 {
		t.Errorf("served %d connections, want >= 32", total)
	}
}

func TestFleetPoolIsRepresentationDiverse(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 4})
	defer func() { _, _ = f.Stop() }()
	stats := f.Stats()
	if len(stats.Healthy) != 4 {
		t.Fatalf("healthy = %d, want 4", len(stats.Healthy))
	}
	seen := map[string]bool{}
	for _, g := range stats.Healthy {
		if seen[g.R1] {
			t.Errorf("duplicate R1 %q in initial pool", g.R1)
		}
		seen[g.R1] = true
	}
	// Group 0 runs the paper's published mask.
	if stats.Healthy[0].R1 != reexpress.UIDVariation().Pair.R1.Name() {
		t.Errorf("group 0 R1 = %q, want the paper's pair", stats.Healthy[0].R1)
	}
}

func TestFleetQuarantineAndReplacement(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 2})
	client := f.Client()

	// Benign sanity check through the dispatcher.
	if code, _, err := client.Get("/index.html"); err != nil || code != 200 {
		t.Fatalf("benign request = %d, %v", code, err)
	}

	// Step 1: the overflow probe corrupts one group's worker UID.
	if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
		t.Fatalf("overflow: %v", err)
	}

	// Step 2: drive requests until the struck group uses the forged
	// UID and the monitor kills it.
	deadline := time.Now().Add(15 * time.Second)
	for f.Stats().Detections == 0 {
		if time.Now().After(deadline) {
			t.Fatal("attack not detected")
		}
		code, body, err := client.Get("/private/secret.html")
		if err == nil && code == 200 && httpd.ContainsSecret(body) {
			t.Fatal("secret leaked through the fleet")
		}
	}

	// The replacement must come up and the fleet keep serving.
	if err := f.AwaitReplenished(1, 2, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if code, _, err := client.Get("/index.html"); err != nil || code != 200 {
			t.Fatalf("post-recovery request %d = %d, %v", i, code, err)
		}
	}

	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detections != 1 || stats.Quarantined != 1 || stats.Replaced != 1 || stats.Spawned != 3 {
		t.Errorf("stats = %+v", stats)
	}

	entries := f.Audit().Entries()
	if len(entries) != 1 {
		t.Fatalf("audit entries = %d, want 1: %v", len(entries), entries)
	}
	e := entries[0]
	if e.Alarm == nil || e.Alarm.Reason != nvkernel.ReasonUIDDivergence {
		t.Errorf("audit alarm = %+v, want uid-divergence", e.Alarm)
	}
	if e.Action != "quarantine+replace" || e.ReplacementID < 0 {
		t.Errorf("audit action = %q replacement = %d", e.Action, e.ReplacementID)
	}
	if e.ReplacementR1 == e.R1 {
		t.Errorf("replacement reuses the dead group's functions: %q", e.R1)
	}
}

// TestFleetUnderSaturatedAttackCampaign is the acceptance scenario: a
// 4-group fleet serves the paper's saturated 15-engine load while a
// UID-forging campaign runs through the same dispatcher. Every probe
// must be detected, every struck group quarantined and replaced with
// an audit record, the secret must never leak, and throughput must
// stay within 2x of the attack-free baseline.
func TestFleetUnderSaturatedAttackCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	opts := experiments.DefaultFleetAttackOptions()
	opts.Groups = 4
	opts.Engines = 15
	opts.RequestsPerEngine = 20
	opts.Probes = 4
	opts.WorkFactor = 200

	r, err := experiments.RunFleetAttack(opts)
	if err != nil {
		t.Fatal(err)
	}

	if r.Detections != opts.Probes {
		t.Errorf("detections = %d, want %d (every probe detected)", r.Detections, opts.Probes)
	}
	if r.DefendedLeaks != 0 {
		t.Errorf("secret leaked %d times through the defended fleet", r.DefendedLeaks)
	}
	if r.UndefendedLeaks < 1 {
		t.Errorf("undefended leaks = %d, want >= 1 (the attack works without diversity)", r.UndefendedLeaks)
	}
	if got := r.AttackedStats.Quarantined; got != opts.Probes {
		t.Errorf("quarantined = %d, want %d", got, opts.Probes)
	}
	if got := r.AttackedStats.Replaced; got != opts.Probes {
		t.Errorf("replaced = %d, want %d", got, opts.Probes)
	}
	if got := len(r.AttackedStats.Healthy); got != opts.Groups {
		t.Errorf("healthy at end = %d, want %d (pool replenished)", got, opts.Groups)
	}

	// The audit log records each alarm.
	alarmed := 0
	for _, e := range r.Audit {
		if e.Alarm != nil {
			alarmed++
			if e.Alarm.Reason != nvkernel.ReasonUIDDivergence {
				t.Errorf("audit alarm reason = %v", e.Alarm.Reason)
			}
		}
	}
	if alarmed != opts.Probes {
		t.Errorf("audit records %d alarms, want %d", alarmed, opts.Probes)
	}

	if retained := r.ThroughputRetained(); retained < 0.5 {
		t.Errorf("throughput retained = %.2f, want >= 0.5 (within 2x of baseline)\nbaseline: %v\nattacked: %v",
			retained, r.Baseline, r.Attacked)
	}
	// Lost requests are bounded by in-flight work on killed groups.
	if rate := r.ErrorRate(); rate > 0.25 {
		t.Errorf("error rate = %.3f, want <= 0.25", rate)
	}
}

func TestSelectPairProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seen := map[word.Word]bool{}
	for i := 0; i < 50; i++ {
		pair := fleet.SelectPair(rng)
		xm, ok := pair.R1.(reexpress.XORMask)
		if !ok {
			t.Fatalf("R1 = %T, want XORMask", pair.R1)
		}
		if xm.Mask&word.HighBit != 0 {
			t.Errorf("mask %s has the sign bit set", xm.Mask)
		}
		if bits.OnesCount32(uint32(xm.Mask)) < 16 {
			t.Errorf("mask %s flips fewer than 16 bits", xm.Mask)
		}
		for b := 0; b < word.Size; b++ {
			if byt, _ := xm.Mask.Byte(b); byt == 0 {
				t.Errorf("mask %s has zero byte %d (single-byte overwrites there would go undetected)", xm.Mask, b)
			}
		}
		if err := reexpress.CheckPair(pair, reexpress.BoundarySamples()); err != nil {
			t.Errorf("selected pair fails properties: %v", err)
		}
		seen[xm.Mask] = true
	}
	if len(seen) < 40 {
		t.Errorf("only %d distinct masks in 50 draws", len(seen))
	}
}

func TestFleetStopIdempotent(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 1})
	if _, err := f.Stop(); err != nil {
		t.Fatalf("first stop: %v", err)
	}
	if _, err := f.Stop(); err == nil {
		t.Error("second stop did not report the fleet as stopped")
	}
}

func TestFleetRejectsBadPorts(t *testing.T) {
	if _, err := fleet.New(fleet.Options{FrontPort: 9500, BasePort: 9000}); err == nil {
		t.Error("front port inside the group range accepted")
	}
}

func TestFleetUnknownConfigFails(t *testing.T) {
	if _, err := fleet.New(fleet.Options{Config: harness.Configuration(99)}); err == nil {
		t.Error("unknown configuration accepted")
	}
}

// TestFleetRecyclesQuarantinedPorts is the port-exhaustion regression
// test: with only exactly Groups ports in the space above BasePort, a
// replacement can only come up by recycling the quarantined group's
// port. Before recycling, nextPort walked monotonically off the end of
// the uint16 space and the replacement spawn failed.
func TestFleetRecyclesQuarantinedPorts(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 2, BasePort: 65534})
	client := f.Client()

	for probe := 1; probe <= 3; probe++ {
		if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
			t.Fatalf("probe %d overflow: %v", probe, err)
		}
		deadline := time.Now().Add(15 * time.Second)
		for f.Stats().Detections < probe {
			if time.Now().After(deadline) {
				t.Fatalf("probe %d not detected", probe)
			}
			_, _, _ = client.Get("/private/secret.html")
		}
		if err := f.AwaitReplenished(probe, 2, 15*time.Second); err != nil {
			t.Fatalf("replacement %d (port recycling failed?): %v", probe, err)
		}
	}

	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replaced != 3 || len(stats.Healthy) != 2 {
		t.Errorf("stats = %+v", stats)
	}
	// Every healthy group must sit on one of the only two legal ports.
	for _, g := range stats.Healthy {
		if g.Port != 65534 && g.Port != 65535 {
			t.Errorf("group %d on port %d, outside the 2-port space", g.ID, g.Port)
		}
	}
	// And the pool still serves.
	for _, e := range f.Audit().Entries() {
		if e.Action != "quarantine+replace" {
			t.Errorf("audit entry action = %q", e.Action)
		}
	}
}

// TestFleetNVariantGroups runs a pool of 3-variant groups: benign load
// must be served cleanly and the planted attack detected and recovered
// from, exactly as at N=2.
func TestFleetNVariantGroups(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 2, Variants: 3})
	client := f.Client()

	stats := f.Stats()
	for _, g := range stats.Healthy {
		if g.Variants != 3 {
			t.Errorf("group %d variants = %d, want 3", g.ID, g.Variants)
		}
		if g.Stack != "uid+address-partition+unshared-files" {
			t.Errorf("group %d stack = %q", g.ID, g.Stack)
		}
	}

	if code, _, err := client.Get("/index.html"); err != nil || code != 200 {
		t.Fatalf("benign request = %d, %v", code, err)
	}
	if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
		t.Fatalf("overflow: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for f.Stats().Detections == 0 {
		if time.Now().After(deadline) {
			t.Fatal("attack not detected at N=3")
		}
		code, body, err := client.Get("/private/secret.html")
		if err == nil && code == 200 && httpd.ContainsSecret(body) {
			t.Fatal("secret leaked through the 3-variant fleet")
		}
	}
	if err := f.AwaitReplenished(1, 2, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detections != 1 || stats.Replaced != 1 {
		t.Errorf("stats = %+v", stats)
	}
	entries := f.Audit().Entries()
	if len(entries) != 1 || entries[0].Variants != 3 {
		t.Errorf("audit = %+v", entries)
	}
}

// TestFleetMixedVariantPool draws each group's N from [2,4]: the pool
// may vary in group size, and every group must still serve.
func TestFleetMixedVariantPool(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 4, Variants: 2, MaxVariants: 4, Seed: 3})
	defer func() { _, _ = f.Stop() }()
	m, err := webbench.Run(f.Net(), f.Port(), webbench.Options{Engines: 4, RequestsPerEngine: 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d under benign load", m.Errors)
	}
	for _, g := range f.Stats().Healthy {
		if g.Variants < 2 || g.Variants > 4 {
			t.Errorf("group %d variants = %d, outside [2,4]", g.ID, g.Variants)
		}
	}
}

// TestFleetCustomStack runs groups whose generated specs carry only
// the UID and unshared-files layers (no address partitioning).
func TestFleetCustomStack(t *testing.T) {
	f := startFleet(t, fleet.Options{
		Groups:   2,
		Variants: 2,
		Stack:    []reexpress.LayerKind{reexpress.LayerUID, reexpress.LayerUnsharedFiles},
	})
	defer func() { _, _ = f.Stop() }()
	if code, _, err := f.Client().Get("/index.html"); err != nil || code != 200 {
		t.Fatalf("request = %d, %v", code, err)
	}
	for _, g := range f.Stats().Healthy {
		if g.Stack != "uid+unshared-files" {
			t.Errorf("group %d stack = %q", g.ID, g.Stack)
		}
	}
}

func TestFleetRejectsBadStack(t *testing.T) {
	if _, err := fleet.New(fleet.Options{Stack: []reexpress.LayerKind{reexpress.LayerKind(99)}}); err == nil {
		t.Error("unknown stack layer kind accepted")
	}
	if _, err := fleet.New(fleet.Options{Stack: []reexpress.LayerKind{reexpress.LayerUID, reexpress.LayerInstructionTags}}); err == nil {
		t.Error("instruction-tag stack layer accepted for server groups")
	}
}
