package fleet

import (
	"fmt"
	"strings"
)

// GroupStat describes one healthy pool member at snapshot time.
type GroupStat struct {
	// ID is the group's fleet-unique number.
	ID int
	// Port is the group's listening port.
	Port uint16
	// Variants is the group's process-group size N.
	Variants int
	// Workers is the group's prefork worker-lane count (its concurrent
	// request capacity; 1 = serial).
	Workers int
	// Stack names the group's variation stack (empty for undiversified
	// configurations).
	Stack string
	// R1 names the group's variant-1 effective UID reexpression
	// function.
	R1 string
	// Inflight is the number of connections currently proxied to it.
	Inflight int64
	// Served is the number of connections ever dispatched to it.
	Served int64
}

// Stats is a point-in-time snapshot of fleet health and dispatch
// counters — the availability numbers the attack experiments report.
type Stats struct {
	// Policy is the active balancing policy.
	Policy Policy
	// Healthy lists the current pool members (after Stop: the roster
	// as it stood at shutdown).
	Healthy []GroupStat
	// Spawned counts groups ever started (initial pool + replacements).
	Spawned int
	// Detections counts group exits with a monitor alarm.
	Detections int
	// Quarantined counts groups removed from the pool (alarmed or
	// otherwise failed) while the fleet was serving.
	Quarantined int
	// Replaced counts fresh groups spawned to fill quarantined slots.
	Replaced int
	// Dispatched counts client connections proxied to a group.
	Dispatched int64
	// DispatchErrors counts client connections the dispatcher could not
	// place on any healthy group.
	DispatchErrors int64
}

// String renders a one-line fleet summary plus a per-group table.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet[%s]: %d healthy / %d spawned, %d detections, %d quarantined, %d replaced, %d dispatched (%d errors)",
		s.Policy, len(s.Healthy), s.Spawned, s.Detections, s.Quarantined, s.Replaced, s.Dispatched, s.DispatchErrors)
	for _, g := range s.Healthy {
		fmt.Fprintf(&b, "\n  group %d port=%d n=%d w=%d r1=%s inflight=%d served=%d", g.ID, g.Port, g.Variants, g.Workers, g.R1, g.Inflight, g.Served)
	}
	return b.String()
}
