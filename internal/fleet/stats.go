package fleet

import (
	"fmt"
	"strings"
	"time"
)

// GroupInfo identifies one live pool member with its age and load —
// the LiveGroups roster rotation schedulers and elastic controllers
// pick victims from.
type GroupInfo struct {
	// ID is the group's fleet-unique number (ascending = spawn order).
	ID int
	// Port is the group's listening port.
	Port uint16
	// Born is the group's spawn time; Age is time since then.
	Born time.Time
	Age  time.Duration
	// Inflight / Served are the group's dispatch counters.
	Inflight int64
	Served   int64
	// Draining reports an administrative retirement in flight: the
	// group takes no new connections and will exit once drained.
	Draining bool
}

// GroupStat describes one healthy pool member at snapshot time.
type GroupStat struct {
	// ID is the group's fleet-unique number.
	ID int
	// Port is the group's listening port.
	Port uint16
	// Variants is the group's process-group size N.
	Variants int
	// Workers is the group's prefork worker-lane count (its concurrent
	// request capacity; 1 = serial).
	Workers int
	// Stack names the group's variation stack (empty for undiversified
	// configurations).
	Stack string
	// R1 names the group's variant-1 effective UID reexpression
	// function.
	R1 string
	// Inflight is the number of connections currently proxied to it.
	Inflight int64
	// Served is the number of connections ever dispatched to it.
	Served int64
}

// Stats is a point-in-time snapshot of fleet health and dispatch
// counters — the availability numbers the attack experiments report.
type Stats struct {
	// Policy is the active balancing policy.
	Policy Policy
	// Healthy lists the current pool members (after Stop: the roster
	// as it stood at shutdown).
	Healthy []GroupStat
	// Spawned counts groups ever started (initial pool + replacements).
	Spawned int
	// Detections counts group exits with a monitor alarm.
	Detections int
	// Quarantined counts groups removed from the pool (alarmed or
	// otherwise failed) while the fleet was serving.
	Quarantined int
	// Replaced counts fresh groups spawned to fill quarantined slots.
	Replaced int
	// Rotated counts healthy groups drained and replaced proactively
	// (moving-target rotation — Rotate).
	Rotated int
	// Shrunk counts groups drained without replacement (elastic
	// scale-down — Shrink).
	Shrunk int
	// Grown counts groups added beyond replacements (elastic scale-up
	// — Grow).
	Grown int
	// Evictions counts variants evicted by quorum degraded mode across
	// all groups (the kernel-side faults the fleet absorbed).
	Evictions int
	// Respawned counts degraded groups drained and replaced at full
	// width after an eviction.
	Respawned int
	// DegradedGroups is the number of groups currently serving on a
	// K-of-N quorum (evicted variant, respawn pending) — the
	// availability exposure the mesh aggregates per pool.
	DegradedGroups int
	// Dispatched counts client connections proxied to a group.
	Dispatched int64
	// DispatchErrors counts client connections the dispatcher could not
	// place on any healthy group.
	DispatchErrors int64
}

// String renders a one-line fleet summary plus a per-group table.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet[%s]: %d healthy / %d spawned, %d detections, %d quarantined, %d replaced, %d rotated, %d dispatched (%d errors)",
		s.Policy, len(s.Healthy), s.Spawned, s.Detections, s.Quarantined, s.Replaced, s.Rotated, s.Dispatched, s.DispatchErrors)
	if s.Evictions > 0 || s.Respawned > 0 || s.DegradedGroups > 0 {
		fmt.Fprintf(&b, ", %d evicted, %d respawned, %d degraded", s.Evictions, s.Respawned, s.DegradedGroups)
	}
	for _, g := range s.Healthy {
		fmt.Fprintf(&b, "\n  group %d port=%d n=%d w=%d r1=%s inflight=%d served=%d", g.ID, g.Port, g.Variants, g.Workers, g.R1, g.Inflight, g.Served)
	}
	return b.String()
}
