package fleet

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"nvariant/internal/harness"
	"nvariant/internal/nvkernel"
)

// AuditEntry is one record of the fleet's recovery trail: a group left
// the pool and what the fleet did about it. Alarm-bearing entries are
// the detected attacks of the evaluation.
type AuditEntry struct {
	// Seq is the entry's position in the append-only log (from 1).
	Seq int
	// Time is when the fleet processed the group's exit.
	Time time.Time
	// GroupID identifies the quarantined group.
	GroupID int
	// Port was the group's listening port.
	Port uint16
	// Config is the group's Table 3 configuration.
	Config harness.Configuration
	// Variants is the group's process-group size N.
	Variants int
	// R1 names the group's variant-1 effective UID reexpression
	// function.
	R1 string
	// Alarm is the monitor's divergence report (nil when the group
	// exited without one, e.g. a variant fault with no alarm attached).
	Alarm *nvkernel.Alarm
	// Detail describes non-alarm exits and replacement failures.
	Detail string
	// Action records the recovery taken ("quarantine+replace" in the
	// steady state; "quarantine" when no replacement was spawned).
	Action string
	// ReplacementID is the fresh group's id, or -1 if none was spawned.
	ReplacementID int
	// ReplacementR1 names the replacement's newly selected variant-1
	// function (empty if none).
	ReplacementR1 string
}

// String renders the entry as one audit-log line.
func (e AuditEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s group=%d port=%d config=%q n=%d r1=%s",
		e.Seq, e.Time.Format(time.RFC3339Nano), e.GroupID, e.Port, e.Config, e.Variants, e.R1)
	if e.Alarm != nil {
		fmt.Fprintf(&b, " alarm=%s syscall=%s variant=%d", e.Alarm.Reason, e.Alarm.Syscall, e.Alarm.Variant)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " detail=%q", e.Detail)
	}
	fmt.Fprintf(&b, " action=%s", e.Action)
	if e.ReplacementID >= 0 {
		fmt.Fprintf(&b, " replacement=%d r1'=%s", e.ReplacementID, e.ReplacementR1)
	}
	return b.String()
}

// AuditLog is the fleet's append-only recovery record. Entries are
// only ever appended, never mutated or removed; Seq numbers are dense
// and strictly increasing.
type AuditLog struct {
	mu      sync.Mutex
	entries []AuditEntry
	mirror  io.Writer
}

// newAuditLog builds a log, optionally mirroring each entry as a line
// to w (e.g. os.Stderr for the demo, a file for a deployment).
func newAuditLog(w io.Writer) *AuditLog {
	return &AuditLog{mirror: w}
}

// append stamps and stores the entry.
func (l *AuditLog) append(e AuditEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.entries) + 1
	e.Time = time.Now()
	l.entries = append(l.entries, e)
	if l.mirror != nil {
		fmt.Fprintln(l.mirror, e.String())
	}
}

// Entries returns a copy of the log.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AuditEntry(nil), l.entries...)
}

// Len returns the number of recorded entries.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Alarms returns only the alarm-bearing entries — the detected attacks.
func (l *AuditLog) Alarms() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Alarm != nil {
			out = append(out, e)
		}
	}
	return out
}
