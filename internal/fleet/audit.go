package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"nvariant/internal/harness"
	"nvariant/internal/nvkernel"
)

// AuditEntry is one record of the fleet's recovery trail: a group left
// the pool and what the fleet did about it. Alarm-bearing entries are
// the detected attacks of the evaluation. Each entry carries two
// clocks: VTime, the group's deterministic virtual time (in-matrix,
// reproducible under a seed), and the wall-clock Time/Alarm.At pair
// the ops surface derives alarm-latency and exposure-window
// histograms from — wall timestamps never enter campaign JSON.
type AuditEntry struct {
	// Seq is the entry's position in the append-only log (from 1).
	Seq int `json:"seq"`
	// Time is when the fleet processed the group's exit — replacement
	// registration time for "+replace" actions.
	Time time.Time `json:"time"`
	// GroupID identifies the quarantined group.
	GroupID int `json:"group_id"`
	// Port was the group's listening port.
	Port uint16 `json:"port"`
	// Config is the group's Table 3 configuration.
	Config harness.Configuration `json:"config"`
	// Variants is the group's process-group size N.
	Variants int `json:"variants"`
	// R1 names the group's variant-1 effective UID reexpression
	// function.
	R1 string `json:"r1"`
	// VTime is the group's virtual clock at teardown — the
	// deterministic timestamp of the exit.
	VTime uint32 `json:"vtime"`
	// Alarm is the monitor's divergence report (nil when the group
	// exited without one, e.g. a variant fault with no alarm attached).
	Alarm *nvkernel.Alarm `json:"alarm,omitempty"`
	// Detail describes non-alarm exits and replacement failures.
	Detail string `json:"detail,omitempty"`
	// Action records the recovery taken ("quarantine+replace" in the
	// steady state; "quarantine" when no replacement was spawned).
	Action string `json:"action"`
	// ReplacementID is the fresh group's id, or -1 if none was spawned.
	ReplacementID int `json:"replacement_id"`
	// ReplacementR1 names the replacement's newly selected variant-1
	// function (empty if none).
	ReplacementR1 string `json:"replacement_r1,omitempty"`
}

// String renders the entry as one audit-log line.
func (e AuditEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s group=%d port=%d config=%q n=%d r1=%s vtime=%d",
		e.Seq, e.Time.Format(time.RFC3339Nano), e.GroupID, e.Port, e.Config, e.Variants, e.R1, e.VTime)
	if e.Alarm != nil {
		fmt.Fprintf(&b, " alarm=%s syscall=%s variant=%d", e.Alarm.Reason, e.Alarm.Syscall, e.Alarm.Variant)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " detail=%q", e.Detail)
	}
	fmt.Fprintf(&b, " action=%s", e.Action)
	if e.ReplacementID >= 0 {
		fmt.Fprintf(&b, " replacement=%d r1'=%s", e.ReplacementID, e.ReplacementR1)
	}
	return b.String()
}

// AuditLog is the fleet's append-only recovery record. Entries are
// only ever appended, never mutated or removed; Seq numbers are dense
// and strictly increasing.
type AuditLog struct {
	mu      sync.Mutex
	entries []AuditEntry
	mirror  io.Writer
}

// newAuditLog builds a log, optionally mirroring each entry as a line
// to w (e.g. os.Stderr for the demo, a file for a deployment).
func newAuditLog(w io.Writer) *AuditLog {
	return &AuditLog{mirror: w}
}

// append stamps and stores the entry.
func (l *AuditLog) append(e AuditEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.entries) + 1
	e.Time = time.Now()
	l.entries = append(l.entries, e)
	if l.mirror != nil {
		fmt.Fprintln(l.mirror, e.String())
	}
}

// Entries returns a copy of the log.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AuditEntry(nil), l.entries...)
}

// Len returns the number of recorded entries.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// TailNDJSON renders entries with Seq > since as newline-delimited
// JSON, at most max entries when max > 0, returning the rendered
// bytes and the last sequence number included (= since when nothing
// qualified). It implements obs.AuditSource, so /audit pollers can
// resume from their last seen entry with ?since=N.
func (l *AuditLog) TailNDJSON(since, max int) ([]byte, int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	last := since
	var buf []byte
	for _, e := range l.entries {
		if e.Seq <= since {
			continue
		}
		line, err := json.Marshal(e)
		if err != nil {
			return nil, since, fmt.Errorf("audit: marshal entry %d: %w", e.Seq, err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		last = e.Seq
		if max > 0 && last-since >= max {
			break
		}
	}
	return buf, last, nil
}

// MultiAudit merges the recovery logs of several pools into one
// NDJSON tail for the ops /audit endpoint — the fleet-of-fleets view,
// so an operator watching a mesh sees every pool's quarantines and
// rotations, not just the newest fleet's. Entries are ordered by
// virtual time (each group's deterministic teardown stamp), then pool
// name, then per-log sequence; each line gains a "pool" field naming
// its source.
//
// The since/n cursor pages by position in the merged ordering. A pool
// appending a low-vtime entry after a poll can shift positions, so
// the tail is best-effort for live operators — the per-log AuditLog
// remains the exact record.
type MultiAudit struct {
	mu   sync.Mutex
	logs []namedAudit
}

type namedAudit struct {
	name string
	log  *AuditLog
}

// NewMultiAudit returns an empty merged audit source.
func NewMultiAudit() *MultiAudit { return &MultiAudit{} }

// Attach adds one pool's log under the given name. Safe to call while
// the source is being polled; logs are never detached (a retired
// pool's history stays visible).
func (m *MultiAudit) Attach(name string, l *AuditLog) {
	if l == nil {
		return
	}
	m.mu.Lock()
	m.logs = append(m.logs, namedAudit{name: name, log: l})
	m.mu.Unlock()
}

// taggedEntry is one merged line: the audit entry plus its pool name.
type taggedEntry struct {
	Pool string `json:"pool"`
	AuditEntry
}

// TailNDJSON implements obs.AuditSource over the merged ordering.
func (m *MultiAudit) TailNDJSON(since, max int) ([]byte, int, error) {
	m.mu.Lock()
	logs := append([]namedAudit(nil), m.logs...)
	m.mu.Unlock()
	if len(logs) == 0 {
		return nil, since, fmt.Errorf("no pool logs attached yet")
	}
	var merged []taggedEntry
	for _, nl := range logs {
		for _, e := range nl.log.Entries() {
			merged = append(merged, taggedEntry{Pool: nl.name, AuditEntry: e})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.VTime != b.VTime {
			return a.VTime < b.VTime
		}
		if a.Pool != b.Pool {
			return a.Pool < b.Pool
		}
		return a.Seq < b.Seq
	})
	last := since
	var buf []byte
	for i, e := range merged {
		if i < since {
			continue
		}
		line, err := json.Marshal(e)
		if err != nil {
			return nil, since, fmt.Errorf("audit: marshal merged entry %d: %w", i, err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		last = i + 1
		if max > 0 && last-since >= max {
			break
		}
	}
	return buf, last, nil
}

// Alarms returns only the alarm-bearing entries — the detected attacks.
func (l *AuditLog) Alarms() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Alarm != nil {
			out = append(out, e)
		}
	}
	return out
}
