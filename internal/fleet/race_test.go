package fleet_test

// Race regression tests for the fleet's hot path: concurrent dispatch
// through the front port while attack-triggered quarantine/replacement
// churns the pool and observers read stats and the audit log. Run with
// -race (CI does).

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/fleet"
	"nvariant/internal/testutil"
	"nvariant/internal/vos"
)

func TestFleetConcurrentDispatchRace(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 3})

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Legitimate clients hammering the dispatcher.
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := f.Client()
			for i := 0; i < 25; i++ {
				_, _, _ = client.Get("/index.html")
			}
		}()
	}

	// An attacker interleaving probes (forcing quarantine churn). Poll
	// rather than Eventually: this runs off the test goroutine, and the
	// final counter assertions below catch a missed detection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := f.Client()
		for i := 0; i < 2; i++ {
			_, _ = client.Raw(attack.ForgeUIDPayload(vos.Root))
			want := i + 1
			_ = testutil.Poll(10*time.Second, func() bool {
				if f.Stats().Detections >= want {
					return true
				}
				_, _, _ = client.Get("/private/secret.html")
				return false
			})
		}
	}()

	// Observers reading stats and audit concurrently (stopped after
	// the clients and attacker are done).
	var obsWg sync.WaitGroup
	for o := 0; o < 2; o++ {
		obsWg.Add(1)
		go func() {
			defer obsWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = f.Stats().String()
					_ = f.Audit().Entries()
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
	}

	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent dispatch did not finish")
	}
	close(stop)
	obsWg.Wait()

	// Detection is counted before the replacement registers; wait for
	// the pool to settle so the final roster assertion isn't racy.
	if err := f.AwaitReplenished(2, 3, 15*time.Second); err != nil {
		t.Fatal(err)
	}

	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detections != 2 {
		t.Errorf("detections = %d, want 2", stats.Detections)
	}
	if len(stats.Healthy) != 3 {
		t.Errorf("healthy at end = %d, want 3", len(stats.Healthy))
	}
}

// TestFleetProxyPooledPayloadIntegrity hammers the dispatcher's
// zero-copy proxy pumps with concurrent clients and verifies that no
// response payload is ever observed mutated after delivery: each body
// is checked on arrival and re-checked after the client holds it
// across further traffic. The proxy hands pooled buffers between the
// two wires with SendOwned, so an ownership bug (a buffer recycled
// while a client still reads it) fails this test — and trips -race.
func TestFleetProxyPooledPayloadIntegrity(t *testing.T) {
	f := startFleet(t, fleet.Options{Groups: 2})
	const want = "<html><body><h1>It works!</h1></body></html>\n"

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := f.Client()
			held := make([][]byte, 0, 5)
			for i := 0; i < 40; i++ {
				code, body, err := client.Get("/index.html")
				if err != nil || code != 200 {
					errs <- fmt.Errorf("client %d request %d: %d %v", c, i, code, err)
					return
				}
				if string(body) != want {
					errs <- fmt.Errorf("client %d request %d: body corrupted on delivery: %q", c, i, body)
					return
				}
				held = append(held, body)
				if len(held) == cap(held) {
					// Re-verify payloads held across later requests:
					// buffer recycling must never scribble on them.
					for _, h := range held {
						if string(h) != want {
							errs <- fmt.Errorf("client %d: held body mutated: %q", c, h)
							return
						}
					}
					held = held[:0]
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats, err := f.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detections != 0 {
		t.Errorf("false detections under benign load: %+v", stats)
	}
}

func TestFleetStopDuringDispatchRace(t *testing.T) {
	before := runtime.NumGoroutine()
	f := startFleet(t, fleet.Options{Groups: 2})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := f.Client()
			for i := 0; i < 50; i++ {
				if _, _, err := client.Get("/index.html"); err != nil {
					return // fleet is stopping; drops are expected
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("clients hung after fleet stop")
	}

	// Stop waited for every fleet goroutine; the groups' kernel
	// goroutines must have drained too.
	testutil.CheckNoGoroutineLeak(t, before, 2)
}
