// Package fleet scales the paper's single two-variant process group to
// a pool of M independent N-variant groups behind one dispatcher — the
// deployment story the paper's monitor needs to *survive* detection.
//
// Each pool member is a harness-built Table 3 configuration listening
// on its own port of a shared simulated network. A front listener
// load-balances incoming client connections across healthy groups
// (round-robin or least-loaded). When any group's monitor raises an
// alarm, the fleet quarantines the group, records the event in an
// append-only audit log, and spawns a fresh replacement whose UID
// reexpression functions are newly selected — so a captured-and-killed
// group tells an attacker nothing about the pool that replaces it, and
// the service degrades by one group for milliseconds instead of
// collapsing. Related work quantifies exactly this construction:
// algorithm/implementation-diverse replica pools degrade gracefully
// where a monoculture collapses under a single exploit (arXiv:2111.10090,
// arXiv:1904.12409).
package fleet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/nvkernel"
	"nvariant/internal/obs"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
)

// Default option values.
const (
	// DefaultGroups is the default pool size.
	DefaultGroups = 4
	// DefaultFrontPort is the dispatcher's client-facing port.
	DefaultFrontPort uint16 = 80
	// DefaultBasePort is where group ports are allocated from. Fresh
	// ports are taken monotonically, and a quarantined group's port is
	// recycled once its listener has closed — so ports identify pool
	// slots over time, not groups (group IDs are the never-reused
	// identifier).
	DefaultBasePort uint16 = 9000
)

// Options configures a fleet.
type Options struct {
	// Groups is the pool size M (default DefaultGroups).
	Groups int
	// Config is the per-group Table 3 configuration (default
	// Config4UIDVariation, the paper's full system).
	Config harness.Configuration
	// Variants is the per-group variant count N (default 2, the
	// paper's deployment). Detection effectiveness grows with N; every
	// group's DiversitySpec is generated at this width.
	Variants int
	// MaxVariants, when greater than Variants, makes every spawned
	// group (initial or replacement) draw its own N uniformly from
	// [Variants, MaxVariants] — the pool then varies in group size,
	// not just in reexpression masks.
	MaxVariants int
	// Stack is the variation stack generated for each Config4 group's
	// spec (default: uid + address-partition + unshared-files, the
	// paper's full §4 deployment).
	Stack []reexpress.LayerKind
	// Workers is the per-group prefork worker-lane count (0/1 = serial
	// groups): each group serves Workers connections concurrently, and
	// the least-loaded policy weighs in-flight counts against it.
	Workers int
	// Server configures the httpd program of every group.
	Server httpd.Options
	// Policy selects the balancing policy (default RoundRobin).
	Policy Policy
	// FrontPort is the dispatcher's listening port (default
	// DefaultFrontPort).
	FrontPort uint16
	// BasePort is the first group port (default DefaultBasePort).
	BasePort uint16
	// PortSpan, when non-zero, bounds the pool's port budget: group
	// ports are drawn from [BasePort, BasePort+PortSpan) and spawn
	// fails cleanly when the budget is exhausted with no quarantined
	// port free to recycle. A mesh slices one shared port space into
	// per-pool spans this way, so pools never collide even as elastic
	// sizing grows them.
	PortSpan uint16
	// Latency is the simulated one-way wire latency of the shared
	// network.
	Latency time.Duration
	// Seed drives reexpression-mask selection; 0 means a fixed default
	// so runs are reproducible unless explicitly varied.
	Seed int64
	// AuditTo optionally mirrors each audit entry as a line (e.g.
	// os.Stderr for demos).
	AuditTo io.Writer
	// Faults is an optional fault injector installed on the fleet's
	// shared network before any group starts — the chaos campaign's
	// way of disturbing the whole data plane (dispatch proxying
	// included).
	Faults simnet.FaultInjector
	// Kernel holds extra kernel options every spawned group (initial
	// or replacement) is built with — e.g. a chaos fault hook.
	Kernel []nvkernel.Option
	// Quorum, when K ≥ 1, runs every group's rendezvous in K-of-N
	// degraded mode: a variant fault with ≥ K live survivors evicts the
	// faulted variant instead of killing the group, the fleet records
	// the eviction in the audit log, and the degraded group is drained
	// and respawned in the background with a freshly generated spec
	// (the moving-target rotate machinery). 0 keeps the unanimous
	// contract: any variant fault kills the group.
	Quorum int
	// Obs, when set, instruments the whole stack under this fleet:
	// fleet dispatch/quarantine series plus the kernel, simnet, and
	// httpd metric sets of every group (replacements included) are
	// registered on it. Nil runs uninstrumented.
	Obs *obs.Registry
}

// withDefaults fills zero-valued options.
func (o Options) withDefaults() Options {
	if o.Groups <= 0 {
		o.Groups = DefaultGroups
	}
	if o.Config == 0 {
		o.Config = harness.Config4UIDVariation
	}
	if o.Variants <= 0 {
		o.Variants = 2
	}
	// Server needs no defaulting: httpd.New fills ConfigPath itself,
	// and overwriting the struct here would discard caller fields.
	if o.FrontPort == 0 {
		o.FrontPort = DefaultFrontPort
	}
	if o.BasePort == 0 {
		o.BasePort = DefaultBasePort
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// errClosed reports an operation against a stopped fleet.
var errClosed = errors.New("fleet: stopped")

// Fleet is a dispatcher-fronted pool of N-variant server groups with
// quarantine-on-alarm recovery.
type Fleet struct {
	opts  Options
	net   *simnet.Network
	front *simnet.Listener
	audit *AuditLog

	mu     sync.Mutex
	groups []*group
	// pool is the dispatcher's lock-free snapshot of groups: an
	// immutable slice republished (under mu) on every roster change,
	// so pick() on the per-connection hot path never contends with
	// spawn/quarantine bookkeeping.
	pool        atomic.Pointer[[]*group]
	nextID      int
	nextPort    uint16
	freePorts   []uint16
	spawned     int
	detections  int
	quarantined int
	replaced    int
	rotated     int
	shrunk      int
	grown       int
	evictions   int
	respawned   int
	closed      bool

	// rngMu guards rng separately from mu: mask selection scans a
	// ~65k-sample corpus and must not stall the dispatcher's pick().
	rngMu sync.Mutex
	rng   *rand.Rand

	rr             atomic.Uint64
	dispatched     atomic.Int64
	dispatchErrors atomic.Int64
	// alarms / quorumKills mirror the mu-guarded detection ledger as
	// lock-free counters: the mesh session snapshots them around each
	// dispatch to classify transport errors (quarantine window vs
	// quorum-lost kill) without taking the fleet lock on the hot path.
	alarms      atomic.Uint64
	quorumKills atomic.Uint64
	wg          sync.WaitGroup

	// obs is the registered metric set, nil when Options.Obs is unset.
	obs *metrics
}

// New builds the pool, starts every group, and begins dispatching on
// the front port. Group 0 runs the paper's published reexpression pair;
// every further group (initial or replacement) runs freshly selected
// functions, so the pool is representation-diverse from the start.
func New(opts Options) (*Fleet, error) {
	opts = opts.withDefaults()
	if opts.FrontPort >= opts.BasePort {
		return nil, fmt.Errorf("fleet: front port %d must be below base port %d", opts.FrontPort, opts.BasePort)
	}
	for _, k := range opts.Stack {
		switch k {
		case reexpress.LayerUID, reexpress.LayerAddressPartition, reexpress.LayerUnsharedFiles:
			// Deployable by the monitor kernel.
		case reexpress.LayerInstructionTags:
			return nil, fmt.Errorf("fleet: instruction-tag layers deploy on the isa substrate, not in server groups")
		default:
			return nil, fmt.Errorf("fleet: unknown stack layer kind %d", k)
		}
	}
	f := &Fleet{
		opts:     opts,
		net:      simnet.New(opts.Latency),
		audit:    newAuditLog(opts.AuditTo),
		nextPort: opts.BasePort,
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	if opts.Obs != nil {
		// Thread the registry through every layer before the first
		// group starts. The mutated f.opts flow to replacements too via
		// specFor, so the whole fleet lifetime is instrumented.
		f.obs = newMetrics(opts.Obs, f)
		f.net.SetMetrics(simnet.NewMetrics(opts.Obs))
		kopts := make([]nvkernel.Option, len(opts.Kernel), len(opts.Kernel)+1)
		copy(kopts, opts.Kernel)
		f.opts.Kernel = append(kopts, nvkernel.WithMetrics(nvkernel.NewMetrics(opts.Obs)))
		f.opts.Server.Metrics = httpd.NewMetrics(opts.Obs)
	}
	if opts.Faults != nil {
		f.net.SetFaultInjector(opts.Faults)
	}
	f.pool.Store(new([]*group))
	for i := 0; i < opts.Groups; i++ {
		if _, err := f.spawn(); err != nil {
			_, _ = f.Stop()
			return nil, fmt.Errorf("fleet: start group %d: %w", i, err)
		}
	}
	front, err := f.net.Listen(opts.FrontPort)
	if err != nil {
		_, _ = f.Stop()
		return nil, fmt.Errorf("fleet: front listener: %w", err)
	}
	f.front = front
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// spawn starts one fresh group and registers it in the pool.
func (f *Fleet) spawn() (*group, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errClosed
	}
	id := f.nextID
	f.nextID++
	var port uint16
	if k := len(f.freePorts); k > 0 {
		// Recycle a quarantined group's port: its listener closed
		// before the group's exit was processed, so the slot is free
		// again and long-running fleets never walk off the end of the
		// port space.
		port = f.freePorts[k-1]
		f.freePorts = f.freePorts[:k-1]
	} else {
		port = f.nextPort
		if port < f.opts.BasePort {
			// nextPort wrapped the uint16 space and no quarantined port
			// is free to recycle: continuing would collide with the
			// front port or remap to the default. Fail the spawn; the
			// audit log records it.
			f.mu.Unlock()
			return nil, fmt.Errorf("fleet: group port space exhausted")
		}
		if span := f.opts.PortSpan; span > 0 && int(port)-int(f.opts.BasePort) >= int(span) {
			// The pool's slice of a shared port budget is spent. Live
			// ports never exceed the peak pool size (exited groups
			// recycle theirs), so this only fires when the pool really
			// holds PortSpan groups at once.
			f.mu.Unlock()
			return nil, fmt.Errorf("fleet: port budget [%d,%d) exhausted", f.opts.BasePort, int(f.opts.BasePort)+int(span))
		}
		f.nextPort++
	}
	f.mu.Unlock()

	// Generate the spec and build outside the pool lock: mask
	// selection with its property checks and group startup both take
	// real time, and dispatch must keep flowing to the survivors
	// meanwhile. Only configurations that deploy a variation stack get
	// a spec; others must not advertise functions they don't deploy.
	spec := f.specForGroup(id)
	r1 := "(none)"
	variants := f.opts.Config.Variants()
	if spec != nil {
		r1 = spec.VariantName(1)
		variants = spec.N()
	}
	h, err := harness.StartSpec(f.net, f.specFor(id, port, spec))
	if err != nil {
		f.mu.Lock()
		f.freePorts = append(f.freePorts, port)
		f.mu.Unlock()
		return nil, err
	}
	workers := f.opts.Workers
	if workers < 1 {
		workers = 1
	}
	g := &group{id: id, port: port, spec: spec, variants: variants, workers: workers, r1: r1, handle: h, born: time.Now()}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		_, _ = h.Stop()
		return nil, errClosed
	}
	f.groups = append(f.groups, g)
	f.publishLocked()
	f.spawned++
	f.mu.Unlock()

	f.wg.Add(1)
	go f.watch(g)
	return g, nil
}

// watch waits for the group to terminate and runs recovery.
func (f *Fleet) watch(g *group) {
	defer f.wg.Done()
	<-g.handle.Done()
	f.groupExited(g)
}

// groupExited is the quarantine path: prune the group, account the
// alarm, spawn a replacement, and append the audit record. A clean
// exit during fleet shutdown is the one case that leaves no trace.
func (f *Fleet) groupExited(g *group) {
	res, err := g.handle.Result()
	alarmed := res != nil && res.Alarm != nil
	clean := err == nil && res != nil && res.Clean

	f.mu.Lock()
	stopping := f.closed
	// An alarm raised while the group was draining still counts as a
	// detection — the monitor's verdict outranks the administrative
	// retirement that happened to be in flight.
	mode := g.retire
	if alarmed {
		mode = retireNone
		f.detections++
		f.alarms.Add(1)
		if res.Alarm.Reason == nvkernel.ReasonQuorumLost {
			f.quorumKills.Add(1)
		}
		if f.obs != nil {
			f.obs.detections.Inc()
		}
	}
	if !stopping {
		// During shutdown the roster is frozen so the final Stats
		// report the pool as it stood; while serving, a dead group is
		// pruned immediately so the dispatcher stops picking it, and
		// its port — whose listener closed when the monitor tore the
		// group down — returns to the free list for the replacement.
		f.removeLocked(g)
		f.freePorts = append(f.freePorts, g.port)
		switch {
		case mode == retireRotate:
			f.rotated++
			if f.obs != nil {
				f.obs.rotations.Inc()
			}
		case mode == retireRespawn:
			f.respawned++
			if f.obs != nil {
				f.obs.respawns.Inc()
			}
		case mode == retireShrink:
			f.shrunk++
		case alarmed || !clean:
			f.quarantined++
			if f.obs != nil {
				f.obs.quarantines.Inc()
			}
		}
		if f.obs != nil {
			// The group's whole life is how long one mask set was
			// exposed to attackers — the moving-target metric rotation
			// exists to shrink.
			f.obs.lifetime.Observe(time.Since(g.born))
		}
	}
	f.mu.Unlock()

	if stopping {
		if alarmed {
			// An attack raced fleet shutdown: still record it.
			entry := f.entryFor(g, "quarantine (fleet stopping)")
			entry.Alarm = res.Alarm
			entry.VTime = res.VTime
			f.audit.append(entry)
		}
		return
	}

	act := "quarantine"
	entry := f.entryFor(g, act)
	if res != nil {
		entry.VTime = res.VTime
	}
	switch {
	case alarmed:
		entry.Alarm = res.Alarm
	case mode == retireRotate:
		act = "rotate"
		entry.Action = act
		entry.Detail = "proactive rotation (drained)"
	case mode == retireRespawn:
		act = "respawn"
		entry.Action = act
		entry.Detail = "degraded group respawned at full width (drained)"
	case mode == retireShrink:
		// Elastic downsizing: the drained slot is retired for good, so
		// no replacement is spawned and the record is final here.
		entry.Action = "shrink"
		entry.Detail = "elastic shrink (drained)"
		f.audit.append(entry)
		return
	case clean:
		// e.g. a MaxConns server finishing its budget: not an attack,
		// but the slot still needs refilling.
		act = "departed"
		entry.Action = act
		entry.Detail = "clean exit"
	case err != nil:
		entry.Detail = err.Error()
	default:
		entry.Detail = "group exited without result"
	}

	repl, spawnErr := f.spawn()
	switch {
	case spawnErr == nil:
		f.mu.Lock()
		f.replaced++
		f.mu.Unlock()
		if f.obs != nil {
			f.obs.replacements.Inc()
			if alarmed {
				// Exposure window: the attack was detected at Alarm.At;
				// the slot is healthy again now that the replacement is
				// registered.
				f.obs.exposure.Observe(time.Since(res.Alarm.At))
			}
		}
		entry.Action = act + "+replace"
		entry.ReplacementID = repl.id
		entry.ReplacementR1 = repl.r1
	case errors.Is(spawnErr, errClosed):
		// Shutdown won the race; the bare record is right.
	default:
		entry.Detail = joinDetail(entry.Detail, "replacement failed: "+spawnErr.Error())
	}
	f.audit.append(entry)
}

// entryFor builds the base audit record for a departed group; callers
// fill Alarm/Detail.
func (f *Fleet) entryFor(g *group, action string) AuditEntry {
	return AuditEntry{
		GroupID:       g.id,
		Port:          g.port,
		Config:        f.opts.Config,
		Variants:      g.variants,
		R1:            g.r1,
		Action:        action,
		ReplacementID: -1,
	}
}

func joinDetail(a, b string) string {
	if a == "" {
		return b
	}
	return a + "; " + b
}

// removeLocked prunes g from the healthy pool. Caller holds f.mu.
func (f *Fleet) removeLocked(g *group) {
	for i, cur := range f.groups {
		if cur == g {
			f.groups = append(f.groups[:i], f.groups[i+1:]...)
			f.publishLocked()
			return
		}
	}
}

// publishLocked republishes the dispatcher's snapshot of the healthy
// pool, excluding draining groups (they finish their in-flight
// connections but take no new ones). Caller holds f.mu. The stored
// slice is a fresh copy and never mutated afterwards, so pick() may
// read it without synchronization.
func (f *Fleet) publishLocked() {
	snap := make([]*group, 0, len(f.groups))
	for _, g := range f.groups {
		if g.retire == retireNone {
			snap = append(snap, g)
		}
	}
	f.pool.Store(&snap)
}

// isClosed reports whether Stop has begun.
func (f *Fleet) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// Net returns the shared network clients dial.
func (f *Fleet) Net() *simnet.Network { return f.net }

// Port returns the dispatcher's client-facing port.
func (f *Fleet) Port() uint16 { return f.opts.FrontPort }

// Client returns an HTTP client aimed at the dispatcher.
func (f *Fleet) Client() *httpd.Client { return httpd.NewClient(f.net, f.opts.FrontPort) }

// Audit returns the fleet's append-only recovery log.
func (f *Fleet) Audit() *AuditLog { return f.audit }

// Stats snapshots fleet health and dispatch counters.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		Policy:         f.opts.Policy,
		Spawned:        f.spawned,
		Detections:     f.detections,
		Quarantined:    f.quarantined,
		Replaced:       f.replaced,
		Rotated:        f.rotated,
		Shrunk:         f.shrunk,
		Grown:          f.grown,
		Evictions:      f.evictions,
		Respawned:      f.respawned,
		Dispatched:     f.dispatched.Load(),
		DispatchErrors: f.dispatchErrors.Load(),
	}
	for _, g := range f.groups {
		if g.degraded.Load() {
			// Degraded groups (draining toward respawn included) still
			// serve on their quorum; the count is the availability
			// exposure the mesh aggregates.
			s.DegradedGroups++
		}
		if g.retire != retireNone {
			// Draining groups are still finishing in-flight work but no
			// longer count toward serving capacity.
			continue
		}
		stack := ""
		if g.spec != nil {
			stack = g.spec.StackString()
		}
		s.Healthy = append(s.Healthy, GroupStat{
			ID:       g.id,
			Port:     g.port,
			Variants: g.variants,
			Workers:  g.workers,
			Stack:    stack,
			R1:       g.r1,
			Inflight: g.inflight.Load(),
			Served:   g.served.Load(),
		})
	}
	return s
}

// ShutdownGroup closes the listening port of the healthy group with
// the given id, as a crashing machine would: the group exits, its
// watcher prunes and replaces it, and in-flight connections drop. It
// returns false when no healthy group has that id. This is the chaos
// campaign's group-restart-under-load fault (the paper's launcher
// killing a process group, aimed at one pool member).
func (f *Fleet) ShutdownGroup(id int) bool {
	f.mu.Lock()
	var victim *group
	for _, g := range f.groups {
		if g.id == id {
			victim = g
			break
		}
	}
	f.mu.Unlock()
	if victim == nil {
		return false
	}
	return f.net.ShutdownPort(victim.port) == nil
}

// OldestGroupID returns the id of the longest-lived healthy group, or
// -1 for an empty pool — the deterministic restart victim chaos plans
// use (ids are never reused, so the minimum id is the oldest group).
func (f *Fleet) OldestGroupID() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldest := -1
	for _, g := range f.groups {
		if g.retire == retireNone && (oldest == -1 || g.id < oldest) {
			oldest = g.id
		}
	}
	return oldest
}

// LiveGroups enumerates the live pool members in spawn order (ids are
// never reused, so ascending id is oldest-first) with their ages and
// load — the roster a rotation scheduler picks victims from. Draining
// groups are included, flagged, so callers can see retirements in
// flight.
func (f *Fleet) LiveGroups() []GroupInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	out := make([]GroupInfo, 0, len(f.groups))
	for _, g := range f.groups {
		out = append(out, GroupInfo{
			ID:       g.id,
			Port:     g.port,
			Born:     g.born,
			Age:      now.Sub(g.born),
			Inflight: g.inflight.Load(),
			Served:   g.served.Load(),
			Draining: g.retire != retireNone,
		})
	}
	return out
}

// HealthyCount returns the number of groups currently in the dispatch
// pool (live minus draining). Lock-free: it reads the published
// snapshot, so rotation schedulers may call it on hot paths.
func (f *Fleet) HealthyCount() int { return len(*f.pool.Load()) }

// DegradedCount returns the number of dispatch-pool groups currently
// serving on a K-of-N quorum (evicted variant, respawn pending).
// Lock-free like HealthyCount, so availability gauges may sample it.
func (f *Fleet) DegradedCount() int {
	n := 0
	for _, g := range *f.pool.Load() {
		if g.degraded.Load() {
			n++
		}
	}
	return n
}

// AlarmCount returns how many monitor alarms the fleet has quarantined
// on so far. Lock-free, so dispatch paths may snapshot it around a
// request to attribute a transport error to a quarantine window.
func (f *Fleet) AlarmCount() uint64 { return f.alarms.Load() }

// QuorumLostCount returns how many of those alarms were quorum-lost
// kills (a faulted variant's eviction would have dropped the group
// below K). Lock-free like AlarmCount.
func (f *Fleet) QuorumLostCount() uint64 { return f.quorumKills.Load() }

// Grow spawns one additional group with a freshly generated spec and
// returns its id — the elastic scale-up hook. The new group enters the
// dispatch pool as soon as it is listening.
func (f *Fleet) Grow() (int, error) {
	g, err := f.spawn()
	if err != nil {
		return -1, err
	}
	f.mu.Lock()
	f.grown++
	f.mu.Unlock()
	return g.id, nil
}

// Rotate drains the healthy group with the given id and replaces it
// with a freshly generated spec — proactive moving-target rotation, in
// contrast to ShutdownGroup's crash semantics. The group is removed
// from the dispatch snapshot immediately (no new connections), its
// in-flight connections are given drainFor to finish, and then its
// listener is closed; the watcher spawns the replacement and records a
// "rotate+replace" audit entry. An error means no live non-draining
// group had that id.
func (f *Fleet) Rotate(id int, drainFor time.Duration) error {
	return f.retire(id, retireRotate, drainFor)
}

// Shrink drains the healthy group with the given id and retires its
// slot without replacement — the elastic scale-down hook. Its port
// returns to the recycling pool.
func (f *Fleet) Shrink(id int, drainFor time.Duration) error {
	return f.retire(id, retireShrink, drainFor)
}

// respawnDrain bounds how long a degraded group's in-flight
// connections get to finish before the respawn closes its listener.
const respawnDrain = 2 * time.Second

// variantEvicted is the kernel's per-group eviction hook (threaded via
// WithEvictionHook in specFor): group id lost a variant to a fault but
// survived on its quorum. The fleet appends an "evict" audit entry,
// marks the group degraded (the availability accounting mesh pools
// aggregate), and — on the group's first eviction — schedules a
// background respawn: the degraded group is drained and replaced by a
// fresh full-width group with newly selected reexpression functions,
// reusing the moving-target rotate machinery. An evicted slot never
// rejoins its old group; the whole group is re-expressed.
//
// Called from a lane monitor goroutine with no kernel locks held, so
// the retire (which waits out the drain) must run in the background:
// the monitor keeps serving the surviving quorum meanwhile.
func (f *Fleet) variantEvicted(id int, ev nvkernel.Eviction) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	var g *group
	for _, cur := range f.groups {
		if cur.id == id {
			g = cur
			break
		}
	}
	if g == nil {
		// The group already left the roster (quarantine racing the
		// eviction): nothing to degrade.
		f.mu.Unlock()
		return
	}
	f.evictions++
	first := !g.degraded.Swap(true)
	entry := f.entryFor(g, "evict")
	entry.VTime = ev.VTime
	entry.Detail = fmt.Sprintf("variant %d evicted (%s, worker %d): %d live; %s",
		ev.Variant, ev.Kind, ev.Worker, ev.Live, ev.Detail)
	if first {
		// wg.Add under mu, ordered against Stop's closed=true: either
		// this respawn is tracked before Stop waits, or closed was seen
		// above and no goroutine starts.
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			// Already-draining and shutdown races surface as errors here;
			// both mean someone else is tearing the group down.
			_ = f.retire(id, retireRespawn, respawnDrain)
		}()
	}
	f.mu.Unlock()
	f.audit.append(entry)
}

// retire marks the group as draining, waits (bounded) for its
// in-flight connections to finish, and closes its listener. The exit
// is then processed by the group's watcher like any other, with the
// retire mode steering accounting and replacement.
func (f *Fleet) retire(id int, mode retireMode, drainFor time.Duration) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errClosed
	}
	var victim *group
	for _, g := range f.groups {
		if g.id == id {
			victim = g
			break
		}
	}
	if victim == nil || victim.retire != retireNone {
		f.mu.Unlock()
		return fmt.Errorf("fleet: no live non-draining group %d to retire", id)
	}
	victim.retire = mode
	f.publishLocked()
	f.mu.Unlock()

	// Drain: the snapshot no longer offers the group, so inflight only
	// falls. A connection that outlives the budget is dropped by the
	// shutdown below — rotation must never wedge behind one slow
	// client.
	deadline := time.Now().Add(drainFor)
	for victim.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(dialRetryInterval)
	}
	return f.net.ShutdownPort(victim.port)
}

// Await polls Stats until cond holds or timeout elapses. Recovery is
// asynchronous — a detection is counted before its replacement group
// registers — so callers that need a settled pool (e.g. before Stop)
// wait on the counters explicitly.
func (f *Fleet) Await(cond func(Stats) bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s := f.Stats()
		if cond(s) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: condition not met within %v: %+v", timeout, s)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// AwaitReplenished waits until at least replaced replacements have
// registered and the healthy pool is back to size groups.
func (f *Fleet) AwaitReplenished(replaced, groups int, timeout time.Duration) error {
	return f.Await(func(s Stats) bool {
		return s.Replaced >= replaced && len(s.Healthy) >= groups
	}, timeout)
}

// Stop shuts the dispatcher and every group down, waits for all fleet
// goroutines, and returns the final stats. Groups that die with an
// alarm during shutdown are still counted and audited.
func (f *Fleet) Stop() (Stats, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return f.Stats(), errClosed
	}
	f.closed = true
	groups := append([]*group(nil), f.groups...)
	f.mu.Unlock()

	if f.front != nil {
		// Close also drops connections still queued in the backlog, so
		// no client is left blocking in Recv.
		_ = f.front.Close()
	}
	var firstErr error
	for _, g := range groups {
		if _, err := g.handle.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.wg.Wait()
	return f.Stats(), firstErr
}
