package fleet

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"nvariant/internal/harness"
	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
)

// group is one pool member: a running N-variant process group plus the
// bookkeeping the dispatcher's balancing policies read.
type group struct {
	// id is the fleet-unique group number (never reused, so the audit
	// log can refer to dead groups unambiguously).
	id int
	// port is the group's private listening port on the shared network.
	// Ports of quarantined groups are recycled by later replacements.
	port uint16
	// spec is the group's DiversitySpec (nil for single-variant
	// configurations, which deploy no variation stack).
	spec *reexpress.Spec
	// variants is the group's process-group size N.
	variants int
	// workers is the group's prefork worker-lane count (≥ 1): its
	// concurrent-request capacity, which the least-loaded policy
	// normalizes in-flight counts by.
	workers int
	// r1 names the variant-1 effective UID reexpression function
	// actually deployed ("(none)" for single-variant configurations) —
	// the stat the two-variant audit trail always recorded.
	r1 string
	// handle controls the running process group.
	handle *harness.Handle
	// born is the group's spawn time, for the group-age gauge.
	born time.Time
	// retire marks an administratively draining group (guarded by the
	// fleet mutex): retireRotate exits are replaced with a fresh spec,
	// retireShrink exits are not. Draining groups are filtered from the
	// dispatch snapshot, so no new connection reaches them.
	retire retireMode
	// degraded is set when the group's kernel evicts a variant (quorum
	// degraded mode): the group keeps serving on its K-of-N quorum
	// while the fleet respawns it in the background. Atomic because the
	// kernel's eviction hook fires from lane monitor goroutines.
	degraded atomic.Bool
	// inflight counts connections currently proxied to the group.
	inflight atomic.Int64
	// served counts connections ever dispatched to the group.
	served atomic.Int64
}

// retireMode classifies an administrative drain of a healthy group.
type retireMode int

const (
	// retireNone: the group is serving normally.
	retireNone retireMode = iota
	// retireRotate: moving-target rotation — drain, then replace with a
	// freshly generated spec.
	retireRotate
	// retireShrink: elastic downsizing — drain, no replacement.
	retireShrink
	// retireRespawn: a quorum-degraded group is drained and replaced at
	// full width with a freshly generated spec (the evicted variant's
	// slot comes back re-expressed, never resurrected in place).
	retireRespawn
)

// SelectPair draws a fresh two-variant UID pair: R₀ = identity and
// R₁ = XOR with a freshly selected mask satisfying the §2.2/§2.3
// properties.
//
// Deprecated-style adapter over reexpress.GenerateFrom, kept so
// pre-DiversitySpec call sites compile unchanged; replacements now
// draw whole specs (possibly N-wide and multi-layer) instead of pairs.
func SelectPair(rng *rand.Rand) reexpress.Pair {
	funcs := reexpress.GenerateFrom(rng, 2).UIDFuncs()
	return reexpress.Pair{R0: funcs[0], R1: funcs[1]}
}

// defaultStack is the variation stack generated for Config4 groups
// when Options.Stack is empty: the paper's full §4 deployment.
var defaultStack = []reexpress.LayerKind{
	reexpress.LayerUID,
	reexpress.LayerAddressPartition,
	reexpress.LayerUnsharedFiles,
}

// drawVariants picks the group size for one spawn. Caller holds rngMu.
func (f *Fleet) drawVariants() int {
	n := f.opts.Variants
	if f.opts.MaxVariants > n {
		n += f.rng.Intn(f.opts.MaxVariants - n + 1)
	}
	return n
}

// specForGroup selects the DiversitySpec a fresh group deploys, or nil
// for configurations without a variation stack.
func (f *Fleet) specForGroup(id int) *reexpress.Spec {
	switch f.opts.Config {
	case harness.Config4UIDVariation:
		f.rngMu.Lock()
		defer f.rngMu.Unlock()
		n := f.drawVariants()
		if id == 0 && n == 2 && len(f.opts.Stack) == 0 {
			// Group 0 runs the paper's published functions; every
			// further group (initial or replacement) runs freshly
			// generated ones, so the pool is representation-diverse
			// from the start.
			return reexpress.FullStack(reexpress.UIDVariation().Pair.Funcs())
		}
		stack := f.opts.Stack
		if len(stack) == 0 {
			stack = defaultStack
		}
		return reexpress.GenerateFrom(f.rng, n, stack...)
	case harness.Config3AddressSpace:
		f.rngMu.Lock()
		n := f.drawVariants()
		f.rngMu.Unlock()
		return reexpress.UncheckedSpec(n,
			reexpress.AddressPartitionLayer(n),
			reexpress.UnsharedFilesLayer(reexpress.DefaultUnsharedPaths...),
		)
	default:
		// Single-variant configurations deploy no stack.
		return nil
	}
}

// specFor builds the restartable group description for a pool slot.
// Quorum fleets get a per-group kernel option slice: the eviction hook
// closes over the group id, and appending it onto the shared
// f.opts.Kernel would race sibling spawns.
func (f *Fleet) specFor(id int, port uint16, spec *reexpress.Spec) harness.GroupSpec {
	gs := harness.GroupSpec{
		Config:    f.opts.Config,
		Server:    f.opts.Server,
		Port:      port,
		Diversity: spec,
		Workers:   f.opts.Workers,
		Kernel:    f.opts.Kernel,
		Quorum:    f.opts.Quorum,
	}
	if f.opts.Quorum > 0 {
		kopts := make([]nvkernel.Option, len(f.opts.Kernel), len(f.opts.Kernel)+1)
		copy(kopts, f.opts.Kernel)
		gs.Kernel = append(kopts, nvkernel.WithEvictionHook(func(ev nvkernel.Eviction) {
			f.variantEvicted(id, ev)
		}))
	}
	return gs
}

// String identifies the group in logs.
func (g *group) String() string {
	return fmt.Sprintf("group %d (port %d, n=%d, w=%d, R1=%s)", g.id, g.port, g.variants, g.workers, g.r1)
}
