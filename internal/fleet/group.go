package fleet

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"

	"nvariant/internal/harness"
	"nvariant/internal/reexpress"
	"nvariant/internal/word"
)

// boundarySamples caches the ~65k-word property-check corpus: it is
// read-only and rebuilding it per replacement draw would be pure
// allocation churn.
var boundarySamples = sync.OnceValue(reexpress.BoundarySamples)

// group is one pool member: a running N-variant process group plus the
// bookkeeping the dispatcher's balancing policies read.
type group struct {
	// id is the fleet-unique group number (never reused, so the audit
	// log can refer to dead groups unambiguously).
	id int
	// port is the group's private listening port on the shared network.
	port uint16
	// pair is the group's UID reexpression pair (identity pair for
	// configurations that don't run the UID variation).
	pair reexpress.Pair
	// r1 names the variant-1 reexpression function actually deployed
	// ("(none)" for single-variant configurations).
	r1 string
	// handle controls the running process group.
	handle *harness.Handle
	// inflight counts connections currently proxied to the group.
	inflight atomic.Int64
	// served counts connections ever dispatched to the group.
	served atomic.Int64
}

// minMaskBits is the smallest acceptable popcount for a freshly
// selected UID mask. The paper's mask flips 31 bits; demanding at
// least half the word keeps the expected detection probability for
// random partial overwrites high.
const minMaskBits = 16

// SelectPair draws a fresh UID variation pair: R₀ = identity and
// R₁ = XOR with a randomly selected mask. The mask keeps the paper's
// sign-bit exclusion (so the kernel's negative-UID special cases, e.g.
// NoChange, stay outside the diversified range), has every byte
// nonzero (so single-byte overwrites diverge in any position), and
// flips at least minMaskBits bits. The selected pair is verified
// against the §2.2/§2.3 inverse and disjointness properties before
// use; selection falls back to the paper's published mask if the draw
// repeatedly fails (which would indicate a bug, not bad luck).
func SelectPair(rng *rand.Rand) reexpress.Pair {
	for attempt := 0; attempt < 64; attempt++ {
		var b [word.Size]byte
		for i := 0; i < word.Size; i++ {
			b[i] = byte(1 + rng.Intn(255))
		}
		b[word.Size-1] &= 0x7F // clear the sign bit
		if b[word.Size-1] == 0 {
			continue
		}
		mask := word.FromBytes(b)
		if bits.OnesCount32(uint32(mask)) < minMaskBits {
			continue
		}
		pair := reexpress.Pair{R0: reexpress.Identity{}, R1: reexpress.XORMask{Mask: mask}}
		if err := reexpress.CheckPair(pair, boundarySamples()); err != nil {
			continue
		}
		return pair
	}
	return reexpress.UIDVariation().Pair
}

// specFor builds the restartable group description for a pool slot.
func (f *Fleet) specFor(port uint16, pair *reexpress.Pair) harness.GroupSpec {
	return harness.GroupSpec{
		Config: f.opts.Config,
		Server: f.opts.Server,
		Port:   port,
		Pair:   pair,
	}
}

// String identifies the group in logs.
func (g *group) String() string {
	return fmt.Sprintf("group %d (port %d, R1=%s)", g.id, g.port, g.r1)
}
