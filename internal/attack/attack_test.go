package attack

import (
	"strings"
	"testing"
	"testing/quick"

	"nvariant/internal/httpd"
	"nvariant/internal/reexpress"
	"nvariant/internal/word"
)

func TestFullWordForgeDetected(t *testing.T) {
	// The headline §3 case: forging root (0) as the same concrete word
	// in both variants is detected under the UID variation.
	out, err := Evaluate(reexpress.UIDVariation().Pair, 30, FullWord(0))
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeDetected {
		t.Errorf("outcome = %v, want DETECTED", out)
	}
}

func TestFullWordForgeCorruptsIdentityPair(t *testing.T) {
	// Without diversity (identity/identity), the same forge silently
	// corrupts.
	pair := reexpress.Pair{R0: reexpress.Identity{}, R1: reexpress.Identity{}}
	out, err := Evaluate(pair, 30, FullWord(0))
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeCorrupted {
		t.Errorf("outcome = %v, want CORRUPTED", out)
	}
}

func TestHighBitResidual(t *testing.T) {
	out, err := Evaluate(reexpress.UIDVariation().Pair, 30, HighBitSet())
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeCorrupted {
		t.Errorf("high-bit outcome = %v, want CORRUPTED (the §3.2 residual)", out)
	}
	// The full-flip mask closes it.
	out, err = Evaluate(reexpress.UIDFullFlipVariation().Pair, 30, HighBitSet())
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeDetected {
		t.Errorf("full-flip high-bit outcome = %v, want DETECTED", out)
	}
}

func TestByteWritesAllDetected(t *testing.T) {
	pair := reexpress.UIDVariation().Pair
	for i := 0; i < word.Size; i++ {
		for _, b := range []byte{0x00, 0x42, 0xFF} {
			out, err := Evaluate(pair, 30, SingleByte(i, b))
			if err != nil {
				t.Fatal(err)
			}
			if out == OutcomeCorrupted {
				t.Errorf("byte[%d]:=%#02x corrupted undetected", i, b)
			}
		}
	}
}

func TestQuickByteWritesNeverCorrupt(t *testing.T) {
	// Property: under the deployed mask, NO byte-granularity write
	// yields undetected corruption, for any victim and any value.
	pair := reexpress.UIDVariation().Pair
	f := func(victim uint32, pos uint8, b byte) bool {
		out, err := Evaluate(pair, word.Word(victim), SingleByte(int(pos%word.Size), b))
		return err == nil && out != OutcomeCorrupted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFullWordWritesNeverCorrupt(t *testing.T) {
	pair := reexpress.UIDVariation().Pair
	f := func(victim, inject uint32) bool {
		out, err := Evaluate(pair, word.Word(victim), FullWord(word.Word(inject)))
		return err == nil && out != OutcomeCorrupted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitFlipsAlwaysEvadeXORMasks(t *testing.T) {
	// The threat-model boundary: XOR reexpression commutes with XOR
	// faults, so every bit flip (on any mask) corrupts undetected.
	for _, pair := range []reexpress.Pair{
		reexpress.UIDVariation().Pair,
		reexpress.UIDFullFlipVariation().Pair,
	} {
		for i := 0; i < word.Bits; i++ {
			out, err := Evaluate(pair, 30, BitFlip(i))
			if err != nil {
				t.Fatal(err)
			}
			if out != OutcomeCorrupted {
				t.Errorf("bit[%d] flip outcome = %v, want CORRUPTED", i, out)
			}
		}
	}
}

func TestBitSetsDetectedExceptHighBit(t *testing.T) {
	pair := reexpress.UIDVariation().Pair
	for i := 0; i < word.Bits; i++ {
		out, err := Evaluate(pair, 30, BitSet(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 31 {
			if out != OutcomeCorrupted {
				t.Errorf("bit[31] set = %v, want CORRUPTED (residual)", out)
			}
			continue
		}
		if out == OutcomeCorrupted {
			t.Errorf("bit[%d] set corrupted undetected", i)
		}
	}
}

func TestLowBytesOverwrite(t *testing.T) {
	pair := reexpress.UIDVariation().Pair
	for k := 1; k <= 4; k++ {
		out, err := Evaluate(pair, 30, LowBytes(k, 0))
		if err != nil {
			t.Fatal(err)
		}
		if out == OutcomeCorrupted {
			t.Errorf("low-%d-bytes corrupted undetected", k)
		}
	}
}

func TestAddressPartitionInjection(t *testing.T) {
	// Evaluate also covers the address case: injecting a full address
	// into a partitioned pair faults one variant (detected).
	pair := reexpress.AddressPartitioning().Pair
	out, err := Evaluate(pair, 0x00001000, FullWord(0x00002000))
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeDetected {
		t.Errorf("address injection = %v, want DETECTED", out)
	}
}

func TestHarmlessOutcome(t *testing.T) {
	pair := reexpress.UIDVariation().Pair
	// A harmless write must be a no-op in BOTH representations. The
	// UID mask preserves the high bit, so setting the high bit of a
	// victim whose high bit is already 1 changes neither variant.
	out, err := Evaluate(pair, 0x80000001, HighBitSet())
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeHarmless {
		t.Errorf("no-op write = %v, want harmless", out)
	}
	// The same write against a low victim is the §3.2 residual
	// corruption, not harmless.
	out, err = Evaluate(pair, 30, HighBitSet())
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeCorrupted {
		t.Errorf("residual write = %v, want corrupted", out)
	}
}

func TestStandardOverwritesShape(t *testing.T) {
	ows := StandardOverwrites()
	var words, bytes, bits, flips int
	for _, ow := range ows {
		switch {
		case ow.Granularity == GranWord:
			words++
		case ow.Granularity == GranByte:
			bytes++
		case ow.Style == StyleFlip:
			flips++
		default:
			bits++
		}
	}
	if words < 3 || bytes < 8 || bits < 31 || flips != 32 {
		t.Errorf("campaign set: words=%d bytes=%d bits=%d flips=%d", words, bytes, bits, flips)
	}
}

func TestCampaignRows(t *testing.T) {
	rows, err := Campaign(reexpress.UIDVariation().Pair, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(StandardOverwrites()) {
		t.Errorf("rows = %d, want %d", len(rows), len(StandardOverwrites()))
	}
}

func TestPayloadShapes(t *testing.T) {
	p := ForgeUIDPayload(0)
	if len(p) != httpd.ReqBufSize+4 {
		t.Errorf("forge payload length = %d, want %d", len(p), httpd.ReqBufSize+4)
	}
	if strings.ContainsRune(string(p), '\n') {
		t.Error("payload contains newline; would parse as a request")
	}
	p1 := ForgeLowBytesPayload(0, 1)
	if len(p1) != httpd.ReqBufSize+1 {
		t.Errorf("1-byte payload length = %d", len(p1))
	}
	p5 := ForgeLowBytesPayload(0, 9)
	if len(p5) != httpd.ReqBufSize+4 {
		t.Errorf("clamped payload length = %d", len(p5))
	}
	// The tail must be the little-endian UID bytes.
	forged := ForgeUIDPayload(0xAABBCCDD)
	tail := forged[httpd.ReqBufSize:]
	if tail[0] != 0xDD || tail[3] != 0xAA {
		t.Errorf("tail = %x, want little-endian DDCCBBAA", tail)
	}
}

func TestStrings(t *testing.T) {
	if GranWord.String() != "word" || GranByte.String() != "byte" || GranBit.String() != "bit" {
		t.Error("granularity names")
	}
	if Granularity(9).String() != "unknown" {
		t.Error("unknown granularity")
	}
	if StyleWrite.String() != "write" || StyleFlip.String() != "flip" || Style(9).String() != "unknown" {
		t.Error("style names")
	}
	for _, o := range []Outcome{OutcomeDetected, OutcomeCorrupted, OutcomeHarmless, Outcome(9)} {
		if o.String() == "" {
			t.Error("outcome name empty")
		}
	}
}
