// Package attack implements the attacker's side of the evaluation: the
// memory-corruption primitives of the paper's threat model (§3.2) and
// the concrete HTTP exploit payloads for the httpd case study (§4).
//
// The attacker is constrained exactly as in Figure 1: they control
// only the external input, which the framework replicates byte-for-
// byte to every variant. All corruption primitives therefore apply the
// *same* concrete mutation to every variant's copy of the target datum.
package attack

import (
	"fmt"

	"nvariant/internal/httpd"
	"nvariant/internal/reexpress"
	"nvariant/internal/word"
)

// Style distinguishes how a primitive corrupts memory. The distinction
// matters for the theory: *writes* store attacker-chosen concrete bits
// (overflows, format-string writes — the paper's threat model), while
// *flips* XOR existing bits (hardware faults like the heat-lamp attack
// [3]). XOR-mask reexpression detects divergent writes but commutes
// with flips — R⁻¹(x ⊕ f) = R⁻¹(x) ⊕ f — so flip-style faults are
// outside the protected class of any XOR-based variation. The paper
// notes that no realistic remote attack achieves targeted bit flips;
// the campaign experiment makes the boundary explicit.
type Style int

// Corruption styles.
const (
	// StyleWrite stores attacker-chosen concrete bits.
	StyleWrite Style = iota + 1
	// StyleFlip XORs bits in place (fault-injection model).
	StyleFlip
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleWrite:
		return "write"
	case StyleFlip:
		return "flip"
	default:
		return "unknown"
	}
}

// Overwrite is a memory-corruption primitive: a mutation the attacker
// can apply to the concrete bytes of a word in a victim's memory. The
// same mutation hits every variant because all variants receive the
// same input.
type Overwrite struct {
	// Name describes the primitive (appears in the experiment table).
	Name string
	// Granularity classifies the primitive for reporting.
	Granularity Granularity
	// Style is write (chosen bits) or flip (XOR fault).
	Style Style
	// Mutate applies the corruption to one variant's concrete word.
	Mutate func(word.Word) word.Word
}

// Granularity is the corruption granularity (§3.2 discusses which are
// realistic under a remote-attacker threat model).
type Granularity int

// Granularities.
const (
	// GranWord overwrites the complete 32-bit value (e.g. a full
	// overflow past the buffer).
	GranWord Granularity = iota + 1
	// GranByte overwrites individual bytes — the lowest granularity
	// reported for remote partial-overwrite attacks (§3.2).
	GranByte
	// GranBit flips a single bit — known only for physical threat
	// models (the heat-lamp attack [3]); included for completeness.
	GranBit
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case GranWord:
		return "word"
	case GranByte:
		return "byte"
	case GranBit:
		return "bit"
	default:
		return "unknown"
	}
}

// FullWord overwrites the whole word with v.
func FullWord(v word.Word) Overwrite {
	return Overwrite{
		Name:        fmt.Sprintf("full-word := %s", v),
		Granularity: GranWord,
		Style:       StyleWrite,
		Mutate:      func(word.Word) word.Word { return v },
	}
}

// SingleByte overwrites byte i (0 = low) with b.
func SingleByte(i int, b byte) Overwrite {
	return Overwrite{
		Name:        fmt.Sprintf("byte[%d] := %#02x", i, b),
		Granularity: GranByte,
		Style:       StyleWrite,
		Mutate: func(w word.Word) word.Word {
			out, err := w.WithByte(i, b)
			if err != nil {
				return w
			}
			return out
		},
	}
}

// LowBytes overwrites the k low-order bytes with the low bytes of v —
// the partial-overwrite shape discussed for extended address-space
// partitioning (§2.3).
func LowBytes(k int, v word.Word) Overwrite {
	return Overwrite{
		Name:        fmt.Sprintf("low-%d-bytes := %s", k, v),
		Granularity: GranByte,
		Style:       StyleWrite,
		Mutate: func(w word.Word) word.Word {
			out := w
			for i := 0; i < k && i < word.Size; i++ {
				b, err := v.Byte(i)
				if err != nil {
					return w
				}
				out, err = out.WithByte(i, b)
				if err != nil {
					return w
				}
			}
			return out
		},
	}
}

// BitSet sets bit i in place.
func BitSet(i int) Overwrite {
	return Overwrite{
		Name:        fmt.Sprintf("bit[%d] := 1", i),
		Granularity: GranBit,
		Style:       StyleWrite,
		Mutate: func(w word.Word) word.Word {
			out, err := w.WithBit(i, true)
			if err != nil {
				return w
			}
			return out
		},
	}
}

// BitFlip flips bit i.
func BitFlip(i int) Overwrite {
	return Overwrite{
		Name:        fmt.Sprintf("bit[%d] flipped", i),
		Granularity: GranBit,
		Style:       StyleFlip,
		Mutate: func(w word.Word) word.Word {
			set, err := w.Bit(i)
			if err != nil {
				return w
			}
			out, err := w.WithBit(i, !set)
			if err != nil {
				return w
			}
			return out
		},
	}
}

// HighBitSet is the paper's acknowledged residual attack against the
// 0x7FFFFFFF mask: setting only the sign bit (§3.2).
func HighBitSet() Overwrite {
	o := BitSet(31)
	o.Name = "high-bit := 1 (§3.2 residual)"
	return o
}

// Outcome classifies what an overwrite achieved against a variant
// pair.
type Outcome int

// Outcomes.
const (
	// OutcomeDetected: the monitor would raise an alarm (divergent or
	// invalid canonical values at first use).
	OutcomeDetected Outcome = iota + 1
	// OutcomeCorrupted: both variants decode to the same *changed*
	// canonical value — a successful, undetected corruption.
	OutcomeCorrupted
	// OutcomeHarmless: the canonical value is unchanged; the overwrite
	// had no effect on program semantics.
	OutcomeHarmless
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeDetected:
		return "DETECTED"
	case OutcomeCorrupted:
		return "CORRUPTED (undetected)"
	case OutcomeHarmless:
		return "harmless"
	default:
		return "unknown"
	}
}

// Evaluate applies the overwrite to each variant's representation of
// victim and reports the monitor-visible outcome at the datum's next
// use: an inversion failure or canonical divergence is detection; equal
// changed canonical values are undetected corruption. It is the
// two-variant form of EvaluateN (corpus.go).
func Evaluate(p reexpress.Pair, victim word.Word, ow Overwrite) (Outcome, error) {
	return EvaluateN([]reexpress.Func{p.R0, p.R1}, victim, ow)
}

// StandardOverwrites returns the §3.2 campaign set: the root-forging
// full-word write, every single-byte write, multi-byte partial
// overwrites, a full single-bit-set sweep (including the high-bit
// residual), and — for the threat-model boundary — a sweep of
// flip-style faults that no XOR mask can detect.
func StandardOverwrites() []Overwrite {
	ows := []Overwrite{FullWord(0), FullWord(0x7FFFFFFF), FullWord(0xFFFFFFFF)}
	for i := 0; i < word.Size; i++ {
		ows = append(ows, SingleByte(i, 0x00), SingleByte(i, 0xFF))
	}
	for k := 1; k <= 3; k++ {
		ows = append(ows, LowBytes(k, 0))
	}
	for i := 0; i < word.Bits-1; i++ {
		ows = append(ows, BitSet(i))
	}
	ows = append(ows, HighBitSet())
	for i := 0; i < word.Bits; i++ {
		ows = append(ows, BitFlip(i))
	}
	return ows
}

// CampaignRow is one line of the overwrite-campaign table.
type CampaignRow struct {
	// Overwrite names the primitive.
	Overwrite string
	// Granularity classifies it.
	Granularity Granularity
	// Outcome is the monitor-visible result.
	Outcome Outcome
}

// Campaign evaluates the standard overwrites against a variant pair
// for the given victim value.
func Campaign(p reexpress.Pair, victim word.Word) ([]CampaignRow, error) {
	ows := StandardOverwrites()
	rows := make([]CampaignRow, 0, len(ows))
	for _, ow := range ows {
		out, err := Evaluate(p, victim, ow)
		if err != nil {
			return nil, fmt.Errorf("evaluate %q: %w", ow.Name, err)
		}
		rows = append(rows, CampaignRow{Overwrite: ow.Name, Granularity: ow.Granularity, Outcome: out})
	}
	return rows, nil
}

// --- HTTP exploit payloads for the httpd case study (§4) -------------

// OverflowPayload builds the request that overflows httpd's parse
// buffer and writes tail into the adjacent worker-UID word. The filler
// contains no newline, so the server answers 400 while the corruption
// silently persists for the next request.
func OverflowPayload(tail []byte) []byte {
	payload := make([]byte, 0, httpd.ReqBufSize+len(tail))
	for i := 0; i < httpd.ReqBufSize; i++ {
		payload = append(payload, 'A')
	}
	return append(payload, tail...)
}

// ForgeUIDPayload overwrites the full worker-UID word with uid
// (little-endian), the Chen-et-al-style root-forging attack.
func ForgeUIDPayload(uid word.Word) []byte {
	b := uid.Bytes()
	return OverflowPayload(b[:])
}

// ForgeLowBytesPayload overwrites only the k low-order bytes of the
// worker UID — the byte-granularity partial overwrite of §3.2.
func ForgeLowBytesPayload(uid word.Word, k int) []byte {
	b := uid.Bytes()
	if k > len(b) {
		k = len(b)
	}
	return OverflowPayload(b[:k])
}
