package attack

// The expanded attack corpus: scripted HTTP attack scenarios for the
// chaos campaign (§3.2 primitives driven end-to-end against running
// groups) and the exhaustive word-level partial-overwrite brute force
// over mask bytes. Every scenario draws its concrete values from a
// caller-seeded rng, so a campaign cell replays byte-identically from
// its seed.

import (
	"fmt"
	"math/rand"

	"nvariant/internal/reexpress"
	"nvariant/internal/word"
)

// Scenario is one scripted HTTP attack: a deterministic payload
// sequence plus the driving contract the campaign runner follows.
type Scenario struct {
	// Name identifies the scenario in campaign matrices.
	Name string
	// ExpectDetect reports whether a correctly deployed UID variation
	// (N ≥ 2 with a uid layer) must alarm on this scenario. Scenarios
	// with ExpectDetect false probe the false-positive side: a healthy
	// group must survive them without an alarm.
	ExpectDetect bool
	// Trigger tells the runner to drive first-use probes (requests for
	// the protected document) after each payload until the group
	// reacts — the corruption only surfaces at the corrupted lane's
	// next UID use.
	Trigger bool
	// InterleaveBenign tells the runner to alternate benign requests
	// with the trigger probes — the cross-lane shape: sibling worker
	// lanes keep serving while one lane carries the corruption.
	InterleaveBenign bool
	// Build generates the scripted payload sequence from the
	// scenario's seeded rng stream.
	Build func(rng *rand.Rand) [][]byte
}

// Corpus returns the campaign's scenario set. The root-forging write
// of §4, replayed and randomized forged writes, the byte-granularity
// partial-overwrite brute force, the cross-lane corruption shape for
// prefork groups, and a malformed-request flood that must stay
// alarm-free.
func Corpus() []Scenario {
	return []Scenario{
		{
			Name:         "forge-root-uid",
			ExpectDetect: true,
			Trigger:      true,
			Build: func(*rand.Rand) [][]byte {
				return [][]byte{ForgeUIDPayload(0)}
			},
		},
		{
			Name:         "forge-random-uid",
			ExpectDetect: true,
			Trigger:      true,
			Build: func(rng *rand.Rand) [][]byte {
				// Any full-word forgery diverges under inverse
				// reexpression: the concrete value is identical in every
				// variant, the masks are not.
				uid := word.Word(rng.Uint32()) &^ word.HighBit
				return [][]byte{ForgeUIDPayload(uid)}
			},
		},
		{
			Name:         "replay-forged-uid",
			ExpectDetect: true,
			Trigger:      true,
			Build: func(rng *rand.Rand) [][]byte {
				// The same captured exploit replayed: a second identical
				// write changes nothing about detectability, and a fleet
				// replacement's fresh masks make the replay land on a
				// representation the attacker never observed.
				p := ForgeUIDPayload(word.Word(rng.Uint32()) &^ word.HighBit)
				return [][]byte{p, p}
			},
		},
		{
			Name:         "brute-mask-bytes",
			ExpectDetect: true,
			Trigger:      true,
			Build: func(rng *rand.Rand) [][]byte {
				// Byte-granularity brute force over the low mask bytes:
				// partial overwrites of 1–3 low-order bytes with drawn
				// values (§3.2's lowest realistic remote granularity).
				// Pairwise byte-distinct masks diverge on every one.
				var ps [][]byte
				for k := 1; k <= 3; k++ {
					for i := 0; i < 2; i++ {
						ps = append(ps, ForgeLowBytesPayload(word.Word(rng.Uint32()), k))
					}
				}
				return ps
			},
		},
		{
			Name:             "cross-lane-corruption",
			ExpectDetect:     true,
			Trigger:          true,
			InterleaveBenign: true,
			Build: func(*rand.Rand) [][]byte {
				// One lane of a prefork group carries the corrupted UID
				// word; benign requests keep landing on healthy sibling
				// lanes until a trigger reaches the corrupted one.
				return [][]byte{ForgeUIDPayload(0)}
			},
		},
		{
			Name:         "malformed-flood",
			ExpectDetect: false,
			Build: func(rng *rand.Rand) [][]byte {
				// A flood of malformed requests: in-buffer garbage, bad
				// methods, bad versions, binary noise. The server must
				// answer 400/405s with no divergence — this scenario
				// measures the false-positive side of the detector.
				ps := make([][]byte, 0, 16)
				ps = append(ps,
					[]byte("GET /index.html\r\n\r\n"),
					[]byte("BREW /index.html HTTP/1.0\r\n\r\n"),
					[]byte("GET index.html HTTP/1.0\r\n\r\n"),
					[]byte("GET /index.html FTP/1.0\r\n\r\n"),
					[]byte("\r\n\r\n"),
				)
				for i := 0; i < 11; i++ {
					n := 1 + rng.Intn(200) // stays inside the parse buffer
					b := make([]byte, n)
					for j := range b {
						b[j] = byte(1 + rng.Intn(255))
					}
					ps = append(ps, append(b, '\n'))
				}
				return ps
			},
		},
	}
}

// ScenarioByName returns the corpus scenario with the given name.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Corpus() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("attack: unknown scenario %q", name)
}

// --- N-wide evaluation and the mask-byte brute force -----------------

// EvaluateN is Evaluate generalized to N variants: the overwrite is
// applied to every variant's representation of victim, and the
// monitor-visible outcome at the next use is reported. Any inversion
// failure or pairwise canonical divergence is detection; all-equal
// changed values are undetected corruption.
func EvaluateN(funcs []reexpress.Func, victim word.Word, ow Overwrite) (Outcome, error) {
	if len(funcs) == 0 {
		return 0, fmt.Errorf("attack: no variants")
	}
	var first word.Word
	changed := false
	for i, f := range funcs {
		rep, err := f.Apply(victim)
		if err != nil {
			return 0, fmt.Errorf("reexpress victim for variant %d: %w", i, err)
		}
		inv, err := f.Invert(ow.Mutate(rep))
		if err != nil {
			return OutcomeDetected, nil
		}
		if i == 0 {
			first = inv
			changed = inv != victim
			continue
		}
		if inv != first {
			return OutcomeDetected, nil
		}
	}
	if !changed {
		return OutcomeHarmless, nil
	}
	return OutcomeCorrupted, nil
}

// ByteSweepReport summarizes an exhaustive byte-granularity overwrite
// brute force: every value in every byte position.
type ByteSweepReport struct {
	// Trials is the number of overwrites evaluated (positions × 256).
	Trials int
	// Detected counts overwrites the monitor alarms on.
	Detected int
	// Corrupted counts undetected successful corruptions (the attack
	// wins; must be 0 for byte-distinct masks).
	Corrupted int
	// Harmless counts overwrites that left every canonical value
	// unchanged.
	Harmless int
}

// DetectionRate is Detected over the non-harmless trials — the §3.2
// metric: of the overwrites that changed anything, how many alarmed.
func (r ByteSweepReport) DetectionRate() float64 {
	effective := r.Trials - r.Harmless
	if effective == 0 {
		return 0
	}
	return float64(r.Detected) / float64(effective)
}

// ByteSweep brute-forces every single-byte overwrite — all 256 values
// in all word.Size positions — against the N variant representations
// of victim. With pairwise byte-distinct masks (the Generate
// contract), Corrupted must come out 0: no single-byte write can move
// every variant to the same canonical value.
func ByteSweep(funcs []reexpress.Func, victim word.Word) (ByteSweepReport, error) {
	var rep ByteSweepReport
	for pos := 0; pos < word.Size; pos++ {
		for v := 0; v < 256; v++ {
			out, err := EvaluateN(funcs, victim, SingleByte(pos, byte(v)))
			if err != nil {
				return rep, err
			}
			rep.Trials++
			switch out {
			case OutcomeDetected:
				rep.Detected++
			case OutcomeCorrupted:
				rep.Corrupted++
			case OutcomeHarmless:
				rep.Harmless++
			}
		}
	}
	return rep, nil
}
