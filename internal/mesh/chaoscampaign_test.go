package mesh

import (
	"bytes"
	"reflect"
	"testing"

	"nvariant/internal/chaos"
	"nvariant/internal/obs"
)

// testChaosConfig is the reduced sweep the determinism tests replay:
// both pool counts and rotation settings, but only the fault plans
// that exercise distinct machinery (control, lossy wire, group crash)
// so the double-run stays fast under -race.
func testChaosConfig(seed int64) ChaosCampaignConfig {
	return ChaosCampaignConfig{
		Seed:     seed,
		Requests: 12,
		Pools:    []int{1, 2},
		Groups:   2,
		Probes:   1,
		Faults:   testChaosPlans(),
	}
}

func testChaosPlans() []chaos.Plan {
	var out []chaos.Plan
	for _, name := range []string{"none", "net-mixed", "group-restart"} {
		p, err := chaos.PlanByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// TestChaosCampaignByteIdentical: the same seed reproduces the unified
// mesh×chaos matrix byte for byte — every retry, re-route, backoff
// tick, restart, and exposure sample is a function of the seed alone.
// The CI mesh-chaos-smoke job replays this cross-process via
// cmd/meshbench; this test pins it in-tree.
func TestChaosCampaignByteIdentical(t *testing.T) {
	cfg := testChaosConfig(42)
	r1, err := RunChaosCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunChaosCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := r2.JSON()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed chaos campaign not byte-identical:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b1, b2)
	}
	if v := r1.Check(); len(v) != 0 {
		t.Fatalf("campaign contract violations: %v\n%s", v, b1)
	}
	// The lossy plan must have exercised the retry machinery somewhere
	// in the matrix — a sweep where net-mixed needed zero retries is
	// not stressing anything.
	var lossyRetries uint64
	for _, c := range r1.Cells {
		if c.Fault == "net-mixed" {
			lossyRetries += c.Retries
		}
	}
	if lossyRetries == 0 {
		t.Error("net-mixed cells needed no retries — the sweep is not exercising recovery")
	}
}

// TestChaosCampaignNarrowedCellParity: narrowing the sweep (the
// meshbench -chaos rerun flags) replays single cells bit-for-bit,
// because cell seeds derive from cell labels rather than sweep
// position.
func TestChaosCampaignNarrowedCellParity(t *testing.T) {
	full, err := RunChaosCampaign(testChaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	narrowed := testChaosConfig(7)
	narrowed.Pools = []int{2}
	narrowed.Rotations = []bool{true}
	narrowed.Faults = []chaos.Plan{mustPlan(t, "net-mixed")}
	narrowed.Attacks = []string{"forge-uid"}
	sub, err := RunChaosCampaign(narrowed)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Cells) != 1 {
		t.Fatalf("narrowed run produced %d cells, want 1", len(sub.Cells))
	}
	want := findChaosCell(t, full, 2, true, "net-mixed", "forge-uid")
	if !reflect.DeepEqual(sub.Cells[0], want) {
		t.Errorf("narrowed cell diverged from the full matrix:\nfull:     %+v\nnarrowed: %+v", want, sub.Cells[0])
	}
}

func mustPlan(t *testing.T, name string) chaos.Plan {
	t.Helper()
	p, err := chaos.PlanByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func findChaosCell(t *testing.T, r *ChaosCampaignResult, pools int, rotation bool, fault, attack string) ChaosCell {
	t.Helper()
	for _, c := range r.Cells {
		if c.Pools == pools && c.Rotation == rotation && c.Fault == fault && c.Attack == attack {
			return c
		}
	}
	t.Fatalf("cell p=%d rotation=%t fault=%s attack=%s not in matrix", pools, rotation, fault, attack)
	return ChaosCell{}
}

// TestChaosCampaignInstrumentationPreservesJSON: attaching an obs
// registry must not perturb the matrix, and the registry must carry
// the new retry/health metric families afterwards.
func TestChaosCampaignInstrumentationPreservesJSON(t *testing.T) {
	cfg := ChaosCampaignConfig{
		Seed:     17,
		Requests: 8,
		Pools:    []int{2},
		Groups:   2,
		Probes:   1,
		Faults:   testChaosPlans(),
	}
	plain, err := RunChaosCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewRegistry()
	instr, err := RunChaosCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := plain.JSON()
	ib, _ := instr.JSON()
	if !bytes.Equal(pb, ib) {
		t.Fatalf("instrumentation changed the matrix:\n--- plain ---\n%s\n--- instrumented ---\n%s", pb, ib)
	}
	var text bytes.Buffer
	if err := cfg.Obs.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"mesh_retries_total", "mesh_reroutes_total", "mesh_retry_backoff_ticks", "mesh_pool_health",
	} {
		if !bytes.Contains(text.Bytes(), []byte(family)) {
			t.Errorf("registry missing %s after instrumented chaos campaign", family)
		}
	}
}

// TestChaosCampaignRejectsCrashPlans: kernel crash plans cannot replay
// across a pool (the chaos fleet cells document why), so the unified
// campaign refuses them instead of emitting a nondeterministic matrix.
func TestChaosCampaignRejectsCrashPlans(t *testing.T) {
	cfg := testChaosConfig(1)
	cfg.Faults = append(cfg.Faults, mustPlan(t, "variant-crash"))
	if _, err := RunChaosCampaign(cfg); err == nil {
		t.Fatal("campaign accepted a kernel crash plan")
	}
}

// TestChaosCampaignCheckFlagsViolations: Check is the CI gate — make
// sure each contract clause actually fires on a bad matrix.
func TestChaosCampaignCheckFlagsViolations(t *testing.T) {
	r := &ChaosCampaignResult{
		RetryBackoff: 2,
		Cells: []ChaosCell{
			// availability floor + retries in the no-fault control
			{Pools: 1, Fault: "none", Attack: "none", Availability: 0.5, Retries: 3, BackoffTicks: 6},
			// backoff/reroutes without retries
			{Pools: 1, Fault: "net-mixed", Attack: "none", Availability: 1, BackoffTicks: 4},
			// under-charged backoff
			{Pools: 1, Fault: "net-mixed", Attack: "none", Availability: 1, Retries: 4, BackoffTicks: 2},
			// reroutes exceeding retries
			{Pools: 2, Fault: "net-mixed", Attack: "none", Availability: 1, Retries: 1, BackoffTicks: 2, Reroutes: 3},
			// rotation counted while disabled + restart plan without restarts
			{Pools: 1, Rotation: false, Fault: "group-restart", Attack: "none", Availability: 1, Rotations: 2},
			// rotation enabled but never ran, missed detection, false alarm, leak
			{Pools: 1, Rotation: true, Fault: "none", Attack: "forge-uid", Availability: 1,
				Probes: 2, Detections: 1, MissedDetection: true, FalseAlarm: true, Leaked: true},
		},
	}
	v := r.Check()
	want := 11
	if len(v) != want {
		t.Fatalf("Check found %d violations, want %d:\n%v", len(v), want, v)
	}
}
