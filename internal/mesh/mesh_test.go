package mesh

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nvariant/internal/fleet"
)

// lightFleet is the smallest per-pool template tests spin up.
func lightFleet(groups int) fleet.Options {
	return fleet.Options{Groups: groups}
}

func mustMesh(t *testing.T, opts Options) *Mesh {
	t.Helper()
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _, _ = m.Stop() })
	return m
}

// TestRouteKeyStableAndSpread: rendezvous routing is a pure function
// of (seed, key) — two meshes with the same seed agree on every key —
// and spreads keys across pools instead of piling onto one.
func TestRouteKeyStableAndSpread(t *testing.T) {
	opts := Options{Pools: 4, Seed: 11, Fleet: lightFleet(1)}
	m1 := mustMesh(t, opts)
	m2 := mustMesh(t, Options{Pools: 4, Seed: 11, Fleet: fleet.Options{Groups: 1, BasePort: 20000}})
	hit := make(map[int]int)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		p1, p2 := m1.RouteKey(key), m2.RouteKey(key)
		if p1 != p2 {
			t.Fatalf("key %q routes to pool %d on one mesh, %d on another (same seed)", key, p1, p2)
		}
		hit[p1]++
	}
	if len(hit) < 3 {
		t.Errorf("64 keys landed on only %d of 4 pools: %v", len(hit), hit)
	}
}

// TestAffinityRoutingSticky: under AffinityRouting a key sticks to the
// pool that first claimed it, and distinct keys spread round-robin.
func TestAffinityRoutingSticky(t *testing.T) {
	m := mustMesh(t, Options{Pools: 3, Policy: AffinityRouting, Seed: 5, Fleet: lightFleet(1)})
	first := make(map[string]int)
	hit := make(map[int]int)
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("sticky-%d", i)
		p := m.RouteKey(key)
		first[key] = p
		hit[p]++
	}
	if len(hit) != 3 {
		t.Errorf("12 fresh keys claimed only %d of 3 pools: %v", len(hit), hit)
	}
	for key, want := range first {
		for rep := 0; rep < 3; rep++ {
			if got := m.RouteKey(key); got != want {
				t.Fatalf("key %q moved from pool %d to %d on repeat lookup", key, want, got)
			}
		}
	}
	// A session created for a known key lands on the key's pool.
	if s := m.Session("sticky-0"); s.PoolIndex() != first["sticky-0"] {
		t.Errorf("session for sticky-0 on pool %d, RouteKey said %d", s.PoolIndex(), first["sticky-0"])
	}
}

// TestAdmissionShedsWhenSaturated: a pool at its in-flight budget
// sheds with the typed ErrSaturated, counts the shed, and recovers as
// soon as the budget frees.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	m := mustMesh(t, Options{Pools: 1, MaxInflight: 2, Fleet: lightFleet(1)})
	s := m.Session("budget-probe")
	// Occupy the whole budget from the outside (the test is in-package
	// so it can reach the admission counter directly).
	s.pool.inflight.Add(2)
	if _, _, err := s.Get("/index.html"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated pool returned %v, want ErrSaturated", err)
	}
	if got := s.pool.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	s.pool.inflight.Add(-2)
	if code, _, err := s.Get("/index.html"); err != nil || code != 200 {
		t.Fatalf("freed pool: %d %v, want 200", code, err)
	}
	st := m.Stats()
	if st.Shed != 1 || st.Dispatched != 1 {
		t.Errorf("stats shed=%d dispatched=%d, want 1/1", st.Shed, st.Dispatched)
	}
}

// TestRotationNeverBelowFloor is the availability regression test:
// with requests in flight and rotation triggering constantly, no
// sample of the pool's healthy count may ever fall below the
// configured floor.
func TestRotationNeverBelowFloor(t *testing.T) {
	const floor = 2
	m := mustMesh(t, Options{
		Pools:             1,
		RotateEvery:       4,
		AvailabilityFloor: floor,
		Seed:              3,
		Fleet:             lightFleet(3),
	})

	stop := make(chan struct{})
	var sampler sync.WaitGroup
	minHealthy := int64(99)
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if h := int64(m.Pool(0).HealthyCount()); h < minHealthy {
				minHealthy = h
			}
		}
	}()

	var load sync.WaitGroup
	for w := 0; w < 4; w++ {
		load.Add(1)
		go func(w int) {
			defer load.Done()
			s := m.Session(fmt.Sprintf("worker-%d", w))
			for i := 0; i < 15; i++ {
				_, _, _ = s.Get("/index.html")
			}
		}(w)
	}
	load.Wait()
	if err := m.Await(func(s Stats) bool {
		return s.RotationsHandled >= m.Ticks()/4
	}, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	sampler.Wait()

	st := m.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotation completed under load: %s", st)
	}
	if minHealthy < floor {
		t.Errorf("healthy groups dipped to %d, floor is %d", minHealthy, floor)
	}
}

// TestRotationSkipsAtFloor: a pool already at the floor never rotates
// — every trigger is counted as skipped and the pool stays whole.
func TestRotationSkipsAtFloor(t *testing.T) {
	m := mustMesh(t, Options{
		Pools:             1,
		RotateEvery:       2,
		AvailabilityFloor: 2, // == Groups: rotation would always violate it
		Fleet:             lightFleet(2),
	})
	s := m.Session("floor-probe")
	for i := 0; i < 8; i++ {
		if code, _, err := s.Get("/index.html"); err != nil || code != 200 {
			t.Fatalf("request %d: %d %v", i, code, err)
		}
	}
	if err := m.Await(func(st Stats) bool { return st.RotationsHandled >= 4 }, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rotations != 0 {
		t.Errorf("rotated %d times below the floor", st.Rotations)
	}
	if st.RotationsSkipped < 4 {
		t.Errorf("skipped %d rotations, want ≥ 4", st.RotationsSkipped)
	}
	if h := m.Pool(0).HealthyCount(); h != 2 {
		t.Errorf("healthy = %d, want 2", h)
	}
}

// TestElasticReview drives the controller's sizing pass directly
// (deterministically, no load race): a saturated peak grows the pool
// to MaxGroups, an idle peak shrinks it back to MinGroups.
func TestElasticReview(t *testing.T) {
	m := mustMesh(t, Options{
		Pools:     1,
		MinGroups: 1,
		MaxGroups: 2,
		Fleet:     lightFleet(1),
	})
	p := m.pools[0]

	p.peak.Store(5) // ratio 5/1 ≥ GrowAt
	m.ctl.reviewOnce()
	if h := p.fleet.HealthyCount(); h != 2 {
		t.Fatalf("after grow review: healthy = %d, want 2", h)
	}
	if g := m.ctl.grown.Load(); g != 1 {
		t.Fatalf("grown = %d, want 1", g)
	}

	p.peak.Store(0) // ratio 0 ≤ ShrinkAt
	m.ctl.reviewOnce()
	if err := p.fleet.Await(func(s fleet.Stats) bool {
		return s.Shrunk == 1 && len(s.Healthy) == 1
	}, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	if sh := m.ctl.shrunk.Load(); sh != 1 {
		t.Errorf("shrunk = %d, want 1", sh)
	}

	// At MinGroups an idle review must not shrink further.
	p.peak.Store(0)
	m.ctl.reviewOnce()
	if sh := m.ctl.shrunk.Load(); sh != 1 {
		t.Errorf("shrunk below MinGroups: %d", sh)
	}
}

// TestElasticGrowsThroughTicks covers the tick→trigger plumbing end to
// end: serial load on a one-group pool saturates capacity, so the
// first cadence review grows it.
func TestElasticGrowsThroughTicks(t *testing.T) {
	m := mustMesh(t, Options{
		Pools:        1,
		ElasticEvery: 2,
		MinGroups:    1,
		MaxGroups:    2,
		Fleet:        lightFleet(1),
	})
	s := m.Session("elastic-probe")
	for i := 0; i < 6; i++ {
		if code, _, err := s.Get("/index.html"); err != nil || code != 200 {
			t.Fatalf("request %d: %d %v", i, code, err)
		}
	}
	// Reviews run on the controller goroutine, so a trailing zero-load
	// review may legitimately shrink the grown pool back toward
	// MinGroups before this check runs. Settle on a roster that matches
	// the grow/shrink ledger rather than demanding the post-grow peak.
	if err := m.Await(func(st Stats) bool {
		return st.Grown >= 1 && m.Pool(0).HealthyCount() == 1+int(st.Grown)-int(st.Shrunk)
	}, 30*time.Second); err != nil {
		st := m.Stats()
		t.Fatalf("pool never settled after grow: %v (grown %d, shrunk %d, healthy %d)",
			err, st.Grown, st.Shrunk, m.Pool(0).HealthyCount())
	}
}

// TestPoolPortIsolation: each pool's groups live strictly inside its
// slice of the shared port budget, so pools can never collide even as
// sizing changes.
func TestPoolPortIsolation(t *testing.T) {
	const stride = 16
	m := mustMesh(t, Options{Pools: 2, PortStride: stride, Fleet: lightFleet(2)})
	base := fleet.DefaultBasePort
	for i := 0; i < m.Pools(); i++ {
		lo := base + uint16(i)*stride
		hi := lo + stride
		for _, g := range m.Pool(i).LiveGroups() {
			if g.Port < lo || g.Port >= hi {
				t.Errorf("pool %d group %d on port %d, want [%d,%d)", i, g.ID, g.Port, lo, hi)
			}
		}
	}
}

// TestMergedAuditTail: the mesh's Audit() source merges every pool's
// trail with pool tags (the fleet-of-fleets ops view).
func TestMergedAuditTail(t *testing.T) {
	m := mustMesh(t, Options{
		Pools:             2,
		RotateEvery:       2,
		AvailabilityFloor: 1,
		Seed:              9,
		Fleet:             lightFleet(2),
	})
	s := m.Session("audit-probe")
	for i := 0; i < 8; i++ {
		if _, _, err := s.Get("/index.html"); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if err := m.Await(func(st Stats) bool { return st.Rotations >= 1 }, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	buf, last, err := m.Audit().TailNDJSON(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last == 0 || len(buf) == 0 {
		t.Fatalf("merged tail empty after rotations (last=%d)", last)
	}
	tail := string(buf)
	if !strings.Contains(tail, `"pool":"pool`) || !strings.Contains(tail, `"action":"rotate+replace"`) {
		t.Errorf("merged tail missing pool tag or rotation action:\n%s", tail)
	}
}
