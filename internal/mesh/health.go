package mesh

// Pool health scoring. Each pool carries a fixed-point penalty score
// fed by its fault events — admission sheds, failed dispatches,
// quarantine windows, quorum-lost kills — and decayed on the mesh's
// dispatch-tick clock: the score halves every HealthHalfLife ticks.
// Reading the score adds a live term for groups currently degraded to
// a K-of-N quorum, so a pool absorbing evictions scores sick even
// between discrete events.
//
// A pool at or above HealthSickAt is sick: the rendezvous router
// demotes it (new sessions fall through to the best-ranked healthy
// pool), retries rank it last, rotation skips it (draining a pool
// that is already absorbing faults would trade the moving target for
// an outage), and the elastic controller grows it on the next review
// regardless of load ratio. Affinity routing stays sticky by design —
// a pinned key keeps its pool through sickness, because moving it
// would break the stateful-backend contract sticky sessions exist for.
//
// Everything here is wall-clock-free: scores are pure functions of
// the event sequence and the tick clock, so seeded campaigns with
// serialized traffic replay health decisions byte-identically.

// Event penalty weights. A shed is mild (load, not damage); a failed
// dispatch means a request died; a quarantine window means the pool
// lost a group to an alarm mid-flight; a quorum-lost kill is the
// severest single event short of losing the pool.
const (
	healthShedCost       = 1
	healthErrCost        = 4
	healthQuarantineCost = 8
	healthQuorumCost     = 12
	// healthDegradedCost weighs each currently degraded (quorum-serving)
	// group in the live term of the score.
	healthDegradedCost = 4
)

// healthDecay folds elapsed clock time into the stored score: every
// full HealthHalfLife window since the last decay halves it. Lazy and
// lock-free — whoever reads or bumps the score first settles the
// decay, and the CAS on healthTick elects exactly one settler per
// window.
func (p *pool) healthDecay(m *Mesh) {
	hl := m.opts.HealthHalfLife
	now := m.ticks.Load()
	for {
		last := p.healthTick.Load()
		if now < last+hl {
			return
		}
		steps := (now - last) / hl
		if !p.healthTick.CompareAndSwap(last, last+steps*hl) {
			continue
		}
		if steps > 62 {
			steps = 62 // score is already zero for any practical value
		}
		for {
			h := p.health.Load()
			if p.health.CompareAndSwap(h, h>>steps) {
				return
			}
		}
	}
}

// healthAdd charges one fault event to the pool's score.
func (p *pool) healthAdd(m *Mesh, cost int64) {
	p.healthDecay(m)
	p.health.Add(cost)
}

// healthScore returns the pool's current sickness score: the decayed
// event penalty plus the live degraded-group term.
func (p *pool) healthScore(m *Mesh) int64 {
	p.healthDecay(m)
	return p.health.Load() + int64(p.fleet.DegradedCount())*healthDegradedCost
}

// sick reports whether the pool's score has crossed the demotion
// threshold.
func (p *pool) sick(m *Mesh) bool { return p.healthScore(m) >= m.opts.HealthSickAt }

// PoolHealth exposes shard i's current health score (0 = fully
// healthy) — the value mesh_pool_health{pool} samples.
func (m *Mesh) PoolHealth(i int) int64 { return m.pools[i].healthScore(m) }

// bestHealthyPool returns the highest-rendezvous-weight pool for kh
// that is not currently sick, or nil when every pool is sick (the
// caller keeps its original choice — demotion must never make the
// mesh refuse service outright).
func (m *Mesh) bestHealthyPool(kh uint64) *pool {
	var best *pool
	var bestW uint64
	for i, salt := range m.salts {
		p := m.pools[i]
		if p.sick(m) {
			continue
		}
		if w := splitmix64(kh ^ salt); best == nil || w > bestW {
			best, bestW = p, w
		}
	}
	return best
}
