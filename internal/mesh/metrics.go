package mesh

import (
	"strconv"

	"nvariant/internal/obs"
)

// metrics is the mesh's registered metric set, created when
// Options.Obs is set. Dispatch-path updates are atomic adds — the
// instrumented session adds no allocations (see
// TestMeshSessionAddsNoAllocs). Series owned by this layer:
//
//	mesh_dispatched_total            dispatches completed through sessions
//	mesh_shed_total                  dispatches refused by admission control
//	mesh_retries_total               dispatch attempts past a request's first
//	mesh_reroutes_total              retries that landed on a non-home pool
//	mesh_retry_backoff_ticks         backoff ticks charged to the mesh clock
//	mesh_rotations_total             moving-target rotations completed
//	mesh_rotations_skipped_total     rotation triggers skipped at the availability floor or on a sick pool
//	mesh_grows_total                 elastic group additions across pools
//	mesh_shrinks_total               elastic group retirements across pools
//	mesh_rotation_drain_seconds      rotation start → pool replenished
//	mesh_exposure_window_seconds     rotated group's age: how long its masks were exposed
//	mesh_pool_healthy_groups{pool}   per-shard healthy group count (sampled)
//	mesh_pool_degraded_groups{pool}  per-shard quorum-degraded group count (sampled)
//	mesh_pool_health{pool}           per-shard fault-penalty health score (sampled; 0 = healthy)
type metrics struct {
	dispatched *obs.Counter
	shed       *obs.Counter
	retries    *obs.Counter
	reroutes   *obs.Counter
	backoff    *obs.Counter
	rotations  *obs.Counter
	rotSkipped *obs.Counter
	grows      *obs.Counter
	shrinks    *obs.Counter
	drain      *obs.Histogram
	exposure   *obs.Histogram
}

// newMetrics registers the mesh metric set on reg, including one
// healthy-groups gauge per pool labeled by shard index.
func newMetrics(reg *obs.Registry, m *Mesh) *metrics {
	mm := &metrics{
		dispatched: reg.Counter("mesh_dispatched_total", "Dispatches completed through mesh sessions."),
		shed:       reg.Counter("mesh_shed_total", "Dispatches refused by per-pool admission control."),
		retries:    reg.Counter("mesh_retries_total", "Dispatch attempts past a request's first (retry-with-backoff)."),
		reroutes:   reg.Counter("mesh_reroutes_total", "Retries that landed on a pool other than the session's home."),
		backoff:    reg.Counter("mesh_retry_backoff_ticks", "Retry backoff ticks charged to the mesh clock."),
		rotations:  reg.Counter("mesh_rotations_total", "Moving-target rotations completed (drain + fresh-spec replace)."),
		rotSkipped: reg.Counter("mesh_rotations_skipped_total", "Rotation triggers skipped at the availability floor or on a sick pool."),
		grows:      reg.Counter("mesh_grows_total", "Elastic group additions across pools."),
		shrinks:    reg.Counter("mesh_shrinks_total", "Elastic group retirements across pools."),
		drain: reg.Histogram("mesh_rotation_drain_seconds",
			"Rotation start to pool replenished with the replacement group.", nil),
		exposure: reg.Histogram("mesh_exposure_window_seconds",
			"Rotated group's age at drain: how long one mask set stayed exposed.", nil),
	}
	for _, p := range m.pools {
		f := p.fleet
		pl := p
		reg.GaugeFunc("mesh_pool_healthy_groups", "Healthy groups in this shard (sampled).",
			func() float64 { return float64(f.HealthyCount()) },
			obs.L("pool", strconv.Itoa(p.id)))
		reg.GaugeFunc("mesh_pool_degraded_groups", "Groups in this shard serving on a K-of-N quorum (sampled).",
			func() float64 { return float64(f.DegradedCount()) },
			obs.L("pool", strconv.Itoa(p.id)))
		reg.GaugeFunc("mesh_pool_health", "This shard's decayed fault-penalty score (sampled; 0 = healthy, >= sick threshold demotes).",
			func() float64 { return float64(pl.healthScore(m)) },
			obs.L("pool", strconv.Itoa(p.id)))
	}
	return mm
}
