// Package mesh scales the fleet's single pool to a sharded
// fleet-of-fleets: P independent pools, each a fleet.Fleet on its own
// simulated network segment with its own slice of a shared port
// budget, behind a session router that maps client keys to pools by
// rendezvous hashing or sticky affinity.
//
// Two controllers run above the pools, both driven by the mesh's own
// rendezvous-ticked clock (one tick per completed dispatch, no wall
// clock — so seeded runs are byte-reproducible):
//
//   - Moving-target rotation: on a seeded schedule, drain a *healthy*
//     group and replace it with a freshly generated DiversitySpec, so
//     the reexpression masks an attacker could be probing expire even
//     when the monitor never fires. Rotation is availability-aware: a
//     pool never rotates below the configured floor of healthy groups.
//   - Elastic sizing: grow or shrink each pool's group count from its
//     observed peak-inflight/capacity ratio, bounded by MinGroups and
//     MaxGroups.
//
// Admission control is per pool: a bounded in-flight budget sheds
// excess load with the typed ErrSaturated instead of queueing without
// bound — backpressure the caller can act on.
package mesh

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nvariant/internal/fleet"
	"nvariant/internal/nvkernel"
	"nvariant/internal/obs"
	"nvariant/internal/simnet"
)

// Default option values.
const (
	// DefaultPools is the default shard count P.
	DefaultPools = 2
	// DefaultPortStride is each pool's slice of the shared port budget:
	// pool i draws group ports from [BasePort+i*stride, BasePort+(i+1)*stride).
	DefaultPortStride uint16 = 512
	// DefaultDrainTimeout bounds how long a rotating or shrinking group
	// may finish in-flight connections before its listener closes.
	DefaultDrainTimeout = 2 * time.Second
	// DefaultRecoverTimeout bounds how long the rotation controller
	// waits for a pool to replenish after draining a group.
	DefaultRecoverTimeout = 15 * time.Second
	// DefaultGrowAt / DefaultShrinkAt are the elastic controller's
	// peak-inflight/capacity thresholds.
	DefaultGrowAt   = 0.75
	DefaultShrinkAt = 0.20
	// DefaultRetryBackoff is the base retry backoff in mesh ticks; the
	// k-th retry of a dispatch backs off DefaultRetryBackoff << (k-1)
	// ticks before re-routing.
	DefaultRetryBackoff uint64 = 2
	// DefaultHealthHalfLife is the dispatch-tick half-life of a pool's
	// health penalty score.
	DefaultHealthHalfLife uint64 = 64
	// DefaultHealthSickAt is the decayed penalty score at which a pool
	// counts as sick: the router demotes it and rotation skips it.
	DefaultHealthSickAt int64 = 16
	// affinitySlots sizes the sticky-routing table (fixed so the lookup
	// path allocates nothing).
	affinitySlots = 4096
)

// ErrSaturated is returned by Session dispatch when the routed pool's
// in-flight budget is spent — the admission controller shedding load
// instead of queueing it. Callers distinguish it with errors.Is.
var ErrSaturated = errors.New("mesh: pool saturated (admission shed)")

// errMeshClosed reports an operation against a stopped mesh.
var errMeshClosed = errors.New("mesh: stopped")

// RouterPolicy selects how session keys map to pools.
type RouterPolicy int

const (
	// HashRouting is rendezvous (highest-random-weight) consistent
	// hashing over seeded per-pool salts: every key has a stable home
	// pool, and re-sizing the mesh would move only the minimal share of
	// keys.
	HashRouting RouterPolicy = iota
	// AffinityRouting pins each key to the pool that first served it
	// (claimed round-robin, so load spreads), falling back to
	// rendezvous hashing on table collisions. Sticky sessions for
	// stateful backends.
	AffinityRouting
)

// String names the policy for reports.
func (p RouterPolicy) String() string {
	switch p {
	case HashRouting:
		return "hash"
	case AffinityRouting:
		return "affinity"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures a mesh.
type Options struct {
	// Pools is the shard count P (default DefaultPools).
	Pools int
	// Policy selects key→pool routing (default HashRouting).
	Policy RouterPolicy
	// MaxInflight bounds each pool's concurrent dispatches; excess is
	// shed with ErrSaturated. 0 means unbounded (no admission control).
	MaxInflight int
	// RotateEvery, when non-zero, triggers one moving-target rotation
	// every RotateEvery mesh ticks (completed dispatches). The rotated
	// pool is drawn from the mesh's seeded RNG; the victim is the
	// pool's oldest healthy group.
	RotateEvery uint64
	// AvailabilityFloor is the healthy-group count a pool must keep
	// while rotating: a rotation that would drop a pool to or below the
	// floor is skipped (and counted). Default: Fleet.Groups-1, min 1.
	AvailabilityFloor int
	// ElasticEvery, when non-zero, reviews every pool's sizing every
	// ElasticEvery mesh ticks, growing at GrowAt and shrinking at
	// ShrinkAt peak-inflight/capacity ratios.
	ElasticEvery uint64
	// MinGroups / MaxGroups bound elastic sizing (defaults:
	// Fleet.Groups and 2*Fleet.Groups).
	MinGroups int
	MaxGroups int
	// GrowAt / ShrinkAt are the elastic thresholds (defaults
	// DefaultGrowAt / DefaultShrinkAt).
	GrowAt   float64
	ShrinkAt float64
	// PortStride is each pool's slice of the shared port budget
	// (default DefaultPortStride). Pool i's fleet gets
	// BasePort+i*stride with PortSpan=stride, so pools never collide
	// even as elastic sizing grows them.
	PortStride uint16
	// DrainTimeout / RecoverTimeout bound rotation draining and
	// replenishment (defaults above).
	DrainTimeout   time.Duration
	RecoverTimeout time.Duration
	// Seed drives pool-fleet seeds, router salts, and the rotation
	// schedule; 0 means a fixed default so runs are reproducible.
	Seed int64
	// RetryBudget, when positive, lets a session retry a failed
	// dispatch up to RetryBudget times: each retry backs off a
	// vtick-counted window (RetryBackoff << attempt, charged to the
	// mesh clock) and re-routes to the next-ranked rendezvous pool.
	// An exhausted budget surfaces as ErrRetriesExhausted. 0 disables
	// retries; the single-attempt path is unchanged and allocation-free.
	RetryBudget int
	// RetryBackoff is the base backoff in mesh ticks (default
	// DefaultRetryBackoff).
	RetryBackoff uint64
	// HealthHalfLife is the dispatch-tick half-life of each pool's
	// health penalty score (default DefaultHealthHalfLife).
	HealthHalfLife uint64
	// HealthSickAt is the decayed penalty score at which a pool is
	// demoted by the router and skipped by rotation (default
	// DefaultHealthSickAt).
	HealthSickAt int64
	// Faults, when set, is called once per pool with the pool's derived
	// fleet seed and returns the fault injector installed on that
	// pool's network segment — the chaos data-plane plans threaded
	// through routing. Nil pools run fault-free.
	Faults func(poolSeed int64) simnet.FaultInjector
	// Kernel, when set, is called once per pool with the pool's derived
	// fleet seed and returns the kernel options (fault hooks) every
	// group in that pool — initial, replacement, and respawned — runs
	// with.
	Kernel func(poolSeed int64) []nvkernel.Option
	// Fleet is the per-pool fleet template. Seed, BasePort, PortSpan,
	// Faults, Kernel, and Obs are derived per pool from the mesh
	// options; everything else applies as given.
	Fleet fleet.Options
	// Obs, when set, instruments the mesh (mesh_* series) and every
	// pool fleet under it. Nil runs uninstrumented.
	Obs *obs.Registry
}

// withDefaults fills zero-valued options.
func (o Options) withDefaults() Options {
	if o.Pools <= 0 {
		o.Pools = DefaultPools
	}
	if o.PortStride == 0 {
		o.PortStride = DefaultPortStride
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	if o.RecoverTimeout <= 0 {
		o.RecoverTimeout = DefaultRecoverTimeout
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	groups := o.Fleet.Groups
	if groups <= 0 {
		groups = fleet.DefaultGroups
	}
	if o.AvailabilityFloor <= 0 {
		o.AvailabilityFloor = groups - 1
		if o.AvailabilityFloor < 1 {
			o.AvailabilityFloor = 1
		}
	}
	if o.MinGroups <= 0 {
		o.MinGroups = groups
	}
	if o.MaxGroups <= 0 {
		o.MaxGroups = 2 * groups
	}
	if o.GrowAt <= 0 {
		o.GrowAt = DefaultGrowAt
	}
	if o.ShrinkAt <= 0 {
		o.ShrinkAt = DefaultShrinkAt
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.HealthHalfLife == 0 {
		o.HealthHalfLife = DefaultHealthHalfLife
	}
	if o.HealthSickAt <= 0 {
		o.HealthSickAt = DefaultHealthSickAt
	}
	return o
}

// pool is one shard: a fleet on its own network segment plus the
// mesh-level admission and load accounting.
type pool struct {
	id    int
	fleet *fleet.Fleet
	// inflight is the pool's current mesh-level dispatch count, bounded
	// by MaxInflight via CAS admission.
	inflight atomic.Int64
	// peak is the high-water inflight since the last elastic review
	// (Swap(0) on review).
	peak atomic.Int64
	// served / shed are the pool's settled dispatch outcomes.
	served atomic.Int64
	shed   atomic.Int64
	// health is the pool's fixed-point fault-penalty score, decayed
	// lazily on the mesh tick clock (see health.go); healthTick is the
	// tick the score was last decayed to.
	health     atomic.Int64
	healthTick atomic.Uint64
}

// admit reserves one in-flight slot, or reports saturation. limit <= 0
// disables admission control but still tracks load for elasticity.
func (p *pool) admit(limit int64) bool {
	for {
		cur := p.inflight.Load()
		if limit > 0 && cur >= limit {
			return false
		}
		if p.inflight.CompareAndSwap(cur, cur+1) {
			next := cur + 1
			for {
				pk := p.peak.Load()
				if next <= pk || p.peak.CompareAndSwap(pk, next) {
					return true
				}
			}
		}
	}
}

// Mesh is a sharded fleet-of-fleets behind a session router.
type Mesh struct {
	opts  Options
	pools []*pool
	// salts are the seeded per-pool rendezvous-hash weights.
	salts []uint64
	// affinity is the sticky-routing table: each slot packs a 48-bit
	// key fingerprint and a pool index+1 (0 = empty), claimed by CAS.
	affinity []atomic.Uint64
	// rrAssign spreads first-seen affinity claims round-robin.
	rrAssign atomic.Uint64
	// ticks is the mesh clock: one tick per completed dispatch plus one
	// per charged retry-backoff tick — the wall-clock-free cadence
	// rotation, elasticity, and health decay run on. Backoff charges
	// advance the clock so the controllers see fault-induced stalls as
	// elapsed time.
	ticks atomic.Uint64
	// dispatched counts completed dispatches only (Stats.Dispatched);
	// it diverges from ticks once retries charge backoff.
	dispatched atomic.Uint64
	// retries / reroutes / backoffTicks are the retry machinery's
	// settled outcomes: attempts past the first, attempts that landed
	// on a different pool than the session's home, and total backoff
	// ticks charged to the clock.
	retries      atomic.Uint64
	reroutes     atomic.Uint64
	backoffTicks atomic.Uint64
	ctl          *controller
	audit        *fleet.MultiAudit
	obs          *metrics
	wg           sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// New builds P pools and starts the controller. Pool i runs on its own
// network segment with seed derived from Options.Seed (so pools are
// diversity-independent) and port budget [BasePort+i*stride, +stride).
func New(opts Options) (*Mesh, error) {
	opts = opts.withDefaults()
	base := opts.Fleet.BasePort
	if base == 0 {
		base = fleet.DefaultBasePort
	}
	span := int(base) + opts.Pools*int(opts.PortStride)
	if span > 1<<16 {
		return nil, fmt.Errorf("mesh: %d pools × stride %d from base %d overflow the port space", opts.Pools, opts.PortStride, base)
	}
	m := &Mesh{
		opts:     opts,
		salts:    make([]uint64, opts.Pools),
		affinity: make([]atomic.Uint64, affinitySlots),
		audit:    fleet.NewMultiAudit(),
	}
	// The controller struct exists before any pool starts so Stats is
	// safe on every path, including Stop during a failed New.
	m.ctl = newController(m, rand.New(rand.NewSource(opts.Seed)))
	for i := range m.salts {
		m.salts[i] = splitmix64(uint64(opts.Seed) ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	}
	for i := 0; i < opts.Pools; i++ {
		fo := opts.Fleet
		fo.BasePort = base + uint16(i)*opts.PortStride
		fo.PortSpan = opts.PortStride
		fo.Seed = poolSeed(opts.Seed, i)
		fo.Obs = opts.Obs
		// Per-pool fault threading: each pool's injector and kernel
		// hooks draw from the pool's own derived seed, and the fleet
		// carries them into every group it ever spawns — initial,
		// replacement, and respawned.
		if opts.Faults != nil {
			fo.Faults = opts.Faults(fo.Seed)
		}
		if opts.Kernel != nil {
			fo.Kernel = opts.Kernel(fo.Seed)
		}
		f, err := fleet.New(fo)
		if err != nil {
			_, _ = m.Stop()
			return nil, fmt.Errorf("mesh: start pool %d: %w", i, err)
		}
		p := &pool{id: i, fleet: f}
		m.pools = append(m.pools, p)
		m.audit.Attach("pool"+strconv.Itoa(i), f.Audit())
	}
	if opts.Obs != nil {
		m.obs = newMetrics(opts.Obs, m)
	}
	m.wg.Add(1)
	go m.ctl.run()
	return m, nil
}

// poolSeed derives pool i's fleet seed from the mesh seed so every
// pool draws independent reexpression masks.
func poolSeed(seed int64, i int) int64 {
	s := int64(splitmix64(uint64(seed) + uint64(i)*0xbf58476d1ce4e5b9))
	if s == 0 {
		s = 1
	}
	return s
}

// Pools returns the shard count P.
func (m *Mesh) Pools() int { return len(m.pools) }

// Pool returns shard i's fleet — the chaos campaign's direct line to a
// pool's network segment and audit log.
func (m *Mesh) Pool(i int) *fleet.Fleet { return m.pools[i].fleet }

// Audit returns the merged, vtime-ordered recovery trail of every
// pool (an obs.AuditSource for the ops /audit endpoint).
func (m *Mesh) Audit() *fleet.MultiAudit { return m.audit }

// Ticks returns the mesh clock: completed dispatches plus charged
// retry-backoff ticks.
func (m *Mesh) Ticks() uint64 { return m.ticks.Load() }

// RotationsHandled returns how many rotation triggers the controller
// has fully processed (rotated or deliberately skipped). Campaigns
// await this to settle before reading counters.
func (m *Mesh) RotationsHandled() uint64 { return m.ctl.rotHandled.Load() }

// tick advances the mesh clock (one completed dispatch or one charged
// backoff tick) and fires the controllers on their cadences. Hot path:
// atomic adds and a non-blocking channel send only.
func (m *Mesh) tick() {
	t := m.ticks.Add(1)
	kick := false
	if re := m.opts.RotateEvery; re > 0 && t%re == 0 {
		m.ctl.rotWanted.Add(1)
		kick = true
	}
	if ee := m.opts.ElasticEvery; ee > 0 && t%ee == 0 {
		m.ctl.elWanted.Add(1)
		kick = true
	}
	if kick {
		m.ctl.kick()
	}
}

// chargeBackoff advances the mesh clock by n backoff ticks, one at a
// time so every cadence boundary inside the window still fires its
// trigger. The clock is the only notion of time retries wait on —
// never the wall clock — which keeps seeded campaigns byte-identical.
func (m *Mesh) chargeBackoff(n uint64) {
	m.backoffTicks.Add(n)
	if m.obs != nil {
		m.obs.backoff.Add(n)
	}
	for i := uint64(0); i < n; i++ {
		m.tick()
	}
}

// settleControllers blocks (bounded by RecoverTimeout) until every
// rotation and sizing trigger fired so far has been fully handled.
// The retry path calls this after charging backoff: on the vtick
// clock, "waiting out the backoff" means letting the control-plane
// work those ticks scheduled finish — which is also what keeps a
// retried dispatch from racing a rotation its own backoff triggered,
// so seeded campaign runs stay byte-identical. Only wall-clock
// polling lives here; no decision depends on real time.
func (m *Mesh) settleControllers() {
	deadline := time.Now().Add(m.opts.RecoverTimeout)
	for {
		if m.ctl.rotHandled.Load() >= m.ctl.rotWanted.Load() &&
			m.ctl.elHandled.Load() >= m.ctl.elWanted.Load() {
			return
		}
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// PoolStats is one shard's snapshot.
type PoolStats struct {
	Pool   int
	Served int64
	Shed   int64
	Fleet  fleet.Stats
}

// Stats is a point-in-time mesh snapshot.
type Stats struct {
	// Policy is the active routing policy.
	Policy RouterPolicy
	// Dispatched counts completed dispatches. The mesh clock (Ticks)
	// additionally counts charged retry-backoff ticks.
	Dispatched uint64
	// Shed counts dispatches refused by admission control.
	Shed int64
	// Retries counts dispatch attempts past each request's first;
	// Reroutes counts retries that landed on a pool other than the
	// session's home; BackoffTicks is the total backoff charged to the
	// mesh clock.
	Retries      uint64
	Reroutes     uint64
	BackoffTicks uint64
	// Rotations / RotationsSkipped are the controller's moving-target
	// outcomes; Handled = Rotations + RotationsSkipped triggers fully
	// processed.
	Rotations        uint64
	RotationsSkipped uint64
	RotationsHandled uint64
	// Grown / Shrunk are elastic sizing outcomes across all pools.
	Grown  uint64
	Shrunk uint64
	// DegradedPools counts shards with at least one group serving on a
	// K-of-N quorum (an eviction absorbed, respawn pending) — the
	// mesh-wide availability-exposure number quorum campaigns gate on.
	DegradedPools int
	// Pools lists per-shard snapshots in shard order.
	Pools []PoolStats
}

// String renders a one-line mesh summary plus per-pool lines.
func (s Stats) String() string {
	out := fmt.Sprintf("mesh[%s]: %d pools, %d dispatched, %d shed, %d retries (%d rerouted, %d backoff ticks), %d rotations (%d skipped), %d grown, %d shrunk",
		s.Policy, len(s.Pools), s.Dispatched, s.Shed, s.Retries, s.Reroutes, s.BackoffTicks, s.Rotations, s.RotationsSkipped, s.Grown, s.Shrunk)
	for _, p := range s.Pools {
		out += fmt.Sprintf("\n pool %d: served=%d shed=%d healthy=%d detections=%d rotated=%d",
			p.Pool, p.Served, p.Shed, len(p.Fleet.Healthy), p.Fleet.Detections, p.Fleet.Rotated)
	}
	return out
}

// Stats snapshots the mesh.
func (m *Mesh) Stats() Stats {
	s := Stats{
		Policy:           m.opts.Policy,
		Dispatched:       m.dispatched.Load(),
		Retries:          m.retries.Load(),
		Reroutes:         m.reroutes.Load(),
		BackoffTicks:     m.backoffTicks.Load(),
		Rotations:        m.ctl.rotated.Load(),
		RotationsSkipped: m.ctl.skipped.Load(),
		RotationsHandled: m.ctl.rotHandled.Load(),
		Grown:            m.ctl.grown.Load(),
		Shrunk:           m.ctl.shrunk.Load(),
	}
	for _, p := range m.pools {
		s.Shed += p.shed.Load()
		ps := PoolStats{
			Pool:   p.id,
			Served: p.served.Load(),
			Shed:   p.shed.Load(),
			Fleet:  p.fleet.Stats(),
		}
		if ps.Fleet.DegradedGroups > 0 {
			s.DegradedPools++
		}
		s.Pools = append(s.Pools, ps)
	}
	return s
}

// Await polls Stats until cond holds or timeout elapses — rotation and
// replacement are asynchronous, so campaigns settle explicitly.
func (m *Mesh) Await(cond func(Stats) bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s := m.Stats()
		if cond(s) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mesh: condition not met within %v: %s", timeout, s)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Stop halts the controller, stops every pool, and returns the final
// stats (first pool error wins).
func (m *Mesh) Stop() (Stats, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return m.Stats(), errMeshClosed
	}
	m.closed = true
	m.mu.Unlock()

	if m.ctl != nil {
		m.ctl.halt()
	}
	m.wg.Wait()
	var firstErr error
	for _, p := range m.pools {
		if _, err := p.fleet.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return m.Stats(), firstErr
}

// splitmix64 is the finalizer used for salts, pool seeds, and
// rendezvous weights — full-avalanche so adjacent inputs decorrelate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
