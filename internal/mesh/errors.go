package mesh

// The typed dispatch-error taxonomy. Every way a session dispatch can
// fail resolves to an errors.Is-able sentinel, so campaigns and
// callers classify outcomes without string-matching:
//
//	ErrSaturated        admission shed (mesh.go) — the pool's in-flight
//	                    budget was spent
//	ErrQuorumLostKill   the dispatch raced a quorum-lost group kill:
//	                    the monitor tore the group down because a
//	                    faulted variant's eviction would have dropped
//	                    it below K
//	ErrQuarantineWindow the dispatch raced a quarantine: the connection
//	                    died while the monitor was killing an alarmed
//	                    group
//	ErrBadResponse      a response arrived but carried a non-2xx status;
//	                    raised only on sessions with a retry budget,
//	                    where a known-good request's failure status can
//	                    only mean wire corruption or a mid-kill response
//	ErrRetriesExhausted the session's retry budget was spent without a
//	                    successful dispatch (wraps the last classified
//	                    attempt error)
//
// Classification is counter-delta based and lock-free: the session
// snapshots the routed fleet's alarm and quorum-kill counters before
// the dispatch (two atomic loads, no allocation) and re-reads them on
// the error path. A transport error with an advanced counter is
// attributed to that recovery window; wrapping only happens on the
// error path, so the happy path stays allocation-free.

import (
	"errors"
	"fmt"
)

var (
	// ErrQuorumLostKill marks a dispatch error attributed to a
	// quorum-lost group kill in the routed pool.
	ErrQuorumLostKill = errors.New("mesh: dispatch hit a quorum-lost group kill")
	// ErrQuarantineWindow marks a dispatch error attributed to a
	// quarantine in the routed pool (an alarmed group torn down while
	// the request was in flight).
	ErrQuarantineWindow = errors.New("mesh: dispatch hit a quarantine window")
	// ErrBadResponse marks a dispatch that yielded a non-2xx status on
	// a session with a retry budget. Budgeted sessions assume the
	// request is well-formed against the known corpus, so a failure
	// status is a faulted dispatch to retry, not a result to return.
	// Sessions without a budget pass the status through untouched.
	ErrBadResponse = errors.New("mesh: dispatch returned a failure status")
	// ErrRetriesExhausted reports that a session's retry budget was
	// spent; it wraps the final attempt's classified error.
	ErrRetriesExhausted = errors.New("mesh: retry budget exhausted")
)

// dispatchSentinels lists every sentinel a classified dispatch error
// can carry, in the order classification prefers them.
var dispatchSentinels = []error{ErrSaturated, ErrQuorumLostKill, ErrQuarantineWindow, ErrBadResponse, ErrRetriesExhausted}

// dispatchErrorNames maps each sentinel to its stable matrix label.
var dispatchErrorNames = map[error]string{
	ErrSaturated:        "saturated",
	ErrQuorumLostKill:   "quorum-lost-kill",
	ErrQuarantineWindow: "quarantine-window",
	ErrBadResponse:      "bad-response",
	ErrRetriesExhausted: "retries-exhausted",
}

// DispatchErrorName returns the stable label of the sentinel err
// carries ("saturated", "quorum-lost-kill", "quarantine-window",
// "bad-response", "retries-exhausted"), or "" when err matches none of
// them.
func DispatchErrorName(err error) string {
	for _, s := range dispatchSentinels {
		if errors.Is(err, s) {
			return dispatchErrorNames[s]
		}
	}
	return ""
}

// DispatchErrorByName resolves a label from DispatchErrorName back to
// its sentinel — the round-trip campaigns rely on when re-deriving
// typed outcomes from a serialized matrix.
func DispatchErrorByName(name string) (error, bool) {
	for s, n := range dispatchErrorNames {
		if n == name {
			return s, true
		}
	}
	return nil, false
}

// classifyDispatchError attributes a dispatch error to the recovery
// activity observed in the routed pool while the request was in
// flight: alarmDelta and quorumDelta are the advances of the fleet's
// alarm and quorum-kill counters across the dispatch. Quorum kills are
// a subset of alarms, so the more specific sentinel wins. Errors that
// already carry a sentinel (ErrSaturated, ErrBadResponse — a response
// arrived, so no kill window can own it) and nil pass through
// untouched; only attributed errors allocate (a wrap on the error
// path).
func classifyDispatchError(err error, alarmDelta, quorumDelta uint64) error {
	switch {
	case err == nil || errors.Is(err, ErrSaturated) || errors.Is(err, ErrBadResponse):
		return err
	case quorumDelta > 0:
		return fmt.Errorf("%w: %w", ErrQuorumLostKill, err)
	case alarmDelta > 0:
		return fmt.Errorf("%w: %w", ErrQuarantineWindow, err)
	default:
		return err
	}
}
