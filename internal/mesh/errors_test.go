package mesh

import (
	"errors"
	"fmt"
	"testing"
)

// TestDispatchErrorRoundTrip: every sentinel's stable label resolves
// back to the identical sentinel, and classification survives wrapping
// — the property campaigns rely on when re-deriving typed outcomes
// from a serialized matrix.
func TestDispatchErrorRoundTrip(t *testing.T) {
	for _, s := range dispatchSentinels {
		name := DispatchErrorName(s)
		if name == "" {
			t.Fatalf("sentinel %v has no stable label", s)
		}
		back, ok := DispatchErrorByName(name)
		if !ok {
			t.Fatalf("label %q does not resolve", name)
		}
		if back != s {
			t.Errorf("label %q resolved to %v, want %v", name, back, s)
		}
		// Wrapped sentinels keep their label.
		wrapped := fmt.Errorf("outer context: %w", s)
		if got := DispatchErrorName(wrapped); got != name {
			t.Errorf("wrapped %q labeled %q", name, got)
		}
	}
	if got := DispatchErrorName(errors.New("unrelated")); got != "" {
		t.Errorf("unrelated error labeled %q, want empty", got)
	}
	if _, ok := DispatchErrorByName("no-such-label"); ok {
		t.Error("unknown label resolved to a sentinel")
	}
}

// TestClassifyDispatchError pins the attribution rules: quorum kills
// outrank quarantines, already-typed errors and nil pass through, and
// an un-raced transport error stays untyped.
func TestClassifyDispatchError(t *testing.T) {
	base := errors.New("connection reset")
	cases := []struct {
		name        string
		err         error
		alarms      uint64
		quorum      uint64
		wantLabel   string
		wantPassRaw bool
	}{
		{"nil passes", nil, 3, 3, "", true},
		{"saturated passes", ErrSaturated, 1, 1, "saturated", true},
		{"bad-response passes", fmt.Errorf("%w: status 400", ErrBadResponse), 1, 0, "bad-response", false},
		{"quorum outranks quarantine", base, 2, 1, "quorum-lost-kill", false},
		{"quarantine window", base, 1, 0, "quarantine-window", false},
		{"unraced stays untyped", base, 0, 0, "", false},
	}
	for _, tc := range cases {
		got := classifyDispatchError(tc.err, tc.alarms, tc.quorum)
		if label := DispatchErrorName(got); label != tc.wantLabel {
			t.Errorf("%s: label %q, want %q", tc.name, label, tc.wantLabel)
		}
		if tc.wantPassRaw && !errors.Is(got, tc.err) && got != nil {
			t.Errorf("%s: classified error lost the original", tc.name)
		}
		if tc.err != nil && got != nil && !errors.Is(got, tc.err) {
			t.Errorf("%s: wrap dropped the underlying error", tc.name)
		}
	}
}
