package mesh

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRetryReroutesOnSaturation: a budgeted session whose home pool is
// saturated backs off and re-routes to the next-ranked rendezvous
// pool, and the mesh counts the retry, the re-route, and the charged
// backoff ticks.
func TestRetryReroutesOnSaturation(t *testing.T) {
	m := mustMesh(t, Options{Pools: 2, MaxInflight: 1, RetryBudget: 2, Seed: 21, Fleet: lightFleet(1)})
	s := m.Session("reroute-probe")
	home := s.pool

	home.inflight.Add(1) // saturate the home pool from the outside
	code, _, err := s.Get("/index.html")
	home.inflight.Add(-1)
	if err != nil || code != 200 {
		t.Fatalf("budgeted session did not recover: %d %v", code, err)
	}
	st := m.Stats()
	if st.Retries != 1 || st.Reroutes != 1 {
		t.Errorf("retries=%d reroutes=%d, want 1/1", st.Retries, st.Reroutes)
	}
	if want := m.opts.RetryBackoff; st.BackoffTicks != want {
		t.Errorf("backoff ticks = %d, want %d (one attempt at base)", st.BackoffTicks, want)
	}
	if st.Shed != 1 {
		t.Errorf("shed = %d, want 1 (the saturated first attempt)", st.Shed)
	}
}

// TestRetriesExhaustedTyped: with no alternative pool and a saturated
// home, the budget drains, the error carries both ErrRetriesExhausted
// and the final attempt's sentinel, and the charged backoff follows
// the exponential schedule (base, then base<<1, ...).
func TestRetriesExhaustedTyped(t *testing.T) {
	m := mustMesh(t, Options{Pools: 1, MaxInflight: 1, RetryBudget: 2, Fleet: lightFleet(1)})
	s := m.Session("exhaust-probe")
	s.pool.inflight.Add(1)
	defer s.pool.inflight.Add(-1)

	_, _, err := s.Get("/index.html")
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("exhausted error lost the final attempt's sentinel: %v", err)
	}
	st := m.Stats()
	if st.Retries != 2 || st.Reroutes != 0 {
		t.Errorf("retries=%d reroutes=%d, want 2/0", st.Retries, st.Reroutes)
	}
	base := m.opts.RetryBackoff
	if want := base + base<<1; st.BackoffTicks != want {
		t.Errorf("backoff ticks = %d, want %d (exponential schedule)", st.BackoffTicks, want)
	}
}

// TestBadResponseRetriedOnBudget: a budgeted session treats a non-2xx
// status as a faulted dispatch (the benign corpus is known-good, so a
// failure status means wire corruption), while an unbudgeted session
// passes the status through untouched.
func TestBadResponseRetriedOnBudget(t *testing.T) {
	plain := mustMesh(t, Options{Pools: 1, Fleet: lightFleet(1)})
	s := plain.Session("status-probe")
	if code, _, err := s.Get("/no-such-uri.html"); err != nil || code != 404 {
		t.Fatalf("unbudgeted session: %d %v, want plain 404", code, err)
	}

	budgeted := mustMesh(t, Options{Pools: 1, RetryBudget: 1, Fleet: lightFleet(1)})
	b := budgeted.Session("status-probe")
	_, _, err := b.Get("/no-such-uri.html")
	if !errors.Is(err, ErrRetriesExhausted) || !errors.Is(err, ErrBadResponse) {
		t.Fatalf("budgeted session: %v, want ErrRetriesExhausted wrapping ErrBadResponse", err)
	}
	if st := budgeted.Stats(); st.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Retries)
	}
}

// TestHealthDecayDeterministic: the health score is a pure function of
// the event sequence and the tick clock — identical meshes fed the
// identical sequence report identical scores at every half-life
// boundary, and each boundary halves the stored penalty.
func TestHealthDecayDeterministic(t *testing.T) {
	run := func() []int64 {
		m := mustMesh(t, Options{Pools: 1, Seed: 33, Fleet: lightFleet(1)})
		p := m.pools[0]
		p.healthAdd(m, 16)
		scores := []int64{p.healthScore(m)}
		for window := 0; window < 4; window++ {
			for i := uint64(0); i < m.opts.HealthHalfLife; i++ {
				m.tick()
			}
			scores = append(scores, p.healthScore(m))
		}
		return scores
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("score sequence diverged at window %d: %v vs %v", i, a, b)
		}
	}
	want := []int64{16, 8, 4, 2, 1}
	for i, w := range want {
		if a[i] != w {
			t.Fatalf("decay schedule = %v, want %v", a, want)
		}
	}
}

// TestSickPoolDemotedAndRecovers: hash routing demotes a sick home
// pool to the next-ranked healthy pool and restores it once the score
// decays under the threshold. With every pool sick, the home keeps
// serving — demotion never refuses service.
func TestSickPoolDemotedAndRecovers(t *testing.T) {
	m := mustMesh(t, Options{Pools: 2, Seed: 44, Fleet: lightFleet(1)})
	const key = "demote-probe"
	home := m.RouteKey(key)
	alt := 1 - home

	m.pools[home].healthAdd(m, m.opts.HealthSickAt)
	if got := m.RouteKey(key); got != alt {
		t.Fatalf("sick home %d still routed (got %d, want demotion to %d)", home, got, alt)
	}
	// Both pools sick: the home pool wins again (no healthy alternative).
	m.pools[alt].healthAdd(m, m.opts.HealthSickAt)
	if got := m.RouteKey(key); got != home {
		t.Fatalf("all-sick mesh routed %d, want original home %d", got, home)
	}
	// One half-life halves both scores under the threshold: recovered.
	for i := uint64(0); i < m.opts.HealthHalfLife; i++ {
		m.tick()
	}
	if got := m.RouteKey(key); got != home {
		t.Errorf("recovered mesh routed %d, want home %d", got, home)
	}
}

// TestFaultPressureGrowsPool: a sick pool grows on the next elastic
// review regardless of load ratio, and sickness suppresses shrinking
// until the score decays.
func TestFaultPressureGrowsPool(t *testing.T) {
	m := mustMesh(t, Options{Pools: 1, MinGroups: 1, MaxGroups: 2, Fleet: lightFleet(1)})
	p := m.pools[0]

	p.healthAdd(m, m.opts.HealthSickAt)
	p.peak.Store(0) // idle — only fault pressure justifies the grow
	m.ctl.reviewOnce()
	if h := p.fleet.HealthyCount(); h != 2 {
		t.Fatalf("sick pool did not grow: healthy = %d, want 2", h)
	}

	// Still sick: an idle review must not shrink the reinforcement away.
	p.peak.Store(0)
	m.ctl.reviewOnce()
	if sh := m.ctl.shrunk.Load(); sh != 0 {
		t.Fatalf("sick pool shrank (%d) — shrink must wait for recovery", sh)
	}

	// Decayed to zero: idle reviews shrink back to MinGroups.
	for i := uint64(0); i < 5*m.opts.HealthHalfLife; i++ {
		m.tick()
	}
	p.peak.Store(0)
	m.ctl.reviewOnce()
	if sh := m.ctl.shrunk.Load(); sh != 1 {
		t.Errorf("recovered idle pool did not shrink: shrunk = %d", sh)
	}
}

// TestRetryRacesRotationSafely is the -race drill for the retry ↔
// rotation interaction: budgeted sessions retrying through transient
// saturation while the controller rotates groups under them. Every
// request must end in success or a typed saturation outcome — a retry
// that landed on a draining group would surface as an untyped
// connection error.
func TestRetryRacesRotationSafely(t *testing.T) {
	m := mustMesh(t, Options{
		Pools:             2,
		RotateEvery:       2,
		AvailabilityFloor: 1,
		RetryBudget:       3,
		MaxInflight:       2,
		Seed:              55,
		Fleet:             lightFleet(2),
	})

	stop := make(chan struct{})
	var saturator sync.WaitGroup
	saturator.Add(1)
	go func() {
		defer saturator.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Transiently exhaust pool 0's budget so in-flight requests
			// shed and retry while rotation churns.
			m.pools[0].inflight.Add(2)
			time.Sleep(200 * time.Microsecond)
			m.pools[0].inflight.Add(-2)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var load sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		load.Add(1)
		go func(w int) {
			defer load.Done()
			s := m.Session(fmt.Sprintf("racer-%d", w))
			for i := 0; i < 12; i++ {
				_, _, err := s.Get("/index.html")
				if err != nil && !errors.Is(err, ErrSaturated) {
					errCh <- fmt.Errorf("worker %d request %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	load.Wait()
	close(stop)
	saturator.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if err := m.Await(func(st Stats) bool {
		return st.RotationsHandled >= m.Ticks()/2
	}, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Rotations+st.RotationsSkipped == 0 {
		t.Errorf("rotation never triggered under retry load: %s", st)
	}
}
