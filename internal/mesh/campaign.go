package mesh

// The mesh rotation campaign: sweep pool count P × rotation on/off ×
// attack on/off from one seed and emit a deterministic JSON matrix of
// availability-under-rotation, attacker-exposure-window percentiles,
// and detection results.
//
// Byte-identical replay is a hard requirement (same contract as the
// chaos campaign), so the matrix records only values that are
// functions of the seed: serialized benign-phase outcome counts,
// settled rotation/detection counters, and exposure windows measured
// in *virtual time ticks* — each retired group's deterministic
// teardown VTime from the audit trail, never a wall-clock quantity.
// Determinism hinges on two serializations: benign requests block on
// RotationsHandled after every trigger tick (so a rotating group's
// rendezvous count cannot race the next dispatch), and attack probes
// strike a routed pool's oldest group directly, one at a time.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/chaos"
	"nvariant/internal/fleet"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/obs"
	"nvariant/internal/simnet"
	"nvariant/internal/word"
)

// CampaignConfig sizes a rotation campaign: the runner crosses
// Pools × rotation on/off × attack on/off into one cell each.
type CampaignConfig struct {
	// Seed drives every decision; the same seed reproduces
	// byte-identical output.
	Seed int64
	// Requests is the serialized benign-request count per cell
	// (default 24).
	Requests int
	// Pools lists the shard counts to sweep (default {1, 2, 4}).
	Pools []int
	// Groups is each pool's fleet size (default 2). The availability
	// floor is Groups-1, so every cell has rotation headroom.
	Groups int
	// RotateEvery is the rotation cadence in mesh ticks for
	// rotation-on cells (default 6: Requests/RotateEvery triggers).
	RotateEvery uint64
	// Probes is the forged-UID probe count per attack cell (default 2).
	Probes int
	// Sessions is the benign session-key count (default 8); requests
	// round-robin across them so every cell exercises the router.
	Sessions int
	// Policy selects key→pool routing (default HashRouting).
	Policy RouterPolicy
	// Obs, when set, instruments every cell's stack on the registry.
	// Metrics record wall-clock data outside the deterministic matrix:
	// output JSON is byte-identical with and without Obs.
	Obs *obs.Registry
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Requests <= 0 {
		c.Requests = 24
	}
	if len(c.Pools) == 0 {
		c.Pools = []int{1, 2, 4}
	}
	if c.Groups <= 0 {
		c.Groups = 2
	}
	if c.RotateEvery == 0 {
		c.RotateEvery = 6
	}
	if c.Probes <= 0 {
		c.Probes = 2
	}
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	return c
}

// CampaignCell is one P × rotation × attack result.
type CampaignCell struct {
	// Pools / Rotation / Attack identify the cell.
	Pools    int    `json:"pools"`
	Rotation bool   `json:"rotation"`
	Attack   string `json:"attack"`
	// Benign-phase outcomes (serialized, so exact per seed). Errors are
	// classified through the typed dispatch taxonomy: a quarantine
	// window or quorum-lost kill raced by a request is counted both in
	// BenignErrs and in its typed bucket.
	BenignOK          int `json:"benign_ok"`
	BenignShed        int `json:"benign_shed"`
	BenignErrs        int `json:"benign_errs"`
	BenignQuarantines int `json:"benign_quarantine_errs"`
	BenignQuorumKills int `json:"benign_quorum_kill_errs"`
	// Availability is BenignOK over all benign outcomes — the
	// served-under-rotation headline (contract: ≥ 0.99).
	Availability float64 `json:"availability"`
	// Rotations / RotationsSkipped are the settled controller
	// outcomes; Skipped counts availability-floor refusals.
	Rotations        uint64 `json:"rotations"`
	RotationsSkipped uint64 `json:"rotations_skipped"`
	// Exposure-window distribution: each retired group's teardown
	// VTime in virtual ticks (rendezvous events it lived through — the
	// attacker's probing window against one mask set). Rotation-off
	// benign cells have no samples: exposure is unbounded there, which
	// is the point of rotation.
	ExposureSamples int    `json:"exposure_samples"`
	ExposureP50     uint32 `json:"exposure_p50_vticks"`
	ExposureP99     uint32 `json:"exposure_p99_vticks"`
	// Attack outcomes: every probe must be detected, nothing may leak,
	// and benign cells must raise no alarm.
	Probes          int  `json:"probes"`
	Detections      int  `json:"detections"`
	Leaked          bool `json:"leaked"`
	MissedDetection bool `json:"missed_detection"`
	FalseAlarm      bool `json:"false_alarm"`
}

// CampaignSummary is the matrix headline.
type CampaignSummary struct {
	Cells            int     `json:"cells"`
	BenignOK         int     `json:"benign_ok"`
	BenignShed       int     `json:"benign_shed"`
	BenignErrs       int     `json:"benign_errs"`
	MinAvailability  float64 `json:"min_availability"`
	Rotations        uint64  `json:"rotations"`
	RotationsSkipped uint64  `json:"rotations_skipped"`
	Probes           int     `json:"probes"`
	Detections       int     `json:"detections"`
	FalseAlarms      int     `json:"false_alarms"`
	Leaks            int     `json:"leaks"`
}

// CampaignResult is the full deterministic matrix.
type CampaignResult struct {
	Seed        int64           `json:"seed"`
	Requests    int             `json:"requests_per_cell"`
	Groups      int             `json:"groups_per_pool"`
	RotateEvery uint64          `json:"rotate_every"`
	Policy      string          `json:"policy"`
	Cells       []CampaignCell  `json:"cells"`
	Summary     CampaignSummary `json:"summary"`
}

// JSON renders the matrix with a trailing newline, byte-identical per
// seed.
func (r *CampaignResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Check returns the list of contract violations in the matrix:
// availability under the 99% floor, missed detections, false alarms,
// leaks, and rotation-on cells that never rotated.
func (r *CampaignResult) Check() []string {
	var v []string
	for _, c := range r.Cells {
		id := fmt.Sprintf("cell p=%d rotation=%t attack=%s", c.Pools, c.Rotation, c.Attack)
		if c.Availability < 0.99 {
			v = append(v, fmt.Sprintf("%s: availability %.4f < 0.99", id, c.Availability))
		}
		if c.MissedDetection {
			v = append(v, id+": missed detection")
		}
		if c.FalseAlarm {
			v = append(v, id+": false alarm")
		}
		if c.Leaked {
			v = append(v, id+": secret leaked")
		}
		if c.Rotation && c.Rotations == 0 {
			v = append(v, id+": rotation enabled but none completed")
		}
		if !c.Rotation && c.Rotations != 0 {
			v = append(v, id+": rotation disabled but counted")
		}
	}
	return v
}

// Fprint writes the human-readable matrix summary.
func (r *CampaignResult) Fprint(w io.Writer) {
	s := r.Summary
	fmt.Fprintf(w, "Mesh rotation campaign (seed %d, policy %s): %d cells\n", r.Seed, r.Policy, s.Cells)
	fmt.Fprintf(w, "  benign: %d ok, %d shed, %d errors; min availability %.4f\n",
		s.BenignOK, s.BenignShed, s.BenignErrs, s.MinAvailability)
	fmt.Fprintf(w, "  rotations: %d completed, %d skipped at floor; detections %d/%d probes; false alarms %d; leaks %d\n",
		s.Rotations, s.RotationsSkipped, s.Detections, s.Probes, s.FalseAlarms, s.Leaks)
	fmt.Fprintf(w, "  %-6s %-9s %-10s %12s %10s %9s %14s %14s\n",
		"pools", "rotation", "attack", "availability", "rotations", "samples", "exposure-p50", "exposure-p99")
	for _, c := range r.Cells {
		p50, p99 := "-", "-"
		if c.ExposureSamples > 0 {
			p50 = fmt.Sprintf("%d vt", c.ExposureP50)
			p99 = fmt.Sprintf("%d vt", c.ExposureP99)
		}
		fmt.Fprintf(w, "  %-6d %-9t %-10s %12.4f %10d %9d %14s %14s\n",
			c.Pools, c.Rotation, c.Attack, c.Availability, c.Rotations, c.ExposureSamples, p50, p99)
	}
}

// campaignCellSeed derives one cell's seed from the campaign seed and
// the cell labels via the chaos campaign's FNV+splitmix scheme —
// independent of sweep order, and shared across both campaign kinds so
// a narrowed rerun (one cell's labels) replays that cell exactly. The
// zero guard exists because mesh.Options treats Seed 0 as "use the
// default".
func campaignCellSeed(seed int64, parts ...string) int64 {
	s := chaos.CellSeed(seed, parts...)
	if s == 0 {
		s = 1
	}
	return s
}

// benignMix is the serialized benign-phase request mix.
var benignMix = []string{"/index.html", "/page1.html", "/styles.css"}

// RunCampaign executes the rotation campaign and returns the matrix.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	cfg = cfg.withDefaults()
	res := &CampaignResult{
		Seed:        cfg.Seed,
		Requests:    cfg.Requests,
		Groups:      cfg.Groups,
		RotateEvery: cfg.RotateEvery,
		Policy:      cfg.Policy.String(),
	}
	for _, p := range cfg.Pools {
		for _, rotation := range []bool{false, true} {
			for _, att := range []string{"none", "forge-uid"} {
				cell, err := runCampaignCell(cfg, p, rotation, att)
				if err != nil {
					return nil, fmt.Errorf("mesh campaign: cell p=%d rotation=%t attack=%s: %w", p, rotation, att, err)
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	res.Summary = summarizeCampaign(res)
	return res, nil
}

// runCampaignCell runs one P × rotation × attack cell.
func runCampaignCell(cfg CampaignConfig, pools int, rotation bool, att string) (CampaignCell, error) {
	cell := CampaignCell{Pools: pools, Rotation: rotation, Attack: att}
	seed := campaignCellSeed(cfg.Seed, "mesh", fmt.Sprint(pools), fmt.Sprint(rotation), att)

	opts := Options{
		Pools:  pools,
		Policy: cfg.Policy,
		Seed:   seed,
		Obs:    cfg.Obs,
		Fleet: fleet.Options{
			Groups: cfg.Groups,
			Config: harness.Config4UIDVariation,
			Server: httpd.DefaultOptions(),
		},
	}
	if rotation {
		opts.RotateEvery = cfg.RotateEvery
	}
	m, err := New(opts)
	if err != nil {
		return cell, err
	}
	defer func() { _, _ = m.Stop() }()

	// One sticky session per synthetic client; requests round-robin
	// across them so dispatch exercises the router's key→pool spread.
	sessions := make([]*Session, cfg.Sessions)
	for i := range sessions {
		sessions[i] = m.Session(fmt.Sprintf("client-%d", i))
	}

	// Benign phase, serialized. After any request whose tick fired a
	// rotation trigger, block until the controller has fully handled
	// it (pool replenished) — that serialization is what pins every
	// group's rendezvous count, and therefore the exposure-window
	// vticks below, to the seed.
	for r := 0; r < cfg.Requests; r++ {
		code, _, err := sessions[r%len(sessions)].Get(benignMix[r%len(benignMix)])
		switch {
		case errors.Is(err, ErrSaturated):
			cell.BenignShed++
		case err == nil && code == 200:
			cell.BenignOK++
		case errors.Is(err, ErrQuorumLostKill):
			cell.BenignQuorumKills++
			cell.BenignErrs++
		case errors.Is(err, ErrQuarantineWindow):
			cell.BenignQuarantines++
			cell.BenignErrs++
		default:
			cell.BenignErrs++
		}
		if rotation {
			want := m.Ticks() / cfg.RotateEvery
			if err := m.Await(func(s Stats) bool {
				return s.RotationsHandled >= want
			}, 30*time.Second); err != nil {
				return cell, err
			}
		}
	}
	cell.Availability = availability(cell.BenignOK, cell.BenignShed, cell.BenignErrs)

	// Attack phase: forged-UID probes against the pool each attacker
	// key routes to, striking its oldest group directly (the
	// attacker-knows-a-backend model, same as the chaos fleet cells).
	// Serialized probe-and-await keeps detection counts settled.
	if att == "forge-uid" {
		cell.Probes = cfg.Probes
		rng := rand.New(rand.NewSource(seed + 3))
		perPool := make([]int, pools)
		for i := 0; i < cfg.Probes; i++ {
			payload := attack.ForgeUIDPayload(word.Word(rng.Uint32()) &^ word.HighBit)
			pi := m.RouteKey(fmt.Sprintf("attacker-%d", i))
			f := m.Pool(pi)
			port, ok := oldestGroupPort(f)
			if !ok {
				break
			}
			direct := httpd.NewClient(f.Net(), port)
			detected := false
			for round := 0; round < 8 && !detected; round++ {
				if _, err := direct.Raw(payload); errors.Is(err, simnet.ErrRefused) {
					detected = true
					break
				}
				for t := 0; t < 64 && !detected; t++ {
					code, body, err := direct.Get("/private/secret.html")
					switch {
					case errors.Is(err, simnet.ErrRefused):
						detected = true
					case err == nil && code == 200 && httpd.ContainsSecret(body):
						cell.Leaked = true
					}
				}
			}
			if !detected {
				break
			}
			perPool[pi]++
			want := perPool[pi]
			if err := f.Await(func(s fleet.Stats) bool {
				return s.Detections >= want && len(s.Healthy) >= cfg.Groups
			}, 30*time.Second); err != nil {
				return cell, err
			}
		}
	}

	stats, err := m.Stop()
	if err != nil {
		return cell, err
	}
	cell.Rotations = stats.Rotations
	cell.RotationsSkipped = stats.RotationsSkipped
	for _, ps := range stats.Pools {
		cell.Detections += ps.Fleet.Detections
	}
	cell.MissedDetection = cell.Detections < cell.Probes
	cell.FalseAlarm = cell.Detections > cell.Probes

	// Exposure windows: every retired group's teardown VTime, in
	// virtual ticks, from the pools' audit trails. Rotations and
	// quarantines both end a mask set's exposure; clean departures and
	// shrinks are not attacker-relevant retirements.
	var samples []uint32
	for i := 0; i < m.Pools(); i++ {
		for _, e := range m.Pool(i).Audit().Entries() {
			switch e.Action {
			case "rotate", "rotate+replace", "quarantine", "quarantine+replace":
				samples = append(samples, e.VTime)
			}
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	cell.ExposureSamples = len(samples)
	cell.ExposureP50 = percentileVTicks(samples, 0.50)
	cell.ExposureP99 = percentileVTicks(samples, 0.99)
	return cell, nil
}

// availability is the benign-phase served ratio.
func availability(ok, shed, errs int) float64 {
	total := ok + shed + errs
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// percentileVTicks is the nearest-rank percentile of sorted samples.
func percentileVTicks(sorted []uint32, q float64) uint32 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// oldestGroupPort resolves the port of a pool's longest-lived healthy
// group — the probes' deterministic victim.
func oldestGroupPort(f *fleet.Fleet) (uint16, bool) {
	id := f.OldestGroupID()
	if id < 0 {
		return 0, false
	}
	for _, g := range f.Stats().Healthy {
		if g.ID == id {
			return g.Port, true
		}
	}
	return 0, false
}

// summarizeCampaign computes the headline from the matrix.
func summarizeCampaign(r *CampaignResult) CampaignSummary {
	s := CampaignSummary{Cells: len(r.Cells), MinAvailability: 1}
	for _, c := range r.Cells {
		s.BenignOK += c.BenignOK
		s.BenignShed += c.BenignShed
		s.BenignErrs += c.BenignErrs
		if c.Availability < s.MinAvailability {
			s.MinAvailability = c.Availability
		}
		s.Rotations += c.Rotations
		s.RotationsSkipped += c.RotationsSkipped
		s.Probes += c.Probes
		s.Detections += c.Detections
		if c.FalseAlarm {
			s.FalseAlarms++
		}
		if c.Leaked {
			s.Leaks++
		}
	}
	return s
}
