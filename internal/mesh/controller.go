package mesh

// The controller is the mesh's single consumer of rotation and
// elastic-sizing triggers. Triggers are counted by the dispatch hot
// path (atomic adds in Mesh.tick) and handed over through a capacity-1
// wake channel; the controller drains wanted-vs-handled deltas in a
// loop, so every trigger is processed exactly once regardless of
// goroutine timing — which is what makes seeded campaign runs
// byte-reproducible. All randomness (which pool rotates) comes from
// the controller-owned seeded RNG, a single consumer, so the decision
// sequence is a pure function of the seed and the trigger count.

import (
	"math/rand"
	"sync/atomic"
	"time"

	"nvariant/internal/fleet"
)

type controller struct {
	m   *Mesh
	rng *rand.Rand

	// wanted counters are incremented by tick(); handled counters only
	// by the controller loop. handled == wanted means settled.
	rotWanted  atomic.Uint64
	rotHandled atomic.Uint64
	elWanted   atomic.Uint64
	elHandled  atomic.Uint64

	// Outcome counters (controller-written, Stats-read).
	rotated atomic.Uint64
	skipped atomic.Uint64
	grown   atomic.Uint64
	shrunk  atomic.Uint64

	wake chan struct{}
	stop chan struct{}
}

func newController(m *Mesh, rng *rand.Rand) *controller {
	return &controller{m: m, rng: rng, wake: make(chan struct{}, 1), stop: make(chan struct{})}
}

// kick wakes the controller without blocking the dispatch path. A
// full channel means a wake is already pending; the loop re-reads the
// counters after every wake, so no trigger is lost.
func (c *controller) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// halt stops the loop. Pending triggers are abandoned — Stop tears
// the pools down anyway; campaigns settle via Await first.
func (c *controller) halt() { close(c.stop) }

func (c *controller) run() {
	defer c.m.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.wake:
		}
		for c.rotHandled.Load() < c.rotWanted.Load() {
			c.rotateOnce()
			c.rotHandled.Add(1)
		}
		for c.elHandled.Load() < c.elWanted.Load() {
			c.reviewOnce()
			c.elHandled.Add(1)
		}
	}
}

// rotateOnce performs one moving-target rotation: pick a pool from the
// seeded RNG, drain its oldest healthy group, and wait for the
// freshly-specced replacement to register. The availability floor is
// enforced *before* draining — a pool at or below the floor skips its
// turn (counted), so rotation never trades the moving target for an
// outage.
func (c *controller) rotateOnce() {
	m := c.m
	p := m.pools[c.rng.Intn(len(m.pools))]
	f := p.fleet
	// A sick pool is already absorbing faults — draining one of its
	// groups on schedule would stack administrative churn on top of
	// fault recovery and push it below the floor. Skip its turn (the
	// trigger still counts as handled; the RNG draw is already
	// consumed, so the seeded schedule stays aligned).
	if p.sick(m) {
		c.skipped.Add(1)
		if m.obs != nil {
			m.obs.rotSkipped.Inc()
		}
		return
	}
	before := f.Stats()
	healthy := len(before.Healthy)
	if healthy <= m.opts.AvailabilityFloor {
		c.skipped.Add(1)
		if m.obs != nil {
			m.obs.rotSkipped.Inc()
		}
		return
	}
	victim := oldestNonDraining(f.LiveGroups())
	if victim == nil {
		c.skipped.Add(1)
		if m.obs != nil {
			m.obs.rotSkipped.Inc()
		}
		return
	}
	start := time.Now()
	exposure := victim.Age
	if err := f.Rotate(victim.ID, m.opts.DrainTimeout); err != nil {
		// The group vanished between the roster read and the drain
		// (e.g. an alarm quarantined it) — the slot is being replaced
		// on the quarantine path already.
		c.skipped.Add(1)
		if m.obs != nil {
			m.obs.rotSkipped.Inc()
		}
		return
	}
	// Wait for the pool to replenish before counting the rotation
	// handled: campaigns await the settled counter, and the next
	// trigger must see the restored pool.
	_ = f.Await(func(s fleet.Stats) bool {
		return s.Rotated > before.Rotated && len(s.Healthy) >= healthy
	}, m.opts.RecoverTimeout)
	c.rotated.Add(1)
	if m.obs != nil {
		m.obs.rotations.Inc()
		m.obs.exposure.Observe(exposure)
		m.obs.drain.Observe(time.Since(start))
	}
}

// oldestNonDraining picks the rotation victim: the lowest id (ids are
// never reused, so lowest = longest-exposed mask set).
func oldestNonDraining(groups []fleet.GroupInfo) *fleet.GroupInfo {
	for i := range groups {
		if !groups[i].Draining {
			return &groups[i]
		}
	}
	return nil
}

// reviewOnce runs one elastic-sizing pass over every pool: compare the
// peak in-flight load since the last review against current capacity
// (healthy groups × worker lanes) and grow or shrink within
// [MinGroups, MaxGroups]. A sick pool grows regardless of load ratio —
// fault-induced pressure (sheds, failed dispatches, quarantines) is
// demand for capacity even when inflight never peaked — and is never
// shrunk while sick. Shrink retires the *newest* group — the oldest
// slots are the rotation scheduler's concern.
func (c *controller) reviewOnce() {
	m := c.m
	workers := m.opts.Fleet.Workers
	if workers < 1 {
		workers = 1
	}
	for _, p := range m.pools {
		peak := p.peak.Swap(0)
		f := p.fleet
		healthy := f.HealthyCount()
		if healthy == 0 {
			continue
		}
		sick := p.sick(m)
		ratio := float64(peak) / float64(healthy*workers)
		switch {
		case (ratio >= m.opts.GrowAt || sick) && healthy < m.opts.MaxGroups:
			if _, err := f.Grow(); err == nil {
				c.grown.Add(1)
				if m.obs != nil {
					m.obs.grows.Inc()
				}
			}
		case ratio <= m.opts.ShrinkAt && !sick && healthy > m.opts.MinGroups:
			groups := f.LiveGroups()
			for i := len(groups) - 1; i >= 0; i-- {
				if groups[i].Draining {
					continue
				}
				if f.Shrink(groups[i].ID, m.opts.DrainTimeout) == nil {
					c.shrunk.Add(1)
					if m.obs != nil {
						m.obs.shrinks.Inc()
					}
				}
				break
			}
		}
	}
}
