package mesh

// The unified mesh×chaos campaign: sweep pool count P × rotation
// cadence × chaos fault plan × attack corpus from one seed and emit a
// deterministic JSON matrix of availability, retry/re-route/backoff
// activity, exposure-window percentiles, and detection results — the
// paper's graceful-degradation story measured end to end: diversified
// pools keep serving and keep detecting while the data plane and the
// syscall boundary are under injected fault load.
//
// Byte-identical replay is the same hard contract as the chaos and
// rotation campaigns, and holds for the same reasons: benign traffic
// is serialized and settles the controllers after every request,
// retries settle them after every charged backoff (see
// settleControllers), each pool's fault injector consumes its decision
// stream in wire order on a single-client network segment, and only
// seed- and vtick-derived values enter the matrix.
//
// Kernel crash plans are deliberately not swept, matching the chaos
// fleet cells: a crash trigger counts syscalls across a whole pool,
// and replacement startup traffic interleaves with the benign stream,
// so the trigger point would not replay. The crash-class fault here is
// group-restart — deterministic campaign-driven shutdowns of whole
// groups under load.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/chaos"
	"nvariant/internal/fleet"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/nvkernel"
	"nvariant/internal/obs"
	"nvariant/internal/simnet"
	"nvariant/internal/word"
)

// ChaosCampaignConfig sizes a unified mesh×chaos campaign. The runner
// crosses Pools × Rotations × Faults × Attacks into one cell each;
// narrowing any list (the -chaos rerun flags) replays exactly the
// surviving cells, because cell seeds derive from the cell labels, not
// the sweep position.
type ChaosCampaignConfig struct {
	// Seed drives every decision; the same seed reproduces
	// byte-identical output.
	Seed int64
	// Requests is the serialized benign-request count per cell
	// (default 24).
	Requests int
	// Pools lists the shard counts to sweep (default {1, 2}).
	Pools []int
	// Rotations lists the rotation settings to sweep (default
	// {false, true}).
	Rotations []bool
	// Groups is each pool's fleet size (default 2).
	Groups int
	// RotateEvery is the rotation cadence in mesh ticks for
	// rotation-on cells (default 6).
	RotateEvery uint64
	// Probes is the forged-UID probe count per attack cell (default 2).
	Probes int
	// Sessions is the benign session-key count (default 8).
	Sessions int
	// RetryBudget / RetryBackoff configure the sessions' deterministic
	// retry-with-backoff (defaults 6 and DefaultRetryBackoff) — the
	// machinery that holds availability under the lossy plans.
	RetryBudget  int
	RetryBackoff uint64
	// Faults lists the chaos plans to sweep (default: none, net-mixed,
	// slow-syscalls, group-restart). Kernel crash plans are rejected —
	// their trigger points do not replay across a pool.
	Faults []chaos.Plan
	// Attacks lists the attack modes to sweep (default
	// {"none", "forge-uid"}).
	Attacks []string
	// Policy selects key→pool routing (default HashRouting).
	Policy RouterPolicy
	// Obs, when set, instruments every cell's stack on the registry.
	// Output JSON is byte-identical with and without Obs.
	Obs *obs.Registry
}

func (c ChaosCampaignConfig) withDefaults() ChaosCampaignConfig {
	if c.Requests <= 0 {
		c.Requests = 24
	}
	if len(c.Pools) == 0 {
		c.Pools = []int{1, 2}
	}
	if len(c.Rotations) == 0 {
		c.Rotations = []bool{false, true}
	}
	if c.Groups <= 0 {
		c.Groups = 2
	}
	if c.RotateEvery == 0 {
		c.RotateEvery = 6
	}
	if c.Probes <= 0 {
		c.Probes = 2
	}
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 6
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if len(c.Faults) == 0 {
		c.Faults = DefaultChaosPlans()
	}
	if len(c.Attacks) == 0 {
		c.Attacks = []string{"none", "forge-uid"}
	}
	return c
}

// DefaultChaosPlans returns the fault plans the unified campaign
// sweeps by default: the no-fault control, the full data-plane mix,
// the syscall-boundary stall load, and the deterministic group-crash
// plan.
func DefaultChaosPlans() []chaos.Plan {
	var out []chaos.Plan
	for _, name := range []string{"none", "net-mixed", "slow-syscalls", "group-restart"} {
		p, err := chaos.PlanByName(name)
		if err != nil {
			panic(err) // the standard set always carries these
		}
		out = append(out, p)
	}
	return out
}

// ChaosCell is one P × rotation × fault × attack result.
type ChaosCell struct {
	// Pools / Rotation / Fault / Attack identify the cell (and derive
	// its seed).
	Pools    int    `json:"pools"`
	Rotation bool   `json:"rotation"`
	Fault    string `json:"fault"`
	Attack   string `json:"attack"`
	// Benign-phase outcomes, classified through the typed dispatch
	// taxonomy (quarantine windows and quorum-lost kills also count in
	// BenignErrs).
	BenignOK          int `json:"benign_ok"`
	BenignShed        int `json:"benign_shed"`
	BenignErrs        int `json:"benign_errs"`
	BenignQuarantines int `json:"benign_quarantine_errs"`
	BenignQuorumKills int `json:"benign_quorum_kill_errs"`
	// Availability is BenignOK over all benign outcomes (contract:
	// ≥ 0.99 under every swept plan — they are all non-crash at the
	// variant level).
	Availability float64 `json:"availability"`
	// Retry machinery outcomes across the whole cell.
	Retries      uint64 `json:"retries"`
	Reroutes     uint64 `json:"reroutes"`
	BackoffTicks uint64 `json:"backoff_ticks"`
	// Rotation and restart outcomes.
	Rotations        uint64 `json:"rotations"`
	RotationsSkipped uint64 `json:"rotations_skipped"`
	Restarts         int    `json:"restarts"`
	// Exposure-window distribution in virtual ticks (see the rotation
	// campaign).
	ExposureSamples int    `json:"exposure_samples"`
	ExposureP50     uint32 `json:"exposure_p50_vticks"`
	ExposureP99     uint32 `json:"exposure_p99_vticks"`
	// Attack outcomes.
	Probes          int  `json:"probes"`
	Detections      int  `json:"detections"`
	Leaked          bool `json:"leaked"`
	MissedDetection bool `json:"missed_detection"`
	FalseAlarm      bool `json:"false_alarm"`
}

// ChaosCampaignSummary is the matrix headline.
type ChaosCampaignSummary struct {
	Cells           int     `json:"cells"`
	BenignOK        int     `json:"benign_ok"`
	BenignShed      int     `json:"benign_shed"`
	BenignErrs      int     `json:"benign_errs"`
	MinAvailability float64 `json:"min_availability"`
	Retries         uint64  `json:"retries"`
	Reroutes        uint64  `json:"reroutes"`
	BackoffTicks    uint64  `json:"backoff_ticks"`
	Rotations       uint64  `json:"rotations"`
	Restarts        int     `json:"restarts"`
	Probes          int     `json:"probes"`
	Detections      int     `json:"detections"`
	FalseAlarms     int     `json:"false_alarms"`
	Leaks           int     `json:"leaks"`
}

// ChaosCampaignResult is the full deterministic matrix.
type ChaosCampaignResult struct {
	Seed         int64                `json:"seed"`
	Requests     int                  `json:"requests_per_cell"`
	Groups       int                  `json:"groups_per_pool"`
	RotateEvery  uint64               `json:"rotate_every"`
	RetryBudget  int                  `json:"retry_budget"`
	RetryBackoff uint64               `json:"retry_backoff_ticks"`
	Policy       string               `json:"policy"`
	Cells        []ChaosCell          `json:"cells"`
	Summary      ChaosCampaignSummary `json:"summary"`
}

// JSON renders the matrix with a trailing newline, byte-identical per
// seed.
func (r *ChaosCampaignResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Check returns the list of contract violations in the matrix:
// availability under the 99% floor, missed detections, false alarms,
// leaks, retry counters inconsistent with the backoff cadence, and
// rotation accounting that contradicts the cell's configuration.
func (r *ChaosCampaignResult) Check() []string {
	var v []string
	for _, c := range r.Cells {
		id := fmt.Sprintf("cell p=%d rotation=%t fault=%s attack=%s", c.Pools, c.Rotation, c.Fault, c.Attack)
		if c.Availability < 0.99 {
			v = append(v, fmt.Sprintf("%s: availability %.4f < 0.99", id, c.Availability))
		}
		if c.MissedDetection {
			v = append(v, id+": missed detection")
		}
		if c.FalseAlarm {
			v = append(v, id+": false alarm")
		}
		if c.Leaked {
			v = append(v, id+": secret leaked")
		}
		// Retry/backoff cadence consistency: backoff is charged per
		// retry at >= the base, re-routes are a subset of retries, and
		// the no-fault control cells must need no retries at all.
		switch {
		case c.Retries == 0 && (c.BackoffTicks != 0 || c.Reroutes != 0):
			v = append(v, fmt.Sprintf("%s: backoff/reroutes without retries (%d/%d)", id, c.BackoffTicks, c.Reroutes))
		case c.Retries > 0 && c.BackoffTicks < c.Retries*r.RetryBackoff:
			v = append(v, fmt.Sprintf("%s: %d retries charged only %d backoff ticks (base %d)", id, c.Retries, c.BackoffTicks, r.RetryBackoff))
		case c.Reroutes > c.Retries:
			v = append(v, fmt.Sprintf("%s: %d reroutes > %d retries", id, c.Reroutes, c.Retries))
		}
		if c.Fault == "none" && c.Attack == "none" && c.Retries != 0 {
			v = append(v, fmt.Sprintf("%s: %d retries in the no-fault control", id, c.Retries))
		}
		if !c.Rotation && c.Rotations != 0 {
			v = append(v, id+": rotation disabled but counted")
		}
		if c.Rotation && c.Fault == "none" && c.Rotations == 0 {
			v = append(v, id+": rotation enabled but none completed")
		}
		if c.Fault == "group-restart" && c.Restarts == 0 {
			v = append(v, id+": group-restart plan drove no restarts")
		}
	}
	return v
}

// Fprint writes the human-readable matrix summary.
func (r *ChaosCampaignResult) Fprint(w io.Writer) {
	s := r.Summary
	fmt.Fprintf(w, "Unified mesh×chaos campaign (seed %d, policy %s, retry budget %d): %d cells\n",
		r.Seed, r.Policy, r.RetryBudget, s.Cells)
	fmt.Fprintf(w, "  benign: %d ok, %d shed, %d errors; min availability %.4f\n",
		s.BenignOK, s.BenignShed, s.BenignErrs, s.MinAvailability)
	fmt.Fprintf(w, "  retries: %d (%d rerouted, %d backoff ticks); rotations %d; restarts %d\n",
		s.Retries, s.Reroutes, s.BackoffTicks, s.Rotations, s.Restarts)
	fmt.Fprintf(w, "  detections %d/%d probes; false alarms %d; leaks %d\n",
		s.Detections, s.Probes, s.FalseAlarms, s.Leaks)
	fmt.Fprintf(w, "  %-6s %-9s %-14s %-10s %12s %8s %9s %8s %10s\n",
		"pools", "rotation", "fault", "attack", "availability", "retries", "reroutes", "backoff", "rotations")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "  %-6d %-9t %-14s %-10s %12.4f %8d %9d %8d %10d\n",
			c.Pools, c.Rotation, c.Fault, c.Attack, c.Availability, c.Retries, c.Reroutes, c.BackoffTicks, c.Rotations)
	}
}

// RunChaosCampaign executes the unified campaign and returns the
// matrix.
func RunChaosCampaign(cfg ChaosCampaignConfig) (*ChaosCampaignResult, error) {
	cfg = cfg.withDefaults()
	for _, plan := range cfg.Faults {
		if plan.Kernel != nil && plan.Kernel.CrashAfter > 0 {
			return nil, fmt.Errorf("mesh chaos campaign: kernel crash plan %q cannot replay across a pool (see chaos fleet cells)", plan.Name)
		}
	}
	res := &ChaosCampaignResult{
		Seed:         cfg.Seed,
		Requests:     cfg.Requests,
		Groups:       cfg.Groups,
		RotateEvery:  cfg.RotateEvery,
		RetryBudget:  cfg.RetryBudget,
		RetryBackoff: cfg.RetryBackoff,
		Policy:       cfg.Policy.String(),
	}
	for _, p := range cfg.Pools {
		for _, rotation := range cfg.Rotations {
			for _, plan := range cfg.Faults {
				for _, att := range cfg.Attacks {
					cell, err := runChaosCell(cfg, p, rotation, plan, att)
					if err != nil {
						return nil, fmt.Errorf("mesh chaos campaign: cell p=%d rotation=%t fault=%s attack=%s: %w",
							p, rotation, plan.Name, att, err)
					}
					res.Cells = append(res.Cells, cell)
				}
			}
		}
	}
	res.Summary = summarizeChaosCampaign(res)
	return res, nil
}

// runChaosCell runs one P × rotation × fault × attack cell.
func runChaosCell(cfg ChaosCampaignConfig, pools int, rotation bool, plan chaos.Plan, att string) (ChaosCell, error) {
	cell := ChaosCell{Pools: pools, Rotation: rotation, Fault: plan.Name, Attack: att}
	seed := campaignCellSeed(cfg.Seed, "meshchaos", fmt.Sprint(pools), fmt.Sprint(rotation), plan.Name, att)

	opts := Options{
		Pools:        pools,
		Policy:       cfg.Policy,
		Seed:         seed,
		RetryBudget:  cfg.RetryBudget,
		RetryBackoff: cfg.RetryBackoff,
		Obs:          cfg.Obs,
		Fleet: fleet.Options{
			Groups: cfg.Groups,
			Config: harness.Config4UIDVariation,
			Server: httpd.DefaultOptions(),
		},
	}
	if rotation {
		opts.RotateEvery = cfg.RotateEvery
	}
	// Thread the plan into every pool: each pool's injector and hook
	// draw from the pool's own derived seed (offset so the two streams
	// decorrelate), and the fleet carries them into every group it
	// spawns — including rotation replacements and respawns.
	if plan.Net != nil {
		np := plan.Net
		opts.Faults = func(poolSeed int64) simnet.FaultInjector { return np.Injector(poolSeed + 1) }
	}
	if plan.Kernel != nil {
		kp := plan.Kernel
		opts.Kernel = func(poolSeed int64) []nvkernel.Option {
			return []nvkernel.Option{nvkernel.WithFaultHook(kp.Hook(poolSeed + 2))}
		}
	}
	m, err := New(opts)
	if err != nil {
		return cell, err
	}
	defer func() { _, _ = m.Stop() }()

	sessions := make([]*Session, cfg.Sessions)
	for i := range sessions {
		sessions[i] = m.Session(fmt.Sprintf("client-%d", i))
	}

	// Benign phase, serialized, with restart-under-load: before every
	// RestartEvery-th request the plan shuts down the oldest group of a
	// deterministically walked pool, and the cell waits for the
	// replacement before dispatching on — the group-crash fault the
	// mesh must absorb without losing a request.
	for r := 0; r < cfg.Requests; r++ {
		if plan.RestartEvery > 0 && r > 0 && r%plan.RestartEvery == 0 {
			pi := (r/plan.RestartEvery - 1) % pools
			f := m.Pool(pi)
			before := f.Stats().Replaced
			if id := f.OldestGroupID(); id >= 0 && f.ShutdownGroup(id) {
				cell.Restarts++
				if err := f.Await(func(s fleet.Stats) bool {
					return s.Replaced > before && len(s.Healthy) >= cfg.Groups
				}, 15*time.Second); err != nil {
					return cell, err
				}
			}
		}
		code, _, err := sessions[r%len(sessions)].Get(benignMix[r%len(benignMix)])
		switch {
		case errors.Is(err, ErrSaturated):
			cell.BenignShed++
		case err == nil && code == 200:
			cell.BenignOK++
		case errors.Is(err, ErrQuorumLostKill):
			cell.BenignQuorumKills++
			cell.BenignErrs++
		case errors.Is(err, ErrQuarantineWindow):
			cell.BenignQuarantines++
			cell.BenignErrs++
		default:
			cell.BenignErrs++
		}
		if rotation {
			want := m.Ticks() / cfg.RotateEvery
			if err := m.Await(func(s Stats) bool {
				return s.RotationsHandled >= want
			}, 30*time.Second); err != nil {
				return cell, err
			}
		}
	}
	cell.Availability = availability(cell.BenignOK, cell.BenignShed, cell.BenignErrs)

	// Attack phase: forged-UID probes against the pool each attacker
	// key routes to, striking its oldest group directly (the
	// attacker-knows-a-backend model, same as the chaos fleet cells).
	// The direct client rides the pool's faulted network segment, so
	// the adaptive probe rounds also prove detection is not maskable
	// by the fault plan.
	if att == "forge-uid" {
		cell.Probes = cfg.Probes
		rng := rand.New(rand.NewSource(seed + 3))
		perPool := make([]int, pools)
		for i := 0; i < cfg.Probes; i++ {
			payload := attack.ForgeUIDPayload(word.Word(rng.Uint32()) &^ word.HighBit)
			pi := m.RouteKey(fmt.Sprintf("attacker-%d", i))
			f := m.Pool(pi)
			port, ok := oldestGroupPort(f)
			if !ok {
				break
			}
			direct := httpd.NewClient(f.Net(), port)
			detected := false
			for round := 0; round < 8 && !detected; round++ {
				if _, err := direct.Raw(payload); errors.Is(err, simnet.ErrRefused) {
					detected = true
					break
				}
				for t := 0; t < 64 && !detected; t++ {
					code, body, err := direct.Get("/private/secret.html")
					switch {
					case errors.Is(err, simnet.ErrRefused):
						detected = true
					case err == nil && code == 200 && httpd.ContainsSecret(body):
						cell.Leaked = true
					}
				}
			}
			if !detected {
				break
			}
			perPool[pi]++
			want := perPool[pi]
			if err := f.Await(func(s fleet.Stats) bool {
				return s.Detections >= want && len(s.Healthy) >= cfg.Groups
			}, 30*time.Second); err != nil {
				return cell, err
			}
		}
	}

	stats, err := m.Stop()
	if err != nil {
		return cell, err
	}
	cell.Retries = stats.Retries
	cell.Reroutes = stats.Reroutes
	cell.BackoffTicks = stats.BackoffTicks
	cell.Rotations = stats.Rotations
	cell.RotationsSkipped = stats.RotationsSkipped
	for _, ps := range stats.Pools {
		cell.Detections += ps.Fleet.Detections
	}
	cell.MissedDetection = cell.Detections < cell.Probes
	cell.FalseAlarm = cell.Detections > cell.Probes

	// Exposure windows in virtual ticks, as in the rotation campaign —
	// but only for plans without message reordering. A reorder hold
	// releases its message on a wall-clock timer, so the server-side
	// rendezvous it triggers race the drain point and the torn-down
	// group's vtick age would not replay byte-identically. Every other
	// fault (drop, truncate, delay, syscall stalls, restarts) resolves
	// synchronously inside the serialized request, so its vticks are
	// seed-pure.
	var samples []uint32
	if plan.Net == nil || plan.Net.ReorderRate == 0 {
		for i := 0; i < m.Pools(); i++ {
			for _, e := range m.Pool(i).Audit().Entries() {
				switch e.Action {
				case "rotate", "rotate+replace", "quarantine", "quarantine+replace":
					samples = append(samples, e.VTime)
				}
			}
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	cell.ExposureSamples = len(samples)
	cell.ExposureP50 = percentileVTicks(samples, 0.50)
	cell.ExposureP99 = percentileVTicks(samples, 0.99)
	return cell, nil
}

// summarizeChaosCampaign computes the headline from the matrix.
func summarizeChaosCampaign(r *ChaosCampaignResult) ChaosCampaignSummary {
	s := ChaosCampaignSummary{Cells: len(r.Cells), MinAvailability: 1}
	for _, c := range r.Cells {
		s.BenignOK += c.BenignOK
		s.BenignShed += c.BenignShed
		s.BenignErrs += c.BenignErrs
		if c.Availability < s.MinAvailability {
			s.MinAvailability = c.Availability
		}
		s.Retries += c.Retries
		s.Reroutes += c.Reroutes
		s.BackoffTicks += c.BackoffTicks
		s.Rotations += c.Rotations
		s.Restarts += c.Restarts
		s.Probes += c.Probes
		s.Detections += c.Detections
		if c.FalseAlarm {
			s.FalseAlarms++
		}
		if c.Leaked {
			s.Leaks++
		}
	}
	return s
}
