package mesh

// The router maps session keys to pools. Routing happens once, at
// Session creation; the per-request hot path (Session.Fetch) is pool
// admission + the fleet client, and adds no allocations on top of it
// (see TestMeshSessionAddsNoAllocs).

import (
	"nvariant/internal/httpd"
)

// hashKey is FNV-1a over the key bytes — allocation-free, unlike
// hash/fnv's boxed hash.Hash64.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// hrw picks the key's rendezvous (highest-random-weight) pool: the
// shard whose seeded salt mixes with the key hash to the largest
// weight. Every key has a stable home, and adding or removing a pool
// would remap only the minimal 1/P share of keys.
func (m *Mesh) hrw(kh uint64) *pool {
	best, bestW := 0, uint64(0)
	for i, salt := range m.salts {
		if w := splitmix64(kh ^ salt); i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return m.pools[best]
}

// routePool resolves key → pool under the configured policy.
func (m *Mesh) routePool(key string) *pool {
	kh := hashKey(key)
	if m.opts.Policy == AffinityRouting {
		return m.affinityPool(kh)
	}
	return m.hrw(kh)
}

// affinityPool implements sticky routing: the first session with an
// unclaimed table slot claims it for a round-robin-assigned pool (so
// load spreads regardless of key skew), and every later session with
// the same key sticks to that pool. A slot already claimed by a
// different key fingerprint falls back to rendezvous hashing — still
// deterministic per key, just not sticky-assignable.
func (m *Mesh) affinityPool(kh uint64) *pool {
	slot := &m.affinity[kh%uint64(len(m.affinity))]
	// Pack: high 48 bits fingerprint, low 16 bits pool index + 1
	// (nonzero marks the slot claimed).
	fp := kh &^ 0xFFFF
	for {
		e := slot.Load()
		if e == 0 {
			p := int(m.rrAssign.Add(1)-1) % len(m.pools)
			if slot.CompareAndSwap(0, fp|uint64(p+1)) {
				return m.pools[p]
			}
			continue // lost the claim race; re-read
		}
		if e&^0xFFFF == fp {
			return m.pools[int(e&0xFFFF)-1]
		}
		return m.hrw(kh)
	}
}

// RouteKey reports the pool index a key resolves to (claiming its
// affinity slot under AffinityRouting, exactly as Session would).
func (m *Mesh) RouteKey(key string) int { return m.routePool(key).id }

// Session is one client's sticky handle on its routed pool. Create it
// once per logical client (routing and client setup allocate), then
// dispatch through it — Fetch adds no allocations on top of the
// fleet's own dispatch path.
type Session struct {
	mesh   *Mesh
	pool   *pool
	client *httpd.Client
}

// Session routes key to its pool and returns a dispatch handle.
func (m *Mesh) Session(key string) *Session {
	p := m.routePool(key)
	return &Session{mesh: m, pool: p, client: httpd.NewClient(p.fleet.Net(), p.fleet.Port())}
}

// PoolIndex reports which shard the session landed on.
func (s *Session) PoolIndex() int { return s.pool.id }

// Client exposes the session's underlying pool client (for WaitReady
// and raw probes in tests).
func (s *Session) Client() *httpd.Client { return s.client }

// admit runs pool admission; on refusal the dispatch is shed.
func (s *Session) admit() bool {
	if s.pool.admit(int64(s.mesh.opts.MaxInflight)) {
		return true
	}
	s.pool.shed.Add(1)
	if s.mesh.obs != nil {
		s.mesh.obs.shed.Inc()
	}
	return false
}

// done releases the admission slot and advances the mesh clock.
func (s *Session) done() {
	s.pool.inflight.Add(-1)
	s.pool.served.Add(1)
	s.mesh.tick()
}

// Fetch dispatches a prebuilt request to the session's pool and
// returns status code and body length without retaining the response —
// the zero-allocation hot path.
func (s *Session) Fetch(req []byte) (code, bodyLen int, err error) {
	if !s.admit() {
		return 0, 0, ErrSaturated
	}
	code, bodyLen, err = s.client.Fetch(req)
	s.done()
	return code, bodyLen, err
}

// Get dispatches a GET for uri and returns status and body.
func (s *Session) Get(uri string) (int, []byte, error) {
	if !s.admit() {
		return 0, nil, ErrSaturated
	}
	code, body, err := s.client.Get(uri)
	s.done()
	return code, body, err
}

// Raw dispatches an arbitrary payload (the campaign's attack probes)
// and returns the raw response bytes.
func (s *Session) Raw(payload []byte) ([]byte, error) {
	if !s.admit() {
		return nil, ErrSaturated
	}
	raw, err := s.client.Raw(payload)
	s.done()
	return raw, err
}
