package mesh

// The router maps session keys to pools. Routing happens once, at
// Session creation; the per-request hot path (Session.Fetch) is pool
// admission + the fleet client, and adds no allocations on top of it
// (see TestMeshSessionAddsNoAllocs) — with or without the retry
// machinery enabled. Retries are the exception: a failed dispatch may
// back off on the mesh clock and re-route to the next-ranked
// rendezvous pool, and that recovery path is allowed to allocate.

import (
	"fmt"
	"sort"

	"nvariant/internal/httpd"
)

// hashKey is FNV-1a over the key bytes — allocation-free, unlike
// hash/fnv's boxed hash.Hash64.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// hrw picks the key's rendezvous (highest-random-weight) pool: the
// shard whose seeded salt mixes with the key hash to the largest
// weight. Every key has a stable home, and adding or removing a pool
// would remap only the minimal 1/P share of keys.
func (m *Mesh) hrw(kh uint64) *pool {
	best, bestW := 0, uint64(0)
	for i, salt := range m.salts {
		if w := splitmix64(kh ^ salt); i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return m.pools[best]
}

// routePool resolves key-hash → pool under the configured policy.
// Under hash routing a sick home pool is demoted: the session falls
// through to the best-ranked healthy pool (keeping the home when every
// pool is sick — demotion must never refuse service). Affinity routing
// stays sticky through sickness by design: a pinned key's backend
// state lives in its claimed pool.
func (m *Mesh) routePool(kh uint64) *pool {
	if m.opts.Policy == AffinityRouting {
		return m.affinityPool(kh)
	}
	p := m.hrw(kh)
	if p.sick(m) {
		if alt := m.bestHealthyPool(kh); alt != nil {
			return alt
		}
	}
	return p
}

// affinityPool implements sticky routing: the first session with an
// unclaimed table slot claims it for a round-robin-assigned pool (so
// load spreads regardless of key skew), and every later session with
// the same key sticks to that pool. A slot already claimed by a
// different key fingerprint falls back to rendezvous hashing — still
// deterministic per key, just not sticky-assignable.
func (m *Mesh) affinityPool(kh uint64) *pool {
	slot := &m.affinity[kh%uint64(len(m.affinity))]
	// Pack: high 48 bits fingerprint, low 16 bits pool index + 1
	// (nonzero marks the slot claimed).
	fp := kh &^ 0xFFFF
	for {
		e := slot.Load()
		if e == 0 {
			p := int(m.rrAssign.Add(1)-1) % len(m.pools)
			if slot.CompareAndSwap(0, fp|uint64(p+1)) {
				return m.pools[p]
			}
			continue // lost the claim race; re-read
		}
		if e&^0xFFFF == fp {
			return m.pools[int(e&0xFFFF)-1]
		}
		return m.hrw(kh)
	}
}

// RouteKey reports the pool index a key resolves to (claiming its
// affinity slot under AffinityRouting, exactly as Session would).
func (m *Mesh) RouteKey(key string) int { return m.routePool(hashKey(key)).id }

// Session is one client's sticky handle on its routed pool. Create it
// once per logical client (routing and client setup allocate), then
// dispatch through it — Fetch adds no allocations on top of the
// fleet's own dispatch path until a retry fires.
type Session struct {
	mesh   *Mesh
	pool   *pool
	client *httpd.Client
	// kh is the session key's hash, retained so retries can re-rank
	// pools without the key string.
	kh uint64
	// alts lazily caches one client per pool for retry re-routing
	// (each pool is its own network segment, so clients are
	// pool-specific). Nil until the first re-routed attempt.
	alts []*httpd.Client
}

// Session routes key to its pool and returns a dispatch handle.
func (m *Mesh) Session(key string) *Session {
	kh := hashKey(key)
	p := m.routePool(kh)
	return &Session{mesh: m, pool: p, kh: kh, client: httpd.NewClient(p.fleet.Net(), p.fleet.Port())}
}

// PoolIndex reports which shard the session landed on.
func (s *Session) PoolIndex() int { return s.pool.id }

// Client exposes the session's underlying pool client (for WaitReady
// and raw probes in tests).
func (s *Session) Client() *httpd.Client { return s.client }

// admitOn runs pool admission; on refusal the dispatch is shed and the
// shed is charged to the pool's health score.
func (s *Session) admitOn(p *pool) bool {
	if p.admit(int64(s.mesh.opts.MaxInflight)) {
		return true
	}
	p.shed.Add(1)
	p.healthAdd(s.mesh, healthShedCost)
	if s.mesh.obs != nil {
		s.mesh.obs.shed.Inc()
	}
	return false
}

// doneOn releases the admission slot, counts the dispatch, and
// advances the mesh clock.
func (s *Session) doneOn(p *pool) {
	p.inflight.Add(-1)
	p.served.Add(1)
	s.mesh.dispatched.Add(1)
	if s.mesh.obs != nil {
		s.mesh.obs.dispatched.Inc()
	}
	s.mesh.tick()
}

// healthCostFor maps a classified dispatch error to its health
// penalty.
func healthCostFor(err error) int64 {
	switch DispatchErrorName(err) {
	case "quorum-lost-kill":
		return healthQuorumCost
	case "quarantine-window":
		return healthQuarantineCost
	default:
		return healthErrCost
	}
}

// fetchOn runs one admission + dispatch attempt against pool p. The
// fleet's alarm and quorum-kill counters are snapshotted around the
// dispatch (two atomic loads) so a transport error can be attributed
// to the recovery window it raced; classification and health charging
// happen only on the error path. On budgeted sessions a non-2xx
// status is itself a faulted dispatch (ErrBadResponse) — a known-good
// request's failure status can only mean wire corruption or a
// mid-kill response.
func (s *Session) fetchOn(p *pool, c *httpd.Client, req []byte) (int, int, error) {
	if !s.admitOn(p) {
		return 0, 0, ErrSaturated
	}
	alarms, quorum := p.fleet.AlarmCount(), p.fleet.QuorumLostCount()
	code, bodyLen, err := c.Fetch(req)
	s.doneOn(p)
	if err == nil && s.mesh.opts.RetryBudget > 0 && (code < 200 || code > 299) {
		err = fmt.Errorf("%w: status %d", ErrBadResponse, code)
	}
	if err != nil {
		err = classifyDispatchError(err, p.fleet.AlarmCount()-alarms, p.fleet.QuorumLostCount()-quorum)
		p.healthAdd(s.mesh, healthCostFor(err))
	}
	return code, bodyLen, err
}

// getOn is fetchOn for the Get path (response body retained).
func (s *Session) getOn(p *pool, c *httpd.Client, uri string) (int, []byte, error) {
	if !s.admitOn(p) {
		return 0, nil, ErrSaturated
	}
	alarms, quorum := p.fleet.AlarmCount(), p.fleet.QuorumLostCount()
	code, body, err := c.Get(uri)
	s.doneOn(p)
	if err == nil && s.mesh.opts.RetryBudget > 0 && (code < 200 || code > 299) {
		err = fmt.Errorf("%w: status %d", ErrBadResponse, code)
	}
	if err != nil {
		err = classifyDispatchError(err, p.fleet.AlarmCount()-alarms, p.fleet.QuorumLostCount()-quorum)
		p.healthAdd(s.mesh, healthCostFor(err))
	}
	return code, body, err
}

// retryOrder ranks every pool for a retry pass: rendezvous weight
// order for the session key, healthy pools strictly before sick ones.
// The home pool sits at index 0 when healthy; attempt k dials
// order[k mod P], so retries walk the alternatives before coming back
// around.
func (m *Mesh) retryOrder(kh uint64) []*pool {
	n := len(m.pools)
	type ranked struct {
		p    *pool
		w    uint64
		sick bool
	}
	ws := make([]ranked, n)
	for i, salt := range m.salts {
		p := m.pools[i]
		ws[i] = ranked{p: p, w: splitmix64(kh ^ salt), sick: p.sick(m)}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].sick != ws[j].sick {
			return !ws[i].sick
		}
		return ws[i].w > ws[j].w
	})
	order := make([]*pool, n)
	for i := range ws {
		order[i] = ws[i].p
	}
	return order
}

// retryTarget resolves the attempt-th retry's pool and its cached
// client, creating the client on first use of that pool.
func (s *Session) retryTarget(attempt int) (*pool, *httpd.Client) {
	m := s.mesh
	order := m.retryOrder(s.kh)
	p := order[attempt%len(order)]
	if s.alts == nil {
		s.alts = make([]*httpd.Client, len(m.pools))
		s.alts[s.pool.id] = s.client
	}
	if s.alts[p.id] == nil {
		s.alts[p.id] = httpd.NewClient(p.fleet.Net(), p.fleet.Port())
	}
	return p, s.alts[p.id]
}

// retryAttempt prepares one retry: charge the seeded exponential
// backoff (base << attempt-1 ticks, so rotation, elasticity, and
// health decay see fault pressure as elapsed time), let the
// control-plane triggers those ticks fired settle, then rank pools
// with the post-settle health state and resolve the attempt's target.
// Counters: every attempt past the first is a retry; an attempt on a
// non-home pool is additionally a re-route.
func (s *Session) retryAttempt(attempt int) (*pool, *httpd.Client) {
	m := s.mesh
	shift := uint(attempt - 1)
	if shift > 32 {
		shift = 32
	}
	m.chargeBackoff(m.opts.RetryBackoff << shift)
	m.settleControllers()
	p, c := s.retryTarget(attempt)
	m.retries.Add(1)
	if m.obs != nil {
		m.obs.retries.Inc()
	}
	if p != s.pool {
		m.reroutes.Add(1)
		if m.obs != nil {
			m.obs.reroutes.Inc()
		}
	}
	return p, c
}

// exhausted wraps the final attempt's classified error in
// ErrRetriesExhausted.
func (s *Session) exhausted(lastErr error) error {
	return fmt.Errorf("%w after %d retries: %w", ErrRetriesExhausted, s.mesh.opts.RetryBudget, lastErr)
}

// Fetch dispatches a prebuilt request to the session's pool and
// returns status code and body length without retaining the response —
// the zero-allocation hot path. With a retry budget configured, a
// failed dispatch backs off on the mesh clock and re-routes to the
// next-ranked pool until the budget is spent (ErrRetriesExhausted).
func (s *Session) Fetch(req []byte) (code, bodyLen int, err error) {
	code, bodyLen, err = s.fetchOn(s.pool, s.client, req)
	if err == nil || s.mesh.opts.RetryBudget <= 0 {
		return code, bodyLen, err
	}
	for attempt := 1; attempt <= s.mesh.opts.RetryBudget; attempt++ {
		p, c := s.retryAttempt(attempt)
		if code, bodyLen, err = s.fetchOn(p, c, req); err == nil {
			return code, bodyLen, nil
		}
	}
	return 0, 0, s.exhausted(err)
}

// Get dispatches a GET for uri and returns status and body, with the
// same retry contract as Fetch.
func (s *Session) Get(uri string) (int, []byte, error) {
	code, body, err := s.getOn(s.pool, s.client, uri)
	if err == nil || s.mesh.opts.RetryBudget <= 0 {
		return code, body, err
	}
	for attempt := 1; attempt <= s.mesh.opts.RetryBudget; attempt++ {
		p, c := s.retryAttempt(attempt)
		if code, body, err = s.getOn(p, c, uri); err == nil {
			return code, body, nil
		}
	}
	return 0, nil, s.exhausted(err)
}

// Raw dispatches an arbitrary payload (the campaign's attack probes)
// and returns the raw response bytes. Raw never retries: a probe that
// died with its target is a result, not a fault to recover from — and
// re-routing an attack payload would spray corruption across pools.
func (s *Session) Raw(payload []byte) ([]byte, error) {
	p := s.pool
	if !s.admitOn(p) {
		return nil, ErrSaturated
	}
	alarms, quorum := p.fleet.AlarmCount(), p.fleet.QuorumLostCount()
	raw, err := s.client.Raw(payload)
	s.doneOn(p)
	if err != nil {
		err = classifyDispatchError(err, p.fleet.AlarmCount()-alarms, p.fleet.QuorumLostCount()-quorum)
		p.healthAdd(s.mesh, healthCostFor(err))
	}
	return raw, err
}
