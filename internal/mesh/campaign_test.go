package mesh

import (
	"bytes"
	"testing"

	"nvariant/internal/obs"
)

// testCampaignConfig is the sweep the determinism tests replay: the
// full P ∈ {1,2,4} × rotation × attack matrix at reduced per-cell
// volume so the double-run finishes quickly even under -race.
func testCampaignConfig(seed int64) CampaignConfig {
	return CampaignConfig{
		Seed:        seed,
		Requests:    12,
		Pools:       []int{1, 2, 4},
		Groups:      2,
		RotateEvery: 4,
		Probes:      1,
	}
}

// TestCampaignByteIdentical: the same seed reproduces the rotation
// matrix byte for byte — every exposure-window vtick, availability
// ratio, and rotation count is a function of the seed alone. The CI
// mesh-smoke job replays this cross-process (and against -race) via
// cmd/meshbench; this test pins it in-tree.
func TestCampaignByteIdentical(t *testing.T) {
	cfg := testCampaignConfig(42)
	r1, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := r2.JSON()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed campaign not byte-identical:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b1, b2)
	}
	if v := r1.Check(); len(v) != 0 {
		t.Fatalf("campaign contract violations: %v\n%s", v, b1)
	}

	// The matrix's own shape: rotation-on cells rotated and sampled
	// exposure windows; rotation-off benign cells must have none
	// (their exposure is unbounded — the point of rotation).
	for _, c := range r1.Cells {
		switch {
		case c.Rotation && c.ExposureSamples == 0:
			t.Errorf("cell p=%d rotation=on attack=%s: no exposure samples", c.Pools, c.Attack)
		case !c.Rotation && c.Attack == "none" && c.ExposureSamples != 0:
			t.Errorf("cell p=%d rotation=off benign: %d exposure samples, want 0", c.Pools, c.ExposureSamples)
		}
		if c.Rotation && c.ExposureP99 < c.ExposureP50 {
			t.Errorf("cell p=%d: exposure P99 %d < P50 %d", c.Pools, c.ExposureP99, c.ExposureP50)
		}
	}
	if r1.Summary.MinAvailability < 0.99 {
		t.Errorf("min availability %.4f < 0.99", r1.Summary.MinAvailability)
	}
}

// TestCampaignInstrumentationPreservesJSON: attaching an obs registry
// must not perturb the matrix — metrics record wall-clock data outside
// the deterministic output.
func TestCampaignInstrumentationPreservesJSON(t *testing.T) {
	cfg := CampaignConfig{Seed: 17, Requests: 8, Pools: []int{2}, Groups: 2, RotateEvery: 4, Probes: 1}
	plain, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewRegistry()
	instr, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := plain.JSON()
	ib, _ := instr.JSON()
	if !bytes.Equal(pb, ib) {
		t.Fatalf("instrumentation changed the matrix:\n--- plain ---\n%s\n--- instrumented ---\n%s", pb, ib)
	}
	// And the registry actually saw the campaign.
	var text bytes.Buffer
	if err := cfg.Obs.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"mesh_dispatched_total", "mesh_rotations_total", "mesh_exposure_window_seconds", "mesh_pool_healthy_groups"} {
		if !bytes.Contains(text.Bytes(), []byte(family)) {
			t.Errorf("registry missing %s after instrumented campaign", family)
		}
	}
}

// TestCampaignCheckFlagsViolations: Check is the CI gate — make sure
// it actually fires on a bad matrix.
func TestCampaignCheckFlagsViolations(t *testing.T) {
	r := &CampaignResult{Cells: []CampaignCell{
		{Pools: 2, Rotation: true, Attack: "none", Availability: 0.5, Rotations: 0},
		{Pools: 2, Rotation: false, Attack: "forge-uid", Availability: 1,
			Probes: 2, Detections: 1, MissedDetection: true, Leaked: true},
	}}
	v := r.Check()
	if len(v) != 4 {
		t.Fatalf("Check found %d violations, want 4 (availability, no-rotation, missed, leak): %v", len(v), v)
	}
}
