package httpd

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz targets for the two data-plane parsers: every byte both
// reaches from the network is attacker-controlled, so neither may
// panic, and every accepted parse must satisfy the invariants the
// server's request loop relies on. Seed corpora live under
// testdata/fuzz; CI runs each target briefly (-fuzztime) in the
// chaos-smoke job.

func FuzzParseRequestLine(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte("GET /index.html HTTP/1.0\r\n\r\n"),
		[]byte("GET / HTTP/1.1\n"),
		[]byte("POST /a b HTTP/1.0\nx"),
		[]byte("BREW /coffee HTCPCP/1.0\r\n"),
		[]byte("GET  /double-space HTTP/1.0\n"),
		[]byte("\r\n"),
		[]byte(""),
		bytes.Repeat([]byte{'A'}, ReqBufSize),
		[]byte("GET /private/secret.html HTTP/1.0\r\nHost: x\r\n\r\n"),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := ParseRequestLine(raw)
		if err != nil {
			return
		}
		if req.Method == "" {
			t.Fatalf("accepted request with empty method: %q", raw)
		}
		if !strings.HasPrefix(req.URI, "/") {
			t.Fatalf("accepted non-rooted URI %q from %q", req.URI, raw)
		}
		if !strings.HasPrefix(req.Version, "HTTP/") {
			t.Fatalf("accepted version %q from %q", req.Version, raw)
		}
		if strings.ContainsAny(req.Method+req.URI+req.Version, " \r\n") {
			t.Fatalf("parsed tokens retain separators: %+v from %q", req, raw)
		}
	})
}

func FuzzParseStatus(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte("HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nhi"),
		[]byte("HTTP/1.0 404 Not Found\r\n\r\n"),
		[]byte("HTTP/1.0 9999 Too Big\r\n"),
		[]byte("HTTP/1.0  \r\n"),
		[]byte("HTTP/1.0\r\n"),
		[]byte("x"),
		[]byte(""),
		[]byte("HTTP/1.0 20x OK\n"),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		code, err := ParseStatus(raw)
		if err == nil && (code < 0 || code > 999) {
			// The three-digit bound is what keeps a hostile response
			// from overflowing the accumulator.
			t.Fatalf("accepted status %d from %q", code, raw)
		}
		// Body must never panic and always alias the input.
		if body := Body(raw); len(body) > len(raw) {
			t.Fatalf("body longer than input: %d > %d", len(body), len(raw))
		}
	})
}
