package httpd

import (
	"time"

	"nvariant/internal/obs"
)

// Metrics is the server's registered metric set, shared by every
// variant of a group via Options.Metrics. Only variant 0 records —
// the N variants serve each request redundantly, and counting every
// variant would multiply traffic by N. Series owned by this layer:
//
//	httpd_requests_total             requests that reached the parser
//	httpd_responses_total{class=...} responses by status class
//	httpd_service_time_seconds       recv-to-response service time
type Metrics struct {
	requests *obs.Counter
	class2xx *obs.Counter
	class4xx *obs.Counter
	class5xx *obs.Counter
	service  *obs.Histogram
}

// NewMetrics registers (or finds) the httpd metric set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		requests: reg.Counter("httpd_requests_total", "Requests that reached the parser."),
		class2xx: reg.Counter("httpd_responses_total", "Responses by status class.", obs.L("class", "2xx")),
		class4xx: reg.Counter("httpd_responses_total", "Responses by status class.", obs.L("class", "4xx")),
		class5xx: reg.Counter("httpd_responses_total", "Responses by status class.", obs.L("class", "5xx")),
		service: reg.Histogram("httpd_service_time_seconds",
			"Request service time, first byte received to response sent.", nil),
	}
}

// observe records one served request.
func (m *Metrics) observe(code int, d time.Duration) {
	m.requests.Inc()
	switch {
	case code >= 200 && code < 300:
		m.class2xx.Inc()
	case code >= 400 && code < 500:
		m.class4xx.Inc()
	case code >= 500:
		m.class5xx.Inc()
	}
	m.service.Observe(d)
}
