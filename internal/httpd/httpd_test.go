package httpd

import (
	"strings"
	"testing"
	"testing/quick"
)

// quickCheck runs a property with the default quick configuration.
func quickCheck(f any) error { return quick.Check(f, nil) }

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := ParseConfig(DefaultConfigFile())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ListenPort != 8080 || cfg.User != "wwwrun" || cfg.Group != "www" {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.DocumentRoot != "/var/www" || cfg.ErrorLog != "/var/log/httpd-error_log" {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		"Listen not-a-port\n",
		"Bogus directive\n",
		"User\n",
		"Listen 8080 extra\n",
	}
	for _, c := range cases {
		if _, err := ParseConfig([]byte(c)); err == nil {
			t.Errorf("ParseConfig(%q) succeeded, want error", c)
		}
	}
}

func TestParseConfigSkipsComments(t *testing.T) {
	cfg, err := ParseConfig([]byte("# comment\n\nListen 9000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ListenPort != 9000 {
		t.Errorf("port = %d", cfg.ListenPort)
	}
}

func TestParseRequestLine(t *testing.T) {
	req, err := ParseRequestLine([]byte("GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.URI != "/index.html" || req.Version != "HTTP/1.0" {
		t.Errorf("req = %+v", req)
	}
}

func TestParseRequestLineErrors(t *testing.T) {
	cases := []string{
		"GET /index.html HTTP/1.0",    // no newline
		"GET /index.html\r\n",         // two fields
		"GET index.html HTTP/1.0\r\n", // relative URI
		" / HTTP/1.0\r\n",             // empty method
		"GET / FTP/1.0\r\n",           // bad version
		strings.Repeat("A", 256),      // overflow filler
	}
	for _, c := range cases {
		if _, err := ParseRequestLine([]byte(c)); err == nil {
			t.Errorf("ParseRequestLine(%q) succeeded, want error", c)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	body := []byte("<html>hi</html>")
	raw := []byte(FormatResponse(200, "text/html", body))
	code, err := ParseStatus(raw)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 {
		t.Errorf("code = %d", code)
	}
	if got := Body(raw); string(got) != string(body) {
		t.Errorf("body = %q", got)
	}
	if !strings.Contains(string(raw), "Content-Length: 15") {
		t.Errorf("missing content length: %q", raw)
	}
}

func TestParseStatusErrors(t *testing.T) {
	for _, c := range []string{"", "HTTP/1.0\n", "HTTP/1.0 abc OK\r\n"} {
		if _, err := ParseStatus([]byte(c)); err == nil {
			t.Errorf("ParseStatus(%q) succeeded, want error", c)
		}
	}
}

func TestContentTypeFor(t *testing.T) {
	cases := map[string]string{
		"/a.html": "text/html",
		"/":       "text/html",
		"/s.css":  "text/css",
		"/l.gif":  "image/gif",
		"/d.bin":  "application/octet-stream",
		"/no-ext": "application/octet-stream",
	}
	for uri, want := range cases {
		if got := ContentTypeFor(uri); got != want {
			t.Errorf("ContentTypeFor(%q) = %q, want %q", uri, got, want)
		}
	}
}

func TestErrorBodyMentionsCode(t *testing.T) {
	if !strings.Contains(string(ErrorBody(404)), "404 Not Found") {
		t.Error("404 body missing status text")
	}
}

func TestBodyWithoutSeparator(t *testing.T) {
	if Body([]byte("no separator")) != nil {
		t.Error("Body without separator should be nil")
	}
}

func TestContainsSecret(t *testing.T) {
	if !ContainsSecret([]byte("xx TOP-SECRET yy")) {
		t.Error("secret not recognized")
	}
	if ContainsSecret([]byte("public page")) {
		t.Error("false positive")
	}
}

func TestQuickParseRequestLineNeverPanics(t *testing.T) {
	// Robustness property: arbitrary bytes (the attacker's full input
	// space) either parse to a well-formed request or error — never
	// panic, never yield a method/URI that violates the invariants.
	f := func(data []byte) bool {
		req, err := ParseRequestLine(data)
		if err != nil {
			return true
		}
		return req.Method != "" && len(req.URI) > 0 && req.URI[0] == '/'
	}
	if err := quickCheck(f); err != nil {
		t.Error(err)
	}
}

func TestQuickResponseRoundTrip(t *testing.T) {
	codes := []int{200, 400, 403, 404, 405, 500}
	f := func(codeIdx uint8, body []byte) bool {
		code := codes[int(codeIdx)%len(codes)]
		raw := []byte(FormatResponse(code, "text/html", body))
		got, err := ParseStatus(raw)
		if err != nil || got != code {
			return false
		}
		b := Body(raw)
		if len(b) != len(body) {
			return false
		}
		for i := range body {
			if b[i] != body[i] {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f); err != nil {
		t.Error(err)
	}
}
