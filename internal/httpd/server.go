// Package httpd is the case-study web server (§4): a small Apache-like
// static file server written against the simulated syscall API so it
// can run as an N-variant process group.
//
// Like Apache, it reads its User/Group from a configuration file,
// resolves them through /etc/passwd and /etc/group (diversified via
// unshared files under the UID variation), starts as root, and serves
// requests under the unprivileged worker identity, re-escalating
// between requests. It carries a planted non-control-data
// vulnerability in the style of Chen et al. [12]: the request receive
// uses a capacity larger than the parse buffer, so an over-long
// request overflows into the adjacent worker-UID variable. Corrupting
// that UID to root makes the next request run with EUID 0 — unless the
// UID variation detects the corrupted value at its first use.
//
// The Transformed option selects the source-to-source transformed
// program of §3.3: UID constants arrive pre-reexpressed (Consts), and
// UID uses are exposed to the monitor with the Table 2 detection calls
// (one uid_value per request, §4).
package httpd

import (
	"fmt"
	"strings"
	"time"

	"nvariant/internal/libc"
	"nvariant/internal/reexpress"
	"nvariant/internal/sys"
	"nvariant/internal/vmem"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

const (
	// ReqBufSize is the parse buffer size.
	ReqBufSize = 256
	// RecvCap is the (vulnerably oversized) capacity passed to recv.
	RecvCap = 1280
	// guardSize keeps overflows up to RecvCap inside mapped memory so
	// the interesting corruption target is the UID word, not a crash.
	guardSize = RecvCap
)

// Consts holds the program's trusted UID constants. For variant i they
// are produced at build time by applying R_i — this is the "transform
// constant data" half of normal equivalence (§2.2 property 1).
type Consts struct {
	// Root is R_i(0), the representation of the root UID.
	Root vos.UID
}

// Options configures the server program (identical across variants).
type Options struct {
	// ConfigPath locates the configuration file.
	ConfigPath string
	// Transformed enables the §3.3 UID transformation: detection
	// syscalls at UID uses. Variants of configuration 2 and 4 set it.
	Transformed bool
	// NoDetectionCalls is the §5 ablation: keep the transformed
	// constants but skip the per-request uid_value call, relying on
	// the existing syscall-boundary monitoring (detection then happens
	// at the next natural UID syscall, with less precision).
	NoDetectionCalls bool
	// LogUIDs reintroduces the §4 pitfall: error-log lines include the
	// numeric UID, which diverges between variants. The paper's fix
	// (the default) omits the UID from log output.
	LogUIDs bool
	// MaxConns stops the server after handling this many connections
	// (0 = serve until the listener is closed). The count is kept in
	// the kernel's shared scoreboard so concurrent worker lanes agree
	// on one atomic total; with Workers > 1, connections already in
	// flight on sibling lanes when the budget trips still complete, so
	// the served total is bounded by MaxConns + Workers - 1.
	MaxConns int
	// WorkFactor adds synthetic per-request CPU work (checksum passes
	// over the response body), standing in for request processing that
	// makes the saturated workload compute-bound as on the paper's
	// testbed.
	WorkFactor int
	// Workers is the prefork worker-lane count: after startup the
	// server preforks Workers copies of the request loop over the
	// shared listener, like prefork Apache — the paper's actual
	// testbed server — so the group serves Workers connections
	// concurrently. 0 or 1 is the serial server.
	Workers int
	// ServiceTime simulates per-request blocking service work (backing
	// store reads, upstream calls): each request handler blocks this
	// long, occupying only its own worker lane. It is the request-cost
	// component prefork lanes overlap even on one CPU, where
	// WorkFactor models the component they cannot beyond GOMAXPROCS.
	ServiceTime time.Duration
	// Metrics is the optional server metric set (see NewMetrics). The
	// pointer is shared by all variants of a group; only variant 0
	// records, so series count requests once, not N times.
	Metrics *Metrics
}

// DefaultOptions returns the stock server options.
func DefaultOptions() Options {
	return Options{ConfigPath: DefaultConfigPath}
}

// Server is the httpd program. Create per-variant instances with New
// or BuildVariants. A Server value runs one group at a time: its boot
// block carries startup state to the variant's worker lanes.
type Server struct {
	opts   Options
	consts Consts

	// boot is the startup state worker lanes inherit — the analogue of
	// the memory image a prefork worker receives from fork(). It is
	// written by the primary lane before Prefork and read by worker
	// lanes after; the Prefork rendezvous orders the two.
	boot struct {
		cfg   ServerConfig
		logFD int
		lfd   int
		uid   vos.UID
	}
}

var _ sys.Program = (*Server)(nil)
var _ sys.WorkerProgram = (*Server)(nil)

// New builds a server program with the given constants. For an
// untransformed server (variant 0 or single-variant configurations)
// use Consts{Root: 0}.
func New(opts Options, consts Consts) *Server {
	if opts.ConfigPath == "" {
		opts.ConfigPath = DefaultConfigPath
	}
	return &Server{opts: opts, consts: consts}
}

// BuildVariants constructs one server program per reexpression
// function, applying R_i to the program's UID constants — the trusted
// build-time data transformation of §3.3. Transformed is forced on:
// running diversified UID data through an untransformed program would
// violate normal equivalence.
func BuildVariants(opts Options, funcs []reexpress.Func) ([]sys.Program, error) {
	progs := make([]sys.Program, len(funcs))
	for i, f := range funcs {
		root, err := f.Apply(vos.Root)
		if err != nil {
			return nil, fmt.Errorf("build variant %d: reexpress root: %w", i, err)
		}
		o := opts
		o.Transformed = true
		progs[i] = New(o, Consts{Root: root})
	}
	return progs, nil
}

// BuildFromSpec builds one transformed server per variant of a
// DiversitySpec, applying the spec's effective (stack-composed) UID
// function of each variant to the program's constants.
func BuildFromSpec(opts Options, spec *reexpress.Spec) ([]sys.Program, error) {
	return BuildVariants(opts, spec.UIDFuncs())
}

// Name implements sys.Program.
func (s *Server) Name() string { return "httpd" }

// Run implements sys.Program.
func (s *Server) Run(ctx *sys.Context) error {
	if err := s.serve(ctx); err != nil {
		return err
	}
	return ctx.Exit(0)
}

// state is the per-run server state.
type state struct {
	ctx      *sys.Context
	cfg      ServerConfig
	logFD    int
	reqBuf   vmem.Addr
	uidAddr  vmem.Addr // adjacent to reqBuf: the overflow target
	workSink word.Word
	// parse is the reusable copy-out buffer for the request line, so
	// the steady-state request loop reads variant memory without
	// allocating.
	parse [ReqBufSize]byte
	// body and resp are the reusable document and response-rendering
	// buffers of the request loop.
	body []byte
	resp []byte
	// reqStart is the service-time clock, stamped at request receipt
	// when metrics are active on variant 0.
	reqStart time.Time
}

func (s *Server) serve(ctx *sys.Context) error {
	st := &state{ctx: ctx}

	// --- Startup (as root): configuration and identity resolution ---
	cfgFD, err := ctx.Open(s.opts.ConfigPath, vos.ReadOnly, 0)
	if err != nil {
		return fmt.Errorf("httpd: open config: %w", err)
	}
	cfgData, err := ctx.ReadAll(cfgFD)
	if err != nil {
		return fmt.Errorf("httpd: read config: %w", err)
	}
	if err := ctx.Close(cfgFD); err != nil {
		return err
	}
	st.cfg, err = ParseConfig(cfgData)
	if err != nil {
		return fmt.Errorf("httpd: %w", err)
	}

	st.logFD, err = ctx.Open(st.cfg.ErrorLog, vos.WriteOnly|vos.Create|vos.Append, 0644)
	if err != nil {
		return fmt.Errorf("httpd: open error log: %w", err)
	}

	pw, found, err := libc.Getpwnam(ctx, st.cfg.User)
	if err != nil {
		return err
	}
	// Transformed: if (pw == NULL) becomes cond_chk(pw == NULL) —
	// getpwnam's result is UID-derived data influencing control flow.
	missing := !found
	if s.opts.Transformed {
		missing, err = ctx.CondChk(missing)
		if err != nil {
			return err
		}
	}
	if missing {
		if err := st.logf("error: User %q not found in /etc/passwd", st.cfg.User); err != nil {
			return err
		}
		return ctx.Exit(1)
	}

	// Apache's "will not serve as root" configuration check. In the
	// transformed program the comparison goes through cc_eq against
	// the reexpressed root constant (§3.5); the untransformed program
	// compares against the literal 0.
	isRoot := pw.UID == s.consts.Root
	if s.opts.Transformed {
		isRoot, err = ctx.CCEq(pw.UID, s.consts.Root)
		if err != nil {
			return err
		}
	}
	if isRoot {
		if err := st.logf("error: User directive must not name the superuser"); err != nil {
			return err
		}
		return ctx.Exit(1)
	}

	gr, gfound, err := libc.Getgrnam(ctx, st.cfg.Group)
	if err != nil {
		return err
	}
	gmissing := !gfound
	if s.opts.Transformed {
		gmissing, err = ctx.CondChk(gmissing)
		if err != nil {
			return err
		}
	}
	if gmissing {
		if err := st.logf("error: Group %q not found in /etc/group", st.cfg.Group); err != nil {
			return err
		}
		return ctx.Exit(1)
	}

	// --- The vulnerable data layout -----------------------------------
	if err := s.mapRequestState(st, pw.UID); err != nil {
		return err
	}

	if err := ctx.Setegid(gr.GID); err != nil {
		return err
	}

	lfd, err := ctx.Listen(st.cfg.ListenPort)
	if err != nil {
		return fmt.Errorf("httpd: listen: %w", err)
	}
	if err := st.logf("httpd started on port %d, serving as %q", st.cfg.ListenPort, st.cfg.User); err != nil {
		return err
	}

	// --- Prefork -------------------------------------------------------
	// Publish the startup state for the worker lanes, then fork them;
	// the primary lane continues as worker 0 over the same listener.
	s.boot.cfg = st.cfg
	s.boot.logFD = st.logFD
	s.boot.lfd = lfd
	s.boot.uid = pw.UID
	if w := s.opts.Workers; w > 1 {
		if _, err := ctx.Prefork(w); err != nil {
			return err
		}
	}

	return s.requestLoop(st, lfd)
}

// RunWorker implements sys.WorkerProgram: one prefork worker lane's
// request loop, with its own copy of the vulnerable data layout and
// its own parse/body/resp state in a fresh per-lane address space.
func (s *Server) RunWorker(ctx *sys.Context, worker int) error {
	st := &state{ctx: ctx, cfg: s.boot.cfg, logFD: s.boot.logFD}
	if err := s.mapRequestState(st, s.boot.uid); err != nil {
		return err
	}
	return s.requestLoop(st, s.boot.lfd)
}

// mapRequestState lays out the per-worker request-handling memory: the
// request parse buffer sits directly below the worker-UID variable,
// and the guard region keeps oversized payloads mapped so corruption,
// not a crash, is the attack outcome. Every worker lane carries its
// own copy of the layout — an overflow corrupts the lane it lands on.
func (s *Server) mapRequestState(st *state, uid vos.UID) error {
	ctx := st.ctx
	var err error
	st.reqBuf, err = ctx.Mem.Alloc(ReqBufSize)
	if err != nil {
		return err
	}
	st.uidAddr, err = ctx.Mem.Alloc(word.Size)
	if err != nil {
		return err
	}
	if _, err := ctx.Mem.Alloc(guardSize); err != nil {
		return err
	}
	return ctx.Mem.WriteWord(st.uidAddr, uid)
}

// requestLoop accepts and serves connections until the listener
// closes, an in-band stop request arrives, or the served-connection
// budget is spent. Concurrent worker lanes run this loop over the
// shared listener fd.
func (s *Server) requestLoop(st *state, lfd int) error {
	ctx := st.ctx
	conns := 0
	for {
		cfd, err := ctx.Accept(lfd)
		if err != nil {
			break // listener closed: orderly shutdown
		}
		served, stop, err := s.handleConn(st, cfd)
		if err != nil {
			return err
		}
		if stop {
			// In-band shutdown: close the shared listener so sibling
			// worker lanes stop accepting too (a lane may already have
			// closed it — ignore the errno).
			_ = ctx.Close(lfd)
			break
		}
		if served {
			conns++
			spent, err := s.connBudgetSpent(ctx)
			if err != nil {
				return err
			}
			if spent {
				_ = ctx.Close(lfd)
				break
			}
		}
	}
	return st.logf("httpd shutting down after %d connections", conns)
}

// connBudgetSpent counts one served connection against MaxConns. The
// total lives in the kernel's shared scoreboard: the fetch-add is
// atomic group-wide and its result is replicated to every variant of
// the lane, so concurrent lanes neither race the count nor diverge on
// the shutdown decision (a per-lane counter in variant memory would do
// both once Workers > 1).
func (s *Server) connBudgetSpent(ctx *sys.Context) (bool, error) {
	if s.opts.MaxConns <= 0 {
		return false, nil
	}
	total, err := ctx.ScoreAdd(1)
	if err != nil {
		return false, err
	}
	return int(total) >= s.opts.MaxConns, nil
}

// ShutdownURI stops the server when requested: the harness's in-band
// stop signal (the paper's launcher would kill the group instead).
const ShutdownURI = "/__shutdown"

// handleConn serves one connection (one request, HTTP/1.0 style).
// served reports whether a request was actually received (empty
// connections, e.g. liveness probes, don't count toward MaxConns);
// stop reports an in-band shutdown request.
func (s *Server) handleConn(st *state, cfd int) (served, stop bool, err error) {
	ctx := st.ctx
	defer func() { _ = ctx.Close(cfd) }()

	// VULNERABILITY: RecvCap exceeds ReqBufSize, so the kernel's copy
	// of the client's bytes can run past the parse buffer into the
	// adjacent worker-UID word — the same unchecked-copy shape as the
	// non-control-data attacks of Chen et al. [12].
	n, err := ctx.RecvMem(cfd, st.reqBuf, RecvCap)
	if err != nil {
		return false, false, err
	}
	if n == 0 {
		return false, false, nil // client closed without a request
	}
	if s.opts.Metrics != nil && ctx.Variant == 0 {
		st.reqStart = time.Now()
	}

	parseLen := n
	if parseLen > ReqBufSize {
		parseLen = ReqBufSize
	}
	raw := st.parse[:parseLen]
	if err := ctx.Mem.ReadBytesInto(st.reqBuf, raw); err != nil {
		return true, false, err
	}
	req, err := ParseRequestLine(raw)
	if err != nil {
		return true, false, s.respondError(st, cfd, 400)
	}
	if req.Method != "GET" {
		return true, false, s.respondError(st, cfd, 405)
	}
	if req.URI == ShutdownURI {
		return true, true, s.respondError(st, cfd, 200)
	}
	if strings.Contains(req.URI, "..") {
		return true, false, s.respondError(st, cfd, 403)
	}

	// Become the worker user for filesystem access. The UID is loaded
	// from the (possibly corrupted) memory word; the transformed
	// program exposes it to the monitor first — the paper's one
	// detection syscall per request (§4).
	uid, err := ctx.Mem.ReadWord(st.uidAddr)
	if err != nil {
		return true, false, err
	}
	if s.opts.Transformed && !s.opts.NoDetectionCalls {
		uid, err = ctx.UIDValue(uid)
		if err != nil {
			return true, false, err
		}
	}
	if err := ctx.Seteuid(uid); err != nil {
		return true, false, err
	}

	code, body := s.loadDocument(st, req.URI)

	// Re-escalate for the next request (ruid stayed 0).
	if err := ctx.Seteuid(s.consts.Root); err != nil {
		return true, false, err
	}

	s.burnWork(st, body)
	if s.opts.ServiceTime > 0 {
		// Simulated blocking service work, performed redundantly by
		// every variant (like burnWork): the variants of this lane
		// block in parallel, so the lane is occupied for ServiceTime
		// while sibling lanes keep serving.
		time.Sleep(s.opts.ServiceTime)
	}

	st.resp = AppendResponse(st.resp[:0], code, ContentTypeFor(req.URI), body)
	err = ctx.SendBytes(cfd, st.resp)
	if err == nil {
		s.record(st, code)
	}
	return true, false, err
}

// record counts one served response. Variant 0 only — each request is
// served redundantly by all N variants, and double counting would
// scale every httpd series by the group width.
func (s *Server) record(st *state, code int) {
	if m := s.opts.Metrics; m != nil && st.ctx.Variant == 0 {
		m.observe(code, time.Since(st.reqStart))
	}
}

// loadDocument maps the URI to a file and reads it under the current
// (worker) credentials, translating errnos to HTTP statuses.
func (s *Server) loadDocument(st *state, uri string) (int, []byte) {
	ctx := st.ctx
	if strings.HasSuffix(uri, "/") {
		uri += "index.html"
	}
	path := st.cfg.DocumentRoot + uri
	fd, err := ctx.Open(path, vos.ReadOnly, 0)
	if err != nil {
		code := 500
		if e, ok := vos.AsErrno(err); ok {
			switch e {
			case vos.ErrNoEnt:
				code = 404
			case vos.ErrAccess, vos.ErrPerm:
				code = 403
			case vos.ErrIsDir:
				code = 403
			}
		}
		s.logDenied(st, uri, code)
		return code, ErrorBody(code)
	}
	body, err := ctx.ReadAllInto(fd, st.body[:0])
	_ = ctx.Close(fd)
	if err != nil {
		return 500, ErrorBody(500)
	}
	st.body = body
	return 200, body
}

// logDenied writes the §4 error-log line. With LogUIDs set it includes
// the effective UID value — the divergence pitfall the paper hit; the
// default follows the paper's fix and omits it.
func (s *Server) logDenied(st *state, uri string, code int) {
	if code != 403 {
		return
	}
	if s.opts.LogUIDs {
		uid, err := st.ctx.Mem.ReadWord(st.uidAddr)
		if err == nil {
			// Deliberately divergent under the UID variation.
			_ = st.logf("access denied for %s (uid=%s)", uri, uid.Decimal())
			return
		}
	}
	_ = st.logf("access denied for %s", uri)
}

// respondError sends an error response without touching credentials.
func (s *Server) respondError(st *state, cfd int, code int) error {
	st.resp = AppendResponse(st.resp[:0], code, "text/html", ErrorBody(code))
	err := st.ctx.SendBytes(cfd, st.resp)
	if err == nil {
		s.record(st, code)
	}
	return err
}

// burnWork performs WorkFactor checksum passes over the body: the
// synthetic stand-in for per-request processing, executed redundantly
// by every variant (the paper's duplicated computation).
func (s *Server) burnWork(st *state, body []byte) {
	if s.opts.WorkFactor <= 0 {
		return
	}
	sum := st.workSink
	for k := 0; k < s.opts.WorkFactor; k++ {
		for _, b := range body {
			sum = sum*31 + word.Word(b)
		}
	}
	st.workSink = sum // keep the loop live
}

// logf appends one line to the error log.
func (st *state) logf(format string, args ...any) error {
	line := fmt.Sprintf(format, args...) + "\n"
	return st.ctx.WriteString(st.logFD, line)
}

// SetupWorld installs the server's configuration file into a world.
func SetupWorld(w *vos.World) error {
	return SetupWorldAt(w, DefaultPort)
}

// SetupWorldAt installs the configuration file with a Listen directive
// for the given port, so independent server groups (e.g. members of a
// fleet) can share one network without colliding.
func SetupWorldAt(w *vos.World, port uint16) error {
	root := vos.CredFor(vos.Root, 0)
	if err := w.FS.WriteFile(DefaultConfigPath, ConfigFileForPort(port), 0644, root); err != nil {
		return fmt.Errorf("install httpd.conf: %w", err)
	}
	return nil
}
