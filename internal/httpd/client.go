package httpd

import (
	"errors"
	"fmt"
	"strings"

	"nvariant/internal/simnet"
)

// ErrConnClosed is returned by Client when the server closed the
// connection without responding — what an attacker observes when the
// monitor kills a compromised variant group mid-request.
var ErrConnClosed = errors.New("httpd: connection closed without response")

// Client issues HTTP requests against a simnet port, standing in for
// the remote (possibly malicious) user of Figure 1.
type Client struct {
	net  *simnet.Network
	port uint16
}

// NewClient builds a client for the given network and port.
func NewClient(net *simnet.Network, port uint16) *Client {
	return &Client{net: net, port: port}
}

// Get requests uri and returns the status code and body.
func (c *Client) Get(uri string) (int, []byte, error) {
	raw, err := c.Raw([]byte(fmt.Sprintf("GET %s HTTP/1.0\r\n\r\n", uri)))
	if err != nil {
		return 0, nil, err
	}
	code, err := ParseStatus(raw)
	if err != nil {
		return 0, nil, err
	}
	return code, Body(raw), nil
}

// AppendRequest appends the GET request payload for uri to dst and
// returns the extended slice — the allocation-free form load
// generators use with prebuilt per-URI request buffers.
func AppendRequest(dst []byte, uri string) []byte {
	dst = append(dst, "GET "...)
	dst = append(dst, uri...)
	dst = append(dst, " HTTP/1.0\r\n\r\n"...)
	return dst
}

// Fetch sends a prebuilt request payload (see AppendRequest) and
// returns the status code and body length, recycling the pooled
// response buffer back to the network. It is the zero-allocation
// client path: benchmarks that drive a server through Fetch measure
// the server, not client-side request/response garbage. Callers that
// need the body bytes use Get or Raw instead.
func (c *Client) Fetch(req []byte) (code, bodyLen int, err error) {
	conn, err := c.net.Dial(c.port)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send(req); err != nil {
		return 0, 0, err
	}
	resp, err := conn.Recv()
	if err != nil {
		return 0, 0, err
	}
	if resp == nil {
		return 0, 0, ErrConnClosed
	}
	code, perr := ParseStatus(resp)
	bodyLen = len(Body(resp))
	simnet.PutBuffer(resp)
	if perr != nil {
		return 0, 0, perr
	}
	return code, bodyLen, nil
}

// Raw sends an arbitrary request payload and returns the raw response
// bytes — the attacker's interface.
func (c *Client) Raw(payload []byte) ([]byte, error) {
	conn, err := c.net.Dial(c.port)
	if err != nil {
		return nil, err
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send(payload); err != nil {
		return nil, err
	}
	resp, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	if resp == nil {
		return nil, ErrConnClosed
	}
	return resp, nil
}

// WaitReady polls until the server is accepting connections (the
// harness races server startup). It issues a throwaway request.
func (c *Client) WaitReady(attempts int) error {
	for i := 0; i < attempts; i++ {
		conn, err := c.net.Dial(c.port)
		if err == nil {
			_ = conn.Send([]byte("GET /index.html HTTP/1.0\r\n\r\n"))
			_, _ = conn.Recv()
			_ = conn.Close()
			return nil
		}
	}
	return fmt.Errorf("httpd: server did not start listening")
}

// ContainsSecret reports whether a response body leaked the root-only
// document (used by attack experiments to score success).
func ContainsSecret(body []byte) bool {
	return strings.Contains(string(body), "TOP-SECRET")
}
