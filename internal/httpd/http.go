package httpd

import (
	"fmt"
	"strings"
)

// Request is a parsed HTTP request line.
type Request struct {
	// Method is the HTTP method (only GET is served).
	Method string
	// URI is the request path.
	URI string
	// Version is the HTTP version token.
	Version string
}

// ParseRequestLine parses the first line of an HTTP request from the
// (bounded) buffer contents. It is strict about shape so malformed —
// including overflowing — requests get a 400.
func ParseRequestLine(buf []byte) (Request, error) {
	text := string(buf)
	nl := strings.IndexByte(text, '\n')
	if nl < 0 {
		return Request{}, fmt.Errorf("httpd: request line missing terminator")
	}
	line := strings.TrimRight(text[:nl], "\r")
	parts := strings.Split(line, " ")
	if len(parts) != 3 {
		return Request{}, fmt.Errorf("httpd: malformed request line %q", line)
	}
	req := Request{Method: parts[0], URI: parts[1], Version: parts[2]}
	if req.Method == "" || !strings.HasPrefix(req.URI, "/") {
		return Request{}, fmt.Errorf("httpd: malformed request line %q", line)
	}
	if !strings.HasPrefix(req.Version, "HTTP/") {
		return Request{}, fmt.Errorf("httpd: bad version %q", req.Version)
	}
	return req, nil
}

// Status texts for the codes the server emits.
var statusText = map[int]string{
	200: "OK",
	400: "Bad Request",
	403: "Forbidden",
	404: "Not Found",
	405: "Method Not Allowed",
	500: "Internal Server Error",
}

// ContentTypeFor guesses a Content-Type from the URI suffix.
func ContentTypeFor(uri string) string {
	switch {
	case strings.HasSuffix(uri, ".html"), strings.HasSuffix(uri, "/"):
		return "text/html"
	case strings.HasSuffix(uri, ".css"):
		return "text/css"
	case strings.HasSuffix(uri, ".gif"):
		return "image/gif"
	default:
		return "application/octet-stream"
	}
}

// FormatResponse renders a complete HTTP response.
func FormatResponse(code int, contentType string, body []byte) string {
	text, ok := statusText[code]
	if !ok {
		text = "Unknown"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.0 %d %s\r\n", code, text)
	fmt.Fprintf(&b, "Server: nvariant-httpd/1.0\r\n")
	fmt.Fprintf(&b, "Content-Type: %s\r\n", contentType)
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(body))
	b.WriteString("\r\n")
	b.Write(body)
	return b.String()
}

// ErrorBody renders a small HTML error page.
func ErrorBody(code int) []byte {
	return []byte(fmt.Sprintf("<html><body><h1>%d %s</h1></body></html>\n", code, statusText[code]))
}

// ParseStatus extracts the status code from a raw HTTP response.
func ParseStatus(raw []byte) (int, error) {
	text := string(raw)
	nl := strings.IndexByte(text, '\n')
	if nl < 0 {
		return 0, fmt.Errorf("httpd: response missing status line")
	}
	parts := strings.Split(strings.TrimRight(text[:nl], "\r"), " ")
	if len(parts) < 2 {
		return 0, fmt.Errorf("httpd: malformed status line %q", text[:nl])
	}
	var code int
	if _, err := fmt.Sscanf(parts[1], "%d", &code); err != nil {
		return 0, fmt.Errorf("httpd: bad status %q: %w", parts[1], err)
	}
	return code, nil
}

// Body extracts the response body (bytes after the blank line).
func Body(raw []byte) []byte {
	if i := strings.Index(string(raw), "\r\n\r\n"); i >= 0 {
		return raw[i+4:]
	}
	return nil
}
