package httpd

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Request is a parsed HTTP request line.
type Request struct {
	// Method is the HTTP method (only GET is served).
	Method string
	// URI is the request path.
	URI string
	// Version is the HTTP version token.
	Version string
}

// ParseRequestLine parses the first line of an HTTP request from the
// (bounded) buffer contents. It is strict about shape so malformed —
// including overflowing — requests get a 400.
func ParseRequestLine(buf []byte) (Request, error) {
	text := string(buf)
	nl := strings.IndexByte(text, '\n')
	if nl < 0 {
		return Request{}, fmt.Errorf("httpd: request line missing terminator")
	}
	line := strings.TrimRight(text[:nl], "\r")
	// Control bytes have no place in a request line; accepting them
	// would let tokens like a bare CR pose as a method (fuzz-found).
	for i := 0; i < len(line); i++ {
		if line[i] < 0x20 || line[i] == 0x7F {
			return Request{}, fmt.Errorf("httpd: control byte in request line %q", line)
		}
	}
	parts := strings.Split(line, " ")
	if len(parts) != 3 {
		return Request{}, fmt.Errorf("httpd: malformed request line %q", line)
	}
	req := Request{Method: parts[0], URI: parts[1], Version: parts[2]}
	if req.Method == "" || !strings.HasPrefix(req.URI, "/") {
		return Request{}, fmt.Errorf("httpd: malformed request line %q", line)
	}
	if !strings.HasPrefix(req.Version, "HTTP/") {
		return Request{}, fmt.Errorf("httpd: bad version %q", req.Version)
	}
	return req, nil
}

// Status texts for the codes the server emits.
var statusText = map[int]string{
	200: "OK",
	400: "Bad Request",
	403: "Forbidden",
	404: "Not Found",
	405: "Method Not Allowed",
	500: "Internal Server Error",
}

// ContentTypeFor guesses a Content-Type from the URI suffix.
func ContentTypeFor(uri string) string {
	switch {
	case strings.HasSuffix(uri, ".html"), strings.HasSuffix(uri, "/"):
		return "text/html"
	case strings.HasSuffix(uri, ".css"):
		return "text/css"
	case strings.HasSuffix(uri, ".gif"):
		return "image/gif"
	default:
		return "application/octet-stream"
	}
}

// AppendResponse appends a complete HTTP response to dst and returns
// the extended slice — the allocation-free form the server's request
// loop uses with a reused buffer.
func AppendResponse(dst []byte, code int, contentType string, body []byte) []byte {
	text, ok := statusText[code]
	if !ok {
		text = "Unknown"
	}
	dst = append(dst, "HTTP/1.0 "...)
	dst = strconv.AppendInt(dst, int64(code), 10)
	dst = append(dst, ' ')
	dst = append(dst, text...)
	dst = append(dst, "\r\nServer: nvariant-httpd/1.0\r\nContent-Type: "...)
	dst = append(dst, contentType...)
	dst = append(dst, "\r\nContent-Length: "...)
	dst = strconv.AppendInt(dst, int64(len(body)), 10)
	dst = append(dst, "\r\n\r\n"...)
	dst = append(dst, body...)
	return dst
}

// FormatResponse renders a complete HTTP response.
func FormatResponse(code int, contentType string, body []byte) string {
	return string(AppendResponse(nil, code, contentType, body))
}

// ErrorBody renders a small HTML error page.
func ErrorBody(code int) []byte {
	return []byte(fmt.Sprintf("<html><body><h1>%d %s</h1></body></html>\n", code, statusText[code]))
}

// ParseStatus extracts the status code from a raw HTTP response. It
// works on the raw bytes without conversions or scanning helpers —
// clients parse every response, so this is data-plane code.
func ParseStatus(raw []byte) (int, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return 0, fmt.Errorf("httpd: response missing status line")
	}
	line := bytes.TrimRight(raw[:nl], "\r")
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return 0, fmt.Errorf("httpd: malformed status line %q", line)
	}
	rest := line[sp+1:]
	if end := bytes.IndexByte(rest, ' '); end >= 0 {
		rest = rest[:end]
	}
	// Status codes are exactly three digits; bounding the length also
	// keeps the accumulator from overflowing on a hostile response.
	if len(rest) == 0 || len(rest) > 3 {
		return 0, fmt.Errorf("httpd: bad status %q", rest)
	}
	code := 0
	for _, c := range rest {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("httpd: bad status %q", rest)
		}
		code = code*10 + int(c-'0')
	}
	return code, nil
}

// Body extracts the response body (bytes after the blank line).
func Body(raw []byte) []byte {
	if i := bytes.Index(raw, []byte("\r\n\r\n")); i >= 0 {
		return raw[i+4:]
	}
	return nil
}
