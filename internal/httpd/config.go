package httpd

import (
	"fmt"
	"strconv"
	"strings"
)

// ServerConfig is the parsed httpd configuration file (the subset of
// Apache directives the case study needs).
type ServerConfig struct {
	// ListenPort is the TCP port to serve on.
	ListenPort uint16
	// User is the login name the server serves requests as.
	User string
	// Group is the group name the server serves requests as.
	Group string
	// DocumentRoot is the filesystem root for URIs.
	DocumentRoot string
	// ErrorLog is the path of the error log file.
	ErrorLog string
}

// DefaultConfigPath is where the server looks for its configuration.
const DefaultConfigPath = "/etc/httpd.conf"

// DefaultPort is the stock Listen port.
const DefaultPort uint16 = 8080

// DefaultConfigFile renders the stock configuration used by the
// experiments.
func DefaultConfigFile() []byte {
	return ConfigFileForPort(DefaultPort)
}

// ConfigFileForPort renders the stock configuration with an explicit
// Listen port.
func ConfigFileForPort(port uint16) []byte {
	return []byte(fmt.Sprintf(`# mini-httpd configuration (Apache directive subset)
Listen %d
User wwwrun
Group www
DocumentRoot /var/www
ErrorLog /var/log/httpd-error_log
`, port))
}

// ParseConfig parses an Apache-style directive file.
func ParseConfig(data []byte) (ServerConfig, error) {
	cfg := ServerConfig{
		ListenPort:   8080,
		User:         "nobody",
		Group:        "nogroup",
		DocumentRoot: "/var/www",
		ErrorLog:     "/var/log/httpd-error_log",
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return cfg, fmt.Errorf("httpd.conf line %d: %q: want 'Directive value'", i+1, line)
		}
		key, val := fields[0], fields[1]
		switch key {
		case "Listen":
			port, err := strconv.ParseUint(val, 10, 16)
			if err != nil {
				return cfg, fmt.Errorf("httpd.conf line %d: Listen %q: %w", i+1, val, err)
			}
			cfg.ListenPort = uint16(port)
		case "User":
			cfg.User = val
		case "Group":
			cfg.Group = val
		case "DocumentRoot":
			cfg.DocumentRoot = val
		case "ErrorLog":
			cfg.ErrorLog = val
		default:
			return cfg, fmt.Errorf("httpd.conf line %d: unknown directive %q", i+1, key)
		}
	}
	return cfg, nil
}
