// Package chaos is the seeded, fully deterministic fault-injection
// layer of the repository: named fault plans that disturb the simnet
// data plane (message delay, drop, reorder, truncation), the monitor
// kernel's syscall boundary (per-lane variant stalls, slow syscalls,
// crash-and-drain mid-rendezvous), and the fleet (group restart under
// load) — plus the campaign runner (campaign.go) that sweeps the
// expanded attack corpus against every fault plan.
//
// Determinism contract: every fault decision is derived either from a
// seeded rng consulted in the (serialized) order messages enter the
// wire, or from an interleaving-independent hash of (seed, variant,
// syscall, occurrence-count). A campaign driven by one closed-loop
// client therefore draws the identical decision sequence on every run
// with the same seed — which is what makes campaign output
// byte-identical and every chaos finding a replayable regression test.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nvariant/internal/nvkernel"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
)

// Plan is one named fault plan: what is injected at each layer while a
// campaign cell runs. The zero value injects nothing.
type Plan struct {
	// Name identifies the plan in campaign matrices.
	Name string
	// Transparent reports whether the plan's faults must be absorbed
	// without an alarm: network disturbance and bounded stalls are the
	// benign-fault class the paper's design must stay transparent
	// under. Crash plans are not transparent — the monitor is supposed
	// to alarm on a dying variant.
	Transparent bool
	// Net configures data-plane faults (nil = none).
	Net *NetPlan
	// Kernel configures syscall-boundary faults (nil = none).
	Kernel *KernelPlan
	// RestartEvery, in fleet cells, shuts down the oldest pool group
	// after every RestartEvery-th benign request (0 = never) — the
	// group-crash/restart-under-load fault.
	RestartEvery int
}

// NetPlan configures data-plane faults. Rates are per-message
// probabilities; at most one fault strikes a given message (drop wins
// over truncate over reorder over delay).
type NetPlan struct {
	// DropRate severs the connection, losing the message (link
	// failure).
	DropRate float64
	// TruncateRate delivers a prefix of the message.
	TruncateRate float64
	// ReorderRate holds the message back past its successor (bounded
	// by HoldFor).
	ReorderRate float64
	// DelayRate adds Delay of extra one-way latency.
	DelayRate float64
	// Delay is the extra latency of a delayed message.
	Delay time.Duration
	// HoldFor bounds how long a reordered message is parked when no
	// successor arrives (default 1ms).
	HoldFor time.Duration
}

// Injector builds the seeded simnet fault injector for the plan. The
// decision stream is consumed one draw per message in wire order, so
// serialized traffic replays identically from the same seed.
func (p *NetPlan) Injector(seed int64) simnet.FaultInjector {
	return &netInjector{plan: *p, rng: rand.New(rand.NewSource(seed))}
}

type netInjector struct {
	mu   sync.Mutex
	plan NetPlan
	rng  *rand.Rand
}

// FaultFor implements simnet.FaultInjector.
func (i *netInjector) FaultFor(size int) simnet.Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	r := i.rng.Float64()
	p := &i.plan
	switch {
	case r < p.DropRate:
		return simnet.Fault{Drop: true}
	case r < p.DropRate+p.TruncateRate:
		if size < 2 {
			return simnet.Fault{}
		}
		return simnet.Fault{TruncateTo: 1 + i.rng.Intn(size-1)}
	case r < p.DropRate+p.TruncateRate+p.ReorderRate:
		hold := p.HoldFor
		if hold <= 0 {
			hold = time.Millisecond
		}
		return simnet.Fault{Hold: hold}
	case r < p.DropRate+p.TruncateRate+p.ReorderRate+p.DelayRate:
		return simnet.Fault{Delay: p.Delay}
	default:
		return simnet.Fault{}
	}
}

// KernelPlan configures syscall-boundary faults.
type KernelPlan struct {
	// StallRate is the per-syscall probability that the issuing
	// variant sleeps Stall before reaching the rendezvous — the
	// slow-syscall / lane-stall fault. Transparent while Stall stays
	// well under the rendezvous timeout.
	StallRate float64
	// Stall is the injected stall duration.
	Stall time.Duration
	// CrashVariant, when ≥ 0, crashes that variant at its CrashAfter-th
	// issue of CrashCall (counted per variant across all worker lanes):
	// the variant dies before the rendezvous, and the monitor drains the
	// group — the crash-and-drain fault.
	CrashVariant int
	// CrashCall is the syscall kind the crash triggers on.
	CrashCall sys.Num
	// CrashAfter is the occurrence count that triggers the crash
	// (1 = the first CrashCall).
	CrashAfter int
	// StallVariant, when StallAfter > 0, hard-stalls that variant for
	// Stall at its StallAfter-th issue of StallCall (same group-wide
	// occurrence counting as the crash trigger). Unlike StallRate this
	// is a single deterministic stall sized to blow the rendezvous
	// deadline — the stall-fault a quorum must evict.
	StallVariant int
	// StallCall is the syscall kind the deterministic stall triggers on.
	StallCall sys.Num
	// StallAfter is the occurrence count that triggers the stall
	// (0 = disabled).
	StallAfter int
}

// Hook builds the seeded kernel fault hook for the plan. Stall
// decisions hash (seed, variant, syscall, occurrence) — independent of
// goroutine interleaving — and the crash trigger counts occurrences of
// one syscall kind group-wide per variant, so the trigger point is a
// property of the traffic, not of lane scheduling.
func (p *KernelPlan) Hook(seed int64) nvkernel.FaultHook {
	return &kernelHook{plan: *p, seed: uint64(seed), counts: make(map[countKey]uint64)}
}

type countKey struct {
	variant int
	num     sys.Num
}

type kernelHook struct {
	plan   KernelPlan
	seed   uint64
	mu     sync.Mutex
	counts map[countKey]uint64
}

// PreSyscall implements nvkernel.FaultHook.
func (h *kernelHook) PreSyscall(worker, variant int, num sys.Num) (time.Duration, bool) {
	h.mu.Lock()
	k := countKey{variant, num}
	h.counts[k]++
	c := h.counts[k]
	h.mu.Unlock()
	p := &h.plan
	if p.CrashAfter > 0 && variant == p.CrashVariant && num == p.CrashCall && c == uint64(p.CrashAfter) {
		return 0, true
	}
	if p.StallAfter > 0 && variant == p.StallVariant && num == p.StallCall && c == uint64(p.StallAfter) {
		return p.Stall, false
	}
	if p.StallRate > 0 {
		x := mix64(h.seed ^ mix64(uint64(variant)<<32|uint64(num)) ^ c)
		if unit(x) < p.StallRate {
			return p.Stall, false
		}
	}
	return 0, false
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality hash used
// to derive interleaving-independent per-occurrence decisions.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Plans returns the standard campaign fault-plan set. The transparent
// plans are the benign-fault class the system must absorb with zero
// false alarms; variant-crash is the detected-fault class (the monitor
// must alarm); group-restart exercises fleet recovery under load.
func Plans() []Plan {
	return []Plan{
		{Name: "none", Transparent: true},
		{Name: "net-delay", Transparent: true,
			Net: &NetPlan{DelayRate: 0.30, Delay: 200 * time.Microsecond}},
		{Name: "net-drop", Transparent: true,
			Net: &NetPlan{DropRate: 0.05}},
		{Name: "net-reorder", Transparent: true,
			Net: &NetPlan{ReorderRate: 0.25, HoldFor: time.Millisecond}},
		{Name: "net-truncate", Transparent: true,
			Net: &NetPlan{TruncateRate: 0.10}},
		{Name: "net-mixed", Transparent: true,
			Net: &NetPlan{DropRate: 0.03, TruncateRate: 0.05, ReorderRate: 0.10, DelayRate: 0.20, Delay: 100 * time.Microsecond}},
		{Name: "slow-syscalls", Transparent: true,
			Kernel: &KernelPlan{StallRate: 0.50, Stall: 50 * time.Microsecond}},
		{Name: "lane-stall", Transparent: true,
			Kernel: &KernelPlan{StallRate: 0.05, Stall: 2 * time.Millisecond}},
		{Name: "variant-crash", Transparent: false,
			Kernel: &KernelPlan{CrashVariant: 1, CrashCall: sys.Recv, CrashAfter: 3}},
		{Name: "group-restart", Transparent: true, RestartEvery: 4},
	}
}

// PlanByName returns the standard plan with the given name.
func PlanByName(name string) (Plan, error) {
	for _, p := range Plans() {
		if p.Name == name {
			return p, nil
		}
	}
	return Plan{}, fmt.Errorf("chaos: unknown fault plan %q", name)
}

// TransparentPlans returns the standard plans whose faults the system
// must absorb without an alarm — the fault-only campaign's set.
func TransparentPlans() []Plan {
	var out []Plan
	for _, p := range Plans() {
		if p.Transparent {
			out = append(out, p)
		}
	}
	return out
}
