package chaos

// The campaign runner: sweep the expanded attack corpus against every
// fault plan across group size N, worker-lane count W, and variation
// stack, from one seed, and emit a deterministic JSON matrix of
// detection / false-alarm / throughput-retained results.
//
// Byte-identical replay is a hard requirement (a chaos finding must be
// a replayable regression test), so the matrix records only values
// that are functions of the seed: request outcome counts from the
// serialized benign phases, detection and leak booleans, and settled
// fleet counters. Wall-clock quantities never enter the output.

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/fleet"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/nvkernel"
	"nvariant/internal/obs"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// Variation-stack names a campaign sweeps.
const (
	// StackFull is the paper's §4 deployment: UID variation plus
	// address partitioning plus unshared files (configuration 4).
	StackFull = "uid+addr+files"
	// StackBaseline is the diversity baseline without data
	// reexpression (configuration 3): it shows what the UID layer
	// buys — forged-UID attacks leak here.
	StackBaseline = "addr+files"
)

// Config sizes a campaign: the runner crosses Attacks × Faults ×
// Stacks × Ns × Workers into one group cell each.
type Config struct {
	// Seed drives every decision in the campaign; the same seed
	// reproduces byte-identical output.
	Seed int64
	// Requests is the serialized benign-request count per cell.
	Requests int
	// TriggerBudget bounds first-use trigger probes per attack payload
	// (scaled by W; the corrupted lane is hit by accept contention).
	TriggerBudget int
	// Ns lists the group sizes to sweep.
	Ns []int
	// Workers lists the prefork worker-lane counts to sweep.
	Workers []int
	// Stacks lists the variation stacks to sweep (StackFull,
	// StackBaseline).
	Stacks []string
	// Attacks lists the scripted scenarios; a Scenario with a nil
	// Build (name "none") is the benign cell measuring pure fault
	// transparency.
	Attacks []attack.Scenario
	// Faults lists the fault plans. Plans whose only effect is
	// RestartEvery act as "none" in group cells (restarts are a fleet
	// fault).
	Faults []Plan
	// ByteSweep includes the word-level exhaustive mask-byte brute
	// force per N.
	ByteSweep bool
	// Fleet includes the fleet section: restart-under-load and probe
	// recovery per fault plan (kernel-crash plans are skipped there —
	// their trigger points are not deterministic across a pool).
	Fleet bool
	// FleetGroups is the fleet section's pool size.
	FleetGroups int
	// FleetProbes is the fleet section's forge-probe count.
	FleetProbes int
	// Quorum, when K ≥ 1, adds the quorum section: the crash and
	// deadline-stall fault plans (excluded from the headline detection
	// rate in unanimous mode) run as quorum-survival cells against
	// K-of-(K+1) groups — gating availability across the fault, the
	// eviction record, and post-fault divergence detection among the
	// live variants — plus quorum-lost cells at N = K and, when Fleet
	// is set, fleet cells gating eviction/respawn accounting.
	Quorum int
	// Obs, when set, instruments every cell's kernel, network, server,
	// and fleet on the registry. Metrics record wall-clock data outside
	// the deterministic matrix: output JSON is byte-identical with and
	// without Obs (TestCampaignInstrumentationPreservesJSON).
	Obs *obs.Registry
}

// NoAttack is the benign scenario: a cell with no attacker, measuring
// fault transparency and the false-alarm side.
func NoAttack() attack.Scenario { return attack.Scenario{Name: "none"} }

// DefaultConfig is the standard campaign at the given seed: the full
// corpus and fault-plan crossing over N ∈ {2,3}, W ∈ {1,2}, both
// stacks, plus byte sweeps and the fleet section.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Requests:      10,
		TriggerBudget: 16,
		Ns:            []int{2, 3},
		Workers:       []int{1, 2},
		Stacks:        []string{StackFull, StackBaseline},
		Attacks:       append([]attack.Scenario{NoAttack()}, attack.Corpus()...),
		Faults: []Plan{
			mustPlan("none"), mustPlan("net-mixed"), mustPlan("slow-syscalls"),
			mustPlan("variant-crash"), mustPlan("group-restart"),
		},
		ByteSweep:   true,
		Fleet:       true,
		FleetGroups: 2,
		FleetProbes: 2,
		Quorum:      2,
	}
}

// FaultOnlyConfig is the no-attack transparency campaign: every
// transparent fault plan against healthy full-stack groups at
// N ∈ {2,3,5}, W ∈ {1,4}. Its matrix must show zero alarms.
func FaultOnlyConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Requests:      10,
		TriggerBudget: 16,
		Ns:            []int{2, 3, 5},
		Workers:       []int{1, 4},
		Stacks:        []string{StackFull},
		Attacks:       []attack.Scenario{NoAttack()},
		Faults:        TransparentPlans(),
	}
}

// QuorumConfig is the dedicated quorum campaign at the given seed: the
// crash and stall survival/quorum-lost cells at K = 2 plus the fleet
// eviction/respawn cells, with no attack × fault crossing. Its matrix
// must show the K=2-of-3 groups surviving one crash and one stall at
// 100% availability, detecting the divergence probe among the live
// variants, and zero false alarms — byte-identical per seed.
func QuorumConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Requests:    8,
		Quorum:      2,
		Fleet:       true,
		FleetGroups: 2,
	}
}

func mustPlan(name string) Plan {
	p, err := PlanByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Cell is one campaign matrix entry: one attack scenario against one
// group deployment under one fault plan.
type Cell struct {
	Attack  string `json:"attack"`
	Fault   string `json:"fault"`
	Stack   string `json:"stack"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`

	// ExpectDetect: a correctly deployed UID stack must alarm on this
	// scenario.
	ExpectDetect bool `json:"expect_detect"`
	// ExpectFaultAlarm: the fault plan itself must be detected
	// (crash-class faults).
	ExpectFaultAlarm bool `json:"expect_fault_alarm"`

	// BenignOK / BenignErrs count the serialized benign phase's
	// request outcomes (the deterministic throughput measure).
	BenignOK   int `json:"benign_ok"`
	BenignErrs int `json:"benign_errs"`

	Detected    bool   `json:"detected"`
	AlarmReason string `json:"alarm_reason,omitempty"`
	Leaked      bool   `json:"leaked"`

	MissedDetection bool `json:"missed_detection"`
	FalseAlarm      bool `json:"false_alarm"`
}

// ByteSweepRow is one word-level exhaustive brute-force result.
type ByteSweepRow struct {
	Name      string `json:"name"`
	N         int    `json:"n"`
	Trials    int    `json:"trials"`
	Detected  int    `json:"detected"`
	Corrupted int    `json:"corrupted"`
	Harmless  int    `json:"harmless"`
}

// FleetCell is one fleet-section entry: a pool under one fault plan
// with deterministic restarts and forge probes.
type FleetCell struct {
	Fault    string `json:"fault"`
	Groups   int    `json:"groups"`
	Restarts int    `json:"restarts"`
	Probes   int    `json:"probes"`

	BenignOK   int `json:"benign_ok"`
	BenignErrs int `json:"benign_errs"`

	Detections int  `json:"detections"`
	Spawned    int  `json:"spawned"`
	Replaced   int  `json:"replaced"`
	Leaked     bool `json:"leaked"`

	MissedDetection bool `json:"missed_detection"`
	FalseAlarm      bool `json:"false_alarm"`
}

// FaultSummary aggregates one fault plan across all its group cells.
type FaultSummary struct {
	Fault      string `json:"fault"`
	Cells      int    `json:"cells"`
	BenignOK   int    `json:"benign_ok"`
	BenignErrs int    `json:"benign_errs"`
	// ThroughputRetained is this plan's benign-request completions
	// over the "none" plan's — the deterministic availability ratio.
	ThroughputRetained float64 `json:"throughput_retained"`
	FalseAlarms        int     `json:"false_alarms"`
}

// Summary is the campaign headline. The quorum probe detections fold
// into ExpectedDetections / Detections: in quorum mode a crash-plan
// cell *does* count toward the headline rate again — what it must
// detect is the divergence probe among the live variants, not the
// fault itself. The Quorum* fields are zero (and omitted from JSON)
// when the campaign has no quorum section.
type Summary struct {
	Cells              int            `json:"cells"`
	ExpectedDetections int            `json:"expected_detections"`
	Detections         int            `json:"detections"`
	MissedDetections   int            `json:"missed_detections"`
	FalseAlarms        int            `json:"false_alarms"`
	DefendedLeaks      int            `json:"defended_leaks"`
	UndefendedLeaks    int            `json:"undefended_leaks"`
	DetectionRate      float64        `json:"detection_rate"`
	QuorumCells        int            `json:"quorum_cells,omitempty"`
	QuorumSurvived     int            `json:"quorum_survived,omitempty"`
	QuorumEvictions    int            `json:"quorum_evictions,omitempty"`
	QuorumRespawns     int            `json:"quorum_respawns,omitempty"`
	PerFault           []FaultSummary `json:"per_fault"`
}

// Result is the campaign's full matrix. Marshalling it (JSON) is
// byte-identical across runs with the same Config.
type Result struct {
	Seed        int64             `json:"seed"`
	Requests    int               `json:"requests"`
	Cells       []Cell            `json:"cells"`
	ByteSweeps  []ByteSweepRow    `json:"byte_sweeps,omitempty"`
	Fleet       []FleetCell       `json:"fleet,omitempty"`
	Quorum      []QuorumCell      `json:"quorum,omitempty"`
	QuorumFleet []QuorumFleetCell `json:"quorum_fleet,omitempty"`
	Summary     Summary           `json:"summary"`
}

// JSON renders the matrix deterministically.
func (r *Result) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Check returns the list of contract violations in the matrix: missed
// detections, false alarms, leaks from defended (UID-stack) cells,
// undetected word-level corruptions, and fleet misses. An empty list
// is the passing campaign.
func (r *Result) Check() []string {
	var v []string
	for _, c := range r.Cells {
		id := fmt.Sprintf("cell %s/%s/%s n=%d w=%d", c.Attack, c.Fault, c.Stack, c.N, c.Workers)
		if c.MissedDetection {
			v = append(v, id+": missed detection")
		}
		if c.FalseAlarm {
			v = append(v, fmt.Sprintf("%s: false alarm (%s)", id, c.AlarmReason))
		}
		if c.Leaked && c.Stack == StackFull {
			v = append(v, id+": secret leaked from a defended group")
		}
	}
	for _, b := range r.ByteSweeps {
		if b.Corrupted > 0 {
			v = append(v, fmt.Sprintf("byte-sweep %s n=%d: %d undetected corruptions", b.Name, b.N, b.Corrupted))
		}
	}
	for _, f := range r.Fleet {
		id := fmt.Sprintf("fleet %s", f.Fault)
		if f.MissedDetection {
			v = append(v, id+": missed probe detection")
		}
		if f.FalseAlarm {
			v = append(v, id+": false alarm")
		}
		if f.Leaked {
			v = append(v, id+": secret leaked through the dispatcher")
		}
	}
	for _, q := range r.Quorum {
		id := fmt.Sprintf("quorum %s/%s n=%d k=%d", q.Scenario, q.Fault, q.N, q.K)
		switch {
		case q.ExpectSurvive && !q.Survived:
			v = append(v, fmt.Sprintf("%s: group did not survive the fault (%d/%d benign ok, %d evicted)",
				id, q.BenignOK, q.BenignOK+q.BenignErrs, q.Evicted))
		case q.ExpectSurvive && q.Evicted != 1:
			v = append(v, fmt.Sprintf("%s: %d evictions, want exactly 1", id, q.Evicted))
		case !q.ExpectSurvive && q.AlarmReason != nvkernel.ReasonQuorumLost.String():
			v = append(v, fmt.Sprintf("%s: alarm %q, want quorum-lost", id, q.AlarmReason))
		}
		if q.MissedDetection && q.ExpectSurvive {
			v = append(v, id+": divergence probe not detected in degraded mode")
		}
		if q.FalseAlarm {
			v = append(v, fmt.Sprintf("%s: false alarm (%s)", id, q.AlarmReason))
		}
		if q.Leaked {
			v = append(v, id+": secret leaked from a degraded group")
		}
	}
	for _, q := range r.QuorumFleet {
		id := fmt.Sprintf("quorum-fleet %s", q.Fault)
		if q.BenignErrs > 0 {
			v = append(v, fmt.Sprintf("%s: %d benign errors across the fault, want full availability", id, q.BenignErrs))
		}
		if q.Evictions < 1 || q.Respawned < 1 || q.MissedRespawn {
			v = append(v, fmt.Sprintf("%s: evicted %d / respawned %d, want >= 1 each", id, q.Evictions, q.Respawned))
		}
		if q.DegradedEnd != 0 {
			v = append(v, fmt.Sprintf("%s: %d groups still degraded after settle", id, q.DegradedEnd))
		}
		if q.FalseAlarm {
			v = append(v, fmt.Sprintf("%s: fault counted as %d detections", id, q.Detections))
		}
	}
	return v
}

// benignMix is the serialized benign-phase request mix.
var benignMix = []string{"/index.html", "/page1.html", "/styles.css"}

// Run executes the campaign and returns the matrix.
func Run(cfg Config) (*Result, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 10
	}
	if cfg.TriggerBudget <= 0 {
		cfg.TriggerBudget = 16
	}
	res := &Result{Seed: cfg.Seed, Requests: cfg.Requests}
	for _, sc := range cfg.Attacks {
		for _, plan := range cfg.Faults {
			for _, stack := range cfg.Stacks {
				for _, n := range cfg.Ns {
					for _, w := range cfg.Workers {
						cell, err := runGroupCell(cfg, sc, plan, stack, n, w)
						if err != nil {
							return nil, fmt.Errorf("chaos: cell %s/%s/%s n=%d w=%d: %w",
								sc.Name, plan.Name, stack, n, w, err)
						}
						res.Cells = append(res.Cells, cell)
					}
				}
			}
		}
	}
	if cfg.ByteSweep {
		rows, err := runByteSweeps(cfg)
		if err != nil {
			return nil, err
		}
		res.ByteSweeps = rows
	}
	if cfg.Fleet {
		for _, plan := range cfg.Faults {
			if plan.Kernel != nil && plan.Kernel.CrashAfter > 0 {
				// A crash trigger counts syscalls across the whole pool,
				// where replacement startups interleave with serving —
				// the trigger point would not replay. Group cells cover
				// crash-and-drain.
				continue
			}
			fc, err := runFleetCell(cfg, plan)
			if err != nil {
				return nil, fmt.Errorf("chaos: fleet cell %s: %w", plan.Name, err)
			}
			res.Fleet = append(res.Fleet, fc)
		}
	}
	if cfg.Quorum > 0 {
		cells, err := runQuorumCells(cfg)
		if err != nil {
			return nil, err
		}
		res.Quorum = cells
		if cfg.Fleet {
			fcs, err := runQuorumFleetCells(cfg)
			if err != nil {
				return nil, err
			}
			res.QuorumFleet = fcs
		}
	}
	res.Summary = summarize(cfg, res)
	return res, nil
}

// CellSeed derives the deterministic seed of one campaign cell from
// the campaign seed and the cell's labels: FNV-1a over the labels with
// 0x1f separators, mixed with the seed through splitmix64. The result
// is independent of sweep order, so narrowing a campaign replays the
// surviving cells exactly. The mesh's unified campaign shares this
// derivation so its narrowed -chaos reruns hold the same property.
func CellSeed(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0x1f})
	}
	return int64(mix64(uint64(seed) ^ h.Sum64()))
}

// cellSeed is the package-internal shorthand for CellSeed.
func cellSeed(seed int64, parts ...string) int64 { return CellSeed(seed, parts...) }

// buildGroupSpec assembles the harness spec of one cell's deployment.
func buildGroupSpec(stack string, n, w int, seed int64, kopts []nvkernel.Option) (harness.GroupSpec, error) {
	gs := harness.GroupSpec{Server: httpd.DefaultOptions(), Workers: w, Kernel: kopts}
	switch stack {
	case StackFull:
		gs.Config = harness.Config4UIDVariation
		gs.Diversity = reexpress.Generate(seed, n,
			reexpress.LayerUID, reexpress.LayerAddressPartition, reexpress.LayerUnsharedFiles)
	case StackBaseline:
		gs.Config = harness.Config3AddressSpace
		gs.Diversity = reexpress.UncheckedSpec(n,
			reexpress.AddressPartitionLayer(n),
			reexpress.UnsharedFilesLayer(reexpress.DefaultUnsharedPaths...))
	default:
		return gs, fmt.Errorf("unknown stack %q", stack)
	}
	return gs, nil
}

// runGroupCell runs one attack × fault × deployment cell.
func runGroupCell(cfg Config, sc attack.Scenario, plan Plan, stack string, n, w int) (Cell, error) {
	cell := Cell{
		Attack: sc.Name, Fault: plan.Name, Stack: stack, N: n, Workers: w,
		// Attack detection is only demanded of cells where the attack
		// actually reaches the group: under a crash-class plan the
		// monitor kills the group during the benign phase, so the
		// alarm there certifies crash-and-drain (ExpectFaultAlarm),
		// not the attack — counting it as an attack detection would
		// inflate the headline rate with cells that never exercised
		// the exploit.
		ExpectDetect:     sc.Build != nil && sc.ExpectDetect && stack == StackFull && plan.Transparent,
		ExpectFaultAlarm: !plan.Transparent,
	}
	seed := cellSeed(cfg.Seed, "group", sc.Name, plan.Name, stack, fmt.Sprint(n), fmt.Sprint(w))

	world, err := vos.NewWorld()
	if err != nil {
		return cell, err
	}
	net := simnet.New(0)
	if cfg.Obs != nil {
		net.SetMetrics(simnet.NewMetrics(cfg.Obs))
	}
	if plan.Net != nil {
		net.SetFaultInjector(plan.Net.Injector(seed + 1))
	}
	var kopts []nvkernel.Option
	if plan.Kernel != nil {
		kopts = append(kopts, nvkernel.WithFaultHook(plan.Kernel.Hook(seed+2)))
	}
	if cfg.Obs != nil {
		kopts = append(kopts, nvkernel.WithMetrics(nvkernel.NewMetrics(cfg.Obs)))
	}
	gs, err := buildGroupSpec(stack, n, w, seed+3, kopts)
	if err != nil {
		return cell, err
	}
	if cfg.Obs != nil {
		gs.Server.Metrics = httpd.NewMetrics(cfg.Obs)
	}
	h, err := harness.StartSpecOn(world, net, gs)
	if err != nil {
		return cell, err
	}
	client := h.Client()

	// Serialized benign phase: the deterministic throughput measure.
	// Under a crash plan the group may die mid-phase; the remaining
	// requests fail deterministically (refused dials).
	for r := 0; r < cfg.Requests; r++ {
		code, _, err := client.Get(benignMix[r%len(benignMix)])
		if err == nil && code == 200 {
			cell.BenignOK++
		} else {
			cell.BenignErrs++
		}
	}

	// Attack phase: scripted payloads plus first-use trigger probes.
	// Only booleans leave this phase — probe counts depend on which
	// lane wins accept and are not replayable at W > 1. The adaptive
	// retry rounds exist to outlast a lossy network; against a
	// deployment that cannot detect anyway, one round decides the
	// leak outcome.
	if sc.Build != nil {
		rounds := 1
		if cell.ExpectDetect {
			rounds = 4
		}
		cell.Leaked = driveAttack(client, sc, rand.New(rand.NewSource(seed+4)), w, cfg.TriggerBudget, rounds)
	}

	res, err := h.Stop()
	if err != nil {
		return cell, err
	}
	if res.Alarm != nil {
		cell.Detected = true
		cell.AlarmReason = res.Alarm.Reason.String()
	}
	cell.MissedDetection = (cell.ExpectDetect || cell.ExpectFaultAlarm) && !cell.Detected
	cell.FalseAlarm = cell.Detected && !cell.ExpectDetect && !cell.ExpectFaultAlarm
	return cell, nil
}

// driveAttack plays one scenario: each scripted payload, then trigger
// probes for the corruption's first use. It returns whether the
// protected document ever leaked.
//
// The attacker is adaptive, as a real one would be under a lossy
// network: a dropped or truncated exchange may have destroyed the
// overwrite, so payloads are resent and trigger rounds repeated until
// the group's port refuses — the monitor killed it (detection) — or
// the budget is spent. The terminal alarm state is read from the run
// result afterwards; only booleans leave this phase.
func driveAttack(client *httpd.Client, sc attack.Scenario, rng *rand.Rand, w, budget, rounds int) (leaked bool) {
	payloads := sc.Build(rng)
	if !sc.Trigger {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		for _, payload := range payloads {
			delivered := false
			for try := 0; try < 8 && !delivered; try++ {
				_, err := client.Raw(payload)
				switch {
				case err == nil:
					delivered = true
				case errors.Is(err, simnet.ErrRefused):
					return leaked // group dead: the monitor already fired
				}
				// Otherwise the fault plan severed the exchange — the
				// overwrite may not have landed; resend.
			}
			if !sc.Trigger || !delivered {
				continue
			}
			for t := 0; t < budget*w; t++ {
				if sc.InterleaveBenign && t%2 == 1 {
					// Healthy sibling lanes keep serving mid-corruption.
					if _, _, err := client.Get("/index.html"); errors.Is(err, simnet.ErrRefused) {
						return leaked
					}
					continue
				}
				code, body, err := client.Get("/private/secret.html")
				switch {
				case err == nil && code == 200 && httpd.ContainsSecret(body):
					leaked = true
					return leaked
				case errors.Is(err, simnet.ErrRefused):
					return leaked
				}
			}
		}
	}
	return leaked
}

// byteSweepVictim is the canonical worker UID the word-level brute
// force corrupts (wwwrun, the httpd worker identity in the stock
// world).
const byteSweepVictim = word.Word(30)

// runByteSweeps brute-forces every single-byte overwrite against each
// swept N's generated masks, plus the paper's published pair.
func runByteSweeps(cfg Config) ([]ByteSweepRow, error) {
	pair := reexpress.UIDVariation().Pair
	rows := []ByteSweepRow{{Name: "paper-uid-pair", N: 2}}
	rep, err := attack.ByteSweep([]reexpress.Func{pair.R0, pair.R1}, byteSweepVictim)
	if err != nil {
		return nil, err
	}
	rows[0].Trials, rows[0].Detected, rows[0].Corrupted, rows[0].Harmless =
		rep.Trials, rep.Detected, rep.Corrupted, rep.Harmless
	for _, n := range cfg.Ns {
		spec := reexpress.Generate(cellSeed(cfg.Seed, "bytesweep", fmt.Sprint(n)), n, reexpress.LayerUID)
		rep, err := attack.ByteSweep(spec.UIDFuncs(), byteSweepVictim)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ByteSweepRow{
			Name: "generated-masks", N: n,
			Trials: rep.Trials, Detected: rep.Detected, Corrupted: rep.Corrupted, Harmless: rep.Harmless,
		})
	}
	return rows, nil
}

// runFleetCell runs the fleet section for one fault plan: a pool under
// serialized load with deterministic group restarts, then forge probes
// through the dispatcher.
func runFleetCell(cfg Config, plan Plan) (FleetCell, error) {
	groups := cfg.FleetGroups
	if groups <= 0 {
		groups = 2
	}
	cell := FleetCell{Fault: plan.Name, Groups: groups, Probes: cfg.FleetProbes}
	seed := cellSeed(cfg.Seed, "fleet", plan.Name)

	opts := fleet.Options{
		Groups: groups,
		Config: harness.Config4UIDVariation,
		Server: httpd.DefaultOptions(),
		Seed:   seed,
		Obs:    cfg.Obs,
	}
	if plan.Net != nil {
		opts.Faults = plan.Net.Injector(seed + 1)
	}
	if plan.Kernel != nil {
		opts.Kernel = []nvkernel.Option{nvkernel.WithFaultHook(plan.Kernel.Hook(seed + 2))}
	}
	f, err := fleet.New(opts)
	if err != nil {
		return cell, err
	}
	defer func() { _, _ = f.Stop() }()
	client := f.Client()

	// Benign phase with restart-under-load: after every RestartEvery-th
	// request the oldest group is shut down; the dispatcher must keep
	// serving from the survivors while the replacement boots.
	for r := 0; r < cfg.Requests; r++ {
		if plan.RestartEvery > 0 && r > 0 && r%plan.RestartEvery == 0 {
			if id := f.OldestGroupID(); id >= 0 && f.ShutdownGroup(id) {
				cell.Restarts++
				want := cell.Restarts
				if err := f.Await(func(s fleet.Stats) bool {
					return s.Replaced >= want && len(s.Healthy) >= groups
				}, 15*time.Second); err != nil {
					return cell, err
				}
			}
		}
		code, _, err := client.Get(benignMix[r%len(benignMix)])
		if err == nil && code == 200 {
			cell.BenignOK++
		} else {
			cell.BenignErrs++
		}
	}

	// Probe phase: forged-UID writes through the dispatcher; each must
	// be detected and its group replaced. Only settled counters are
	// recorded — per-probe trigger counts are not replayable.
	rng := rand.New(rand.NewSource(seed + 3))
	for i := 0; i < cfg.FleetProbes; i++ {
		payload := attack.ForgeUIDPayload(word.Word(rng.Uint32()) &^ word.HighBit)
		// Each probe strikes the oldest healthy group *directly* (the
		// attacker-knows-a-backend model): corruption stays confined
		// to one deterministic victim, so the settled detection count
		// is exactly the probe count. Through the dispatcher, a
		// fault-severed exchange would force resends that spray
		// corruption across round-robin-chosen groups — the recovery
		// counters would then depend on alarm-observation timing and
		// the matrix would not replay. The payload and triggers are
		// still adaptive (redelivered until the victim dies): a fault
		// plan must not be able to mask a detection.
		port, ok := oldestGroupPort(f)
		if !ok {
			break
		}
		direct := httpd.NewClient(f.Net(), port)
		detected := false
		for round := 0; round < 8 && !detected; round++ {
			if _, err := direct.Raw(payload); errors.Is(err, simnet.ErrRefused) {
				detected = true // victim already killed by a prior round's trigger
				break
			}
			for t := 0; t < 64 && !detected; t++ {
				code, body, err := direct.Get("/private/secret.html")
				switch {
				case errors.Is(err, simnet.ErrRefused):
					detected = true
				case err == nil && code == 200 && httpd.ContainsSecret(body):
					cell.Leaked = true
				}
			}
		}
		if !detected {
			break
		}
		if err := f.Await(func(s fleet.Stats) bool {
			return s.Detections >= i+1 && s.Replaced >= cell.Restarts+i+1 && len(s.Healthy) >= groups
		}, 15*time.Second); err != nil {
			return cell, err
		}
	}

	stats, err := f.Stop()
	if err != nil {
		return cell, err
	}
	cell.Detections = stats.Detections
	cell.Spawned = stats.Spawned
	cell.Replaced = stats.Replaced
	cell.MissedDetection = cell.Detections < cell.Probes
	cell.FalseAlarm = cell.Detections > cell.Probes
	return cell, nil
}

// oldestGroupPort resolves the port of the longest-lived healthy
// group — the fleet probes' deterministic victim.
func oldestGroupPort(f *fleet.Fleet) (uint16, bool) {
	id := f.OldestGroupID()
	if id < 0 {
		return 0, false
	}
	for _, g := range f.Stats().Healthy {
		if g.ID == id {
			return g.Port, true
		}
	}
	return 0, false
}

// summarize computes the campaign headline from the matrix.
func summarize(cfg Config, r *Result) Summary {
	s := Summary{Cells: len(r.Cells)}
	perFault := make(map[string]*FaultSummary)
	var order []string
	for _, p := range cfg.Faults {
		fs := &FaultSummary{Fault: p.Name}
		perFault[p.Name] = fs
		order = append(order, p.Name)
	}
	for _, c := range r.Cells {
		if c.ExpectDetect {
			s.ExpectedDetections++
			if c.Detected {
				s.Detections++
			}
		}
		if c.MissedDetection {
			s.MissedDetections++
		}
		if c.FalseAlarm {
			s.FalseAlarms++
		}
		if c.Leaked {
			if c.Stack == StackFull {
				s.DefendedLeaks++
			} else {
				s.UndefendedLeaks++
			}
		}
		if fs := perFault[c.Fault]; fs != nil {
			fs.Cells++
			fs.BenignOK += c.BenignOK
			fs.BenignErrs += c.BenignErrs
			if c.FalseAlarm {
				fs.FalseAlarms++
			}
		}
	}
	for _, q := range r.Quorum {
		s.QuorumCells++
		if q.Survived {
			s.QuorumSurvived++
		}
		s.QuorumEvictions += q.Evicted
		if q.ExpectSurvive {
			// The re-included crash/stall cells count toward the headline
			// rate through their divergence probes.
			s.ExpectedDetections++
			if q.ProbeDetected {
				s.Detections++
			}
		}
		if q.MissedDetection {
			s.MissedDetections++
		}
		if q.FalseAlarm {
			s.FalseAlarms++
		}
	}
	for _, q := range r.QuorumFleet {
		s.QuorumCells++
		s.QuorumEvictions += q.Evictions
		s.QuorumRespawns += q.Respawned
		if q.FalseAlarm {
			s.FalseAlarms++
		}
	}
	if s.ExpectedDetections > 0 {
		s.DetectionRate = float64(s.Detections) / float64(s.ExpectedDetections)
	}
	baselineOK := 0
	if fs, ok := perFault["none"]; ok {
		baselineOK = fs.BenignOK
	}
	for _, name := range order {
		fs := perFault[name]
		if baselineOK > 0 {
			fs.ThroughputRetained = float64(fs.BenignOK) / float64(baselineOK)
		}
		s.PerFault = append(s.PerFault, *fs)
	}
	return s
}

// Fprint renders the matrix headline and per-fault table for humans;
// the JSON matrix is the machine artifact.
func (r *Result) Fprint(w io.Writer) {
	s := r.Summary
	fmt.Fprintf(w, "Chaos campaign (seed %d): %d group cells, %d fleet cells, %d byte sweeps\n",
		r.Seed, len(r.Cells), len(r.Fleet), len(r.ByteSweeps))
	fmt.Fprintf(w, "  detection: %d/%d expected (rate %.2f); missed %d; false alarms %d\n",
		s.Detections, s.ExpectedDetections, s.DetectionRate, s.MissedDetections, s.FalseAlarms)
	fmt.Fprintf(w, "  leaks: %d defended (must be 0), %d undefended-baseline (expected)\n",
		s.DefendedLeaks, s.UndefendedLeaks)
	fmt.Fprintf(w, "  %-14s %6s %10s %10s %12s %s\n", "fault", "cells", "benign-ok", "errors", "tput-ratio", "false-alarms")
	for _, fs := range s.PerFault {
		fmt.Fprintf(w, "  %-14s %6d %10d %10d %12.3f %d\n",
			fs.Fault, fs.Cells, fs.BenignOK, fs.BenignErrs, fs.ThroughputRetained, fs.FalseAlarms)
	}
	for _, b := range r.ByteSweeps {
		fmt.Fprintf(w, "  byte-sweep %-16s n=%d: %d/%d detected, %d corrupted, %d harmless\n",
			b.Name, b.N, b.Detected, b.Trials, b.Corrupted, b.Harmless)
	}
	for _, fc := range r.Fleet {
		fmt.Fprintf(w, "  fleet %-14s: %d ok / %d errs, %d restarts, %d/%d probes detected, spawned %d, replaced %d, leaked %v\n",
			fc.Fault, fc.BenignOK, fc.BenignErrs, fc.Restarts, fc.Detections, fc.Probes, fc.Spawned, fc.Replaced, fc.Leaked)
	}
	for _, q := range r.Quorum {
		fmt.Fprintf(w, "  quorum %-12s %-14s n=%d k=%d: %d ok / %d errs, survived %v, evicted %d (%s), probe-detected %v (%s)\n",
			q.Scenario, q.Fault, q.N, q.K, q.BenignOK, q.BenignErrs, q.Survived, q.Evicted, q.EvictedKind, q.ProbeDetected, q.AlarmReason)
	}
	for _, q := range r.QuorumFleet {
		fmt.Fprintf(w, "  quorum-fleet %-14s n=%d k=%d: %d ok / %d errs, evicted %d, respawned %d, degraded-end %d, detections %d\n",
			q.Fault, q.N, q.K, q.BenignOK, q.BenignErrs, q.Evictions, q.Respawned, q.DegradedEnd, q.Detections)
	}
	if v := r.Check(); len(v) > 0 {
		fmt.Fprintf(w, "  VIOLATIONS (%d):\n", len(v))
		for _, line := range v {
			fmt.Fprintf(w, "    %s\n", line)
		}
	} else {
		fmt.Fprintln(w, "  contract: all corpus attacks detected, zero false alarms, zero defended leaks")
	}
}
