package chaos

// The quorum campaign section: PR 5 excluded crash-class fault plans
// from the headline detection rate because an unanimous group dies with
// its faulted variant — the alarm certified crash-and-drain, not the
// attack. K-of-N quorum rendezvous changes the contract: a variant
// fault with enough live survivors is *survived* (evicted + degraded
// mode), so crash and stall plans come back as quorum-survival cells
// whose gates are availability (zero benign errors), exactly one
// eviction of the right kind, and — the detection half — a divergence
// probe among the live variants that must still raise the usual alarm.
// Below-quorum cells assert the other edge: losing the quorum kills
// the group with a quorum-lost alarm, never a lone variant serving.

import (
	"errors"
	"fmt"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/fleet"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/nvkernel"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
)

// quorumTimeout is the rendezvous deadline of quorum cells: short
// enough that quorumStall (the injected hard stall) reliably blows it.
const (
	quorumTimeout = 100 * time.Millisecond
	quorumStall   = 500 * time.Millisecond
)

// quorumPlans returns the fault plans of the quorum section: the
// deterministic crash and a deterministic deadline-blowing stall, both
// striking variant 1 so the same plan works at every swept N ≥ 2.
// These are deliberately not part of Plans(): outside quorum mode a
// crash plan is the detected-fault class, and the hard stall would
// read as a missed deadline, not a transparent fault.
func quorumPlans() []Plan {
	return []Plan{
		{Name: "variant-crash",
			Kernel: &KernelPlan{CrashVariant: 1, CrashCall: sys.Recv, CrashAfter: 3}},
		{Name: "variant-stall",
			Kernel: &KernelPlan{StallVariant: 1, StallCall: sys.Recv, StallAfter: 3, Stall: quorumStall}},
	}
}

// QuorumCell is one quorum-section matrix entry: one deterministic
// variant fault against one K-of-N group, then (in surviving cells) a
// divergence probe among the live variants.
type QuorumCell struct {
	Scenario string `json:"scenario"`
	Fault    string `json:"fault"`
	N        int    `json:"n"`
	K        int    `json:"k"`
	Workers  int    `json:"workers"`

	// ExpectSurvive: the fault leaves ≥ K live variants, so the group
	// must evict and keep serving; otherwise it must die quorum-lost.
	ExpectSurvive bool `json:"expect_survive"`

	BenignOK   int `json:"benign_ok"`
	BenignErrs int `json:"benign_errs"`

	// Survived: the whole benign phase was served (100% availability
	// across the fault) and the fault is on record as an eviction.
	Survived    bool   `json:"survived"`
	Evicted     int    `json:"evicted"`
	EvictedKind string `json:"evicted_kind,omitempty"`

	// ProbeDetected: the post-fault divergence probe among the live
	// variants raised an alarm — the detection contract in degraded
	// mode.
	ProbeDetected bool   `json:"probe_detected"`
	AlarmReason   string `json:"alarm_reason,omitempty"`
	Leaked        bool   `json:"leaked"`

	MissedDetection bool `json:"missed_detection"`
	FalseAlarm      bool `json:"false_alarm"`
}

// QuorumFleetCell is the fleet half: a pool of K-of-N groups absorbing
// one deterministic variant fault. Gates: full availability, the
// eviction surfaced in fleet stats, the degraded group respawned at
// full width in the background, and zero detections (a fault is not an
// attack).
type QuorumFleetCell struct {
	Fault  string `json:"fault"`
	Groups int    `json:"groups"`
	N      int    `json:"n"`
	K      int    `json:"k"`

	BenignOK   int `json:"benign_ok"`
	BenignErrs int `json:"benign_errs"`

	Evictions   int `json:"evictions"`
	Respawned   int `json:"respawned"`
	DegradedEnd int `json:"degraded_end"`
	Detections  int `json:"detections"`

	MissedRespawn bool `json:"missed_respawn"`
	FalseAlarm    bool `json:"false_alarm"`
}

// runQuorumCells sweeps the quorum section's group cells: each fault
// plan at N = K+1 (one fault survivable) expecting survival + probe
// detection, and at N = K (any fault loses the quorum) expecting a
// quorum-lost kill.
func runQuorumCells(cfg Config) ([]QuorumCell, error) {
	k := cfg.Quorum
	var cells []QuorumCell
	for _, plan := range quorumPlans() {
		for _, scenario := range []struct {
			name          string
			n             int
			expectSurvive bool
		}{
			{"survive", k + 1, true},
			{"quorum-lost", k, false},
		} {
			cell, err := runQuorumCell(cfg, plan, scenario.name, scenario.n, scenario.expectSurvive)
			if err != nil {
				return nil, fmt.Errorf("chaos: quorum cell %s/%s n=%d: %w",
					scenario.name, plan.Name, scenario.n, err)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// runQuorumCell runs one deterministic fault against one K-of-N group.
func runQuorumCell(cfg Config, plan Plan, scenario string, n int, expectSurvive bool) (QuorumCell, error) {
	cell := QuorumCell{
		Scenario: scenario, Fault: plan.Name, N: n, K: cfg.Quorum, Workers: 1,
		ExpectSurvive: expectSurvive,
	}
	seed := cellSeed(cfg.Seed, "quorum", scenario, plan.Name, fmt.Sprint(n))

	world, err := vos.NewWorld()
	if err != nil {
		return cell, err
	}
	net := simnet.New(0)
	if cfg.Obs != nil {
		net.SetMetrics(simnet.NewMetrics(cfg.Obs))
	}
	kopts := []nvkernel.Option{
		nvkernel.WithFaultHook(plan.Kernel.Hook(seed + 2)),
		nvkernel.WithTimeout(quorumTimeout),
	}
	if cfg.Obs != nil {
		kopts = append(kopts, nvkernel.WithMetrics(nvkernel.NewMetrics(cfg.Obs)))
	}
	gs, err := buildGroupSpec(StackFull, n, 1, seed+3, kopts)
	if err != nil {
		return cell, err
	}
	gs.Quorum = cfg.Quorum
	if cfg.Obs != nil {
		gs.Server.Metrics = httpd.NewMetrics(cfg.Obs)
	}
	h, err := harness.StartSpecOn(world, net, gs)
	if err != nil {
		return cell, err
	}
	client := h.Client()

	// Serialized benign phase across the injected fault. In surviving
	// cells every request must complete — the fault costs one variant,
	// not one request; in quorum-lost cells the group dies mid-phase
	// and the tail fails deterministically.
	for r := 0; r < cfg.Requests; r++ {
		code, _, err := client.Get(benignMix[r%len(benignMix)])
		if err == nil && code == 200 {
			cell.BenignOK++
		} else {
			cell.BenignErrs++
		}
	}

	// Probe phase (surviving cells): a forged-UID overwrite against the
	// degraded group. The corruption diverges among the *live* variants
	// on first use, and the monitor must still kill the group for it.
	if expectSurvive {
		payload := attack.ForgeUIDPayload(vos.Root)
		for round := 0; round < 8 && !cell.ProbeDetected; round++ {
			if _, err := client.Raw(payload); errors.Is(err, simnet.ErrRefused) {
				cell.ProbeDetected = true
				break
			}
			for t := 0; t < 64 && !cell.ProbeDetected; t++ {
				code, body, err := client.Get("/private/secret.html")
				switch {
				case errors.Is(err, simnet.ErrRefused):
					cell.ProbeDetected = true
				case err == nil && code == 200 && httpd.ContainsSecret(body):
					cell.Leaked = true
				}
			}
		}
	}

	res, err := h.Stop()
	if err != nil {
		return cell, err
	}
	if res.Alarm != nil {
		cell.AlarmReason = res.Alarm.Reason.String()
	}
	cell.Evicted = len(res.Evictions)
	if cell.Evicted > 0 {
		cell.EvictedKind = res.Evictions[0].Kind.String()
	}
	cell.Survived = cell.BenignErrs == 0 && cell.Evicted == 1
	if expectSurvive {
		cell.MissedDetection = !cell.ProbeDetected
		cell.FalseAlarm = cell.AlarmReason != "" && cell.AlarmReason != nvkernel.ReasonUIDDivergence.String()
	} else {
		cell.MissedDetection = cell.AlarmReason != nvkernel.ReasonQuorumLost.String()
		cell.FalseAlarm = false
	}
	return cell, nil
}

// runQuorumFleetCells runs one fleet pool per quorum fault plan.
func runQuorumFleetCells(cfg Config) ([]QuorumFleetCell, error) {
	var cells []QuorumFleetCell
	for _, plan := range quorumPlans() {
		fc, err := runQuorumFleetCell(cfg, plan)
		if err != nil {
			return nil, fmt.Errorf("chaos: quorum fleet cell %s: %w", plan.Name, err)
		}
		cells = append(cells, fc)
	}
	return cells, nil
}

// runQuorumFleetCell runs a pool of K-of-N groups through one
// deterministic variant fault under serialized load, then waits for
// the degraded group's background respawn to settle.
func runQuorumFleetCell(cfg Config, plan Plan) (QuorumFleetCell, error) {
	groups := cfg.FleetGroups
	if groups <= 0 {
		groups = 2
	}
	n := cfg.Quorum + 1
	cell := QuorumFleetCell{Fault: plan.Name, Groups: groups, N: n, K: cfg.Quorum}
	seed := cellSeed(cfg.Seed, "quorum-fleet", plan.Name)

	f, err := fleet.New(fleet.Options{
		Groups:   groups,
		Variants: n,
		Quorum:   cfg.Quorum,
		Config:   harness.Config4UIDVariation,
		Server:   httpd.DefaultOptions(),
		Seed:     seed,
		Kernel: []nvkernel.Option{
			nvkernel.WithFaultHook(plan.Kernel.Hook(seed + 2)),
			nvkernel.WithTimeout(quorumTimeout),
		},
		Obs: cfg.Obs,
	})
	if err != nil {
		return cell, err
	}
	defer func() { _, _ = f.Stop() }()
	client := f.Client()

	// Serialized benign phase: the fault strikes one group mid-phase;
	// the pool must serve every request regardless (the struck group on
	// its quorum, its siblings at full width).
	for r := 0; r < cfg.Requests; r++ {
		code, _, err := client.Get(benignMix[r%len(benignMix)])
		if err == nil && code == 200 {
			cell.BenignOK++
		} else {
			cell.BenignErrs++
		}
	}

	// The degraded group is drained and respawned in the background;
	// wait for the pool to settle back to full width with no degraded
	// member before reading the counters.
	if err := f.Await(func(s fleet.Stats) bool {
		return s.Evictions >= 1 && s.Respawned >= 1 &&
			s.DegradedGroups == 0 && len(s.Healthy) >= groups
	}, 30*time.Second); err != nil {
		cell.MissedRespawn = true
	}
	stats, err := f.Stop()
	if err != nil {
		return cell, err
	}
	cell.Evictions = stats.Evictions
	cell.Respawned = stats.Respawned
	cell.DegradedEnd = stats.DegradedGroups
	cell.Detections = stats.Detections
	cell.FalseAlarm = stats.Detections > 0
	return cell, nil
}
