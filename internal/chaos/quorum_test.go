package chaos_test

import (
	"bytes"
	"testing"

	"nvariant/internal/chaos"
)

// TestQuorumCampaignSurvivesAndDetects is the acceptance scenario: from
// one seed, the K=2-of-3 groups must survive one crash and one stall at
// 100% availability, detect the divergence probe among the live
// variants, and raise zero false alarms; the N=K cells must die
// quorum-lost; the fleet cells must evict, respawn, and settle
// undegraded. Byte-identical replay is asserted by running twice (CI
// additionally replays under -race and compares with cmp).
func TestQuorumCampaignSurvivesAndDetects(t *testing.T) {
	cfg := chaos.QuorumConfig(1)
	r1, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v := r1.Check(); len(v) > 0 {
		t.Fatalf("quorum campaign contract violated: %v", v)
	}
	if len(r1.Quorum) != 4 {
		t.Fatalf("quorum cells = %d, want 4 (crash/stall x survive/quorum-lost)", len(r1.Quorum))
	}
	kinds := map[string]bool{}
	for _, q := range r1.Quorum {
		if q.ExpectSurvive {
			if !q.Survived || q.BenignErrs != 0 {
				t.Errorf("%s/%s: survived=%v errs=%d, want survival at full availability",
					q.Scenario, q.Fault, q.Survived, q.BenignErrs)
			}
			if !q.ProbeDetected || q.Leaked {
				t.Errorf("%s/%s: probe detected=%v leaked=%v", q.Scenario, q.Fault, q.ProbeDetected, q.Leaked)
			}
			kinds[q.EvictedKind] = true
		} else if q.AlarmReason != "quorum-lost" {
			t.Errorf("%s/%s: alarm = %q, want quorum-lost", q.Scenario, q.Fault, q.AlarmReason)
		}
	}
	if !kinds["crash"] || !kinds["stall"] {
		t.Errorf("evicted kinds = %v, want both crash and stall", kinds)
	}
	if len(r1.QuorumFleet) != 2 {
		t.Fatalf("quorum fleet cells = %d, want 2", len(r1.QuorumFleet))
	}
	for _, q := range r1.QuorumFleet {
		if q.BenignErrs != 0 || q.Evictions != 1 || q.Respawned != 1 || q.DegradedEnd != 0 {
			t.Errorf("fleet %s: %+v, want full availability with 1 eviction + 1 respawn settled", q.Fault, q)
		}
	}
	s := r1.Summary
	if s.QuorumSurvived != 2 || s.QuorumEvictions != 4 || s.QuorumRespawns != 2 {
		t.Errorf("summary quorum counters = survived %d evictions %d respawns %d, want 2/4/2",
			s.QuorumSurvived, s.QuorumEvictions, s.QuorumRespawns)
	}
	if s.FalseAlarms != 0 {
		t.Errorf("false alarms = %d, want 0", s.FalseAlarms)
	}
	// The probe detections are the re-included headline contribution.
	if s.ExpectedDetections != 2 || s.Detections != 2 {
		t.Errorf("detections = %d/%d, want 2/2", s.Detections, s.ExpectedDetections)
	}

	r2, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same seed produced different quorum matrices: %s", firstDiff(j1, j2))
	}
}
