package chaos

import (
	"testing"
	"time"

	"nvariant/internal/simnet"
	"nvariant/internal/sys"
)

func TestNetInjectorDeterministicStream(t *testing.T) {
	plan := NetPlan{DropRate: 0.1, TruncateRate: 0.2, ReorderRate: 0.2, DelayRate: 0.3, Delay: time.Millisecond}
	a, b := plan.Injector(42), plan.Injector(42)
	var kinds [5]int
	for i := 0; i < 4096; i++ {
		fa, fb := a.FaultFor(100), b.FaultFor(100)
		if fa != fb {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, fa, fb)
		}
		switch {
		case fa.Drop:
			kinds[0]++
		case fa.TruncateTo > 0:
			kinds[1]++
		case fa.Hold > 0:
			kinds[2]++
		case fa.Delay > 0:
			kinds[3]++
		default:
			kinds[4]++
		}
	}
	for k, n := range kinds {
		if n == 0 {
			t.Errorf("fault kind %d never drawn across 4096 decisions", k)
		}
	}
	// A different seed must draw a different stream (a fully identical
	// 64-decision window is astronomically unlikely).
	c, d := plan.Injector(42), plan.Injector(43)
	same := true
	for i := 0; i < 64; i++ {
		if c.FaultFor(100) != d.FaultFor(100) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the same decision stream")
	}
}

func TestNetInjectorTruncateNeverEmpty(t *testing.T) {
	plan := NetPlan{TruncateRate: 1}
	inj := plan.Injector(1)
	for i := 0; i < 256; i++ {
		f := inj.FaultFor(5)
		if f.TruncateTo < 1 || f.TruncateTo >= 5 {
			t.Fatalf("truncate verdict %d outside [1,5)", f.TruncateTo)
		}
	}
	if f := inj.FaultFor(1); f != (simnet.Fault{}) {
		t.Errorf("single-byte message got %+v, want untouched", f)
	}
}

func TestKernelHookCrashTriggersOnExactOccurrence(t *testing.T) {
	plan := KernelPlan{CrashVariant: 1, CrashCall: sys.Recv, CrashAfter: 3}
	h := plan.Hook(1)
	for i := 1; i <= 5; i++ {
		// Variant 0 and other syscalls never crash.
		if _, crash := h.PreSyscall(0, 0, sys.Recv); crash {
			t.Fatalf("variant 0 crashed at recv %d", i)
		}
		if _, crash := h.PreSyscall(0, 1, sys.Send); crash {
			t.Fatalf("variant 1 crashed at send %d", i)
		}
		_, crash := h.PreSyscall(0, 1, sys.Recv)
		if crash != (i == 3) {
			t.Fatalf("variant 1 recv %d: crash = %v", i, crash)
		}
	}
}

func TestKernelHookCrashCountsAcrossLanes(t *testing.T) {
	// The occurrence counter is per (variant, syscall) group-wide: the
	// trigger point is a property of the traffic, not of which worker
	// lane carries each call.
	plan := KernelPlan{CrashVariant: 0, CrashCall: sys.Recv, CrashAfter: 2}
	h := plan.Hook(9)
	if _, crash := h.PreSyscall(0, 0, sys.Recv); crash {
		t.Fatal("crashed on first occurrence")
	}
	if _, crash := h.PreSyscall(3, 0, sys.Recv); !crash {
		t.Fatal("second occurrence on another lane did not crash")
	}
}

func TestKernelHookStallInterleavingIndependent(t *testing.T) {
	// Stall decisions are a hash of (seed, variant, syscall,
	// occurrence): interleaving two variants' streams differently must
	// not change either variant's per-occurrence decisions.
	plan := KernelPlan{StallRate: 0.5, Stall: time.Microsecond}
	a := plan.Hook(7)
	b := plan.Hook(7)
	const n = 256
	seqA := make([]time.Duration, 0, 2*n)
	// a: strict alternation.
	for i := 0; i < n; i++ {
		for v := 0; v < 2; v++ {
			d, _ := a.PreSyscall(0, v, sys.Send)
			seqA = append(seqA, d)
		}
	}
	// b: variant 1's calls all first, then variant 0's.
	seqB := make([]time.Duration, 2*n)
	for i := 0; i < n; i++ {
		d, _ := b.PreSyscall(0, 1, sys.Send)
		seqB[2*i+1] = d
	}
	for i := 0; i < n; i++ {
		d, _ := b.PreSyscall(0, 0, sys.Send)
		seqB[2*i] = d
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d depends on interleaving: %v vs %v", i, seqA[i], seqB[i])
		}
	}
	stalls := 0
	for _, d := range seqA {
		if d > 0 {
			stalls++
		}
	}
	if stalls == 0 || stalls == len(seqA) {
		t.Errorf("stall rate 0.5 drew %d/%d stalls", stalls, len(seqA))
	}
}

func TestPlanRegistry(t *testing.T) {
	if _, err := PlanByName("no-such-plan"); err == nil {
		t.Error("unknown plan name accepted")
	}
	for _, p := range TransparentPlans() {
		if !p.Transparent {
			t.Errorf("TransparentPlans returned %s", p.Name)
		}
		if p.Kernel != nil && p.Kernel.CrashAfter > 0 {
			t.Errorf("transparent plan %s crashes variants", p.Name)
		}
	}
	seen := map[string]bool{}
	for _, p := range Plans() {
		if seen[p.Name] {
			t.Errorf("duplicate plan %s", p.Name)
		}
		seen[p.Name] = true
	}
	for _, want := range []string{"none", "net-mixed", "variant-crash", "group-restart"} {
		if !seen[want] {
			t.Errorf("standard plan %s missing", want)
		}
	}
}
