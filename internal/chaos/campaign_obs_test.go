package chaos_test

import (
	"fmt"
	"testing"

	"nvariant/internal/chaos"
	"nvariant/internal/obs"
)

// TestCampaignInstrumentationPreservesJSON is the determinism contract
// of the ops surface: attaching a live metrics registry to a campaign
// must not change a single byte of the seeded JSON matrix. Wall-clock
// readings (Alarm.At, metric timestamps) stay on the ops side; only
// virtual time enters the matrix.
func TestCampaignInstrumentationPreservesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed campaign crossing")
	}
	for _, seed := range []int64{1, 7, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			plain := smallConfig(seed)
			res1, err := chaos.Run(plain)
			if err != nil {
				t.Fatal(err)
			}
			j1, err := res1.JSON()
			if err != nil {
				t.Fatal(err)
			}

			instrumented := smallConfig(seed)
			instrumented.Obs = obs.NewRegistry()
			res2, err := chaos.Run(instrumented)
			if err != nil {
				t.Fatal(err)
			}
			j2, err := res2.JSON()
			if err != nil {
				t.Fatal(err)
			}

			if !bytesEqual(j1, j2) {
				t.Errorf("seed %d: instrumentation changed the matrix: %s",
					seed, firstDiff(j1, j2))
			}

			// The registry must actually have seen traffic — a silently
			// detached registry would make the bytes-equal check vacuous.
			if got := instrumented.Obs.Counter("nvk_syscalls_total", "", obs.L("call", "exit")).Value(); got == 0 {
				t.Error("instrumented campaign recorded no syscalls")
			}
		})
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
