package chaos_test

import (
	"bytes"
	"fmt"
	"testing"

	"nvariant/internal/attack"
	"nvariant/internal/chaos"
)

// smallConfig is a fast campaign crossing that still exercises every
// moving part: benign + detecting + flood scenarios, a transparent and
// a crash fault plan, serial and prefork groups, and the fleet section.
func smallConfig(seed int64) chaos.Config {
	forge, err := attack.ScenarioByName("forge-root-uid")
	if err != nil {
		panic(err)
	}
	flood, err := attack.ScenarioByName("malformed-flood")
	if err != nil {
		panic(err)
	}
	cfg := chaos.DefaultConfig(seed)
	cfg.Requests = 6
	cfg.Ns = []int{2}
	cfg.Workers = []int{1, 2}
	cfg.Stacks = []string{chaos.StackFull}
	cfg.Attacks = []attack.Scenario{chaos.NoAttack(), forge, flood}
	cfg.ByteSweep = false
	cfg.FleetGroups = 2
	cfg.FleetProbes = 1
	return cfg
}

// firstDiff reports the first line where two renderings diverge —
// go-cmp is not vendored in this module, so the comparison is
// byte-wise with a line-level report for debugging.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d: %q != %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(al), len(bl))
}

func TestCampaignSameSeedByteIdenticalJSON(t *testing.T) {
	cfg := smallConfig(7)
	r1, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same seed produced different matrices: %s", firstDiff(j1, j2))
	}
	if v := r1.Check(); len(v) > 0 {
		t.Fatalf("campaign contract violated: %v", v)
	}
}

func TestFaultOnlyCampaignZeroFalseAlarms(t *testing.T) {
	// The satellite contract: every transparent fault plan against
	// healthy full-stack groups at N ∈ {2,3,5}, W ∈ {1,4} must produce
	// zero alarms — the paper's transparency-under-benign-faults claim
	// swept across the whole chaos plan set.
	cfg := chaos.FaultOnlyConfig(3)
	cfg.Requests = 8
	r, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(chaos.TransparentPlans()) * len(cfg.Ns) * len(cfg.Workers)
	if len(r.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(r.Cells), wantCells)
	}
	for _, c := range r.Cells {
		if c.Detected {
			t.Errorf("false alarm under %s at n=%d w=%d: %s", c.Fault, c.N, c.Workers, c.AlarmReason)
		}
		if c.BenignOK == 0 {
			t.Errorf("no request survived %s at n=%d w=%d", c.Fault, c.N, c.Workers)
		}
	}
	if r.Summary.FalseAlarms != 0 {
		t.Errorf("summary.FalseAlarms = %d, want 0", r.Summary.FalseAlarms)
	}
	if v := r.Check(); len(v) > 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestCampaignCorpusDetectedAndBaselineLeaks(t *testing.T) {
	// Every corpus scenario against both stacks, fault-free: the full
	// stack must detect every detection-class attack with no defended
	// leak; the diversity baseline (no UID layer) must leak the secret
	// to the root-forging attack — the contrast that quantifies what
	// the data variation buys.
	cfg := chaos.Config{
		Seed:          5,
		Requests:      4,
		TriggerBudget: 16,
		Ns:            []int{2},
		Workers:       []int{1},
		Stacks:        []string{chaos.StackFull, chaos.StackBaseline},
		Attacks:       attack.Corpus(),
		Faults:        []chaos.Plan{{Name: "none", Transparent: true}},
	}
	r, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baselineLeaked := false
	for _, c := range r.Cells {
		switch {
		case c.ExpectDetect && !c.Detected:
			t.Errorf("%s on %s: not detected", c.Attack, c.Stack)
		case c.Stack == chaos.StackFull && c.Leaked:
			t.Errorf("%s leaked from a defended group", c.Attack)
		case c.Attack == "malformed-flood" && c.Detected:
			t.Errorf("malformed flood raised a false alarm on %s: %s", c.Stack, c.AlarmReason)
		}
		if c.Stack == chaos.StackBaseline && c.Attack == "forge-root-uid" {
			baselineLeaked = c.Leaked
		}
	}
	if !baselineLeaked {
		t.Error("forge-root-uid did not leak from the undefended baseline stack — the attack itself is broken")
	}
}

func TestCampaignByteSweepNoCorruption(t *testing.T) {
	cfg := chaos.Config{
		Seed:      11,
		Ns:        []int{2, 4},
		ByteSweep: true,
	}
	r, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ByteSweeps) != 3 { // paper pair + one per N
		t.Fatalf("byte-sweep rows = %d, want 3", len(r.ByteSweeps))
	}
	for _, b := range r.ByteSweeps {
		if b.Trials != 1024 {
			t.Errorf("%s n=%d: trials = %d, want 1024", b.Name, b.N, b.Trials)
		}
		if b.Corrupted != 0 {
			t.Errorf("%s n=%d: %d undetected corruptions", b.Name, b.N, b.Corrupted)
		}
		if b.Detected == 0 {
			t.Errorf("%s n=%d: nothing detected", b.Name, b.N)
		}
	}
}
