// Package webbench reproduces the role of WebBench 5.0 [41] in the
// paper's evaluation: closed-loop client engines issuing a mix of
// static page requests while measuring throughput (KB/s) and latency
// (ms). The paper's two operating points are one engine on one client
// machine (unsaturated) and 3 machines × 5 engines = 15 engines
// (saturated).
package webbench

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"nvariant/internal/httpd"
	"nvariant/internal/simnet"
)

// DefaultMix is the static-page request mix (a spread of sizes like
// WebBench's standard static workload tree).
func DefaultMix() []string {
	return []string{
		"/index.html",
		"/page1.html",
		"/page2.html",
		"/page3.html",
		"/about.html",
		"/styles.css",
		"/logo.gif",
	}
}

// Options configures a load run.
type Options struct {
	// Engines is the number of concurrent client engines (1 =
	// unsaturated, 15 = the paper's saturated load).
	Engines int
	// RequestsPerEngine is how many requests each engine issues.
	RequestsPerEngine int
	// Mix is the URI list engines round-robin over (DefaultMix if
	// empty).
	Mix []string
}

// Metrics aggregates a load run's results.
type Metrics struct {
	// Requests is the number of completed requests.
	Requests int
	// Errors counts failed requests (connection or non-200 status).
	Errors int
	// Bytes is the total response bytes received.
	Bytes int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// TotalLatency is the sum of per-request latencies.
	TotalLatency time.Duration
	// P50Latency is the median request latency.
	P50Latency time.Duration
	// P95Latency is the 95th-percentile request latency.
	P95Latency time.Duration
	// P99Latency is the 99th-percentile request latency (the tail a
	// fleet's quarantine windows show up in).
	P99Latency time.Duration
}

// Percentile returns the p-th percentile of the given latencies using
// linear interpolation between closest ranks, so even-length samples
// behave consistently (the p50 of {10ms, 20ms} is 15ms, not an
// arbitrary pick of either endpoint). The input need not be sorted;
// it is not modified.
func Percentile(latencies []time.Duration, p float64) time.Duration {
	if len(latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

// percentileSorted interpolates the p-th percentile over an ascending
// slice: rank p/100·(n-1) split into its integer neighbors, lerped by
// the fractional part (the "linear" method of NumPy and most
// monitoring systems). p outside [0, 100] clamps to the extremes.
func percentileSorted(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= n {
		return sorted[lo]
	}
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

// ThroughputKBps returns throughput in kilobytes per second — the
// metric of Table 3.
func (m Metrics) ThroughputKBps() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Bytes) / 1024 / m.Elapsed.Seconds()
}

// MeanLatency returns the average request latency — the second metric
// of Table 3.
func (m Metrics) MeanLatency() time.Duration {
	if m.Requests == 0 {
		return 0
	}
	return m.TotalLatency / time.Duration(m.Requests)
}

// String renders the metrics as a Table 3 cell pair.
func (m Metrics) String() string {
	return fmt.Sprintf("throughput %.1f KB/s, latency %.3f ms (%d requests, %d errors)",
		m.ThroughputKBps(), float64(m.MeanLatency().Microseconds())/1000, m.Requests, m.Errors)
}

// Run drives the configured load against the server at port and
// aggregates metrics across engines.
func Run(net *simnet.Network, port uint16, opts Options) (Metrics, error) {
	if opts.Engines <= 0 {
		return Metrics{}, fmt.Errorf("webbench: engines must be positive, got %d", opts.Engines)
	}
	if opts.RequestsPerEngine <= 0 {
		return Metrics{}, fmt.Errorf("webbench: requests per engine must be positive, got %d", opts.RequestsPerEngine)
	}
	mix := opts.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}

	var (
		mu        sync.Mutex
		agg       Metrics
		latencies []time.Duration
	)
	// Request payloads are prebuilt once per mix entry and shared
	// read-only by all engines; responses go back to the network's
	// buffer pool after their length is taken. The engines therefore
	// allocate nothing per request — the bench measures the server.
	reqs := make([][]byte, len(mix))
	for i, uri := range mix {
		reqs[i] = httpd.AppendRequest(nil, uri)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for e := 0; e < opts.Engines; e++ {
		wg.Add(1)
		go func(engine int) {
			defer wg.Done()
			client := httpd.NewClient(net, port)
			local := Metrics{}
			localLat := make([]time.Duration, 0, opts.RequestsPerEngine)
			for r := 0; r < opts.RequestsPerEngine; r++ {
				req := reqs[(engine+r)%len(mix)]
				t0 := time.Now()
				code, n, err := client.Fetch(req)
				lat := time.Since(t0)
				if err != nil || code != 200 {
					local.Errors++
					continue
				}
				local.Requests++
				local.Bytes += int64(n)
				local.TotalLatency += lat
				localLat = append(localLat, lat)
			}
			mu.Lock()
			agg.Requests += local.Requests
			agg.Errors += local.Errors
			agg.Bytes += local.Bytes
			agg.TotalLatency += local.TotalLatency
			latencies = append(latencies, localLat...)
			mu.Unlock()
		}(e)
	}
	wg.Wait()
	agg.Elapsed = time.Since(start)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		agg.P50Latency = percentileSorted(latencies, 50)
		agg.P95Latency = percentileSorted(latencies, 95)
		agg.P99Latency = percentileSorted(latencies, 99)
	}
	return agg, nil
}
