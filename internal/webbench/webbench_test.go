package webbench

import (
	"strings"
	"testing"
	"time"

	"nvariant/internal/harness"
	"nvariant/internal/httpd"
)

func TestRunAgainstConfig1(t *testing.T) {
	h, err := harness.Start(harness.Config1Unmodified, httpd.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(h.Net, h.Port, Options{Engines: 2, RequestsPerEngine: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 20 || m.Errors != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Bytes == 0 || m.ThroughputKBps() <= 0 || m.MeanLatency() <= 0 {
		t.Errorf("degenerate metrics: %+v", m)
	}
	if m.P95Latency < m.MeanLatency()/2 {
		t.Errorf("p95 %v implausibly below mean %v", m.P95Latency, m.MeanLatency())
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("alarm under benign load: %+v", res.Alarm)
	}
}

func TestRunAgainstUIDVariation(t *testing.T) {
	// The full 2-variant UID configuration must sustain benign load
	// with zero false alarms — the paper's deployability claim.
	h, err := harness.Start(harness.Config4UIDVariation, httpd.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(h.Net, h.Port, Options{Engines: 4, RequestsPerEngine: 15})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d", m.Errors)
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("false alarm under benign load: %+v", res.Alarm)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(nil, 0, Options{Engines: 0, RequestsPerEngine: 1}); err == nil {
		t.Error("zero engines accepted")
	}
	if _, err := Run(nil, 0, Options{Engines: 1, RequestsPerEngine: 0}); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestMetricsMath(t *testing.T) {
	m := Metrics{
		Requests:     10,
		Bytes:        10240,
		Elapsed:      time.Second,
		TotalLatency: 100 * time.Millisecond,
	}
	if got := m.ThroughputKBps(); got != 10 {
		t.Errorf("throughput = %v, want 10", got)
	}
	if got := m.MeanLatency(); got != 10*time.Millisecond {
		t.Errorf("mean latency = %v, want 10ms", got)
	}
	if !strings.Contains(m.String(), "10.0 KB/s") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMetricsZeroSafe(t *testing.T) {
	var m Metrics
	if m.ThroughputKBps() != 0 || m.MeanLatency() != 0 {
		t.Error("zero metrics must not divide by zero")
	}
}

func TestDefaultMixCoversSizes(t *testing.T) {
	mix := DefaultMix()
	if len(mix) < 5 {
		t.Errorf("mix too small: %v", mix)
	}
	for _, uri := range mix {
		if !strings.HasPrefix(uri, "/") {
			t.Errorf("bad mix entry %q", uri)
		}
	}
}
