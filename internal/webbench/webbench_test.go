package webbench

import (
	"strings"
	"testing"
	"time"

	"nvariant/internal/harness"
	"nvariant/internal/httpd"
)

func TestRunAgainstConfig1(t *testing.T) {
	h, err := harness.Start(harness.Config1Unmodified, httpd.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(h.Net, h.Port, Options{Engines: 2, RequestsPerEngine: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 20 || m.Errors != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Bytes == 0 || m.ThroughputKBps() <= 0 || m.MeanLatency() <= 0 {
		t.Errorf("degenerate metrics: %+v", m)
	}
	if m.P95Latency < m.MeanLatency()/2 {
		t.Errorf("p95 %v implausibly below mean %v", m.P95Latency, m.MeanLatency())
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("alarm under benign load: %+v", res.Alarm)
	}
}

func TestRunAgainstUIDVariation(t *testing.T) {
	// The full 2-variant UID configuration must sustain benign load
	// with zero false alarms — the paper's deployability claim.
	h, err := harness.Start(harness.Config4UIDVariation, httpd.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(h.Net, h.Port, Options{Engines: 4, RequestsPerEngine: 15})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d", m.Errors)
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("false alarm under benign load: %+v", res.Alarm)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(nil, 0, Options{Engines: 0, RequestsPerEngine: 1}); err == nil {
		t.Error("zero engines accepted")
	}
	if _, err := Run(nil, 0, Options{Engines: 1, RequestsPerEngine: 0}); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestMetricsMath(t *testing.T) {
	m := Metrics{
		Requests:     10,
		Bytes:        10240,
		Elapsed:      time.Second,
		TotalLatency: 100 * time.Millisecond,
	}
	if got := m.ThroughputKBps(); got != 10 {
		t.Errorf("throughput = %v, want 10", got)
	}
	if got := m.MeanLatency(); got != 10*time.Millisecond {
		t.Errorf("mean latency = %v, want 10ms", got)
	}
	if !strings.Contains(m.String(), "10.0 KB/s") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMetricsZeroSafe(t *testing.T) {
	var m Metrics
	if m.ThroughputKBps() != 0 || m.MeanLatency() != 0 {
		t.Error("zero metrics must not divide by zero")
	}
}

func TestPercentileMath(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// 1..100 ms: interpolated rank p/100·99 between neighbors.
	hundred := make([]time.Duration, 100)
	for i := range hundred {
		hundred[i] = ms(i + 1)
	}
	tests := []struct {
		name string
		in   []time.Duration
		p    float64
		want time.Duration
	}{
		{"empty", nil, 95, 0},
		{"single", []time.Duration{ms(7)}, 50, ms(7)},
		{"single-p99", []time.Duration{ms(7)}, 99, ms(7)},
		// p50 of an even-length sample is the true median — the
		// consistency the interpolation fix buys.
		{"two-p50", []time.Duration{ms(10), ms(20)}, 50, ms(15)},
		{"hundred-p50", hundred, 50, ms(50) + 500*time.Microsecond},
		{"hundred-p100", hundred, 100, ms(100)},
		{"four-p25", []time.Duration{ms(4), ms(1), ms(3), ms(2)}, 25, ms(1) + 750*time.Microsecond},
		{"five-p50", []time.Duration{ms(5), ms(1), ms(4), ms(2), ms(3)}, 50, ms(3)},
		{"five-p25", []time.Duration{ms(5), ms(1), ms(4), ms(2), ms(3)}, 25, ms(2)},
		{"five-p75", []time.Duration{ms(5), ms(1), ms(4), ms(2), ms(3)}, 75, ms(4)},
		{"clamp-low", []time.Duration{ms(10), ms(20)}, 0, ms(10)},
		{"clamp-high", []time.Duration{ms(10), ms(20)}, 120, ms(20)},
	}
	for _, tc := range tests {
		if got := Percentile(tc.in, tc.p); got != tc.want {
			t.Errorf("%s: Percentile(p=%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
	// Fractional ranks that are not exactly representable in binary
	// get a tolerance instead of exact equality.
	approx := []struct {
		name string
		in   []time.Duration
		p    float64
		want time.Duration
	}{
		{"hundred-p95", hundred, 95, ms(95) + 50*time.Microsecond},
		{"hundred-p99", hundred, 99, ms(99) + 10*time.Microsecond},
		{"five-p99", []time.Duration{ms(5), ms(1), ms(4), ms(2), ms(3)}, 99, ms(4) + 960*time.Microsecond},
	}
	for _, tc := range approx {
		got := Percentile(tc.in, tc.p)
		diff := got - tc.want
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Microsecond {
			t.Errorf("%s: Percentile(p=%v) = %v, want %v ±1µs", tc.name, tc.p, got, tc.want)
		}
	}
	// The input must not be reordered.
	in := []time.Duration{ms(5), ms(1), ms(4)}
	_ = Percentile(in, 95)
	if in[0] != ms(5) || in[1] != ms(1) || in[2] != ms(4) {
		t.Errorf("Percentile mutated its input: %v", in)
	}
}

func TestRunReportsPercentiles(t *testing.T) {
	h, err := harness.Start(harness.Config1Unmodified, httpd.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(h.Net, h.Port, Options{Engines: 2, RequestsPerEngine: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Stop(); err != nil {
		t.Fatal(err)
	}
	if m.P50Latency <= 0 || m.P95Latency <= 0 || m.P99Latency <= 0 {
		t.Fatalf("percentiles not populated: %+v", m)
	}
	if m.P50Latency > m.P95Latency || m.P95Latency > m.P99Latency {
		t.Errorf("percentiles out of order: p50=%v p95=%v p99=%v",
			m.P50Latency, m.P95Latency, m.P99Latency)
	}
}

func TestDefaultMixCoversSizes(t *testing.T) {
	mix := DefaultMix()
	if len(mix) < 5 {
		t.Errorf("mix too small: %v", mix)
	}
	for _, uri := range mix {
		if !strings.HasPrefix(uri, "/") {
			t.Errorf("bad mix entry %q", uri)
		}
	}
}
