package webbench

import (
	"testing"

	"nvariant/internal/harness"
	"nvariant/internal/httpd"
)

func TestAppendRequestShape(t *testing.T) {
	req := httpd.AppendRequest(nil, "/index.html")
	if string(req) != "GET /index.html HTTP/1.0\r\n\r\n" {
		t.Errorf("request = %q", req)
	}
	// Appending onto a reused buffer must not retain old bytes.
	req = httpd.AppendRequest(req[:0], "/a.css")
	if string(req) != "GET /a.css HTTP/1.0\r\n\r\n" {
		t.Errorf("reused request = %q", req)
	}
}

func TestFetchMatchesGet(t *testing.T) {
	// The scratch-reusing client path must agree with the allocating
	// one on status and body size, for hits and misses.
	h, err := harness.Start(harness.Config1Unmodified, httpd.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _, _ = h.Stop() }()
	client := h.Client()
	for _, uri := range []string{"/index.html", "/no-such-page.html", "/styles.css"} {
		gcode, gbody, gerr := client.Get(uri)
		fcode, flen, ferr := client.Fetch(httpd.AppendRequest(nil, uri))
		if gerr != nil || ferr != nil {
			t.Fatalf("%s: get err=%v fetch err=%v", uri, gerr, ferr)
		}
		if fcode != gcode || flen != len(gbody) {
			t.Errorf("%s: fetch = (%d, %d), get = (%d, %d)", uri, fcode, flen, gcode, len(gbody))
		}
	}
	// A malformed request still yields a parsed status, not an error.
	if code, _, err := client.Fetch([]byte("NONSENSE\r\n\r\n")); err != nil || code != 400 {
		t.Errorf("fetch of malformed request = %d, %v; want 400", code, err)
	}
}

func TestLoadAgainstWorkers(t *testing.T) {
	// Saturated load against a prefork group: all requests served, no
	// false alarm, and the engines' scratch reuse returns correct byte
	// counts (Bytes must match the sum of body lengths Get would see).
	opts := httpd.DefaultOptions()
	opts.Workers = 4
	h, err := harness.Start(harness.Config4UIDVariation, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(h.Net, h.Port, Options{Engines: 8, RequestsPerEngine: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 || m.Requests != 64 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Bytes == 0 {
		t.Error("no bytes accounted")
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("alarm under benign load: %+v", res.Alarm)
	}
	if res.Workers != 4 {
		t.Errorf("workers = %d, want 4", res.Workers)
	}
}
