package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help", L("k", "v"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := reg.Gauge("g", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "help", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // overflow
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	want := 500*time.Microsecond + 2*5*time.Millisecond + time.Second
	if got := h.Sum(); got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", L("call", "read"))
	b := reg.Counter("x_total", "help", L("call", "read"))
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	other := reg.Counter("x_total", "help", L("call", "write"))
	if a == other {
		t.Error("distinct labels must return distinct series")
	}
}

func TestRegistrationKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Error("registering m as a gauge after a counter must panic")
		}
	}()
	reg.Gauge("m", "help")
}

func TestFuncReRegistrationReplacesCallback(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("live", "help", func() float64 { return 1 })
	reg.GaugeFunc("live", "help", func() float64 { return 2 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live 2") {
		t.Errorf("latest callback must win:\n%s", sb.String())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "second family").Add(3)
	reg.Counter("a_total", "first family", L("k", "v")).Inc()
	h := reg.Histogram("h_seconds", "latency", []float64{0.001, 0.1})
	h.Observe(10 * time.Millisecond)
	reg.GaugeFunc("fn", "sampled", func() float64 { return 1.5 })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Families render sorted by name.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Error("families must be sorted by name")
	}
	for _, want := range []string{
		"# TYPE a_total counter",
		`a_total{k="v"} 1`,
		"b_total 3",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.001"} 0`,
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="+Inf"} 1`,
		"h_seconds_sum 0.01",
		"h_seconds_count 1",
		"fn 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The exposition must satisfy our own linter.
	if problems := LintPrometheus([]byte(out)); len(problems) > 0 {
		t.Errorf("self-lint: %v", problems)
	}
	if problems := RequireFamilies([]byte(out), []string{"a_total", "h_seconds"}); len(problems) > 0 {
		t.Errorf("require: %v", problems)
	}
	if problems := RequireFamilies([]byte(out), []string{"missing_total"}); len(problems) == 0 {
		t.Error("RequireFamilies must flag an absent family")
	}
}

func TestLintCatchesMalformed(t *testing.T) {
	cases := map[string]string{
		"orphan sample":   "no_type_declared 1\n",
		"bad value":       "# TYPE x counter\nx banana\n",
		"histogram_noinf": "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, payload := range cases {
		if problems := LintPrometheus([]byte(payload)); len(problems) == 0 {
			t.Errorf("%s: lint accepted malformed payload %q", name, payload)
		}
	}
}

// TestConcurrentUpdatesAndScrapes is the -race proof: registration,
// updates and scrapes may interleave freely.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "help", DefDurationBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("ops_total", "help")
			g := reg.Gauge("inflight", "help")
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				g.Add(-1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			if problems := LintPrometheus([]byte(sb.String())); len(problems) > 0 {
				t.Errorf("mid-flight lint: %v", problems)
				return
			}
		}
	}()
	wg.Wait()
	if got := reg.Counter("ops_total", "help").Value(); got != 2000 {
		t.Errorf("ops_total = %d, want 2000", got)
	}
	if got := h.Count(); got != 2000 {
		t.Errorf("histogram count = %d, want 2000", got)
	}
}

// TestHotPathZeroAlloc proves the primitives the instrumented
// rendezvous and dispatcher touch allocate nothing per operation.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help")
	g := reg.Gauge("g", "help")
	h := reg.Histogram("h_seconds", "help", DefDurationBuckets())
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(42 * time.Microsecond)
		g.Add(-1)
	}); avg != 0 {
		t.Errorf("hot-path primitives allocate %v/op, want 0", avg)
	}
}
