// Host-side ops server: /metrics (Prometheus text), /audit (fleet
// audit-log tail as NDJSON), and net/http/pprof. This is operator
// tooling on a real loopback socket — deliberately outside the
// deterministic simnet world, so nothing here may feed back into it.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// AuditSource is anything that can render an audit-log tail as
// newline-delimited JSON. fleet.AuditLog implements it. TailNDJSON
// returns entries with sequence numbers strictly greater than since
// (at most max when max > 0) plus the last sequence number rendered,
// so a poller can resume with ?since=<last>.
type AuditSource interface {
	TailNDJSON(since, max int) ([]byte, int, error)
}

// NewHandler returns the ops mux: /metrics, /audit, /debug/pprof/*,
// and an index on /. audit may be nil (campaign runs without a
// fleet); /audit then answers 503.
func NewHandler(reg *Registry, audit AuditSource) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/audit", func(w http.ResponseWriter, req *http.Request) {
		if audit == nil {
			http.Error(w, "no audit source attached", http.StatusServiceUnavailable)
			return
		}
		since := queryInt(req, "since", 0)
		max := queryInt(req, "n", 0)
		data, last, err := audit.TailNDJSON(since, max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Audit-Last-Seq", strconv.Itoa(last))
		w.Write(data)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "nvariant ops\n\n/metrics\n/audit?since=N&n=M\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running ops endpoint.
type Server struct {
	// Addr is the bound address (useful when the requested port was 0).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// StartServer binds addr and serves the ops mux in the background.
func StartServer(addr string, reg *Registry, audit AuditSource) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(reg, audit), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func queryInt(req *http.Request, key string, def int) int {
	v := req.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
