// A small expfmt-style checker for Prometheus text exposition, used
// by cmd/opsd -lint and the CI ops-smoke job. It is intentionally a
// subset of the real format rules: enough to catch a malformed or
// incomplete scrape, not a full parser.
package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// LintPrometheus checks text exposition data and returns a list of
// problems (empty when clean). Checks: comment lines are well-formed
// HELP/TYPE, TYPE appears at most once per family and before its
// samples, every sample belongs to a declared family (histogram
// samples may use the _bucket/_sum/_count suffixes), sample values
// parse as numbers, and each histogram has a le="+Inf" bucket.
func LintPrometheus(data []byte) []string {
	var problems []string
	types := make(map[string]string) // family -> type
	sampled := make(map[string]bool) // family has samples
	infSeen := make(map[string]bool) // histogram family has +Inf bucket
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				problems = append(problems, fmt.Sprintf("line %d: malformed comment %q", lineNo, line))
				continue
			}
			if fields[1] == "TYPE" {
				name := fields[2]
				if len(fields) < 4 {
					problems = append(problems, fmt.Sprintf("line %d: TYPE %s missing type", lineNo, name))
					continue
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					problems = append(problems, fmt.Sprintf("line %d: TYPE %s has unknown type %q", lineNo, name, typ))
				}
				if _, dup := types[name]; dup {
					problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, name))
				}
				if sampled[name] {
					problems = append(problems, fmt.Sprintf("line %d: TYPE %s after its samples", lineNo, name))
				}
				types[name] = typ
			}
			continue
		}
		name, labels, value, ok := splitSample(line)
		if !ok {
			problems = append(problems, fmt.Sprintf("line %d: malformed sample %q", lineNo, line))
			continue
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			problems = append(problems, fmt.Sprintf("line %d: %s value %q is not a number", lineNo, name, value))
		}
		fam, suffix := familyOf(name, types)
		if _, declared := types[fam]; !declared {
			problems = append(problems, fmt.Sprintf("line %d: sample %s has no TYPE declaration", lineNo, name))
			continue
		}
		sampled[fam] = true
		if types[fam] == "histogram" {
			if suffix == "_bucket" && strings.Contains(labels, `le="+Inf"`) {
				infSeen[fam] = true
			}
			if suffix == "" {
				problems = append(problems, fmt.Sprintf("line %d: histogram %s sampled without _bucket/_sum/_count suffix", lineNo, fam))
			}
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("scan: %v", err))
	}
	for fam, typ := range types {
		if typ == "histogram" && sampled[fam] && !infSeen[fam] {
			problems = append(problems, fmt.Sprintf("histogram %s has no le=\"+Inf\" bucket", fam))
		}
	}
	return problems
}

// RequireFamilies returns a problem per requested family that has no
// TYPE declaration in the exposition data.
func RequireFamilies(data []byte, names []string) []string {
	declared := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.SplitN(sc.Text(), " ", 4)
		if len(fields) >= 3 && fields[0] == "#" && fields[1] == "TYPE" {
			declared[fields[2]] = true
		}
	}
	var problems []string
	for _, name := range names {
		if name == "" {
			continue
		}
		if !declared[name] {
			problems = append(problems, fmt.Sprintf("required family %s not present", name))
		}
	}
	return problems
}

// splitSample cuts "name{labels} value" / "name value" into parts.
func splitSample(line string) (name, labels, value string, ok bool) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", false
		}
		name = line[:i]
		labels = line[i : j+1]
		rest = strings.TrimSpace(line[j+1:])
	} else {
		i := strings.IndexByte(line, ' ')
		if i < 0 {
			return "", "", "", false
		}
		name = line[:i]
		rest = strings.TrimSpace(line[i+1:])
	}
	if name == "" || rest == "" {
		return "", "", "", false
	}
	// A timestamp may follow the value; take the first field.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	return name, labels, rest, true
}

// familyOf strips a histogram suffix when the base family is declared
// as a histogram.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			base := strings.TrimSuffix(name, s)
			if types[base] == "histogram" || types[base] == "summary" {
				return base, s
			}
		}
	}
	return name, ""
}
