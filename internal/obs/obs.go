// Package obs is the repo's zero-allocation metrics subsystem: atomic
// counters, gauges, and fixed-bucket duration histograms that layers
// register once at startup and update lock-free on their hot paths.
//
// Design rules (see DESIGN.md "Observability"):
//
//   - Registration is idempotent: asking for an existing name+labels
//     returns the already-registered metric, so independent components
//     (every fleet.New, every campaign cell) aggregate into one series
//     instead of fighting over the name. Re-registering a *Func metric
//     replaces its callback — latest instance wins.
//   - Updates are single atomic operations: no locks, no maps, and no
//     allocations on the update path. Histograms bucket int64
//     nanoseconds against precomputed bounds.
//   - Sampling (WritePrometheus) takes the registry lock but only
//     reads atomics, so it never blocks an updater.
//
// The package depends only on the standard library and is imported by
// every instrumented layer; it must never import them back.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a signed value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket duration histogram. Bounds are given in
// seconds at registration (Prometheus convention) and compared as
// precomputed int64 nanoseconds, so Observe is a short linear scan
// plus three atomic adds — no allocation, no lock.
type Histogram struct {
	boundsSec []float64 // upper bounds, ascending, in seconds
	boundsNs  []int64   // same bounds in nanoseconds
	buckets   []atomic.Uint64
	overflow  atomic.Uint64 // observations above the last bound
	count     atomic.Uint64
	sumNs     atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for i, b := range h.boundsNs {
		if ns <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.overflow.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// DefDurationBuckets covers the repo's latency range: sub-microsecond
// rendezvous up to multi-second exposure windows.
func DefDurationBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5,
	}
}

type kind int

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance within a family.
type series struct {
	labels []Label
	key    string

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() float64 // counterFunc / gaugeFunc callback
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   kind
	order  []*series
	byKey  map[string]*series
	bounds []float64 // histogram families only
}

// Registry holds registered metrics and renders them in Prometheus
// text exposition format.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// register returns the series for name+labels, creating family and
// series as needed. Panics on a kind mismatch with a previous
// registration — that is a programming error, as in Prometheus
// MustRegister.
func (r *Registry) register(name, help string, k kind, labels []Label, bounds []float64) *series {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series), bounds: bounds}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, k.promType(), f.kind.promType()))
	}
	key := labelKey(labels)
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...), key: key}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			b := f.bounds
			if len(b) == 0 {
				b = DefDurationBuckets()
			}
			h := &Histogram{
				boundsSec: append([]float64(nil), b...),
				boundsNs:  make([]int64, len(b)),
				buckets:   make([]atomic.Uint64, len(b)),
			}
			for i, sec := range h.boundsSec {
				h.boundsNs[i] = int64(sec * float64(time.Second))
			}
			s.h = h
		}
		f.byKey[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels, nil).c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels, nil).g
}

// Histogram registers (or finds) a duration histogram with the given
// upper bounds in seconds (DefDurationBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.register(name, help, kindHistogram, labels, bounds).h
}

// CounterFunc registers a counter sampled via fn at exposition time.
// Re-registering the same name+labels replaces the callback, so
// successive component instances (e.g. fleets) hand off cleanly.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindCounterFunc, labels, nil)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge sampled via fn at exposition time.
// Latest registration wins, as with CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGaugeFunc, labels, nil)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// writeLabels renders {a="b",c="d"} including the given extra label
// (used for histogram le); writes nothing for zero labels.
func writeLabels(w io.Writer, labels []Label, extraName, extraValue string) {
	if len(labels) == 0 && extraName == "" {
		return
	}
	io.WriteString(w, "{")
	for i, l := range labels {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, `%s=%q`, l.Name, escapeLabelValue(l.Value))
	}
	if extraName != "" {
		if len(labels) > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, `%s=%q`, extraName, extraValue)
	}
	io.WriteString(w, "}")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range f.order {
			switch f.kind {
			case kindCounter:
				b.WriteString(f.name)
				writeLabels(&b, s.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(s.c.Value(), 10))
				b.WriteByte('\n')
			case kindGauge:
				b.WriteString(f.name)
				writeLabels(&b, s.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(s.g.Value(), 10))
				b.WriteByte('\n')
			case kindCounterFunc, kindGaugeFunc:
				var v float64
				if s.fn != nil {
					v = s.fn()
				}
				b.WriteString(f.name)
				writeLabels(&b, s.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(v))
				b.WriteByte('\n')
			case kindHistogram:
				h := s.h
				var cum uint64
				for i, bound := range h.boundsSec {
					cum += h.buckets[i].Load()
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, s.labels, "le", formatFloat(bound))
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(cum, 10))
					b.WriteByte('\n')
				}
				cum += h.overflow.Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, s.labels, "le", "+Inf")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, s.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(h.Sum().Seconds()))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, s.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
