package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeAudit serves a fixed NDJSON tail, recording the last query.
type fakeAudit struct {
	since, max int
}

func (f *fakeAudit) TailNDJSON(since, max int) ([]byte, int, error) {
	f.since, f.max = since, max
	var buf bytes.Buffer
	last := since
	for i := 0; i < 2; i++ {
		last++
		fmt.Fprintf(&buf, `{"seq":%d,"action":"replaced"}`+"\n", last)
	}
	return buf.Bytes(), last, nil
}

func TestHandlerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "help").Add(9)
	srv := httptest.NewServer(NewHandler(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "requests_total 9") {
		t.Errorf("body missing counter:\n%s", body)
	}
	if problems := LintPrometheus(body); len(problems) > 0 {
		t.Errorf("served payload fails lint: %v", problems)
	}
}

func TestHandlerAuditEndpoint(t *testing.T) {
	fa := &fakeAudit{}
	srv := httptest.NewServer(NewHandler(NewRegistry(), fa))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/audit?since=3&n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if fa.since != 3 || fa.max != 2 {
		t.Errorf("query passed as since=%d max=%d, want 3, 2", fa.since, fa.max)
	}
	if got := resp.Header.Get("X-Audit-Last-Seq"); got != "5" {
		t.Errorf("X-Audit-Last-Seq = %q, want 5", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2: %q", len(lines), body)
	}
	for _, ln := range lines {
		var e struct {
			Seq    int    `json:"seq"`
			Action string `json:"action"`
		}
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Errorf("line %q: %v", ln, err)
		}
	}
}

func TestHandlerAuditUnavailableWithoutSource(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/audit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

func TestStartServerBindsAndServes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "help").Inc()
	srv, err := StartServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("served metrics missing counter:\n%s", body)
	}
}
