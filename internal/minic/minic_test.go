package minic

import (
	"errors"
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 42; // comment
uid_t u = 0x7FFF; /* block
comment */ string s = "a\nb";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"int", "x", "=", "42", ";", "uid_t", "u", "=", "0x7FFF", ";", "string", "s", "=", "a\nb", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[3] != TokInt || kinds[13] != TokString {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"\"unterminated",
		"\"bad\\qescape\"",
		"@",
		"/* unterminated",
		"\"new\nline\"",
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("int a;\nint b;\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[3].Line != 2 {
		t.Errorf("second decl line = %d, want 2", toks[3].Line)
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `uid_t worker = 30;

int helper(uid_t u, int n) {
    if (u == 0) {
        return n + 1;
    }
    while (n < 10) {
        n = n * 2;
    }
    return n;
}

int main() {
    int x;
    x = helper(worker, 3);
    if (x > 5 && true) {
        log("big");
    } else {
        log("small");
    }
    return 0;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 1 || len(prog.Funcs) != 2 {
		t.Fatalf("globals=%d funcs=%d", len(prog.Globals), len(prog.Funcs))
	}
	// The emitted source must reparse to the same structure.
	emitted := prog.Emit()
	prog2, err := Parse(emitted)
	if err != nil {
		t.Fatalf("reparse emitted source: %v\n%s", err, emitted)
	}
	if prog2.Emit() != emitted {
		t.Error("emit is not a fixed point")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int;",
		"int main( {",
		"int main() { return 0 }",
		"int main() { if true {} }",
		"int main() { x = ; }",
		"bogus main() {}",
		"int main() { 4294967296; }",
		"int main() { 0xZZ; }",
		"int main() { f(1,; }",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `int main() {
    int x = 1;
    if (x == 1) { return 1; }
    else if (x == 2) { return 2; }
    else { return 3; }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestPrecedence(t *testing.T) {
	prog, err := Parse("int main() { return 1 + 2 * 3; }")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	prog.Funcs[0].Body.Stmts[0].Emit(&b, 0)
	if !strings.Contains(b.String(), "(1 + (2 * 3))") {
		t.Errorf("precedence wrong: %s", b.String())
	}
}

func mustCheck(t *testing.T, src string) *CheckResult {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCheckRejectsUIDArithmetic(t *testing.T) {
	// THE §3.3 rule: only assignment and comparison on UID values.
	src := `int main() { uid_t u; u = getuid(); int x; x = u + 1; return 0; }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err == nil {
		t.Fatal("arithmetic on uid_t accepted; §3.3 rule not enforced")
	}
}

func TestCheckRejectsBadPrograms(t *testing.T) {
	cases := []string{
		`int main() { y = 1; return 0; }`,                 // undeclared
		`int main() { int x; bool x; return 0; }`,         // redeclare
		`int f() { return 0; }`,                           // no main
		`int main() { return "s"; }`,                      // return type
		`int main() { log(3); return 0; }`,                // arg type
		`int main() { log("a", "b"); return 0; }`,         // arity
		`int main() { nosuch(); return 0; }`,              // undefined fn
		`int main() { if ("s") {} return 0; }`,            // cond type
		`int main() { bool b; b = 1 && true; return 0; }`, // && types
		`int main() { uid_t u; string s; u = s; return 0; }`,
		`int uid_value() { return 0; } int main() { return 0; }`, // builtin collision
		`int main() { string s; s = "a" < "b"; return 0; }`,      // ordered strings
	}
	for _, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Check(prog); err == nil {
			t.Errorf("Check(%q) succeeded, want error", src)
		}
	}
}

func TestCheckMarksUIDConstants(t *testing.T) {
	src := `uid_t root_uid = 0;
int main() {
    uid_t u;
    u = getuid();
    if (u == 42) { return 1; }
    seteuid(99);
    return 0;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	marked := 0
	countLits(t, prog, &marked)
	if marked != 3 {
		t.Errorf("marked UID literals = %d, want 3 (global init, comparison, seteuid arg)", marked)
	}
}

func countLits(t *testing.T, prog *Program, marked *int) {
	t.Helper()
	var visitExpr func(e Expr)
	visitExpr = func(e Expr) {
		switch x := e.(type) {
		case *IntLit:
			if x.InferredType.IsUIDLike() {
				*marked++
			}
		case *UnaryExpr:
			visitExpr(x.X)
		case *BinaryExpr:
			visitExpr(x.X)
			visitExpr(x.Y)
		case *CallExpr:
			for _, a := range x.Args {
				visitExpr(a)
			}
		}
	}
	var visitStmt func(s Stmt)
	visitStmt = func(s Stmt) {
		switch st := s.(type) {
		case *VarDecl:
			if st.Init != nil {
				visitExpr(st.Init)
			}
		case *AssignStmt:
			visitExpr(st.X)
		case *ExprStmt:
			visitExpr(st.X)
		case *IfStmt:
			visitExpr(st.Cond)
			visitStmt(st.Then)
			if st.Else != nil {
				visitStmt(st.Else)
			}
		case *WhileStmt:
			visitExpr(st.Cond)
			visitStmt(st.Body)
		case *ReturnStmt:
			if st.X != nil {
				visitExpr(st.X)
			}
		case *BlockStmt:
			for _, inner := range st.Stmts {
				visitStmt(inner)
			}
		}
	}
	for _, g := range prog.Globals {
		if g.Init != nil {
			visitExpr(g.Init)
		}
	}
	for _, f := range prog.Funcs {
		visitStmt(f.Body)
	}
}

func TestSplintStyleInference(t *testing.T) {
	// An int variable that stores a UID must be promoted (§4: "if the
	// programmer did not use uid_t ... inferred using dataflow
	// analysis").
	src := `int main() {
    int sloppy;
    sloppy = getuid();
    seteuid(sloppy);
    return 0;
}
`
	res := mustCheck(t, src)
	if res.VarTypes["main.sloppy"] != TypeUID {
		t.Errorf("sloppy type = %v, want uid_t", res.VarTypes["main.sloppy"])
	}
	if len(res.InferredUIDVars) != 1 || res.InferredUIDVars[0] != "main.sloppy" {
		t.Errorf("inferred = %v", res.InferredUIDVars)
	}
}

func TestInferenceViaComparison(t *testing.T) {
	src := `int main() {
    int v = 5;
    uid_t u;
    u = getuid();
    if (v == u) { return 1; }
    return 0;
}
`
	res := mustCheck(t, src)
	if res.VarTypes["main.v"] != TypeUID {
		t.Errorf("v type = %v, want uid_t (compared with uid)", res.VarTypes["main.v"])
	}
}

func TestTaintTracking(t *testing.T) {
	src := `int check(uid_t u) {
    if (u == 0) { return 1; }
    return 0;
}
int main() {
    bool found;
    int rc;
    found = getpwnam("wwwrun");
    rc = check(getuid());
    if (rc != 0) { return 1; }
    return 0;
}
`
	res := mustCheck(t, src)
	if !res.TaintedVars["main.found"] {
		t.Error("found not tainted (getpwnam is UID-derived)")
	}
	if !res.TaintedVars["main.rc"] {
		t.Error("rc not tainted (check takes UID data)")
	}
	if !res.TaintedFuncs["check"] {
		t.Error("check not marked as returning UID-derived data")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("x", "not a program", InterpOptions{}); err == nil {
		t.Error("bad source compiled")
	}
	var syn *SyntaxError
	_, err := Compile("x", "int main() { return }", InterpOptions{})
	if !errors.As(err, &syn) {
		t.Errorf("error = %v, want SyntaxError", err)
	}
	var te *TypeError
	_, err = Compile("x", "int main() { uid_t u; u = u * u; return 0; }", InterpOptions{})
	if !errors.As(err, &te) {
		t.Errorf("error = %v, want TypeError", err)
	}
}

func TestTypeStrings(t *testing.T) {
	types := map[Type]string{
		TypeVoid: "void", TypeInt: "int", TypeBool: "bool",
		TypeString: "string", TypeUID: "uid_t", TypeGID: "gid_t", Type(99): "?",
	}
	for ty, want := range types {
		if got := ty.String(); got != want {
			t.Errorf("Type(%d) = %q, want %q", ty, got, want)
		}
	}
}
