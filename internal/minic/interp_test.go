package minic

import (
	"strings"
	"testing"

	"nvariant/internal/nvkernel"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// runPlain executes src as a single process on a fresh world.
func runPlain(t *testing.T, src string, opts InterpOptions) *nvkernel.Result {
	t.Helper()
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile("test", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nvkernel.Run(world, simnet.New(0), []sys.Program{prog})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestInterpArithmeticAndControl(t *testing.T) {
	src := `int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    int acc = 0;
    int i = 0;
    while (i < 10) {
        acc = acc + i;
        i = i + 1;
    }
    if (acc != 45) { return 1; }
    if (fib(10) != 55) { return 2; }
    if (7 % 3 != 1) { return 3; }
    if (7 / 2 != 3) { return 4; }
    if (-3 + 5 != 2) { return 5; }
    return 0;
}
`
	res := runPlain(t, src, InterpOptions{})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}

func TestInterpStringsAndLogic(t *testing.T) {
	src := `int main() {
    string a = "foo";
    string b = "bar";
    if (a + b != "foobar") { return 1; }
    if (a == b) { return 2; }
    bool t = true;
    bool f = false;
    if (t && f) { return 3; }
    if (!(t || f)) { return 4; }
    return 0;
}
`
	res := runPlain(t, src, InterpOptions{})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}

func TestInterpShortCircuit(t *testing.T) {
	// Division by zero on the right of && must not evaluate when the
	// left is false.
	src := `int main() {
    int zero = 0;
    bool ok = false;
    if (ok && (1 / zero == 1)) { return 1; }
    return 0;
}
`
	res := runPlain(t, src, InterpOptions{})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v (short-circuit broken)", res.Status, res.Alarm)
	}
}

func TestInterpRuntimeErrors(t *testing.T) {
	cases := []string{
		`int main() { int z = 0; return 1 / z; }`,
		`int main() { int z = 0; return 1 % z; }`,
	}
	for _, src := range cases {
		res := runPlain(t, src, InterpOptions{})
		if res.Alarm == nil {
			t.Errorf("runtime error in %q not surfaced as variant fault", src)
		}
	}
}

func TestInterpStepBudget(t *testing.T) {
	src := `int main() { while (true) { } return 0; }`
	res := runPlain(t, src, InterpOptions{MaxSteps: 1000})
	if res.Alarm == nil || res.Alarm.Reason != nvkernel.ReasonVariantFault {
		t.Fatalf("infinite loop alarm = %v, want variant-fault", res.Alarm)
	}
}

func TestInterpSyscallsPlain(t *testing.T) {
	// The full unixd flow on a plain kernel: lookups, privilege drop,
	// logging.
	src := `int main() {
    bool found;
    uid_t u;
    found = getpwnam("wwwrun");
    if (!found) { return 1; }
    u = pw_uid();
    if (u != 30) { return 2; }
    if (seteuid(u) != 0) { return 3; }
    if (geteuid() != u) { return 4; }
    if (seteuid(0) != 0) { return 5; }
    found = getgrnam("www");
    if (!found) { return 6; }
    if (gr_gid() != 8) { return 7; }
    if (!getpwuid_has(u)) { return 8; }
    if (getpwuid_has(4242)) { return 9; }
    log("done");
    return 0;
}
`
	res := runPlain(t, src, InterpOptions{})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
	if !strings.Contains(string(res.Stderr), "done") {
		t.Errorf("stderr = %q", res.Stderr)
	}
}

func TestInterpGetpwnamMissingUser(t *testing.T) {
	src := `int main() {
    bool found;
    found = getpwnam("mallory");
    if (found) { return 1; }
    if (pw_uid() != 0) { return 2; }
    return 0;
}
`
	res := runPlain(t, src, InterpOptions{})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}

func TestInterpExitBuiltin(t *testing.T) {
	src := `int main() { exit(7); return 0; }`
	res := runPlain(t, src, InterpOptions{})
	if !res.Clean || res.Status != 7 {
		t.Fatalf("status = %d, want 7", res.Status)
	}
}

func TestInterpLogUID(t *testing.T) {
	src := `int main() {
    uid_t u;
    u = getuid();
    log_uid("current", u);
    return 0;
}
`
	res := runPlain(t, src, InterpOptions{})
	if !res.Clean {
		t.Fatalf("alarm: %v", res.Alarm)
	}
	if !strings.Contains(string(res.Stderr), "current uid=0") {
		t.Errorf("stderr = %q", res.Stderr)
	}
}

func TestInterpCorruption(t *testing.T) {
	// The attacker's corruption primitive: after assignment, worker's
	// raw bits become 0 — and the unprotected program escalates.
	src := `int main() {
    uid_t worker;
    worker = pw_lookup();
    if (seteuid(worker) != 0) { return 1; }
    if (geteuid() == 0) { return 42; }
    return 0;
}
uid_t pw_lookup() {
    bool found;
    found = getpwnam("wwwrun");
    if (!found) { exit(9); }
    return pw_uid();
}
`
	res := runPlain(t, src, InterpOptions{
		CorruptOnAssign: map[string]word.Word{"worker": 0},
	})
	if !res.Clean || res.Status != 42 {
		t.Fatalf("status = %d, alarm = %v; corruption should escalate on plain kernel", res.Status, res.Alarm)
	}
}

func TestInterpDetectionBuiltins(t *testing.T) {
	src := `int main() {
    uid_t u;
    u = getuid();
    u = uid_value(u);
    if (!cond_chk(true)) { return 1; }
    if (!cc_eq(u, u)) { return 2; }
    if (cc_neq(u, u)) { return 3; }
    if (cc_lt(u, u)) { return 4; }
    if (!cc_leq(u, u)) { return 5; }
    if (cc_gt(u, u)) { return 6; }
    if (!cc_geq(u, u)) { return 7; }
    return 0;
}
`
	res := runPlain(t, src, InterpOptions{})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}

func TestInterpUIDComparisonLocal(t *testing.T) {
	src := `int main() {
    uid_t small;
    uid_t big;
    small = 3;
    big = 1000;
    if (small >= big) { return 1; }
    if (!(small < big)) { return 2; }
    return 0;
}
`
	res := runPlain(t, src, InterpOptions{})
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Value{Type: TypeInt, I: 5}, "5"},
		{Value{Type: TypeBool, B: true}, "true"},
		{Value{Type: TypeString, S: "x"}, `"x"`},
		{Value{Type: TypeUID, W: 0x1E}, "0x0000001E"},
		{Value{Type: TypeVoid}, "void"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestTwoIdenticalMinicVariants(t *testing.T) {
	// Normal equivalence for the interpreter itself: two identical
	// minic variants under the monitor, no diversity.
	world, err := vos.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	src := `int main() {
    bool found;
    found = getpwnam("alice");
    if (!found) { return 1; }
    log("hello from minic");
    return 0;
}
`
	p1, err := Compile("v0", src, InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile("v1", src, InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nvkernel.Run(world, simnet.New(0), []sys.Program{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status = %d, alarm = %v", res.Status, res.Alarm)
	}
}
