package minic

import "fmt"

// Builtin describes a library/syscall function visible to minic
// programs.
type Builtin struct {
	// Ret is the return type.
	Ret Type
	// Params are the parameter types.
	Params []Type
	// UIDDerived marks builtins whose (non-UID-typed) result is
	// derived from UID data — the taint seeds for cond_chk insertion
	// (getpwnam's found flag, seteuid's status, …).
	UIDDerived bool
	// Kernel marks kernel syscalls: their UID arguments are already
	// checked by the monitor wrappers, so the transformer does not
	// wrap them in uid_value.
	Kernel bool
}

// Builtins returns the standard library of the language (fixed, so
// programs and the transformer agree on signatures).
func Builtins() map[string]Builtin {
	return map[string]Builtin{
		// Kernel credential syscalls (§3.5 target interface).
		"getuid":  {Ret: TypeUID, Kernel: true},
		"geteuid": {Ret: TypeUID, Kernel: true},
		"getgid":  {Ret: TypeGID, Kernel: true},
		"getegid": {Ret: TypeGID, Kernel: true},
		"setuid":  {Ret: TypeInt, Params: []Type{TypeUID}, Kernel: true, UIDDerived: true},
		"seteuid": {Ret: TypeInt, Params: []Type{TypeUID}, Kernel: true, UIDDerived: true},
		"setgid":  {Ret: TypeInt, Params: []Type{TypeGID}, Kernel: true, UIDDerived: true},
		"setegid": {Ret: TypeInt, Params: []Type{TypeGID}, Kernel: true, UIDDerived: true},

		// Library (libc-level) lookups: results derive from UID data.
		"getpwnam":     {Ret: TypeBool, Params: []Type{TypeString}, UIDDerived: true},
		"pw_uid":       {Ret: TypeUID, UIDDerived: true},
		"pw_gid":       {Ret: TypeGID, UIDDerived: true},
		"getgrnam":     {Ret: TypeBool, Params: []Type{TypeString}, UIDDerived: true},
		"gr_gid":       {Ret: TypeGID, UIDDerived: true},
		"getpwuid_has": {Ret: TypeBool, Params: []Type{TypeUID}, UIDDerived: true},

		// Logging and termination.
		"log":     {Ret: TypeVoid, Params: []Type{TypeString}},
		"log_uid": {Ret: TypeVoid, Params: []Type{TypeString, TypeUID}},
		"exit":    {Ret: TypeVoid, Params: []Type{TypeInt}, Kernel: true},

		// Table 2 detection syscalls (inserted by the transformer;
		// hand-written code may also call them).
		"uid_value": {Ret: TypeUID, Params: []Type{TypeUID}, Kernel: true},
		"cond_chk":  {Ret: TypeBool, Params: []Type{TypeBool}, Kernel: true},
		"cc_eq":     {Ret: TypeBool, Params: []Type{TypeUID, TypeUID}, Kernel: true},
		"cc_neq":    {Ret: TypeBool, Params: []Type{TypeUID, TypeUID}, Kernel: true},
		"cc_lt":     {Ret: TypeBool, Params: []Type{TypeUID, TypeUID}, Kernel: true},
		"cc_leq":    {Ret: TypeBool, Params: []Type{TypeUID, TypeUID}, Kernel: true},
		"cc_gt":     {Ret: TypeBool, Params: []Type{TypeUID, TypeUID}, Kernel: true},
		"cc_geq":    {Ret: TypeBool, Params: []Type{TypeUID, TypeUID}, Kernel: true},
	}
}

// TypeError reports a semantic error.
type TypeError struct {
	// Line is the 1-based source line.
	Line int
	// Msg describes the problem.
	Msg string
}

// Error implements the error interface.
func (e *TypeError) Error() string { return fmt.Sprintf("minic:%d: %s", e.Line, e.Msg) }

// CheckResult carries the checker's analysis products used by the
// transformer.
type CheckResult struct {
	// VarTypes maps "func.var" (or "..var" for globals) to the
	// resolved type, after UID inference.
	VarTypes map[string]Type
	// InferredUIDVars lists variables declared int but inferred to
	// hold UID data (the Splint-style analysis of §4).
	InferredUIDVars []string
	// TaintedVars is the set of variables (qualified names) holding
	// UID-derived (but not UID-typed) data — the cond_chk candidates.
	TaintedVars map[string]bool
	// TaintedFuncs is the set of user functions whose return value is
	// UID-derived (interprocedural taint).
	TaintedFuncs map[string]bool
}

// Check typechecks the program, enforcing the §3.3 UID usage rules
// (UID values admit only assignment and comparison), inferring uid_t
// for int variables that carry UID data, and computing the UID-derived
// taint set.
func Check(prog *Program) (*CheckResult, error) {
	c := &checker{
		prog:     prog,
		builtins: Builtins(),
		res: &CheckResult{
			VarTypes:     make(map[string]Type),
			TaintedVars:  make(map[string]bool),
			TaintedFuncs: make(map[string]bool),
		},
		varTypes: make(map[string]Type),
	}
	if err := c.run(); err != nil {
		return nil, err
	}
	return c.res, nil
}

type checker struct {
	prog     *Program
	builtins map[string]Builtin
	res      *CheckResult
	varTypes map[string]Type // qualified name → declared/inferred type
	curFunc  *FuncDecl
}

// qual returns the qualified variable name for the current scope.
// Globals are qualified with an empty function name; minic has no
// shadowing (redeclaration is an error), which keeps the analysis
// simple and matches the paper's "well-typed C program" assumption.
func (c *checker) qual(name string) string {
	if c.curFunc != nil {
		if _, ok := c.varTypes[c.curFunc.Name+"."+name]; ok {
			return c.curFunc.Name + "." + name
		}
	}
	return "." + name
}

func (c *checker) run() error {
	// Collect globals.
	for _, g := range c.prog.Globals {
		key := "." + g.Name
		if _, dup := c.varTypes[key]; dup {
			return &TypeError{Line: g.Line, Msg: fmt.Sprintf("redeclaration of global %q", g.Name)}
		}
		c.varTypes[key] = g.Type
	}
	// Collect function signatures; reject builtin collisions.
	seen := map[string]bool{}
	for _, f := range c.prog.Funcs {
		if _, isB := c.builtins[f.Name]; isB {
			return &TypeError{Line: f.Line, Msg: fmt.Sprintf("function %q collides with a builtin", f.Name)}
		}
		if seen[f.Name] {
			return &TypeError{Line: f.Line, Msg: fmt.Sprintf("redeclaration of function %q", f.Name)}
		}
		seen[f.Name] = true
	}
	if _, ok := c.prog.Func("main"); !ok {
		return &TypeError{Line: 1, Msg: "no main function"}
	}

	// Declare locals and parameters (two passes are unnecessary: minic
	// requires declaration before use, enforced during body checks).
	for _, f := range c.prog.Funcs {
		c.curFunc = f
		for _, p := range f.Params {
			key := f.Name + "." + p.Name
			if _, dup := c.varTypes[key]; dup {
				return &TypeError{Line: f.Line, Msg: fmt.Sprintf("duplicate parameter %q", p.Name)}
			}
			c.varTypes[key] = p.Type
		}
		if err := c.declareLocals(f.Body, f); err != nil {
			return err
		}
	}

	// UID inference (Splint-style, §4): promote int variables assigned
	// from or compared with UID-typed expressions. Iterate to a fixed
	// point since promotion can cascade.
	for {
		changed, err := c.inferencePass()
		if err != nil {
			return err
		}
		if !changed {
			break
		}
	}

	// Full type check with final types, computing taint. Global
	// initializers are checked first (against the global scope only).
	c.curFunc = nil
	for _, g := range c.prog.Globals {
		if g.Init != nil {
			if err := c.checkAssignTo(c.varTypes["."+g.Name], g.Init, g.Line); err != nil {
				return err
			}
		}
	}
	for _, f := range c.prog.Funcs {
		c.curFunc = f
		if err := c.checkBlock(f.Body); err != nil {
			return err
		}
	}

	// Seed interprocedural taint: a function that receives UID data as
	// a parameter produces UID-influenced results (control dependence
	// is approximated conservatively).
	for _, f := range c.prog.Funcs {
		for _, p := range f.Params {
			if p.Type.IsUIDLike() {
				c.res.TaintedFuncs[f.Name] = true
				break
			}
		}
	}

	// Taint propagation to fixed point (flow-insensitive).
	for {
		changed, err := c.taintPass()
		if err != nil {
			return err
		}
		if !changed {
			break
		}
	}

	for k, v := range c.varTypes {
		c.res.VarTypes[k] = v
	}
	return nil
}

// declareLocals records every local declaration's type.
func (c *checker) declareLocals(b *BlockStmt, f *FuncDecl) error {
	for _, st := range b.Stmts {
		switch s := st.(type) {
		case *VarDecl:
			key := f.Name + "." + s.Name
			if _, dup := c.varTypes[key]; dup {
				return &TypeError{Line: s.Line, Msg: fmt.Sprintf("redeclaration of %q", s.Name)}
			}
			c.varTypes[key] = s.Type
		case *IfStmt:
			if err := c.declareLocals(s.Then, f); err != nil {
				return err
			}
			if s.Else != nil {
				if err := c.declareLocals(s.Else, f); err != nil {
					return err
				}
			}
		case *WhileStmt:
			if err := c.declareLocals(s.Body, f); err != nil {
				return err
			}
		case *BlockStmt:
			if err := c.declareLocals(s, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// typeOf computes an expression's type with the current var types.
// It does not enforce operand legality (checkExpr does).
func (c *checker) typeOf(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.InferredType != 0 {
			return x.InferredType, nil
		}
		return TypeInt, nil
	case *BoolLit:
		return TypeBool, nil
	case *StrLit:
		return TypeString, nil
	case *VarRef:
		t, ok := c.varTypes[c.qual(x.Name)]
		if !ok {
			return 0, &TypeError{Line: x.Line, Msg: fmt.Sprintf("undeclared variable %q", x.Name)}
		}
		return t, nil
	case *CallExpr:
		if b, ok := c.builtins[x.Name]; ok {
			return b.Ret, nil
		}
		if f, ok := c.prog.Func(x.Name); ok {
			return f.Ret, nil
		}
		return 0, &TypeError{Line: x.Line, Msg: fmt.Sprintf("undefined function %q", x.Name)}
	case *UnaryExpr:
		if x.Op == "!" {
			return TypeBool, nil
		}
		return TypeInt, nil
	case *BinaryExpr:
		switch x.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return TypeBool, nil
		default:
			return TypeInt, nil
		}
	default:
		return 0, fmt.Errorf("minic: unknown expression %T", e)
	}
}

// inferencePass promotes int variables that interact with UID data.
func (c *checker) inferencePass() (bool, error) {
	changed := false
	var visitExpr func(e Expr) error
	promote := func(name string, line int) {
		key := c.qual(name)
		if c.varTypes[key] == TypeInt {
			c.varTypes[key] = TypeUID
			c.res.InferredUIDVars = append(c.res.InferredUIDVars, key)
			changed = true
		}
	}
	visitExpr = func(e Expr) error {
		switch x := e.(type) {
		case *BinaryExpr:
			if err := visitExpr(x.X); err != nil {
				return err
			}
			if err := visitExpr(x.Y); err != nil {
				return err
			}
			// var compared with uid expr → promote.
			if isComparison(x.Op) {
				tx, errX := c.typeOf(x.X)
				ty, errY := c.typeOf(x.Y)
				if errX != nil || errY != nil {
					return nil // reported in checkExpr
				}
				if tx.IsUIDLike() {
					if v, ok := x.Y.(*VarRef); ok {
						promote(v.Name, v.Line)
					}
				}
				if ty.IsUIDLike() {
					if v, ok := x.X.(*VarRef); ok {
						promote(v.Name, v.Line)
					}
				}
			}
		case *UnaryExpr:
			return visitExpr(x.X)
		case *CallExpr:
			for _, a := range x.Args {
				if err := visitExpr(a); err != nil {
					return err
				}
			}
			// var passed as uid_t parameter → promote.
			params := c.paramTypes(x.Name)
			for i, a := range x.Args {
				if i < len(params) && params[i].IsUIDLike() {
					if v, ok := a.(*VarRef); ok {
						promote(v.Name, v.Line)
					}
				}
			}
		}
		return nil
	}
	var visitStmt func(s Stmt) error
	visitStmt = func(s Stmt) error {
		switch st := s.(type) {
		case *VarDecl:
			if st.Init != nil {
				if err := visitExpr(st.Init); err != nil {
					return err
				}
				t, err := c.typeOf(st.Init)
				if err == nil && t.IsUIDLike() {
					promote(st.Name, st.Line)
				}
			}
		case *AssignStmt:
			if err := visitExpr(st.X); err != nil {
				return err
			}
			t, err := c.typeOf(st.X)
			if err == nil && t.IsUIDLike() {
				promote(st.Name, st.Line)
			}
		case *ExprStmt:
			return visitExpr(st.X)
		case *IfStmt:
			if err := visitExpr(st.Cond); err != nil {
				return err
			}
			if err := visitStmt(st.Then); err != nil {
				return err
			}
			if st.Else != nil {
				return visitStmt(st.Else)
			}
		case *WhileStmt:
			if err := visitExpr(st.Cond); err != nil {
				return err
			}
			return visitStmt(st.Body)
		case *ReturnStmt:
			if st.X != nil {
				return visitExpr(st.X)
			}
		case *BlockStmt:
			for _, inner := range st.Stmts {
				if err := visitStmt(inner); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, f := range c.prog.Funcs {
		c.curFunc = f
		if err := visitStmt(f.Body); err != nil {
			return changed, err
		}
	}
	return changed, nil
}

// paramTypes returns the parameter types of a function or builtin.
func (c *checker) paramTypes(name string) []Type {
	if b, ok := c.builtins[name]; ok {
		return b.Params
	}
	if f, ok := c.prog.Func(name); ok {
		types := make([]Type, len(f.Params))
		for i, p := range f.Params {
			types[i] = p.Type
		}
		return types
	}
	return nil
}

func isComparison(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	default:
		return false
	}
}

// assignable reports whether a value of type from may be stored in
// type to. Int literals flow into uid_t/gid_t (C-style constants), and
// uid_t/gid_t interconvert (in C both are integer typedefs, and the
// paper uses "UID" for both kinds of identification data, §3 — the
// detection calls like uid_value accept either).
func assignable(to, from Type) bool {
	if to == from {
		return true
	}
	if to.IsUIDLike() && (from == TypeInt || from.IsUIDLike()) {
		return true // constant initialization; the checker marks the literal
	}
	return false
}

// checkBlock type-checks statements.
func (c *checker) checkBlock(b *BlockStmt) error {
	for _, st := range b.Stmts {
		if err := c.checkStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *VarDecl:
		if st.Init == nil {
			return nil
		}
		return c.checkAssignTo(c.varTypes[c.qual(st.Name)], st.Init, st.Line)
	case *AssignStmt:
		t, ok := c.varTypes[c.qual(st.Name)]
		if !ok {
			return &TypeError{Line: st.Line, Msg: fmt.Sprintf("undeclared variable %q", st.Name)}
		}
		return c.checkAssignTo(t, st.X, st.Line)
	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		return err
	case *IfStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		return c.checkBlock(st.Body)
	case *ReturnStmt:
		want := c.curFunc.Ret
		if st.X == nil {
			if want != TypeVoid {
				return &TypeError{Line: st.Line, Msg: fmt.Sprintf("return needs a %s value", want)}
			}
			return nil
		}
		return c.checkAssignTo(want, st.X, st.Line)
	case *BlockStmt:
		return c.checkBlock(st)
	default:
		return fmt.Errorf("minic: unknown statement %T", s)
	}
}

// checkAssignTo checks expr against a target type, marking UID-context
// int literals for the transformer.
func (c *checker) checkAssignTo(target Type, e Expr, line int) error {
	got, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if lit, ok := e.(*IntLit); ok && target.IsUIDLike() {
		lit.InferredType = target
		got = target
	}
	if !assignable(target, got) {
		return &TypeError{Line: line, Msg: fmt.Sprintf("cannot assign %s to %s", got, target)}
	}
	return nil
}

func (c *checker) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	// C-style: int and uid_t conditions are allowed (implicit != 0);
	// the transformer makes the implicit comparison explicit (§3.3).
	if t != TypeBool && t != TypeInt && !t.IsUIDLike() {
		return &TypeError{Line: lineOf(e), Msg: fmt.Sprintf("condition has type %s", t)}
	}
	return nil
}

// checkExpr type-checks an expression, enforcing the §3.3 rule that
// UID values admit only assignment and comparison.
func (c *checker) checkExpr(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit, *BoolLit, *StrLit:
		return c.typeOf(e)
	case *VarRef:
		return c.typeOf(e)
	case *UnaryExpr:
		t, err := c.checkExpr(x.X)
		if err != nil {
			return 0, err
		}
		if x.Op == "!" {
			if t != TypeBool && t != TypeInt && !t.IsUIDLike() {
				return 0, &TypeError{Line: x.Line, Msg: fmt.Sprintf("operator ! on %s", t)}
			}
			return TypeBool, nil
		}
		if t != TypeInt {
			return 0, &TypeError{Line: x.Line, Msg: fmt.Sprintf("operator %s on %s", x.Op, t)}
		}
		return TypeInt, nil
	case *BinaryExpr:
		return c.checkBinary(x)
	case *CallExpr:
		return c.checkCall(x)
	default:
		return 0, fmt.Errorf("minic: unknown expression %T", e)
	}
}

func (c *checker) checkBinary(x *BinaryExpr) (Type, error) {
	tx, err := c.checkExpr(x.X)
	if err != nil {
		return 0, err
	}
	ty, err := c.checkExpr(x.Y)
	if err != nil {
		return 0, err
	}
	// Mark literals compared against UID expressions.
	if tx.IsUIDLike() {
		if lit, ok := x.Y.(*IntLit); ok {
			lit.InferredType = tx
			ty = tx
		}
	}
	if ty.IsUIDLike() {
		if lit, ok := x.X.(*IntLit); ok {
			lit.InferredType = ty
			tx = ty
		}
	}
	switch {
	case isComparison(x.Op):
		if tx != ty {
			return 0, &TypeError{Line: x.Line, Msg: fmt.Sprintf("comparison of %s and %s", tx, ty)}
		}
		if tx == TypeString && x.Op != "==" && x.Op != "!=" {
			return 0, &TypeError{Line: x.Line, Msg: "ordered comparison of strings"}
		}
		return TypeBool, nil
	case x.Op == "&&" || x.Op == "||":
		if tx != TypeBool || ty != TypeBool {
			return 0, &TypeError{Line: x.Line, Msg: fmt.Sprintf("%s needs bool operands", x.Op)}
		}
		return TypeBool, nil
	default: // arithmetic
		// THE §3.3 RULE: arithmetic on UID values is rejected, which
		// is what makes the reexpression semantics-preserving.
		if tx.IsUIDLike() || ty.IsUIDLike() {
			return 0, &TypeError{Line: x.Line,
				Msg: fmt.Sprintf("arithmetic %q on UID data (only assignment and comparison are allowed, §3.3)", x.Op)}
		}
		if x.Op == "+" && tx == TypeString && ty == TypeString {
			return TypeString, nil
		}
		if tx != TypeInt || ty != TypeInt {
			return 0, &TypeError{Line: x.Line, Msg: fmt.Sprintf("operator %s on %s and %s", x.Op, tx, ty)}
		}
		return TypeInt, nil
	}
}

func (c *checker) checkCall(x *CallExpr) (Type, error) {
	params := c.paramTypes(x.Name)
	var ret Type
	if b, ok := c.builtins[x.Name]; ok {
		ret = b.Ret
	} else if f, ok := c.prog.Func(x.Name); ok {
		ret = f.Ret
	} else {
		return 0, &TypeError{Line: x.Line, Msg: fmt.Sprintf("undefined function %q", x.Name)}
	}
	if len(x.Args) != len(params) {
		return 0, &TypeError{Line: x.Line,
			Msg: fmt.Sprintf("%s takes %d arguments, got %d", x.Name, len(params), len(x.Args))}
	}
	for i, a := range x.Args {
		got, err := c.checkExpr(a)
		if err != nil {
			return 0, err
		}
		if lit, ok := a.(*IntLit); ok && params[i].IsUIDLike() {
			lit.InferredType = params[i]
			got = params[i]
		}
		if !assignable(params[i], got) {
			return 0, &TypeError{Line: x.Line,
				Msg: fmt.Sprintf("argument %d of %s: cannot use %s as %s", i+1, x.Name, got, params[i])}
		}
	}
	return ret, nil
}

// taintPass propagates UID-derivedness into non-UID variables.
func (c *checker) taintPass() (bool, error) {
	changed := false
	mark := func(key string) {
		if !c.res.TaintedVars[key] {
			c.res.TaintedVars[key] = true
			changed = true
		}
	}
	var tainted func(e Expr) bool
	tainted = func(e Expr) bool {
		switch x := e.(type) {
		case *VarRef:
			key := c.qual(x.Name)
			if t, ok := c.varTypes[key]; ok && t.IsUIDLike() {
				return true
			}
			return c.res.TaintedVars[key]
		case *CallExpr:
			if b, ok := c.builtins[x.Name]; ok && (b.UIDDerived || b.Ret.IsUIDLike()) {
				return true
			}
			if c.res.TaintedFuncs[x.Name] {
				return true
			}
			if _, ok := c.builtins[x.Name]; !ok {
				if f, defined := c.prog.Func(x.Name); defined && f.Ret.IsUIDLike() {
					return true
				}
			}
			for _, a := range x.Args {
				if tainted(a) {
					return true
				}
			}
			return false
		case *UnaryExpr:
			return tainted(x.X)
		case *BinaryExpr:
			return tainted(x.X) || tainted(x.Y)
		default:
			return false
		}
	}
	var visit func(s Stmt)
	visit = func(s Stmt) {
		switch st := s.(type) {
		case *VarDecl:
			if st.Init != nil && tainted(st.Init) {
				if !c.varTypes[c.qual(st.Name)].IsUIDLike() {
					mark(c.qual(st.Name))
				}
			}
		case *AssignStmt:
			if tainted(st.X) {
				if !c.varTypes[c.qual(st.Name)].IsUIDLike() {
					mark(c.qual(st.Name))
				}
			}
		case *ReturnStmt:
			// Interprocedural: a function returning UID-derived data
			// taints its callers.
			if st.X != nil && tainted(st.X) && !c.res.TaintedFuncs[c.curFunc.Name] {
				c.res.TaintedFuncs[c.curFunc.Name] = true
				changed = true
			}
		case *IfStmt:
			visit(st.Then)
			if st.Else != nil {
				visit(st.Else)
			}
		case *WhileStmt:
			visit(st.Body)
		case *BlockStmt:
			for _, inner := range st.Stmts {
				visit(inner)
			}
		}
	}
	for _, f := range c.prog.Funcs {
		c.curFunc = f
		visit(f.Body)
	}
	return changed, nil
}

// Tainted reports whether an expression is UID-derived under the
// completed analysis (used by the transformer for cond_chk decisions).
func (r *CheckResult) Tainted(prog *Program, funcName string, e Expr) bool {
	t := &taintQuery{res: r, prog: prog, fn: funcName, builtins: Builtins()}
	return t.tainted(e)
}

type taintQuery struct {
	res      *CheckResult
	prog     *Program
	fn       string
	builtins map[string]Builtin
}

func (t *taintQuery) qual(name string) string {
	if _, ok := t.res.VarTypes[t.fn+"."+name]; ok {
		return t.fn + "." + name
	}
	return "." + name
}

func (t *taintQuery) tainted(e Expr) bool {
	switch x := e.(type) {
	case *VarRef:
		key := t.qual(x.Name)
		if typ, ok := t.res.VarTypes[key]; ok && typ.IsUIDLike() {
			return true
		}
		return t.res.TaintedVars[key]
	case *CallExpr:
		if b, ok := t.builtins[x.Name]; ok && (b.UIDDerived || b.Ret.IsUIDLike()) {
			return true
		}
		if t.res.TaintedFuncs[x.Name] {
			return true
		}
		if _, ok := t.builtins[x.Name]; !ok {
			if f, defined := t.prog.Func(x.Name); defined && f.Ret.IsUIDLike() {
				return true
			}
		}
		for _, a := range x.Args {
			if t.tainted(a) {
				return true
			}
		}
		return false
	case *UnaryExpr:
		return t.tainted(x.X)
	case *BinaryExpr:
		return t.tainted(x.X) || t.tainted(x.Y)
	case *IntLit:
		return x.InferredType != 0 && x.InferredType.IsUIDLike()
	default:
		return false
	}
}

// TypeOfExpr resolves an expression's type under the completed
// analysis (transformer helper).
func (r *CheckResult) TypeOfExpr(prog *Program, funcName string, e Expr) Type {
	t := &taintQuery{res: r, prog: prog, fn: funcName, builtins: Builtins()}
	return t.typeOf(e)
}

func (t *taintQuery) typeOf(e Expr) Type {
	switch x := e.(type) {
	case *IntLit:
		if x.InferredType != 0 {
			return x.InferredType
		}
		return TypeInt
	case *BoolLit:
		return TypeBool
	case *StrLit:
		return TypeString
	case *VarRef:
		return t.res.VarTypes[t.qual(x.Name)]
	case *CallExpr:
		if b, ok := t.builtins[x.Name]; ok {
			return b.Ret
		}
		if f, ok := t.prog.Func(x.Name); ok {
			return f.Ret
		}
		return 0
	case *UnaryExpr:
		if x.Op == "!" {
			return TypeBool
		}
		return TypeInt
	case *BinaryExpr:
		switch x.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return TypeBool
		default:
			return TypeInt
		}
	default:
		return 0
	}
}

func lineOf(e Expr) int {
	switch x := e.(type) {
	case *IntLit:
		return x.Line
	case *BoolLit:
		return x.Line
	case *StrLit:
		return x.Line
	case *VarRef:
		return x.Line
	case *CallExpr:
		return x.Line
	case *UnaryExpr:
		return x.Line
	case *BinaryExpr:
		return x.Line
	default:
		return 0
	}
}
