// Package minic implements a small C-like language standing in for the
// C source of the paper's case study (§3.3, §4): a lexer, parser, type
// checker (with first-class uid_t/gid_t types and Splint-style UID
// inference), and a tree-walking interpreter bound to the simulated
// syscall interface — so programs written in minic can run as variants
// under the N-variant kernel, before and after the automated UID
// transformation implemented in package transform.
//
// The type checker enforces the paper's central §3.3 assumption
// statically: only assignment and comparison operations may be applied
// to UID values (arithmetic on uid_t is a type error).
package minic

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota + 1
	TokIdent
	TokInt
	TokString
	TokKeyword
	TokPunct
)

// String names the kind.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokPunct:
		return "punctuation"
	default:
		return "unknown"
	}
}

// Token is one lexical token.
type Token struct {
	// Kind classifies the token.
	Kind TokenKind
	// Text is the raw lexeme (decoded for strings).
	Text string
	// Line is the 1-based source line.
	Line int
}

// keywords of the language. The C type names uid_t and gid_t are
// keywords so the type checker can track UID data precisely.
var keywords = map[string]bool{
	"int": true, "uid_t": true, "gid_t": true, "bool": true,
	"string": true, "void": true,
	"if": true, "else": true, "while": true, "return": true,
	"true": true, "false": true,
}

// SyntaxError reports a lexing or parsing failure with its line.
type SyntaxError struct {
	// Line is the 1-based source line.
	Line int
	// Msg describes the problem.
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minic:%d: %s", e.Line, e.Msg)
}

// Lex tokenizes source text.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, &SyntaxError{Line: line, Msg: "unterminated block comment"}
			}
			i += 2
		case isDigit(c):
			j := i
			for j < len(src) && (isDigit(src[j]) || src[j] == 'x' || src[j] == 'X' || isHex(src[j])) {
				j++
			}
			toks = append(toks, Token{Kind: TokInt, Text: src[i:j], Line: line})
			i = j
		case isAlpha(c):
			j := i
			for j < len(src) && (isAlpha(src[j]) || isDigit(src[j])) {
				j++
			}
			text := src[i:j]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: line})
			i = j
		case c == '"':
			j := i + 1
			var out []byte
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, &SyntaxError{Line: line, Msg: "newline in string literal"}
				}
				if src[j] == '\\' && j+1 < len(src) {
					switch src[j+1] {
					case 'n':
						out = append(out, '\n')
					case 't':
						out = append(out, '\t')
					case '"':
						out = append(out, '"')
					case '\\':
						out = append(out, '\\')
					default:
						return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("bad escape \\%c", src[j+1])}
					}
					j += 2
					continue
				}
				out = append(out, src[j])
				j++
			}
			if j >= len(src) {
				return nil, &SyntaxError{Line: line, Msg: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokString, Text: string(out), Line: line})
			i = j + 1
		default:
			if p := lexPunct(src[i:]); p != "" {
				toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line})
				i += len(p)
				continue
			}
			return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Text: "", Line: line})
	return toks, nil
}

// twoCharPuncts in match order.
var twoCharPuncts = []string{"==", "!=", "<=", ">=", "&&", "||"}

// oneCharPuncts accepted.
const oneCharPuncts = "+-*/%<>!=(){};,"

func lexPunct(s string) string {
	for _, p := range twoCharPuncts {
		if len(s) >= 2 && s[:2] == p {
			return p
		}
	}
	for i := 0; i < len(oneCharPuncts); i++ {
		if s[0] == oneCharPuncts[i] {
			return s[:1]
		}
	}
	return ""
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
