package minic

import (
	"fmt"
	"strings"
)

// Type is a minic type.
type Type int

// Types.
const (
	TypeVoid Type = iota + 1
	TypeInt
	TypeBool
	TypeString
	TypeUID
	TypeGID
)

// String names the type as written in source.
func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypeString:
		return "string"
	case TypeUID:
		return "uid_t"
	case TypeGID:
		return "gid_t"
	default:
		return "?"
	}
}

// IsUIDLike reports whether the type carries UID/GID data (the paper
// uses "UID" for both, §3).
func (t Type) IsUIDLike() bool { return t == TypeUID || t == TypeGID }

// typeFromKeyword maps a type keyword.
func typeFromKeyword(kw string) (Type, bool) {
	switch kw {
	case "void":
		return TypeVoid, true
	case "int":
		return TypeInt, true
	case "bool":
		return TypeBool, true
	case "string":
		return TypeString, true
	case "uid_t":
		return TypeUID, true
	case "gid_t":
		return TypeGID, true
	default:
		return 0, false
	}
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	// Emit renders the expression as source.
	Emit(b *strings.Builder)
}

// IntLit is an integer literal. InferredType records the checker's
// view (TypeUID when the literal is used in a UID context — the
// transformer rewrites exactly those).
type IntLit struct {
	Value        uint32
	Line         int
	InferredType Type
}

// BoolLit is true/false.
type BoolLit struct {
	Value bool
	Line  int
}

// StrLit is a string literal.
type StrLit struct {
	Value string
	Line  int
}

// VarRef references a variable.
type VarRef struct {
	Name string
	Line int
}

// CallExpr calls a function or builtin.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Line int
}

func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*StrLit) exprNode()     {}
func (*VarRef) exprNode()     {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	// Emit renders the statement as indented source.
	Emit(b *strings.Builder, indent int)
}

// VarDecl declares a variable, optionally initialized.
type VarDecl struct {
	Type Type
	Name string
	Init Expr // may be nil
	Line int
}

// AssignStmt assigns to a variable.
type AssignStmt struct {
	Name string
	X    Expr
	Line int
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
	Line int
}

// WhileStmt is a loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	X    Expr // may be nil for void
	Line int
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

func (*VarDecl) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*BlockStmt) stmtNode()  {}

// Param is a function parameter.
type Param struct {
	Type Type
	Name string
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Ret    Type
	Name   string
	Params []Param
	Body   *BlockStmt
	Line   int
}

// Program is a parsed compilation unit.
type Program struct {
	// Globals are top-level variable declarations in order.
	Globals []*VarDecl
	// Funcs are function definitions in order.
	Funcs []*FuncDecl
}

// Func finds a function by name.
func (p *Program) Func(name string) (*FuncDecl, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// --- Source emission (used to show transformed variants) -------------

// Emit renders the program as source text.
func (p *Program) Emit() string {
	var b strings.Builder
	for _, g := range p.Globals {
		g.Emit(&b, 0)
	}
	if len(p.Globals) > 0 {
		b.WriteString("\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		f.emit(&b)
	}
	return b.String()
}

func (f *FuncDecl) emit(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s(", f.Ret, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", p.Type, p.Name)
	}
	b.WriteString(") ")
	f.Body.Emit(b, 0)
	b.WriteString("\n")
}

func ind(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

// Emit implements Stmt.
func (s *VarDecl) Emit(b *strings.Builder, indent int) {
	ind(b, indent)
	fmt.Fprintf(b, "%s %s", s.Type, s.Name)
	if s.Init != nil {
		b.WriteString(" = ")
		s.Init.Emit(b)
	}
	b.WriteString(";\n")
}

// Emit implements Stmt.
func (s *AssignStmt) Emit(b *strings.Builder, indent int) {
	ind(b, indent)
	b.WriteString(s.Name)
	b.WriteString(" = ")
	s.X.Emit(b)
	b.WriteString(";\n")
}

// Emit implements Stmt.
func (s *ExprStmt) Emit(b *strings.Builder, indent int) {
	ind(b, indent)
	s.X.Emit(b)
	b.WriteString(";\n")
}

// Emit implements Stmt.
func (s *IfStmt) Emit(b *strings.Builder, indent int) {
	ind(b, indent)
	b.WriteString("if (")
	s.Cond.Emit(b)
	b.WriteString(") ")
	s.Then.Emit(b, indent)
	if s.Else != nil {
		ind(b, indent)
		b.WriteString("else ")
		s.Else.Emit(b, indent)
	}
}

// Emit implements Stmt.
func (s *WhileStmt) Emit(b *strings.Builder, indent int) {
	ind(b, indent)
	b.WriteString("while (")
	s.Cond.Emit(b)
	b.WriteString(") ")
	s.Body.Emit(b, indent)
}

// Emit implements Stmt.
func (s *ReturnStmt) Emit(b *strings.Builder, indent int) {
	ind(b, indent)
	b.WriteString("return")
	if s.X != nil {
		b.WriteString(" ")
		s.X.Emit(b)
	}
	b.WriteString(";\n")
}

// Emit implements Stmt.
func (s *BlockStmt) Emit(b *strings.Builder, indent int) {
	b.WriteString("{\n")
	for _, st := range s.Stmts {
		st.Emit(b, indent+1)
	}
	ind(b, indent)
	b.WriteString("}\n")
}

// Emit implements Expr.
func (e *IntLit) Emit(b *strings.Builder) {
	if e.Value > 0xFFFF {
		fmt.Fprintf(b, "0x%X", e.Value)
		return
	}
	fmt.Fprintf(b, "%d", e.Value)
}

// Emit implements Expr.
func (e *BoolLit) Emit(b *strings.Builder) {
	if e.Value {
		b.WriteString("true")
	} else {
		b.WriteString("false")
	}
}

// Emit implements Expr.
func (e *StrLit) Emit(b *strings.Builder) {
	fmt.Fprintf(b, "%q", e.Value)
}

// Emit implements Expr.
func (e *VarRef) Emit(b *strings.Builder) { b.WriteString(e.Name) }

// Emit implements Expr.
func (e *CallExpr) Emit(b *strings.Builder) {
	b.WriteString(e.Name)
	b.WriteString("(")
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.Emit(b)
	}
	b.WriteString(")")
}

// Emit implements Expr.
func (e *UnaryExpr) Emit(b *strings.Builder) {
	b.WriteString(e.Op)
	e.X.Emit(b)
}

// Emit implements Expr.
func (e *BinaryExpr) Emit(b *strings.Builder) {
	b.WriteString("(")
	e.X.Emit(b)
	fmt.Fprintf(b, " %s ", e.Op)
	e.Y.Emit(b)
	b.WriteString(")")
}
