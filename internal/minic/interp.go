package minic

import (
	"errors"
	"fmt"

	"nvariant/internal/libc"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// Value is a runtime value.
type Value struct {
	// Type tags the value.
	Type Type
	// I holds int values.
	I int64
	// W holds uid_t/gid_t raw bits (the variant's representation).
	W word.Word
	// B holds bool values.
	B bool
	// S holds string values.
	S string
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Type {
	case TypeInt:
		return fmt.Sprintf("%d", v.I)
	case TypeBool:
		return fmt.Sprintf("%v", v.B)
	case TypeString:
		return fmt.Sprintf("%q", v.S)
	case TypeUID, TypeGID:
		return v.W.String()
	default:
		return "void"
	}
}

// InterpOptions configures program execution.
type InterpOptions struct {
	// CorruptOnAssign models a memory-corruption attacker: after every
	// assignment to a named variable, its raw bits are overwritten
	// with the given concrete word — the same word in every variant,
	// bypassing reexpression exactly as an overflow would (§3).
	CorruptOnAssign map[string]word.Word
	// MaxSteps bounds execution (guards against runaway loops in
	// tests); 0 means the default of one million.
	MaxSteps int
}

// Compile parses, checks and wraps source as a runnable variant
// program.
func Compile(name, src string, opts InterpOptions) (sys.Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileAST(name, prog, opts)
}

// CompileAST checks and wraps an AST (e.g. a transformed variant) as a
// runnable program.
func CompileAST(name string, prog *Program, opts InterpOptions) (sys.Program, error) {
	if _, err := Check(prog); err != nil {
		return nil, err
	}
	return &interpProgram{name: name, prog: prog, opts: opts}, nil
}

type interpProgram struct {
	name string
	prog *Program
	opts InterpOptions
}

var _ sys.Program = (*interpProgram)(nil)

// Name implements sys.Program.
func (p *interpProgram) Name() string { return p.name }

// Run implements sys.Program.
func (p *interpProgram) Run(ctx *sys.Context) error {
	in := &interp{
		prog:     p.prog,
		ctx:      ctx,
		builtins: Builtins(),
		globals:  make(map[string]*Value),
		opts:     p.opts,
		maxSteps: p.opts.MaxSteps,
	}
	if in.maxSteps == 0 {
		in.maxSteps = 1_000_000
	}
	return in.runMain()
}

// errExited unwinds the interpreter after the program calls exit().
var errExited = errors.New("minic: exited")

type interp struct {
	prog     *Program
	ctx      *sys.Context
	builtins map[string]Builtin
	globals  map[string]*Value
	opts     InterpOptions
	maxSteps int
	steps    int

	lastPW   vos.User
	lastPWOK bool
	lastGR   vos.Group
	lastGROK bool
}

// frame is one function activation.
type frame struct {
	fn     *FuncDecl
	locals map[string]*Value
}

func zeroValue(t Type) Value { return Value{Type: t} }

func (in *interp) runMain() error {
	for _, g := range in.prog.Globals {
		v := zeroValue(g.Type)
		if g.Init != nil {
			init, err := in.eval(nil, g.Init)
			if err != nil {
				return in.mapExit(err)
			}
			v = coerce(init, g.Type)
		}
		in.globals[g.Name] = &v
		in.corrupt(g.Name, in.globals[g.Name])
	}
	mainFn, ok := in.prog.Func("main")
	if !ok {
		return errors.New("minic: no main")
	}
	ret, err := in.call(mainFn, nil)
	if err != nil {
		return in.mapExit(err)
	}
	status := word.Word(0)
	if ret.Type == TypeInt {
		status = word.Word(uint32(ret.I))
	}
	return in.ctx.Exit(status)
}

// mapExit converts the exit sentinel into a clean return.
func (in *interp) mapExit(err error) error {
	if errors.Is(err, errExited) {
		return nil
	}
	return err
}

// corrupt applies the attacker's overwrite to a variable, if targeted.
func (in *interp) corrupt(name string, v *Value) {
	raw, ok := in.opts.CorruptOnAssign[name]
	if !ok {
		return
	}
	switch v.Type {
	case TypeUID, TypeGID:
		v.W = raw
	case TypeInt:
		v.I = int64(int32(raw))
	case TypeBool:
		v.B = raw != 0
	}
}

// coerce adapts int literals flowing into UID slots.
func coerce(v Value, target Type) Value {
	if target.IsUIDLike() && v.Type == TypeInt {
		return Value{Type: target, W: word.Word(uint32(v.I))}
	}
	if target.IsUIDLike() && v.Type.IsUIDLike() && v.Type != target {
		return Value{Type: target, W: v.W}
	}
	v.Type = target
	return v
}

func (in *interp) step(line int) error {
	in.steps++
	if in.steps > in.maxSteps {
		return fmt.Errorf("minic:%d: step budget exhausted (infinite loop?)", line)
	}
	return nil
}

// call invokes a user-defined function.
func (in *interp) call(fn *FuncDecl, args []Value) (Value, error) {
	fr := &frame{fn: fn, locals: make(map[string]*Value, len(fn.Params)+4)}
	for i, p := range fn.Params {
		v := coerce(args[i], p.Type)
		fr.locals[p.Name] = &v
	}
	ret, returned, err := in.execBlock(fr, fn.Body)
	if err != nil {
		return Value{}, err
	}
	if !returned {
		return zeroValue(fn.Ret), nil
	}
	return coerce(ret, fn.Ret), nil
}

// lookup resolves a variable reference.
func (in *interp) lookup(fr *frame, name string, line int) (*Value, error) {
	if fr != nil {
		if v, ok := fr.locals[name]; ok {
			return v, nil
		}
	}
	if v, ok := in.globals[name]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("minic:%d: undefined variable %q", line, name)
}

// execBlock executes statements; returned reports an executed return.
func (in *interp) execBlock(fr *frame, b *BlockStmt) (Value, bool, error) {
	for _, st := range b.Stmts {
		ret, returned, err := in.execStmt(fr, st)
		if err != nil || returned {
			return ret, returned, err
		}
	}
	return Value{}, false, nil
}

func (in *interp) execStmt(fr *frame, s Stmt) (Value, bool, error) {
	switch st := s.(type) {
	case *VarDecl:
		if err := in.step(st.Line); err != nil {
			return Value{}, false, err
		}
		v := zeroValue(st.Type)
		if st.Init != nil {
			init, err := in.eval(fr, st.Init)
			if err != nil {
				return Value{}, false, err
			}
			v = coerce(init, st.Type)
		}
		fr.locals[st.Name] = &v
		in.corrupt(st.Name, fr.locals[st.Name])
		return Value{}, false, nil

	case *AssignStmt:
		if err := in.step(st.Line); err != nil {
			return Value{}, false, err
		}
		slot, err := in.lookup(fr, st.Name, st.Line)
		if err != nil {
			return Value{}, false, err
		}
		v, err := in.eval(fr, st.X)
		if err != nil {
			return Value{}, false, err
		}
		*slot = coerce(v, slot.Type)
		in.corrupt(st.Name, slot)
		return Value{}, false, nil

	case *ExprStmt:
		if err := in.step(st.Line); err != nil {
			return Value{}, false, err
		}
		_, err := in.eval(fr, st.X)
		return Value{}, false, err

	case *IfStmt:
		if err := in.step(st.Line); err != nil {
			return Value{}, false, err
		}
		cond, err := in.evalCond(fr, st.Cond)
		if err != nil {
			return Value{}, false, err
		}
		if cond {
			return in.execBlock(fr, st.Then)
		}
		if st.Else != nil {
			return in.execBlock(fr, st.Else)
		}
		return Value{}, false, nil

	case *WhileStmt:
		for {
			if err := in.step(st.Line); err != nil {
				return Value{}, false, err
			}
			cond, err := in.evalCond(fr, st.Cond)
			if err != nil {
				return Value{}, false, err
			}
			if !cond {
				return Value{}, false, nil
			}
			ret, returned, err := in.execBlock(fr, st.Body)
			if err != nil || returned {
				return ret, returned, err
			}
		}

	case *ReturnStmt:
		if err := in.step(st.Line); err != nil {
			return Value{}, false, err
		}
		if st.X == nil {
			return Value{}, true, nil
		}
		v, err := in.eval(fr, st.X)
		if err != nil {
			return Value{}, false, err
		}
		return v, true, nil

	case *BlockStmt:
		return in.execBlock(fr, st)

	default:
		return Value{}, false, fmt.Errorf("minic: unknown statement %T", s)
	}
}

// evalCond evaluates a condition with C truthiness.
func (in *interp) evalCond(fr *frame, e Expr) (bool, error) {
	v, err := in.eval(fr, e)
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}

func truthy(v Value) bool {
	switch v.Type {
	case TypeBool:
		return v.B
	case TypeInt:
		return v.I != 0
	case TypeUID, TypeGID:
		return v.W != 0
	case TypeString:
		return v.S != ""
	default:
		return false
	}
}

func (in *interp) eval(fr *frame, e Expr) (Value, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.InferredType.IsUIDLike() {
			return Value{Type: x.InferredType, W: word.Word(x.Value)}, nil
		}
		return Value{Type: TypeInt, I: int64(int32(x.Value))}, nil
	case *BoolLit:
		return Value{Type: TypeBool, B: x.Value}, nil
	case *StrLit:
		return Value{Type: TypeString, S: x.Value}, nil
	case *VarRef:
		v, err := in.lookup(fr, x.Name, x.Line)
		if err != nil {
			return Value{}, err
		}
		return *v, nil
	case *UnaryExpr:
		v, err := in.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "!" {
			return Value{Type: TypeBool, B: !truthy(v)}, nil
		}
		return Value{Type: TypeInt, I: -v.I}, nil
	case *BinaryExpr:
		return in.evalBinary(fr, x)
	case *CallExpr:
		return in.evalCall(fr, x)
	default:
		return Value{}, fmt.Errorf("minic: unknown expression %T", e)
	}
}

func (in *interp) evalBinary(fr *frame, x *BinaryExpr) (Value, error) {
	// Short-circuit logicals.
	if x.Op == "&&" || x.Op == "||" {
		l, err := in.evalCond(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "&&" && !l {
			return Value{Type: TypeBool, B: false}, nil
		}
		if x.Op == "||" && l {
			return Value{Type: TypeBool, B: true}, nil
		}
		r, err := in.evalCond(fr, x.Y)
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeBool, B: r}, nil
	}

	l, err := in.eval(fr, x.X)
	if err != nil {
		return Value{}, err
	}
	r, err := in.eval(fr, x.Y)
	if err != nil {
		return Value{}, err
	}
	// Unify int literals against UID operands.
	if l.Type.IsUIDLike() && r.Type == TypeInt {
		r = coerce(r, l.Type)
	}
	if r.Type.IsUIDLike() && l.Type == TypeInt {
		l = coerce(l, r.Type)
	}

	if isComparison(x.Op) {
		return in.compare(x.Op, l, r, x.Line)
	}
	if l.Type == TypeString && r.Type == TypeString && x.Op == "+" {
		return Value{Type: TypeString, S: l.S + r.S}, nil
	}
	if l.Type != TypeInt || r.Type != TypeInt {
		return Value{}, fmt.Errorf("minic:%d: arithmetic on %s and %s", x.Line, l.Type, r.Type)
	}
	var out int64
	switch x.Op {
	case "+":
		out = l.I + r.I
	case "-":
		out = l.I - r.I
	case "*":
		out = l.I * r.I
	case "/":
		if r.I == 0 {
			return Value{}, fmt.Errorf("minic:%d: division by zero", x.Line)
		}
		out = l.I / r.I
	case "%":
		if r.I == 0 {
			return Value{}, fmt.Errorf("minic:%d: modulo by zero", x.Line)
		}
		out = l.I % r.I
	default:
		return Value{}, fmt.Errorf("minic:%d: unknown operator %q", x.Line, x.Op)
	}
	return Value{Type: TypeInt, I: out}, nil
}

func (in *interp) compare(op string, l, r Value, line int) (Value, error) {
	var truth bool
	switch {
	case l.Type.IsUIDLike() && r.Type.IsUIDLike():
		// Local comparison of UID representations — unsigned, on raw
		// bits. NOTE: in a transformed variant, ordered (<, ≤, >, ≥)
		// local comparisons would need operator reversal (§3.3); the
		// transformer rewrites them to cc_* calls instead (§3.5).
		truth = compareWords(op, l.W, r.W)
	case l.Type == TypeInt && r.Type == TypeInt:
		truth = compareInts(op, l.I, r.I)
	case l.Type == TypeBool && r.Type == TypeBool && (op == "==" || op == "!="):
		truth = (l.B == r.B) == (op == "==")
	case l.Type == TypeString && r.Type == TypeString && (op == "==" || op == "!="):
		truth = (l.S == r.S) == (op == "==")
	default:
		return Value{}, fmt.Errorf("minic:%d: comparison of %s and %s", line, l.Type, r.Type)
	}
	return Value{Type: TypeBool, B: truth}, nil
}

func compareWords(op string, a, b word.Word) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	default:
		return a >= b
	}
}

func compareInts(op string, a, b int64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	default:
		return a >= b
	}
}

func (in *interp) evalCall(fr *frame, x *CallExpr) (Value, error) {
	if _, isBuiltin := in.builtins[x.Name]; isBuiltin {
		return in.evalBuiltin(fr, x)
	}
	fn, ok := in.prog.Func(x.Name)
	if !ok {
		return Value{}, fmt.Errorf("minic:%d: undefined function %q", x.Line, x.Name)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := in.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return in.call(fn, args)
}

// statusOf maps a credential syscall result to C-style 0 / -1.
func statusOf(err error) (Value, error) {
	if err == nil {
		return Value{Type: TypeInt, I: 0}, nil
	}
	if errors.Is(err, sys.ErrKilled) {
		return Value{}, err
	}
	if _, ok := vos.AsErrno(err); ok {
		return Value{Type: TypeInt, I: -1}, nil
	}
	return Value{}, err
}

func (in *interp) evalBuiltin(fr *frame, x *CallExpr) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := in.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	uidArg := func(i int) word.Word {
		if args[i].Type.IsUIDLike() {
			return args[i].W
		}
		return word.Word(uint32(args[i].I))
	}

	ctx := in.ctx
	switch x.Name {
	case "getuid":
		u, err := ctx.Getuid()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeUID, W: u}, nil
	case "geteuid":
		u, err := ctx.Geteuid()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeUID, W: u}, nil
	case "getgid":
		g, err := ctx.Getgid()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeGID, W: g}, nil
	case "getegid":
		g, err := ctx.Getegid()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeGID, W: g}, nil
	case "setuid":
		return statusOf(ctx.Setuid(uidArg(0)))
	case "seteuid":
		return statusOf(ctx.Seteuid(uidArg(0)))
	case "setgid":
		return statusOf(ctx.Setgid(uidArg(0)))
	case "setegid":
		return statusOf(ctx.Setegid(uidArg(0)))

	case "getpwnam":
		pw, ok, err := libc.Getpwnam(ctx, args[0].S)
		if err != nil {
			if errors.Is(err, sys.ErrKilled) {
				return Value{}, err
			}
			in.lastPWOK = false
			return Value{Type: TypeBool, B: false}, nil
		}
		in.lastPW, in.lastPWOK = pw, ok
		return Value{Type: TypeBool, B: ok}, nil
	case "pw_uid":
		if !in.lastPWOK {
			return Value{Type: TypeUID, W: 0}, nil
		}
		return Value{Type: TypeUID, W: in.lastPW.UID}, nil
	case "pw_gid":
		if !in.lastPWOK {
			return Value{Type: TypeGID, W: 0}, nil
		}
		return Value{Type: TypeGID, W: in.lastPW.GID}, nil
	case "getgrnam":
		gr, ok, err := libc.Getgrnam(ctx, args[0].S)
		if err != nil {
			if errors.Is(err, sys.ErrKilled) {
				return Value{}, err
			}
			in.lastGROK = false
			return Value{Type: TypeBool, B: false}, nil
		}
		in.lastGR, in.lastGROK = gr, ok
		return Value{Type: TypeBool, B: ok}, nil
	case "gr_gid":
		if !in.lastGROK {
			return Value{Type: TypeGID, W: 0}, nil
		}
		return Value{Type: TypeGID, W: in.lastGR.GID}, nil
	case "getpwuid_has":
		_, ok, err := libc.Getpwuid(ctx, uidArg(0))
		if err != nil {
			if errors.Is(err, sys.ErrKilled) {
				return Value{}, err
			}
			return Value{Type: TypeBool, B: false}, nil
		}
		return Value{Type: TypeBool, B: ok}, nil

	case "log":
		if err := ctx.WriteString(sys.FDStderr, args[0].S+"\n"); err != nil {
			return Value{}, err
		}
		return Value{Type: TypeVoid}, nil
	case "log_uid":
		// The §4 pitfall: the UID value lands in shared output and
		// diverges between variants. The transformer scrubs this.
		line := args[0].S + " uid=" + uidArg(1).Decimal() + "\n"
		if err := ctx.WriteString(sys.FDStderr, line); err != nil {
			return Value{}, err
		}
		return Value{Type: TypeVoid}, nil
	case "exit":
		if err := ctx.Exit(word.Word(uint32(args[0].I))); err != nil {
			return Value{}, err
		}
		return Value{}, errExited

	case "uid_value":
		u, err := ctx.UIDValue(uidArg(0))
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeUID, W: u}, nil
	case "cond_chk":
		b, err := ctx.CondChk(args[0].B)
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeBool, B: b}, nil
	case "cc_eq", "cc_neq", "cc_lt", "cc_leq", "cc_gt", "cc_geq":
		var fn func(a, b vos.UID) (bool, error)
		switch x.Name {
		case "cc_eq":
			fn = ctx.CCEq
		case "cc_neq":
			fn = ctx.CCNeq
		case "cc_lt":
			fn = ctx.CCLt
		case "cc_leq":
			fn = ctx.CCLeq
		case "cc_gt":
			fn = ctx.CCGt
		default:
			fn = ctx.CCGeq
		}
		b, err := fn(uidArg(0), uidArg(1))
		if err != nil {
			return Value{}, err
		}
		return Value{Type: TypeBool, B: b}, nil

	default:
		return Value{}, fmt.Errorf("minic:%d: unimplemented builtin %q", x.Line, x.Name)
	}
}
