package minic

import "fmt"

// Parse parses source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.cur().Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) error {
	if p.cur().Kind == TokPunct && p.cur().Text == s {
		p.next()
		return nil
	}
	return p.errf("expected %q, got %q", s, p.cur().Text)
}

func (p *parser) atPunct(s string) bool {
	return p.cur().Kind == TokPunct && p.cur().Text == s
}

func (p *parser) atType() (Type, bool) {
	if p.cur().Kind != TokKeyword {
		return 0, false
	}
	return typeFromKeyword(p.cur().Text)
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		typ, ok := p.atType()
		if !ok {
			return nil, p.errf("expected declaration, got %q", p.cur().Text)
		}
		p.next()
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected name after type, got %q", p.cur().Text)
		}
		name := p.next()
		if p.atPunct("(") {
			fn, err := p.parseFuncRest(typ, name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		decl, err := p.parseVarRest(typ, name)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, decl)
	}
	return prog, nil
}

func (p *parser) parseVarRest(typ Type, name Token) (*VarDecl, error) {
	decl := &VarDecl{Type: typ, Name: name.Text, Line: name.Line}
	if p.atPunct("=") {
		p.next()
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		decl.Init = init
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return decl, nil
}

func (p *parser) parseFuncRest(ret Type, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Ret: ret, Name: name.Text, Line: name.Line}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		typ, ok := p.atType()
		if !ok {
			return nil, p.errf("expected parameter type, got %q", p.cur().Text)
		}
		p.next()
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected parameter name, got %q", p.cur().Text)
		}
		pname := p.next()
		fn.Params = append(fn.Params, Param{Type: typ, Name: pname.Text})
		if p.atPunct(",") {
			p.next()
			continue
		}
		if !p.atPunct(")") {
			return nil, p.errf("expected ',' or ')' in parameters")
		}
	}
	p.next() // ')'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	line := p.cur().Line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	block := &BlockStmt{Line: line}
	for !p.atPunct("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unterminated block")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		block.Stmts = append(block.Stmts, st)
	}
	p.next() // '}'
	return block, nil
}

// blockOf wraps a single statement in a block so if/while bodies are
// uniform.
func blockOf(s Stmt, line int) *BlockStmt {
	if b, ok := s.(*BlockStmt); ok {
		return b
	}
	return &BlockStmt{Stmts: []Stmt{s}, Line: line}
}

func (p *parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch {
	case tok.Kind == TokKeyword && tok.Text == "if":
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		thenStmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: blockOf(thenStmt, tok.Line), Line: tok.Line}
		if p.cur().Kind == TokKeyword && p.cur().Text == "else" {
			p.next()
			elseStmt, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = blockOf(elseStmt, tok.Line)
		}
		return st, nil

	case tok.Kind == TokKeyword && tok.Text == "while":
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: blockOf(body, tok.Line), Line: tok.Line}, nil

	case tok.Kind == TokKeyword && tok.Text == "return":
		p.next()
		st := &ReturnStmt{Line: tok.Line}
		if !p.atPunct(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = x
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return st, nil

	case tok.Kind == TokPunct && tok.Text == "{":
		return p.parseBlock()

	default:
		if typ, ok := p.atType(); ok {
			p.next()
			if p.cur().Kind != TokIdent {
				return nil, p.errf("expected name after type, got %q", p.cur().Text)
			}
			name := p.next()
			return p.parseVarRest(typ, name)
		}
		// assignment or expression statement
		if tok.Kind == TokIdent && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == "=" {
			name := p.next()
			p.next() // '='
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name.Text, X: x, Line: name.Line}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Line: tok.Line}, nil
	}
}

// Operator precedence, loosest first.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.cur()
		if tok.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := precedence[tok.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: tok.Text, X: lhs, Y: rhs, Line: tok.Line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	tok := p.cur()
	if tok.Kind == TokPunct && (tok.Text == "!" || tok.Text == "-") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: tok.Text, X: x, Line: tok.Line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch {
	case tok.Kind == TokInt:
		p.next()
		v, err := parseIntText(tok.Text)
		if err != nil {
			return nil, &SyntaxError{Line: tok.Line, Msg: err.Error()}
		}
		return &IntLit{Value: v, Line: tok.Line}, nil

	case tok.Kind == TokString:
		p.next()
		return &StrLit{Value: tok.Text, Line: tok.Line}, nil

	case tok.Kind == TokKeyword && (tok.Text == "true" || tok.Text == "false"):
		p.next()
		return &BoolLit{Value: tok.Text == "true", Line: tok.Line}, nil

	case tok.Kind == TokIdent:
		p.next()
		if p.atPunct("(") {
			p.next()
			call := &CallExpr{Name: tok.Text, Line: tok.Line}
			for !p.atPunct(")") {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.atPunct(",") {
					p.next()
					continue
				}
				if !p.atPunct(")") {
					return nil, p.errf("expected ',' or ')' in call arguments")
				}
			}
			p.next() // ')'
			return call, nil
		}
		return &VarRef{Name: tok.Text, Line: tok.Line}, nil

	case tok.Kind == TokPunct && tok.Text == "(":
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return x, nil

	default:
		return nil, p.errf("unexpected token %q", tok.Text)
	}
}

// parseIntText parses decimal or 0x hex literals into 32 bits.
func parseIntText(s string) (uint32, error) {
	var v uint64
	if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
		for i := 2; i < len(s); i++ {
			d, ok := hexVal(s[i])
			if !ok {
				return 0, fmt.Errorf("bad hex literal %q", s)
			}
			v = v*16 + uint64(d)
			if v > 0xFFFFFFFF {
				return 0, fmt.Errorf("literal %q overflows 32 bits", s)
			}
		}
		return uint32(v), nil
	}
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return 0, fmt.Errorf("bad integer literal %q", s)
		}
		v = v*10 + uint64(s[i]-'0')
		if v > 0xFFFFFFFF {
			return 0, fmt.Errorf("literal %q overflows 32 bits", s)
		}
	}
	return uint32(v), nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}
