package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestListenDialRoundTrip(t *testing.T) {
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		msg, err := server.Recv()
		if err != nil {
			t.Errorf("server Recv: %v", err)
			return
		}
		if err := server.Send(append([]byte("echo:"), msg...)); err != nil {
			t.Errorf("server Send: %v", err)
		}
		_ = server.Close()
	}()

	client, err := n.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hi" {
		t.Errorf("reply = %q", reply)
	}
	_ = client.Close()
	wg.Wait()
}

func TestDialRefused(t *testing.T) {
	n := New(0)
	if _, err := n.Dial(9999); !errors.Is(err, ErrRefused) {
		t.Errorf("Dial = %v, want ErrRefused", err)
	}
}

func TestListenInUse(t *testing.T) {
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	if _, err := n.Listen(80); !errors.Is(err, ErrInUse) {
		t.Errorf("second Listen = %v, want ErrInUse", err)
	}
}

func TestListenerCloseReleasesPort(t *testing.T) {
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := n.Listen(80)
	if err != nil {
		t.Errorf("Listen after Close: %v", err)
	} else {
		_ = l2.Close()
	}
}

func TestAcceptUnblocksOnClose(t *testing.T) {
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Accept after close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
}

func TestRecvEOFOnPeerClose(t *testing.T) {
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		s, err := l.Accept()
		if err != nil {
			return
		}
		_ = s.Send([]byte("last"))
		_ = s.Close()
	}()
	c, err := n.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	// First Recv drains the in-flight message.
	msg, err := c.Recv()
	if err != nil || string(msg) != "last" {
		t.Fatalf("Recv = (%q, %v)", msg, err)
	}
	// Second Recv observes end of stream: (nil, nil).
	msg, err = c.Recv()
	if err != nil || msg != nil {
		t.Errorf("Recv after peer close = (%v, %v), want (nil, nil)", msg, err)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		s, err := l.Accept()
		if err == nil {
			_ = s.Close()
		}
	}()
	c, err := n.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	recvd := make(chan []byte, 1)
	go func() {
		s, err := l.Accept()
		if err != nil {
			return
		}
		m, _ := s.Recv()
		recvd <- m
	}()
	c, err := n.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("original")
	if err := c.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBERED")
	got := <-recvd
	if string(got) != "original" {
		t.Errorf("received %q; Send must copy", got)
	}
}

func TestLatencyApplied(t *testing.T) {
	const lat = 20 * time.Millisecond
	n := New(lat)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		s, err := l.Accept()
		if err != nil {
			return
		}
		_ = s.Send([]byte("pong"))
	}()
	c, err := n.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Errorf("Recv returned after %v, want >= %v", elapsed, lat)
	}
}

func TestConcurrentClients(t *testing.T) {
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	const clients = 32
	var serverWG sync.WaitGroup
	serverWG.Add(1)
	go func() {
		defer serverWG.Done()
		for i := 0; i < clients; i++ {
			s, err := l.Accept()
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			go func() {
				m, err := s.Recv()
				if err == nil {
					_ = s.Send(m)
				}
				_ = s.Close()
			}()
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial(80)
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer func() { _ = c.Close() }()
			payload := []byte{byte(i)}
			if err := c.Send(payload); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
			got, err := c.Recv()
			if err != nil || len(got) != 1 || got[0] != byte(i) {
				t.Errorf("client %d Recv = (%v, %v)", i, got, err)
			}
		}(i)
	}
	wg.Wait()
	serverWG.Wait()
}

func TestDialAfterCloseRefused(t *testing.T) {
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial(80); !errors.Is(err, ErrRefused) {
		t.Errorf("dial after close = %v, want ErrRefused", err)
	}
}

func TestDialBacklogFullRefused(t *testing.T) {
	n := New(0)
	if _, err := n.Listen(80); err != nil {
		t.Fatal(err)
	}
	// Fill the backlog without accepting.
	for i := 0; i < backlog; i++ {
		if _, err := n.Dial(80); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	if _, err := n.Dial(80); !errors.Is(err, ErrRefused) {
		t.Errorf("dial on full backlog = %v, want ErrRefused", err)
	}
}

func TestQueuedConnsClosedOnListenerClose(t *testing.T) {
	// A connection queued in the backlog when the listener closes must
	// observe end-of-stream, not hang in Recv — the stranded-dialer
	// case the fleet dispatcher's shutdown depends on.
	n := New(0)
	l, err := n.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("request")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got, err := c.Recv(); err == nil && got != nil {
			t.Errorf("Recv = %q, want end of stream or error", got)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("dialer hung in Recv after listener close")
	}
}
