package simnet

import (
	"sync/atomic"

	"nvariant/internal/obs"
)

// Buffer-pool traffic is counted unconditionally in package atomics
// (the pool is package-global, so there is no per-network place to
// hang a nil check) and surfaced as CounterFuncs — two uncontended
// atomic adds per message, nothing on the path when sampling.
var (
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
)

// Metrics is the network data plane's registered metric set. Install
// on a Network with SetMetrics; updates are atomic adds gated behind
// one nil check per send. Series owned by this layer:
//
//	simnet_messages_total            messages entering the wire
//	simnet_bytes_total               payload bytes entering the wire
//	simnet_faults_total{verdict=...} injected drop/delay/truncate/hold verdicts
//	simnet_buffer_pool_hits_total    GetBuffer served from the free list
//	simnet_buffer_pool_misses_total  GetBuffer had to allocate
type Metrics struct {
	messages *obs.Counter
	bytes    *obs.Counter
	drops    *obs.Counter
	delays   *obs.Counter
	truncs   *obs.Counter
	holds    *obs.Counter
}

// NewMetrics registers (or finds) the simnet metric set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		messages: reg.Counter("simnet_messages_total", "Messages entering the wire."),
		bytes:    reg.Counter("simnet_bytes_total", "Payload bytes entering the wire."),
		drops:    reg.Counter("simnet_faults_total", "Injected fault verdicts applied.", obs.L("verdict", "drop")),
		delays:   reg.Counter("simnet_faults_total", "Injected fault verdicts applied.", obs.L("verdict", "delay")),
		truncs:   reg.Counter("simnet_faults_total", "Injected fault verdicts applied.", obs.L("verdict", "truncate")),
		holds:    reg.Counter("simnet_faults_total", "Injected fault verdicts applied.", obs.L("verdict", "hold")),
	}
	reg.CounterFunc("simnet_buffer_pool_hits_total",
		"GetBuffer calls served from the free list.",
		func() float64 { return float64(poolHits.Load()) })
	reg.CounterFunc("simnet_buffer_pool_misses_total",
		"GetBuffer calls that allocated a fresh buffer.",
		func() float64 { return float64(poolMisses.Load()) })
	return m
}

// SetMetrics installs a metric set on the network. Like
// SetFaultInjector it must be called before traffic flows; nil leaves
// the network uninstrumented.
func (n *Network) SetMetrics(m *Metrics) { n.metrics = m }

// countFault tallies one injected verdict against payloadLen bytes as
// sendFaulty will apply it (a verdict may tick several series: a
// delayed truncate counts as both).
func (m *Metrics) countFault(v Fault, payloadLen int) {
	if v.Drop {
		m.drops.Inc()
		return
	}
	if v.TruncateTo > 0 && v.TruncateTo < payloadLen {
		m.truncs.Inc()
	}
	if v.Hold > 0 {
		m.holds.Inc()
	}
	if v.Delay > 0 {
		m.delays.Inc()
	}
}
