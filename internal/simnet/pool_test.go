package simnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fillPattern writes a verifiable payload: every byte is the seed, so
// any cross-message aliasing (a pooled buffer reused while a receiver
// still holds it) shows up as a mixed-seed payload.
func fillPattern(buf []byte, seed byte) {
	for i := range buf {
		buf[i] = seed
	}
}

// checkPattern verifies a delivered payload is still uniform.
func checkPattern(buf []byte) error {
	if len(buf) == 0 {
		return fmt.Errorf("empty payload")
	}
	seed := buf[0]
	for i, b := range buf {
		if b != seed {
			return fmt.Errorf("byte %d = %#x, want %#x (pooled buffer aliased)", i, b, seed)
		}
	}
	return nil
}

// TestPooledSendAliasing hammers concurrent Send/Recv over many
// connections with pooled buffers: senders scribble their own buffer
// immediately after Send (legal — Send copies), receivers hold each
// delivered payload across a yield and re-verify before recycling it.
// Run under -race this proves ownership passes cleanly through the
// pool: no payload is ever observed mutated after delivery.
func TestPooledSendAliasing(t *testing.T) {
	net := New(0)
	const (
		conns    = 8
		messages = 200
	)
	l, err := net.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	var wg sync.WaitGroup
	errs := make(chan error, conns*2)
	for c := 0; c < conns; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			server, err := l.Accept()
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = server.Close() }()
			held := make([][]byte, 0, 4)
			for {
				msg, err := server.Recv()
				if err != nil {
					errs <- err
					return
				}
				if msg == nil {
					break
				}
				if err := checkPattern(msg); err != nil {
					errs <- fmt.Errorf("conn %d on delivery: %w", c, err)
					return
				}
				// Hold a few buffers across further traffic, then
				// re-verify: recycling must not scribble on them while
				// the receiver still owns them.
				held = append(held, msg)
				if len(held) == cap(held) {
					time.Sleep(time.Millisecond)
					for _, h := range held {
						if err := checkPattern(h); err != nil {
							errs <- fmt.Errorf("conn %d while held: %w", c, err)
							return
						}
						PutBuffer(h)
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				if err := checkPattern(h); err != nil {
					errs <- fmt.Errorf("conn %d at close: %w", c, err)
				}
				PutBuffer(h)
			}
		}()

		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := net.Dial(80)
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = client.Close() }()
			scratch := make([]byte, 0, 512)
			for m := 0; m < messages; m++ {
				n := 1 + (c*31+m*7)%512
				buf := scratch[:n]
				seed := byte(c*16 + m%16)
				fillPattern(buf, seed)
				if err := client.Send(buf); err != nil {
					errs <- err
					return
				}
				// Send copies: reusing (and scribbling) the caller
				// buffer immediately must not affect the delivery.
				fillPattern(buf, ^seed)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSendOwnedHandoffAliasing drives payloads through a zero-copy
// proxy chain (sender → proxy → receiver) built on SendOwned, the
// fleet dispatcher's pump shape: the proxy hands each received buffer
// straight to the next wire without copying, and the final receiver
// verifies the payload then recycles it.
func TestSendOwnedHandoffAliasing(t *testing.T) {
	net := New(0)
	const messages = 500

	back, err := net.Listen(81)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = back.Close() }()
	front, err := net.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = front.Close() }()

	errs := make(chan error, 3)
	var wg sync.WaitGroup

	// Proxy: front → back, zero-copy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		up, err := front.Accept()
		if err != nil {
			errs <- err
			return
		}
		defer func() { _ = up.Close() }()
		down, err := net.Dial(81)
		if err != nil {
			errs <- err
			return
		}
		defer func() { _ = down.Close() }()
		for {
			msg, err := up.Recv()
			if err != nil {
				errs <- err
				return
			}
			if msg == nil {
				return
			}
			if err := down.SendOwned(msg); err != nil {
				PutBuffer(msg)
				errs <- err
				return
			}
		}
	}()

	// Receiver: verifies every proxied payload, then recycles it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := back.Accept()
		if err != nil {
			errs <- err
			return
		}
		defer func() { _ = conn.Close() }()
		for m := 0; m < messages; m++ {
			msg, err := conn.Recv()
			if err != nil || msg == nil {
				errs <- fmt.Errorf("recv %d: msg=%v err=%v", m, msg, err)
				return
			}
			want := make([]byte, 1+(m*13)%256)
			fillPattern(want, byte(m))
			if !bytes.Equal(msg, want) {
				errs <- fmt.Errorf("message %d corrupted through proxy", m)
				return
			}
			PutBuffer(msg)
		}
	}()

	client, err := net.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < messages; m++ {
		buf := GetBuffer(1 + (m*13)%256)
		fillPattern(buf, byte(m))
		// Hand our own pooled buffer over: after SendOwned succeeds we
		// must not touch it again.
		if err := client.SendOwned(buf); err != nil {
			t.Fatal(err)
		}
	}
	_ = client.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGetPutBufferSizing pins the pool's sizing contract: GetBuffer
// returns exactly-n-length slices, grows past the minimum capacity for
// large requests, and recycled capacity is observed by later Gets.
func TestGetPutBufferSizing(t *testing.T) {
	b := GetBuffer(10)
	if len(b) != 10 {
		t.Errorf("len = %d, want 10", len(b))
	}
	if cap(b) < minBufCap {
		t.Errorf("cap = %d, want >= %d", cap(b), minBufCap)
	}
	big := GetBuffer(3 * minBufCap)
	if len(big) != 3*minBufCap {
		t.Errorf("big len = %d", len(big))
	}
	PutBuffer(big)
	PutBuffer(nil) // must not panic or pollute the pool
}
