// Package simnet provides the in-process network the N-variant server
// and its clients communicate over.
//
// In the paper's testbed, WebBench clients talk to the server across a
// switched LAN; the unsaturated results are I/O-bound because of that
// wire. simnet reproduces the shape with a message-oriented connection
// abstraction and a configurable one-way latency. The monitor kernel
// performs network input syscalls once and replicates the received
// bytes to every variant, so clients are oblivious to how many
// variants serve them — exactly the paper's architecture (Figure 1).
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by network operations.
var (
	// ErrClosed is returned when the endpoint has been closed.
	ErrClosed = errors.New("simnet: endpoint closed")
	// ErrRefused is returned by Dial when nothing listens on the port.
	ErrRefused = errors.New("simnet: connection refused")
	// ErrInUse is returned by Listen when the port is taken.
	ErrInUse = errors.New("simnet: address in use")
)

const backlog = 256

// Network is an in-process switched network. The zero value is not
// usable; construct with New.
type Network struct {
	mu        sync.Mutex
	listeners map[uint16]*Listener
	latency   time.Duration
	sleep     func(time.Duration)
}

// New creates a network whose messages take latency to cross the wire
// in each direction.
func New(latency time.Duration) *Network {
	return &Network{
		listeners: make(map[uint16]*Listener),
		latency:   latency,
		sleep:     time.Sleep,
	}
}

// Latency returns the configured one-way latency.
func (n *Network) Latency() time.Duration { return n.latency }

// Listen opens a listening socket on port.
func (n *Network) Listen(port uint16) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, taken := n.listeners[port]; taken {
		return nil, fmt.Errorf("listen %d: %w", port, ErrInUse)
	}
	l := &Listener{
		net:    n,
		port:   port,
		accept: make(chan *Conn, backlog),
		closed: make(chan struct{}),
	}
	n.listeners[port] = l
	return l, nil
}

// Dial connects to the listener on port, returning the client side of
// the connection. A full backlog refuses the connection (SYN-queue
// overflow).
func (n *Network) Dial(port uint16) (*Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[port]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dial %d: %w", port, ErrRefused)
	}
	client, server := newPair(n)
	// Enqueue under the listener lock so a connection can never slip
	// into the backlog after Close has drained it — a raced conn would
	// otherwise strand its dialer in Recv forever.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.isClosed {
		return nil, fmt.Errorf("dial %d: %w", port, ErrRefused)
	}
	select {
	case l.accept <- server:
		return client, nil
	default:
		return nil, fmt.Errorf("dial %d: backlog full: %w", port, ErrRefused)
	}
}

// ShutdownPort closes the listener on port from outside the serving
// process — the harness's way of stopping an N-variant server whose
// monitor may be blocked in accept (the paper's launcher kills the
// group; closing the port gives us an orderly equivalent).
func (n *Network) ShutdownPort(port uint16) error {
	n.mu.Lock()
	l, ok := n.listeners[port]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("shutdown %d: %w", port, ErrRefused)
	}
	return l.Close()
}

// Listener accepts inbound connections on a port.
type Listener struct {
	net       *Network
	port      uint16
	accept    chan *Conn
	closed    chan struct{}
	closeOnce sync.Once

	mu       sync.Mutex
	isClosed bool
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Accept blocks until a connection arrives or the listener is closed.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		// Drain any connection racing with close.
		select {
		case c := <-l.accept:
			return c, nil
		default:
			return nil, fmt.Errorf("accept %d: %w", l.port, ErrClosed)
		}
	}
}

// Close releases the port, unblocks pending Accept calls, and closes
// connections still queued in the backlog — their dialers observe a
// drop (as from a crashed server) instead of hanging.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.isClosed = true
		close(l.closed)
		l.mu.Unlock()
		l.net.mu.Lock()
		delete(l.net.listeners, l.port)
		l.net.mu.Unlock()
		for {
			select {
			case c := <-l.accept:
				_ = c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// message is one unit in flight.
type message struct {
	data    []byte
	readyAt time.Time
}

// Payload buffer pool. Messages cross the network in pooled buffers:
// Send copies the caller's bytes into one, SendOwned hands one over
// without a copy, and the receiver — who owns the buffer from Recv on —
// may return it with PutBuffer once the bytes are consumed. A bounded
// free list (not sync.Pool) keeps Get/Put allocation-free; buffers that
// are never returned are simply collected by the GC.
const (
	// minBufCap is the smallest capacity GetBuffer hands out, sized for
	// a typical request line; response-sized buffers grow past it and
	// keep their capacity when recycled.
	minBufCap = 2048
	// poolSlots bounds how many idle buffers the free list retains.
	poolSlots = 256
)

var bufFree = make(chan []byte, poolSlots)

// GetBuffer returns a length-n buffer from the pool (allocating a
// fresh one only when the pool is empty or too small).
func GetBuffer(n int) []byte {
	select {
	case b := <-bufFree:
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this message: put it back for smaller traffic
		// and size up. (Mixed small/large workloads would otherwise
		// steadily drain the pool.)
		PutBuffer(b)
	default:
	}
	c := minBufCap
	for c < n {
		c *= 2
	}
	return make([]byte, n, c)
}

// PutBuffer returns a buffer to the pool. The caller must not touch b
// afterwards — the backing array will be handed to a future Send. Only
// the receiver that obtained b from Recv (or a caller that never sent
// a buffer it got from GetBuffer) may return it.
func PutBuffer(b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case bufFree <- b[:0]:
	default: // pool full: let the GC have it
	}
}

// Conn is one endpoint of a bidirectional message connection.
type Conn struct {
	net       *Network
	in        chan message
	peer      *Conn
	closed    chan struct{}
	closeOnce sync.Once
}

func newPair(n *Network) (a, b *Conn) {
	a = &Conn{net: n, in: make(chan message, backlog), closed: make(chan struct{})}
	b = &Conn{net: n, in: make(chan message, backlog), closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send transmits data to the peer. The data is copied (into a pooled
// buffer), so the caller may reuse its own buffer immediately.
func (c *Conn) Send(data []byte) error {
	buf := GetBuffer(len(data))
	copy(buf, data)
	if err := c.SendOwned(buf); err != nil {
		PutBuffer(buf)
		return err
	}
	return nil
}

// SendOwned transmits data to the peer without copying: ownership of
// the backing array passes with the message, so the caller must not
// read or write data after a nil return. The receiving side owns the
// buffer from Recv on (and may PutBuffer it when done). This is the
// zero-copy handoff the fleet dispatcher's proxy pumps use. On error
// the caller keeps ownership.
func (c *Conn) SendOwned(data []byte) error {
	select {
	case <-c.closed:
		return fmt.Errorf("send: %w", ErrClosed)
	case <-c.peer.closed:
		return fmt.Errorf("send: peer: %w", ErrClosed)
	default:
	}
	msg := message{data: data, readyAt: time.Now().Add(c.net.latency)}
	select {
	case c.peer.in <- msg:
		return nil
	case <-c.peer.closed:
		return fmt.Errorf("send: peer: %w", ErrClosed)
	}
}

// Recv blocks for the next message. It returns (nil, nil) on orderly
// peer close (end of stream), mirroring a zero-byte read. The returned
// buffer is owned by the caller: it may be retained indefinitely,
// handed onward with SendOwned, or returned to the pool with PutBuffer
// once its bytes are consumed.
func (c *Conn) Recv() ([]byte, error) {
	select {
	case msg := <-c.in:
		c.waitWire(msg)
		return msg.data, nil
	case <-c.closed:
		return nil, fmt.Errorf("recv: %w", ErrClosed)
	case <-c.peer.closed:
		// The peer may have sent messages before closing; drain first.
		select {
		case msg := <-c.in:
			c.waitWire(msg)
			return msg.data, nil
		default:
			return nil, nil
		}
	}
}

// waitWire blocks until the message has "crossed the wire".
func (c *Conn) waitWire(msg message) {
	if d := time.Until(msg.readyAt); d > 0 {
		c.net.sleep(d)
	}
}

// Close shuts the endpoint down. Peer reads observe end of stream
// after draining in-flight messages.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}
