// Package simnet provides the in-process network the N-variant server
// and its clients communicate over.
//
// In the paper's testbed, WebBench clients talk to the server across a
// switched LAN; the unsaturated results are I/O-bound because of that
// wire. simnet reproduces the shape with a message-oriented connection
// abstraction and a configurable one-way latency. The monitor kernel
// performs network input syscalls once and replicates the received
// bytes to every variant, so clients are oblivious to how many
// variants serve them — exactly the paper's architecture (Figure 1).
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by network operations.
var (
	// ErrClosed is returned when the endpoint has been closed.
	ErrClosed = errors.New("simnet: endpoint closed")
	// ErrRefused is returned by Dial when nothing listens on the port.
	ErrRefused = errors.New("simnet: connection refused")
	// ErrInUse is returned by Listen when the port is taken.
	ErrInUse = errors.New("simnet: address in use")
)

const backlog = 256

// Network is an in-process switched network. The zero value is not
// usable; construct with New.
type Network struct {
	mu        sync.Mutex
	listeners map[uint16]*Listener
	latency   time.Duration
	sleep     func(time.Duration)
	// faults, when non-nil, is consulted once per message send. It is
	// set before any traffic flows (SetFaultInjector) so the data-plane
	// hot path pays exactly one nil check when chaos is disabled.
	faults FaultInjector
	// metrics, when non-nil, counts messages, bytes, and fault
	// verdicts. Same discipline as faults: installed before traffic
	// (SetMetrics), one nil check per send when disabled.
	metrics *Metrics
}

// Fault is the injector's verdict for one message crossing the wire.
// The zero value delivers the message untouched.
type Fault struct {
	// Drop severs the connection instead of delivering the message —
	// the link-failure model: the receiver observes end of stream, the
	// sender's next operation fails with ErrClosed. (Silently vanishing
	// a message would strand closed-loop peers in Recv forever, which no
	// real network does to a connection-oriented caller.)
	Drop bool
	// Delay adds extra one-way latency on top of the network's
	// configured latency.
	Delay time.Duration
	// TruncateTo, when in (0, len(payload)), delivers only the leading
	// TruncateTo bytes of the message.
	TruncateTo int
	// Hold, when positive, parks the message until the sender's next
	// message on the same connection — which is then delivered first,
	// an adjacent-message reorder — or until Hold elapses or the
	// endpoint closes, whichever comes first. The time bound keeps a
	// held message with no successor from stranding a closed-loop
	// receiver forever.
	Hold time.Duration
}

// FaultInjector decides the fate of each message entering the wire.
// Implementations must be safe for concurrent use; the chaos package
// provides seeded deterministic implementations.
type FaultInjector interface {
	// FaultFor is called once per message send with the payload size.
	FaultFor(size int) Fault
}

// SetFaultInjector installs a fault injector on the network. It must be
// called before any traffic flows (there is no synchronization with
// in-flight sends); passing nil leaves the network fault-free.
func (n *Network) SetFaultInjector(f FaultInjector) { n.faults = f }

// New creates a network whose messages take latency to cross the wire
// in each direction.
func New(latency time.Duration) *Network {
	return &Network{
		listeners: make(map[uint16]*Listener),
		latency:   latency,
		sleep:     time.Sleep,
	}
}

// Latency returns the configured one-way latency.
func (n *Network) Latency() time.Duration { return n.latency }

// Listen opens a listening socket on port.
func (n *Network) Listen(port uint16) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, taken := n.listeners[port]; taken {
		return nil, fmt.Errorf("listen %d: %w", port, ErrInUse)
	}
	l := &Listener{
		net:    n,
		port:   port,
		accept: make(chan *Conn, backlog),
		closed: make(chan struct{}),
	}
	n.listeners[port] = l
	return l, nil
}

// Dial connects to the listener on port, returning the client side of
// the connection. A full backlog refuses the connection (SYN-queue
// overflow).
func (n *Network) Dial(port uint16) (*Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[port]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dial %d: %w", port, ErrRefused)
	}
	client, server := newPair(n)
	// Enqueue under the listener lock so a connection can never slip
	// into the backlog after Close has drained it — a raced conn would
	// otherwise strand its dialer in Recv forever.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.isClosed {
		return nil, fmt.Errorf("dial %d: %w", port, ErrRefused)
	}
	select {
	case l.accept <- server:
		return client, nil
	default:
		return nil, fmt.Errorf("dial %d: backlog full: %w", port, ErrRefused)
	}
}

// ShutdownPort closes the listener on port from outside the serving
// process — the harness's way of stopping an N-variant server whose
// monitor may be blocked in accept (the paper's launcher kills the
// group; closing the port gives us an orderly equivalent).
func (n *Network) ShutdownPort(port uint16) error {
	n.mu.Lock()
	l, ok := n.listeners[port]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("shutdown %d: %w", port, ErrRefused)
	}
	return l.Close()
}

// Listener accepts inbound connections on a port.
type Listener struct {
	net       *Network
	port      uint16
	accept    chan *Conn
	closed    chan struct{}
	closeOnce sync.Once

	mu       sync.Mutex
	isClosed bool
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Accept blocks until a connection arrives or the listener is closed.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		// Drain any connection racing with close.
		select {
		case c := <-l.accept:
			return c, nil
		default:
			return nil, fmt.Errorf("accept %d: %w", l.port, ErrClosed)
		}
	}
}

// Close releases the port, unblocks pending Accept calls, and closes
// connections still queued in the backlog — their dialers observe a
// drop (as from a crashed server) instead of hanging.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.isClosed = true
		close(l.closed)
		l.mu.Unlock()
		l.net.mu.Lock()
		delete(l.net.listeners, l.port)
		l.net.mu.Unlock()
		for {
			select {
			case c := <-l.accept:
				_ = c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// message is one unit in flight.
type message struct {
	data    []byte
	readyAt time.Time
}

// Payload buffer pool. Messages cross the network in pooled buffers:
// Send copies the caller's bytes into one, SendOwned hands one over
// without a copy, and the receiver — who owns the buffer from Recv on —
// may return it with PutBuffer once the bytes are consumed. A bounded
// free list (not sync.Pool) keeps Get/Put allocation-free; buffers that
// are never returned are simply collected by the GC.
const (
	// minBufCap is the smallest capacity GetBuffer hands out, sized for
	// a typical request line; response-sized buffers grow past it and
	// keep their capacity when recycled.
	minBufCap = 2048
	// poolSlots bounds how many idle buffers the free list retains.
	poolSlots = 256
)

var bufFree = make(chan []byte, poolSlots)

// GetBuffer returns a length-n buffer from the pool (allocating a
// fresh one only when the pool is empty or too small).
func GetBuffer(n int) []byte {
	select {
	case b := <-bufFree:
		if cap(b) >= n {
			poolHits.Add(1)
			return b[:n]
		}
		// Too small for this message: put it back for smaller traffic
		// and size up. (Mixed small/large workloads would otherwise
		// steadily drain the pool.)
		PutBuffer(b)
	default:
	}
	poolMisses.Add(1)
	c := minBufCap
	for c < n {
		c *= 2
	}
	return make([]byte, n, c)
}

// PutBuffer returns a buffer to the pool. The caller must not touch b
// afterwards — the backing array will be handed to a future Send. Only
// the receiver that obtained b from Recv (or a caller that never sent
// a buffer it got from GetBuffer) may return it.
func PutBuffer(b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case bufFree <- b[:0]:
	default: // pool full: let the GC have it
	}
}

// Conn is one endpoint of a bidirectional message connection.
type Conn struct {
	net       *Network
	in        chan message
	peer      *Conn
	closed    chan struct{}
	closeOnce sync.Once

	// faultMu guards held, the parking slot a Hold verdict reorders
	// messages through. Both are touched only when a fault injector is
	// installed.
	faultMu sync.Mutex
	held    *message
}

func newPair(n *Network) (a, b *Conn) {
	a = &Conn{net: n, in: make(chan message, backlog), closed: make(chan struct{})}
	b = &Conn{net: n, in: make(chan message, backlog), closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send transmits data to the peer. The data is copied (into a pooled
// buffer), so the caller may reuse its own buffer immediately.
func (c *Conn) Send(data []byte) error {
	buf := GetBuffer(len(data))
	copy(buf, data)
	if err := c.SendOwned(buf); err != nil {
		PutBuffer(buf)
		return err
	}
	return nil
}

// SendOwned transmits data to the peer without copying: ownership of
// the backing array passes with the message, so the caller must not
// read or write data after a nil return. The receiving side owns the
// buffer from Recv on (and may PutBuffer it when done). This is the
// zero-copy handoff the fleet dispatcher's proxy pumps use. On error
// the caller keeps ownership.
func (c *Conn) SendOwned(data []byte) error {
	if m := c.net.metrics; m != nil {
		m.messages.Inc()
		m.bytes.Add(uint64(len(data)))
	}
	if f := c.net.faults; f != nil {
		return c.sendFaulty(f, data)
	}
	return c.sendRaw(data, 0)
}

// sendRaw performs the undisturbed send with extra added latency.
func (c *Conn) sendRaw(data []byte, extra time.Duration) error {
	select {
	case <-c.closed:
		return fmt.Errorf("send: %w", ErrClosed)
	case <-c.peer.closed:
		return fmt.Errorf("send: peer: %w", ErrClosed)
	default:
	}
	return c.deliver(message{data: data, readyAt: time.Now().Add(c.net.latency + extra)})
}

// deliver enqueues a ready message at the peer.
func (c *Conn) deliver(msg message) error {
	select {
	case c.peer.in <- msg:
		return nil
	case <-c.peer.closed:
		return fmt.Errorf("send: peer: %w", ErrClosed)
	}
}

// sendFaulty is the injected-fault send path: it asks the injector for
// a verdict and applies drop/delay/truncate/hold before (or instead of)
// delivery. Ownership follows SendOwned's contract — on a nil return
// the wire owns data, even if the verdict destroyed it. A dead
// connection fails before any verdict is drawn, so a Hold or Drop can
// never make a send on a closed endpoint look delivered.
func (c *Conn) sendFaulty(f FaultInjector, data []byte) error {
	select {
	case <-c.closed:
		return fmt.Errorf("send: %w", ErrClosed)
	case <-c.peer.closed:
		return fmt.Errorf("send: peer: %w", ErrClosed)
	default:
	}
	v := f.FaultFor(len(data))
	if m := c.net.metrics; m != nil {
		m.countFault(v, len(data))
	}
	if v.Drop {
		// Link failure: the message is lost with the connection. The
		// receiver drains anything already in flight and then observes
		// end of stream; the sender's next operation fails.
		PutBuffer(data)
		_ = c.Close()
		return nil
	}
	if v.TruncateTo > 0 && v.TruncateTo < len(data) {
		data = data[:v.TruncateTo]
	}
	if v.Hold > 0 {
		msg := &message{data: data, readyAt: time.Now().Add(c.net.latency + v.Delay)}
		c.faultMu.Lock()
		prev := c.held
		c.held = msg
		c.faultMu.Unlock()
		time.AfterFunc(v.Hold, func() { c.releaseHeld(msg) })
		if prev != nil {
			// Two consecutive holds: release the earlier message now, so
			// a message is reordered past at most one successor.
			c.deliverHeld(*prev)
		}
		return nil
	}
	if err := c.sendRaw(data, v.Delay); err != nil {
		return err
	}
	// The successor is on the wire; release any held predecessor after
	// it — the reorder.
	c.faultMu.Lock()
	prev := c.held
	c.held = nil
	c.faultMu.Unlock()
	if prev != nil {
		c.deliverHeld(*prev)
	}
	return nil
}

// deliverHeld releases a parked message without ever blocking: Close
// runs it under callers' locks (the monitor kernel tears descriptors
// down holding its mutex), so a full peer backlog must lose the
// message — as a congested link would — rather than wedge the caller.
func (c *Conn) deliverHeld(msg message) {
	select {
	case c.peer.in <- msg:
	default:
		PutBuffer(msg.data)
	}
}

// releaseHeld delivers msg if it is still the parked message — the
// hold timer's path; losing the race to a successor send or a close
// (which already released it) is a no-op.
func (c *Conn) releaseHeld(msg *message) {
	c.faultMu.Lock()
	if c.held != msg {
		c.faultMu.Unlock()
		return
	}
	c.held = nil
	c.faultMu.Unlock()
	c.deliverHeld(*msg)
}

// Recv blocks for the next message. It returns (nil, nil) on orderly
// peer close (end of stream), mirroring a zero-byte read. The returned
// buffer is owned by the caller: it may be retained indefinitely,
// handed onward with SendOwned, or returned to the pool with PutBuffer
// once its bytes are consumed.
func (c *Conn) Recv() ([]byte, error) {
	select {
	case msg := <-c.in:
		c.waitWire(msg)
		return msg.data, nil
	case <-c.closed:
		return nil, fmt.Errorf("recv: %w", ErrClosed)
	case <-c.peer.closed:
		// The peer may have sent messages before closing; drain first.
		select {
		case msg := <-c.in:
			c.waitWire(msg)
			return msg.data, nil
		default:
			return nil, nil
		}
	}
}

// waitWire blocks until the message has "crossed the wire".
func (c *Conn) waitWire(msg message) {
	if d := time.Until(msg.readyAt); d > 0 {
		c.net.sleep(d)
	}
}

// Close shuts the endpoint down. Peer reads observe end of stream
// after draining in-flight messages. A message still held for
// reordering is released first (it had already entered the wire).
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		if c.net.faults != nil {
			c.faultMu.Lock()
			prev := c.held
			c.held = nil
			c.faultMu.Unlock()
			if prev != nil {
				c.deliverHeld(*prev)
			}
		}
		close(c.closed)
	})
	return nil
}
