package simnet

import (
	"sync"
	"testing"
	"time"
)

// scripted replays a fixed verdict sequence (then clean delivery).
type scripted struct {
	mu     sync.Mutex
	faults []Fault
	i      int
}

func (s *scripted) FaultFor(int) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.i >= len(s.faults) {
		return Fault{}
	}
	f := s.faults[s.i]
	s.i++
	return f
}

// faultPair builds a connected pair on a network with the given
// scripted verdicts.
func faultPair(t *testing.T, faults ...Fault) (client, server *Conn) {
	t.Helper()
	net := New(0)
	net.SetFaultInjector(&scripted{faults: faults})
	l, err := net.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	client, err = net.Dial(1)
	if err != nil {
		t.Fatal(err)
	}
	server, err = l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestFaultDropSeversConnection(t *testing.T) {
	client, server := faultPair(t, Fault{Drop: true})
	if err := client.Send([]byte("lost")); err != nil {
		t.Fatalf("dropped send errored: %v", err)
	}
	// The receiver observes end of stream, as from a failed link.
	if msg, err := server.Recv(); err != nil || msg != nil {
		t.Fatalf("Recv after drop = %q, %v; want EOF", msg, err)
	}
	// The sender's endpoint is dead.
	if err := client.Send([]byte("next")); err == nil {
		t.Fatal("send on severed connection succeeded")
	}
}

func TestFaultTruncateDeliversPrefix(t *testing.T) {
	client, server := faultPair(t, Fault{TruncateTo: 2})
	if err := client.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil || string(msg) != "he" {
		t.Fatalf("Recv = %q, %v; want %q", msg, err, "he")
	}
}

func TestFaultDelayAddsLatency(t *testing.T) {
	const extra = 20 * time.Millisecond
	client, server := faultPair(t, Fault{Delay: extra})
	start := time.Now()
	if err := client.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil || string(msg) != "slow" {
		t.Fatalf("Recv = %q, %v", msg, err)
	}
	if d := time.Since(start); d < extra {
		t.Errorf("message crossed in %v, want >= %v", d, extra)
	}
}

func TestFaultHoldReordersAdjacentMessages(t *testing.T) {
	client, server := faultPair(t, Fault{Hold: time.Second})
	if err := client.Send([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := client.Send([]byte("second")); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"second", "first"} {
		msg, err := server.Recv()
		if err != nil || string(msg) != want {
			t.Fatalf("Recv %d = %q, %v; want %q", i, msg, err, want)
		}
	}
}

func TestFaultHoldReleasedByTimer(t *testing.T) {
	// A held message with no successor must not strand the receiver:
	// the hold bound releases it.
	client, server := faultPair(t, Fault{Hold: 15 * time.Millisecond})
	start := time.Now()
	if err := client.Send([]byte("only")); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil || string(msg) != "only" {
		t.Fatalf("Recv = %q, %v", msg, err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("held message arrived after %v, want ~15ms", d)
	}
}

func TestFaultHoldReleasedOnClose(t *testing.T) {
	client, server := faultPair(t, Fault{Hold: time.Minute})
	if err := client.Send([]byte("parting")); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	// The held message entered the wire before the close: it must be
	// delivered ahead of the end-of-stream marker.
	msg, err := server.Recv()
	if err != nil || string(msg) != "parting" {
		t.Fatalf("Recv = %q, %v", msg, err)
	}
	if msg, err := server.Recv(); err != nil || msg != nil {
		t.Fatalf("second Recv = %q, %v; want EOF", msg, err)
	}
}
