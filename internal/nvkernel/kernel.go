// Package nvkernel implements the N-variant monitor "kernel" of the
// paper (§3.1): it launches N variants of a program, synchronizes them
// at system-call boundaries, checks that every rendezvous is made with
// equivalent arguments (after per-variant inverse reexpression of
// UID-typed data), performs input system calls once (replicating
// results to all variants), performs output system calls once (after
// cross-checking payloads), supports unshared files with per-variant
// contents (§3.4), and implements the detection system calls of
// Table 2. Any divergence raises an Alarm, which in the paper's threat
// model is a detected attack.
//
// The paper's implementation is a modified Linux kernel monitoring a
// prefork Apache *process group*; this is a user-space simulation of
// exactly the syscall-boundary contract the paper states, with
// variants as goroutines over simulated address spaces (see DESIGN.md,
// substitutions table). A group may hold W ≥ 1 worker lanes (the
// prefork workers): each lane is an independent N-variant rendezvous
// with its own monitor goroutine and per-lane scratch, while the
// descriptor table, credentials, virtual time, captured output and the
// alarm are group-wide — and an alarm in any lane kills the entire
// group, preserving the paper's detection contract.
package nvkernel

import (
	"bytes"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vmem"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// Result is the outcome of running an N-variant process group.
type Result struct {
	// Clean reports an orderly exit with no alarm (every worker lane
	// exited).
	Clean bool
	// Status is the primary lane's exit status (valid when Clean).
	Status word.Word
	// Alarm is non-nil when the monitor detected divergence.
	Alarm *Alarm
	// Stdout captures bytes written to fd 1 (written once, as with any
	// output syscall).
	Stdout []byte
	// Stderr captures bytes written to fd 2.
	Stderr []byte
	// Rendezvous counts monitored syscall rendezvous across all lanes.
	Rendezvous int
	// Workers is the number of worker lanes the group ran (1 unless the
	// program preforked).
	Workers int
	// VTime is the group's virtual clock at teardown — the
	// deterministic in-matrix timestamp audit consumers pair with the
	// out-of-matrix wall clock.
	VTime uint32
	// VariantErrs holds each variant's terminal error (nil for clean
	// returns and monitor kills), lane-major: lane 0's variants first.
	VariantErrs []error
	// Evictions records the quorum machinery's degraded-mode history:
	// one entry per variant fault absorbed by eviction, in eviction
	// order. Empty unless WithQuorum was set and a fault occurred.
	Evictions []Eviction
}

// Detected reports whether the run ended in an alarm.
func (r *Result) Detected() bool { return r.Alarm != nil }

// Degraded reports whether the group evicted at least one variant and
// finished on a K-of-N quorum.
func (r *Result) Degraded() bool { return len(r.Evictions) > 0 }

// callMsg is one variant's arrival at a syscall rendezvous.
type callMsg struct {
	call  sys.Call
	reply chan sys.Reply
}

// variantRT is the runtime state of one variant of one lane. Each
// variant owns one preallocated mailbox (msg plus its long-lived
// buffered reply channel), reused for every syscall: a variant has at
// most one call in flight, and its lane monitor sends exactly one reply
// per received message, so nothing is ever allocated per rendezvous.
type variantRT struct {
	id    int
	calls chan *callMsg
	done  chan struct{}
	// gone is closed when the variant is evicted group-wide (quorum
	// degraded mode): the lane monitor stops reading calls, and the
	// variant's invoker answers Killed instead of parking on a
	// rendezvous nobody gathers. Nil when the group runs without a
	// quorum — the hot path then carries no extra select case.
	gone chan struct{}
	err  error
	mem  *vmem.Space
	msg  callMsg
}

// Run executes progs (one per variant) as an N-variant process group
// under the monitor. len(progs) is the group size: 1 reproduces the
// paper's "unmodified kernel" baseline configurations, 2 the deployed
// systems. A program that calls Context.Prefork widens the group into
// W concurrent worker lanes (each lane runs all N variants).
func Run(world *vos.World, net *simnet.Network, progs []sys.Program, opts ...Option) (*Result, error) {
	n := len(progs)
	if n == 0 {
		return nil, errors.New("nvkernel: no variants")
	}
	cfg := defaultConfig(n)
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.UIDFuncs) != n {
		return nil, fmt.Errorf("nvkernel: %d UID funcs for %d variants", len(cfg.UIDFuncs), n)
	}
	if cfg.Spec != nil {
		if cfg.Spec.N() != n {
			// A width mismatch would deploy a partition layout and
			// record a configuration different from what the spec was
			// validated for.
			return nil, fmt.Errorf("nvkernel: spec describes %d variants, got %d programs", cfg.Spec.N(), n)
		}
		if cfg.Spec.HasLayer(reexpress.LayerInstructionTags) {
			// Variants here are native programs; instruction words only
			// exist on the tagged-ISA substrate. Refusing is better
			// than reporting a security layer as deployed while
			// ignoring it.
			return nil, fmt.Errorf("nvkernel: instruction-tag layers deploy on the isa substrate (isa.RunSpec), not under the monitor kernel")
		}
	}

	if cfg.Quorum > 0 && n > 64 {
		// The live set is a single uint64 mask; wider groups would need
		// a different representation, and nothing near that width exists.
		return nil, fmt.Errorf("nvkernel: quorum mode supports at most 64 variants, got %d", n)
	}

	// Address canonicalization width: the two-variant construction
	// clears the single high (partition) bit; N > 2 partitioned groups
	// clear the ⌈log₂N⌉ slot-index bits instead.
	addrBits := 1
	if cfg.AddressPartition && n > 2 {
		addrBits = vmem.PartitionBits(n)
	}

	// Per-variant partition slots, computed once and reused by every
	// lane (worker lanes get fresh address spaces with the same
	// per-variant layout, like forked processes of the same variant).
	parts := make([]vmem.Partition, n)
	for i := 0; i < n; i++ {
		parts[i] = vmem.PartitionNone
		if cfg.AddressPartition {
			var err error
			parts[i], err = vmem.PartitionSlot(i, n)
			if err != nil {
				return nil, fmt.Errorf("nvkernel: partition variant %d of %d: %w", i, n, err)
			}
		}
	}

	s := &system{
		world:    world,
		net:      net,
		cfg:      cfg,
		n:        n,
		progs:    progs,
		parts:    parts,
		addrBits: addrBits,
		// stop is closed when the post-run drain retires: any variant
		// that reaches a syscall after that (e.g. a spinner that
		// outlived the grace period) is answered Killed right here
		// instead of parking forever on a rendezvous channel nobody
		// reads anymore.
		stop: make(chan struct{}),
		// killed is closed on the first alarm: the group-wide kill
		// fan-out that makes every sibling lane's monitor retire.
		killed: make(chan struct{}),
	}

	primary := s.newLane(0)
	s.lanes = []*lane{primary}
	for i := 0; i < n; i++ {
		v := primary.variants[i]
		prog := progs[i]
		ctx := sys.NewContext(i, n, v.mem, s.invokerFor(primary, v))
		go func() {
			defer close(v.done)
			err := prog.Run(ctx)
			if err == nil && !ctx.Exited() {
				err = ctx.Exit(0)
			}
			if err != nil && !errors.Is(err, sys.ErrKilled) {
				v.err = err
			}
		}()
	}

	s.monitors.Add(1)
	go func() {
		defer s.monitors.Done()
		primary.monitor()
	}()
	s.monitors.Wait()

	// All lane monitors have retired, so the lane roster is final.
	// Drain: answer any straggler syscalls with Killed until every
	// variant goroutine has returned. A variant that spins without
	// syscalls cannot be preempted (goroutines are not killable the
	// way the paper's kernel SIGKILLs a process), so the wait is
	// bounded by a grace period; stragglers are reported as such. The
	// stop channel makes the drain goroutines and the all-done waiter
	// exit when the grace period fires; a straggler that reaches a
	// syscall after that is answered Killed by its own invoke (above),
	// so only a variant that never syscalls again can outlive Run.
	for _, l := range s.lanes {
		for _, v := range l.variants {
			go func(v *variantRT) {
				for {
					select {
					case m := <-v.calls:
						m.reply <- sys.Reply{Killed: true}
					case <-v.done:
						return
					case <-s.stop:
						return
					}
				}
			}(v)
		}
	}
	allDone := make(chan struct{})
	go func() {
		defer close(allDone)
		for _, l := range s.lanes {
			for _, v := range l.variants {
				select {
				case <-v.done:
				case <-s.stop:
					return
				}
			}
		}
	}()
	grace := time.NewTimer(cfg.Timeout)
	select {
	case <-allDone:
		grace.Stop()
	case <-grace.C:
	}
	close(s.stop)

	res := &Result{
		Clean:       s.alarm == nil && s.exitedLanes == len(s.lanes),
		Status:      s.status,
		Alarm:       s.alarm,
		Stdout:      s.stdout,
		Stderr:      s.stderr,
		Workers:     len(s.lanes),
		VTime:       s.vtime.Load(),
		VariantErrs: make([]error, 0, n*len(s.lanes)),
	}
	s.mu.Lock()
	res.Evictions = append(res.Evictions, s.evictions...)
	s.mu.Unlock()
	for _, l := range s.lanes {
		res.Rendezvous += l.rendezvous
		for _, v := range l.variants {
			select {
			case <-v.done:
				res.VariantErrs = append(res.VariantErrs, v.err)
			default:
				res.VariantErrs = append(res.VariantErrs, errStillRunning)
			}
		}
	}
	return res, nil
}

// errStillRunning marks a variant that had not terminated when the
// post-alarm grace period expired.
var errStillRunning = errors.New("nvkernel: variant still running at shutdown")

// system is the group-wide kernel state shared by every worker lane.
// Ownership map (the "Concurrency model" section of DESIGN.md):
//
//   - Per lane, monitor-goroutine private: the variant mailboxes and
//     the rendezvous scratch (msgs/canon/ioBuf/cmpBuf) — never locked,
//     which is what keeps the steady-state loop allocation- and
//     contention-free.
//   - Group-wide under mu: the descriptor table (with the filesystem
//     it reaches — vos.FS is single-threaded by contract), credentials,
//     captured stdout/stderr, the alarm slot and exit bookkeeping. mu
//     is never held across a blocking operation: lanes look an entry
//     up under mu, then block on the simnet object (itself
//     thread-safe) with mu released, so Accept is the only place
//     concurrent lanes serialize for more than a table probe — exactly
//     prefork Apache's accept contention.
//   - Group-wide lock-free: virtual time and the scoreboard counter
//     (atomics), the killed channel (close-once).
type system struct {
	world    *vos.World
	net      *simnet.Network
	cfg      Config
	n        int
	progs    []sys.Program
	parts    []vmem.Partition
	addrBits int

	mu          sync.Mutex
	files       []fileEntry
	stdout      []byte
	stderr      []byte
	alarm       *Alarm
	lanes       []*lane
	exitedLanes int
	status      word.Word
	preforked   bool

	// vtime is the group's virtual clock: it ticks once per completed
	// rendezvous across all lanes, so every audit stamp (Alarm.VTime,
	// Result.VTime) and Time syscall reply is a position on the same
	// monotonic, wall-clock-free timeline.
	vtime atomic.Uint32
	score atomic.Int64

	// evicted is the group-wide live-set mask: bit i set means variant
	// i has been evicted by the quorum machinery. Lanes copy it into
	// their private dead mask at the top of each gather round (one
	// atomic load; no lock), so the steady-state loop allocates nothing
	// and rebuilds no slices. Writes happen under mu in tryEvict;
	// evictions (under mu) is the ordered record Result reports.
	evicted   atomic.Uint64
	evictions []Eviction

	killed   chan struct{}
	killOnce sync.Once
	stop     chan struct{}
	monitors sync.WaitGroup
}

// invokerFor builds the syscall invoker of one variant of one lane.
// Quorum groups get an invoker with one extra select case (the
// variant's eviction channel); unanimous groups keep the two-case
// select byte-for-byte, so enabling the feature elsewhere costs the
// paper-contract hot path nothing.
func (s *system) invokerFor(l *lane, v *variantRT) sys.Invoker {
	hook := s.cfg.Faults
	if v.gone != nil {
		gone := v.gone
		return func(call sys.Call) sys.Reply {
			if hook != nil {
				if stall, crash := hook.PreSyscall(l.id, v.id, call.Num); crash {
					return sys.Reply{Crashed: true}
				} else if stall > 0 {
					time.Sleep(stall)
				}
			}
			v.msg.call = call
			select {
			case v.calls <- &v.msg:
				return <-v.msg.reply
			case <-gone:
				// Evicted: no monitor gathers this variant anymore. Killed
				// unwinds the goroutine exactly like a group teardown.
				return sys.Reply{Killed: true}
			case <-s.stop:
				return sys.Reply{Killed: true}
			}
		}
	}
	return func(call sys.Call) sys.Reply {
		if hook != nil {
			if stall, crash := hook.PreSyscall(l.id, v.id, call.Num); crash {
				// The variant dies before reaching the rendezvous: its
				// goroutine unwinds via ErrCrashed and the lane monitor
				// observes the death as a variant fault.
				return sys.Reply{Crashed: true}
			} else if stall > 0 {
				time.Sleep(stall)
			}
		}
		v.msg.call = call
		select {
		case v.calls <- &v.msg:
			return <-v.msg.reply
		case <-s.stop:
			return sys.Reply{Killed: true}
		}
	}
}

// lane is one worker lane: an independent N-variant rendezvous with
// its own monitor goroutine and scratch, sharing the system state.
type lane struct {
	sys *system
	id  int

	// cred is the lane's credential set — per lane, exactly as fork
	// gives each prefork worker its own copy of the parent's
	// credentials. Worker lanes snapshot the primary lane's cred at
	// prefork time. Monitor-goroutine private: a lane changing its
	// identity (httpd's per-request seteuid dance) must never race a
	// sibling lane's permission checks — with one group-wide cred, a
	// lane's between-requests re-escalation to root would let a
	// concurrent sibling open a root-only document and leak it.
	cred vos.Cred

	variants []*variantRT

	// Rendezvous scratch, reused across iterations so the steady-state
	// monitor loop allocates nothing: the arrival slice, the canonical
	// argument vector, the payload-gathering buffers, and the pinned
	// open-file descriptions of the write path.
	msgs   []*callMsg
	canon  []word.Word
	ioBuf  []byte // reference-variant payloads and shared-read staging
	cmpBuf []byte // other variants' payloads during cross-checking
	pin    []*vos.OpenFile

	// Live-set view (monitor-goroutine private, synced from the
	// group-wide evicted mask at the top of each gather round): dead is
	// the local copy of the eviction bitmask, live the surviving count,
	// ref the lowest live index — the variant every cross-check
	// compares against (variant 0 until it is evicted, so unanimous
	// groups behave and report byte-identically).
	dead uint64
	live int
	ref  int

	rendezvous int
	exited     bool
}

// newLane allocates lane id with fresh per-variant address spaces and
// mailboxes, starting from the group's initial credentials. The lane
// is not yet registered or running.
func (s *system) newLane(id int) *lane {
	l := &lane{sys: s, id: id, cred: s.cfg.Cred, live: s.n}
	l.variants = make([]*variantRT, s.n)
	for i := 0; i < s.n; i++ {
		l.variants[i] = &variantRT{
			id:    i,
			calls: make(chan *callMsg),
			done:  make(chan struct{}),
			mem:   vmem.New(s.parts[i]),
		}
		if s.cfg.Quorum > 0 {
			l.variants[i].gone = make(chan struct{})
		}
		l.variants[i].msg.reply = make(chan sys.Reply, 1)
	}
	l.msgs = make([]*callMsg, s.n)
	return l
}

// spawnWorkerLane starts worker lane id running the given worker
// bodies (one per variant) with its own monitor goroutine. cred is
// the forking lane's credentials at prefork time — the fork-copied
// identity the worker starts with.
func (s *system) spawnWorkerLane(id int, workers []sys.WorkerProgram, cred vos.Cred) {
	l := s.newLane(id)
	l.cred = cred
	for i := 0; i < s.n; i++ {
		v := l.variants[i]
		wp := workers[i]
		ctx := sys.NewContext(i, s.n, v.mem, s.invokerFor(l, v))
		ctx.Worker = id
		go func() {
			defer close(v.done)
			err := wp.RunWorker(ctx, id)
			if err == nil && !ctx.Exited() {
				err = ctx.Exit(0)
			}
			if err != nil && !errors.Is(err, sys.ErrKilled) {
				v.err = err
			}
		}()
	}
	s.mu.Lock()
	s.lanes = append(s.lanes, l)
	if g := s.evicted.Load(); g != 0 {
		// The group degraded before this worker lane registered (a
		// prefork racing an eviction): close the evicted variants' gone
		// channels here, in the same critical section tryEvict's
		// roster-wide close runs under, so the new lane's variants
		// cannot miss the signal.
		for i := 0; i < s.n; i++ {
			if g&(1<<uint(i)) != 0 {
				close(l.variants[i].gone)
			}
		}
	}
	s.mu.Unlock()
	s.monitors.Add(1)
	go func() {
		defer s.monitors.Done()
		l.monitor()
	}()
}

// monitor runs the lane's rendezvous loop until exit, alarm, or a
// sibling lane's kill. The rendezvous deadline is amortized: the timer
// is armed once and checked lazily against rendezvous progress when it
// fires, instead of being reset and drained on every iteration. A
// stalled rendezvous is therefore detected after between one and two
// Timeouts (never before Timeout), trading alarm latency bounded by 2×
// for zero timer traffic on the hot path.
func (l *lane) monitor() {
	s := l.sys
	timer := time.NewTimer(s.cfg.Timeout)
	defer timer.Stop()
	armedAt := 0 // rendezvous count when the timer was last armed
	for {
		l.syncLive()
		for i := range l.msgs {
			l.msgs[i] = nil
		}
		for i, v := range l.variants {
			if l.dead&(1<<uint(i)) != 0 {
				// Evicted in an earlier round (or earlier this round):
				// nobody gathers this variant anymore.
				continue
			}
		arrival:
			for {
				select {
				case m := <-v.calls:
					l.msgs[i] = m
					break arrival
				case <-v.done:
					// A variant died without reaching the rendezvous: a
					// variant fault. With a quorum and enough live
					// survivors the group evicts it and degrades;
					// otherwise (unanimous, or quorum lost) the fault
					// kills the group as before.
					detail := "variant terminated unexpectedly"
					if v.err != nil {
						detail = v.err.Error()
					}
					if l.tryEvict(i, FaultCrash, detail) {
						l.reapDead()
						break arrival
					}
					reason := ReasonVariantFault
					if s.cfg.Quorum > 0 {
						reason = ReasonQuorumLost
					}
					l.raise(&Alarm{
						Reason:  reason,
						Syscall: "(none)",
						Seq:     l.rendezvous,
						Variant: i,
						Detail:  detail,
					}, l.msgs)
					return
				case <-v.gone:
					// A sibling lane evicted this variant while we were
					// waiting for it: adopt the group's live set and move
					// on. (Receiving on the nil gone channel of a
					// no-quorum group blocks forever, i.e. this case is
					// compiled out of the unanimous contract.)
					l.applyDead(s.evicted.Load())
					l.reapDead()
					break arrival
				case <-s.killed:
					// A sibling lane alarmed (or the group is being
					// torn down): retire this lane, releasing the
					// variants already gathered.
					l.killGathered()
					return
				case <-timer.C:
					if l.rendezvous != armedAt {
						// Progress since the last arming: re-arm for a
						// fresh window and keep waiting.
						armedAt = l.rendezvous
						timer.Reset(s.cfg.Timeout)
						continue
					}
					detail := fmt.Sprintf("variant %d did not reach rendezvous within %v", i, s.cfg.Timeout)
					if l.tryEvict(i, FaultStall, detail) {
						l.reapDead()
						armedAt = l.rendezvous
						timer.Reset(s.cfg.Timeout)
						break arrival
					}
					reason := ReasonTimeout
					if s.cfg.Quorum > 0 {
						reason = ReasonQuorumLost
					}
					l.raise(&Alarm{
						Reason:  reason,
						Syscall: "(none)",
						Seq:     l.rendezvous,
						Variant: i,
						Detail:  detail,
					}, l.msgs)
					return
				}
			}
		}

		l.rendezvous++
		s.vtime.Add(1)
		if m := s.cfg.Metrics; m != nil {
			// Timed rendezvous: two clock reads and a few atomic adds —
			// the loop stays allocation-free (proven by
			// TestInstrumentedRendezvousZeroAlloc and the bench gate).
			start := time.Now()
			num := l.msgs[l.ref].call.Num
			stop := l.dispatch(l.msgs)
			m.observeRendezvous(num, time.Since(start))
			if stop {
				return
			}
			continue
		}
		if l.dispatch(l.msgs) {
			return
		}
	}
}

// syncLive refreshes the lane's private live-set view from the
// group-wide eviction mask. Called at the top of every gather round:
// one branch for unanimous groups, one atomic load for quorum groups —
// the steady-state loop stays allocation- and lock-free.
func (l *lane) syncLive() {
	if l.sys.cfg.Quorum <= 0 {
		return
	}
	if g := l.sys.evicted.Load(); g != l.dead {
		l.applyDead(g)
	}
}

// applyDead installs eviction mask g as the lane's live-set view:
// dead/live/ref are recomputed in place (no slice rebuild). ref is the
// lowest live index — the reference every cross-check compares
// against, variant 0 until variant 0 itself is evicted, so unanimous
// groups behave and report byte-identically.
func (l *lane) applyDead(g uint64) {
	l.dead = g
	l.live = l.sys.n - bits.OnesCount64(g)
	l.ref = bits.TrailingZeros64(^g)
}

// reapDead restores the gather invariant after a mid-round live-set
// change: any already-gathered arrival whose variant is now dead is
// answered Killed and its slot cleared, so a non-nil slot always
// belongs to a live variant when the round dispatches.
func (l *lane) reapDead() {
	for j, m := range l.msgs {
		if m != nil && l.dead&(1<<uint(j)) != 0 {
			m.reply <- sys.Reply{Killed: true}
			l.msgs[j] = nil
		}
	}
}

// tryEvict attempts to absorb a variant fault by eviction: with a
// quorum configured, no alarm pending, and at least Quorum variants
// live after dropping the faulted one, the variant is evicted
// group-wide (audit entry appended, every lane's gone channel closed)
// and the lane adopts the new live set. It returns false when the
// fault must kill the group instead — no quorum configured, or
// evicting would fall below K.
func (l *lane) tryEvict(variant int, kind FaultKind, detail string) bool {
	s := l.sys
	if s.cfg.Quorum <= 0 {
		return false
	}
	bit := uint64(1) << uint(variant)
	s.mu.Lock()
	if s.alarm != nil {
		// An alarm outranks degraded mode: the group is dying anyway.
		s.mu.Unlock()
		return false
	}
	g := s.evicted.Load()
	if g&bit != 0 {
		// A sibling lane evicted this variant first: adopt its view.
		s.mu.Unlock()
		l.applyDead(g)
		return true
	}
	liveAfter := s.n - bits.OnesCount64(g) - 1
	if liveAfter < s.cfg.Quorum {
		s.mu.Unlock()
		return false
	}
	g |= bit
	s.evicted.Store(g)
	ev := Eviction{
		Variant: variant,
		Worker:  l.id,
		Kind:    kind,
		Seq:     l.rendezvous,
		VTime:   s.vtime.Load(),
		Live:    liveAfter,
		Detail:  detail,
	}
	s.evictions = append(s.evictions, ev)
	// Closing under mu pairs with lane registration in spawnWorkerLane:
	// every lane either sees the mask at registration or gets its gone
	// channels closed here — never neither.
	for _, other := range s.lanes {
		close(other.variants[variant].gone)
	}
	s.mu.Unlock()
	if m := s.cfg.Metrics; m != nil {
		m.observeEviction(kind)
	}
	if fn := s.cfg.OnEvict; fn != nil {
		fn(ev)
	}
	l.applyDead(g)
	return true
}

// killGathered answers every already-gathered arrival with Killed.
// Variants not yet at the rendezvous are unwound by the end-of-Run
// drain.
func (l *lane) killGathered() {
	for _, m := range l.msgs {
		if m != nil {
			m.reply <- sys.Reply{Killed: true}
		}
	}
}

// raise records the alarm (first alarm wins group-wide), kills the
// gathered variants of this lane, and tears the whole group down — as
// the paper's kernel SIGKILLs the process group: every descriptor is
// released, which unblocks sibling lanes parked in accept/recv so
// their monitors retire too. Closing connections is what a remote
// attacker observes: the connection drops with no response.
func (l *lane) raise(a *Alarm, pending []*callMsg) {
	s := l.sys
	a.Worker = l.id
	// Stamped unconditionally — with or without metrics attached the
	// run behaves identically, which is what keeps seeded campaign
	// output byte-identical when instrumentation is enabled.
	a.At = time.Now()
	a.VTime = s.vtime.Load()
	won := false
	s.mu.Lock()
	if s.alarm == nil {
		s.alarm = a
		won = true
	}
	s.mu.Unlock()
	for _, m := range pending {
		if m != nil {
			m.reply <- sys.Reply{Killed: true}
		}
	}
	s.kill()
	if won {
		if m := s.cfg.Metrics; m != nil {
			m.observeAlarm(a.Reason, time.Since(a.At))
		}
	}
}

// kill signals the group-wide teardown and releases every descriptor.
func (s *system) kill() {
	s.killOnce.Do(func() { close(s.killed) })
	s.mu.Lock()
	s.closeAllLocked()
	s.mu.Unlock()
}

// killedNow reports whether the group kill has been signalled.
func (s *system) killedNow() bool {
	select {
	case <-s.killed:
		return true
	default:
		return false
	}
}

// dispatch checks rendezvous equivalence and executes the syscall.
// It returns true when the lane's monitor loop should stop. Slots of
// evicted variants are nil (degraded mode); every cross-check compares
// the live variants against the reference variant l.ref.
func (l *lane) dispatch(msgs []*callMsg) bool {
	s := l.sys
	seq := l.rendezvous - 1
	ref := l.ref
	num := msgs[ref].call.Num
	spec, ok := sys.SpecFor(num)
	if !ok {
		l.raise(&Alarm{
			Reason: ReasonSyscallMismatch, Syscall: "unknown", Seq: seq, Variant: ref,
			Detail: fmt.Sprintf("unknown syscall number %d", num),
		}, msgs)
		return true
	}

	// All (live) variants must make the same system call (§3.1).
	for i := 0; i < s.n; i++ {
		if i == ref || msgs[i] == nil {
			continue
		}
		if msgs[i].call.Num != num {
			l.raise(&Alarm{
				Reason:  ReasonSyscallMismatch,
				Syscall: spec.Name,
				Seq:     seq,
				Variant: i,
				Detail: fmt.Sprintf("variant %d at %s, variant %d at %s",
					ref, num, i, msgs[i].call.Num),
			}, msgs)
			return true
		}
	}

	// I/O on unshared files is per-variant by design (§3.4): each
	// variant reads or writes its own diversified file, so buffer
	// addresses and lengths may legitimately differ. Only the file
	// descriptor is required to agree; everything else is handled
	// per variant by the executor.
	if num == sys.Read || num == sys.Write {
		if alarm := l.checkArgCounts(spec, msgs, seq); alarm != nil {
			l.raise(alarm, msgs)
			return true
		}
		fd0 := msgs[ref].call.Args[0]
		s.mu.Lock()
		idx, err := s.slotFor(fd0)
		unsharedFile := err == nil && s.files[idx].kind == kindFile && !s.files[idx].shared
		s.mu.Unlock()
		if unsharedFile {
			for i := 0; i < s.n; i++ {
				if i == ref || msgs[i] == nil {
					continue
				}
				if msgs[i].call.Args[0] != fd0 {
					l.raise(&Alarm{
						Reason:  ReasonArgDivergence,
						Syscall: spec.Name,
						Seq:     seq,
						Variant: i,
						Detail:  fmt.Sprintf("fd %d differs from variant %d's %d", msgs[i].call.Args[0], ref, fd0),
					}, msgs)
					return true
				}
			}
			canon := l.canonBuf(3)
			canon[0], canon[1], canon[2] = fd0, 0, 0
			return l.execute(spec, num, canon, msgs, seq)
		}
	}

	// Canonicalize and compare arguments.
	canon, alarm := l.canonicalArgs(spec, msgs, seq)
	if alarm != nil {
		l.raise(alarm, msgs)
		return true
	}

	// Paths must be identical.
	if spec.TakesPath {
		p0 := msgs[ref].call.Data
		for i := 0; i < s.n; i++ {
			if i == ref || msgs[i] == nil {
				continue
			}
			if !bytes.Equal(msgs[i].call.Data, p0) {
				l.raise(&Alarm{
					Reason:  ReasonArgDivergence,
					Syscall: spec.Name,
					Seq:     seq,
					Variant: i,
					Detail:  fmt.Sprintf("path %q differs from variant %d's %q", msgs[i].call.Data, ref, p0),
				}, msgs)
				return true
			}
		}
	}

	return l.execute(spec, num, canon, msgs, seq)
}

// checkArgCounts validates each live variant's argument count against
// the spec.
func (l *lane) checkArgCounts(spec sys.Spec, msgs []*callMsg, seq int) *Alarm {
	nargs := len(spec.Args)
	for i, m := range msgs {
		if m == nil {
			continue
		}
		if len(m.call.Args) != nargs {
			return &Alarm{
				Reason:  ReasonArgDivergence,
				Syscall: spec.Name,
				Seq:     seq,
				Variant: i,
				Detail:  fmt.Sprintf("argument count %d, want %d", len(m.call.Args), nargs),
			}
		}
	}
	return nil
}

// canonBuf returns the lane's reusable canonical-argument scratch,
// sized to nargs. The returned slice is valid until the next
// rendezvous.
func (l *lane) canonBuf(nargs int) []word.Word {
	if cap(l.canon) < nargs {
		l.canon = make([]word.Word, nargs)
	}
	return l.canon[:nargs]
}

// canonicalArgs inverts/normalizes each live variant's arguments and
// checks cross-variant equivalence, returning the reference variant's
// canonical vector (borrowed scratch, valid until the next
// rendezvous). The reference is the lowest live index, so no non-nil
// slot precedes it.
func (l *lane) canonicalArgs(spec sys.Spec, msgs []*callMsg, seq int) ([]word.Word, *Alarm) {
	s := l.sys
	if alarm := l.checkArgCounts(spec, msgs, seq); alarm != nil {
		return nil, alarm
	}
	nargs := len(spec.Args)
	canon := l.canonBuf(nargs)
	ref := l.ref
	for j := 0; j < nargs; j++ {
		kind := spec.Args[j]
		var c0 word.Word
		for i := 0; i < s.n; i++ {
			if msgs[i] == nil {
				continue
			}
			raw := msgs[i].call.Args[j]
			var cv word.Word
			switch kind {
			case sys.ArgUID:
				inv, err := s.cfg.UIDFuncs[i].Invert(raw)
				if err != nil {
					return nil, &Alarm{
						Reason:  ReasonUIDDivergence,
						Syscall: spec.Name,
						Seq:     seq,
						Variant: i,
						Detail:  fmt.Sprintf("arg %d: invalid UID representation %s: %v", j, raw, err),
					}
				}
				cv = inv
			case sys.ArgAddr:
				cv = vmem.CanonicalIn(raw, s.addrBits)
			default:
				cv = raw
			}
			if i == ref {
				c0 = cv
				continue
			}
			if cv != c0 {
				reason := ReasonArgDivergence
				detail := fmt.Sprintf("arg %d: canonical %s differs from variant %d's %s", j, cv, ref, c0)
				switch kind {
				case sys.ArgUID:
					reason = ReasonUIDDivergence
					detail = fmt.Sprintf(
						"arg %d: UID decodes to %s in variant %d but %s in variant %d (raw %s vs %s)",
						j, cv.Decimal(), i, c0.Decimal(), ref, msgs[i].call.Args[j], msgs[ref].call.Args[j])
				case sys.ArgBool:
					reason = ReasonCondDivergence
					detail = fmt.Sprintf("condition value %d differs from variant %d's %d", cv, ref, c0)
				}
				return nil, &Alarm{
					Reason:  reason,
					Syscall: spec.Name,
					Seq:     seq,
					Variant: i,
					Detail:  detail,
				}
			}
		}
		canon[j] = c0
	}
	return canon, nil
}

// replyAll sends the same reply to every live variant (nil slots
// belong to evicted variants).
func replyAll(msgs []*callMsg, r sys.Reply) {
	for _, m := range msgs {
		if m != nil {
			m.reply <- r
		}
	}
}

// replyErrno sends an errno reply to every variant.
func replyErrno(msgs []*callMsg, err error) {
	if e, ok := vos.AsErrno(err); ok {
		replyAll(msgs, sys.Reply{Errno: e})
		return
	}
	replyAll(msgs, sys.Reply{Errno: vos.ErrInval})
}

// replyFail answers a failed blocking operation: with Killed when the
// group has been torn down (so variants unwind via ErrKilled instead
// of mistaking the teardown for an errno), with the errno otherwise.
// It returns true when the lane monitor should stop.
func (l *lane) replyFail(msgs []*callMsg, err error) bool {
	if l.sys.killedNow() {
		replyAll(msgs, sys.Reply{Killed: true})
		return true
	}
	replyErrno(msgs, err)
	return false
}
