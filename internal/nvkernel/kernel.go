// Package nvkernel implements the N-variant monitor "kernel" of the
// paper (§3.1): it launches N variants of a program, synchronizes them
// at system-call boundaries, checks that every rendezvous is made with
// equivalent arguments (after per-variant inverse reexpression of
// UID-typed data), performs input system calls once (replicating
// results to all variants), performs output system calls once (after
// cross-checking payloads), supports unshared files with per-variant
// contents (§3.4), and implements the detection system calls of
// Table 2. Any divergence raises an Alarm, which in the paper's threat
// model is a detected attack.
//
// The paper's implementation is a modified Linux kernel; this is a
// user-space simulation of exactly the syscall-boundary contract the
// paper states, with variants as goroutines over simulated address
// spaces (see DESIGN.md, substitutions table).
package nvkernel

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vmem"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// Result is the outcome of running an N-variant process group.
type Result struct {
	// Clean reports an orderly exit with no alarm.
	Clean bool
	// Status is the exit status (valid when Clean).
	Status word.Word
	// Alarm is non-nil when the monitor detected divergence.
	Alarm *Alarm
	// Stdout captures bytes written to fd 1 (written once, as with any
	// output syscall).
	Stdout []byte
	// Stderr captures bytes written to fd 2.
	Stderr []byte
	// Rendezvous counts monitored syscall rendezvous.
	Rendezvous int
	// VariantErrs holds each variant's terminal error (nil for clean
	// returns and monitor kills).
	VariantErrs []error
}

// Detected reports whether the run ended in an alarm.
func (r *Result) Detected() bool { return r.Alarm != nil }

// callMsg is one variant's arrival at a syscall rendezvous.
type callMsg struct {
	call  sys.Call
	reply chan sys.Reply
}

// variantRT is the runtime state of one variant. Each variant owns one
// preallocated mailbox (msg plus its long-lived buffered reply
// channel), reused for every syscall: a variant has at most one call
// in flight, and the monitor sends exactly one reply per received
// message, so nothing is ever allocated per rendezvous.
type variantRT struct {
	id    int
	calls chan *callMsg
	done  chan struct{}
	err   error
	mem   *vmem.Space
	msg   callMsg
}

// Run executes progs (one per variant) as an N-variant process group
// under the monitor. len(progs) is the group size: 1 reproduces the
// paper's "unmodified kernel" baseline configurations, 2 the deployed
// systems.
func Run(world *vos.World, net *simnet.Network, progs []sys.Program, opts ...Option) (*Result, error) {
	n := len(progs)
	if n == 0 {
		return nil, errors.New("nvkernel: no variants")
	}
	cfg := defaultConfig(n)
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.UIDFuncs) != n {
		return nil, fmt.Errorf("nvkernel: %d UID funcs for %d variants", len(cfg.UIDFuncs), n)
	}
	if cfg.Spec != nil {
		if cfg.Spec.N() != n {
			// A width mismatch would deploy a partition layout and
			// record a configuration different from what the spec was
			// validated for.
			return nil, fmt.Errorf("nvkernel: spec describes %d variants, got %d programs", cfg.Spec.N(), n)
		}
		if cfg.Spec.HasLayer(reexpress.LayerInstructionTags) {
			// Variants here are native programs; instruction words only
			// exist on the tagged-ISA substrate. Refusing is better
			// than reporting a security layer as deployed while
			// ignoring it.
			return nil, fmt.Errorf("nvkernel: instruction-tag layers deploy on the isa substrate (isa.RunSpec), not under the monitor kernel")
		}
	}

	// Address canonicalization width: the two-variant construction
	// clears the single high (partition) bit; N > 2 partitioned groups
	// clear the ⌈log₂N⌉ slot-index bits instead.
	addrBits := 1
	if cfg.AddressPartition && n > 2 {
		addrBits = vmem.PartitionBits(n)
	}

	s := &system{
		world:    world,
		net:      net,
		cfg:      cfg,
		n:        n,
		cred:     cfg.Cred,
		addrBits: addrBits,
	}

	variants := make([]*variantRT, n)
	for i := 0; i < n; i++ {
		part := vmem.PartitionNone
		if cfg.AddressPartition {
			var err error
			part, err = vmem.PartitionSlot(i, n)
			if err != nil {
				return nil, fmt.Errorf("nvkernel: partition variant %d of %d: %w", i, n, err)
			}
		}
		variants[i] = &variantRT{
			id:    i,
			calls: make(chan *callMsg),
			done:  make(chan struct{}),
			mem:   vmem.New(part),
		}
		variants[i].msg.reply = make(chan sys.Reply, 1)
	}
	s.variants = variants
	s.msgs = make([]*callMsg, n)

	// stop is closed when the post-run drain retires: any variant that
	// reaches a syscall after that (e.g. a spinner that outlived the
	// grace period) is answered Killed right here instead of parking
	// forever on a rendezvous channel nobody reads anymore.
	stop := make(chan struct{})

	for i := 0; i < n; i++ {
		v := variants[i]
		prog := progs[i]
		invoke := func(call sys.Call) sys.Reply {
			v.msg.call = call
			select {
			case v.calls <- &v.msg:
				return <-v.msg.reply
			case <-stop:
				return sys.Reply{Killed: true}
			}
		}
		ctx := sys.NewContext(i, n, v.mem, invoke)
		go func() {
			defer close(v.done)
			err := prog.Run(ctx)
			if err == nil && !ctx.Exited() {
				err = ctx.Exit(0)
			}
			if err != nil && !errors.Is(err, sys.ErrKilled) {
				v.err = err
			}
		}()
	}

	s.monitor()

	// Drain: answer any straggler syscalls with Killed until every
	// variant goroutine has returned. A variant that spins without
	// syscalls cannot be preempted (goroutines are not killable the
	// way the paper's kernel SIGKILLs a process), so the wait is
	// bounded by a grace period; stragglers are reported as such. The
	// stop channel makes the drain goroutines and the all-done waiter
	// exit when the grace period fires; a straggler that reaches a
	// syscall after that is answered Killed by its own invoke (above),
	// so only a variant that never syscalls again can outlive Run.
	for _, v := range variants {
		go func(v *variantRT) {
			for {
				select {
				case m := <-v.calls:
					m.reply <- sys.Reply{Killed: true}
				case <-v.done:
					return
				case <-stop:
					return
				}
			}
		}(v)
	}
	allDone := make(chan struct{})
	go func() {
		defer close(allDone)
		for _, v := range variants {
			select {
			case <-v.done:
			case <-stop:
				return
			}
		}
	}()
	grace := time.NewTimer(cfg.Timeout)
	select {
	case <-allDone:
		grace.Stop()
	case <-grace.C:
	}
	close(stop)

	res := &Result{
		Clean:       s.alarm == nil && s.exited,
		Status:      s.status,
		Alarm:       s.alarm,
		Stdout:      s.stdout,
		Stderr:      s.stderr,
		Rendezvous:  s.rendezvous,
		VariantErrs: make([]error, n),
	}
	for i, v := range variants {
		select {
		case <-v.done:
			res.VariantErrs[i] = v.err
		default:
			res.VariantErrs[i] = errStillRunning
		}
	}
	return res, nil
}

// errStillRunning marks a variant that had not terminated when the
// post-alarm grace period expired.
var errStillRunning = errors.New("nvkernel: variant still running at shutdown")

// system is the kernel state for one process group.
type system struct {
	world    *vos.World
	net      *simnet.Network
	cfg      Config
	n        int
	variants []*variantRT

	cred     vos.Cred
	files    []fileEntry
	vtime    word.Word
	addrBits int

	stdout, stderr []byte

	// Rendezvous scratch, reused across iterations so the steady-state
	// monitor loop allocates nothing: the arrival slice, the canonical
	// argument vector, and the payload-gathering buffers.
	msgs   []*callMsg
	canon  []word.Word
	ioBuf  []byte // variant-0 payloads and shared-read staging
	cmpBuf []byte // other variants' payloads during cross-checking

	rendezvous int
	alarm      *Alarm
	exited     bool
	status     word.Word
}

// monitor runs the rendezvous loop until exit or alarm. The rendezvous
// deadline is amortized: the timer is armed once and checked lazily
// against rendezvous progress when it fires, instead of being reset
// and drained on every iteration. A stalled rendezvous is therefore
// detected after between one and two Timeouts (never before Timeout),
// trading alarm latency bounded by 2× for zero timer traffic on the
// hot path.
func (s *system) monitor() {
	timer := time.NewTimer(s.cfg.Timeout)
	defer timer.Stop()
	armedAt := 0 // rendezvous count when the timer was last armed
	for {
		for i := range s.msgs {
			s.msgs[i] = nil
		}
		for i, v := range s.variants {
		arrival:
			for {
				select {
				case m := <-v.calls:
					s.msgs[i] = m
					break arrival
				case <-v.done:
					// A variant died without reaching the rendezvous:
					// alarm (unless the whole group already exited).
					detail := "variant terminated unexpectedly"
					if v.err != nil {
						detail = v.err.Error()
					}
					s.raise(&Alarm{
						Reason:  ReasonVariantFault,
						Syscall: "(none)",
						Seq:     s.rendezvous,
						Variant: i,
						Detail:  detail,
					}, s.msgs)
					return
				case <-timer.C:
					if s.rendezvous != armedAt {
						// Progress since the last arming: re-arm for a
						// fresh window and keep waiting.
						armedAt = s.rendezvous
						timer.Reset(s.cfg.Timeout)
						continue
					}
					s.raise(&Alarm{
						Reason:  ReasonTimeout,
						Syscall: "(none)",
						Seq:     s.rendezvous,
						Variant: i,
						Detail:  fmt.Sprintf("variant %d did not reach rendezvous within %v", i, s.cfg.Timeout),
					}, s.msgs)
					return
				}
			}
		}

		s.rendezvous++
		done := s.dispatch(s.msgs)
		if done {
			return
		}
	}
}

// raise records the alarm, kills all gathered variants, and releases
// every descriptor the group held — as the kernel would on SIGKILL of
// the process group. Closing connections is what a remote attacker
// observes: the connection drops with no response.
func (s *system) raise(a *Alarm, pending []*callMsg) {
	if s.alarm == nil {
		s.alarm = a
	}
	for _, m := range pending {
		if m != nil {
			m.reply <- sys.Reply{Killed: true}
		}
	}
	s.closeAll()
}

// dispatch checks rendezvous equivalence and executes the syscall.
// It returns true when the monitor loop should stop.
func (s *system) dispatch(msgs []*callMsg) bool {
	seq := s.rendezvous - 1
	num := msgs[0].call.Num
	spec, ok := sys.SpecFor(num)
	if !ok {
		s.raise(&Alarm{
			Reason: ReasonSyscallMismatch, Syscall: "unknown", Seq: seq, Variant: 0,
			Detail: fmt.Sprintf("unknown syscall number %d", num),
		}, msgs)
		return true
	}

	// All variants must make the same system call (§3.1).
	for i := 1; i < s.n; i++ {
		if msgs[i].call.Num != num {
			s.raise(&Alarm{
				Reason:  ReasonSyscallMismatch,
				Syscall: spec.Name,
				Seq:     seq,
				Variant: i,
				Detail: fmt.Sprintf("variant 0 at %s, variant %d at %s",
					num, i, msgs[i].call.Num),
			}, msgs)
			return true
		}
	}

	// I/O on unshared files is per-variant by design (§3.4): each
	// variant reads or writes its own diversified file, so buffer
	// addresses and lengths may legitimately differ. Only the file
	// descriptor is required to agree; everything else is handled
	// per variant by the executor.
	if num == sys.Read || num == sys.Write {
		if alarm := s.checkArgCounts(spec, msgs, seq); alarm != nil {
			s.raise(alarm, msgs)
			return true
		}
		fd0 := msgs[0].call.Args[0]
		if idx, err := s.slotFor(fd0); err == nil &&
			s.files[idx].kind == kindFile && !s.files[idx].shared {
			for i := 1; i < s.n; i++ {
				if msgs[i].call.Args[0] != fd0 {
					s.raise(&Alarm{
						Reason:  ReasonArgDivergence,
						Syscall: spec.Name,
						Seq:     seq,
						Variant: i,
						Detail:  fmt.Sprintf("fd %d differs from variant 0's %d", msgs[i].call.Args[0], fd0),
					}, msgs)
					return true
				}
			}
			canon := s.canonBuf(3)
			canon[0], canon[1], canon[2] = fd0, 0, 0
			return s.execute(spec, num, canon, msgs, seq)
		}
	}

	// Canonicalize and compare arguments.
	canon, alarm := s.canonicalArgs(spec, msgs, seq)
	if alarm != nil {
		s.raise(alarm, msgs)
		return true
	}

	// Paths must be identical.
	if spec.TakesPath {
		p0 := msgs[0].call.Data
		for i := 1; i < s.n; i++ {
			if !bytes.Equal(msgs[i].call.Data, p0) {
				s.raise(&Alarm{
					Reason:  ReasonArgDivergence,
					Syscall: spec.Name,
					Seq:     seq,
					Variant: i,
					Detail:  fmt.Sprintf("path %q differs from variant 0's %q", msgs[i].call.Data, p0),
				}, msgs)
				return true
			}
		}
	}

	return s.execute(spec, num, canon, msgs, seq)
}

// checkArgCounts validates each variant's argument count against the
// spec.
func (s *system) checkArgCounts(spec sys.Spec, msgs []*callMsg, seq int) *Alarm {
	nargs := len(spec.Args)
	for i, m := range msgs {
		if len(m.call.Args) != nargs {
			return &Alarm{
				Reason:  ReasonArgDivergence,
				Syscall: spec.Name,
				Seq:     seq,
				Variant: i,
				Detail:  fmt.Sprintf("argument count %d, want %d", len(m.call.Args), nargs),
			}
		}
	}
	return nil
}

// canonBuf returns the reusable canonical-argument scratch, sized to
// nargs. The returned slice is valid until the next rendezvous.
func (s *system) canonBuf(nargs int) []word.Word {
	if cap(s.canon) < nargs {
		s.canon = make([]word.Word, nargs)
	}
	return s.canon[:nargs]
}

// canonicalArgs inverts/normalizes each variant's arguments and checks
// cross-variant equivalence, returning variant 0's canonical vector
// (borrowed scratch, valid until the next rendezvous).
func (s *system) canonicalArgs(spec sys.Spec, msgs []*callMsg, seq int) ([]word.Word, *Alarm) {
	if alarm := s.checkArgCounts(spec, msgs, seq); alarm != nil {
		return nil, alarm
	}
	nargs := len(spec.Args)
	canon := s.canonBuf(nargs)
	for j := 0; j < nargs; j++ {
		kind := spec.Args[j]
		var c0 word.Word
		for i := 0; i < s.n; i++ {
			raw := msgs[i].call.Args[j]
			var cv word.Word
			switch kind {
			case sys.ArgUID:
				inv, err := s.cfg.UIDFuncs[i].Invert(raw)
				if err != nil {
					return nil, &Alarm{
						Reason:  ReasonUIDDivergence,
						Syscall: spec.Name,
						Seq:     seq,
						Variant: i,
						Detail:  fmt.Sprintf("arg %d: invalid UID representation %s: %v", j, raw, err),
					}
				}
				cv = inv
			case sys.ArgAddr:
				cv = vmem.CanonicalIn(raw, s.addrBits)
			default:
				cv = raw
			}
			if i == 0 {
				c0 = cv
				continue
			}
			if cv != c0 {
				reason := ReasonArgDivergence
				detail := fmt.Sprintf("arg %d: canonical %s differs from variant 0's %s", j, cv, c0)
				switch kind {
				case sys.ArgUID:
					reason = ReasonUIDDivergence
					detail = fmt.Sprintf(
						"arg %d: UID decodes to %s in variant %d but %s in variant 0 (raw %s vs %s)",
						j, cv.Decimal(), i, c0.Decimal(), msgs[i].call.Args[j], msgs[0].call.Args[j])
				case sys.ArgBool:
					reason = ReasonCondDivergence
					detail = fmt.Sprintf("condition value %d differs from variant 0's %d", cv, c0)
				}
				return nil, &Alarm{
					Reason:  reason,
					Syscall: spec.Name,
					Seq:     seq,
					Variant: i,
					Detail:  detail,
				}
			}
		}
		canon[j] = c0
	}
	return canon, nil
}

// replyAll sends the same reply to every variant.
func replyAll(msgs []*callMsg, r sys.Reply) {
	for _, m := range msgs {
		m.reply <- r
	}
}

// replyErrno sends an errno reply to every variant.
func (s *system) replyErrno(msgs []*callMsg, err error) {
	if e, ok := vos.AsErrno(err); ok {
		replyAll(msgs, sys.Reply{Errno: e})
		return
	}
	replyAll(msgs, sys.Reply{Errno: vos.ErrInval})
}
