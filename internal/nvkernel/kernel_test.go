package nvkernel

import (
	"strings"
	"testing"
	"time"

	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// prog builds a named sys.Program from a function.
func prog(name string, fn func(ctx *sys.Context) error) sys.Program {
	return sys.ProgramFunc{ProgName: name, Fn: fn}
}

// same returns n copies of the same program body (the untransformed
// case: both variants run identical code and identical constants).
func same(n int, name string, fn func(ctx *sys.Context) error) []sys.Program {
	progs := make([]sys.Program, n)
	for i := range progs {
		progs[i] = prog(name, fn)
	}
	return progs
}

func newWorld(t *testing.T) *vos.World {
	t.Helper()
	w, err := vos.NewWorld()
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

func mustRun(t *testing.T, w *vos.World, progs []sys.Program, opts ...Option) *Result {
	t.Helper()
	res, err := Run(w, simnet.New(0), progs, opts...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSingleVariantHelloWorld(t *testing.T) {
	w := newWorld(t)
	res := mustRun(t, w, same(1, "hello", func(ctx *sys.Context) error {
		if err := ctx.WriteString(sys.FDStdout, "hello world\n"); err != nil {
			return err
		}
		return ctx.Exit(0)
	}))
	if !res.Clean {
		t.Fatalf("not clean: %+v alarm=%v", res, res.Alarm)
	}
	if string(res.Stdout) != "hello world\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestTwoVariantsNormalEquivalence(t *testing.T) {
	// Identical variants on normal input must not alarm (§2.2).
	w := newWorld(t)
	res := mustRun(t, w, same(2, "equiv", func(ctx *sys.Context) error {
		uid, err := ctx.Getuid()
		if err != nil {
			return err
		}
		if _, err := ctx.UIDValue(uid); err != nil {
			return err
		}
		if err := ctx.WriteString(sys.FDStdout, "ok\n"); err != nil {
			return err
		}
		return ctx.Exit(0)
	}))
	if !res.Clean {
		t.Fatalf("alarm on normal execution: %v", res.Alarm)
	}
	if string(res.Stdout) != "ok\n" {
		t.Errorf("stdout = %q (output must be performed once)", res.Stdout)
	}
}

func TestImplicitExitZero(t *testing.T) {
	w := newWorld(t)
	res := mustRun(t, w, same(2, "fallthrough", func(ctx *sys.Context) error {
		return nil // no explicit Exit: kernel synthesizes exit(0)
	}))
	if !res.Clean || res.Status != 0 {
		t.Fatalf("implicit exit: clean=%v status=%d alarm=%v", res.Clean, res.Status, res.Alarm)
	}
}

func TestUIDVariationRoundTrip(t *testing.T) {
	// Under the UID variation, getuid returns different concrete
	// values per variant; feeding them back through setuid must
	// canonicalize to the same real UID with no alarm.
	w := newWorld(t)
	res := mustRun(t, w, same(2, "roundtrip", func(ctx *sys.Context) error {
		uid, err := ctx.Getuid()
		if err != nil {
			return err
		}
		if err := ctx.Setuid(uid); err != nil {
			return err
		}
		return ctx.Exit(0)
	}), WithUIDVariation(reexpress.UIDVariation().Pair))
	if !res.Clean {
		t.Fatalf("round trip alarmed: %v", res.Alarm)
	}
}

func TestUIDVariationGetuidValuesDiffer(t *testing.T) {
	// Observe each variant's reexpressed UID via per-variant unshared
	// log files: variant 0 must see 0, variant 1 must see 0x7FFFFFFF
	// (root under R₁, §3.2).
	w := newWorld(t)
	root := vos.CredFor(vos.Root, 0)
	for i := 0; i < 2; i++ {
		if err := w.FS.WriteFile(UnsharedPath("/tmp/uid", i), nil, 0644, root); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, w, same(2, "observe", func(ctx *sys.Context) error {
		uid, err := ctx.Getuid()
		if err != nil {
			return err
		}
		fd, err := ctx.Open("/tmp/uid", vos.WriteOnly, 0)
		if err != nil {
			return err
		}
		if err := ctx.WriteString(fd, uid.String()); err != nil {
			return err
		}
		if err := ctx.Close(fd); err != nil {
			return err
		}
		return ctx.Exit(0)
	}),
		WithUIDVariation(reexpress.UIDVariation().Pair),
		WithUnsharedFiles("/tmp/uid"),
	)
	if !res.Clean {
		t.Fatalf("alarm: %v", res.Alarm)
	}
	v0, err := w.FS.ReadFile("/tmp/uid-0", root)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := w.FS.ReadFile("/tmp/uid-1", root)
	if err != nil {
		t.Fatal(err)
	}
	if string(v0) != "0x00000000" {
		t.Errorf("variant 0 uid = %s, want 0x00000000", v0)
	}
	if string(v1) != "0x7FFFFFFF" {
		t.Errorf("variant 1 uid = %s, want 0x7FFFFFFF", v1)
	}
}

func TestUIDDivergenceDetected(t *testing.T) {
	// The detection property (§2.3): an attacker-injected identical
	// concrete UID (here the untransformed constant 0 in both
	// variants) decodes differently and must raise an alarm.
	w := newWorld(t)
	res := mustRun(t, w, same(2, "injected", func(ctx *sys.Context) error {
		if _, err := ctx.UIDValue(0); err != nil {
			return err
		}
		return ctx.Exit(0)
	}), WithUIDVariation(reexpress.UIDVariation().Pair))
	if res.Alarm == nil {
		t.Fatal("identical injected UID not detected")
	}
	if res.Alarm.Reason != ReasonUIDDivergence {
		t.Errorf("reason = %v, want uid-divergence", res.Alarm.Reason)
	}
	if res.Alarm.Syscall != "uid_value" {
		t.Errorf("syscall = %q, want uid_value", res.Alarm.Syscall)
	}
}

func TestSetuidInjectedRootDetected(t *testing.T) {
	// The headline attack shape: corrupted data reaches setuid as the
	// same concrete value 0 in both variants. Variant 1's inverse
	// turns it into 0x7FFFFFFF, so the monitor sees divergent
	// canonical UIDs and kills the group before the call proceeds.
	w := newWorld(t)
	res := mustRun(t, w, same(2, "forge-root", func(ctx *sys.Context) error {
		if err := ctx.Setuid(0); err != nil {
			return err
		}
		return ctx.Exit(0)
	}), WithUIDVariation(reexpress.UIDVariation().Pair))
	if res.Alarm == nil || res.Alarm.Reason != ReasonUIDDivergence {
		t.Fatalf("alarm = %v, want uid-divergence", res.Alarm)
	}
	// The real credentials must be untouched.
	if res.Clean {
		t.Error("run reported clean despite alarm")
	}
}

func TestCondChkDivergenceDetected(t *testing.T) {
	w := newWorld(t)
	progs := []sys.Program{
		prog("cond", func(ctx *sys.Context) error {
			if _, err := ctx.CondChk(true); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
		prog("cond", func(ctx *sys.Context) error {
			if _, err := ctx.CondChk(false); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
	}
	res := mustRun(t, w, progs)
	if res.Alarm == nil || res.Alarm.Reason != ReasonCondDivergence {
		t.Fatalf("alarm = %v, want cond-divergence", res.Alarm)
	}
}

func TestSyscallMismatchDetected(t *testing.T) {
	w := newWorld(t)
	progs := []sys.Program{
		prog("a", func(ctx *sys.Context) error {
			if _, err := ctx.Getuid(); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
		prog("b", func(ctx *sys.Context) error {
			if _, err := ctx.Time(); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
	}
	res := mustRun(t, w, progs)
	if res.Alarm == nil || res.Alarm.Reason != ReasonSyscallMismatch {
		t.Fatalf("alarm = %v, want syscall-mismatch", res.Alarm)
	}
}

func TestExitStatusMismatchDetected(t *testing.T) {
	w := newWorld(t)
	progs := []sys.Program{
		prog("x", func(ctx *sys.Context) error { return ctx.Exit(0) }),
		prog("x", func(ctx *sys.Context) error { return ctx.Exit(1) }),
	}
	res := mustRun(t, w, progs)
	if res.Alarm == nil || res.Alarm.Reason != ReasonArgDivergence {
		t.Fatalf("alarm = %v, want arg-divergence", res.Alarm)
	}
}

func TestOutputDivergenceDetected(t *testing.T) {
	// §4's log-message pitfall: if a variant writes its (differing)
	// reexpressed UID into shared output, the monitor flags it.
	w := newWorld(t)
	progs := []sys.Program{
		prog("log", func(ctx *sys.Context) error {
			if err := ctx.WriteString(sys.FDStderr, "uid=0"); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
		prog("log", func(ctx *sys.Context) error {
			if err := ctx.WriteString(sys.FDStderr, "uid=2147483647"); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
	}
	res := mustRun(t, w, progs)
	if res.Alarm == nil {
		t.Fatal("divergent output not detected")
	}
	// Differing lengths surface as arg-divergence (length is a plain
	// arg); equal-length differing payloads as data-divergence.
	if res.Alarm.Reason != ReasonArgDivergence && res.Alarm.Reason != ReasonDataDivergence {
		t.Errorf("reason = %v", res.Alarm.Reason)
	}
}

func TestEqualLengthOutputDivergence(t *testing.T) {
	w := newWorld(t)
	progs := []sys.Program{
		prog("log", func(ctx *sys.Context) error {
			if err := ctx.WriteString(sys.FDStdout, "AAAA"); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
		prog("log", func(ctx *sys.Context) error {
			if err := ctx.WriteString(sys.FDStdout, "BBBB"); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
	}
	res := mustRun(t, w, progs)
	if res.Alarm == nil || res.Alarm.Reason != ReasonDataDivergence {
		t.Fatalf("alarm = %v, want data-divergence", res.Alarm)
	}
}

func TestVariantFaultDetected(t *testing.T) {
	w := newWorld(t)
	progs := []sys.Program{
		prog("fault", func(ctx *sys.Context) error {
			// Dereference unmapped memory: simulated segfault.
			_, err := ctx.Mem.LoadByte(0x00700000)
			if err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
		prog("fault", func(ctx *sys.Context) error {
			if _, err := ctx.Getuid(); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
	}
	res := mustRun(t, w, progs)
	if res.Alarm == nil || res.Alarm.Reason != ReasonVariantFault {
		t.Fatalf("alarm = %v, want variant-fault", res.Alarm)
	}
	if res.Alarm.Variant != 0 {
		t.Errorf("faulting variant = %d, want 0", res.Alarm.Variant)
	}
}

func TestRendezvousTimeout(t *testing.T) {
	w := newWorld(t)
	progs := []sys.Program{
		prog("slow", func(ctx *sys.Context) error {
			time.Sleep(300 * time.Millisecond)
			return ctx.Exit(0)
		}),
		prog("fast", func(ctx *sys.Context) error {
			if _, err := ctx.Getuid(); err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
	}
	res, err := Run(w, simnet.New(0), progs, WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alarm == nil || res.Alarm.Reason != ReasonTimeout {
		t.Fatalf("alarm = %v, want timeout", res.Alarm)
	}
}

func TestSharedFileReadReplication(t *testing.T) {
	w := newWorld(t)
	res := mustRun(t, w, same(2, "reader", func(ctx *sys.Context) error {
		fd, err := ctx.Open("/etc/passwd", vos.ReadOnly, 0)
		if err != nil {
			return err
		}
		data, err := ctx.ReadAll(fd)
		if err != nil {
			return err
		}
		if err := ctx.Close(fd); err != nil {
			return err
		}
		// Both variants got the same bytes, so this shared write
		// cross-checks cleanly.
		if err := ctx.WriteString(sys.FDStdout, string(data[:20])); err != nil {
			return err
		}
		return ctx.Exit(0)
	}))
	if !res.Clean {
		t.Fatalf("alarm: %v", res.Alarm)
	}
	if !strings.HasPrefix(string(res.Stdout), "root:x:0:0:") {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestUnsharedPasswdPipeline(t *testing.T) {
	// §3.4 end to end: the kernel serves /etc/passwd-0 and
	// /etc/passwd-1; each variant parses its own diversified copy and
	// feeds the (differently represented) wwwrun UID through
	// uid_value and setuid — which must cross-check cleanly because
	// the canonical values agree.
	w := newWorld(t)
	pair := reexpress.UIDVariation().Pair
	if err := SetupUnsharedPasswd(w, pair.Funcs()); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, w, same(2, "drop-priv", func(ctx *sys.Context) error {
		fd, err := ctx.Open("/etc/passwd", vos.ReadOnly, 0)
		if err != nil {
			return err
		}
		data, err := ctx.ReadAll(fd)
		if err != nil {
			return err
		}
		if err := ctx.Close(fd); err != nil {
			return err
		}
		users, err := vos.ParsePasswd(data)
		if err != nil {
			return err
		}
		u, ok := vos.LookupUser(users, "wwwrun")
		if !ok {
			return vos.ErrNoEnt
		}
		if _, err := ctx.UIDValue(u.UID); err != nil {
			return err
		}
		if err := ctx.Setuid(u.UID); err != nil {
			return err
		}
		// Privileges dropped: the root-only file must now be EACCES.
		if _, err := ctx.Open("/var/www/private/secret.html", vos.ReadOnly, 0); err == nil {
			return ctx.Exit(13)
		}
		return ctx.Exit(0)
	}),
		WithUIDVariation(pair),
		WithUnsharedFiles("/etc/passwd", "/etc/group"),
	)
	if !res.Clean {
		t.Fatalf("alarm: %v", res.Alarm)
	}
	if res.Status != 0 {
		t.Fatalf("status = %d (13 means the drop did not take effect)", res.Status)
	}
}

func TestUnsharedFileMissing(t *testing.T) {
	w := newWorld(t)
	res := mustRun(t, w, same(2, "missing", func(ctx *sys.Context) error {
		if _, err := ctx.Open("/etc/passwd", vos.ReadOnly, 0); err == nil {
			return ctx.Exit(1)
		}
		return ctx.Exit(0)
	}), WithUnsharedFiles("/etc/passwd"))
	// passwd-0/-1 were never created: open fails identically for both.
	if !res.Clean || res.Status != 0 {
		t.Fatalf("clean=%v status=%d alarm=%v", res.Clean, res.Status, res.Alarm)
	}
}

func TestCCComparisons(t *testing.T) {
	w := newWorld(t)
	pair := reexpress.UIDVariation().Pair
	apply := func(v int, u vos.UID) vos.UID {
		r, err := pair.Funcs()[v].Apply(u)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		return r
	}
	progs := make([]sys.Program, 2)
	for i := 0; i < 2; i++ {
		i := i
		progs[i] = prog("cc", func(ctx *sys.Context) error {
			a := apply(i, 5)
			b := apply(i, 9)
			checks := []struct {
				got  func() (bool, error)
				want bool
			}{
				{func() (bool, error) { return ctx.CCEq(a, a) }, true},
				{func() (bool, error) { return ctx.CCEq(a, b) }, false},
				{func() (bool, error) { return ctx.CCNeq(a, b) }, true},
				{func() (bool, error) { return ctx.CCLt(a, b) }, true},
				{func() (bool, error) { return ctx.CCLeq(a, a) }, true},
				{func() (bool, error) { return ctx.CCGt(b, a) }, true},
				{func() (bool, error) { return ctx.CCGeq(a, b) }, false},
			}
			for k, c := range checks {
				got, err := c.got()
				if err != nil {
					return err
				}
				if got != c.want {
					return ctx.Exit(word.Word(k + 10))
				}
			}
			return ctx.Exit(0)
		})
	}
	res := mustRun(t, w, progs, WithUIDVariation(pair))
	if !res.Clean || res.Status != 0 {
		t.Fatalf("cc comparisons: clean=%v status=%d alarm=%v", res.Clean, res.Status, res.Alarm)
	}
}

func TestCCLtSemanticsOnCanonicalValues(t *testing.T) {
	// §3.5 design point (2): because the kernel compares canonical
	// values, the *reexpressed* ordering (which XOR reverses) does not
	// leak into program logic — no operator reversal needed.
	w := newWorld(t)
	pair := reexpress.UIDVariation().Pair
	progs := make([]sys.Program, 2)
	for i := 0; i < 2; i++ {
		i := i
		progs[i] = prog("lt", func(ctx *sys.Context) error {
			f := pair.Funcs()[i]
			a, err := f.Apply(3)
			if err != nil {
				return err
			}
			b, err := f.Apply(1000)
			if err != nil {
				return err
			}
			// In variant 1's representation a > b numerically, but the
			// canonical comparison must still say 3 < 1000.
			lt, err := ctx.CCLt(a, b)
			if err != nil {
				return err
			}
			if !lt {
				return ctx.Exit(1)
			}
			return ctx.Exit(0)
		})
	}
	res := mustRun(t, w, progs, WithUIDVariation(pair))
	if !res.Clean || res.Status != 0 {
		t.Fatalf("canonical lt: clean=%v status=%d alarm=%v", res.Clean, res.Status, res.Alarm)
	}
}

func TestNetworkEchoUnderMonitor(t *testing.T) {
	w := newWorld(t)
	net := simnet.New(0)
	progs := same(2, "echo", func(ctx *sys.Context) error {
		lfd, err := ctx.Listen(8080)
		if err != nil {
			return err
		}
		cfd, err := ctx.Accept(lfd)
		if err != nil {
			return err
		}
		buf, err := ctx.Mem.Alloc(1024)
		if err != nil {
			return err
		}
		n, err := ctx.RecvMem(cfd, buf, 1024)
		if err != nil {
			return err
		}
		if err := ctx.SendMem(cfd, buf, n); err != nil {
			return err
		}
		if err := ctx.Close(cfd); err != nil {
			return err
		}
		if err := ctx.Close(lfd); err != nil {
			return err
		}
		return ctx.Exit(0)
	})

	type outcome struct {
		res *Result
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := Run(w, net, progs)
		resCh <- outcome{res, err}
	}()

	// Client side: wait for the listener, then echo.
	var conn *simnet.Conn
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := net.Dial(8080)
		if err == nil {
			conn = c
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never listened")
		}
		time.Sleep(time.Millisecond)
	}
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "ping" {
		t.Errorf("echo = %q", reply)
	}
	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !out.res.Clean {
		t.Fatalf("alarm: %v", out.res.Alarm)
	}
}

func TestAddressPartitioningVariantsGetDisjointSpaces(t *testing.T) {
	w := newWorld(t)
	// Variants record their buffer addresses in unshared files.
	root := vos.CredFor(vos.Root, 0)
	for i := 0; i < 2; i++ {
		if err := w.FS.WriteFile(UnsharedPath("/tmp/addr", i), nil, 0644, root); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, w, same(2, "alloc", func(ctx *sys.Context) error {
		addr, err := ctx.Mem.Alloc(64)
		if err != nil {
			return err
		}
		fd, err := ctx.Open("/tmp/addr", vos.WriteOnly, 0)
		if err != nil {
			return err
		}
		if err := ctx.WriteString(fd, addr.String()); err != nil {
			return err
		}
		if err := ctx.Close(fd); err != nil {
			return err
		}
		return ctx.Exit(0)
	}),
		WithAddressPartition(),
		WithUnsharedFiles("/tmp/addr"),
	)
	if !res.Clean {
		t.Fatalf("alarm: %v", res.Alarm)
	}
	a0, _ := w.FS.ReadFile("/tmp/addr-0", root)
	a1, _ := w.FS.ReadFile("/tmp/addr-1", root)
	if !strings.HasPrefix(string(a0), "0x0") {
		t.Errorf("variant 0 address %s not in low partition", a0)
	}
	if !strings.HasPrefix(string(a1), "0x8") {
		t.Errorf("variant 1 address %s not in high partition", a1)
	}
}

func TestAbsoluteAddressInjectionDetected(t *testing.T) {
	// Figure 1: the attacker learns a concrete address valid in
	// variant 0 and injects it; when both variants dereference the
	// same absolute address, variant 1 segfaults and the monitor
	// raises an alarm.
	w := newWorld(t)
	injected := word.Word(0x00001000) // low-partition address
	res := mustRun(t, w, same(2, "deref", func(ctx *sys.Context) error {
		if _, err := ctx.Mem.Alloc(64); err != nil { // maps 0x...1000
			return err
		}
		if _, err := ctx.Mem.LoadByte(injected); err != nil {
			return err // variant 1 faults here
		}
		if _, err := ctx.Getuid(); err != nil {
			return err
		}
		return ctx.Exit(0)
	}), WithAddressPartition())
	if res.Alarm == nil || res.Alarm.Reason != ReasonVariantFault {
		t.Fatalf("alarm = %v, want variant-fault", res.Alarm)
	}
	if res.Alarm.Variant != 1 {
		t.Errorf("faulting variant = %d, want 1", res.Alarm.Variant)
	}
}

func TestSlotReuseAfterClose(t *testing.T) {
	w := newWorld(t)
	res := mustRun(t, w, same(2, "slots", func(ctx *sys.Context) error {
		fd1, err := ctx.Open("/etc/passwd", vos.ReadOnly, 0)
		if err != nil {
			return err
		}
		if err := ctx.Close(fd1); err != nil {
			return err
		}
		fd2, err := ctx.Open("/etc/group", vos.ReadOnly, 0)
		if err != nil {
			return err
		}
		if fd1 != fd2 {
			return ctx.Exit(1)
		}
		if err := ctx.Close(fd2); err != nil {
			return err
		}
		return ctx.Exit(0)
	}))
	if !res.Clean || res.Status != 0 {
		t.Fatalf("slot reuse: status=%d alarm=%v", res.Status, res.Alarm)
	}
}

func TestBadFDErrno(t *testing.T) {
	w := newWorld(t)
	res := mustRun(t, w, same(2, "badfd", func(ctx *sys.Context) error {
		if err := ctx.Close(99); err == nil {
			return ctx.Exit(1)
		}
		buf, err := ctx.Mem.Alloc(16)
		if err != nil {
			return err
		}
		if _, err := ctx.ReadMem(42, buf, 16); err == nil {
			return ctx.Exit(2)
		}
		return ctx.Exit(0)
	}))
	if !res.Clean || res.Status != 0 {
		t.Fatalf("bad fd handling: status=%d alarm=%v", res.Status, res.Alarm)
	}
}

func TestTimeReplication(t *testing.T) {
	// Virtual time is an input: all variants observe the same value,
	// so using it in shared output does not diverge.
	w := newWorld(t)
	res := mustRun(t, w, same(2, "time", func(ctx *sys.Context) error {
		t1, err := ctx.Time()
		if err != nil {
			return err
		}
		t2, err := ctx.Time()
		if err != nil {
			return err
		}
		if t2 <= t1 {
			return ctx.Exit(1)
		}
		if err := ctx.WriteString(sys.FDStdout, t1.String()+t2.String()); err != nil {
			return err
		}
		return ctx.Exit(0)
	}))
	if !res.Clean || res.Status != 0 {
		t.Fatalf("time: status=%d alarm=%v", res.Status, res.Alarm)
	}
}

func TestSetuidPermissionErrno(t *testing.T) {
	// EPERM surfaces identically in all variants — an errno, not an
	// alarm.
	w := newWorld(t)
	res := mustRun(t, w, same(2, "eperm", func(ctx *sys.Context) error {
		if err := ctx.Setuid(0); err == nil {
			return ctx.Exit(1)
		}
		return ctx.Exit(0)
	}), WithCred(vos.CredFor(1000, 100)))
	if !res.Clean || res.Status != 0 {
		t.Fatalf("eperm: status=%d alarm=%v", res.Status, res.Alarm)
	}
}

func TestThreeVariants(t *testing.T) {
	// The framework generalizes beyond N=2: three variants with three
	// disjoint XOR masks.
	w := newWorld(t)
	funcs := []reexpress.Func{
		reexpress.Identity{},
		reexpress.XORMask{Mask: 0x7FFFFFFF},
		reexpress.XORMask{Mask: 0x55555555},
	}
	res := mustRun(t, w, same(3, "trio", func(ctx *sys.Context) error {
		uid, err := ctx.Getuid()
		if err != nil {
			return err
		}
		if _, err := ctx.UIDValue(uid); err != nil {
			return err
		}
		return ctx.Exit(0)
	}), WithUIDFuncs(funcs...))
	if !res.Clean {
		t.Fatalf("3-variant run alarmed: %v", res.Alarm)
	}
}

func TestRunValidation(t *testing.T) {
	w := newWorld(t)
	if _, err := Run(w, simnet.New(0), nil); err == nil {
		t.Error("Run with no variants succeeded")
	}
	if _, err := Run(w, simnet.New(0), same(2, "x", func(ctx *sys.Context) error { return ctx.Exit(0) }),
		WithUIDFuncs(reexpress.Identity{})); err == nil {
		t.Error("Run with mismatched UID funcs succeeded")
	}
}

func TestAlarmErrorString(t *testing.T) {
	a := &Alarm{Reason: ReasonUIDDivergence, Syscall: "setuid", Seq: 7, Variant: 1, Detail: "boom"}
	msg := a.Error()
	for _, want := range []string{"uid-divergence", "setuid", "seq 7", "variant 1", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("alarm message %q missing %q", msg, want)
		}
	}
}

func TestReasonStrings(t *testing.T) {
	reasons := map[Reason]string{
		ReasonSyscallMismatch: "syscall-mismatch",
		ReasonArgDivergence:   "arg-divergence",
		ReasonUIDDivergence:   "uid-divergence",
		ReasonCondDivergence:  "cond-divergence",
		ReasonDataDivergence:  "data-divergence",
		ReasonVariantFault:    "variant-fault",
		ReasonExitMismatch:    "exit-mismatch",
		ReasonTimeout:         "timeout",
		Reason(99):            "unknown",
	}
	for r, want := range reasons {
		if got := r.String(); got != want {
			t.Errorf("Reason(%d) = %q, want %q", r, got, want)
		}
	}
}

func TestSetupUnsharedPasswdContents(t *testing.T) {
	w := newWorld(t)
	pair := reexpress.UIDVariation().Pair
	if err := SetupUnsharedPasswd(w, pair.Funcs()); err != nil {
		t.Fatal(err)
	}
	root := vos.CredFor(vos.Root, 0)
	p1, err := w.FS.ReadFile("/etc/passwd-1", root)
	if err != nil {
		t.Fatal(err)
	}
	users, err := vos.ParsePasswd(p1)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := vos.LookupUser(users, "root")
	if !ok {
		t.Fatal("no root in variant 1 passwd")
	}
	if u.UID != 0x7FFFFFFF {
		t.Errorf("variant 1 root uid = %s, want 0x7FFFFFFF", word.Word(u.UID))
	}
	// Variant 0 is the identity.
	p0, err := w.FS.ReadFile("/etc/passwd-0", root)
	if err != nil {
		t.Fatal(err)
	}
	users0, err := vos.ParsePasswd(p0)
	if err != nil {
		t.Fatal(err)
	}
	u0, _ := vos.LookupUser(users0, "root")
	if u0.UID != 0 {
		t.Errorf("variant 0 root uid = %s, want 0", word.Word(u0.UID))
	}
}

func TestUnsharedWriteDifferentLengths(t *testing.T) {
	// §3.4 regression: writes to unshared files are per-variant, so
	// payloads of DIFFERENT lengths must not alarm (diversified UIDs
	// have different digit counts).
	w := newWorld(t)
	res := mustRun(t, w, same(2, "difflen", func(ctx *sys.Context) error {
		fd, err := ctx.Open("/tmp/own", vos.WriteOnly|vos.Create, 0644)
		if err != nil {
			return err
		}
		payload := "short"
		if ctx.Variant == 1 {
			payload = "a much longer line for variant one"
		}
		if err := ctx.WriteString(fd, payload); err != nil {
			return err
		}
		if err := ctx.Close(fd); err != nil {
			return err
		}
		return ctx.Exit(0)
	}), WithUnsharedFiles("/tmp/own"))
	if !res.Clean {
		t.Fatalf("alarm on unshared divergent write: %v", res.Alarm)
	}
	root := vos.CredFor(vos.Root, 0)
	v0, err := w.FS.ReadFile("/tmp/own-0", root)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := w.FS.ReadFile("/tmp/own-1", root)
	if err != nil {
		t.Fatal(err)
	}
	if string(v0) != "short" || string(v1) != "a much longer line for variant one" {
		t.Errorf("contents = %q / %q", v0, v1)
	}
}

func TestUnsharedReadDifferentLengths(t *testing.T) {
	// Reads from unshared files deliver each variant its own content
	// and its own count.
	w := newWorld(t)
	root := vos.CredFor(vos.Root, 0)
	if err := w.FS.WriteFile("/tmp/in-0", []byte("aa"), 0644, root); err != nil {
		t.Fatal(err)
	}
	if err := w.FS.WriteFile("/tmp/in-1", []byte("bbbbbb"), 0644, root); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, w, same(2, "diffread", func(ctx *sys.Context) error {
		fd, err := ctx.Open("/tmp/in", vos.ReadOnly, 0)
		if err != nil {
			return err
		}
		data, err := ctx.ReadAll(fd)
		if err != nil {
			return err
		}
		if err := ctx.Close(fd); err != nil {
			return err
		}
		want := 2
		if ctx.Variant == 1 {
			want = 6
		}
		if len(data) != want {
			return ctx.Exit(word.Word(10 + ctx.Variant))
		}
		return ctx.Exit(0)
	}), WithUnsharedFiles("/tmp/in"))
	if !res.Clean || res.Status != 0 {
		t.Fatalf("status=%d alarm=%v", res.Status, res.Alarm)
	}
}

// --- DiversitySpec: N-wide groups through WithSpec --------------------

// specN builds a validated N-variant spec with a generated UID layer
// and N-way address partitioning.
func specN(t *testing.T, n int) *reexpress.Spec {
	t.Helper()
	return reexpress.Generate(int64(1000+n), n, reexpress.LayerUID, reexpress.LayerAddressPartition)
}

func TestSpecNormalEquivalenceAtEveryN(t *testing.T) {
	// N identical variants under a generated spec must run clean on
	// benign input: getuid/setuid round-trips canonicalize per variant.
	for n := 2; n <= 5; n++ {
		w := newWorld(t)
		res := mustRun(t, w, same(n, "equiv", func(ctx *sys.Context) error {
			uid, err := ctx.Getuid()
			if err != nil {
				return err
			}
			if err := ctx.Setuid(uid); err != nil {
				return err
			}
			if _, err := ctx.Mem.Alloc(4096); err != nil {
				return err
			}
			return ctx.Exit(0)
		}), WithSpec(specN(t, n)))
		if !res.Clean {
			t.Fatalf("n=%d: benign run alarmed: %v", n, res.Alarm)
		}
	}
}

func TestSpecInjectedUIDDetectedAtEveryN(t *testing.T) {
	// The detection property N-wide: an identical injected concrete
	// UID cannot decode consistently in any two variants.
	for n := 2; n <= 5; n++ {
		w := newWorld(t)
		res := mustRun(t, w, same(n, "injected", func(ctx *sys.Context) error {
			if _, err := ctx.UIDValue(0); err != nil {
				return err
			}
			return ctx.Exit(0)
		}), WithSpec(specN(t, n)))
		if res.Alarm == nil || res.Alarm.Reason != ReasonUIDDivergence {
			t.Fatalf("n=%d: alarm = %v, want uid-divergence", n, res.Alarm)
		}
	}
}

func TestSpecAddressInjectionDetectedBeyondTwo(t *testing.T) {
	// An injected absolute address is valid in at most one variant's
	// slot; dereferencing it in the others segfaults (Figure 1,
	// generalized to a 4-way split).
	n := 3
	injected := word.Word(0x00002000)
	w := newWorld(t)
	res := mustRun(t, w, same(n, "deref", func(ctx *sys.Context) error {
		if _, err := ctx.Mem.Alloc(8192); err != nil {
			return err
		}
		if _, err := ctx.Mem.LoadByte(injected); err != nil {
			return err
		}
		return ctx.Exit(0)
	}), WithSpec(specN(t, n)))
	if res.Alarm == nil {
		t.Fatal("n=3: injected address not detected")
	}
}

func TestWithSpecComposesWithOptions(t *testing.T) {
	// A UID-only spec must not clobber separately-set options.
	cfg := defaultConfig(2)
	WithUnsharedFiles("/etc/passwd")(&cfg)
	WithSpec(reexpress.UncheckedSpec(2, reexpress.UIDLayer(reexpress.UIDVariation().Pair.Funcs()...)))(&cfg)
	if !cfg.Unshared["/etc/passwd"] {
		t.Error("spec clobbered the unshared-file set")
	}
	if cfg.AddressPartition {
		t.Error("UID-only spec enabled address partitioning")
	}
	if len(cfg.UIDFuncs) != 2 || cfg.UIDFuncs[1].Name() != reexpress.UIDVariation().Pair.R1.Name() {
		t.Errorf("UID funcs not installed: %v", cfg.UIDFuncs)
	}
	if cfg.Spec == nil {
		t.Error("spec not recorded in the config")
	}
}

func TestRunRefusesInstructionTagLayer(t *testing.T) {
	// The kernel's variants are native programs; a spec advertising
	// instruction tagging must be refused rather than silently
	// deployed without it (the isa substrate runs that layer).
	spec, err := reexpress.NewSpec(2,
		reexpress.UIDLayer(reexpress.UIDVariation().Pair.Funcs()...),
		reexpress.InstructionTagLayer(2))
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(t)
	_, err = Run(w, simnet.New(0), same(2, "noop", func(ctx *sys.Context) error {
		return ctx.Exit(0)
	}), WithSpec(spec))
	if err == nil {
		t.Fatal("instruction-tag layer accepted by the monitor kernel")
	}
}

func TestRunRefusesSpecWidthMismatch(t *testing.T) {
	// A spec validated for 3 variants must not deploy over 2 programs:
	// the partition layout and the recorded configuration would both
	// be wrong.
	spec := reexpress.UncheckedSpec(3, reexpress.AddressPartitionLayer(3))
	w := newWorld(t)
	_, err := Run(w, simnet.New(0), same(2, "noop", func(ctx *sys.Context) error {
		return ctx.Exit(0)
	}), WithSpec(spec))
	if err == nil {
		t.Fatal("3-variant spec accepted over 2 programs")
	}
}

func TestUIDFuncsOverrideKeepsDeploymentSpec(t *testing.T) {
	// WithUIDFuncs after WithSpec overrides the UID layer only: the
	// deployment spec stays recorded, so Run's spec checks (e.g. the
	// instruction-tags refusal) cannot be bypassed by stacking an
	// adapter option.
	tagSpec, err := reexpress.NewSpec(2,
		reexpress.UIDLayer(reexpress.UIDVariation().Pair.Funcs()...),
		reexpress.InstructionTagLayer(2))
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(t)
	_, err = Run(w, simnet.New(0), same(2, "noop", func(ctx *sys.Context) error {
		return ctx.Exit(0)
	}), WithSpec(tagSpec), WithUIDFuncs(reexpress.Identity{}, reexpress.Identity{}))
	if err == nil {
		t.Fatal("instruction-tags refusal bypassed by a trailing WithUIDFuncs")
	}
}
