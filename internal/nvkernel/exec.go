package nvkernel

import (
	"bytes"
	"fmt"

	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// entryKind distinguishes descriptor table entries.
type entryKind int

const (
	kindFree entryKind = iota
	kindFile
	kindListener
	kindConn
)

// fileEntry is one synchronized slot of the per-variant file tables:
// slot k of variant i's table corresponds to slot k of variant j's
// (§3.4). For shared files all variants reference the same open file
// description; for unshared files each variant has its own.
type fileEntry struct {
	kind     entryKind
	shared   bool
	files    []*vos.OpenFile
	listener *simnet.Listener
	conn     *simnet.Conn
}

const fdBase = 3 // 0,1,2 are stdin/stdout/stderr

// slotFor returns the table slot for fd, or an error.
func (s *system) slotFor(fd word.Word) (int, error) {
	idx := int(fd) - fdBase
	if idx < 0 || idx >= len(s.files) || s.files[idx].kind == kindFree {
		return 0, fmt.Errorf("fd %d: %w", fd, vos.ErrBadFD)
	}
	return idx, nil
}

// allocSlot finds or creates a free slot and returns its index.
func (s *system) allocSlot() int {
	for i := range s.files {
		if s.files[i].kind == kindFree {
			return i
		}
	}
	s.files = append(s.files, fileEntry{})
	return len(s.files) - 1
}

// execute performs the (already equivalence-checked) syscall. canon is
// the canonical argument vector. It returns true when the monitor loop
// should stop (exit or alarm).
func (s *system) execute(spec sys.Spec, num sys.Num, canon []word.Word, msgs []*callMsg, seq int) bool {
	switch num {
	case sys.Exit:
		// canonicalArgs already guaranteed equal statuses; a status
		// mismatch therefore surfaced as ReasonArgDivergence. Record
		// the clean exit and release everyone.
		s.exited = true
		s.status = canon[0]
		s.closeAll()
		replyAll(msgs, sys.Reply{Val: canon[0]})
		return true

	case sys.Open:
		return s.execOpen(canon, msgs, seq, spec)

	case sys.CloseFD:
		idx, err := s.slotFor(canon[0])
		if err != nil {
			s.replyErrno(msgs, err)
			return false
		}
		s.closeSlot(idx)
		replyAll(msgs, sys.Reply{})
		return false

	case sys.Read:
		return s.execRead(canon, msgs, seq, spec)

	case sys.Write:
		return s.execWrite(canon, msgs, seq, spec)

	case sys.Stat:
		info, err := s.world.FS.Stat(string(msgs[0].call.Data), s.cred)
		if err != nil {
			s.replyErrno(msgs, err)
			return false
		}
		replyAll(msgs, sys.Reply{Val: word.Word(uint32(info.Size))})
		return false

	case sys.Getuid, sys.Geteuid, sys.Getgid, sys.Getegid:
		var real word.Word
		switch num {
		case sys.Getuid:
			real = s.cred.RUID
		case sys.Geteuid:
			real = s.cred.EUID
		case sys.Getgid:
			real = s.cred.RGID
		default:
			real = s.cred.EGID
		}
		// Input class: the trusted result is reexpressed per variant
		// (§3.5: "giving each variant its own varied UID value").
		// Variants are answered as their reexpression succeeds, so a
		// failure raises with only the not-yet-replied tail msgs[i:]
		// (the exactly-one-reply discipline mailbox reuse depends on).
		for i, m := range msgs {
			rep, err := s.cfg.UIDFuncs[i].Apply(real)
			if err != nil {
				s.raise(&Alarm{
					Reason: ReasonUIDDivergence, Syscall: spec.Name, Seq: seq, Variant: i,
					Detail: fmt.Sprintf("cannot reexpress %s: %v", real.Decimal(), err),
				}, msgs[i:])
				return true
			}
			m.reply <- sys.Reply{Val: rep}
		}
		return false

	case sys.Setuid, sys.Seteuid, sys.Setreuid, sys.Setgid, sys.Setegid:
		cred := s.cred
		var err error
		switch num {
		case sys.Setuid:
			err = cred.Setuid(canon[0])
		case sys.Seteuid:
			err = cred.Seteuid(canon[0])
		case sys.Setreuid:
			err = cred.Setreuid(canon[0], canon[1])
		case sys.Setgid:
			err = cred.Setgid(canon[0])
		default:
			err = cred.Setegid(canon[0])
		}
		if err != nil {
			s.replyErrno(msgs, err)
			return false
		}
		s.cred = cred
		replyAll(msgs, sys.Reply{})
		return false

	case sys.Listen:
		l, err := s.net.Listen(uint16(canon[0]))
		if err != nil {
			s.replyErrno(msgs, vos.ErrInval)
			return false
		}
		idx := s.allocSlot()
		s.files[idx] = fileEntry{kind: kindListener, shared: true, listener: l}
		replyAll(msgs, sys.Reply{Val: word.Word(idx + fdBase)})
		return false

	case sys.Accept:
		idx, err := s.slotFor(canon[0])
		if err != nil || s.files[idx].kind != kindListener {
			s.replyErrno(msgs, vos.ErrBadFD)
			return false
		}
		conn, err := s.files[idx].listener.Accept()
		if err != nil {
			s.replyErrno(msgs, vos.ErrBadFD)
			return false
		}
		cidx := s.allocSlot()
		s.files[cidx] = fileEntry{kind: kindConn, shared: true, conn: conn}
		replyAll(msgs, sys.Reply{Val: word.Word(cidx + fdBase)})
		return false

	case sys.Recv:
		return s.execRecv(canon, msgs, seq, spec)

	case sys.Send:
		return s.execSend(canon, msgs, seq, spec)

	case sys.Time:
		s.vtime++
		replyAll(msgs, sys.Reply{Val: s.vtime})
		return false

	case sys.UIDValue:
		// Equivalence was established by canonicalArgs; return each
		// variant its own passed value (Table 2).
		for _, m := range msgs {
			m.reply <- sys.Reply{Val: m.call.Args[0]}
		}
		return false

	case sys.CondChk:
		replyAll(msgs, sys.Reply{Val: canon[0]})
		return false

	case sys.CCEq, sys.CCNeq, sys.CCLt, sys.CCLeq, sys.CCGt, sys.CCGeq:
		// Comparison computed on canonical values, so no operator
		// reversal is needed in transformed variants (§3.5).
		a, b := canon[0], canon[1]
		var truth bool
		switch num {
		case sys.CCEq:
			truth = a == b
		case sys.CCNeq:
			truth = a != b
		case sys.CCLt:
			truth = a < b
		case sys.CCLeq:
			truth = a <= b
		case sys.CCGt:
			truth = a > b
		default:
			truth = a >= b
		}
		val := word.Word(0)
		if truth {
			val = 1
		}
		replyAll(msgs, sys.Reply{Val: val})
		return false

	default:
		s.raise(&Alarm{
			Reason: ReasonSyscallMismatch, Syscall: spec.Name, Seq: seq, Variant: 0,
			Detail: fmt.Sprintf("unimplemented syscall %s", spec.Name),
		}, msgs)
		return true
	}
}

// execOpen opens a file, honouring the unshared-file mechanism: when
// the path is marked unshared, each variant opens its own diversified
// version and the shared bit of the slot is cleared (§3.4).
func (s *system) execOpen(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	path := string(msgs[0].call.Data)
	flags := vos.OpenFlag(canon[0])
	perm := vos.Mode(canon[1])

	if s.cfg.Unshared[path] && s.n > 1 {
		files := make([]*vos.OpenFile, s.n)
		for i := 0; i < s.n; i++ {
			f, err := s.world.FS.Open(UnsharedPath(path, i), flags, perm, s.cred)
			if err != nil {
				for j := 0; j < i; j++ {
					_ = files[j].Close()
				}
				s.replyErrno(msgs, err)
				return false
			}
			files[i] = f
		}
		idx := s.allocSlot()
		s.files[idx] = fileEntry{kind: kindFile, shared: false, files: files}
		replyAll(msgs, sys.Reply{Val: word.Word(idx + fdBase)})
		return false
	}

	f, err := s.world.FS.Open(path, flags, perm, s.cred)
	if err != nil {
		s.replyErrno(msgs, err)
		return false
	}
	files := make([]*vos.OpenFile, s.n)
	for i := range files {
		files[i] = f
	}
	idx := s.allocSlot()
	s.files[idx] = fileEntry{kind: kindFile, shared: true, files: files}
	replyAll(msgs, sys.Reply{Val: word.Word(idx + fdBase)})
	return false
}

// execRead implements the input class for files: shared files are read
// once with the result replicated into every variant's memory;
// unshared files are read per variant from the variant's own file.
func (s *system) execRead(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	idx, err := s.slotFor(canon[0])
	if err != nil {
		s.replyErrno(msgs, err)
		return false
	}
	entry := &s.files[idx]
	if entry.kind != kindFile {
		s.replyErrno(msgs, vos.ErrBadFD)
		return false
	}
	n := uint32(canon[2])

	if entry.shared {
		buf := s.ioScratch(n)
		cnt, err := entry.files[0].Read(buf)
		if err != nil {
			s.replyErrno(msgs, err)
			return false
		}
		for i, m := range msgs {
			addr := m.call.Args[1]
			if err := s.variants[i].mem.WriteBytes(addr, buf[:cnt]); err != nil {
				s.raise(&Alarm{
					Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
					Detail: fmt.Sprintf("copy to variant memory: %v", err),
				}, msgs)
				return true
			}
		}
		replyAll(msgs, sys.Reply{Val: word.Word(cnt)})
		return false
	}

	// Unshared: per-variant reads on per-variant files; lengths,
	// counts and data may legitimately differ because the contents
	// are diversified. Each variant is replied to as its read
	// completes, so failure paths answer only msgs[i:] — variants
	// before i already received their success reply, and a second
	// send into a reused mailbox would corrupt their next call.
	for i, m := range msgs {
		buf := s.ioScratch(uint32(m.call.Args[2]))
		cnt, err := entry.files[i].Read(buf)
		if err != nil {
			s.replyErrno(msgs[i:], err)
			return false
		}
		addr := m.call.Args[1]
		if err := s.variants[i].mem.WriteBytes(addr, buf[:cnt]); err != nil {
			s.raise(&Alarm{
				Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
				Detail: fmt.Sprintf("copy to variant memory: %v", err),
			}, msgs[i:])
			return true
		}
		m.reply <- sys.Reply{Val: word.Word(cnt)}
	}
	return false
}

// ioScratch returns the reusable staging buffer sized to n bytes; the
// result is valid until the next use (one rendezvous at most).
func (s *system) ioScratch(n uint32) []byte {
	if uint32(cap(s.ioBuf)) < n {
		s.ioBuf = make([]byte, n)
	}
	return s.ioBuf[:n]
}

// cmpScratch is ioScratch's sibling for cross-variant comparison.
func (s *system) cmpScratch(n uint32) []byte {
	if uint32(cap(s.cmpBuf)) < n {
		s.cmpBuf = make([]byte, n)
	}
	return s.cmpBuf[:n]
}

// gatherPayloads reads each variant's output payload from its memory
// and checks byte equality (output equivalence, §3.1). A memory fault
// is a variant fault; divergent payloads are a data-divergence alarm
// (this is how the Apache UID-in-log-message pitfall of §4 manifests).
// The returned slice is pooled scratch, borrowed until the next
// rendezvous — every consumer (stdout capture, file write, network
// send) copies before the monitor loops again.
func (s *system) gatherPayloads(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) ([]byte, bool) {
	n := uint32(canon[2])
	first := s.ioScratch(n)
	if err := s.variants[0].mem.ReadBytesInto(msgs[0].call.Args[1], first); err != nil {
		s.raise(&Alarm{
			Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: 0,
			Detail: fmt.Sprintf("copy from variant memory: %v", err),
		}, msgs)
		return nil, false
	}
	if s.n > 1 {
		other := s.cmpScratch(n)
		for i := 1; i < s.n; i++ {
			if err := s.variants[i].mem.ReadBytesInto(msgs[i].call.Args[1], other); err != nil {
				s.raise(&Alarm{
					Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
					Detail: fmt.Sprintf("copy from variant memory: %v", err),
				}, msgs)
				return nil, false
			}
			if !bytes.Equal(other, first) {
				s.raise(&Alarm{
					Reason: ReasonDataDivergence, Syscall: spec.Name, Seq: seq, Variant: i,
					Detail: fmt.Sprintf("output payload differs from variant 0 (%d bytes)", n),
				}, msgs)
				return nil, false
			}
		}
	}
	return first, true
}

// execWrite implements the output class: payloads are cross-checked
// and the write performed once. Writes to unshared files are performed
// per variant without cross-checking (each variant owns its file).
func (s *system) execWrite(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	fd := canon[0]
	if fd == sys.FDStdout || fd == sys.FDStderr {
		data, ok := s.gatherPayloads(canon, msgs, seq, spec)
		if !ok {
			return true
		}
		if fd == sys.FDStdout {
			s.stdout = append(s.stdout, data...)
		} else {
			s.stderr = append(s.stderr, data...)
		}
		replyAll(msgs, sys.Reply{Val: word.Word(len(data))})
		return false
	}

	idx, err := s.slotFor(fd)
	if err != nil {
		s.replyErrno(msgs, err)
		return false
	}
	entry := &s.files[idx]
	if entry.kind != kindFile {
		s.replyErrno(msgs, vos.ErrBadFD)
		return false
	}

	if entry.shared {
		data, ok := s.gatherPayloads(canon, msgs, seq, spec)
		if !ok {
			return true
		}
		cnt, err := entry.files[0].Write(data)
		if err != nil {
			s.replyErrno(msgs, err)
			return false
		}
		replyAll(msgs, sys.Reply{Val: word.Word(cnt)})
		return false
	}

	// Per-variant writes to unshared files; like the unshared read
	// path, failures answer only the not-yet-replied tail msgs[i:].
	for i, m := range msgs {
		b := s.ioScratch(uint32(m.call.Args[2]))
		if err := s.variants[i].mem.ReadBytesInto(m.call.Args[1], b); err != nil {
			s.raise(&Alarm{
				Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
				Detail: fmt.Sprintf("copy from variant memory: %v", err),
			}, msgs[i:])
			return true
		}
		cnt, err := entry.files[i].Write(b)
		if err != nil {
			s.replyErrno(msgs[i:], err)
			return false
		}
		m.reply <- sys.Reply{Val: word.Word(cnt)}
	}
	return false
}

// execRecv performs the network input once and replicates the message
// into every variant's memory.
func (s *system) execRecv(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	idx, err := s.slotFor(canon[0])
	if err != nil || s.files[idx].kind != kindConn {
		s.replyErrno(msgs, vos.ErrBadFD)
		return false
	}
	data, err := s.files[idx].conn.Recv()
	if err != nil {
		s.replyErrno(msgs, vos.ErrBadFD)
		return false
	}
	if data == nil {
		replyAll(msgs, sys.Reply{Val: 0}) // end of stream
		return false
	}
	capacity := uint32(canon[2])
	// Faithful to the planted vulnerability: the kernel copies the
	// whole message into variant memory; bounding the copy is the
	// *program's* job, and the vulnerable server passes a capacity
	// larger than its parse buffer. A message exceeding the declared
	// capacity is still bounded by it here — the overflow happens in
	// the program's own unchecked copy, not in the kernel.
	if uint32(len(data)) > capacity {
		data = data[:capacity]
	}
	// The kernel owns the message buffer once Recv returns; after the
	// payload is replicated into every variant's memory it goes back
	// to the network's buffer pool.
	for i, m := range msgs {
		if err := s.variants[i].mem.WriteBytes(m.call.Args[1], data); err != nil {
			simnet.PutBuffer(data)
			s.raise(&Alarm{
				Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
				Detail: fmt.Sprintf("copy to variant memory: %v", err),
			}, msgs)
			return true
		}
	}
	n := uint32(len(data))
	simnet.PutBuffer(data)
	replyAll(msgs, sys.Reply{Val: word.Word(n)})
	return false
}

// execSend cross-checks payloads and transmits once.
func (s *system) execSend(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	idx, err := s.slotFor(canon[0])
	if err != nil || s.files[idx].kind != kindConn {
		s.replyErrno(msgs, vos.ErrBadFD)
		return false
	}
	data, ok := s.gatherPayloads(canon, msgs, seq, spec)
	if !ok {
		return true
	}
	if err := s.files[idx].conn.Send(data); err != nil {
		s.replyErrno(msgs, vos.ErrBadFD)
		return false
	}
	replyAll(msgs, sys.Reply{Val: word.Word(len(data))})
	return false
}

// closeSlot releases one descriptor slot.
func (s *system) closeSlot(idx int) {
	entry := &s.files[idx]
	switch entry.kind {
	case kindFile:
		if entry.shared {
			_ = entry.files[0].Close()
		} else {
			for _, f := range entry.files {
				_ = f.Close()
			}
		}
	case kindListener:
		_ = entry.listener.Close()
	case kindConn:
		_ = entry.conn.Close()
	}
	s.files[idx] = fileEntry{}
}

// closeAll releases every descriptor (on exit).
func (s *system) closeAll() {
	for i := range s.files {
		if s.files[i].kind != kindFree {
			s.closeSlot(i)
		}
	}
}
