package nvkernel

import (
	"bytes"
	"fmt"

	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// entryKind distinguishes descriptor table entries.
type entryKind int

const (
	kindFree entryKind = iota
	kindFile
	kindListener
	kindConn
)

// fileEntry is one synchronized slot of the per-variant file tables:
// slot k of variant i's table corresponds to slot k of variant j's
// (§3.4). For shared files all variants reference the same open file
// description; for unshared files each variant has its own. The table
// is group-wide: every worker lane sees the same slots, exactly as
// prefork workers inherit one descriptor table's numbering.
type fileEntry struct {
	kind     entryKind
	shared   bool
	files    []*vos.OpenFile
	listener *simnet.Listener
	conn     *simnet.Conn
}

const fdBase = 3 // 0,1,2 are stdin/stdout/stderr

// slotFor returns the table slot for fd, or an error. Caller holds
// s.mu.
func (s *system) slotFor(fd word.Word) (int, error) {
	idx := int(fd) - fdBase
	if idx < 0 || idx >= len(s.files) || s.files[idx].kind == kindFree {
		return 0, fmt.Errorf("fd %d: %w", fd, vos.ErrBadFD)
	}
	return idx, nil
}

// allocSlot finds or creates a free slot and returns its index. A
// recycled slot keeps its files slice capacity so the per-open
// description vector costs nothing in steady state (the per-request
// document open reuses one slot's storage forever). Caller holds s.mu.
func (s *system) allocSlot() int {
	for i := range s.files {
		if s.files[i].kind == kindFree {
			return i
		}
	}
	s.files = append(s.files, fileEntry{})
	return len(s.files) - 1
}

// slotFiles returns the slot's reusable description vector resized to
// n entries. Caller holds s.mu and owns the slot (kindFree).
func (s *system) slotFiles(idx, n int) []*vos.OpenFile {
	files := s.files[idx].files
	if cap(files) < n {
		files = make([]*vos.OpenFile, n)
	}
	return files[:n]
}

// execute performs the (already equivalence-checked) syscall. canon is
// the canonical argument vector. It returns true when the lane's
// monitor loop should stop (exit, alarm, or group kill).
func (l *lane) execute(spec sys.Spec, num sys.Num, canon []word.Word, msgs []*callMsg, seq int) bool {
	s := l.sys
	switch num {
	case sys.Exit:
		// canonicalArgs already guaranteed equal statuses; a status
		// mismatch therefore surfaced as ReasonArgDivergence. Record
		// the lane's clean exit; the group's descriptors are released
		// when the last lane leaves (a worker exiting early must not
		// close the listener under its siblings).
		s.mu.Lock()
		if !l.exited {
			l.exited = true
			s.exitedLanes++
			if l.id == 0 {
				s.status = canon[0]
			}
			if s.exitedLanes == len(s.lanes) {
				s.closeAllLocked()
			}
		}
		s.mu.Unlock()
		replyAll(msgs, sys.Reply{Val: canon[0]})
		return true

	case sys.Open:
		return l.execOpen(canon, msgs, seq, spec)

	case sys.CloseFD:
		s.mu.Lock()
		idx, err := s.slotFor(canon[0])
		if err != nil {
			s.mu.Unlock()
			replyErrno(msgs, err)
			return false
		}
		s.closeSlotLocked(idx)
		s.mu.Unlock()
		replyAll(msgs, sys.Reply{})
		return false

	case sys.Read:
		return l.execRead(canon, msgs, seq, spec)

	case sys.Write:
		return l.execWrite(canon, msgs, seq, spec)

	case sys.Stat:
		s.mu.Lock()
		info, err := s.world.FS.Stat(string(msgs[l.ref].call.Data), l.cred)
		s.mu.Unlock()
		if err != nil {
			replyErrno(msgs, err)
			return false
		}
		replyAll(msgs, sys.Reply{Val: word.Word(uint32(info.Size))})
		return false

	case sys.Getuid, sys.Geteuid, sys.Getgid, sys.Getegid:
		// Credentials are lane-private (fork semantics): no lock.
		cred := l.cred
		var real word.Word
		switch num {
		case sys.Getuid:
			real = cred.RUID
		case sys.Geteuid:
			real = cred.EUID
		case sys.Getgid:
			real = cred.RGID
		default:
			real = cred.EGID
		}
		// Input class: the trusted result is reexpressed per variant
		// (§3.5: "giving each variant its own varied UID value").
		// Variants are answered as their reexpression succeeds, so a
		// failure raises with only the not-yet-replied tail msgs[i:]
		// (the exactly-one-reply discipline mailbox reuse depends on).
		for i, m := range msgs {
			if m == nil {
				continue
			}
			rep, err := s.cfg.UIDFuncs[i].Apply(real)
			if err != nil {
				l.raise(&Alarm{
					Reason: ReasonUIDDivergence, Syscall: spec.Name, Seq: seq, Variant: i,
					Detail: fmt.Sprintf("cannot reexpress %s: %v", real.Decimal(), err),
				}, msgs[i:])
				return true
			}
			m.reply <- sys.Reply{Val: rep}
		}
		return false

	case sys.Setuid, sys.Seteuid, sys.Setreuid, sys.Setgid, sys.Setegid:
		// Identity changes touch only this lane's credentials, exactly
		// as a prefork worker's setuid affects only its own process.
		cred := l.cred
		var err error
		switch num {
		case sys.Setuid:
			err = cred.Setuid(canon[0])
		case sys.Seteuid:
			err = cred.Seteuid(canon[0])
		case sys.Setreuid:
			err = cred.Setreuid(canon[0], canon[1])
		case sys.Setgid:
			err = cred.Setgid(canon[0])
		default:
			err = cred.Setegid(canon[0])
		}
		if err != nil {
			replyErrno(msgs, err)
			return false
		}
		l.cred = cred
		replyAll(msgs, sys.Reply{})
		return false

	case sys.Listen:
		// net.Listen is internally synchronized; only the slot install
		// needs the table lock.
		listener, err := s.net.Listen(uint16(canon[0]))
		if err != nil {
			replyErrno(msgs, vos.ErrInval)
			return false
		}
		s.mu.Lock()
		if s.killedNow() {
			// Same install-after-teardown shape as Accept: a listener
			// registered after the kill would hold its port forever.
			s.mu.Unlock()
			_ = listener.Close()
			replyAll(msgs, sys.Reply{Killed: true})
			return true
		}
		idx := s.allocSlot()
		s.files[idx] = fileEntry{kind: kindListener, shared: true, listener: listener, files: s.files[idx].files}
		s.mu.Unlock()
		replyAll(msgs, sys.Reply{Val: word.Word(idx + fdBase)})
		return false

	case sys.Accept:
		s.mu.Lock()
		idx, err := s.slotFor(canon[0])
		if err != nil || s.files[idx].kind != kindListener {
			s.mu.Unlock()
			replyErrno(msgs, vos.ErrBadFD)
			return false
		}
		listener := s.files[idx].listener
		s.mu.Unlock()
		// The natural serialization point: concurrent lanes contend on
		// the shared listener here, exactly like prefork Apache workers
		// in accept(2) — each connection goes to exactly one lane.
		conn, err := listener.Accept()
		if err != nil {
			return l.replyFail(msgs, vos.ErrBadFD)
		}
		s.mu.Lock()
		if s.killedNow() {
			// The group died while this lane was blocked in accept (a
			// connection can still win the race against the listener
			// close). The teardown already ran, so installing the conn
			// would leave it open forever — the dialer would park in
			// Recv instead of observing the drop. Close it and retire.
			// Checking under s.mu orders this against kill's
			// closeAllLocked: either we see the kill here, or our
			// install completes first and the teardown closes it.
			s.mu.Unlock()
			_ = conn.Close()
			replyAll(msgs, sys.Reply{Killed: true})
			return true
		}
		cidx := s.allocSlot()
		s.files[cidx] = fileEntry{kind: kindConn, shared: true, conn: conn, files: s.files[cidx].files}
		s.mu.Unlock()
		replyAll(msgs, sys.Reply{Val: word.Word(cidx + fdBase)})
		return false

	case sys.Recv:
		return l.execRecv(canon, msgs, seq, spec)

	case sys.Send:
		return l.execSend(canon, msgs, seq, spec)

	case sys.Time:
		// The clock already ticked for this rendezvous, so back-to-back
		// Time calls still observe strictly increasing values.
		replyAll(msgs, sys.Reply{Val: word.Word(s.vtime.Load())})
		return false

	case sys.Prefork:
		return l.execPrefork(canon, msgs)

	case sys.ScoreAdd:
		// Performed once per lane rendezvous: the lane's variants all
		// observe the same post-add total, so shared-count decisions
		// cannot diverge within a lane.
		total := s.score.Add(int64(int32(canon[0])))
		replyAll(msgs, sys.Reply{Val: word.Word(uint32(total))})
		return false

	case sys.UIDValue:
		// Equivalence was established by canonicalArgs; return each
		// variant its own passed value (Table 2).
		for _, m := range msgs {
			if m == nil {
				continue
			}
			m.reply <- sys.Reply{Val: m.call.Args[0]}
		}
		return false

	case sys.CondChk:
		replyAll(msgs, sys.Reply{Val: canon[0]})
		return false

	case sys.CCEq, sys.CCNeq, sys.CCLt, sys.CCLeq, sys.CCGt, sys.CCGeq:
		// Comparison computed on canonical values, so no operator
		// reversal is needed in transformed variants (§3.5).
		a, b := canon[0], canon[1]
		var truth bool
		switch num {
		case sys.CCEq:
			truth = a == b
		case sys.CCNeq:
			truth = a != b
		case sys.CCLt:
			truth = a < b
		case sys.CCLeq:
			truth = a <= b
		case sys.CCGt:
			truth = a > b
		default:
			truth = a >= b
		}
		val := word.Word(0)
		if truth {
			val = 1
		}
		replyAll(msgs, sys.Reply{Val: val})
		return false

	default:
		l.raise(&Alarm{
			Reason: ReasonSyscallMismatch, Syscall: spec.Name, Seq: seq, Variant: l.ref,
			Detail: fmt.Sprintf("unimplemented syscall %s", spec.Name),
		}, msgs)
		return true
	}
}

// execPrefork widens the group to canon[0] worker lanes. Only the
// primary lane may prefork, exactly once, and every variant program
// must implement sys.WorkerProgram — refusing beats silently serving
// serially while the deployment believes it preforked.
func (l *lane) execPrefork(canon []word.Word, msgs []*callMsg) bool {
	s := l.sys
	w := int(canon[0])
	if l.id != 0 || w < 1 {
		replyErrno(msgs, vos.ErrInval)
		return false
	}
	workers := make([]sys.WorkerProgram, s.n)
	for i, p := range s.progs {
		wp, ok := p.(sys.WorkerProgram)
		if !ok {
			replyErrno(msgs, vos.ErrInval)
			return false
		}
		workers[i] = wp
	}
	s.mu.Lock()
	already := s.preforked
	s.preforked = true
	s.mu.Unlock()
	if already {
		replyErrno(msgs, vos.ErrInval)
		return false
	}
	for id := 1; id < w; id++ {
		s.spawnWorkerLane(id, workers, l.cred)
	}
	replyAll(msgs, sys.Reply{Val: canon[0]})
	return false
}

// execOpen opens a file, honouring the unshared-file mechanism: when
// the path is marked unshared, each variant opens its own diversified
// version and the shared bit of the slot is cleared (§3.4).
func (l *lane) execOpen(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	s := l.sys
	path := string(msgs[l.ref].call.Data)
	flags := vos.OpenFlag(canon[0])
	perm := vos.Mode(canon[1])

	s.mu.Lock()
	if s.cfg.Unshared[path] && s.n > 1 {
		idx := s.allocSlot()
		files := s.slotFiles(idx, s.n)
		for i := 0; i < s.n; i++ {
			f, err := s.world.FS.Open(UnsharedPath(path, i), flags, perm, l.cred)
			if err != nil {
				for j := 0; j < i; j++ {
					_ = files[j].Close()
					files[j] = nil
				}
				s.mu.Unlock()
				replyErrno(msgs, err)
				return false
			}
			files[i] = f
		}
		s.files[idx] = fileEntry{kind: kindFile, shared: false, files: files}
		s.mu.Unlock()
		replyAll(msgs, sys.Reply{Val: word.Word(idx + fdBase)})
		return false
	}

	f, err := s.world.FS.Open(path, flags, perm, l.cred)
	if err != nil {
		s.mu.Unlock()
		replyErrno(msgs, err)
		return false
	}
	idx := s.allocSlot()
	files := s.slotFiles(idx, s.n)
	for i := range files {
		files[i] = f
	}
	s.files[idx] = fileEntry{kind: kindFile, shared: true, files: files}
	s.mu.Unlock()
	replyAll(msgs, sys.Reply{Val: word.Word(idx + fdBase)})
	return false
}

// execRead implements the input class for files: shared files are read
// once with the result replicated into every variant's memory;
// unshared files are read per variant from the variant's own file.
// File I/O happens under the kernel lock (the filesystem is
// single-threaded by contract); the copies into lane-local variant
// memory do not.
func (l *lane) execRead(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	s := l.sys
	s.mu.Lock()
	idx, err := s.slotFor(canon[0])
	if err != nil {
		s.mu.Unlock()
		replyErrno(msgs, err)
		return false
	}
	entry := s.files[idx]
	if entry.kind != kindFile {
		s.mu.Unlock()
		replyErrno(msgs, vos.ErrBadFD)
		return false
	}
	n := uint32(canon[2])

	if entry.shared {
		buf := l.ioScratch(n)
		cnt, err := entry.files[0].Read(buf)
		s.mu.Unlock()
		if err != nil {
			replyErrno(msgs, err)
			return false
		}
		for i, m := range msgs {
			if m == nil {
				continue
			}
			addr := m.call.Args[1]
			if err := l.variants[i].mem.WriteBytes(addr, buf[:cnt]); err != nil {
				l.raise(&Alarm{
					Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
					Detail: fmt.Sprintf("copy to variant memory: %v", err),
				}, msgs)
				return true
			}
		}
		replyAll(msgs, sys.Reply{Val: word.Word(cnt)})
		return false
	}

	// Unshared: per-variant reads on per-variant files; lengths,
	// counts and data may legitimately differ because the contents
	// are diversified. Each variant is replied to as its read
	// completes, so failure paths answer only msgs[i:] — variants
	// before i already received their success reply, and a second
	// send into a reused mailbox would corrupt their next call.
	for i, m := range msgs {
		if m == nil {
			continue
		}
		buf := l.ioScratch(uint32(m.call.Args[2]))
		cnt, err := entry.files[i].Read(buf)
		if err != nil {
			s.mu.Unlock()
			replyErrno(msgs[i:], err)
			return false
		}
		addr := m.call.Args[1]
		if err := l.variants[i].mem.WriteBytes(addr, buf[:cnt]); err != nil {
			s.mu.Unlock()
			l.raise(&Alarm{
				Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
				Detail: fmt.Sprintf("copy to variant memory: %v", err),
			}, msgs[i:])
			return true
		}
		m.reply <- sys.Reply{Val: word.Word(cnt)}
	}
	s.mu.Unlock()
	return false
}

// ioScratch returns the lane's reusable staging buffer sized to n
// bytes; the result is valid until the next use (one rendezvous at
// most).
func (l *lane) ioScratch(n uint32) []byte {
	if uint32(cap(l.ioBuf)) < n {
		l.ioBuf = make([]byte, n)
	}
	return l.ioBuf[:n]
}

// cmpScratch is ioScratch's sibling for cross-variant comparison.
func (l *lane) cmpScratch(n uint32) []byte {
	if uint32(cap(l.cmpBuf)) < n {
		l.cmpBuf = make([]byte, n)
	}
	return l.cmpBuf[:n]
}

// gatherPayloads reads each variant's output payload from its memory
// and checks byte equality (output equivalence, §3.1). A memory fault
// is a variant fault; divergent payloads are a data-divergence alarm
// (this is how the Apache UID-in-log-message pitfall of §4 manifests).
// The returned slice is pooled lane scratch, borrowed until the next
// rendezvous — every consumer (stdout capture, file write, network
// send) copies before the lane loops again. Lane-local: no lock.
func (l *lane) gatherPayloads(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) ([]byte, bool) {
	n := uint32(canon[2])
	ref := l.ref
	first := l.ioScratch(n)
	if err := l.variants[ref].mem.ReadBytesInto(msgs[ref].call.Args[1], first); err != nil {
		l.raise(&Alarm{
			Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: ref,
			Detail: fmt.Sprintf("copy from variant memory: %v", err),
		}, msgs)
		return nil, false
	}
	if len(l.variants) > 1 {
		other := l.cmpScratch(n)
		for i := 0; i < len(l.variants); i++ {
			if i == ref || msgs[i] == nil {
				continue
			}
			if err := l.variants[i].mem.ReadBytesInto(msgs[i].call.Args[1], other); err != nil {
				l.raise(&Alarm{
					Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
					Detail: fmt.Sprintf("copy from variant memory: %v", err),
				}, msgs)
				return nil, false
			}
			if !bytes.Equal(other, first) {
				l.raise(&Alarm{
					Reason: ReasonDataDivergence, Syscall: spec.Name, Seq: seq, Variant: i,
					Detail: fmt.Sprintf("output payload differs from variant %d (%d bytes)", ref, n),
				}, msgs)
				return nil, false
			}
		}
	}
	return first, true
}

// execWrite implements the output class: payloads are cross-checked
// and the write performed once. Writes to unshared files are performed
// per variant without cross-checking (each variant owns its file).
func (l *lane) execWrite(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	s := l.sys
	fd := canon[0]
	if fd == sys.FDStdout || fd == sys.FDStderr {
		data, ok := l.gatherPayloads(canon, msgs, seq, spec)
		if !ok {
			return true
		}
		s.mu.Lock()
		if fd == sys.FDStdout {
			s.stdout = append(s.stdout, data...)
		} else {
			s.stderr = append(s.stderr, data...)
		}
		s.mu.Unlock()
		replyAll(msgs, sys.Reply{Val: word.Word(len(data))})
		return false
	}

	s.mu.Lock()
	idx, err := s.slotFor(fd)
	if err != nil {
		s.mu.Unlock()
		replyErrno(msgs, err)
		return false
	}
	entry := s.files[idx]
	if entry.kind != kindFile {
		s.mu.Unlock()
		replyErrno(msgs, vos.ErrBadFD)
		return false
	}
	// Pin the open-file descriptions while the lock is held: the
	// slot's files slice is recycled *in place* by closeSlotLocked, so
	// a concurrent group kill (a sibling lane alarming) would turn the
	// aliased entry.files into nils under our feet once the lock is
	// dropped for payload gathering. A pinned description that loses
	// the close race fails the write with EBADF — handled below as a
	// kill — instead of a nil dereference or a write into whatever
	// file a recycled slot holds next.
	files := l.pinFiles(entry.files)
	s.mu.Unlock()

	if entry.shared {
		data, ok := l.gatherPayloads(canon, msgs, seq, spec)
		if !ok {
			return true
		}
		s.mu.Lock()
		cnt, err := files[0].Write(data)
		s.mu.Unlock()
		if err != nil {
			return l.replyFail(msgs, err)
		}
		replyAll(msgs, sys.Reply{Val: word.Word(cnt)})
		return false
	}

	// Per-variant writes to unshared files; like the unshared read
	// path, failures answer only the not-yet-replied tail msgs[i:].
	s.mu.Lock()
	for i, m := range msgs {
		if m == nil {
			continue
		}
		b := l.ioScratch(uint32(m.call.Args[2]))
		if err := l.variants[i].mem.ReadBytesInto(m.call.Args[1], b); err != nil {
			s.mu.Unlock()
			l.raise(&Alarm{
				Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
				Detail: fmt.Sprintf("copy from variant memory: %v", err),
			}, msgs[i:])
			return true
		}
		cnt, err := files[i].Write(b)
		if err != nil {
			s.mu.Unlock()
			return l.replyFail(msgs[i:], err)
		}
		m.reply <- sys.Reply{Val: word.Word(cnt)}
	}
	s.mu.Unlock()
	return false
}

// pinFiles copies a slot's description pointers into the lane's
// reusable pin scratch (valid until the lane's next pin). Caller
// holds s.mu; the returned slice is safe to dereference after the
// lock is dropped because it no longer aliases the slot's storage.
func (l *lane) pinFiles(files []*vos.OpenFile) []*vos.OpenFile {
	if cap(l.pin) < len(files) {
		l.pin = make([]*vos.OpenFile, len(files))
	}
	l.pin = l.pin[:len(files)]
	copy(l.pin, files)
	return l.pin
}

// execRecv performs the network input once and replicates the message
// into every variant's memory. The blocking Recv happens with no lock
// held: a sibling lane may be accepting or receiving concurrently.
func (l *lane) execRecv(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	s := l.sys
	s.mu.Lock()
	idx, err := s.slotFor(canon[0])
	if err != nil || s.files[idx].kind != kindConn {
		s.mu.Unlock()
		replyErrno(msgs, vos.ErrBadFD)
		return false
	}
	conn := s.files[idx].conn
	s.mu.Unlock()
	data, err := conn.Recv()
	if err != nil {
		return l.replyFail(msgs, vos.ErrBadFD)
	}
	if data == nil {
		replyAll(msgs, sys.Reply{Val: 0}) // end of stream
		return false
	}
	capacity := uint32(canon[2])
	// Faithful to the planted vulnerability: the kernel copies the
	// whole message into variant memory; bounding the copy is the
	// *program's* job, and the vulnerable server passes a capacity
	// larger than its parse buffer. A message exceeding the declared
	// capacity is still bounded by it here — the overflow happens in
	// the program's own unchecked copy, not in the kernel.
	if uint32(len(data)) > capacity {
		data = data[:capacity]
	}
	// The kernel owns the message buffer once Recv returns; after the
	// payload is replicated into every variant's memory it goes back
	// to the network's buffer pool.
	for i, m := range msgs {
		if m == nil {
			continue
		}
		if err := l.variants[i].mem.WriteBytes(m.call.Args[1], data); err != nil {
			simnet.PutBuffer(data)
			l.raise(&Alarm{
				Reason: ReasonVariantFault, Syscall: spec.Name, Seq: seq, Variant: i,
				Detail: fmt.Sprintf("copy to variant memory: %v", err),
			}, msgs)
			return true
		}
	}
	n := uint32(len(data))
	simnet.PutBuffer(data)
	replyAll(msgs, sys.Reply{Val: word.Word(n)})
	return false
}

// execSend cross-checks payloads and transmits once.
func (l *lane) execSend(canon []word.Word, msgs []*callMsg, seq int, spec sys.Spec) bool {
	s := l.sys
	s.mu.Lock()
	idx, err := s.slotFor(canon[0])
	if err != nil || s.files[idx].kind != kindConn {
		s.mu.Unlock()
		replyErrno(msgs, vos.ErrBadFD)
		return false
	}
	conn := s.files[idx].conn
	s.mu.Unlock()
	data, ok := l.gatherPayloads(canon, msgs, seq, spec)
	if !ok {
		return true
	}
	if err := conn.Send(data); err != nil {
		return l.replyFail(msgs, vos.ErrBadFD)
	}
	replyAll(msgs, sys.Reply{Val: word.Word(len(data))})
	return false
}

// closeSlotLocked releases one descriptor slot, retaining the slot's
// description-vector storage for reuse by the next open. Caller holds
// s.mu.
func (s *system) closeSlotLocked(idx int) {
	entry := &s.files[idx]
	switch entry.kind {
	case kindFile:
		if entry.shared {
			_ = entry.files[0].Close()
		} else {
			for _, f := range entry.files {
				_ = f.Close()
			}
		}
	case kindListener:
		_ = entry.listener.Close()
	case kindConn:
		_ = entry.conn.Close()
	}
	files := entry.files
	for i := range files {
		files[i] = nil
	}
	s.files[idx] = fileEntry{files: files[:0]}
}

// closeAllLocked releases every descriptor (on exit or kill). Caller
// holds s.mu.
func (s *system) closeAllLocked() {
	for i := range s.files {
		if s.files[i].kind != kindFree {
			s.closeSlotLocked(i)
		}
	}
}
