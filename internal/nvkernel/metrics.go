package nvkernel

import (
	"time"

	"nvariant/internal/obs"
	"nvariant/internal/sys"
)

// Metrics is the kernel's registered metric set. Attach one to a run
// with WithMetrics; updates are single atomic operations so the
// instrumented rendezvous stays 0 allocs/op. All series are owned by
// this layer (DESIGN.md "Observability"):
//
//	nvk_rendezvous_latency_seconds  histogram, one observation per rendezvous
//	nvk_syscalls_total{call=...}    counter per syscall number
//	nvk_alarms_total{reason=...}    counter per alarm reason (winning alarms only)
//	nvk_alarm_kill_latency_seconds  histogram, alarm raise → group killed
//	nvk_variant_faults_total{kind=...}  counter per absorbed fault kind (quorum evictions)
//	nvk_evictions_total             counter, one per quorum eviction
type Metrics struct {
	rendezvous *obs.Histogram
	alarmKill  *obs.Histogram
	syscalls   []*obs.Counter // indexed by sys.Num
	alarms     []*obs.Counter // indexed by Reason
	faults     []*obs.Counter // indexed by FaultKind
	evictions  *obs.Counter
}

// NewMetrics registers (or finds) the kernel metric set on reg.
// Registration is idempotent, so every kernel in a fleet or campaign
// aggregates into the same series.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		rendezvous: reg.Histogram("nvk_rendezvous_latency_seconds",
			"Monitor-side latency of one syscall rendezvous (gather to reply).", nil),
		alarmKill: reg.Histogram("nvk_alarm_kill_latency_seconds",
			"Latency from alarm raise to group kill signalled.", nil),
	}
	// The syscall table is contiguous from 1; size the dense counter
	// slice off it so Num indexes directly.
	for n := sys.Num(1); ; n++ {
		spec, ok := sys.SpecFor(n)
		if !ok {
			break
		}
		m.syscalls = append(m.syscalls, nil)
		m.syscalls[n-1] = reg.Counter("nvk_syscalls_total",
			"Rendezvous completed, by syscall.", obs.L("call", spec.Name))
	}
	for r := Reason(1); r < reasonEnd; r++ {
		m.alarms = append(m.alarms, reg.Counter("nvk_alarms_total",
			"Alarms raised (first alarm per group), by reason.", obs.L("reason", r.String())))
	}
	for k := FaultCrash; k <= FaultStall; k++ {
		m.faults = append(m.faults, reg.Counter("nvk_variant_faults_total",
			"Variant faults absorbed by quorum eviction, by kind.", obs.L("kind", k.String())))
	}
	m.evictions = reg.Counter("nvk_evictions_total",
		"Variants evicted by the K-of-N quorum machinery.")
	return m
}

// observeRendezvous records one completed rendezvous.
func (m *Metrics) observeRendezvous(num sys.Num, d time.Duration) {
	m.rendezvous.Observe(d)
	if i := int(num) - 1; i >= 0 && i < len(m.syscalls) {
		m.syscalls[i].Inc()
	}
}

// RendezvousCount reports how many rendezvous the latency histogram
// has observed — a cheap way for tests to assert instrumentation is
// actually attached.
func (m *Metrics) RendezvousCount() uint64 { return m.rendezvous.Count() }

// observeAlarm records the group's winning alarm and its raise-to-kill
// latency.
func (m *Metrics) observeAlarm(r Reason, killLatency time.Duration) {
	if i := int(r) - 1; i >= 0 && i < len(m.alarms) {
		m.alarms[i].Inc()
	}
	m.alarmKill.Observe(killLatency)
}

// observeEviction records one quorum eviction and its fault kind.
func (m *Metrics) observeEviction(k FaultKind) {
	if i := int(k) - 1; i >= 0 && i < len(m.faults) {
		m.faults[i].Inc()
	}
	m.evictions.Inc()
}
