package nvkernel

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/testutil"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

func TestReasonStringRoundTrip(t *testing.T) {
	// Every reason constant must render a unique name and parse back to
	// itself — the audit NDJSON contract. Ranging to the reasonEnd
	// sentinel means a newly appended constant cannot dodge this test.
	seen := map[string]Reason{}
	for r := Reason(1); r < reasonEnd; r++ {
		s := r.String()
		if s == "unknown" {
			t.Errorf("reason %d has no String case", r)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("reasons %d and %d share the name %q", prev, r, s)
		}
		seen[s] = r
		back, ok := ReasonFromString(s)
		if !ok || back != r {
			t.Errorf("ReasonFromString(%q) = %d, %v; want %d", s, back, ok, r)
		}
	}
	if _, ok := ReasonFromString("no-such-reason"); ok {
		t.Error("ReasonFromString accepted an unknown name")
	}
	for k := FaultCrash; k <= FaultStall; k++ {
		if k.String() == "unknown" {
			t.Errorf("fault kind %d has no String case", k)
		}
	}
}

// crashAt returns a hook crashing one variant at its nth occurrence of
// num (counted across the whole group).
func crashAt(variant int, num sys.Num, nth int) testHook {
	calls := 0
	var mu sync.Mutex
	return testHook{crash: func(_, v int, n sys.Num) bool {
		if v != variant || n != num {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		calls++
		return calls == nth
	}}
}

func TestQuorumCrashEvictsAndContinues(t *testing.T) {
	// K=2, N=3: variant 1 crashes at its second time(2). The group must
	// evict it, keep serving the rendezvous on variants {0, 2}, and
	// finish cleanly in degraded mode with the eviction on record.
	res := mustRun(t, newWorld(t), same(3, "crashy", func(ctx *sys.Context) error {
		for i := 0; i < 6; i++ {
			if _, err := ctx.Time(); err != nil {
				return err
			}
		}
		return ctx.Exit(0)
	}), WithFaultHook(crashAt(1, sys.Time, 2)), WithQuorum(2), WithTimeout(5*time.Second))
	if res.Alarm != nil {
		t.Fatalf("degraded group alarmed: %+v", res.Alarm)
	}
	if !res.Clean {
		t.Fatalf("degraded group not clean: %+v", res)
	}
	if !res.Degraded() || len(res.Evictions) != 1 {
		t.Fatalf("evictions = %+v, want exactly one", res.Evictions)
	}
	ev := res.Evictions[0]
	if ev.Variant != 1 || ev.Kind != FaultCrash || ev.Live != 2 {
		t.Errorf("eviction = %+v, want variant 1, crash, 2 live", ev)
	}
	if !errors.Is(res.VariantErrs[1], sys.ErrCrashed) {
		t.Errorf("variant 1 error = %v, want ErrCrashed", res.VariantErrs[1])
	}
}

func TestQuorumCrashOfReferenceVariant(t *testing.T) {
	// Evicting variant 0 moves the cross-check reference to the lowest
	// survivor. The group must keep rendezvousing (including an output
	// write, which gathers payloads against the reference) and exit
	// cleanly.
	res := mustRun(t, newWorld(t), same(3, "refcrash", func(ctx *sys.Context) error {
		for i := 0; i < 4; i++ {
			if _, err := ctx.Time(); err != nil {
				return err
			}
		}
		if err := ctx.WriteString(sys.FDStdout, "degraded ok\n"); err != nil {
			return err
		}
		return ctx.Exit(0)
	}), WithFaultHook(crashAt(0, sys.Time, 2)), WithQuorum(2), WithTimeout(5*time.Second))
	if res.Alarm != nil || !res.Clean {
		t.Fatalf("clean=%v alarm=%+v", res.Clean, res.Alarm)
	}
	if len(res.Evictions) != 1 || res.Evictions[0].Variant != 0 {
		t.Fatalf("evictions = %+v, want variant 0", res.Evictions)
	}
	if string(res.Stdout) != "degraded ok\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestQuorumStallEvictsAndContinues(t *testing.T) {
	// K=2, N=3: variant 2 stalls far past the rendezvous deadline. The
	// lazily-checked timer detects the stall between 1x and 2x Timeout,
	// evicts the variant, and the survivors finish cleanly.
	stalls := 0
	var mu sync.Mutex
	hook := testHook{stall: func(_, variant int, num sys.Num) time.Duration {
		if variant != 2 || num != sys.Time {
			return 0
		}
		mu.Lock()
		defer mu.Unlock()
		stalls++
		if stalls == 2 {
			return time.Second
		}
		return 0
	}}
	res := mustRun(t, newWorld(t), same(3, "stalled", func(ctx *sys.Context) error {
		for i := 0; i < 4; i++ {
			if _, err := ctx.Time(); err != nil {
				return err
			}
		}
		return ctx.Exit(0)
	}), WithFaultHook(hook), WithQuorum(2), WithTimeout(30*time.Millisecond))
	if res.Alarm != nil || !res.Clean {
		t.Fatalf("clean=%v alarm=%+v", res.Clean, res.Alarm)
	}
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions = %+v, want exactly one", res.Evictions)
	}
	ev := res.Evictions[0]
	if ev.Variant != 2 || ev.Kind != FaultStall || ev.Live != 2 {
		t.Errorf("eviction = %+v, want variant 2, stall, 2 live", ev)
	}
}

func TestQuorumLostKillsGroup(t *testing.T) {
	t.Run("two-of-two", func(t *testing.T) {
		// K=2, N=2: any fault would drop below quorum, so the crash must
		// kill the group with a quorum-lost alarm — never a lone variant
		// silently serving.
		res := mustRun(t, newWorld(t), same(2, "crashy", func(ctx *sys.Context) error {
			for i := 0; i < 4; i++ {
				if _, err := ctx.Time(); err != nil {
					return err
				}
			}
			return ctx.Exit(0)
		}), WithFaultHook(crashAt(1, sys.Time, 2)), WithQuorum(2), WithTimeout(5*time.Second))
		if res.Alarm == nil || res.Alarm.Reason != ReasonQuorumLost {
			t.Fatalf("alarm = %+v, want quorum-lost", res.Alarm)
		}
		if res.Alarm.Variant != 1 {
			t.Errorf("alarm variant = %d, want 1", res.Alarm.Variant)
		}
		if len(res.Evictions) != 0 {
			t.Errorf("evictions = %+v, want none", res.Evictions)
		}
	})

	t.Run("second-fault", func(t *testing.T) {
		// K=2, N=3: the first crash is absorbed by eviction; the second
		// would leave a single variant, so it kills the group.
		calls := [3]int{}
		var mu sync.Mutex
		hook := testHook{crash: func(_, v int, n sys.Num) bool {
			if n != sys.Time {
				return false
			}
			mu.Lock()
			defer mu.Unlock()
			calls[v]++
			return (v == 1 && calls[v] == 2) || (v == 2 && calls[v] == 4)
		}}
		res := mustRun(t, newWorld(t), same(3, "crashy", func(ctx *sys.Context) error {
			for i := 0; i < 8; i++ {
				if _, err := ctx.Time(); err != nil {
					return err
				}
			}
			return ctx.Exit(0)
		}), WithFaultHook(hook), WithQuorum(2), WithTimeout(5*time.Second))
		if res.Alarm == nil || res.Alarm.Reason != ReasonQuorumLost {
			t.Fatalf("alarm = %+v, want quorum-lost", res.Alarm)
		}
		if len(res.Evictions) != 1 || res.Evictions[0].Variant != 1 {
			t.Fatalf("evictions = %+v, want exactly variant 1", res.Evictions)
		}
	})
}

func TestQuorumDivergenceAmongLiveStillAlarms(t *testing.T) {
	// The detection contract survives degraded mode: after variant 0 is
	// evicted, a divergence between the live variants {1, 2} must raise
	// the usual alarm — degraded mode masks faults, never attacks.
	res := mustRun(t, newWorld(t), same(3, "diverge", func(ctx *sys.Context) error {
		for i := 0; i < 4; i++ {
			if _, err := ctx.Time(); err != nil {
				return err
			}
		}
		// Every live variant presents its own index: the corrupted-value
		// shape UID variation detects.
		if _, err := ctx.UIDValue(word.Word(ctx.Variant)); err != nil {
			return err
		}
		return ctx.Exit(0)
	}), WithFaultHook(crashAt(0, sys.Time, 2)), WithQuorum(2), WithTimeout(5*time.Second))
	if res.Alarm == nil || res.Alarm.Reason != ReasonUIDDivergence {
		t.Fatalf("alarm = %+v, want uid-divergence", res.Alarm)
	}
	if res.Alarm.Variant != 2 {
		// Reference is the lowest live variant (1), so variant 2 is the
		// reported offender.
		t.Errorf("alarm variant = %d, want 2", res.Alarm.Variant)
	}
	if len(res.Evictions) != 1 || res.Evictions[0].Variant != 0 {
		t.Fatalf("evictions = %+v, want exactly variant 0", res.Evictions)
	}
}

func TestQuorumUnanimousDefaultUnchanged(t *testing.T) {
	// Without WithQuorum a crash still kills the whole group with the
	// original variant-fault alarm — the paper's contract is the
	// default, not an opt-in.
	res := mustRun(t, newWorld(t), same(3, "crashy", func(ctx *sys.Context) error {
		for i := 0; i < 4; i++ {
			if _, err := ctx.Time(); err != nil {
				return err
			}
		}
		return ctx.Exit(0)
	}), WithFaultHook(crashAt(1, sys.Time, 2)), WithTimeout(5*time.Second))
	if res.Alarm == nil || res.Alarm.Reason != ReasonVariantFault {
		t.Fatalf("alarm = %+v, want variant-fault", res.Alarm)
	}
	if res.Degraded() {
		t.Errorf("unanimous group reported degraded: %+v", res.Evictions)
	}
}

// startEchoWith is startEcho with kernel options (quorum tests).
func startEchoWith(t *testing.T, w *vos.World, net *simnet.Network, n int, srv func() *echoServer, opts ...Option) (port uint16, done chan *Result) {
	t.Helper()
	progs := make([]sys.Program, n)
	servers := make([]*echoServer, n)
	for i := range progs {
		servers[i] = srv()
		progs[i] = servers[i]
	}
	port = servers[0].port
	done = make(chan *Result, 1)
	go func() {
		res, err := Run(w, net, progs, opts...)
		if err != nil {
			t.Errorf("Run: %v", err)
		}
		done <- res
	}()
	testutil.Eventually(t, 5*time.Second, func() bool {
		c, err := net.Dial(port)
		if err != nil {
			return false
		}
		_ = c.Close()
		return true
	}, "echo server never listened")
	return port, done
}

func TestQuorumEvictionServesAcrossWorkerLanes(t *testing.T) {
	// A prefork group under quorum: the eviction observed by one lane's
	// monitor must propagate to every worker lane (group-wide live
	// set), and the degraded group must keep serving connections on all
	// lanes. Teardown must leak no goroutines even with the evicted
	// variant's goroutines unwound mid-run.
	before := runtime.NumGoroutine()

	w := newWorld(t)
	net := simnet.New(0)
	port, done := startEchoWith(t, w, net, 3, func() *echoServer {
		return &echoServer{workers: 3, port: 9300}
	}, WithQuorum(2), WithFaultHook(crashAt(1, sys.Recv, 2)), WithTimeout(2*time.Second))

	// Serve enough connections to cross the crash trigger and exercise
	// every lane afterwards.
	for i := 0; i < 9; i++ {
		conn, err := net.Dial(port)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		echoOnce(t, conn, "quorum-served")
		_ = conn.Close()
	}

	_ = net.ShutdownPort(port)
	res := <-done
	if res.Alarm != nil {
		t.Fatalf("degraded group alarmed: %+v", res.Alarm)
	}
	if len(res.Evictions) != 1 || res.Evictions[0].Variant != 1 {
		t.Fatalf("evictions = %+v, want exactly variant 1", res.Evictions)
	}
	if res.Workers != 3 {
		t.Errorf("workers = %d, want 3", res.Workers)
	}
	testutil.CheckNoGoroutineLeak(t, before, 2)
}

func TestQuorumEvictionRacesLaneKill(t *testing.T) {
	// -race stress: a divergence alarm (group kill) fires while a crash
	// eviction is in flight on a sibling lane. Whatever the
	// interleaving, the group must end with an alarm (the detection
	// contract outranks degraded mode), never panic, and leak nothing.
	for round := 0; round < 8; round++ {
		before := runtime.NumGoroutine()
		w := newWorld(t)
		net := simnet.New(0)
		port, done := startEchoWith(t, w, net, 3, func() *echoServer {
			return &echoServer{workers: 4, port: 9301, diverge: true}
		}, WithQuorum(2), WithFaultHook(crashAt(2, sys.Recv, 3+round%3)), WithTimeout(2*time.Second))

		var wg sync.WaitGroup
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					conn, err := net.Dial(port)
					if err != nil {
						return // group killed
					}
					if conn.Send([]byte("benign")) != nil {
						_ = conn.Close()
						return
					}
					_, _ = conn.Recv()
					_ = conn.Close()
				}
			}()
		}
		// Poison one connection concurrently with the crash trigger.
		if conn, err := net.Dial(port); err == nil {
			_ = conn.Send([]byte("DIVERGE"))
			_, _ = conn.Recv()
			_ = conn.Close()
		}
		wg.Wait()
		res := <-done
		if res.Alarm == nil {
			t.Fatalf("round %d: poisoned group did not alarm: %+v", round, res)
		}
		testutil.CheckNoGoroutineLeak(t, before, 3)
	}
}

func TestQuorumSteadyStateAddsNoAllocs(t *testing.T) {
	// Degraded mode's live set is a bitmask synced per round: after an
	// eviction the rendezvous loop must stay allocation-free, exactly
	// like the unanimous hot path the bench gate proves.
	w := newWorld(t)
	iters := 20000
	start := make(chan struct{})
	var warm sync.WaitGroup
	warm.Add(2) // the two survivors
	progs := same(3, "spin", func(ctx *sys.Context) error {
		for i := 0; i < 4; i++ {
			if _, err := ctx.Time(); err != nil {
				if errors.Is(err, sys.ErrCrashed) {
					return err
				}
				return err
			}
		}
		warm.Done()
		<-start
		for k := 0; k < iters; k++ {
			if _, err := ctx.Time(); err != nil {
				return err
			}
		}
		return ctx.Exit(0)
	})
	var res *Result
	var runErr error
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		res, runErr = Run(w, simnet.New(0), progs,
			WithFaultHook(crashAt(1, sys.Time, 2)), WithQuorum(2), WithTimeout(5*time.Second))
	}()
	warm.Wait() // both survivors past the eviction and parked at start
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	close(start)
	<-finished
	runtime.ReadMemStats(&m1)
	if runErr != nil || res.Alarm != nil || !res.Clean {
		t.Fatalf("run: %v alarm=%+v clean=%v", runErr, res.Alarm, res.Clean)
	}
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions = %+v, want one", res.Evictions)
	}
	allocs := m1.Mallocs - m0.Mallocs
	// The measured window covers iters degraded rendezvous plus run
	// teardown; allow a small fixed overhead for the latter.
	if perOp := float64(allocs) / float64(iters); perOp > 0.01 {
		t.Errorf("degraded steady state allocates: %d allocs over %d rendezvous (%.4f/op)", allocs, iters, perOp)
	}
}
