package nvkernel

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nvariant/internal/simnet"
	"nvariant/internal/sys"
)

// testHook scripts FaultHook decisions per (variant, syscall).
type testHook struct {
	stall func(worker, variant int, num sys.Num) time.Duration
	crash func(worker, variant int, num sys.Num) bool
}

func (h testHook) PreSyscall(worker, variant int, num sys.Num) (time.Duration, bool) {
	if h.crash != nil && h.crash(worker, variant, num) {
		return 0, true
	}
	if h.stall != nil {
		return h.stall(worker, variant, num), false
	}
	return 0, false
}

func TestFaultHookStallIsTransparent(t *testing.T) {
	// A bounded per-variant stall delays the rendezvous but must not
	// alarm: the siblings wait, exactly as for a slow syscall.
	hook := testHook{stall: func(_, variant int, _ sys.Num) time.Duration {
		if variant == 1 {
			return 2 * time.Millisecond
		}
		return 0
	}}
	res := mustRun(t, newWorld(t), same(2, "stalled", func(ctx *sys.Context) error {
		for i := 0; i < 3; i++ {
			if _, err := ctx.Time(); err != nil {
				return err
			}
		}
		return ctx.Exit(0)
	}), WithFaultHook(hook), WithTimeout(5*time.Second))
	if !res.Clean || res.Alarm != nil {
		t.Fatalf("stalled group not clean: %+v", res.Alarm)
	}
}

func TestFaultHookCrashRaisesVariantFault(t *testing.T) {
	// A crash-and-drain fault mid-run: variant 1 dies at its second
	// time(2) without reaching the rendezvous. The monitor must raise a
	// variant-fault alarm, record the crash, and drain the group.
	calls := 0
	hook := testHook{crash: func(_, variant int, num sys.Num) bool {
		if variant != 1 || num != sys.Time {
			return false
		}
		calls++
		return calls == 2
	}}
	res := mustRun(t, newWorld(t), same(2, "crashy", func(ctx *sys.Context) error {
		for i := 0; i < 4; i++ {
			if _, err := ctx.Time(); err != nil {
				return err
			}
		}
		return ctx.Exit(0)
	}), WithFaultHook(hook), WithTimeout(5*time.Second))
	if res.Alarm == nil || res.Alarm.Reason != ReasonVariantFault {
		t.Fatalf("alarm = %+v, want variant-fault", res.Alarm)
	}
	if res.Alarm.Variant != 1 {
		t.Errorf("alarm variant = %d, want 1", res.Alarm.Variant)
	}
	if len(res.VariantErrs) != 2 || !errors.Is(res.VariantErrs[1], sys.ErrCrashed) {
		t.Errorf("variant errors = %v, want ErrCrashed for variant 1", res.VariantErrs)
	}
	if errors.Is(res.VariantErrs[0], sys.ErrCrashed) {
		t.Errorf("healthy variant reported crashed: %v", res.VariantErrs[0])
	}
}

func TestCrashedVariantStaysDead(t *testing.T) {
	// After an injected crash every further syscall from the variant
	// fails with ErrCrashed without reaching the kernel — a crashed
	// process cannot keep issuing syscalls.
	hook := testHook{crash: func(_, variant int, num sys.Num) bool {
		return variant == 1 && num == sys.Time
	}}
	sawSecond := false
	progs := []sys.Program{
		prog("healthy", func(ctx *sys.Context) error {
			_, err := ctx.Time()
			if err != nil {
				return err
			}
			return ctx.Exit(0)
		}),
		prog("crashy", func(ctx *sys.Context) error {
			if _, err := ctx.Time(); !errors.Is(err, sys.ErrCrashed) {
				return err
			}
			// The program (buggily) ignores its own death; the context
			// must refuse to let it back into the rendezvous.
			_, err := ctx.Time()
			sawSecond = true
			return err
		}),
	}
	res := mustRun(t, newWorld(t), progs, WithFaultHook(hook), WithTimeout(5*time.Second))
	if res.Alarm == nil || res.Alarm.Reason != ReasonVariantFault {
		t.Fatalf("alarm = %+v, want variant-fault", res.Alarm)
	}
	if !sawSecond {
		t.Fatal("crashed variant never retried")
	}
	if !errors.Is(res.VariantErrs[1], sys.ErrCrashed) {
		t.Errorf("variant 1 error = %v, want ErrCrashed", res.VariantErrs[1])
	}
}

func TestSharedWriteRacesGroupKill(t *testing.T) {
	// Regression stress for the stale-alias write: lanes hammering the
	// shared log file's write path while a poisoned payload alarms a
	// sibling lane. Before execWrite pinned the open-file descriptions,
	// the kill's closeSlotLocked nil'd the aliased files slice under a
	// lane that had released the lock to gather payloads — a kernel
	// panic. Now the loser of the race must observe Killed/EBADF.
	for round := 0; round < 10; round++ {
		w := newWorld(t)
		net := simnet.New(0)
		_, done := startEcho(t, w, net, 2, func() *echoServer {
			return &echoServer{workers: 4, port: 9200, diverge: true, logEach: true}
		})

		var wg sync.WaitGroup
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					conn, err := net.Dial(9200)
					if err != nil {
						return // group killed
					}
					if conn.Send([]byte("benign")) != nil {
						_ = conn.Close()
						return
					}
					_, _ = conn.Recv()
					_ = conn.Close()
				}
			}()
		}
		// Let the writers get going, then poison one lane.
		time.Sleep(time.Duration(round) * 100 * time.Microsecond)
		if conn, err := net.Dial(9200); err == nil {
			_ = conn.Send([]byte("DIVERGE"))
			_, _ = conn.Recv()
			_ = conn.Close()
		}
		wg.Wait()
		res := <-done
		if res.Alarm == nil {
			t.Fatalf("round %d: poisoned group did not alarm: %+v", round, res)
		}
	}
}
