package nvkernel

import (
	"encoding/json"
	"fmt"
	"time"
)

// Reason classifies why the monitor raised an alarm.
type Reason int

// Alarm reasons.
const (
	// ReasonSyscallMismatch: variants arrived at different syscalls.
	ReasonSyscallMismatch Reason = iota + 1
	// ReasonArgDivergence: non-UID syscall arguments differ after
	// canonicalization.
	ReasonArgDivergence
	// ReasonUIDDivergence: UID-typed arguments decode to different
	// canonical values (or an invalid representation) — the detection
	// property of the UID variation firing.
	ReasonUIDDivergence
	// ReasonCondDivergence: a cond_chk condition differed between
	// variants.
	ReasonCondDivergence
	// ReasonDataDivergence: output payloads differ between variants.
	ReasonDataDivergence
	// ReasonVariantFault: a variant crashed (e.g., segmentation fault
	// in its simulated address space) while others were healthy.
	ReasonVariantFault
	// ReasonExitMismatch: variants exited with different statuses.
	ReasonExitMismatch
	// ReasonTimeout: a variant failed to reach the rendezvous in time.
	ReasonTimeout
	// ReasonQuorumLost: a variant faulted (crash or stall) and evicting
	// it would leave fewer than Quorum live variants — the K-of-N group
	// can no longer uphold its detection contract and dies instead of
	// degrading further.
	ReasonQuorumLost

	// reasonEnd is one past the last reason: the sentinel every
	// loop-over-all-reasons (metrics registration, the round-trip test)
	// ranges to, so appending a constant above cannot silently fall out
	// of those loops.
	reasonEnd
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonSyscallMismatch:
		return "syscall-mismatch"
	case ReasonArgDivergence:
		return "arg-divergence"
	case ReasonUIDDivergence:
		return "uid-divergence"
	case ReasonCondDivergence:
		return "cond-divergence"
	case ReasonDataDivergence:
		return "data-divergence"
	case ReasonVariantFault:
		return "variant-fault"
	case ReasonExitMismatch:
		return "exit-mismatch"
	case ReasonTimeout:
		return "timeout"
	case ReasonQuorumLost:
		return "quorum-lost"
	default:
		return "unknown"
	}
}

// ReasonFromString parses a reason name back to its constant — the
// inverse of String for every defined reason. Audit consumers replay
// NDJSON trails through this; an unknown name returns false.
func ReasonFromString(s string) (Reason, bool) {
	for r := Reason(1); r < reasonEnd; r++ {
		if r.String() == s {
			return r, true
		}
	}
	return 0, false
}

// MarshalJSON renders the reason as its name, so audit NDJSON carries
// "uid-divergence" rather than an enum ordinal.
func (r Reason) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// FaultKind classifies a variant fault the quorum machinery evicted
// on: the availability-fault class, as opposed to the divergence
// (attack) class that still raises alarms.
type FaultKind int

// Fault kinds.
const (
	// FaultCrash: the variant died (sys.ErrCrashed or an unexpected
	// goroutine exit) before reaching the rendezvous.
	FaultCrash FaultKind = iota + 1
	// FaultStall: the variant failed to reach the rendezvous within the
	// deadline while its siblings were already gathered.
	FaultStall
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultStall:
		return "stall"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the kind as its name.
func (k FaultKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// Eviction is one audit record of the K-of-N quorum machinery: a
// variant faulted, at least Quorum live variants agreed, and the group
// dropped the faulted variant and continued in degraded mode instead
// of dying. Like Alarm it carries the deterministic virtual-time stamp
// (VTime) next to the in-lane position (Seq), so seeded campaign
// matrices can embed evictions byte-identically.
type Eviction struct {
	// Variant is the evicted variant's index.
	Variant int `json:"variant"`
	// Worker is the worker lane whose monitor observed the fault (the
	// eviction itself is group-wide: the variant is dropped from every
	// lane's live set).
	Worker int `json:"worker"`
	// Kind classifies the fault (crash or stall).
	Kind FaultKind `json:"kind"`
	// Seq is the observing lane's rendezvous sequence number at the
	// eviction.
	Seq int `json:"seq"`
	// VTime is the group's virtual clock at the eviction — the
	// deterministic timestamp audit consumers pair with wall clocks.
	VTime uint32 `json:"vtime"`
	// Live is the number of variants still live after the eviction.
	Live int `json:"live"`
	// Detail describes the fault (e.g. the variant's terminal error).
	Detail string `json:"detail"`
}

// String renders the eviction as one audit line.
func (e Eviction) String() string {
	return fmt.Sprintf("nvariant eviction [%s] variant %d (worker %d, seq %d, vtime %d): %d live; %s",
		e.Kind, e.Variant, e.Worker, e.Seq, e.VTime, e.Live, e.Detail)
}

// Alarm is the monitor's report of a detected divergence: in the
// paper's threat model, an alarm is a detected attack (any divergence
// on identical inputs indicates compromise, §1).
type Alarm struct {
	// Reason classifies the divergence.
	Reason Reason `json:"reason"`
	// Syscall names the rendezvous at which the divergence was seen
	// (its String is "unknown" for timeouts before arrival).
	Syscall string `json:"syscall"`
	// Seq is the rendezvous sequence number within the worker lane.
	Seq int `json:"seq"`
	// Variant is the offending variant when identifiable, else -1.
	Variant int `json:"variant"`
	// Worker is the worker lane the divergence was seen in (0 for the
	// primary lane / serial groups). The alarm still kills the whole
	// group; Worker records where the corruption surfaced.
	Worker int `json:"worker"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
	// At is the wall-clock raise time. It exists for the ops surface
	// (alarm latency, audit tail) and never enters campaign JSON —
	// seeded matrices stay byte-identical; pair with VTime inside the
	// deterministic world.
	At time.Time `json:"at"`
	// VTime is the group's virtual clock at the raise — the
	// deterministic timestamp.
	VTime uint32 `json:"vtime"`
}

// Error renders the alarm; Alarm implements error so kernel internals
// can propagate it, but it is reported via Result, not returned.
func (a *Alarm) Error() string {
	return fmt.Sprintf("nvariant alarm [%s] at syscall %s (seq %d, worker %d, variant %d): %s",
		a.Reason, a.Syscall, a.Seq, a.Worker, a.Variant, a.Detail)
}
