package nvkernel

import (
	"encoding/json"
	"fmt"
	"time"
)

// Reason classifies why the monitor raised an alarm.
type Reason int

// Alarm reasons.
const (
	// ReasonSyscallMismatch: variants arrived at different syscalls.
	ReasonSyscallMismatch Reason = iota + 1
	// ReasonArgDivergence: non-UID syscall arguments differ after
	// canonicalization.
	ReasonArgDivergence
	// ReasonUIDDivergence: UID-typed arguments decode to different
	// canonical values (or an invalid representation) — the detection
	// property of the UID variation firing.
	ReasonUIDDivergence
	// ReasonCondDivergence: a cond_chk condition differed between
	// variants.
	ReasonCondDivergence
	// ReasonDataDivergence: output payloads differ between variants.
	ReasonDataDivergence
	// ReasonVariantFault: a variant crashed (e.g., segmentation fault
	// in its simulated address space) while others were healthy.
	ReasonVariantFault
	// ReasonExitMismatch: variants exited with different statuses.
	ReasonExitMismatch
	// ReasonTimeout: a variant failed to reach the rendezvous in time.
	ReasonTimeout
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonSyscallMismatch:
		return "syscall-mismatch"
	case ReasonArgDivergence:
		return "arg-divergence"
	case ReasonUIDDivergence:
		return "uid-divergence"
	case ReasonCondDivergence:
		return "cond-divergence"
	case ReasonDataDivergence:
		return "data-divergence"
	case ReasonVariantFault:
		return "variant-fault"
	case ReasonExitMismatch:
		return "exit-mismatch"
	case ReasonTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the reason as its name, so audit NDJSON carries
// "uid-divergence" rather than an enum ordinal.
func (r Reason) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// Alarm is the monitor's report of a detected divergence: in the
// paper's threat model, an alarm is a detected attack (any divergence
// on identical inputs indicates compromise, §1).
type Alarm struct {
	// Reason classifies the divergence.
	Reason Reason `json:"reason"`
	// Syscall names the rendezvous at which the divergence was seen
	// (its String is "unknown" for timeouts before arrival).
	Syscall string `json:"syscall"`
	// Seq is the rendezvous sequence number within the worker lane.
	Seq int `json:"seq"`
	// Variant is the offending variant when identifiable, else -1.
	Variant int `json:"variant"`
	// Worker is the worker lane the divergence was seen in (0 for the
	// primary lane / serial groups). The alarm still kills the whole
	// group; Worker records where the corruption surfaced.
	Worker int `json:"worker"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
	// At is the wall-clock raise time. It exists for the ops surface
	// (alarm latency, audit tail) and never enters campaign JSON —
	// seeded matrices stay byte-identical; pair with VTime inside the
	// deterministic world.
	At time.Time `json:"at"`
	// VTime is the group's virtual clock at the raise — the
	// deterministic timestamp.
	VTime uint32 `json:"vtime"`
}

// Error renders the alarm; Alarm implements error so kernel internals
// can propagate it, but it is reported via Result, not returned.
func (a *Alarm) Error() string {
	return fmt.Sprintf("nvariant alarm [%s] at syscall %s (seq %d, worker %d, variant %d): %s",
		a.Reason, a.Syscall, a.Seq, a.Worker, a.Variant, a.Detail)
}
