package nvkernel

import (
	"fmt"
	"time"

	"nvariant/internal/reexpress"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
)

// FaultHook is the kernel's chaos attachment point: when installed, it
// is consulted by every variant's syscall invoker *before* the call
// enters the rendezvous. Implementations must be safe for concurrent
// use (every variant of every worker lane calls from its own
// goroutine); the chaos package provides seeded deterministic ones.
//
// The disabled hook costs one nil check per syscall — nothing else on
// the hot path.
type FaultHook interface {
	// PreSyscall reports the fault for this submission: stall > 0
	// delays the variant's arrival at the rendezvous by that long (a
	// slow-syscall / lane-stall fault — transparent while it stays
	// under the rendezvous Timeout), and crash kills the variant
	// without reaching the rendezvous (the crash-and-drain fault: the
	// monitor sees the variant die and raises a variant-fault alarm if
	// siblings are healthy).
	PreSyscall(worker, variant int, num sys.Num) (stall time.Duration, crash bool)
}

// Config collects the kernel configuration for one N-variant process
// group. Construct via options passed to Run. WithSpec is the primary
// configuration path: it materializes a DiversitySpec's variation
// stack onto the fields below (which remain settable individually for
// ablations and baselines).
type Config struct {
	// UIDFuncs holds each variant's UID reexpression function. Length
	// must equal the number of variants; defaults to identity for all.
	UIDFuncs []reexpress.Func
	// AddressPartition places variant i's simulated address space in
	// slot i of the 2^⌈log₂N⌉-way split (the paper's low/high halves
	// when N = 2).
	AddressPartition bool
	// Unshared is the set of paths with per-variant file versions
	// ("/etc/passwd" is served as "/etc/passwd-0" / "/etc/passwd-1").
	Unshared map[string]bool
	// Timeout bounds how long the monitor waits for all variants to
	// reach a rendezvous before raising a timeout alarm.
	Timeout time.Duration
	// Cred is the initial (real) credential set of the process group.
	Cred vos.Cred
	// Spec records the DiversitySpec the group was configured from
	// (nil when configured through individual options only).
	Spec *reexpress.Spec
	// Faults is the optional chaos fault hook (nil = no injection).
	Faults FaultHook
	// Metrics is the optional kernel metric set (nil = uninstrumented;
	// the disabled path costs one nil check per rendezvous).
	Metrics *Metrics
	// Quorum, when K ≥ 1, generalizes the rendezvous from unanimous to
	// K-of-N: a variant *fault* (crash, deadline stall) with at least K
	// other live variants evicts the faulted variant and the group
	// continues in degraded mode on the survivors, while divergence
	// among live variants still raises the usual alarms. A fault that
	// would drop the live set below K kills the group (quorum-lost). 0
	// (the default) keeps the paper's unanimous contract: any variant
	// fault kills the group.
	Quorum int
	// OnEvict, when set, is called once per quorum eviction after the
	// variant has been dropped from every lane's live set — the fleet's
	// hook for audit entries and background respawn. Called from a lane
	// monitor goroutine with no kernel locks held; implementations must
	// be safe for concurrent use across lanes.
	OnEvict func(Eviction)
}

// Option configures Run.
type Option func(*Config)

// defaultConfig returns the baseline configuration for n variants.
func defaultConfig(n int) Config {
	funcs := make([]reexpress.Func, n)
	for i := range funcs {
		funcs[i] = reexpress.Identity{}
	}
	return Config{
		UIDFuncs: funcs,
		Unshared: make(map[string]bool),
		Timeout:  30 * time.Second,
		Cred:     vos.CredFor(vos.Root, 0),
	}
}

// WithSpec configures the group from a DiversitySpec, materializing
// each layer of its variation stack: the UID layer's (composed)
// per-variant functions, address partitioning, and unshared files.
// Layers absent from the stack leave the corresponding fields
// untouched, so a spec composes with individually-set options.
func WithSpec(s *reexpress.Spec) Option {
	return func(c *Config) {
		c.Spec = s
		if funcs := s.FuncsFor(reexpress.LayerUID); funcs != nil {
			c.UIDFuncs = funcs
		}
		if s.HasLayer(reexpress.LayerAddressPartition) {
			c.AddressPartition = true
		}
		for _, p := range s.UnsharedPaths() {
			c.Unshared[p] = true
		}
	}
}

// WithUIDVariation installs the UID data variation: variant i's
// trusted UID data is reexpressed with pair's function i and the
// kernel applies the inverse at every UID-bearing syscall.
//
// Deprecated-style adapter: it builds a single UID layer under the
// hood; new code should construct a DiversitySpec and use WithSpec.
func WithUIDVariation(pair reexpress.Pair) Option {
	return WithUIDFuncs(pair.Funcs()...)
}

// WithUIDFuncs installs explicit per-variant UID functions (for N≠2 or
// ablation experiments). Like WithUIDVariation it is a thin adapter
// that builds an unchecked UID layer — ablations deliberately install
// property-violating functions, so no validation runs here. Unlike
// WithSpec it does not record a deployment spec: it composes with an
// earlier WithSpec as a per-layer override without erasing what the
// spec otherwise deployed.
func WithUIDFuncs(funcs ...reexpress.Func) Option {
	layer := reexpress.UIDLayer(funcs...)
	return func(c *Config) {
		c.UIDFuncs = append([]reexpress.Func(nil), layer.Funcs...)
	}
}

// WithAddressPartition runs variants in disjoint simulated address
// partitions (Figure 1).
func WithAddressPartition() Option {
	return func(c *Config) { c.AddressPartition = true }
}

// WithUnsharedFiles marks paths as unshared: each variant opens its
// own "-<variant>" suffixed version (§3.4).
func WithUnsharedFiles(paths ...string) Option {
	return func(c *Config) {
		for _, p := range paths {
			c.Unshared[p] = true
		}
	}
}

// WithTimeout sets the rendezvous timeout.
func WithTimeout(d time.Duration) Option {
	return func(c *Config) { c.Timeout = d }
}

// WithQuorum enables K-of-N degraded mode: a variant fault with at
// least k live agreeing survivors evicts the faulted variant instead
// of killing the group. k ≤ 0 disables (unanimous, the default).
func WithQuorum(k int) Option {
	return func(c *Config) { c.Quorum = k }
}

// WithEvictionHook installs the per-eviction callback (see
// Config.OnEvict). Only meaningful together with WithQuorum.
func WithEvictionHook(fn func(Eviction)) Option {
	return func(c *Config) { c.OnEvict = fn }
}

// WithFaultHook installs a chaos fault hook on the group: per-variant
// stalls, slow syscalls, and crash-and-drain faults injected at the
// syscall boundary.
func WithFaultHook(h FaultHook) Option {
	return func(c *Config) { c.Faults = h }
}

// WithMetrics attaches a kernel metric set (see NewMetrics) to the
// group: per-rendezvous latency, syscall counts, and alarm latency.
func WithMetrics(m *Metrics) Option {
	return func(c *Config) { c.Metrics = m }
}

// WithCred sets the group's initial credentials (default root).
func WithCred(cred vos.Cred) Option {
	return func(c *Config) { c.Cred = cred }
}

// UnsharedPath returns the per-variant path for an unshared file.
func UnsharedPath(path string, variant int) string {
	return fmt.Sprintf("%s-%d", path, variant)
}

// SetupUnsharedPasswd writes the diversified /etc/passwd-<i> and
// /etc/group-<i> files for each variant: identical to the canonical
// database except every UID and GID is transformed with the variant's
// reexpression function (§3.4). This is done by the trusted variant
// builder, never by the running server — embedding the reexpression
// function in the server would give attackers a reusable oracle (§5).
func SetupUnsharedPasswd(world *vos.World, funcs []reexpress.Func) error {
	root := vos.CredFor(vos.Root, 0)
	for i, f := range funcs {
		users := make([]vos.User, len(world.Users))
		for j, u := range world.Users {
			uid, err := f.Apply(u.UID)
			if err != nil {
				return fmt.Errorf("reexpress uid %s for variant %d: %w", u.UID.Decimal(), i, err)
			}
			gid, err := f.Apply(u.GID)
			if err != nil {
				return fmt.Errorf("reexpress gid %s for variant %d: %w", u.GID.Decimal(), i, err)
			}
			users[j] = u
			users[j].UID = uid
			users[j].GID = gid
		}
		groups := make([]vos.Group, len(world.Groups))
		for j, g := range world.Groups {
			gid, err := f.Apply(g.GID)
			if err != nil {
				return fmt.Errorf("reexpress gid %s for variant %d: %w", g.GID.Decimal(), i, err)
			}
			groups[j] = g
			groups[j].GID = gid
		}
		if err := world.FS.WriteFile(UnsharedPath("/etc/passwd", i), vos.FormatPasswd(users), 0644, root); err != nil {
			return fmt.Errorf("write variant %d passwd: %w", i, err)
		}
		if err := world.FS.WriteFile(UnsharedPath("/etc/group", i), vos.FormatGroup(groups), 0644, root); err != nil {
			return fmt.Errorf("write variant %d group: %w", i, err)
		}
	}
	return nil
}
